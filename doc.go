// Package pseudocircuit is a from-scratch Go reproduction of
// "Pseudo-Circuit: Accelerating Communication for On-Chip Interconnection
// Networks" (Minseon Ahn and Eun Jung Kim, MICRO 2010).
//
// The public API lives in pseudocircuit/noc. The command-line tools are
// cmd/nocsim (single simulation), cmd/sweep (regenerate every figure and
// table of the paper's evaluation) and cmd/tracegen (trace extraction,
// inspection and replay). bench_test.go in this directory provides one
// testing.B benchmark per paper figure/table.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
package pseudocircuit
