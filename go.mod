module pseudocircuit

go 1.22
