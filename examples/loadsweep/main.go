// Load sweep: reproduce the shape of the paper's Fig. 12 for one synthetic
// pattern — average latency versus offered traffic for the baseline and the
// full pseudo-circuit scheme, up to saturation, with a crude ASCII plot.
//
// Run with: go run ./examples/loadsweep [uniform|bitcomp|transpose]
package main

import (
	"fmt"
	"os"
	"strings"

	"pseudocircuit/noc"
)

func main() {
	pattern := noc.UniformRandom
	name := "uniform random"
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "uniform":
		case "bitcomp":
			pattern, name = noc.BitComplement, "bit complement"
		case "transpose":
			pattern, name = noc.BitPermutation, "bit permutation (transpose)"
		default:
			fmt.Fprintf(os.Stderr, "unknown pattern %q\n", os.Args[1])
			os.Exit(1)
		}
	}

	loads := []float64{0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20, 0.23}
	fmt.Printf("8x8 mesh, XY + static VA, %s, 5-flit packets\n\n", name)
	fmt.Printf("%-6s %10s %12s %8s\n", "load", "baseline", "pseudo+s+b", "gain")

	type point struct{ base, psb float64 }
	var pts []point
	for _, load := range loads {
		run := func(s noc.Scheme) float64 {
			exp := noc.Experiment{
				Topology: noc.Mesh(8, 8),
				Scheme:   s,
				Routing:  noc.XY,
				Policy:   noc.StaticVA,
				Measure:  6000,
			}
			return exp.RunSynthetic(noc.Synthetic{Pattern: pattern, Rate: load}).AvgLatency
		}
		b, p := run(noc.Baseline), run(noc.PseudoSB)
		pts = append(pts, point{b, p})
		fmt.Printf("%-6.2f %10.2f %12.2f %7.1f%%\n", load, b, p, 100*(1-p/b))
	}

	// ASCII latency curves (capped to keep saturation readable).
	const cap = 120.0
	fmt.Println("\nlatency (B = baseline, P = pseudo+s+b, * = overlap; x-axis load, capped at 120 cycles)")
	for row := 10; row >= 0; row-- {
		lo := cap * float64(row) / 11
		hi := cap * float64(row+1) / 11
		line := make([]byte, len(pts)*6)
		for i := range line {
			line[i] = ' '
		}
		for i, p := range pts {
			b := min(p.base, cap)
			s := min(p.psb, cap)
			bin := func(v float64) bool { return v >= lo && v < hi }
			switch {
			case bin(b) && bin(s):
				line[i*6+2] = '*'
			case bin(b):
				line[i*6+2] = 'B'
			case bin(s):
				line[i*6+2] = 'P'
			}
		}
		fmt.Printf("%6.0f |%s\n", hi, strings.TrimRight(string(line), " "))
	}
	fmt.Printf("       +%s\n        ", strings.Repeat("-", len(pts)*6))
	for _, l := range loads {
		fmt.Printf("%-6.2f", l)
	}
	fmt.Println()
}
