// CMP workloads: run the paper's CMP platform (32 out-of-order cores + 32
// S-NUCA L2 banks on a 4x4 concentrated mesh, directory MSI coherence) over
// every benchmark profile and report how the pseudo-circuit scheme performs
// on cache-coherence traffic.
//
// Run with: go run ./examples/cmpworkloads
package main

import (
	"fmt"

	"pseudocircuit/noc"
)

func main() {
	fmt.Println("CMP platform: 4x4 CMesh, 2 cores + 2 L2 banks per router, XY + static VA")
	fmt.Printf("%-14s %9s %9s %7s %8s %8s %8s\n",
		"benchmark", "base lat", "psb lat", "gain", "reuse", "e2e loc", "xbar loc")

	for _, bench := range noc.CMPBenchmarks() {
		run := func(s noc.Scheme) noc.Result {
			exp := noc.Experiment{
				Topology: noc.CMesh(4, 4, 4),
				Scheme:   s,
				Routing:  noc.XY,
				Policy:   noc.StaticVA,
			}
			res, err := exp.RunCMP(bench)
			if err != nil {
				panic(err)
			}
			return res
		}
		base := run(noc.Baseline)
		psb := run(noc.PseudoSB)
		fmt.Printf("%-14s %9.2f %9.2f %6.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			bench, base.AvgNetLatency, psb.AvgNetLatency,
			100*(1-psb.AvgNetLatency/base.AvgNetLatency),
			100*psb.Reusability, 100*base.E2ELocality, 100*base.XbarLocality)
	}
	fmt.Println("\nCrossbar-connection locality exceeding end-to-end locality is the")
	fmt.Println("observation that motivates the pseudo-circuit scheme (paper Fig. 1).")
}
