// Trace replay: the paper's methodology end-to-end in one program —
// extract a packet trace from the CMP platform (as the authors extract
// traces from their full-system simulator), then replay the *same* trace
// open-loop through every scheme for a perfectly controlled comparison.
//
// Run with: go run ./examples/tracereplay [benchmark]
package main

import (
	"bytes"
	"fmt"
	"os"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/trace"
	"pseudocircuit/internal/vcalloc"
)

func main() {
	benchmark := "fft"
	if len(os.Args) > 1 {
		benchmark = os.Args[1]
	}
	prof, ok := cmp.ProfileByName(benchmark)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try: %v)\n", benchmark, allNames())
		os.Exit(1)
	}

	// 1. Extract: run the CMP on a baseline network, recording every
	// injected packet.
	topo := topology.NewCMesh(4, 4, 4)
	rec := network.New(network.DefaultConfig(topo))
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, topo.Nodes())
	if err != nil {
		panic(err)
	}
	w := cmp.New(topo, cmp.PaperTableI(), prof, sim.NewRNG(1))
	recorder := &trace.Recorder{Inner: w, W: tw}
	rec.Run(recorder, 15000)
	if err := tw.Flush(); err != nil {
		panic(err)
	}
	fmt.Printf("extracted %d packets from %s (%d bytes on the wire format)\n\n",
		tw.Count(), benchmark, buf.Len())

	// 2. Replay the identical trace through each scheme.
	tr, err := trace.NewReader(&buf)
	if err != nil {
		panic(err)
	}
	recs, err := tr.ReadAll()
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-12s %10s %8s %8s %8s\n", "scheme", "net lat", "p95", "reuse", "bypass")
	for _, scheme := range core.Schemes {
		cfg := network.DefaultConfig(topology.NewCMesh(4, 4, 4))
		cfg.Opts = core.DefaultOptions(scheme)
		cfg.Algorithm = routing.XY
		cfg.Policy = vcalloc.Static
		n := network.New(cfg)
		p := trace.NewPlayer(recs)
		if !n.Drain(p, 50*len(recs)+100000) {
			panic("replay did not drain")
		}
		s := n.Stats
		_, p95, _ := s.LatencyHist.Quantiles()
		fmt.Printf("%-12v %10.2f %8d %7.1f%% %7.1f%%\n",
			scheme, s.AvgNetLatency(), p95, 100*s.Reusability(), 100*s.BypassRate())
	}
	fmt.Println("\nSame packets, same timing — only the router scheme differs.")
}

func allNames() []string {
	var out []string
	for _, p := range cmp.Profiles() {
		out = append(out, p.Name)
	}
	return out
}
