// Quickstart: simulate an 8x8 mesh under uniform-random traffic with the
// baseline router and with the full pseudo-circuit scheme (Pseudo+S+B), and
// print the latency, reusability and energy comparison.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"pseudocircuit/noc"
)

func main() {
	workload := noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10}

	fmt.Println("8x8 mesh, XY routing, static VA, uniform random @ 0.10 flits/node/cycle")
	fmt.Printf("%-12s %10s %10s %8s %8s %12s\n",
		"scheme", "latency", "net lat", "reuse", "bypass", "energy/flit")

	var base noc.Result
	for _, scheme := range noc.Schemes {
		exp := noc.Experiment{
			Topology: noc.Mesh(8, 8),
			Scheme:   scheme,
			Routing:  noc.XY,
			Policy:   noc.StaticVA,
		}
		res := exp.RunSynthetic(workload)
		if !scheme.Pseudo {
			base = res
		}
		fmt.Printf("%-12v %10.2f %10.2f %7.1f%% %7.1f%% %9.2f pJ\n",
			scheme, res.AvgLatency, res.AvgNetLatency,
			100*res.Reusability, 100*res.BypassRate,
			res.EnergyPJ/float64(res.FlitsDelivered))
	}

	exp := noc.Experiment{Topology: noc.Mesh(8, 8), Scheme: noc.PseudoSB, Routing: noc.XY, Policy: noc.StaticVA}
	best := exp.RunSynthetic(workload)
	fmt.Printf("\nPseudo+S+B cuts average latency by %.1f%% at this load.\n",
		100*(1-best.AvgLatency/base.AvgLatency))
}
