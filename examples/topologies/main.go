// Topology study: the paper's §7 experiments in one program — how the
// pseudo-circuit scheme composes with express topologies (Fig. 13) and how
// it compares against Express Virtual Channels (Fig. 14).
//
// Run with: go run ./examples/topologies
package main

import (
	"fmt"

	"pseudocircuit/noc"
)

const benchmark = "fma3d"

func main() {
	fmt.Printf("Benchmark: %s (CMP platform, 64 terminals)\n\n", benchmark)
	topologyStudy()
	evcComparison()
}

// topologyStudy reproduces Fig. 13: per-hop savings (pseudo-circuits) stack
// with hop-count savings (express topologies).
func topologyStudy() {
	topos := []struct {
		name string
		topo noc.Topology
	}{
		{"Mesh 8x8", noc.Mesh(8, 8)},
		{"CMesh 4x4x4", noc.CMesh(4, 4, 4)},
		{"MECS 4x4x4", noc.MECS(4, 4, 4)},
		{"FBFLY 4x4x4", noc.FBFly(4, 4, 4)},
	}
	fmt.Printf("%-12s %8s %10s %12s %10s\n", "topology", "hops", "baseline", "pseudo+s+b", "vs mesh")
	var meshBase float64
	for i, tc := range topos {
		base := run(tc.topo, noc.Baseline, false)
		psb := run(tc.topo, noc.PseudoSB, false)
		if i == 0 {
			meshBase = base.AvgNetLatency
		}
		fmt.Printf("%-12s %8.2f %10.2f %12.2f %9.1f%%\n",
			tc.name, base.AvgHops, base.AvgNetLatency, psb.AvgNetLatency,
			100*(1-psb.AvgNetLatency/meshBase))
	}
	fmt.Println()
}

// evcComparison reproduces Fig. 14: EVC needs long rows of routers; the
// pseudo-circuit scheme is topology-independent.
func evcComparison() {
	fmt.Printf("%-12s %10s %8s %12s\n", "topology", "baseline", "evc", "pseudo+s+b")
	for _, tc := range []struct {
		name string
		make func() noc.Topology
	}{
		{"Mesh 8x8", func() noc.Topology { return noc.Mesh(8, 8) }},
		{"CMesh 4x4x4", func() noc.Topology { return noc.CMesh(4, 4, 4) }},
	} {
		base := run(tc.make(), noc.Baseline, false).AvgNetLatency
		evc := run(tc.make(), noc.Baseline, true).AvgNetLatency
		psb := run(tc.make(), noc.PseudoSB, false).AvgNetLatency
		fmt.Printf("%-12s %10.2f %8.2f %12.2f   (normalized: 1.00 / %.3f / %.3f)\n",
			tc.name, base, evc, psb, evc/base, psb/base)
	}
}

func run(t noc.Topology, s noc.Scheme, useEVC bool) noc.Result {
	exp := noc.Experiment{
		Topology: t,
		Scheme:   s,
		Routing:  noc.XY,
		Policy:   noc.DynamicVA,
		UseEVC:   useEVC,
	}
	res, err := exp.RunCMP(benchmark)
	if err != nil {
		panic(err)
	}
	return res
}
