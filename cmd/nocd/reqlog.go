package main

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"pseudocircuit/internal/service"
)

// logCtxKey carries a per-request *logInfo so handlers can annotate the
// access log with job identity without threading a logger through every
// handler signature.
type logCtxKey struct{}

type logInfo struct {
	job, key, outcome string
}

// noteJob annotates the request's log record with the job a handler
// resolved. A no-op when request logging is off (no logInfo in context).
func noteJob(r *http.Request, j service.Job) {
	info, _ := r.Context().Value(logCtxKey{}).(*logInfo)
	if info == nil {
		return
	}
	info.job = j.ID
	info.key = j.Key
	switch {
	case j.CacheHit:
		info.outcome = "cache-hit"
	case j.Dedup:
		info.outcome = "coalesced"
	default:
		info.outcome = string(j.State)
	}
}

// statusRecorder captures the status code a handler writes while keeping
// the Flusher passthrough the NDJSON watch stream depends on.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestLog emits one structured log line per request: method, path,
// status, wall duration, and — when a handler noted one — the job id, its
// spec hash, and the submission outcome.
func requestLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		info := &logInfo{}
		r = r.WithContext(context.WithValue(r.Context(), logCtxKey{}, info))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", time.Since(start)),
		}
		if info.job != "" {
			attrs = append(attrs,
				slog.String("job", info.job),
				slog.String("key", info.key),
				slog.String("outcome", info.outcome))
		}
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}
