package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pseudocircuit/internal/service"
	"pseudocircuit/noc"
	"pseudocircuit/nocdclient"
)

func testServer(t *testing.T, cfg service.Config) (*httptest.Server, *service.Manager, *nocdclient.Client) {
	t.Helper()
	if cfg.Chunk == 0 {
		cfg.Chunk = 100
	}
	m := service.New(cfg)
	srv := httptest.NewServer(newMux(m, newTestSweeps(t, m)))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return srv, m, nocdclient.New(srv.URL)
}

func smallReq(seed uint64) nocdclient.Request {
	return nocdclient.Request{
		Spec: noc.Spec{
			Topology: "mesh4x4",
			Scheme:   "pseudo+s+b",
			VA:       "static",
			Seed:     seed,
			Warmup:   100,
			Measure:  400,
		},
		Workload: noc.WorkloadSpec{Pattern: "uniform", Rate: 0.10},
	}
}

// TestDaemonEndToEnd drives the whole loop through the client: health,
// submit+wait, result fetch, cache hit on resubmission.
func TestDaemonEndToEnd(t *testing.T) {
	_, m, c := testServer(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	j, err := c.SubmitWait(ctx, smallReq(1))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if j.State != "done" || j.CacheHit || j.Result == nil {
		t.Fatalf("first run: state=%s cacheHit=%v result=%v (err %q)", j.State, j.CacheHit, j.Result, j.Error)
	}
	if j.CyclesDone != j.CyclesTotal || j.CyclesTotal != 500 {
		t.Fatalf("progress: %d/%d, want 500/500", j.CyclesDone, j.CyclesTotal)
	}

	res, err := c.Result(ctx, j.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res != *j.Result {
		t.Fatalf("result endpoint diverged from job snapshot")
	}

	j2, err := c.Submit(ctx, smallReq(1))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !j2.CacheHit || j2.State != "done" {
		t.Fatalf("resubmission: cacheHit=%v state=%s, want cached done", j2.CacheHit, j2.State)
	}
	if *j2.Result != *j.Result {
		t.Fatalf("cached result differs from original")
	}
	if s := m.Stats(); s["completed"] != 1 || s["cache_hits"] != 1 {
		t.Fatalf("stats after cache hit: %v", s)
	}
}

// TestDaemonCancel cancels an in-flight job over HTTP and checks the pool
// still serves the next job.
func TestDaemonCancel(t *testing.T) {
	_, _, c := testServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	long := smallReq(2)
	long.Spec.Measure = 8_000_000
	j, err := c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	j, err = c.Wait(ctx, j.ID)
	if err != nil || j.State != "canceled" {
		t.Fatalf("after cancel: state=%s err=%v", j.State, err)
	}
	if _, err := c.Result(ctx, j.ID); err == nil {
		t.Fatal("result of canceled job did not error")
	}

	j2, err := c.SubmitWait(ctx, smallReq(3))
	if err != nil || j2.State != "done" {
		t.Fatalf("post-cancel job: state=%s err=%v", j2.State, err)
	}
}

// TestDaemonErrors maps service failures onto HTTP statuses.
func TestDaemonErrors(t *testing.T) {
	srv, _, c := testServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	bad := smallReq(4)
	bad.Spec.Topology = "torus8x8"
	_, err := c.Submit(ctx, bad)
	apiErr, ok := err.(*nocdclient.APIError)
	if !ok || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("bad topology: err %v, want 400 APIError", err)
	}

	if _, err := c.Job(ctx, "nope"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown job: %v, want 404", err)
	}
	if _, err := c.Cancel(ctx, "nope"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("cancel unknown job: %v, want 404", err)
	}

	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"bogus`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

func isStatus(err error, status int) bool {
	apiErr, ok := err.(*nocdclient.APIError)
	return ok && apiErr.Status == status
}

// TestDaemonFaultSchedules drives fault schedules through the HTTP path: a
// valid schedule runs to completion with fault accounting in the result and
// a distinct cache identity from the fault-free spec; hostile schedules come
// back as 400, not worker panics.
func TestDaemonFaultSchedules(t *testing.T) {
	_, _, c := testServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	clean, err := c.SubmitWait(ctx, smallReq(9))
	if err != nil || clean.State != "done" {
		t.Fatalf("fault-free run: state=%s err=%v", clean.State, err)
	}

	faulted := smallReq(9)
	faulted.Spec.Faults = &noc.FaultSpec{
		Drop: "reroute",
		Events: []noc.FaultEventSpec{
			{Cycle: 200, Kind: "router-down", Router: 5},
			{Cycle: 400, Kind: "router-up", Router: 5},
		},
	}
	j, err := c.SubmitWait(ctx, faulted)
	if err != nil || j.State != "done" || j.Result == nil {
		t.Fatalf("faulted run: state=%s err=%v", j.State, err)
	}
	if j.CacheHit {
		t.Fatal("faulted spec served the fault-free cached result")
	}
	if j.Result.FaultEvents != 2 {
		t.Fatalf("fault events %d, want 2", j.Result.FaultEvents)
	}
	if j.Result.PacketsDropped == 0 {
		t.Fatal("router fault dropped no packets")
	}

	hostile := smallReq(10)
	hostile.Spec.Faults = &noc.FaultSpec{
		Events: []noc.FaultEventSpec{{Cycle: 999999, Kind: "link-down", Router: 99}},
	}
	if _, err := c.Submit(ctx, hostile); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("hostile schedule: err %v, want 400", err)
	}
}

// TestDaemonWatchStream reads the NDJSON progress stream: every line must
// decode as a job snapshot and the last one must be terminal.
func TestDaemonWatchStream(t *testing.T) {
	srv, _, c := testServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req := smallReq(5)
	req.Spec.Measure = 300_000 // long enough for a few stream ticks
	j, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/jobs/" + j.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var last nocdclient.Job
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d: %v (%s)", lines, err, sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 || last.State != "done" {
		t.Fatalf("stream ended after %d lines in state %q, want terminal done", lines, last.State)
	}
	if last.CyclesDone != last.CyclesTotal {
		t.Fatalf("final stream line shows partial progress %d/%d", last.CyclesDone, last.CyclesTotal)
	}
}

// TestDaemonWatchStreamCanceledJob: the stream's contract is that the last
// line is always the terminal snapshot, whatever the terminal state — cancel
// the job mid-stream and the stream must end on a "canceled" line, not just
// stop.
func TestDaemonWatchStreamCanceledJob(t *testing.T) {
	srv, _, c := testServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req := smallReq(6)
	req.Spec.Measure = 8_000_000
	j, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/jobs/" + j.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var last nocdclient.Job
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d: %v (%s)", lines, err, sc.Text())
		}
		lines++
		if lines == 1 {
			if _, err := c.Cancel(ctx, j.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 || last.State != "canceled" {
		t.Fatalf("stream ended after %d lines in state %q, want terminal canceled", lines, last.State)
	}
}

// TestDaemonWatchStreamClientCancel: when the watcher goes away the stream
// handler must return promptly (within roughly one tick), not keep encoding
// into a dead connection for the life of the job.
func TestDaemonWatchStreamClientCancel(t *testing.T) {
	srv, _, c := testServer(t, service.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req := smallReq(7)
	req.Spec.Measure = 8_000_000
	j, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Cancel(ctx, j.ID)

	streamCtx, stop := context.WithCancel(ctx)
	defer stop()
	hr, err := http.NewRequestWithContext(streamCtx, "GET", srv.URL+"/jobs/"+j.ID+"?watch=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first stream line: %v", sc.Err())
	}
	stop()
	start := time.Now()
	for sc.Scan() {
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stream kept flowing %v after client cancel", elapsed)
	}
}

// TestDaemonWaitClientDisconnect: a ?wait request whose client has gone away
// must not be answered at all — the old behaviour wrote 200 with a stale
// non-terminal snapshot, which a proxy or buffered client could mistake for
// completion. Exercised for both GET /jobs/{id}?wait and POST /jobs?wait by
// serving the mux directly with an already-canceled request context.
func TestDaemonWaitClientDisconnect(t *testing.T) {
	m := service.New(service.Config{Workers: 1, Chunk: 100})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	mux := newMux(m, newTestSweeps(t, m))

	long := smallReq(8)
	long.Spec.Measure = 8_000_000
	body, err := json.Marshal(long)
	if err != nil {
		t.Fatal(err)
	}
	req, err := service.DecodeRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Cancel(j.ID)

	gone, cancel := context.WithCancel(context.Background())
	cancel()

	hr := httptest.NewRequest("GET", "/jobs/"+j.ID+"?wait=1", nil).WithContext(gone)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, hr)
	if rr.Body.Len() != 0 {
		t.Fatalf("status?wait for disconnected client wrote a body: %s", rr.Body.String())
	}

	hr = httptest.NewRequest("POST", "/jobs?wait=1", strings.NewReader(string(body))).WithContext(gone)
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, hr)
	if rr.Body.Len() != 0 {
		t.Fatalf("submit?wait for disconnected client wrote a body: %s", rr.Body.String())
	}
}
