// Command nocd serves pseudo-circuit simulations over HTTP: submit an
// experiment+workload spec as a job, poll or stream its progress, fetch the
// result. Identical specs are content-addressed — a repeated submission is
// answered from the result cache without re-simulating, and identical
// in-flight submissions share one run. Cancelling a job (or shutting the
// daemon down past its drain deadline) stops the simulation at the next
// chunk boundary.
//
// Quickstart:
//
//	nocd -listen localhost:8080 &
//	curl -s localhost:8080/jobs -d '{"topology":"mesh8x8","scheme":"pseudo+s+b",
//	  "va":"static","workload":{"pattern":"uniform","rate":0.1}}'
//	curl -s localhost:8080/jobs/j1?wait=1          # block until done
//	curl -s localhost:8080/jobs -d '...same spec'  # -> "cacheHit": true
//
// Endpoints: POST /jobs (?wait=1), GET /jobs, GET /jobs/{id} (?wait=1,
// ?watch=1 for an NDJSON progress stream with cycles/sec and ETA),
// GET /jobs/{id}/result, POST /jobs/{id}/cancel (or DELETE /jobs/{id}),
// POST /sweeps (template + parameter axes expanded server-side; ?wait=1
// blocks, ?watch=1 streams each grid point's result as NDJSON), GET
// /sweeps, GET /sweeps/{id}, POST /sweeps/{id}/cancel (or DELETE),
// GET /healthz (liveness), GET /readyz (readiness: 503 while draining or
// queue-full), GET /metrics (Prometheus text exposition), GET /spans
// (job-lifecycle spans: JSONL, ?format=chrome for chrome://tracing), and
// the stock /debug/vars (service counters under "nocd") and /debug/pprof.
// -log-json adds one structured JSON log line per request on stderr.
//
// -store-dir persists results on disk (content-addressed by canonical
// spec hash, checksummed, LRU-bounded by -store-bytes), so a restarted
// daemon re-serves its history without re-simulating. -peers/-self
// dispatch sweep grid points across a fleet by consistent hashing of the
// spec hash, with replica failover and local fallback; see DESIGN.md §16.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pseudocircuit/internal/cluster"
	"pseudocircuit/internal/service"
	"pseudocircuit/internal/store"
	"pseudocircuit/internal/sweepapi"
	"pseudocircuit/internal/version"
)

func main() {
	var (
		listen      = flag.String("listen", "localhost:8080", "HTTP listen address")
		workers     = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queueCap    = flag.Int("queue", 64, "max queued jobs before submissions are rejected")
		cacheCap    = flag.Int("cache", 1024, "max cached results (oldest evicted)")
		chunk       = flag.Int("chunk", 1000, "cycles between cancellation checks and progress updates")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline before in-flight jobs are cancelled")
		spanCap     = flag.Int("spans", 4096, "max retained job-lifecycle spans (oldest evicted)")
		logJSON     = flag.Bool("log-json", false, "emit one structured JSON log line per request on stderr")
		showVersion = flag.Bool("version", false, "print build information and exit")

		storeDir   = flag.String("store-dir", "", "directory for the persistent result store (empty = in-memory cache only)")
		storeBytes = flag.Int64("store-bytes", 256<<20, "disk store byte cap; least-recently-used entries evicted past it")

		sweepPoints   = flag.Int("sweep-points", sweepapi.DefaultMaxPoints, "max grid points one sweep may expand to (larger grids are rejected)")
		sweepInflight = flag.Int("sweep-inflight", 16, "grid points one sweep keeps in flight at once")

		peers    = flag.String("peers", "", "comma-separated base URLs of peer nocds; sweeps dispatch grid points to their consistent-hash owners")
		selfURL  = flag.String("self", "", "this node's own base URL exactly as the peers list it (required with -peers)")
		replicas = flag.Int("replicas", 2, "consistent-hash owners consulted per grid point before local fallback")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("nocd"))
		return
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, *storeBytes); err != nil {
			fatal("opening result store: %v", err)
		}
		fmt.Fprintf(os.Stderr, "nocd: result store %s: %d entries, %d bytes\n",
			*storeDir, st.Len(), st.Bytes())
	}

	m := service.New(service.Config{
		Workers:  *workers,
		QueueCap: *queueCap,
		CacheCap: *cacheCap,
		Chunk:    *chunk,
		SpanCap:  *spanCap,
		Store:    st,
	})
	expvar.Publish("nocd", expvar.Func(func() any { return m.Stats() }))

	var dispatcher sweepapi.Dispatcher
	if *peers != "" {
		if *selfURL == "" {
			fatal("-peers requires -self (this node's base URL as the peers list it)")
		}
		peerList := strings.Split(*peers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(peerList[i])
		}
		d, err := cluster.New(cluster.Config{
			Self:      *selfURL,
			Peers:     peerList,
			Replicas:  *replicas,
			Telemetry: m.Telemetry(),
			Spans:     m.SpanLog(),
		})
		if err != nil {
			fatal("%v", err)
		}
		dispatcher = d
		fmt.Fprintf(os.Stderr, "nocd: dispatching sweeps across %v\n", d.Ring().Members())
	}

	sw := sweepapi.New(m, sweepapi.Config{
		MaxPoints:  *sweepPoints,
		Inflight:   *sweepInflight,
		Dispatcher: dispatcher,
	})

	mux := newMux(m, sw)
	// The expvar and pprof handlers self-register on the default mux;
	// delegate the whole /debug/ subtree to it.
	mux.Handle("GET /debug/", http.DefaultServeMux)

	var handler http.Handler = mux
	if *logJSON {
		logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
		handler = requestLog(logger, mux)
	}

	srv := &http.Server{Addr: *listen, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nocd: listening on %s\n", *listen)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("%v", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "nocd: draining (deadline %v)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Sweeps drain first: they are the service's upstream, so cancelling
	// them stops new point submissions before the job queue closes.
	if err := sw.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "nocd: drain deadline hit, running sweeps cancelled: %v\n", err)
	}
	if err := m.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "nocd: drain deadline hit, in-flight jobs cancelled: %v\n", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal("http shutdown: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nocd: "+format+"\n", args...)
	os.Exit(1)
}
