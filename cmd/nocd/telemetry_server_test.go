package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pseudocircuit/internal/service"
	"pseudocircuit/internal/telemetry"
)

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsEndpoint: a double submission shows up on /metrics as a
// cache hit, and the whole exposition parses under the strict validator.
func TestMetricsEndpoint(t *testing.T) {
	srv, _, c := testServer(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := c.SubmitWait(ctx, smallReq(3)); err != nil {
		t.Fatal(err)
	}
	j, err := c.Submit(ctx, smallReq(3))
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit {
		t.Fatal("resubmission missed the cache")
	}

	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("content type %q, want %q", ct, telemetry.ContentType)
	}
	if _, err := telemetry.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"nocd_cache_hits_total 1",
		"nocd_cache_misses_total 1",
		"nocd_queue_wait_seconds_count 1",
		`nocd_run_seconds_count{scheme="pseudo+s+b"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics\n%s", want, body)
		}
	}
}

// TestReadyzDraining: /readyz answers 200 while serving and 503 once the
// manager is draining; /healthz stays 200 throughout (liveness only).
func TestReadyzDraining(t *testing.T) {
	m := service.New(service.Config{Workers: 1, Chunk: 100})
	srv := httptest.NewServer(newMux(m, newTestSweeps(t, m)))
	defer srv.Close()

	if resp, _ := get(t, srv.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ready daemon /readyz = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, srv.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining daemon /readyz = %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining daemon /healthz = %d, want 200 (liveness)", resp.StatusCode)
	}
}

// TestSpansEndpoint: both export formats validate under their own
// checkers after a completed job.
func TestSpansEndpoint(t *testing.T) {
	srv, _, c := testServer(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.SubmitWait(ctx, smallReq(4)); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, srv.URL+"/spans")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/spans status %d", resp.StatusCode)
	}
	n, err := telemetry.ValidateSpansJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("span JSONL invalid: %v\n%s", err, body)
	}
	// cache-lookup, queue-wait, run at minimum.
	if n < 3 {
		t.Fatalf("only %d spans exported", n)
	}

	resp, body = get(t, srv.URL+"/spans?format=chrome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/spans?format=chrome status %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace empty")
	}

	if resp, _ := get(t, srv.URL+"/spans?format=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format status %d, want 400", resp.StatusCode)
	}
}

// TestRequestLogMiddleware: with the middleware installed, each request
// emits one JSON line carrying method/path/status/duration, and job
// handlers annotate it with id, spec hash and outcome.
func TestRequestLogMiddleware(t *testing.T) {
	m := service.New(service.Config{Workers: 2, Chunk: 100})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	srv := httptest.NewServer(requestLog(logger, newMux(m, newTestSweeps(t, m))))
	defer srv.Close()

	body := `{"topology":"mesh4x4","scheme":"pseudo+s+b","va":"static","warmup":100,"measure":400,` +
		`"workload":{"pattern":"uniform","rate":0.1}}`
	resp, err := http.Post(srv.URL+"/jobs?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	get(t, srv.URL+"/healthz")

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d log lines, want 2:\n%s", len(lines), logBuf.String())
	}
	var rec struct {
		Msg      string  `json:"msg"`
		Method   string  `json:"method"`
		Path     string  `json:"path"`
		Status   int     `json:"status"`
		Duration float64 `json:"duration"`
		Job      string  `json:"job"`
		Key      string  `json:"key"`
		Outcome  string  `json:"outcome"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, lines[0])
	}
	if rec.Msg != "request" || rec.Method != "POST" || rec.Path != "/jobs" ||
		rec.Status != http.StatusOK || rec.Duration <= 0 {
		t.Fatalf("submit log record: %+v", rec)
	}
	if rec.Job == "" || len(rec.Key) != 64 || rec.Outcome != "done" {
		t.Fatalf("submit log missing job identity: %+v", rec)
	}
	rec.Job, rec.Outcome = "", ""
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Path != "/healthz" || rec.Job != "" {
		t.Fatalf("healthz log record: %+v", rec)
	}
}

// TestWatchCarriesRate: the ?watch NDJSON stream's terminal line reports
// the simulation rate and timings.
func TestWatchCarriesRate(t *testing.T) {
	srv, _, c := testServer(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := c.Submit(ctx, smallReq(5))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, srv.URL+"/jobs/"+j.ID+"?watch=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	var last struct {
		State        string  `json:"state"`
		RunMS        float64 `json:"runMs"`
		CyclesPerSec float64 `json:"cyclesPerSec"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.State != "done" {
		t.Fatalf("terminal watch state %q", last.State)
	}
	if last.RunMS <= 0 || last.CyclesPerSec <= 0 {
		t.Fatalf("terminal watch line lacks rate: %+v", last)
	}
}
