package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pseudocircuit/internal/cluster"
	"pseudocircuit/internal/service"
	"pseudocircuit/internal/store"
	"pseudocircuit/internal/sweepapi"
	"pseudocircuit/noc"
	"pseudocircuit/nocdclient"
)

// newTestSweeps builds a sweep manager over m with its shutdown tied to the
// test; every mux in tests gets one, mirroring main.
func newTestSweeps(t *testing.T, m *service.Manager) *sweepapi.Manager {
	t.Helper()
	return newTestSweepsWith(t, m, sweepapi.Config{})
}

func newTestSweepsWith(t *testing.T, m *service.Manager, cfg sweepapi.Config) *sweepapi.Manager {
	t.Helper()
	sw := sweepapi.New(m, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sw.Shutdown(ctx)
	})
	return sw
}

const sweepBody = `{
  "template": {"topology":"mesh4x4","scheme":"baseline","va":"static",
               "warmup":50,"measure":200,
               "workload":{"pattern":"uniform","rate":0.1}},
  "axes": {"scheme": ["baseline","pseudo"], "seed": [1,2,3]}}`

// postSweepStream submits a sweep with ?watch=1 and decodes the NDJSON
// stream into its typed lines, failing the test on protocol violations.
func postSweepStream(t *testing.T, base, body string) (first, last sweepapi.Status, points []sweepapi.PointStatus) {
	t.Helper()
	resp, err := http.Post(base+"/sweeps?watch=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n, ended := 0, false
	for sc.Scan() {
		var line struct {
			Type  string                `json:"type"`
			Sweep *sweepapi.Status      `json:"sweep"`
			Point *sweepapi.PointStatus `json:"point"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %d: %v: %s", n, err, sc.Text())
		}
		switch line.Type {
		case "sweep":
			if n != 0 || line.Sweep == nil {
				t.Fatalf("line %d: stray sweep line", n)
			}
			first = *line.Sweep
		case "point":
			if line.Point == nil || ended {
				t.Fatalf("line %d: malformed point line", n)
			}
			points = append(points, *line.Point)
		case "end":
			if line.Sweep == nil || ended {
				t.Fatalf("line %d: malformed end line", n)
			}
			last, ended = *line.Sweep, true
		default:
			t.Fatalf("line %d: unknown type %q", n, line.Type)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !ended {
		t.Fatal("stream ended without an end line")
	}
	return first, last, points
}

// TestSweepEndpointStreams: POST /sweeps?watch=1 streams every point and a
// terminal status, each result bit-identical to a direct experiment run.
func TestSweepEndpointStreams(t *testing.T) {
	srv, _, _ := testServer(t, service.Config{Workers: 2})
	first, last, points := postSweepStream(t, srv.URL, sweepBody)
	if first.Points != 6 || first.State != "running" {
		t.Fatalf("first line: %+v", first)
	}
	if last.State != "done" || last.Done != 6 || last.Completed != 6 {
		t.Fatalf("end line: %+v", last)
	}
	if len(points) != 6 {
		t.Fatalf("streamed %d points, want 6", len(points))
	}
	for _, p := range points {
		if p.State != "done" || p.Result == nil {
			t.Fatalf("point %d: %+v", p.Index, p)
		}
		exp, err := p.Spec.Spec.Experiment()
		if err != nil {
			t.Fatal(err)
		}
		want := exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: p.Spec.Workload.Rate})
		got, _ := json.Marshal(*p.Result)
		wantB, _ := json.Marshal(want)
		if string(got) != string(wantB) {
			t.Fatalf("point %d diverged from direct run:\nsweep:  %s\ndirect: %s", p.Index, got, wantB)
		}
	}
}

// TestSweepEndpointRejects: hostile grids get explicit 400s, oversized
// expansion included; nothing is retained.
func TestSweepEndpointRejects(t *testing.T) {
	srv, _, _ := testServer(t, service.Config{Workers: 1})
	cases := []string{
		`{"axes":{"seed":[1]}}`,
		`{"template":{"topology":"mesh4x4"},"axes":{"seed":[1],"seed":[2]}}`,
		`not json`,
	}
	for _, body := range cases {
		resp, err := http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	var list []sweepapi.Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 0 {
		t.Fatalf("rejected sweeps retained: %+v", list)
	}
	if resp, err := http.Get(srv.URL + "/sweeps/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}

// TestSweepEndpointCancel: DELETE /sweeps/{id} lands the sweep in the
// canceled state with point accounting closed.
func TestSweepEndpointCancel(t *testing.T) {
	srv, _, _ := testServer(t, service.Config{Workers: 1})
	body := `{
	  "template": {"topology":"mesh8x8","scheme":"pseudo","va":"static",
	               "warmup":100,"measure":20000,
	               "workload":{"pattern":"uniform","rate":0.05}},
	  "axes": {"seed": [1,2,3,4,5,6,7,8]}}`
	resp, err := http.Post(srv.URL+"/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st sweepapi.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sweeps/"+st.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/sweeps/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never terminated: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != "canceled" || st.Canceled == 0 || st.Completed != st.Points {
		t.Fatalf("canceled sweep: %+v", st)
	}
}

// TestClientSweepEndToEnd drives a sweep through nocdclient's streaming
// iterator against the real daemon mux: acceptance line, every point,
// io.EOF with the terminal status.
func TestClientSweepEndToEnd(t *testing.T) {
	_, _, c := testServer(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stream, err := c.SubmitSweep(ctx, nocdclient.SweepRequest{
		Template: smallReq(0),
		Axes: map[string][]any{
			"scheme": {"baseline", "pseudo"},
			"seed":   {1, 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if got := stream.Sweep(); got.Points != 4 || got.ID == "" {
		t.Fatalf("acceptance: %+v", got)
	}
	seen := map[string]bool{}
	for {
		p, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if p.State != "done" || p.Result == nil {
			t.Fatalf("point %d: %+v", p.Index, p)
		}
		if seen[p.Key] {
			t.Fatalf("point key %s streamed twice", p.Key)
		}
		seen[p.Key] = true
		// The streamed result matches a direct job fetch of the same spec.
		j, err := c.SubmitWait(ctx, p.Spec)
		if err != nil || !j.CacheHit {
			t.Fatalf("point %d re-fetch: %+v %v", p.Index, j, err)
		}
		got, _ := json.Marshal(*p.Result)
		want, _ := json.Marshal(*j.Result)
		if string(got) != string(want) {
			t.Fatalf("point %d diverged from the job API", p.Index)
		}
	}
	fin, ok := stream.Final()
	if !ok || fin.State != "done" || fin.Done != 4 || len(seen) != 4 {
		t.Fatalf("final: ok %v %+v, %d distinct points", ok, fin, len(seen))
	}
}

// TestSweepServedFromRestartedStore is the acceptance test for the
// persistence tier at the daemon level: a sweep runs against one daemon
// with a disk store, the daemon is torn down, and a fresh daemon on the
// same directory serves the identical sweep entirely from disk — zero
// simulations, confirmed by the store-hit metric and the cycle counter.
func TestSweepServedFromRestartedStore(t *testing.T) {
	dir := t.TempDir()
	openDaemon := func() (*httptest.Server, *service.Manager, func()) {
		st, err := store.Open(dir, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		m := service.New(service.Config{Workers: 2, Chunk: 100, Store: st})
		sw := sweepapi.New(m, sweepapi.Config{})
		srv := httptest.NewServer(newMux(m, sw))
		stop := func() {
			srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			sw.Shutdown(ctx)
			m.Shutdown(ctx)
		}
		return srv, m, stop
	}

	srv1, _, stop1 := openDaemon()
	_, last1, points1 := postSweepStream(t, srv1.URL, sweepBody)
	if last1.State != "done" || last1.Done != 6 || last1.StoreHits != 0 {
		t.Fatalf("first sweep: %+v", last1)
	}
	stop1()

	srv2, m2, stop2 := openDaemon()
	defer stop2()
	_, last2, points2 := postSweepStream(t, srv2.URL, sweepBody)
	if last2.State != "done" || last2.Done != 6 {
		t.Fatalf("restarted sweep: %+v", last2)
	}
	if last2.StoreHits != 6 || last2.CacheHits != 6 {
		t.Fatalf("restarted sweep not served from disk: %+v", last2)
	}
	if got := m2.Stats()["store_hits"]; got != 6 {
		t.Fatalf("store_hits = %d, want 6", got)
	}

	// Bit-identical across the restart, point by point (stream order may
	// differ; match by key).
	byKey := map[string]string{}
	for _, p := range points1 {
		b, _ := json.Marshal(*p.Result)
		byKey[p.Key] = string(b)
	}
	for _, p := range points2 {
		b, _ := json.Marshal(*p.Result)
		if byKey[p.Key] != string(b) {
			t.Fatalf("point key %s diverged across restart", p.Key)
		}
	}

	// The exposition confirms what the driver's persistence smoke asserts:
	// hits counted, zero cycles simulated since the restart.
	resp, err := http.Get(srv2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	metrics := map[string]string{}
	for sc.Scan() {
		if f := strings.Fields(sc.Text()); len(f) == 2 && !strings.HasPrefix(f[0], "#") {
			metrics[f[0]] = f[1]
		}
	}
	if metrics["nocd_store_hits_total"] != "6" {
		t.Fatalf("nocd_store_hits_total = %q, want 6", metrics["nocd_store_hits_total"])
	}
	if metrics["nocd_cycles_simulated_total"] != "0" {
		t.Fatalf("restarted daemon simulated cycles: %q", metrics["nocd_cycles_simulated_total"])
	}
}

// TestTwoNodeSweepDispatch is the fleet acceptance test: two daemons, each
// listing the other as a peer, split a sweep's grid by consistent hashing —
// every point simulated exactly once across the fleet, results identical to
// a direct run. Node A receives the sweep; node B serves its share over
// HTTP.
func TestTwoNodeSweepDispatch(t *testing.T) {
	// Node B first: a plain daemon; its URL seeds node A's peer list.
	mB := service.New(service.Config{Workers: 2, Chunk: 100})
	swB := sweepapi.New(mB, sweepapi.Config{})
	srvB := httptest.NewServer(newMux(mB, swB))
	defer func() {
		srvB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		swB.Shutdown(ctx)
		mB.Shutdown(ctx)
	}()

	// Node A: dispatches across {A, B}. Its own name never appears in a
	// request, so any spelling works as long as it is ring-distinct.
	mA := service.New(service.Config{Workers: 2, Chunk: 100})
	d, err := cluster.New(cluster.Config{
		Self: "http://node-a", Peers: []string{srvB.URL},
		Replicas: 2, Telemetry: mA.Telemetry(), Spans: mA.SpanLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	swA := sweepapi.New(mA, sweepapi.Config{Dispatcher: d})
	srvA := httptest.NewServer(newMux(mA, swA))
	defer func() {
		srvA.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		swA.Shutdown(ctx)
		mA.Shutdown(ctx)
	}()

	body := `{
	  "template": {"topology":"mesh4x4","scheme":"baseline","va":"static",
	               "warmup":50,"measure":200,
	               "workload":{"pattern":"uniform","rate":0.1}},
	  "axes": {"scheme": ["baseline","pseudo"], "seed": [1,2,3,4,5,6,7,8]}}`
	_, last, points := postSweepStream(t, srvA.URL, body)
	if last.State != "done" || last.Done != 16 {
		t.Fatalf("sweep: %+v", last)
	}

	aRan := mA.Stats()["completed"]
	bRan := mB.Stats()["completed"]
	if aRan+bRan != 16 || aRan == 0 || bRan == 0 {
		t.Fatalf("fleet ran %d+%d jobs; want all 16 split across both nodes", aRan, bRan)
	}
	if last.Remote != int(bRan) {
		t.Fatalf("sweep counted %d remote points, node B ran %d", last.Remote, bRan)
	}

	remotes := 0
	for _, p := range points {
		if p.Source == "remote" {
			remotes++
		}
		exp, err := p.Spec.Spec.Experiment()
		if err != nil {
			t.Fatal(err)
		}
		want := exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: p.Spec.Workload.Rate})
		got, _ := json.Marshal(*p.Result)
		wantB, _ := json.Marshal(want)
		if string(got) != string(wantB) {
			t.Fatalf("point %d (%s seed %d) diverged from direct run",
				p.Index, p.Spec.Scheme, p.Spec.Seed)
		}
	}
	if remotes != int(bRan) {
		t.Fatalf("%d points marked remote, node B ran %d", remotes, bRan)
	}
}
