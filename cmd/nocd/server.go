package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"pseudocircuit/internal/service"
	"pseudocircuit/internal/sweepapi"
	"pseudocircuit/internal/telemetry"
)

// maxBodyBytes bounds a job-submission body; specs are a few hundred bytes.
// Sweep bodies carry a grid on top of the template and stay well under it.
const maxBodyBytes = 1 << 20

// watchInterval paces the NDJSON progress stream of GET /jobs/{id}?watch=1.
const watchInterval = 250 * time.Millisecond

// sweepWatchInterval paces sweep result streams. Sweeps complete many small
// points per second on a warm cache, so they poll faster than job watch.
const sweepWatchInterval = 100 * time.Millisecond

// newMux builds the service API. main adds the /debug/ subtree and the
// request-log middleware; tests serve this mux directly.
func newMux(m *service.Manager, sw *sweepapi.Manager) *http.ServeMux {
	mux := http.NewServeMux()
	// /healthz is liveness only: the process is up and serving. Readiness
	// (would a submission be accepted right now?) is /readyz, which load
	// balancers should poll instead.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Ready(); err != nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentType)
		m.Telemetry().WritePrometheus(w)
	})
	// /spans exports the job-lifecycle span log: JSONL by default,
	// ?format=chrome for a chrome://tracing / Perfetto document.
	mux.HandleFunc("GET /spans", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "", "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			m.SpanLog().WriteJSONL(w)
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			m.SpanLog().WriteChromeTrace(w)
		default:
			writeError(w, http.StatusBadRequest, errors.New("unknown format; want jsonl or chrome"))
		}
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(m, w, r)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleStatus(m, w, r)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		handleResult(m, w, r)
	})
	cancel := func(w http.ResponseWriter, r *http.Request) {
		handleCancel(m, w, r)
	}
	mux.HandleFunc("POST /jobs/{id}/cancel", cancel)
	mux.HandleFunc("DELETE /jobs/{id}", cancel)

	mux.HandleFunc("POST /sweeps", func(w http.ResponseWriter, r *http.Request) {
		handleSweepSubmit(sw, w, r)
	})
	mux.HandleFunc("GET /sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sw.Sweeps())
	})
	mux.HandleFunc("GET /sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleSweepStatus(sw, w, r)
	})
	sweepCancel := func(w http.ResponseWriter, r *http.Request) {
		st, err := sw.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}
	mux.HandleFunc("POST /sweeps/{id}/cancel", sweepCancel)
	mux.HandleFunc("DELETE /sweeps/{id}", sweepCancel)
	return mux
}

// sweepLine is one line of the sweep NDJSON stream: a leading "sweep" line
// with the accepted sweep, one "point" line per completed grid point in
// completion order, and a final "end" line with the terminal status. A
// stream that stops without an "end" line was cut off, and clients must
// treat it so.
type sweepLine struct {
	Type  string                `json:"type"`
	Sweep *sweepapi.Status      `json:"sweep,omitempty"`
	Point *sweepapi.PointStatus `json:"point,omitempty"`
}

func handleSweepSubmit(sw *sweepapi.Manager, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("request body over 1 MiB"))
		return
	}
	st, err := sw.Submit(body)
	switch {
	case errors.Is(err, service.ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, service.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	q := r.URL.Query()
	switch {
	case q.Get("watch") != "":
		streamSweep(sw, w, r, st.ID)
	case q.Get("wait") != "":
		fin, err := sw.Wait(r.Context(), st.ID)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; the sweep keeps running
			}
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, fin)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func handleSweepStatus(sw *sweepapi.Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := sw.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, sweepapi.ErrUnknownSweep)
		return
	}
	q := r.URL.Query()
	switch {
	case q.Get("watch") != "":
		streamSweep(sw, w, r, id)
	case q.Get("wait") != "":
		fin, err := sw.Wait(r.Context(), id)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, fin)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

// streamSweep replays the sweep's completed points from the beginning and
// follows it live as NDJSON until the terminal status ("end" line) or the
// client disconnects. Disconnecting does not cancel the sweep — results
// keep accumulating in the cache and a reconnect replays them all; use the
// cancel endpoint to stop the work itself.
func streamSweep(sw *sweepapi.Manager, w http.ResponseWriter, r *http.Request, id string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(sweepWatchInterval)
	defer ticker.Stop()

	st, ok := sw.Get(id)
	if !ok {
		return
	}
	if err := enc.Encode(sweepLine{Type: "sweep", Sweep: &st}); err != nil {
		return
	}
	cursor := 0
	for {
		pts, next, st, ok := sw.PointsSince(id, cursor)
		if !ok {
			return
		}
		cursor = next
		for i := range pts {
			if err := enc.Encode(sweepLine{Type: "point", Point: &pts[i]}); err != nil {
				return
			}
		}
		if flusher != nil && len(pts) > 0 {
			flusher.Flush()
		}
		// Terminal status means every point is published; with the cursor
		// caught up the stream is complete.
		if st.Terminal() && cursor == st.Completed {
			enc.Encode(sweepLine{Type: "end", Sweep: &st})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func handleSubmit(m *service.Manager, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, errors.New("request body over 1 MiB"))
		return
	}
	req, err := service.DecodeRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := m.Submit(req)
	switch {
	case errors.Is(err, service.ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, service.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, service.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		jw, err := m.Wait(r.Context(), j.ID)
		if err != nil {
			// The wait failed, so jw is a stale snapshot — a 200 here would
			// hand the client a non-terminal state as if the job finished.
			if r.Context().Err() != nil {
				return // client gone; nobody is reading the response
			}
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		j = jw
	}
	noteJob(r, j)
	status := http.StatusAccepted
	if j.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, j)
}

func handleStatus(m *service.Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, service.ErrUnknownJob)
		return
	}
	noteJob(r, j)
	q := r.URL.Query()
	switch {
	case q.Get("watch") != "":
		streamStatus(m, w, r, id)
	case q.Get("wait") != "":
		jw, err := m.Wait(r.Context(), id)
		if err != nil {
			// Same contract as submit?wait: never 200 with a stale snapshot.
			if r.Context().Err() != nil {
				return
			}
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		noteJob(r, jw)
		writeJSON(w, http.StatusOK, jw)
	default:
		writeJSON(w, http.StatusOK, j)
	}
}

// streamStatus writes one status line per tick as NDJSON until the job is
// terminal or the client goes away; per-chunk progress (cyclesDone) arrives
// as the simulation crosses chunk boundaries.
func streamStatus(m *service.Manager, w http.ResponseWriter, r *http.Request, id string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(watchInterval)
	defer ticker.Stop()
	for {
		j, ok := m.Get(id)
		if !ok {
			return
		}
		if err := enc.Encode(j); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if j.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func handleResult(m *service.Manager, w http.ResponseWriter, r *http.Request) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, service.ErrUnknownJob)
		return
	}
	noteJob(r, j)
	switch j.State {
	case service.StateDone:
		writeJSON(w, http.StatusOK, j.Result)
	case service.StateFailed:
		writeError(w, http.StatusInternalServerError, errors.New(j.Error))
	case service.StateCanceled:
		writeError(w, http.StatusGone, errors.New("job canceled"))
	default:
		writeError(w, http.StatusConflict, errors.New("job not finished: "+string(j.State)))
	}
}

func handleCancel(m *service.Manager, w http.ResponseWriter, r *http.Request) {
	j, err := m.Cancel(r.PathValue("id"))
	if errors.Is(err, service.ErrUnknownJob) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	noteJob(r, j)
	writeJSON(w, http.StatusOK, j)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
