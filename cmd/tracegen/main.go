// Command tracegen extracts packet traces from the CMP substrate (the way
// the paper extracts traces from its full-system simulator), inspects
// existing traces, and replays them through a network configuration.
//
// Examples:
//
//	tracegen -benchmark fma3d -cycles 20000 -out fma3d.trace
//	tracegen -inspect fma3d.trace
//	tracegen -replay fma3d.trace -scheme pseudo+s+b
package main

import (
	"flag"
	"fmt"
	"os"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/trace"
	"pseudocircuit/internal/vcalloc"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "fma3d", "CMP benchmark profile to trace")
		cycles    = flag.Int("cycles", 20000, "cycles to simulate while recording")
		out       = flag.String("out", "", "output trace file (generation mode)")
		inspect   = flag.String("inspect", "", "trace file to summarize")
		replay    = flag.String("replay", "", "trace file to replay")
		scheme    = flag.String("scheme", "pseudo+s+b", "scheme for replay")
		seed      = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		inspectTrace(*inspect)
	case *replay != "":
		replayTrace(*replay, *scheme, *seed)
	case *out != "":
		generate(*benchmark, *cycles, *out, *seed)
	default:
		fmt.Fprintln(os.Stderr, "tracegen: one of -out, -inspect, -replay is required")
		os.Exit(1)
	}
}

func generate(benchmark string, cycles int, out string, seed uint64) {
	prof, ok := cmp.ProfileByName(benchmark)
	if !ok {
		fatal("unknown benchmark %q", benchmark)
	}
	topo := topology.NewCMesh(4, 4, 4)
	n := network.New(network.DefaultConfig(topo))
	w := cmp.New(topo, cmp.PaperTableI(), prof, sim.NewRNG(seed))

	f, err := os.Create(out)
	if err != nil {
		fatal("creating %s: %v", out, err)
	}
	defer f.Close()
	tw, err := trace.NewWriter(f, topo.Nodes())
	if err != nil {
		fatal("writing header: %v", err)
	}
	rec := &trace.Recorder{Inner: w, W: tw}
	n.Run(rec, cycles)
	if rec.Err() != nil {
		fatal("recording: %v", rec.Err())
	}
	if err := tw.Flush(); err != nil {
		fatal("flushing: %v", err)
	}
	fmt.Printf("recorded %d packets over %d cycles of %s to %s\n", tw.Count(), cycles, benchmark, out)
}

func inspectTrace(path string) {
	recs, nodes := readAll(path)
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return
	}
	perClass := map[string]int{}
	flits := 0
	for _, r := range recs {
		perClass[r.Class.String()]++
		flits += r.Size
	}
	span := recs[len(recs)-1].Cycle - recs[0].Cycle + 1
	fmt.Printf("%s: %d nodes, %d packets, %d flits over %d cycles (%.4f flits/node/cycle)\n",
		path, nodes, len(recs), flits, span, float64(flits)/float64(span)/float64(nodes))
	for class, cnt := range map[string]int(perClass) {
		fmt.Printf("  %-5s %d\n", class, cnt)
	}
}

func replayTrace(path, schemeName string, seed uint64) {
	recs, nodes := readAll(path)
	topo := topology.NewCMesh(4, 4, 4)
	if topo.Nodes() != nodes {
		fatal("trace has %d nodes; replay topology has %d", nodes, topo.Nodes())
	}
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(parseScheme(schemeName))
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	cfg.Seed = seed
	n := network.New(cfg)
	p := trace.NewPlayer(recs)
	if !n.Drain(p, 100*len(recs)+100000) {
		fatal("replay did not drain")
	}
	fmt.Printf("replayed %d packets: %v\n", len(recs), n.Stats)
}

func readAll(path string) ([]trace.Record, int) {
	f, err := os.Open(path)
	if err != nil {
		fatal("opening %s: %v", path, err)
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		fatal("reading header: %v", err)
	}
	recs, err := tr.ReadAll()
	if err != nil {
		fatal("reading records: %v", err)
	}
	return recs, tr.Nodes()
}

func parseScheme(s string) core.Scheme {
	for _, sc := range core.Schemes {
		if sc.String() == s {
			return sc
		}
	}
	switch s {
	case "baseline":
		return core.Baseline
	case "pseudo":
		return core.Pseudo
	case "pseudo+s":
		return core.PseudoS
	case "pseudo+b":
		return core.PseudoB
	case "pseudo+s+b":
		return core.PseudoSB
	}
	fatal("unknown scheme %q", s)
	return core.Baseline
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
