// Command sweep regenerates the paper's evaluation: every figure and table
// (Fig. 1, 6, 8-14, Tables I-II) plus the ablation study, printing the same
// rows/series the paper reports.
//
// Examples:
//
//	sweep -exp all                 # everything (takes a few minutes)
//	sweep -exp fig8                # one figure
//	sweep -exp fig9 -benchmarks fma3d,specjbb -measure 5000
//	sweep -exp fig12 -csv          # CSV output for plotting
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pseudocircuit/internal/experiments"
	"pseudocircuit/internal/version"
)

// tabler lets every figure result render uniformly.
type tabler interface {
	Tables() []experiments.Table
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1, fig6, fig8, fig9, fig10, fig11, fig12, fig13, fig14, table1, table2, ablations, heatmap, faults, fault-heatmap, churn, ext-system, ext-load, ext-depth, all")
		warmup   = flag.Int("warmup", 1000, "warmup cycles")
		measure  = flag.Int("measure", 10000, "measured cycles")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		seed     = flag.Uint64("seed", 1, "base seed")
		workers  = flag.Int("workers", 0, "cycle-kernel worker goroutines per run (0/1 sequential); any value gives bit-identical results")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		progress = flag.Bool("progress", false, "report live per-grid-point progress on stderr")

		showVersion = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("sweep"))
		return
	}

	o := experiments.Options{Warmup: *warmup, Measure: *measure, Seed: *seed, Workers: *workers}
	if *benches != "" {
		o.Benchmarks = strings.Split(*benches, ",")
	}

	runners := map[string]func() tabler{
		"fig1":  func() tabler { return experiments.Fig1(o) },
		"fig6":  func() tabler { return experiments.Fig6(o) },
		"fig8":  func() tabler { return experiments.Fig8(o) },
		"fig9":  func() tabler { return gridOnce(o) },
		"fig10": func() tabler { return gridOnce(o) },
		"fig11": func() tabler { return experiments.Fig11(o) },
		"fig12": func() tabler { return experiments.Fig12(o) },
		"fig13": func() tabler { return experiments.Fig13(o) },
		"fig14": func() tabler { return experiments.Fig14(o) },
		"table1": func() tabler {
			return tableOnly{experiments.TableI()}
		},
		"table2": func() tabler {
			return tableOnly{experiments.TableII()}
		},
		"ablations":     func() tabler { return experiments.Ablations(o) },
		"heatmap":       func() tabler { return experiments.RouterHeatmap(o) },
		"faults":        func() tabler { return experiments.FaultWindow(o) },
		"fault-heatmap": func() tabler { return experiments.FaultHeatmap(o) },
		"churn":         func() tabler { return experiments.Churn(o) },
		"ext-system":    func() tabler { return experiments.SystemImpact(o) },
		"ext-load":      func() tabler { return experiments.ReuseVsLoad(o) },
		"ext-depth":     func() tabler { return experiments.SpecDepth(o) },
	}

	order := []string{"table1", "table2", "fig1", "fig6", "fig8", "fig9", "fig11", "fig12", "fig13", "fig14", "ablations", "heatmap", "faults", "fault-heatmap", "churn", "ext-system", "ext-load", "ext-depth"}
	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q\n", *exp)
			os.Exit(1)
		}
		selected = []string{*exp}
	}

	for _, name := range selected {
		if *progress {
			name := name
			o.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d", name, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		r := runners[name]()
		for _, t := range r.Tables() {
			if *csv {
				t.CSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
		}
	}
}

// gridCache avoids running the expensive Fig. 9/10 grid twice when both are
// requested in one invocation.
var gridCache *experiments.GridResult

func gridOnce(o experiments.Options) tabler {
	if gridCache == nil {
		g := experiments.Fig9And10(o)
		gridCache = &g
	}
	return gridCache
}

// tableOnly adapts a bare Table to the tabler interface.
type tableOnly struct{ t experiments.Table }

func (t tableOnly) Tables() []experiments.Table { return []experiments.Table{t.t} }
