// Command benchcheck measures the cycle kernel's ns/cycle at the Fig. 12
// operating point (8×8 mesh, Pseudo+S+B, loaded uniform-random traffic) for
// the sequential and the parallel kernel, plus the sweep pipeline's ns/point
// on a fully warm cache (pure batch-API overhead: expansion,
// canonicalization, scheduling — zero simulation), and gates performance
// regressions against a checked-in snapshot:
//
//	benchcheck -write BENCH_7.json               # refresh the snapshot
//	benchcheck -against BENCH_7.json             # fail on >15% regression
//	benchcheck -against BENCH_7.json -tolerance 0.25
//
// Each configuration is measured several times and the minimum is compared —
// the minimum is the least noisy estimator of the true cost on a shared
// machine (everything above it is scheduling interference). Speedups are
// never an error; the snapshot should then be refreshed with -write so the
// gate tightens.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"pseudocircuit/internal/service"
	"pseudocircuit/internal/sweepapi"
	"pseudocircuit/noc"
)

// Snapshot is the checked-in benchmark baseline. Host metadata records where
// the numbers came from: comparisons across different hardware measure the
// hardware, not the code.
type Snapshot struct {
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"numCPU"`
	NsPerCycle map[string]float64 `json:"nsPerCycle"`
}

const repeats = 3

func main() {
	var (
		write     = flag.String("write", "", "measure and write the snapshot to this path")
		against   = flag.String("against", "", "measure and compare to the snapshot at this path")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional slowdown before failing")
	)
	flag.Parse()
	if (*write == "") == (*against == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: exactly one of -write or -against is required")
		os.Exit(2)
	}

	cur := Snapshot{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		NsPerCycle: map[string]float64{
			"fig12/sequential": measure(0),
			"fig12/parallel":   measure(runtime.GOMAXPROCS(0)),
			"sweep/warm-point": measureSweep(),
		},
	}
	for _, k := range keys(cur) {
		fmt.Printf("%-18s %10.1f ns/cycle\n", k, cur.NsPerCycle[k])
	}

	if *write != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal("encoding snapshot: %v", err)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s\n", *write)
		return
	}

	data, err := os.ReadFile(*against)
	if err != nil {
		fatal("%v", err)
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fatal("parsing %s: %v", *against, err)
	}
	if base.GOOS != cur.GOOS || base.GOARCH != cur.GOARCH || base.NumCPU != cur.NumCPU {
		fmt.Printf("note: snapshot host %s/%s %d-cpu differs from this host %s/%s %d-cpu; the comparison partly measures hardware\n",
			base.GOOS, base.GOARCH, base.NumCPU, cur.GOOS, cur.GOARCH, cur.NumCPU)
	}
	failed := false
	for _, k := range keys(cur) {
		want, ok := base.NsPerCycle[k]
		if !ok || want <= 0 {
			fmt.Printf("%-18s no baseline; skipped\n", k)
			continue
		}
		ratio := cur.NsPerCycle[k] / want
		verdict := "ok"
		if ratio > 1+*tolerance {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-18s baseline %10.1f  now %10.1f  ratio %.2f  %s\n",
			k, want, cur.NsPerCycle[k], ratio, verdict)
	}
	if failed {
		fatal("kernel slowed down more than %.0f%% against %s", 100**tolerance, *against)
	}
}

// measure returns the minimum ns/cycle over repeats runs of the Fig. 12
// kernel benchmark (mirrors BenchmarkFig12Sequential/Parallel in
// bench_test.go: warm the pools to the zero-alloc steady state, then time
// n.Run for b.N cycles).
func measure(workers int) float64 {
	best := 0.0
	for i := 0; i < repeats; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			exp := noc.Experiment{
				Topology: noc.Mesh(8, 8),
				Scheme:   noc.PseudoSB,
				Routing:  noc.XY,
				Policy:   noc.StaticVA,
				Workers:  workers,
				Warmup:   100,
				Measure:  1,
			}
			n := exp.Build()
			w := exp.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.18})
			n.Run(w, 2000)
			b.ResetTimer()
			n.Run(w, b.N)
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func keys(s Snapshot) []string {
	return []string{"fig12/sequential", "fig12/parallel", "sweep/warm-point"}
}

// sweepGridPoints is the warm-sweep benchmark's grid size (2 schemes × 32
// seeds); ns/point is the measured sweep wall time divided by it.
const sweepGridPoints = 64

// measureSweep returns the minimum ns per grid point of a 64-point sweep
// served entirely from the warm in-memory cache — the throughput ceiling of
// the batch API when the fleet's stores already hold every result.
func measureSweep() float64 {
	svc := service.New(service.Config{Workers: runtime.GOMAXPROCS(0), Chunk: 1000})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	sw := sweepapi.New(svc, sweepapi.Config{Inflight: 16})
	seeds := ""
	for i := 1; i <= sweepGridPoints/2; i++ {
		if i > 1 {
			seeds += ","
		}
		seeds += fmt.Sprint(i)
	}
	body := []byte(`{
	  "template": {"topology":"mesh4x4","scheme":"baseline","va":"static",
	               "warmup":50,"measure":200,
	               "workload":{"pattern":"uniform","rate":0.1}},
	  "axes": {"scheme": ["baseline","pseudo"], "seed": [` + seeds + `]}}`)
	run := func() {
		st, err := sw.Submit(body)
		if err != nil {
			fatal("warm sweep: %v", err)
		}
		fin, err := sw.Wait(context.Background(), st.ID)
		if err != nil || fin.State != "done" {
			fatal("warm sweep: state %s err %v", fin.State, err)
		}
	}
	run() // simulate the grid once; everything after is cache-served

	best := 0.0
	for i := 0; i < repeats; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				run()
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N) / sweepGridPoints
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
