// Command benchcheck measures the cycle kernel's ns/cycle at the Fig. 12
// operating point (8×8 mesh, Pseudo+S+B, loaded uniform-random traffic) for
// the sequential and the parallel kernel, plus the sweep pipeline's ns/point
// on a fully warm cache (pure batch-API overhead: expansion,
// canonicalization, scheduling — zero simulation), and gates performance
// regressions against a checked-in snapshot:
//
//	benchcheck -write BENCH_7.json               # refresh the snapshot
//	benchcheck -against BENCH_7.json             # fail on >15% regression
//	benchcheck -against latest                   # newest BENCH_<n>.json in cwd
//	benchcheck -against latest -require-all      # missing series is an error
//	benchcheck -against latest -tolerances 'fig12/*=0.35'
//
// -against latest resolves the highest-numbered BENCH_<n>.json in the working
// directory, so the CI gate follows snapshot refreshes without a workflow
// edit; it fails loudly when no snapshot exists at all. -require-all turns
// "no baseline; skipped" into a failure — the gate can only weaken silently
// when a series may vanish from the snapshot unnoticed. -tolerances applies
// per-series overrides (glob=fraction, comma-separated) on top of -tolerance,
// so the simulator kernel series can be gated tightly while noisier
// service-level series keep a loose bound.
//
// Each configuration is measured several times and the minimum is compared —
// the minimum is the least noisy estimator of the true cost on a shared
// machine (everything above it is scheduling interference). Speedups are
// never an error; the snapshot should then be refreshed with -write so the
// gate tightens.
//
// On a single-CPU host (GOMAXPROCS == 1) the fig12/parallel series is
// skipped: the sharded kernel degenerates to one worker and the measurement
// would gate sharding overhead, not parallel speed. The snapshot records the
// effective worker count in parallelWorkers so a reader can tell which case
// produced the numbers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"pseudocircuit/internal/service"
	"pseudocircuit/internal/sweepapi"
	"pseudocircuit/noc"
)

// Snapshot is the checked-in benchmark baseline. Host metadata records where
// the numbers came from: comparisons across different hardware measure the
// hardware, not the code. ParallelWorkers is the worker count fig12/parallel
// ran with — 0 means the series was skipped (single-CPU host).
type Snapshot struct {
	GOOS            string             `json:"goos"`
	GOARCH          string             `json:"goarch"`
	NumCPU          int                `json:"numCPU"`
	ParallelWorkers int                `json:"parallelWorkers,omitempty"`
	NsPerCycle      map[string]float64 `json:"nsPerCycle"`
}

const repeats = 3

func main() {
	var (
		write      = flag.String("write", "", "measure and write the snapshot to this path")
		against    = flag.String("against", "", "measure and compare to the snapshot at this path; 'latest' resolves the newest BENCH_<n>.json in the working directory")
		tolerance  = flag.Float64("tolerance", 0.15, "allowed fractional slowdown before failing")
		tolerances = flag.String("tolerances", "", "per-series tolerance overrides, comma-separated glob=fraction pairs (e.g. 'fig12/*=0.35')")
		requireAll = flag.Bool("require-all", false, "fail when a measured series has no baseline in the snapshot instead of skipping it")
	)
	flag.Parse()
	if (*write == "") == (*against == "") {
		fmt.Fprintln(os.Stderr, "benchcheck: exactly one of -write or -against is required")
		os.Exit(2)
	}
	overrides, err := parseTolerances(*tolerances)
	if err != nil {
		fatal("%v", err)
	}

	workers := runtime.GOMAXPROCS(0)
	cur := Snapshot{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		NsPerCycle: map[string]float64{
			"fig12/sequential": measure(0),
			"sweep/warm-point": measureSweep(),
		},
	}
	if workers > 1 {
		cur.ParallelWorkers = workers
		cur.NsPerCycle["fig12/parallel"] = measure(workers)
	} else {
		fmt.Println("fig12/parallel     skipped: GOMAXPROCS=1, the sharded kernel would measure sharding overhead, not parallelism")
	}
	for _, k := range seriesOrder(cur.NsPerCycle) {
		fmt.Printf("%-18s %10.1f ns/cycle\n", k, cur.NsPerCycle[k])
	}

	if *write != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal("encoding snapshot: %v", err)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s\n", *write)
		return
	}

	target := *against
	if target == "latest" {
		target, err = latestSnapshot(".")
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("resolved -against latest to %s\n", target)
	}
	data, err := os.ReadFile(target)
	if err != nil {
		fatal("%v", err)
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fatal("parsing %s: %v", target, err)
	}
	if base.GOOS != cur.GOOS || base.GOARCH != cur.GOARCH || base.NumCPU != cur.NumCPU {
		fmt.Printf("note: snapshot host %s/%s %d-cpu differs from this host %s/%s %d-cpu; the comparison partly measures hardware\n",
			base.GOOS, base.GOARCH, base.NumCPU, cur.GOOS, cur.GOARCH, cur.NumCPU)
	}
	failed := false
	for _, k := range seriesOrder(cur.NsPerCycle) {
		want, ok := base.NsPerCycle[k]
		if !ok || want <= 0 {
			if k == "fig12/parallel" && base.ParallelWorkers == 0 {
				// The snapshot host skipped the parallel series (single CPU,
				// recorded as parallelWorkers 0): there is no baseline to
				// require, so the skip stands even under -require-all.
				fmt.Printf("%-18s baseline host skipped this series (single-CPU snapshot); skipped\n", k)
				continue
			}
			if *requireAll {
				fmt.Printf("%-18s MISSING BASELINE — refresh the snapshot with -write to cover it\n", k)
				failed = true
				continue
			}
			fmt.Printf("%-18s no baseline; skipped\n", k)
			continue
		}
		tol := toleranceFor(k, *tolerance, overrides)
		ratio := cur.NsPerCycle[k] / want
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-18s baseline %10.1f  now %10.1f  ratio %.2f (tol %.2f)  %s\n",
			k, want, cur.NsPerCycle[k], ratio, tol, verdict)
	}
	for k := range base.NsPerCycle {
		if _, ok := cur.NsPerCycle[k]; !ok {
			fmt.Printf("%-18s in baseline but not measured on this host\n", k)
		}
	}
	if failed {
		fatal("perf gate failed against %s (refresh an intentionally changed baseline with -write)", target)
	}
}

// latestSnapshot returns the path of the highest-numbered BENCH_<n>.json in
// dir, or an error when none exists — a missing snapshot must fail the gate
// loudly, not let it pass vacuously.
func latestSnapshot(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		name := filepath.Base(m)
		num := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json")
		n, err := strconv.Atoi(num)
		if err != nil || n < 0 {
			continue
		}
		if n > bestN {
			bestN, best = n, m
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json snapshot in %s; create one with -write BENCH_0.json", dir)
	}
	return best, nil
}

// parseTolerances parses comma-separated glob=fraction pairs.
func parseTolerances(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(spec, ",") {
		glob, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("-tolerances: %q is not glob=fraction", pair)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("-tolerances: bad fraction in %q", pair)
		}
		if _, err := path.Match(glob, "probe"); err != nil {
			return nil, fmt.Errorf("-tolerances: bad glob in %q: %v", pair, err)
		}
		out[glob] = f
	}
	return out, nil
}

// toleranceFor returns the override whose glob matches series k, or def. With
// several matching globs the most specific (longest) wins, ties broken
// lexically so the choice is deterministic.
func toleranceFor(k string, def float64, overrides map[string]float64) float64 {
	bestGlob := ""
	val := def
	for glob, f := range overrides {
		if ok, _ := path.Match(glob, k); !ok {
			continue
		}
		if len(glob) > len(bestGlob) || (len(glob) == len(bestGlob) && glob < bestGlob) {
			bestGlob, val = glob, f
		}
	}
	return val
}

// seriesOrder returns the measured series in canonical report order.
func seriesOrder(m map[string]float64) []string {
	canonical := []string{"fig12/sequential", "fig12/parallel", "sweep/warm-point"}
	var out []string
	for _, k := range canonical {
		if _, ok := m[k]; ok {
			out = append(out, k)
		}
	}
	var rest []string
	for k := range m {
		if !contains(canonical, k) {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// measure returns the minimum ns/cycle over repeats runs of the Fig. 12
// kernel benchmark (mirrors BenchmarkFig12Sequential/Parallel in
// bench_test.go: warm the pools to the zero-alloc steady state, then time
// n.Run for b.N cycles).
func measure(workers int) float64 {
	best := 0.0
	for i := 0; i < repeats; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			exp := noc.Experiment{
				Topology: noc.Mesh(8, 8),
				Scheme:   noc.PseudoSB,
				Routing:  noc.XY,
				Policy:   noc.StaticVA,
				Workers:  workers,
				Warmup:   100,
				Measure:  1,
			}
			n := exp.Build()
			w := exp.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.18})
			n.Run(w, 2000)
			b.ResetTimer()
			n.Run(w, b.N)
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// sweepGridPoints is the warm-sweep benchmark's grid size (2 schemes × 32
// seeds); ns/point is the measured sweep wall time divided by it.
const sweepGridPoints = 64

// measureSweep returns the minimum ns per grid point of a 64-point sweep
// served entirely from the warm in-memory cache — the throughput ceiling of
// the batch API when the fleet's stores already hold every result.
func measureSweep() float64 {
	svc := service.New(service.Config{Workers: runtime.GOMAXPROCS(0), Chunk: 1000})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	sw := sweepapi.New(svc, sweepapi.Config{Inflight: 16})
	seeds := ""
	for i := 1; i <= sweepGridPoints/2; i++ {
		if i > 1 {
			seeds += ","
		}
		seeds += fmt.Sprint(i)
	}
	body := []byte(`{
	  "template": {"topology":"mesh4x4","scheme":"baseline","va":"static",
	               "warmup":50,"measure":200,
	               "workload":{"pattern":"uniform","rate":0.1}},
	  "axes": {"scheme": ["baseline","pseudo"], "seed": [` + seeds + `]}}`)
	run := func() {
		st, err := sw.Submit(body)
		if err != nil {
			fatal("warm sweep: %v", err)
		}
		fin, err := sw.Wait(context.Background(), st.ID)
		if err != nil || fin.State != "done" {
			fatal("warm sweep: state %s err %v", fin.State, err)
		}
	}
	run() // simulate the grid once; everything after is cache-served

	best := 0.0
	for i := 0; i < repeats; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				run()
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N) / sweepGridPoints
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
