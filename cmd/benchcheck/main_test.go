package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLatestSnapshot(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_9.json", "BENCH_x.json", "BENCH_.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Fatalf("latestSnapshot = %s, want BENCH_10.json (numeric order, not lexical)", got)
	}
}

func TestLatestSnapshotEmptyFailsLoudly(t *testing.T) {
	if _, err := latestSnapshot(t.TempDir()); err == nil {
		t.Fatal("latestSnapshot on an empty directory must error, not pass vacuously")
	}
}

func TestParseTolerances(t *testing.T) {
	m, err := parseTolerances("fig12/*=0.35, sweep/warm-point=1.0")
	if err != nil {
		t.Fatal(err)
	}
	if m["fig12/*"] != 0.35 || m["sweep/warm-point"] != 1.0 {
		t.Fatalf("parsed %v", m)
	}
	for _, bad := range []string{"fig12/*", "a=b", "a=-1", "[=0.5"} {
		if _, err := parseTolerances(bad); err == nil {
			t.Errorf("parseTolerances(%q) should fail", bad)
		}
	}
}

func TestToleranceFor(t *testing.T) {
	over := map[string]float64{"fig12/*": 0.35, "fig12/sequential": 0.2}
	if got := toleranceFor("fig12/parallel", 1.0, over); got != 0.35 {
		t.Fatalf("glob override = %v, want 0.35", got)
	}
	if got := toleranceFor("fig12/sequential", 1.0, over); got != 0.2 {
		t.Fatalf("most specific override = %v, want 0.2", got)
	}
	if got := toleranceFor("sweep/warm-point", 1.0, over); got != 1.0 {
		t.Fatalf("default = %v, want 1.0", got)
	}
}

func TestSeriesOrder(t *testing.T) {
	m := map[string]float64{"sweep/warm-point": 1, "fig12/sequential": 1, "extra/z": 1, "extra/a": 1}
	got := seriesOrder(m)
	want := []string{"fig12/sequential", "sweep/warm-point", "extra/a", "extra/z"}
	if len(got) != len(want) {
		t.Fatalf("seriesOrder = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seriesOrder = %v, want %v", got, want)
		}
	}
}
