// Command promlint validates a Prometheus text exposition (as served by
// nocd's /metrics) against the strict checker in internal/telemetry: every
// sample must belong to a declared family, histogram buckets must be
// cumulative with a +Inf terminator, and sample lines must parse exactly.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promlint
//	promlint metrics.txt
//
// With -require NAME, the exposition must additionally contain a sample of
// that family with a value >= -min (CI uses this to assert the cache-hit
// counter moved). Exits non-zero on any violation.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pseudocircuit/internal/telemetry"
)

func main() {
	var (
		require = flag.String("require", "", "metric family that must be present")
		min     = flag.Float64("min", 1, "minimum value for the -require sample")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		r, src = f, flag.Arg(0)
	} else if flag.NArg() > 1 {
		fatal("usage: promlint [-require NAME [-min V]] [file]")
	}

	data, err := io.ReadAll(r)
	if err != nil {
		fatal("read %s: %v", src, err)
	}
	families, err := telemetry.ValidateExposition(bytes.NewReader(data))
	if err != nil {
		fatal("%s: %v", src, err)
	}
	if *require != "" {
		v, ok := sampleValue(data, *require)
		if !ok {
			fatal("%s: no sample of required family %q", src, *require)
		}
		if v < *min {
			fatal("%s: %s = %g, want >= %g", src, *require, v, *min)
		}
	}
	fmt.Printf("promlint: %s: %d families ok\n", src, families)
}

// sampleValue returns the largest value among samples of the named family
// (any label set).
func sampleValue(data []byte, name string) (float64, bool) {
	var best float64
	var found bool
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		end := strings.IndexAny(line, "{ ")
		if end < 0 || line[:end] != name {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		if !found || v > best {
			best, found = v, true
		}
	}
	return best, found
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "promlint: "+format+"\n", args...)
	os.Exit(1)
}
