// Command nocsim runs a single on-chip-network simulation and prints its
// measurements: one (topology, scheme, routing, VA policy, workload)
// configuration per invocation.
//
// Examples:
//
//	nocsim -topo mesh8x8 -scheme pseudo+s+b -routing xy -va static \
//	       -traffic uniform -rate 0.10
//	nocsim -topo cmesh4x4x4 -scheme baseline -benchmark specjbb
//	nocsim -topo mesh8x8 -trace out.trace -metrics-out metrics.jsonl
//	nocsim -validate-trace out.trace
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"sync"

	"pseudocircuit/internal/obs"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/internal/version"
	"pseudocircuit/noc"
)

func main() {
	var (
		topoFlag  = flag.String("topo", "cmesh4x4x4", "topology: mesh8x8, cmesh4x4x4, mecs4x4x4, fbfly4x4x4, or mesh<K>x<K>")
		scheme    = flag.String("scheme", "pseudo+s+b", "scheme: baseline, pseudo, pseudo+s, pseudo+b, pseudo+s+b")
		algo      = flag.String("routing", "xy", "routing algorithm: xy, yx, o1turn")
		policy    = flag.String("va", "static", "VC allocation: static, dynamic")
		benchmark = flag.String("benchmark", "", "CMP benchmark profile (closed-loop); empty selects synthetic traffic")
		pattern   = flag.String("traffic", "uniform", "synthetic pattern: uniform, bitcomp, transpose")
		rate      = flag.Float64("rate", 0.05, "synthetic injection rate (flits/node/cycle)")
		warmup    = flag.Int("warmup", 1000, "warmup cycles")
		measure   = flag.Int("measure", 10000, "measured cycles")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		workers   = flag.Int("workers", 0, "cycle-kernel worker goroutines per cycle (0/1 sequential); any value gives bit-identical results")
		useEVC    = flag.Bool("evc", false, "use the Express-Virtual-Channel comparison router (scheme must be baseline)")
		faults    = flag.String("faults", "", `fault schedule as inline JSON or @file, e.g. '{"events":[{"cycle":2000,"kind":"link-down","router":5},{"cycle":4000,"kind":"link-up","router":5}]}' (overrides the config file's schedule)`)
		churn     = flag.String("churn", "", `stochastic fault churn as inline JSON or @file, e.g. '{"seed":7,"linkFail":1e-5,"linkRepair":0.002}' (mutually exclusive with -faults)`)
		reliable  = flag.String("reliable", "", `end-to-end reliable delivery: "default" or inline JSON like '{"timeout":256,"maxTimeout":2048,"budget":8}'`)
		config    = flag.String("config", "", "JSON experiment spec file (overrides the individual flags)")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON")
		links     = flag.Int("links", 0, "also print the N most-loaded channels")

		traceOut   = flag.String("trace", "", "write a Chrome trace_event file of flit lifecycle events (load via chrome://tracing or Perfetto)")
		eventsOut  = flag.String("trace-jsonl", "", "write flit lifecycle events as JSONL")
		metricsOut = flag.String("metrics-out", "", "write per-router counters, windowed time series, and global totals as JSONL")
		window     = flag.Int("window", 1000, "time-series window length in cycles (with -metrics-out or -pprof)")
		traceCap   = flag.Int("trace-cap", 0, "max retained trace events, oldest dropped first (0 = default)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and expvar run counters on this address (e.g. localhost:6060)")

		valMetrics = flag.String("validate-metrics", "", "validate a metrics JSONL file against the export schema and exit")
		valEvents  = flag.String("validate-events", "", "validate an event JSONL file against the export schema and exit")
		valTrace   = flag.String("validate-trace", "", "validate a Chrome trace_event file and exit")

		showVersion = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("nocsim"))
		return
	}

	if *valMetrics != "" || *valEvents != "" || *valTrace != "" {
		validateAndExit(*valMetrics, *valEvents, *valTrace)
	}

	var exp noc.Experiment
	if *config != "" {
		data, err := os.ReadFile(*config)
		if err != nil {
			fatal("reading config: %v", err)
		}
		var spec noc.Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			fatal("parsing config: %v", err)
		}
		if exp, err = spec.Experiment(); err != nil {
			fatal("%v", err)
		}
	} else {
		exp = noc.Experiment{
			Topology: parseTopo(*topoFlag),
			Scheme:   parseScheme(*scheme),
			Routing:  parseRouting(*algo),
			Policy:   parsePolicy(*policy),
			Warmup:   *warmup,
			Measure:  *measure,
			Seed:     *seed,
			UseEVC:   *useEVC,
		}
	}

	if *workers > 0 {
		exp.Workers = *workers
	}

	if *faults != "" {
		data := []byte(*faults)
		if strings.HasPrefix(*faults, "@") {
			var err error
			if data, err = os.ReadFile((*faults)[1:]); err != nil {
				fatal("reading fault schedule: %v", err)
			}
		}
		var fs noc.FaultSpec
		if err := json.Unmarshal(data, &fs); err != nil {
			fatal("parsing fault schedule: %v", err)
		}
		sched, err := fs.Schedule(exp)
		if err != nil {
			fatal("%v", err)
		}
		exp.Faults = sched
	}

	if *churn != "" {
		data := []byte(*churn)
		if strings.HasPrefix(*churn, "@") {
			var err error
			if data, err = os.ReadFile((*churn)[1:]); err != nil {
				fatal("reading churn spec: %v", err)
			}
		}
		var cs noc.ChurnSpec
		if err := json.Unmarshal(data, &cs); err != nil {
			fatal("parsing churn spec: %v", err)
		}
		c, err := cs.Churn(exp)
		if err != nil {
			fatal("%v", err)
		}
		if exp.Faults != nil {
			fatal("-faults and -churn are mutually exclusive")
		}
		exp.Churn = c
	}

	if *reliable != "" {
		var rs noc.ReliableSpec
		if *reliable != "default" {
			if err := json.Unmarshal([]byte(*reliable), &rs); err != nil {
				fatal("parsing reliable spec: %v", err)
			}
		}
		exp.Reliable = &noc.Reliability{Timeout: rs.Timeout, MaxTimeout: rs.MaxTimeout, Budget: rs.Budget}
	}

	if *metricsOut != "" || *pprofAddr != "" {
		exp.Observe.PerRouter = true
		exp.Observe.Window = *window
	}
	if *traceOut != "" || *eventsOut != "" {
		exp.Observe.Trace = true
		exp.Observe.TraceCap = *traceCap
	}

	var w noc.Workload
	if *benchmark != "" {
		var err error
		w, err = exp.CMPWorkload(*benchmark)
		if err != nil {
			fatal(err.Error())
		}
	} else {
		w = exp.SyntheticWorkload(noc.Synthetic{Pattern: parsePattern(*pattern), Rate: *rate})
	}
	n := exp.Build()

	var res noc.Result
	if *pprofAddr != "" {
		stop := serveDebug(*pprofAddr, n)
		// Chunk the run so the published expvar snapshot stays fresh; the
		// callback runs between chunks, never concurrently with Step.
		res = exp.RunOnObserved(n, w, 1000, stop.update)
		stop.update(n)
	} else {
		res = exp.RunOn(n, w)
	}

	if *metricsOut != "" {
		writeFile(*metricsOut, func(w io.Writer) error { return noc.WriteMetricsJSONL(w, n) })
	}
	if *eventsOut != "" {
		writeFile(*eventsOut, n.Tracer().WriteJSONL)
	}
	if *traceOut != "" {
		writeFile(*traceOut, n.Tracer().WriteChromeTrace)
	}

	if *jsonOut {
		out := struct {
			Spec   noc.Spec   `json:"spec"`
			Result noc.Result `json:"result"`
		}{noc.SpecOf(exp), res}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal("encoding result: %v", err)
		}
		return
	}

	fmt.Printf("topology            %s (%d nodes, avg hops %.2f)\n", exp.Topology.Name(), exp.Topology.Nodes(), res.AvgHops)
	fmt.Printf("scheme              %v  routing %v  VA %v\n", exp.Scheme, exp.Routing, exp.Policy)
	fmt.Printf("packets delivered   %d (%d flits) over %d cycles\n", res.PacketsDelivered, res.FlitsDelivered, res.Cycles)
	fmt.Printf("avg latency         %.2f cycles (network %.2f)\n", res.AvgLatency, res.AvgNetLatency)
	fmt.Printf("throughput          %.4f flits/node/cycle\n", res.Throughput)
	fmt.Printf("pc reusability      %.1f%%  (buffer bypass %.1f%%)\n", 100*res.Reusability, 100*res.BypassRate)
	fmt.Printf("temporal locality   e2e %.1f%%  crossbar %.1f%%\n", 100*res.E2ELocality, 100*res.XbarLocality)
	fmt.Printf("router energy       %.1f nJ (buffer %.1f%%, crossbar %.1f%%, arbiter %.1f%%)\n",
		res.EnergyPJ/1000,
		100*res.BufferPJ/res.EnergyPJ, 100*res.CrossbarPJ/res.EnergyPJ, 100*res.ArbiterPJ/res.EnergyPJ)
	if exp.Faults != nil || exp.Churn != nil {
		fmt.Printf("faults              %d events, %d packets dropped (%d flits), %d rerouted, %d circuits torn\n",
			res.FaultEvents, res.PacketsDropped, res.FlitsDropped, res.PacketsRerouted, res.PCFaultTerminated)
	}
	if exp.Reliable != nil {
		fmt.Printf("reliability         %d retransmitted, %d acks sent (%d received), %d duplicates dropped, %d failed\n",
			res.PacketsRetransmitted, res.AcksSent, res.AcksReceived, res.DuplicatesDropped, res.DeliveryFailed)
	}
	if *links > 0 {
		fmt.Printf("\nmost-loaded channels:\n")
		for i, l := range n.LinkLoads() {
			if i >= *links {
				break
			}
			kind := "link"
			if l.Ejection {
				kind = "eject"
			}
			fmt.Printf("  router %2d out %2d (%s)  %6d flits  %.3f flits/cycle\n",
				l.Router, l.Out, kind, l.Flits, l.Utilization)
		}
	}
}

func parseTopo(s string) noc.Topology {
	switch s {
	case "cmesh4x4x4":
		return noc.CMesh(4, 4, 4)
	case "mecs4x4x4":
		return noc.MECS(4, 4, 4)
	case "fbfly4x4x4":
		return noc.FBFly(4, 4, 4)
	default:
		var kx, ky int
		if n, err := fmt.Sscanf(s, "mesh%dx%d", &kx, &ky); n == 2 && err == nil {
			return noc.Mesh(kx, ky)
		}
		fatal("unknown topology %q", s)
		return nil
	}
}

func parseScheme(s string) noc.Scheme {
	switch strings.ToLower(s) {
	case "baseline":
		return noc.Baseline
	case "pseudo":
		return noc.Pseudo
	case "pseudo+s":
		return noc.PseudoS
	case "pseudo+b":
		return noc.PseudoB
	case "pseudo+s+b":
		return noc.PseudoSB
	default:
		fatal("unknown scheme %q", s)
		return noc.Baseline
	}
}

func parseRouting(s string) noc.Algorithm {
	switch strings.ToLower(s) {
	case "xy":
		return routing.XY
	case "yx":
		return routing.YX
	case "o1turn":
		return routing.O1TURN
	default:
		fatal("unknown routing algorithm %q", s)
		return routing.XY
	}
}

func parsePolicy(s string) noc.Policy {
	switch strings.ToLower(s) {
	case "static":
		return vcalloc.Static
	case "dynamic":
		return vcalloc.Dynamic
	default:
		fatal("unknown VA policy %q", s)
		return vcalloc.Dynamic
	}
}

func parsePattern(s string) noc.Pattern {
	switch strings.ToLower(s) {
	case "uniform", "ur":
		return noc.UniformRandom
	case "bitcomp", "bc":
		return noc.BitComplement
	case "transpose", "bp":
		return noc.BitPermutation
	default:
		fatal("unknown traffic pattern %q", s)
		return noc.UniformRandom
	}
}

// validateAndExit checks any of the three export formats and exits; used by
// CI to assert that emitted files match the documented schemas.
func validateAndExit(metrics, events, trace string) {
	check := func(path, kind, unit string, fn func(r io.Reader) (int, error)) {
		if path == "" {
			return
		}
		f, err := os.Open(path)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		count, err := fn(f)
		if err != nil {
			fatal("invalid %s file %s: %v", kind, path, err)
		}
		fmt.Printf("%s: valid %s (%d %s)\n", path, kind, count, unit)
	}
	check(metrics, "metrics", "lines", noc.ValidateMetricsJSONL)
	check(events, "event", "events", obs.ValidateEventsJSONL)
	check(trace, "Chrome trace", "trace events", obs.ValidateChromeTrace)
	os.Exit(0)
}

// writeFile creates path and streams one export into it.
func writeFile(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatal("writing %s: %v", path, err)
	}
}

// debugServer publishes a snapshot of the run's counters under the "nocsim"
// expvar (alongside the stock expvar/pprof handlers). The snapshot is
// refreshed between simulation chunks so HTTP reads never race the
// simulation.
type debugServer struct {
	mu   sync.Mutex
	snap map[string]any
}

func serveDebug(addr string, n *noc.Network) *debugServer {
	d := &debugServer{}
	d.update(n)
	expvar.Publish("nocsim", expvar.Func(func() any {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.snap
	}))
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "nocsim: debug server: %v\n", err)
		}
	}()
	return d
}

func (d *debugServer) update(n *noc.Network) {
	st := n.Stats
	snap := map[string]any{
		"measured_from":     int64(st.MeasuredFrom),
		"measured_to":       int64(st.MeasuredTo),
		"packets_injected":  st.PacketsInjected,
		"packets_delivered": st.PacketsDelivered,
		"flits_delivered":   st.FlitsDelivered,
		"avg_latency":       st.AvgLatency(),
		"pc_reused":         st.PCReused,
		"traversals":        st.Traversals,
		"bypassed":          st.Bypassed,
	}
	if tr := n.Tracer(); tr != nil {
		snap["trace_events"] = tr.Len()
		snap["trace_dropped"] = tr.Dropped()
	}
	d.mu.Lock()
	d.snap = snap
	d.mu.Unlock()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nocsim: "+format+"\n", args...)
	os.Exit(1)
}
