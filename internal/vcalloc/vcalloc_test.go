package vcalloc_test

import (
	"testing"
	"testing/quick"

	"pseudocircuit/internal/vcalloc"
)

func TestClassRanges(t *testing.T) {
	a := vcalloc.New(vcalloc.Dynamic, 4, 2, 64)
	lo, hi := a.ClassRange(0)
	if lo != 0 || hi != 2 {
		t.Errorf("class 0 range = [%d,%d), want [0,2)", lo, hi)
	}
	lo, hi = a.ClassRange(1)
	if lo != 2 || hi != 4 {
		t.Errorf("class 1 range = [%d,%d), want [2,4)", lo, hi)
	}
}

func TestClassRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range class accepted")
		}
	}()
	vcalloc.New(vcalloc.Dynamic, 4, 2, 64).ClassRange(2)
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible VC/class split accepted")
		}
	}()
	vcalloc.New(vcalloc.Dynamic, 3, 2, 64)
}

// TestStaticVCProperties: static VA is deterministic, in range, within the
// class partition, and depends only on the destination (paper §5: same
// destination ID -> same VC at all input ports).
func TestStaticVCProperties(t *testing.T) {
	a := vcalloc.New(vcalloc.Static, 4, 2, 64)
	err := quick.Check(func(srcA, srcB, dst uint8, class bool) bool {
		c := 0
		if class {
			c = 1
		}
		d := int(dst) % 64
		v1 := a.StaticVC(int(srcA)%64, d, c)
		v2 := a.StaticVC(int(srcB)%64, d, c)
		lo, hi := a.ClassRange(c)
		return v1 == v2 && v1 >= lo && v1 < hi
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStaticVCFlowKey(t *testing.T) {
	a := vcalloc.New(vcalloc.Static, 4, 1, 64).WithStaticKey(vcalloc.KeyFlow)
	// With flow keying, different sources can map the same destination to
	// different VCs.
	diff := false
	for src := 0; src < 8; src++ {
		if a.StaticVC(src, 5, 0) != a.StaticVC(0, 5, 0) {
			diff = true
		}
	}
	if !diff {
		t.Error("flow keying never varied with source")
	}
}

func TestDynamicPickPrefersCredits(t *testing.T) {
	a := vcalloc.New(vcalloc.Dynamic, 4, 1, 64)
	busy := []bool{false, false, false, false}
	credits := []int{1, 4, 2, 3}
	if got := a.Pick(0, 1, 0, busy, credits); got != 1 {
		t.Errorf("Pick = %d, want 1 (most credits)", got)
	}
	busy[1] = true
	if got := a.Pick(0, 1, 0, busy, credits); got != 3 {
		t.Errorf("Pick = %d, want 3", got)
	}
}

func TestDynamicPickAllBusy(t *testing.T) {
	a := vcalloc.New(vcalloc.Dynamic, 4, 1, 64)
	busy := []bool{true, true, true, true}
	if got := a.Pick(0, 1, 0, busy, []int{4, 4, 4, 4}); got != -1 {
		t.Errorf("Pick = %d, want -1", got)
	}
}

func TestDynamicPickRespectsClass(t *testing.T) {
	a := vcalloc.New(vcalloc.Dynamic, 4, 2, 64)
	busy := []bool{false, false, false, false}
	credits := []int{9, 9, 1, 2}
	if got := a.Pick(0, 1, 1, busy, credits); got != 3 {
		t.Errorf("class-1 Pick = %d, want 3 (class partition [2,4))", got)
	}
}

func TestStaticPickBlockedWhenBusy(t *testing.T) {
	a := vcalloc.New(vcalloc.Static, 4, 1, 64)
	v := a.StaticVC(0, 7, 0)
	busy := make([]bool, 4)
	busy[v] = true
	if got := a.Pick(0, 7, 0, busy, []int{4, 4, 4, 4}); got != -1 {
		t.Errorf("Pick = %d, want -1 (static VC busy, no fallback)", got)
	}
	busy[v] = false
	if got := a.Pick(0, 7, 0, busy, []int{4, 4, 4, 4}); got != v {
		t.Errorf("Pick = %d, want %d", got, v)
	}
}

func TestPolicyStrings(t *testing.T) {
	if vcalloc.Dynamic.String() != "dynamicVA" || vcalloc.Static.String() != "staticVA" {
		t.Error("policy strings changed")
	}
}
