// Package vcalloc implements the two virtual-channel allocation policies the
// paper evaluates (§5):
//
//   - Dynamic VA chooses an output VC by buffer availability at the
//     downstream router (the conventional policy).
//   - Static VA chooses the output VC from the destination ID of the
//     communication, so flows sharing a path suffix share VCs — and
//     therefore pseudo-circuits — in every router along it. This is the
//     paper's adaptation of static VC allocation (Shim et al.), keyed by
//     destination only "in order to increase reusability".
//
// Routing algorithms that need multiple VC classes for deadlock freedom
// (O1TURN splits VCs between an XY and a YX class) partition the VC space;
// both policies then allocate within the packet's class partition.
package vcalloc

import "fmt"

// Policy selects the allocation policy.
type Policy int

const (
	// Dynamic picks the free candidate VC with the most downstream credits.
	Dynamic Policy = iota
	// Static derives the VC from the packet destination (paper §5).
	Static
)

func (p Policy) String() string {
	switch p {
	case Dynamic:
		return "dynamicVA"
	case Static:
		return "staticVA"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// StaticKey selects the hash key for static VA (DESIGN.md ablation).
type StaticKey int

const (
	// KeyDestination keys static VA by destination node only (the paper's
	// choice, maximizing reuse on shared path suffixes).
	KeyDestination StaticKey = iota
	// KeyFlow keys static VA by (source, destination) pairs (Shim et al.
	// style per-flow allocation; the ablation baseline).
	KeyFlow
)

// Allocator maps packets to candidate VCs at every input port.
type Allocator struct {
	policy     Policy
	key        StaticKey
	numVCs     int
	numClasses int
	nodes      int
}

// New builds an allocator for numVCs virtual channels split evenly across
// numClasses routing classes, in a network with nodes terminals.
func New(policy Policy, numVCs, numClasses, nodes int) *Allocator {
	if numClasses < 1 || numVCs < numClasses || numVCs%numClasses != 0 {
		panic(fmt.Sprintf("vcalloc: %d VCs not divisible across %d classes", numVCs, numClasses))
	}
	return &Allocator{policy: policy, numVCs: numVCs, numClasses: numClasses, nodes: nodes}
}

// WithStaticKey sets the static-VA hash key (default KeyDestination) and
// returns the allocator for chaining.
func (a *Allocator) WithStaticKey(k StaticKey) *Allocator {
	a.key = k
	return a
}

// Policy returns the configured policy.
func (a *Allocator) Policy() Policy { return a.policy }

// NumVCs returns the VC count per input port.
func (a *Allocator) NumVCs() int { return a.numVCs }

// ClassRange returns the half-open VC index range [lo, hi) belonging to a
// routing class.
func (a *Allocator) ClassRange(class int) (lo, hi int) {
	if class < 0 || class >= a.numClasses {
		panic(fmt.Sprintf("vcalloc: class %d out of range [0,%d)", class, a.numClasses))
	}
	per := a.numVCs / a.numClasses
	return class * per, (class + 1) * per
}

// StaticVC returns the single VC a packet (src → dst) in the given class may
// use under static VA.
func (a *Allocator) StaticVC(src, dst, class int) int {
	lo, hi := a.ClassRange(class)
	per := hi - lo
	k := dst
	if a.key == KeyFlow {
		// Mix with a prime so the source still matters when the node count
		// is a multiple of the per-class VC count.
		k = src*1009 + dst
	}
	return lo + k%per
}

// Pick chooses an output VC for a packet (src → dst, routing class class)
// given the downstream VC occupancy and credit state. busy[v] reports the
// downstream input VC v is allocated to another in-flight packet; credits[v]
// is its free buffer count. It returns -1 when no VC can be allocated this
// cycle.
func (a *Allocator) Pick(src, dst, class int, busy []bool, credits []int) int {
	if a.policy == Static {
		v := a.StaticVC(src, dst, class)
		if !busy[v] {
			return v
		}
		return -1
	}
	lo, hi := a.ClassRange(class)
	best, bestCred := -1, -1
	for v := lo; v < hi; v++ {
		if busy[v] {
			continue
		}
		if credits[v] > bestCred {
			best, bestCred = v, credits[v]
		}
	}
	return best
}
