package core_test

import (
	"testing"
	"testing/quick"

	"pseudocircuit/internal/core"
)

func TestSchemeStrings(t *testing.T) {
	want := map[string]core.Scheme{
		"Baseline":   core.Baseline,
		"Pseudo":     core.Pseudo,
		"Pseudo+S":   core.PseudoS,
		"Pseudo+B":   core.PseudoB,
		"Pseudo+S+B": core.PseudoSB,
	}
	for label, s := range want {
		if s.String() != label {
			t.Errorf("%+v.String() = %q, want %q", s, s.String(), label)
		}
	}
	if len(core.Schemes) != 5 {
		t.Errorf("Schemes has %d entries, want 5", len(core.Schemes))
	}
}

func TestSchemeValidate(t *testing.T) {
	bad := core.Scheme{Speculation: true}
	if bad.Validate() == nil {
		t.Error("speculation without pseudo accepted")
	}
	bad = core.Scheme{BufferBypass: true}
	if bad.Validate() == nil {
		t.Error("bypass without pseudo accepted")
	}
	for _, s := range core.Schemes {
		if err := s.Validate(); err != nil {
			t.Errorf("%v invalid: %v", s, err)
		}
	}
}

func TestRegisterLifecycle(t *testing.T) {
	r := core.NewRegister()
	if r.Valid {
		t.Fatal("new register valid")
	}
	if r.Match(0, 0) {
		t.Fatal("invalid register matched")
	}
	r.Set(2, 5)
	if !r.Match(2, 5) {
		t.Fatal("set register does not match its own connection")
	}
	if r.Match(1, 5) || r.Match(2, 4) {
		t.Fatal("register matched a different connection")
	}
	r.Terminate()
	if r.Valid || r.Match(2, 5) {
		t.Fatal("terminated register still matches")
	}
	// Termination preserves the registers (§3.C) so speculation can revive.
	if r.InVC != 2 || r.OutPort != 5 {
		t.Fatal("termination cleared the registers")
	}
	r.Revive()
	if !r.Valid || !r.Speculative || !r.Match(2, 5) {
		t.Fatal("revive did not restore the circuit speculatively")
	}
	r.Set(2, 5)
	if r.Speculative {
		t.Fatal("traversal did not clear the speculative flag")
	}
}

func TestRevivePanics(t *testing.T) {
	t.Run("valid", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Revive on valid register did not panic")
			}
		}()
		r := core.NewRegister()
		r.Set(0, 1)
		r.Revive()
	})
	t.Run("never-set", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("Revive on empty register did not panic")
			}
		}()
		r := core.NewRegister()
		r.Revive()
	})
}

// TestMatchProperty: the comparator matches exactly the stored connection
// while valid (Fig. 3 (a) semantics).
func TestMatchProperty(t *testing.T) {
	err := quick.Check(func(setVC, setOut, qVC, qOut uint8, terminated bool) bool {
		r := core.NewRegister()
		r.Set(int(setVC), int(setOut))
		if terminated {
			r.Terminate()
			return !r.Match(int(qVC), int(qOut))
		}
		want := setVC == qVC && setOut == qOut
		return r.Match(int(qVC), int(qOut)) == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistory(t *testing.T) {
	h := core.NewHistory()
	if h.Valid {
		t.Fatal("new history valid")
	}
	h.Record(3)
	if !h.Valid || h.InPort != 3 {
		t.Fatalf("history = %+v after Record(3)", h)
	}
	h.Record(1)
	if h.InPort != 1 {
		t.Fatal("history did not track most recent input")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := core.DefaultOptions(core.PseudoSB)
	if !o.TerminateOnZeroCredit {
		t.Error("paper terminates on congestion")
	}
	if o.PCDefersToSA {
		t.Error("default reading lets SA grants preempt instead of deferring to requests")
	}
	if o.SpeculateToCongested {
		t.Error("paper forbids speculation to congested outputs")
	}
	if o.Scheme != core.PseudoSB {
		t.Error("scheme not carried")
	}
}
