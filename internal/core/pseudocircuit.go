// Package core implements the paper's primary contribution: the
// pseudo-circuit scheme (§3) and its two aggressive extensions,
// pseudo-circuit speculation and buffer bypassing (§4).
//
// A pseudo-circuit is a crossbar connection (input port → output port) left
// configured after a flit traversal, together with the switch-arbitration
// history needed to reuse it: the input VC the previous flit came from and
// the output port it went to, held in a per-input-port register (Fig. 3).
// A later flit arriving on the same input VC whose lookahead routing
// information matches the stored output port traverses the crossbar without
// switch arbitration, removing one pipeline stage. With buffer bypassing it
// also skips the buffer-write stage, removing a second.
//
// This package holds the state machines and matching logic (registers,
// comparator, history registers, scheme/ablation options); the router
// package wires them into the pipeline.
package core

import "fmt"

// Scheme selects which of the paper's schemes is active. The four evaluated
// configurations are Baseline (all false), Pseudo, Pseudo+S, Pseudo+B and
// Pseudo+S+B.
type Scheme struct {
	// Pseudo enables pseudo-circuit creation/reuse (SA bypass), paper §3.
	Pseudo bool
	// Speculation enables pseudo-circuit speculation (§4.A). Implies Pseudo.
	Speculation bool
	// BufferBypass enables buffer bypassing (§4.B). Implies Pseudo.
	BufferBypass bool
}

// The paper's five evaluated configurations.
var (
	Baseline = Scheme{}
	Pseudo   = Scheme{Pseudo: true}
	PseudoS  = Scheme{Pseudo: true, Speculation: true}
	PseudoB  = Scheme{Pseudo: true, BufferBypass: true}
	PseudoSB = Scheme{Pseudo: true, Speculation: true, BufferBypass: true}
)

// Schemes lists the evaluated configurations in the paper's plotting order.
var Schemes = []Scheme{Baseline, Pseudo, PseudoS, PseudoB, PseudoSB}

// String returns the paper's label for the scheme.
func (s Scheme) String() string {
	switch {
	case !s.Pseudo:
		return "Baseline"
	case s.Speculation && s.BufferBypass:
		return "Pseudo+S+B"
	case s.Speculation:
		return "Pseudo+S"
	case s.BufferBypass:
		return "Pseudo+B"
	default:
		return "Pseudo"
	}
}

// Validate reports configuration errors (aggressive schemes without the base
// scheme).
func (s Scheme) Validate() error {
	if !s.Pseudo && (s.Speculation || s.BufferBypass) {
		return fmt.Errorf("core: scheme %+v enables an aggressive scheme without Pseudo", s)
	}
	return nil
}

// Options bundles the scheme with the ablation knobs DESIGN.md §7 calls out.
// DefaultOptions returns the paper's configuration.
type Options struct {
	Scheme

	// TerminateOnZeroCredit terminates a pseudo-circuit as soon as its
	// output port runs out of downstream credit (§3.C condition 2). The
	// paper requires this so a connected pseudo-circuit guarantees credit
	// availability. Ablation: keep the circuit and merely stall.
	TerminateOnZeroCredit bool

	// SpecHistoryDepth extends pseudo-circuit speculation with a per-input
	// history of the last N connections (default 1 — the paper's single
	// register pair). The paper's speculation can only revive a circuit
	// whose input register still points at the idle output; once the input
	// port connects elsewhere the history is lost, which is why the paper
	// finds speculation's contribution "small ... due to limited prediction
	// capability" (§6.A). Depth N>1 remembers the input's N most recent
	// connections and revives the most recent one targeting the idle
	// output — an extension in the spirit of §8's future work.
	SpecHistoryDepth int

	// SpeculateToCongested allows pseudo-circuit speculation to revive
	// circuits whose output port has no downstream credit. The paper
	// forbids this ("to avoid buffer overflow in the downstream router,
	// pseudo-circuit speculation does not create any pseudo-circuit to the
	// output port of the congested downstream router", §4.A); enabling it
	// is an ablation that shows such circuits are immediately re-terminated
	// and only churn state.
	SpeculateToCongested bool

	// PCDefersToSA selects the strict reading of §3.C's "pseudo-circuit
	// traversal is made only when no other flit in SA claims any part of
	// the pseudo-circuit": when true, a matching flit yields to mere SA
	// *requests* on either port. The default (false) reads "claims" as
	// granted connections: SA grants always win — they terminate the
	// circuit and reconfigure the crossbar for the next cycle — while the
	// matching flit may still ride the circuit in the current cycle.
	// Both readings are starvation-free (arbitration is never blocked by a
	// pseudo-circuit); the strict reading costs extra deferral cycles and
	// is kept as an ablation.
	PCDefersToSA bool

	// Workers selects the cycle kernel's worker count: values above 1 tick
	// routers on that many goroutines inside each simulated cycle. Workers
	// is an execution knob, not a model parameter — results are bit-identical
	// for every worker count (the determinism harness enforces this), so it
	// never participates in result caching or canonical experiment specs.
	// 0 or 1 selects the sequential kernel.
	Workers int
}

// DefaultOptions returns the paper's configuration for the given scheme.
func DefaultOptions(s Scheme) Options {
	return Options{
		Scheme:                s,
		TerminateOnZeroCredit: true,
		SpecHistoryDepth:      1,
	}
}

// Register is the per-input-port pseudo-circuit register (Fig. 3 (a)): the
// input VC and output port of the most recent crossbar connection through
// this input port, plus a valid bit. Termination clears only the valid bit,
// leaving the registers intact so speculation can revive the circuit
// (§3.C, §4.A).
type Register struct {
	InVC    int
	OutPort int
	Valid   bool
	// Speculative marks circuits created by pseudo-circuit speculation, for
	// accounting only; behaviour is identical.
	Speculative bool
}

// NewRegister returns an empty (invalid) register.
func NewRegister() Register {
	return Register{InVC: -1, OutPort: -1}
}

// Match implements the pseudo-circuit comparator: it reports whether a flit
// on input VC vc destined for output port out may reuse the circuit. The
// hardware comparator (37 ps at 45 nm) fits within the ST stage, so matching
// costs no extra cycle.
func (r *Register) Match(vc, out int) bool {
	return r.Valid && r.InVC == vc && r.OutPort == out
}

// Set records a fresh connection after a crossbar traversal, making the
// circuit valid and non-speculative.
func (r *Register) Set(vc, out int) {
	r.InVC = vc
	r.OutPort = out
	r.Valid = true
	r.Speculative = false
}

// Terminate disconnects the circuit, clearing the valid bit without touching
// the registers (§3.C).
func (r *Register) Terminate() {
	r.Valid = false
}

// Clear tears the circuit down completely: the valid bit and both registers
// are reset, so neither Revive nor depth-1 speculation can reconnect it. This
// is the fault-teardown path — a link or router failure invalidates the
// learned connection itself, not just its validity, because the crossbar
// state it describes may be wrong when the link returns.
func (r *Register) Clear() {
	*r = NewRegister()
}

// SetSpeculative connects the register to (vc, out) speculatively — the
// depth-N speculation path, which may restore a connection older than the
// register's own last value. It panics if the register is already valid.
func (r *Register) SetSpeculative(vc, out int) {
	if r.Valid {
		panic("core: SetSpeculative on a valid pseudo-circuit")
	}
	r.InVC = vc
	r.OutPort = out
	r.Valid = true
	r.Speculative = true
}

// Revive speculatively reconnects the terminated circuit (§4.A). It panics
// if the register is already valid; speculation must only use unallocated
// connections.
func (r *Register) Revive() {
	if r.Valid {
		panic("core: Revive on a valid pseudo-circuit")
	}
	if r.OutPort < 0 {
		panic("core: Revive on a register that never held a circuit")
	}
	r.Valid = true
	r.Speculative = true
}

// History is the per-output-port history register used by pseudo-circuit
// speculation (Fig. 5 (b)): the input port of the most recent pseudo-circuit
// through this output port. It resolves conflicts when several input ports'
// registers point at the same output: only the most recent connection is
// revived.
type History struct {
	InPort int
	Valid  bool
}

// NewHistory returns an empty history register.
func NewHistory() History { return History{InPort: -1} }

// Record notes that input port in was most recently connected to this
// output.
func (h *History) Record(in int) {
	h.InPort = in
	h.Valid = true
}

// InputHistory is the depth-N per-input connection history backing the
// SpecHistoryDepth extension: a small most-recent-first list of the
// connections this input port carried. Depth 1 reproduces the paper (the
// single register pair is the history).
type InputHistory struct {
	entries []histEntry
	depth   int
}

type histEntry struct {
	VC, Out int
}

// NewInputHistory builds a history of the given depth (minimum 1).
func NewInputHistory(depth int) InputHistory {
	if depth < 1 {
		depth = 1
	}
	return InputHistory{depth: depth}
}

// Record notes a connection (vc → out), promoting it to most recent.
func (h *InputHistory) Record(vc, out int) {
	e := histEntry{VC: vc, Out: out}
	for i, x := range h.entries {
		if x.Out == out {
			copy(h.entries[1:i+1], h.entries[:i])
			h.entries[0] = e
			return
		}
	}
	if len(h.entries) < h.depth {
		h.entries = append(h.entries, histEntry{})
	}
	copy(h.entries[1:], h.entries)
	h.entries[0] = e
}

// Drop removes any history entry targeting output port out (fault teardown:
// a failed link's connections must not be revivable from history).
func (h *InputHistory) Drop(out int) {
	for i := 0; i < len(h.entries); {
		if h.entries[i].Out == out {
			h.entries = append(h.entries[:i], h.entries[i+1:]...)
			continue
		}
		i++
	}
}

// Lookup returns the input VC of the most recent connection to out, if any.
func (h *InputHistory) Lookup(out int) (vc int, ok bool) {
	for _, e := range h.entries {
		if e.Out == out {
			return e.VC, true
		}
	}
	return 0, false
}

// Depth returns the configured depth.
func (h *InputHistory) Depth() int { return h.depth }
