// Structure-of-arrays backing store for the router hot path.
//
// The per-cycle kernel spends most of its time scanning per-(port, VC) state:
// admitting heads, allocating VCs, classifying pseudo-circuit candidates and
// SA requests, and maintaining pseudo-circuits. With per-object Go structs
// (one heap object per input port, one per VC) every scan is a pointer chase;
// LaneStore flattens all of it into contiguous slices indexed by
// (router, port, vc) so the scans are cache-linear and the pseudo-circuit
// comparator inputs (the register file of Fig. 3) are one flat array walked
// in a single pass per router.
//
// Index scheme (DESIGN.md §17):
//
//	input-port index  p = InBase[r] + in            (global, contiguous per router)
//	output-port index q = OutBase[r] + out
//	input lane        l = p*NumVCs + vc
//	output lane       m = q*NumVCs + vc
//	buffer slot       l*BufDepth + k   (k < BufLen[l], FIFO head at k = 0)
//
// InBase/OutBase are prefix sums over the topology's per-router radices, so a
// router's lanes form one contiguous range and a shard's routers [r0, r1)
// form one contiguous super-range — the parallel kernel's shards therefore
// touch disjoint index ranges of the same arrays, no per-shard copies needed.
//
// The network owns exactly one LaneStore per simulated network and hands it
// to routers through their shared config; a router constructed without one
// (unit tests driving a single router) builds a private single-router store.
// The naive reference kernel needs no separate code: it is the same router
// ticking over the same store, only scheduled tick-every-router by the
// network, so the accessor seam (all mutations go through the router's lane
// helpers) is exercised identically by every kernel.
package core

import "fmt"

// LaneLimit bounds VCs per port and ports per router: occupancy and
// arbitration masks are single uint64 words.
const LaneLimit = 64

// LaneStore is the flat hot-path state of every router in one network. All
// slices are preallocated at construction; the steady-state tick path only
// indexes them, never grows them.
type LaneStore struct {
	NumVCs, BufDepth int

	// InBase[r] / OutBase[r] are router r's first global input/output port
	// indices; the extra final element makes radix lookup a subtraction.
	InBase  []int
	OutBase []int

	// Per input lane l = (InBase[r]+in)*NumVCs + vc — the former vcState.
	BufLen  []int // buffered flits (FIFO, head first)
	Active  []bool
	OutPort []int
	OutVC   []int
	Class   []int
	Src     []int
	Dst     []int

	// Per buffer slot l*BufDepth + k.
	At []int64 // arrival cycle of each buffered flit (BW takes one cycle)

	// Per input port p = InBase[r]+in: the pseudo-circuit register file
	// (Fig. 3 (a)) as parallel arrays — the comparator inputs — plus the
	// occupancy masks the phase scans are driven by.
	PCInVC  []int
	PCOut   []int
	PCValid []bool
	PCSpec  []bool
	Occ     []uint64 // bit vc set ⇔ BufLen[lane] > 0
	Act     []uint64 // bit vc set ⇔ Active[lane]

	// Per output lane m = (OutBase[r]+out)*NumVCs + vc.
	Credits []int
	VCBusy  []bool

	// Per output port q = OutBase[r]+out: the speculation history register
	// (Fig. 5 (b)) and the valid-pseudo-circuit reverse index: PCByOut[q] is
	// the router-local input port holding a valid pseudo-circuit to this
	// output, -1 when none (at most one can exist — the paper's termination
	// rules enforce it), making the former O(ports) outputHasPC scan O(1).
	HistIn    []int
	HistValid []bool
	PCByOut   []int
}

// NewLaneStore builds the store for routers with the given per-router input
// and output radices. All "no value" sentinels are -1; credits start at
// BufDepth (every downstream buffer empty).
func NewLaneStore(numVCs, bufDepth int, inPorts, outPorts []int) *LaneStore {
	if numVCs < 1 || numVCs > LaneLimit || bufDepth < 1 {
		panic(fmt.Sprintf("core: LaneStore needs NumVCs in [1,%d] and BufDepth >= 1, got %d/%d", LaneLimit, numVCs, bufDepth))
	}
	if len(inPorts) != len(outPorts) {
		panic("core: LaneStore radix slices disagree on router count")
	}
	s := &LaneStore{
		NumVCs:   numVCs,
		BufDepth: bufDepth,
		InBase:   make([]int, len(inPorts)+1),
		OutBase:  make([]int, len(outPorts)+1),
	}
	for r, p := range inPorts {
		if p < 1 || p > LaneLimit || outPorts[r] < 1 || outPorts[r] > LaneLimit {
			panic(fmt.Sprintf("core: LaneStore router %d radix %d/%d outside [1,%d]", r, p, outPorts[r], LaneLimit))
		}
		s.InBase[r+1] = s.InBase[r] + p
		s.OutBase[r+1] = s.OutBase[r] + outPorts[r]
	}
	nIn, nOut := s.InBase[len(inPorts)], s.OutBase[len(outPorts)]

	s.BufLen = make([]int, nIn*numVCs)
	s.Active = make([]bool, nIn*numVCs)
	s.OutPort = fill(nIn*numVCs, -1)
	s.OutVC = fill(nIn*numVCs, -1)
	s.Class = make([]int, nIn*numVCs)
	s.Src = make([]int, nIn*numVCs)
	s.Dst = make([]int, nIn*numVCs)
	s.At = make([]int64, nIn*numVCs*bufDepth)

	s.PCInVC = fill(nIn, -1)
	s.PCOut = fill(nIn, -1)
	s.PCValid = make([]bool, nIn)
	s.PCSpec = make([]bool, nIn)
	s.Occ = make([]uint64, nIn)
	s.Act = make([]uint64, nIn)

	s.Credits = make([]int, nOut*numVCs)
	for i := range s.Credits {
		s.Credits[i] = bufDepth
	}
	s.VCBusy = make([]bool, nOut*numVCs)

	s.HistIn = fill(nOut, -1)
	s.HistValid = make([]bool, nOut)
	s.PCByOut = fill(nOut, -1)
	return s
}

func fill(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// LaneView is one lane materialized back into the struct shape the router
// used before the SoA restructure — the "struct view" side of the layout
// round-trip tests and a debugging aid. It is assembled on demand and never
// used on the hot path.
type LaneView struct {
	BufLen  int
	Active  bool
	OutPort int
	OutVC   int
	Class   int
	Src     int
	Dst     int
	At      []int64 // arrival cycles of the buffered flits, head first
}

// View materializes the lane of global input port p, VC vc.
func (s *LaneStore) View(p, vc int) LaneView {
	l := p*s.NumVCs + vc
	return LaneView{
		BufLen:  s.BufLen[l],
		Active:  s.Active[l],
		OutPort: s.OutPort[l],
		OutVC:   s.OutVC[l],
		Class:   s.Class[l],
		Src:     s.Src[l],
		Dst:     s.Dst[l],
		At:      append([]int64(nil), s.At[l*s.BufDepth:l*s.BufDepth+s.BufLen[l]]...),
	}
}

// CheckConsistency verifies every derived structure against the ground-truth
// arrays for the router whose ports are [inBase, inBase+nIn) and
// [outBase, outBase+nOut): occupancy masks against BufLen/Active, and
// PCByOut against the register file. It returns a descriptive error rather
// than panicking so tests can attribute failures.
func (s *LaneStore) CheckConsistency(router, inBase, nIn, outBase, nOut int) error {
	for in := 0; in < nIn; in++ {
		p := inBase + in
		var occ, act uint64
		for vc := 0; vc < s.NumVCs; vc++ {
			l := p*s.NumVCs + vc
			if s.BufLen[l] > 0 {
				occ |= 1 << uint(vc)
			}
			if s.Active[l] {
				act |= 1 << uint(vc)
			}
		}
		if occ != s.Occ[p] {
			return fmt.Errorf("router %d in %d: occ mask %b, buffers say %b", router, in, s.Occ[p], occ)
		}
		if act != s.Act[p] {
			return fmt.Errorf("router %d in %d: act mask %b, lanes say %b", router, in, s.Act[p], act)
		}
	}
	for out := 0; out < nOut; out++ {
		q := outBase + out
		holder := -1
		for in := 0; in < nIn; in++ {
			p := inBase + in
			if s.PCValid[p] && s.PCOut[p] == out {
				if holder >= 0 {
					return fmt.Errorf("router %d: inputs %d and %d both hold a pseudo-circuit to output %d", router, holder, in, out)
				}
				holder = in
			}
		}
		if holder != s.PCByOut[q] {
			return fmt.Errorf("router %d out %d: PCByOut %d, register file says %d", router, out, s.PCByOut[q], holder)
		}
	}
	return nil
}
