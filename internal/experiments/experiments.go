// Package experiments regenerates every table and figure of the paper's
// evaluation (§6, §7): each Fig/Table function runs the required simulations
// and returns both typed results (asserted by tests) and printable tables
// whose rows mirror what the paper reports. cmd/sweep prints them;
// bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// Options tunes experiment runs. The zero value reproduces the full-size
// runs used by cmd/sweep; benchmarks pass reduced cycle counts.
type Options struct {
	Warmup     int      // warmup cycles (default 1000)
	Measure    int      // measured cycles (default 10000)
	Benchmarks []string // benchmark subset for the trace figures (default: all)
	Seed       uint64   // base seed (default 1)
	Workers    int      // cycle-kernel workers per run (0/1 sequential); never affects results
	// Progress, when non-nil, is invoked after each completed simulation run
	// with the number done so far and the total for the experiment. Runs
	// execute on a worker pool, but calls are serialized.
	Progress func(done, total int)
}

func (o Options) defaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 1000
	}
	if o.Measure == 0 {
		o.Measure = 10000
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = noc.CMPBenchmarks()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Table is a printable result set whose rows mirror a paper figure/table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}

// schemeLabels are the paper's plot labels.
var schemeLabels = []string{"Baseline", "Pseudo", "Pseudo+S", "Pseudo+B", "Pseudo+S+B"}

// progress returns a tick function that counts completed runs and reports
// them through o.Progress. Safe to call from concurrent workers; a nil
// Progress yields a no-op.
func (o Options) progress(total int) func() {
	if o.Progress == nil {
		return func() {}
	}
	var mu sync.Mutex
	done := 0
	return func() {
		mu.Lock()
		defer mu.Unlock()
		done++
		o.Progress(done, total)
	}
}

func pct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }
func num(v float64) string  { return fmt.Sprintf("%.2f", v) }
func norm(v float64) string { return fmt.Sprintf("%.3f", v) }

// cmpTopology returns the CMP platform topology of paper §5 / Fig. 7: a 4×4
// concentrated mesh with 2 cores + 2 L2 banks per router.
func cmpTopology() noc.Topology { return topology.NewCMesh(4, 4, 4) }

// cmpExperiment builds the standard CMP-platform experiment. pool (may be
// nil) is the worker-local flit pool from forEach.
func cmpExperiment(o Options, pool *noc.Pool, s core.Scheme, algo routing.Algorithm, pol vcalloc.Policy) noc.Experiment {
	return noc.Experiment{
		Topology: cmpTopology(),
		Scheme:   s,
		Routing:  algo,
		Policy:   pol,
		Seed:     o.Seed,
		Pool:     pool,
		Warmup:   o.Warmup,
		Measure:  o.Measure,
		Workers:  o.Workers,
	}
}

// baseline runs the no-scheme reference for a routing/VA combination.
// The paper's headline comparison (§6.A) uses O1TURN with dynamic VA,
// "which provides the best performance in the baseline system".
func baseline(o Options, pool *noc.Pool, benchmark string, algo routing.Algorithm, pol vcalloc.Policy) noc.Result {
	r, err := cmpExperiment(o, pool, core.Baseline, algo, pol).RunCMP(benchmark)
	if err != nil {
		panic(err)
	}
	return r
}

func mustRunCMP(e noc.Experiment, benchmark string) noc.Result {
	r, err := e.RunCMP(benchmark)
	if err != nil {
		panic(err)
	}
	return r
}
