package experiments

import (
	"fmt"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// Fig14Result compares the pseudo-circuit scheme with Express Virtual
// Channels (paper Fig. 14) on an 8×8 mesh and a 4×4 concentrated mesh:
// per-benchmark latency of Baseline, EVC (dynamic, l_max = 2, 2 EVCs + 2
// NVCs) and Pseudo+S+B, normalized to each topology's baseline. The paper's
// finding: EVC helps on the mesh but shows no average improvement on the
// CMesh (too few routers per dimension, and the reserved EVCs shrink the
// usable VC pool), while the pseudo-circuit scheme is topology-independent.
type Fig14Result struct {
	Topologies []string
	Benchmarks []string
	Variants   []string // Baseline, EVC, Pseudo+S+B
	// Normalized[t][b][v] = latency / latency(baseline on that topology).
	Normalized [][][]float64
	// Avg[t][v] averages over benchmarks.
	Avg [][]float64
}

// Fig14 runs the EVC comparison.
func Fig14(o Options) Fig14Result {
	o = o.defaults()
	topos := []struct {
		name string
		make func() *topology.Mesh
	}{
		{"Mesh", func() *topology.Mesh { return topology.NewMesh(8, 8) }},
		{"CMesh", func() *topology.Mesh { return topology.NewCMesh(4, 4, 4) }},
	}
	res := Fig14Result{
		Benchmarks: o.Benchmarks,
		Variants:   []string{"Baseline", "EVC", "Pseudo+S+B"},
	}
	for _, tc := range topos {
		tc := tc
		res.Topologies = append(res.Topologies, tc.name)
		perBench := make([][]float64, len(o.Benchmarks))
		avg := make([]float64, len(res.Variants))
		forEach(len(o.Benchmarks), func(bi int, pool *noc.Pool) {
			b := o.Benchmarks[bi]
			run := func(scheme core.Scheme, useEVC bool) float64 {
				e := noc.Experiment{
					Topology: tc.make(),
					Scheme:   scheme,
					Routing:  routing.XY,
					Policy:   vcalloc.Dynamic,
					UseEVC:   useEVC,
					Seed:     o.Seed,
					Pool:     pool,
					Warmup:   o.Warmup,
					Measure:  o.Measure,
					Workers:  o.Workers,
				}
				return mustRunCMP(e, b).AvgNetLatency
			}
			base := run(core.Baseline, false)
			perBench[bi] = []float64{
				1.0,
				run(core.Baseline, true) / base,
				run(core.PseudoSB, false) / base,
			}
		})
		for bi := range o.Benchmarks {
			for v := range perBench[bi] {
				avg[v] += perBench[bi][v] / float64(len(o.Benchmarks))
			}
		}
		res.Normalized = append(res.Normalized, perBench)
		res.Avg = append(res.Avg, avg)
	}
	return res
}

// Tables renders Fig. 14 (a) mesh and (b) concentrated mesh.
func (r Fig14Result) Tables() []Table {
	var out []Table
	for ti, top := range r.Topologies {
		t := Table{
			ID:     fmt.Sprintf("fig14%c", 'a'+ti),
			Title:  fmt.Sprintf("Normalized latency vs EVC, %s (XY, dynamic VA)", top),
			Header: append([]string{"benchmark"}, r.Variants...),
		}
		for bi, b := range r.Benchmarks {
			row := []string{b}
			for vi := range r.Variants {
				row = append(row, norm(r.Normalized[ti][bi][vi]))
			}
			t.Rows = append(t.Rows, row)
		}
		avg := []string{"average"}
		for vi := range r.Variants {
			avg = append(avg, norm(r.Avg[ti][vi]))
		}
		t.Rows = append(t.Rows, avg)
		out = append(out, t)
	}
	return out
}
