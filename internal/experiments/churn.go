package experiments

import (
	"fmt"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// churnLevel is one intensity point of the churn figure: per-cycle Markov
// transition probabilities for links and routers.
type churnLevel struct {
	label                string
	linkFail, linkRepair float64
	rtrFail, rtrRepair   float64
}

// churnLevels are the figure's x-axis. Mean downtime is 1/repair cycles; the
// levels are calibrated so "low" perturbs a few links briefly, "med" keeps a
// couple of links down most of the time, and "high" adds occasional
// whole-router outages — degraded but not collapsed at the figure's 0.05
// load point.
var churnLevels = []churnLevel{
	{label: "none"},
	{label: "low", linkFail: 2e-6, linkRepair: 0.02},
	{label: "med", linkFail: 1e-5, linkRepair: 0.01},
	{label: "high", linkFail: 2e-5, linkRepair: 0.005, rtrFail: 1e-6, rtrRepair: 0.005},
}

// churnConfigs are the compared router architectures.
var churnConfigs = []struct {
	label  string
	scheme core.Scheme
	evc    bool
}{
	{label: "Pseudo+S+B", scheme: core.PseudoSB},
	{label: "Pseudo", scheme: core.Pseudo},
	{label: "EVC", scheme: core.Baseline, evc: true},
}

// ChurnResult holds the churn figure: delivered latency, throughput, energy
// per delivered flit, and the reliability layer's recovery work (retransmits,
// duplicates, abandoned packets) as seeded stochastic fault churn rises, per
// scheme. All slices are indexed [config][level].
type ChurnResult struct {
	Configs []string
	Levels  []string
	// Network metrics over delivered traffic.
	Latency     [][]float64
	Throughput  [][]float64
	EnergyPerFl [][]float64 // pJ per delivered flit: the reliability overhead shows up here
	// Fault exposure and recovery work.
	Events        [][]uint64
	Dropped       [][]uint64
	Retransmitted [][]uint64
	Duplicates    [][]uint64
	Failed        [][]uint64
}

// Churn measures end-to-end reliable delivery under rising fault churn on the
// paper's standard 8×8 mesh (XY, static VA, uniform random at a low 0.05
// load so fault damage is visible rather than drowned in congestion).
// Reliability runs with its default timeout/budget; the reroute salvage
// policy gives every scheme its best fault response. Each (config, level)
// cell is an independent run with the same traffic seed — only the churn
// varies, so columns are directly comparable.
func Churn(o Options) ChurnResult {
	o = o.defaults()
	const rate = 0.05

	res := ChurnResult{}
	for _, c := range churnConfigs {
		res.Configs = append(res.Configs, c.label)
	}
	for _, l := range churnLevels {
		res.Levels = append(res.Levels, l.label)
	}
	nc, nl := len(churnConfigs), len(churnLevels)
	mkF := func() [][]float64 {
		m := make([][]float64, nc)
		for i := range m {
			m[i] = make([]float64, nl)
		}
		return m
	}
	mkU := func() [][]uint64 {
		m := make([][]uint64, nc)
		for i := range m {
			m[i] = make([]uint64, nl)
		}
		return m
	}
	res.Latency, res.Throughput, res.EnergyPerFl = mkF(), mkF(), mkF()
	res.Events, res.Dropped, res.Retransmitted, res.Duplicates, res.Failed = mkU(), mkU(), mkU(), mkU(), mkU()

	tick := o.progress(nc * nl)
	forEach(nc*nl, func(idx int, pool *noc.Pool) {
		ci, li := idx/nl, idx%nl
		c, l := churnConfigs[ci], churnLevels[li]
		e := noc.Experiment{
			Topology: topology.NewMesh(8, 8),
			Scheme:   c.scheme,
			Routing:  routing.XY,
			Policy:   vcalloc.Static,
			Seed:     o.Seed,
			Pool:     pool,
			UseEVC:   c.evc,
			Warmup:   o.Warmup,
			Measure:  o.Measure,
			Workers:  o.Workers,
			Reliable: &noc.Reliability{},
		}
		if l.linkFail > 0 || l.rtrFail > 0 {
			e.Churn = &noc.FaultChurn{
				Seed:         o.Seed + uint64(li), // same process per level across configs
				LinkFail:     l.linkFail,
				LinkRepair:   l.linkRepair,
				RouterFail:   l.rtrFail,
				RouterRepair: l.rtrRepair,
				Policy:       noc.FaultReroute,
			}
		}
		r := e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: rate, PacketSize: 5})
		res.Latency[ci][li] = r.AvgLatency
		res.Throughput[ci][li] = r.Throughput
		if r.FlitsDelivered > 0 {
			res.EnergyPerFl[ci][li] = r.EnergyPJ / float64(r.FlitsDelivered)
		}
		res.Events[ci][li] = r.FaultEvents
		res.Dropped[ci][li] = r.PacketsDropped
		res.Retransmitted[ci][li] = r.PacketsRetransmitted
		res.Duplicates[ci][li] = r.DuplicatesDropped
		res.Failed[ci][li] = r.DeliveryFailed
		tick()
	})
	return res
}

// Tables renders one row per (config, churn level).
func (r ChurnResult) Tables() []Table {
	t := Table{
		ID:     "churn",
		Title:  "Reliable delivery under fault churn (8x8 mesh, XY, static VA, UR 0.05, reroute policy, default reliability)",
		Header: []string{"config", "churn", "latency", "thr (f/n/c)", "pJ/flit", "events", "dropped", "retransmitted", "dups", "failed"},
	}
	for i, cfg := range r.Configs {
		for s, lvl := range r.Levels {
			t.Rows = append(t.Rows, []string{
				cfg, lvl,
				num(r.Latency[i][s]),
				fmt.Sprintf("%.3f", r.Throughput[i][s]),
				fmt.Sprintf("%.2f", r.EnergyPerFl[i][s]),
				fmt.Sprintf("%d", r.Events[i][s]),
				fmt.Sprintf("%d", r.Dropped[i][s]),
				fmt.Sprintf("%d", r.Retransmitted[i][s]),
				fmt.Sprintf("%d", r.Duplicates[i][s]),
				fmt.Sprintf("%d", r.Failed[i][s]),
			})
		}
	}
	return []Table{t}
}
