package experiments_test

import (
	"testing"

	"pseudocircuit/internal/experiments"
)

// TestFaultWindowShape: the fault window is visible in the measurements —
// fault transitions land in the expected segments and every config pays a
// latency penalty while the fault is active. The router fault is the violent
// case: in-flight packets are dropped or rerouted, the pseudo-circuit scheme
// tears down circuits crossing the dead router, and the post window recovers.
// (A single link fault at the low-load operating point is deliberately mild —
// fault-aware routing detours around it — so the strong assertions apply to
// the router fault only.)
func TestFaultWindowShape(t *testing.T) {
	r := experiments.FaultWindow(experiments.Options{Warmup: 400, Measure: 4000})
	if len(r.Configs) == 0 || len(r.Segments) != 3 {
		t.Fatalf("unexpected shape: %d configs, %d segments", len(r.Configs), len(r.Segments))
	}
	rtr := -1
	for i, cfg := range r.Configs {
		if cfg == "Pseudo+S+B (router)" {
			rtr = i
		}
		// The down event fires at the first cycle of the fault window, the up
		// event at the first cycle of the post window.
		if r.Events[i][0] != 0 || r.Events[i][1] != 1 || r.Events[i][2] != 1 {
			t.Errorf("%s: fault events per window %v, want [0 1 1]", cfg, r.Events[i])
		}
		if during, pre := r.Latency[i][1], r.Latency[i][0]; during <= pre {
			t.Errorf("%s: faulted-window latency %.2f not above healthy %.2f", cfg, during, pre)
		}
		// No fault damage outside the fault storms.
		if r.Dropped[i][0] != 0 || r.Rerouted[i][0] != 0 {
			t.Errorf("%s: healthy pre window shows fault damage (dropped %d, rerouted %d)",
				cfg, r.Dropped[i][0], r.Rerouted[i][0])
		}
	}
	if rtr < 0 {
		t.Fatal("router-fault config missing")
	}
	if r.Dropped[rtr][1] == 0 {
		t.Error("router fault dropped no packets")
	}
	if r.PCTorn[rtr][1] == 0 {
		t.Error("router fault tore down no pseudo-circuits")
	}
	if post, during := r.Latency[rtr][2], r.Latency[rtr][1]; post >= during {
		t.Errorf("router fault: post-window latency %.2f did not recover below faulted %.2f", post, during)
	}
}

// TestFaultHeatmapShape: the spatial deltas point at the faulted element —
// reuse collapses at the dead router while far-corner routers are barely
// touched.
func TestFaultHeatmapShape(t *testing.T) {
	r := experiments.FaultHeatmap(experiments.Options{Warmup: 400, Measure: 4000})
	if len(r.ReuseDelta) != r.KX*r.KY {
		t.Fatalf("grid size %d, want %d", len(r.ReuseDelta), r.KX*r.KY)
	}
	if r.ReuseDelta[r.Router] >= 0 {
		t.Errorf("dead router %d reuse delta %.3f not negative", r.Router, r.ReuseDelta[r.Router])
	}
	// The far corner (router 63) should suffer less reuse loss than the dead
	// router itself.
	far := r.KX*r.KY - 1
	if r.ReuseDelta[far] < r.ReuseDelta[r.Router] {
		t.Errorf("far corner delta %.3f below dead router's %.3f", r.ReuseDelta[far], r.ReuseDelta[r.Router])
	}
}
