package experiments

import (
	"runtime"
	"sync"

	"pseudocircuit/noc"
)

// forEach runs fn(i, pool) for i in [0, n) on up to GOMAXPROCS workers.
// Every simulation is self-contained and deterministic (its own network, RNG
// and meters), so per-index results are identical to a sequential run;
// callers write results only to their own index.
//
// Each worker owns one flit/packet pool that it threads through its grid
// points in sequence, so the free lists warmed by one run are reused by the
// next instead of re-growing from the heap. Pools are never shared between
// workers; fn must hand the pool only to networks it runs to completion
// before returning.
func forEach(n int, fn func(i int, pool *noc.Pool)) {
	forEachN(n, runtime.GOMAXPROCS(0), fn)
}

// forEachN is forEach with an explicit worker count (tests pin it).
func forEachN(n, workers int, fn func(i int, pool *noc.Pool)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		pool := noc.NewPool()
		for i := 0; i < n; i++ {
			fn(i, pool)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := noc.NewPool()
			for i := range next {
				fn(i, pool)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
