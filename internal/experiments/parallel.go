package experiments

import (
	"runtime"
	"sync"
)

// forEach runs fn(i) for i in [0, n) on up to GOMAXPROCS workers. Every
// simulation is self-contained and deterministic (its own network, RNG and
// meters), so per-index results are identical to a sequential run; callers
// write results only to their own index.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
