package experiments

import (
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// Fig13Result holds the topology study (paper Fig. 13): communication
// latency of every scheme on Mesh, CMesh, MECS and FBFLY, normalized to the
// baseline mesh, for the fma3d trace with DOR and static VA. The paper's
// findings: the pseudo-circuit scheme reduces per-hop delay on every
// topology (up to ≈10%) while the express topologies reduce hop count, and
// the combination exceeds 20–30% total reduction.
type Fig13Result struct {
	Topologies []string
	Schemes    []string
	Benchmark  string
	// Normalized[t][s] = latency / latency(mesh baseline).
	Normalized [][]float64
	// AvgHops[t] recorded per topology (baseline run) for context.
	AvgHops []float64
}

// Fig13 runs the topology comparison. All four topologies host the 64-node
// CMP: the mesh as an 8×8 grid (one terminal per router), the concentrated
// topologies as 4×4 grids with 4 terminals per router.
func Fig13(o Options) Fig13Result {
	o = o.defaults()
	benchmark := "fma3d"
	topos := []struct {
		name string
		make func() noc.Topology
	}{
		{"Mesh", func() noc.Topology { return topology.NewMesh(8, 8) }},
		{"CMesh", func() noc.Topology { return topology.NewCMesh(4, 4, 4) }},
		{"MECS", func() noc.Topology { return topology.NewMECS(4, 4, 4) }},
		{"FBFLY", func() noc.Topology { return topology.NewFBFly(4, 4, 4) }},
	}
	res := Fig13Result{Schemes: schemeLabels, Benchmark: benchmark}
	var meshBase float64
	for ti, tc := range topos {
		res.Topologies = append(res.Topologies, tc.name)
		row := make([]float64, len(core.Schemes))
		for si, s := range core.Schemes {
			e := noc.Experiment{
				Topology: tc.make(),
				Scheme:   s,
				Routing:  routing.XY,
				Policy:   vcalloc.Static,
				Seed:     o.Seed,
				Warmup:   o.Warmup,
				Measure:  o.Measure,
				Workers:  o.Workers,
			}
			r := mustRunCMP(e, benchmark)
			if ti == 0 && si == 0 {
				meshBase = r.AvgNetLatency
			}
			row[si] = r.AvgNetLatency / meshBase
			if si == 0 {
				res.AvgHops = append(res.AvgHops, r.AvgHops)
			}
		}
		res.Normalized = append(res.Normalized, row)
	}
	return res
}

// Tables renders the figure.
func (r Fig13Result) Tables() []Table {
	t := Table{
		ID:     "fig13",
		Title:  "Normalized latency by topology and scheme (" + r.Benchmark + ", DOR + static VA; 1.0 = mesh baseline)",
		Header: append([]string{"topology", "avg hops"}, r.Schemes...),
	}
	for ti, top := range r.Topologies {
		row := []string{top, num(r.AvgHops[ti])}
		for si := range r.Schemes {
			row = append(row, norm(r.Normalized[ti][si]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}
