package experiments

import (
	"fmt"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// SystemImpactResult addresses the paper's stated future work (§8):
// "integrate our design in a full system simulator to evaluate the overall
// system performance such as IPC". With the self-throttling MSHR model,
// the system-level effect of the network shows up as average L1-miss
// latency and the fraction of core-cycles stalled on full MSHRs; both are
// reported per benchmark for the baseline and Pseudo+S+B.
type SystemImpactResult struct {
	Benchmarks []string
	// BaseMissLat / PSBMissLat in cycles; BaseStall / PSBStall fractions.
	BaseMissLat []float64
	PSBMissLat  []float64
	BaseStall   []float64
	PSBStall    []float64
}

// SystemImpact runs the system-level extension experiment.
func SystemImpact(o Options) SystemImpactResult {
	o = o.defaults()
	res := SystemImpactResult{Benchmarks: o.Benchmarks}
	for _, b := range o.Benchmarks {
		bm, bs := runSystem(o, b, core.Baseline)
		pm, ps := runSystem(o, b, core.PseudoSB)
		res.BaseMissLat = append(res.BaseMissLat, bm)
		res.PSBMissLat = append(res.PSBMissLat, pm)
		res.BaseStall = append(res.BaseStall, bs)
		res.PSBStall = append(res.PSBStall, ps)
	}
	return res
}

func runSystem(o Options, benchmark string, s core.Scheme) (missLat, stall float64) {
	e := cmpExperiment(o, nil, s, routing.XY, vcalloc.Static)
	n := e.Build()
	wl, err := e.CMPWorkload(benchmark)
	if err != nil {
		panic(err)
	}
	w := wl.(*cmp.Workload)
	n.Run(w, o.Warmup)
	n.ResetStats()
	w.ResetSystemStats()
	n.Run(w, o.Measure)
	return w.AvgMissLatency(), w.StallFraction()
}

// Tables renders the extension.
func (r SystemImpactResult) Tables() []Table {
	t := Table{
		ID:     "ext-system",
		Title:  "System impact (extension; paper §8 future work): L1-miss latency and MSHR-stall fraction",
		Header: []string{"benchmark", "base miss lat", "psb miss lat", "miss lat gain", "base stall", "psb stall"},
	}
	for i, b := range r.Benchmarks {
		t.Rows = append(t.Rows, []string{
			b,
			num(r.BaseMissLat[i]), num(r.PSBMissLat[i]),
			pct(1 - r.PSBMissLat[i]/r.BaseMissLat[i]),
			pct(r.BaseStall[i]), pct(r.PSBStall[i]),
		})
	}
	return []Table{t}
}

// SpecDepthResult evaluates the SpecHistoryDepth extension: speculation
// with a per-input history of the last N connections instead of the
// paper's single register pair (whose limited prediction capability the
// paper itself notes, §6.A). Reported per depth: average latency,
// reusability, and the fraction of reuses served by speculative circuits.
type SpecDepthResult struct {
	Depths    []int
	Latency   []float64
	Reuse     []float64
	SpecShare []float64 // speculative reuses / all reuses
}

// SpecDepth runs the speculation-depth extension on the CMP platform
// (Pseudo+S+B, XY + static VA, averaged over the benchmark subset).
func SpecDepth(o Options) SpecDepthResult {
	o = o.defaults()
	res := SpecDepthResult{Depths: []int{1, 2, 4, 8}}
	res.Latency = make([]float64, len(res.Depths))
	res.Reuse = make([]float64, len(res.Depths))
	res.SpecShare = make([]float64, len(res.Depths))
	forEach(len(res.Depths), func(di int, pool *noc.Pool) {
		opts := core.DefaultOptions(core.PseudoSB)
		opts.SpecHistoryDepth = res.Depths[di]
		nb := float64(len(o.Benchmarks))
		for _, b := range o.Benchmarks {
			e := noc.Experiment{
				Topology: cmpTopology(),
				Scheme:   opts.Scheme,
				Opts:     &opts,
				Routing:  routing.XY,
				Policy:   vcalloc.Static,
				Seed:     o.Seed,
				Pool:     pool,
				Warmup:   o.Warmup,
				Measure:  o.Measure,
				Workers:  o.Workers,
			}
			n := e.Build()
			wl, err := e.CMPWorkload(b)
			if err != nil {
				panic(err)
			}
			n.Run(wl, o.Warmup)
			n.ResetStats()
			n.Run(wl, o.Measure)
			res.Latency[di] += n.Stats.AvgNetLatency() / nb
			res.Reuse[di] += n.Stats.Reusability() / nb
			if n.Stats.PCReused > 0 {
				res.SpecShare[di] += float64(n.Stats.SpecReused) / float64(n.Stats.PCReused) / nb
			}
		}
	})
	return res
}

// Tables renders the extension.
func (r SpecDepthResult) Tables() []Table {
	t := Table{
		ID:     "ext-depth",
		Title:  "Speculation history depth (extension; depth 1 = paper)",
		Header: []string{"depth", "net latency", "reusability", "speculative share of reuses"},
	}
	for i, d := range r.Depths {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d), num(r.Latency[i]), pct(r.Reuse[i]), pct(r.SpecShare[i]),
		})
	}
	return []Table{t}
}

// ReuseVsLoadResult quantifies the paper's §8 observation that "the
// pseudo-circuit hardly reduces communication latency in high-load traffic
// due to contentions between flits": pseudo-circuit reusability and latency
// gain versus offered load on the synthetic platform.
type ReuseVsLoadResult struct {
	Loads  []float64
	Reuse  []float64 // Pseudo+S+B reusability at each load
	Bypass []float64
	Gain   []float64 // latency reduction vs baseline at each load
}

// ReuseVsLoad runs the high-load extension experiment (uniform random on
// the 8×8 mesh, XY + static VA).
func ReuseVsLoad(o Options) ReuseVsLoadResult {
	o = o.defaults()
	res := ReuseVsLoadResult{Loads: []float64{0.02, 0.06, 0.10, 0.14, 0.18, 0.22}}
	for _, load := range res.Loads {
		run := func(s core.Scheme) noc.Result {
			e := noc.Experiment{
				Topology: topology.NewMesh(8, 8),
				Scheme:   s,
				Routing:  routing.XY,
				Policy:   vcalloc.Static,
				Seed:     o.Seed,
				Warmup:   o.Warmup,
				Measure:  o.Measure,
				Workers:  o.Workers,
			}
			return e.RunSynthetic(noc.Synthetic{Pattern: traffic.UniformRandom, Rate: load})
		}
		base := run(core.Baseline)
		psb := run(core.PseudoSB)
		res.Reuse = append(res.Reuse, psb.Reusability)
		res.Bypass = append(res.Bypass, psb.BypassRate)
		res.Gain = append(res.Gain, 1-psb.AvgLatency/base.AvgLatency)
	}
	return res
}

// Tables renders the extension.
func (r ReuseVsLoadResult) Tables() []Table {
	t := Table{
		ID:     "ext-load",
		Title:  "Reusability and gain vs offered load (extension; paper §8 high-load limitation)",
		Header: []string{"load", "reusability", "bypass rate", "latency gain"},
	}
	for i, l := range r.Loads {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", l), pct(r.Reuse[i]), pct(r.Bypass[i]), pct(r.Gain[i]),
		})
	}
	return []Table{t}
}
