package experiments_test

import (
	"testing"

	"pseudocircuit/internal/experiments"
)

// TestFig12Shape: low-load wins for every scheme, convergence at high load,
// and the paper's saturation ordering (BP earliest, then BC, then UR).
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep")
	}
	r := experiments.Fig12(experiments.Options{Warmup: 300, Measure: 2500})
	for pi, p := range r.Patterns {
		// Every pseudo scheme improves at the lowest load.
		for si := 1; si < len(r.Schemes); si++ {
			if r.LowLoadImprovement[pi][si] <= 0 {
				t.Errorf("%s/%s: low-load improvement %.3f not positive",
					p, r.Schemes[si], r.LowLoadImprovement[pi][si])
			}
		}
		// Latency grows with load for the baseline.
		lat := r.Latency[pi][0]
		if lat[len(lat)-1] < lat[0]*1.5 {
			t.Errorf("%s: baseline did not approach saturation (%.1f -> %.1f)",
				p, lat[0], lat[len(lat)-1])
		}
		// Buffer bypassing beats plain pseudo-circuit at the lowest load.
		if r.Latency[pi][3][0] >= r.Latency[pi][1][0] {
			t.Errorf("%s: Pseudo+B %.2f not below Pseudo %.2f at low load",
				p, r.Latency[pi][3][0], r.Latency[pi][1][0])
		}
	}
}

// TestFig13Shape: every topology gains from the scheme; express topologies
// beat the mesh; the combination beats either alone.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("topology sweep")
	}
	r := experiments.Fig13(experiments.Options{Warmup: 400, Measure: 3000})
	if r.Topologies[0] != "Mesh" {
		t.Fatal("mesh must be the reference")
	}
	for ti, top := range r.Topologies {
		base, psb := r.Normalized[ti][0], r.Normalized[ti][4]
		if psb >= base {
			t.Errorf("%s: Pseudo+S+B %.3f not below baseline %.3f", top, psb, base)
		}
	}
	// Express topologies cut hops below the mesh.
	if r.AvgHops[1] >= r.AvgHops[0] || r.AvgHops[3] >= r.AvgHops[1] {
		t.Errorf("hop ordering broken: %v", r.AvgHops)
	}
	// Combination beats the best single technique.
	bestTopoAlone := r.Normalized[3][0]   // FBFLY baseline
	bestSchemeAlone := r.Normalized[0][4] // mesh + Pseudo+S+B
	combo := r.Normalized[3][4]
	if combo >= bestTopoAlone || combo >= bestSchemeAlone {
		t.Errorf("combination %.3f not below topology-alone %.3f and scheme-alone %.3f",
			combo, bestTopoAlone, bestSchemeAlone)
	}
}

// TestFig14Shape: EVC helps the mesh, is ~neutral on the CMesh; the
// pseudo-circuit scheme beats EVC on both (the paper's §7.B conclusion).
func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("EVC sweep")
	}
	o := experiments.Options{Warmup: 400, Measure: 3000,
		Benchmarks: []string{"fma3d", "blackscholes"}}
	r := experiments.Fig14(o)
	meshEVC, meshPSB := r.Avg[0][1], r.Avg[0][2]
	cmeshEVC, cmeshPSB := r.Avg[1][1], r.Avg[1][2]
	if meshEVC >= 1 {
		t.Errorf("EVC did not help the mesh: %.3f", meshEVC)
	}
	if cmeshEVC < 0.95 {
		t.Errorf("EVC unexpectedly strong on the CMesh: %.3f", cmeshEVC)
	}
	if meshPSB >= meshEVC || cmeshPSB >= cmeshEVC {
		t.Errorf("Pseudo+S+B (%.3f/%.3f) not below EVC (%.3f/%.3f)",
			meshPSB, cmeshPSB, meshEVC, cmeshEVC)
	}
}

// TestGridOrderingQuick: the Fig. 9/10 headline — static VA with DOR
// maximizes reusability — on one benchmark.
func TestGridOrderingQuick(t *testing.T) {
	o := experiments.Options{Warmup: 300, Measure: 2500, Benchmarks: []string{"fma3d"}}
	r := experiments.Fig9And10(o)
	_, reuse := r.AvgOverBenchmarks()
	psb := reuse[3] // Pseudo+S+B row: combos in order staticXY..dynO1TURN
	staticXY, dynXY := psb[0], psb[3]
	if staticXY <= dynXY {
		t.Errorf("static VA reuse %.3f not above dynamic %.3f", staticXY, dynXY)
	}
	staticO1, _ := psb[2], psb[5]
	if staticXY <= staticO1 {
		t.Errorf("DOR reuse %.3f not above O1TURN %.3f under static VA", staticXY, staticO1)
	}
}
