package experiments

import (
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// Fig6Result reports the measured per-hop router delay for each pipeline
// (paper Fig. 6): baseline 3 cycles (BW | VA+SA | ST), pseudo-circuit hit 2
// cycles (BW | PC+ST), pseudo-circuit hit with buffer bypassing 1 cycle
// (PC+ST). Link traversal adds 1 cycle per hop on the unit mesh.
type Fig6Result struct {
	Schemes []string
	// PerHop is the steady-state router delay per hop in cycles, measured
	// by differencing the latency of two path lengths on an otherwise idle
	// network with a warmed-up pseudo-circuit path.
	PerHop []float64
}

// Fig6 measures per-hop delay with a single periodic single-flit flow along
// one mesh row: after warmup the flow's crossbar connections are stable, so
// every hop hits the pseudo-circuit (and the bypass latch when enabled).
func Fig6(o Options) Fig6Result {
	o = o.defaults()
	res := Fig6Result{Schemes: []string{"Baseline", "Pseudo / Pseudo+S", "Pseudo+B / Pseudo+S+B"}}
	for _, s := range []core.Scheme{core.Baseline, core.Pseudo, core.PseudoB} {
		res.PerHop = append(res.PerHop, measurePerHop(o, s))
	}
	return res
}

// measurePerHop returns (latency(long) - latency(short)) / extra hops for a
// lone periodic flow, isolating the per-hop router+link delay, minus the 1
// cycle of link traversal.
func measurePerHop(o Options, s core.Scheme) float64 {
	lat := func(dst int) float64 {
		e := noc.Experiment{
			Topology: topology.NewMesh(8, 8),
			Scheme:   s,
			Routing:  routing.XY,
			Policy:   vcalloc.Static,
			Seed:     o.Seed,
			Warmup:   400,
			Measure:  2000,
			Workers:  o.Workers,
		}
		w := traffic.NewFlows(traffic.Flow{Src: 0, Dst: dst, Size: 1, Period: 25, Start: sim.Cycle(0)})
		return e.Run(w).AvgNetLatency
	}
	// Nodes 2 and 6 sit 2 and 6 hops along row 0.
	perHopTotal := (lat(6) - lat(2)) / 4
	return perHopTotal - 1 // subtract link traversal
}

// Tables renders the figure.
func (r Fig6Result) Tables() []Table {
	t := Table{
		ID:     "fig6",
		Title:  "Per-hop router delay by pipeline (cycles; paper: 3 / 2 / 1)",
		Header: []string{"pipeline", "router cycles/hop"},
	}
	for i, s := range r.Schemes {
		t.Rows = append(t.Rows, []string{s, num(r.PerHop[i])})
	}
	return []Table{t}
}
