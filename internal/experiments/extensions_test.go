package experiments_test

import (
	"os"
	"testing"

	"pseudocircuit/internal/experiments"
)

func TestSystemImpactShape(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"fma3d", "swaptions"}
	r := experiments.SystemImpact(o)
	for i, b := range r.Benchmarks {
		if r.BaseMissLat[i] <= 0 || r.PSBMissLat[i] <= 0 {
			t.Fatalf("%s: zero miss latency", b)
		}
		// The L2-bank latency alone is 6 cycles plus two network
		// traversals; anything below ~15 cycles is broken accounting.
		if r.BaseMissLat[i] < 15 {
			t.Errorf("%s: baseline miss latency %.1f implausibly low", b, r.BaseMissLat[i])
		}
		if r.PSBMissLat[i] >= r.BaseMissLat[i] {
			t.Errorf("%s: Pseudo+S+B miss latency %.2f not below baseline %.2f",
				b, r.PSBMissLat[i], r.BaseMissLat[i])
		}
	}
	for _, tb := range r.Tables() {
		tb.Fprint(os.Stderr)
	}
}

func TestReuseVsLoadShape(t *testing.T) {
	o := experiments.Options{Warmup: 300, Measure: 2500}
	r := experiments.ReuseVsLoad(o)
	if len(r.Loads) < 4 {
		t.Fatal("too few load points")
	}
	// Low-load gain must exceed the gain near saturation (§8: contention
	// erodes the benefit), and low-load reusability must be substantial.
	first, last := r.Gain[0], r.Gain[len(r.Gain)-1]
	if first < 0.05 {
		t.Errorf("low-load gain %.3f too small", first)
	}
	if last >= first {
		t.Errorf("gain did not erode with load: %.3f -> %.3f", first, last)
	}
	if r.Reuse[0] < 0.3 {
		t.Errorf("low-load reusability %.3f too small", r.Reuse[0])
	}
	for _, tb := range r.Tables() {
		tb.Fprint(os.Stderr)
	}
}

func TestSpecDepthShape(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"fma3d"}
	r := experiments.SpecDepth(o)
	if len(r.Depths) < 3 || r.Depths[0] != 1 {
		t.Fatalf("depths = %v", r.Depths)
	}
	for i, d := range r.Depths {
		if r.Latency[i] <= 0 || r.Reuse[i] <= 0 {
			t.Errorf("depth %d: empty result", d)
		}
	}
	// Deeper history must not hurt speculative share at depth 2 vs 1 (it
	// strictly remembers more), and latencies stay in a tight band — the
	// extension finding is a plateau, not a cliff.
	if r.SpecShare[1] < r.SpecShare[0]*0.8 {
		t.Errorf("depth 2 spec share %.4f collapsed vs depth 1 %.4f", r.SpecShare[1], r.SpecShare[0])
	}
	for i := 1; i < len(r.Depths); i++ {
		if r.Latency[i] > r.Latency[0]*1.1 {
			t.Errorf("depth %d latency %.2f regressed >10%% vs depth 1 %.2f",
				r.Depths[i], r.Latency[i], r.Latency[0])
		}
	}
}

func TestAblationsRun(t *testing.T) {
	o := quick()
	o.Benchmarks = []string{"fma3d"}
	r := experiments.Ablations(o)
	if len(r.Names) != 4 {
		t.Fatalf("%d ablations, want 4", len(r.Names))
	}
	for i := range r.Names {
		if r.Paper[i] <= 0 || r.Flipped[i] <= 0 {
			t.Errorf("%s: zero latency", r.Names[i])
		}
	}
	// Destination keying (the paper's choice) must beat flow keying.
	if r.Paper[3] >= r.Flipped[3] {
		t.Errorf("destination keying (%.2f) not better than flow keying (%.2f)",
			r.Paper[3], r.Flipped[3])
	}
}

func TestTableRendering(t *testing.T) {
	tb := experiments.TableI()
	if tb.ID != "table1" || len(tb.Rows) < 10 {
		t.Fatalf("TableI = %+v", tb)
	}
	t2 := experiments.TableII()
	if len(t2.Rows) != 3 {
		t.Fatalf("TableII rows = %d", len(t2.Rows))
	}
}
