package experiments

import (
	"fmt"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// Fig11Result holds normalized router energy consumption per benchmark and
// scheme, for XY and YX routing with static VA (paper Fig. 11). Values are
// normalized to the same configuration's baseline; energy is normalized per
// delivered flit so small load differences between runs do not skew the
// comparison. The paper's finding: schemes without buffer bypassing save
// almost nothing; with buffer bypassing energy drops ≈20%.
type Fig11Result struct {
	Benchmarks []string
	Schemes    []string // Baseline..Pseudo+S+B (baseline = 1.0)
	// Normalized[a][b][s]: a = 0 (XY), 1 (YX).
	Normalized [][][]float64
	// Avg[a][s] averages over benchmarks.
	Avg [][]float64
}

// Fig11 runs the energy experiment.
func Fig11(o Options) Fig11Result {
	o = o.defaults()
	algos := []routing.Algorithm{routing.XY, routing.YX}
	res := Fig11Result{Benchmarks: o.Benchmarks, Schemes: schemeLabels}
	res.Normalized = make([][][]float64, len(algos))
	res.Avg = make([][]float64, len(algos))
	for ai, algo := range algos {
		algo := algo
		res.Avg[ai] = make([]float64, len(core.Schemes))
		res.Normalized[ai] = make([][]float64, len(o.Benchmarks))
		forEach(len(o.Benchmarks), func(bi int, pool *noc.Pool) {
			b := o.Benchmarks[bi]
			row := make([]float64, len(core.Schemes))
			var basePerFlit float64
			for si, s := range core.Schemes {
				r := mustRunCMP(cmpExperiment(o, pool, s, algo, vcalloc.Static), b)
				perFlit := r.EnergyPJ / float64(max(r.FlitsDelivered, 1))
				if si == 0 {
					basePerFlit = perFlit
				}
				row[si] = perFlit / basePerFlit
			}
			res.Normalized[ai][bi] = row
		})
		for bi := range o.Benchmarks {
			for si := range res.Avg[ai] {
				res.Avg[ai][si] += res.Normalized[ai][bi][si] / float64(len(o.Benchmarks))
			}
		}
	}
	return res
}

// Tables renders Fig. 11 (a) XY and (b) YX.
func (r Fig11Result) Tables() []Table {
	labels := []string{"XY", "YX"}
	var out []Table
	for ai, lab := range labels {
		t := Table{
			ID:     fmt.Sprintf("fig11%c", 'a'+ai),
			Title:  fmt.Sprintf("Normalized router energy, %s + static VA", lab),
			Header: append([]string{"benchmark"}, r.Schemes...),
		}
		for bi, b := range r.Benchmarks {
			row := []string{b}
			for si := range r.Schemes {
				row = append(row, norm(r.Normalized[ai][bi][si]))
			}
			t.Rows = append(t.Rows, row)
		}
		avg := []string{"average"}
		for si := range r.Schemes {
			avg = append(avg, norm(r.Avg[ai][si]))
		}
		t.Rows = append(t.Rows, avg)
		out = append(out, t)
	}
	return out
}
