package experiments

import (
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// Fig1Result holds per-benchmark communication temporal locality (paper
// Fig. 1): end-to-end (same source-destination pair as the source's
// previous packet) versus crossbar-connection (same input-to-output
// connection as the previous packet through that router input port).
type Fig1Result struct {
	Benchmarks []string
	E2E        []float64
	Xbar       []float64
	AvgE2E     float64
	AvgXbar    float64
}

// Fig1 measures communication temporal locality on the baseline router (the
// property is intrinsic to the traffic, not the scheme) over the paper's
// benchmark set. The paper reports ≈22% end-to-end and up to ≈31% crossbar
// locality; the headline relationship is Xbar > E2E.
func Fig1(o Options) Fig1Result {
	o = o.defaults()
	res := Fig1Result{
		Benchmarks: o.Benchmarks,
		E2E:        make([]float64, len(o.Benchmarks)),
		Xbar:       make([]float64, len(o.Benchmarks)),
	}
	forEach(len(o.Benchmarks), func(i int, pool *noc.Pool) {
		r := mustRunCMP(cmpExperiment(o, pool, core.Baseline, routing.XY, vcalloc.Dynamic), o.Benchmarks[i])
		res.E2E[i] = r.E2ELocality
		res.Xbar[i] = r.XbarLocality
	})
	for i := range o.Benchmarks {
		res.AvgE2E += res.E2E[i]
		res.AvgXbar += res.Xbar[i]
	}
	res.AvgE2E /= float64(len(o.Benchmarks))
	res.AvgXbar /= float64(len(o.Benchmarks))
	return res
}

// Tables renders the figure.
func (r Fig1Result) Tables() []Table {
	t := Table{
		ID:     "fig1",
		Title:  "Communication temporal locality (end-to-end vs crossbar connection)",
		Header: []string{"benchmark", "end-to-end", "crossbar"},
	}
	for i, b := range r.Benchmarks {
		t.Rows = append(t.Rows, []string{b, pct(r.E2E[i]), pct(r.Xbar[i])})
	}
	t.Rows = append(t.Rows, []string{"average", pct(r.AvgE2E), pct(r.AvgXbar)})
	return []Table{t}
}
