package experiments

import (
	"fmt"

	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// GridResult holds the routing-algorithm × VA-policy sweep behind Fig. 9
// (network latency reduction) and Fig. 10 (pseudo-circuit reusability):
// for each benchmark and scheme, all six combinations of {XY, YX, O1TURN}
// and {static, dynamic} VA. Each combination is normalized against the
// same combination's no-scheme baseline, isolating the pseudo-circuit
// gain from the combination's intrinsic performance (see Fig8Result's
// normalization note).
type GridResult struct {
	Benchmarks []string
	Schemes    []string // Pseudo .. Pseudo+S+B
	Combos     []string // "staticVA XY", ...
	// Reduction[b][s][c] and Reuse[b][s][c].
	Reduction [][][]float64
	Reuse     [][][]float64
}

type combo struct {
	algo routing.Algorithm
	pol  vcalloc.Policy
}

var gridCombos = []combo{
	{routing.XY, vcalloc.Static},
	{routing.YX, vcalloc.Static},
	{routing.O1TURN, vcalloc.Static},
	{routing.XY, vcalloc.Dynamic},
	{routing.YX, vcalloc.Dynamic},
	{routing.O1TURN, vcalloc.Dynamic},
}

func comboLabel(c combo) string {
	return fmt.Sprintf("%v %v", c.pol, c.algo)
}

// Fig9And10 runs the full grid (6 combos × 4 schemes per benchmark, plus
// the baseline reference). It is the most expensive experiment; shrink
// Options.Benchmarks or Measure for quick runs.
func Fig9And10(o Options) GridResult {
	o = o.defaults()
	res := GridResult{Benchmarks: o.Benchmarks, Schemes: schemeLabels[1:]}
	for _, c := range gridCombos {
		res.Combos = append(res.Combos, comboLabel(c))
	}
	res.Reduction = make([][][]float64, len(o.Benchmarks))
	res.Reuse = make([][][]float64, len(o.Benchmarks))
	// Parallelize over (benchmark, combo) pairs: each pair runs its
	// baseline plus the four schemes.
	type cell struct{ bi, ci int }
	cells := make([]cell, 0, len(o.Benchmarks)*len(gridCombos))
	for bi := range o.Benchmarks {
		res.Reduction[bi] = make([][]float64, len(fig8Schemes))
		res.Reuse[bi] = make([][]float64, len(fig8Schemes))
		for si := range fig8Schemes {
			res.Reduction[bi][si] = make([]float64, len(gridCombos))
			res.Reuse[bi][si] = make([]float64, len(gridCombos))
		}
		for ci := range gridCombos {
			cells = append(cells, cell{bi, ci})
		}
	}
	// Each cell runs 1 baseline + len(fig8Schemes) scheme simulations.
	tick := o.progress(len(cells) * (1 + len(fig8Schemes)))
	forEach(len(cells), func(k int, pool *noc.Pool) {
		bi, ci := cells[k].bi, cells[k].ci
		b, c := o.Benchmarks[bi], gridCombos[ci]
		base := baseline(o, pool, b, c.algo, c.pol).AvgNetLatency
		tick()
		for si, s := range fig8Schemes {
			r := mustRunCMP(cmpExperiment(o, pool, s, c.algo, c.pol), b)
			res.Reduction[bi][si][ci] = 1 - r.AvgNetLatency/base
			res.Reuse[bi][si][ci] = r.Reusability
			tick()
		}
	})
	return res
}

// Tables renders one latency-reduction table (Fig. 9) and one reusability
// table (Fig. 10) per scheme, matching the paper's four sub-figures each.
func (r GridResult) Tables() []Table {
	var out []Table
	for si, s := range r.Schemes {
		t9 := Table{
			ID:     fmt.Sprintf("fig9.%d", si+1),
			Title:  fmt.Sprintf("Network latency reduction, %s", s),
			Header: append([]string{"benchmark"}, r.Combos...),
		}
		t10 := Table{
			ID:     fmt.Sprintf("fig10.%d", si+1),
			Title:  fmt.Sprintf("Pseudo-circuit reusability, %s", s),
			Header: append([]string{"benchmark"}, r.Combos...),
		}
		for bi, b := range r.Benchmarks {
			row9 := []string{b}
			row10 := []string{b}
			for ci := range r.Combos {
				row9 = append(row9, pct(r.Reduction[bi][si][ci]))
				row10 = append(row10, pct(r.Reuse[bi][si][ci]))
			}
			t9.Rows = append(t9.Rows, row9)
			t10.Rows = append(t10.Rows, row10)
		}
		out = append(out, t9, t10)
	}
	return out
}

// AvgOverBenchmarks returns mean latency reduction and reusability per
// (scheme, combo) — the aggregates tests assert on.
func (r GridResult) AvgOverBenchmarks() (red, reuse [][]float64) {
	nb := float64(len(r.Benchmarks))
	red = make([][]float64, len(r.Schemes))
	reuse = make([][]float64, len(r.Schemes))
	for si := range r.Schemes {
		red[si] = make([]float64, len(r.Combos))
		reuse[si] = make([]float64, len(r.Combos))
		for ci := range r.Combos {
			for bi := range r.Benchmarks {
				red[si][ci] += r.Reduction[bi][si][ci] / nb
				reuse[si][ci] += r.Reuse[bi][si][ci] / nb
			}
		}
	}
	return red, reuse
}
