package experiments

import (
	"fmt"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/energy"
)

// TableI renders the CMP configuration parameters (paper Table I).
func TableI() Table {
	c := cmp.PaperTableI()
	t := Table{
		ID:     "table1",
		Title:  "CMP configuration parameters",
		Header: []string{"parameter", "value"},
	}
	rows := [][2]string{
		{"# Cores", fmt.Sprintf("%d out-of-order", c.Cores)},
		{"# L2 Banks", fmt.Sprintf("%d (%d KB/bank)", c.L2Banks, c.L2MB*1024/c.L2Banks)},
		{"MSHRs per core", fmt.Sprintf("%d", c.MSHRsPerCore)},
		{"L1 I-Cache", fmt.Sprintf("%d-way %d KB", c.L1IWays, c.L1IKB)},
		{"L1 D-Cache", fmt.Sprintf("%d-way %d KB", c.L1DWays, c.L1DKB)},
		{"L1 latency", fmt.Sprintf("%d cycle", c.L1ILatency)},
		{"Unified L2", fmt.Sprintf("%d-way %d MB shared (S-NUCA)", c.L2Ways, c.L2MB)},
		{"L2 bank latency", fmt.Sprintf("%d cycles", c.L2BankLatency)},
		{"Memory latency", fmt.Sprintf("%d cycles", c.MemoryLatency)},
		{"Cache block", fmt.Sprintf("%d B", c.CacheBlockB)},
		{"Clock", fmt.Sprintf("%d GHz", c.ClockGHz)},
		{"Address packet", fmt.Sprintf("%d flit", c.AddrFlits)},
		{"Data packet", fmt.Sprintf("%d flits", c.DataFlits)},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r[0], r[1]})
	}
	return t
}

// TableII renders the router energy characterization (paper Table II).
func TableII() Table {
	p := energy.PaperParams()
	buf, xbar, arb := p.Shares()
	t := Table{
		ID:     "table2",
		Title:  "Energy consumption characteristics of router components (45 nm)",
		Header: []string{"component", "energy/event (pJ)", "share"},
	}
	t.Rows = [][]string{
		{"Buffer (write+read)", fmt.Sprintf("%.2f", p.BufferWrite+p.BufferRead), pct(buf)},
		{"Crossbar", fmt.Sprintf("%.2f", p.Crossbar), pct(xbar)},
		{"Arbiter", fmt.Sprintf("%.2f", p.Arbiter), pct(arb)},
	}
	return t
}
