package experiments

import (
	"fmt"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// faultSegments are the three measurement windows around a scheduled fault.
var faultSegments = []string{"pre", "fault", "post"}

// FaultWindowResult holds the fault-window figure: latency, throughput,
// energy and pseudo-circuit reuse measured before, during and after a
// scheduled fault, per scheme. The pre window calibrates each scheme's
// healthy behavior; the fault window shows the detour/drop cost; the post
// window shows recovery once the link or router comes back. Dropped,
// Rerouted and PCTorn attribute the in-flight damage to the window whose
// fault transition caused it.
type FaultWindowResult struct {
	Configs  []string // scheme + fault kind label per row group
	Segments []string // pre, fault, post
	// All indexed [config][segment].
	Latency    [][]float64
	Throughput [][]float64
	EnergyPJ   [][]float64
	Reuse      [][]float64
	Events     [][]uint64
	Dropped    [][]uint64
	Rerouted   [][]uint64
	PCTorn     [][]uint64
}

// faultWindowConfigs pairs each compared router architecture with a fault
// schedule. The faulted element is router 27 (center of the 8×8 mesh, x=3
// y=3): the link fault kills its east output link, the router fault kills the
// whole router. Every packet is salvaged where possible (reroute policy) so
// the figure shows fault-aware adaptive routing, not just drops.
type faultWindowConfig struct {
	label  string
	scheme core.Scheme
	evc    bool
	kinds  [2]noc.FaultEvent // down/up pair template (cycles filled in)
}

// FaultWindow measures the fault-window figure on the paper's standard 8×8
// mesh (XY, static VA, uniform random at the Fig. 12 low-load point). The
// run is split into pre (¼ of the measured cycles), fault (½) and post (¼)
// windows; the schedule takes the fault down at the pre/fault boundary and
// back up at the fault/post boundary. Cycles in a schedule are absolute, so
// the warmup offset is added here.
func FaultWindow(o Options) FaultWindowResult {
	o = o.defaults()
	const rate = 0.10
	pre := o.Measure / 4
	during := o.Measure / 2
	post := o.Measure - pre - during
	downAt := int64(o.Warmup + pre)
	upAt := int64(o.Warmup + pre + during)

	link := [2]noc.FaultEvent{
		{Kind: noc.LinkDown, Router: 27, Port: 0},
		{Kind: noc.LinkUp, Router: 27, Port: 0},
	}
	rtr := [2]noc.FaultEvent{
		{Kind: noc.RouterDown, Router: 27},
		{Kind: noc.RouterUp, Router: 27},
	}
	configs := []faultWindowConfig{
		{label: "Baseline (link)", scheme: core.Baseline, kinds: link},
		{label: "Pseudo+S+B (link)", scheme: core.PseudoSB, kinds: link},
		{label: "Pseudo+S+B (router)", scheme: core.PseudoSB, kinds: rtr},
		{label: "EVC (link)", scheme: core.Baseline, evc: true, kinds: link},
	}

	res := FaultWindowResult{Segments: faultSegments}
	for _, c := range configs {
		res.Configs = append(res.Configs, c.label)
	}
	res.Latency = make([][]float64, len(configs))
	res.Throughput = make([][]float64, len(configs))
	res.EnergyPJ = make([][]float64, len(configs))
	res.Reuse = make([][]float64, len(configs))
	res.Events = make([][]uint64, len(configs))
	res.Dropped = make([][]uint64, len(configs))
	res.Rerouted = make([][]uint64, len(configs))
	res.PCTorn = make([][]uint64, len(configs))

	tick := o.progress(len(configs))
	forEach(len(configs), func(i int, pool *noc.Pool) {
		c := configs[i]
		down, up := c.kinds[0], c.kinds[1]
		down.Cycle, up.Cycle = downAt, upAt
		e := noc.Experiment{
			Topology: topology.NewMesh(8, 8),
			Scheme:   c.scheme,
			Routing:  routing.XY,
			Policy:   vcalloc.Static,
			Seed:     o.Seed,
			Pool:     pool,
			UseEVC:   c.evc,
			Warmup:   o.Warmup,
			Measure:  o.Measure,
			Workers:  o.Workers,
			Faults: &noc.FaultSchedule{
				Policy: noc.FaultReroute,
				Events: []noc.FaultEvent{down, up},
			},
		}
		n := e.Build()
		w := e.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: rate, PacketSize: 5})
		segs := e.RunWindowsOn(n, w, []int{pre, during, post})
		lat := make([]float64, len(segs))
		thr := make([]float64, len(segs))
		nrg := make([]float64, len(segs))
		reuse := make([]float64, len(segs))
		evs := make([]uint64, len(segs))
		drop := make([]uint64, len(segs))
		rer := make([]uint64, len(segs))
		torn := make([]uint64, len(segs))
		for s, r := range segs {
			lat[s] = r.AvgLatency
			thr[s] = r.Throughput
			nrg[s] = r.EnergyPJ
			reuse[s] = r.Reusability
			evs[s] = r.FaultEvents
			drop[s] = r.PacketsDropped
			rer[s] = r.PacketsRerouted
			torn[s] = r.PCFaultTerminated
		}
		res.Latency[i] = lat
		res.Throughput[i] = thr
		res.EnergyPJ[i] = nrg
		res.Reuse[i] = reuse
		res.Events[i] = evs
		res.Dropped[i] = drop
		res.Rerouted[i] = rer
		res.PCTorn[i] = torn
		tick()
	})
	return res
}

// Tables renders one row per (config, segment).
func (r FaultWindowResult) Tables() []Table {
	t := Table{
		ID:     "faults",
		Title:  "Latency/energy/reuse across a fault window (8x8 mesh, XY, static VA, UR 0.10, reroute policy)",
		Header: []string{"config", "window", "latency", "thr (f/n/c)", "energy (pJ)", "reuse", "events", "dropped", "rerouted", "pc torn"},
	}
	for i, cfg := range r.Configs {
		for s, seg := range r.Segments {
			t.Rows = append(t.Rows, []string{
				cfg, seg,
				num(r.Latency[i][s]),
				fmt.Sprintf("%.3f", r.Throughput[i][s]),
				fmt.Sprintf("%.0f", r.EnergyPJ[i][s]),
				pct(r.Reuse[i][s]),
				fmt.Sprintf("%d", r.Events[i][s]),
				fmt.Sprintf("%d", r.Dropped[i][s]),
				fmt.Sprintf("%d", r.Rerouted[i][s]),
				fmt.Sprintf("%d", r.PCTorn[i][s]),
			})
		}
	}
	return []Table{t}
}

// FaultHeatmapResult holds per-router deltas between a healthy window and a
// faulted window of equal length on the same run: how pseudo-circuit reuse
// collapses at the dead router and traffic concentrates around it. The
// spatial companion to FaultWindow — a fault, viewed per router.
type FaultHeatmapResult struct {
	KX, KY int
	Router int // faulted router
	// Per router (ID = y*KX + x): faulted-window value minus pre-window value.
	ReuseDelta []float64
	StallDelta []int64
}

// FaultHeatmap runs Pseudo+S+B on the 8×8 mesh with the per-router registry
// enabled, measures one healthy window, then takes router 27 down for a
// second window of the same length and reports the per-router deltas.
func FaultHeatmap(o Options) FaultHeatmapResult {
	o = o.defaults()
	const kx, ky, rate, rtr = 8, 8, 0.10, 27
	half := o.Measure / 2
	e := noc.Experiment{
		Topology: topology.NewMesh(kx, ky),
		Scheme:   noc.PseudoSB,
		Routing:  routing.XY,
		Policy:   vcalloc.Static,
		Seed:     o.Seed,
		Warmup:   o.Warmup,
		Measure:  o.Measure,
		Workers:  o.Workers,
		Observe:  noc.Observe{PerRouter: true},
		Faults: &noc.FaultSchedule{
			Policy: noc.FaultReroute,
			Events: []noc.FaultEvent{
				{Cycle: int64(o.Warmup + half), Kind: noc.RouterDown, Router: rtr},
				{Cycle: int64(o.Warmup + o.Measure - 1), Kind: noc.RouterUp, Router: rtr},
			},
		},
	}
	n := e.Build()
	w := e.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: rate, PacketSize: 5})

	res := FaultHeatmapResult{
		KX: kx, KY: ky, Router: rtr,
		ReuseDelta: make([]float64, kx*ky),
		StallDelta: make([]int64, kx*ky),
	}
	snapshot := func(sign float64) {
		for _, r := range n.Registry().Routers() {
			res.ReuseDelta[r.ID] += sign * r.Reusability()
			res.StallDelta[r.ID] += int64(sign) * int64(r.CreditStallCycles())
		}
	}
	n.Run(w, o.Warmup)
	n.ResetStats()
	n.Run(w, half)
	snapshot(-1)
	n.ResetStats()
	n.Run(w, o.Measure-half)
	snapshot(+1)
	return res
}

// Tables renders the delta grids; row y, column x, router y*KX+x.
func (h FaultHeatmapResult) Tables() []Table {
	header := make([]string, h.KX+1)
	header[0] = "y\\x"
	for x := 0; x < h.KX; x++ {
		header[x+1] = fmt.Sprintf("x=%d", x)
	}
	grid := func(id, title string, cell func(r int) string) Table {
		t := Table{ID: id, Title: title, Header: header}
		for y := 0; y < h.KY; y++ {
			row := make([]string, h.KX+1)
			row[0] = fmt.Sprintf("%d", y)
			for x := 0; x < h.KX; x++ {
				row[x+1] = cell(y*h.KX + x)
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	return []Table{
		grid("fault-heatmap.reuse",
			fmt.Sprintf("Pseudo-circuit reuse delta, router %d down (faulted minus healthy window)", h.Router),
			func(r int) string { return pct(h.ReuseDelta[r]) }),
		grid("fault-heatmap.stalls",
			fmt.Sprintf("Credit-stall cycle delta, router %d down (faulted minus healthy window)", h.Router),
			func(r int) string { return fmt.Sprintf("%+d", h.StallDelta[r]) }),
	}
}
