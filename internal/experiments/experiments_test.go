package experiments_test

import (
	"os"
	"testing"

	"pseudocircuit/internal/experiments"
)

// quick returns reduced-size options so the full figure set runs in seconds.
func quick() experiments.Options {
	return experiments.Options{
		Warmup:     500,
		Measure:    4000,
		Benchmarks: []string{"fma3d", "specjbb", "fft"},
	}
}

func TestFig1Shape(t *testing.T) {
	r := experiments.Fig1(quick())
	if r.AvgXbar <= r.AvgE2E {
		t.Errorf("crossbar locality %.3f must exceed end-to-end %.3f (Fig. 1)", r.AvgXbar, r.AvgE2E)
	}
	if r.AvgE2E < 0.05 || r.AvgE2E > 0.5 {
		t.Errorf("end-to-end locality %.3f outside plausible band (paper: ~0.22)", r.AvgE2E)
	}
	if r.AvgXbar < 0.15 || r.AvgXbar > 0.8 {
		t.Errorf("crossbar locality %.3f outside plausible band (paper: ~0.31)", r.AvgXbar)
	}
	for _, tb := range r.Tables() {
		tb.Fprint(os.Stderr)
	}
}

func TestFig6PipelineDepths(t *testing.T) {
	r := experiments.Fig6(experiments.Options{Warmup: 200, Measure: 1000})
	want := []float64{3, 2, 1}
	for i, got := range r.PerHop {
		if got != want[i] {
			t.Errorf("%s: per-hop router delay = %.2f cycles, want %.0f", r.Schemes[i], got, want[i])
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r := experiments.Fig8(quick())
	// Every scheme must win on average, and the aggressive schemes must
	// beat plain Pseudo. The paper reports 16% for Pseudo+S+B; our
	// substrate reproduces the ordering with a smaller magnitude
	// (EXPERIMENTS.md discusses the gap), so the band is wide but strictly
	// positive.
	sb := r.AvgReduction[3]
	if sb <= r.AvgReduction[0] {
		t.Errorf("Pseudo+S+B avg reduction %.3f not above Pseudo %.3f", sb, r.AvgReduction[0])
	}
	if sb < 0.01 || sb > 0.35 {
		t.Errorf("Pseudo+S+B avg reduction %.3f outside plausible band (paper: 0.16)", sb)
	}
	for i, red := range r.AvgReduction {
		if red <= 0 {
			t.Errorf("%s avg reduction %.3f not positive", r.Schemes[i], red)
		}
	}
	for _, tb := range r.Tables() {
		tb.Fprint(os.Stderr)
	}
}
