package experiments

import (
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// Fig8Result holds overall performance (Fig. 8a: network latency reduction)
// and overall pseudo-circuit reusability (Fig. 8b) per benchmark and scheme.
//
// The paper normalizes to "the baseline system with O1TURN and dynamic VA
// ... which provides the best performance in the baseline system" and runs
// the schemes in that same configuration for the fair headline comparison;
// the configuration sweep is Fig. 9's job. We do the same: baseline and
// schemes both use O1TURN + dynamic VA here. (Normalizing DOR+static-VA
// scheme runs against the O1TURN+dynamic baseline — the other reading of
// §6.A — conflates the scheme's gain with the static-VA HoL penalty, whose
// size is an artifact of the traffic substrate; see EXPERIMENTS.md.)
type Fig8Result struct {
	Benchmarks []string
	Schemes    []string // Pseudo, Pseudo+S, Pseudo+B, Pseudo+S+B
	// Reduction[b][s] = 1 - latency(scheme)/latency(baseline).
	Reduction [][]float64
	// Reuse[b][s] is pseudo-circuit reusability.
	Reuse [][]float64
	// AvgReduction[s] averages over benchmarks (paper: 16% for Pseudo+S+B).
	AvgReduction []float64
	AvgReuse     []float64
}

var fig8Schemes = []core.Scheme{core.Pseudo, core.PseudoS, core.PseudoB, core.PseudoSB}

// Fig8 runs the overall-performance experiment.
func Fig8(o Options) Fig8Result {
	o = o.defaults()
	res := Fig8Result{
		Benchmarks:   o.Benchmarks,
		Schemes:      schemeLabels[1:],
		AvgReduction: make([]float64, len(fig8Schemes)),
		AvgReuse:     make([]float64, len(fig8Schemes)),
	}
	res.Reduction = make([][]float64, len(o.Benchmarks))
	res.Reuse = make([][]float64, len(o.Benchmarks))
	forEach(len(o.Benchmarks), func(bi int, pool *noc.Pool) {
		b := o.Benchmarks[bi]
		base := baseline(o, pool, b, routing.O1TURN, vcalloc.Dynamic)
		reds := make([]float64, len(fig8Schemes))
		reuse := make([]float64, len(fig8Schemes))
		for i, s := range fig8Schemes {
			r := mustRunCMP(cmpExperiment(o, pool, s, routing.O1TURN, vcalloc.Dynamic), b)
			reds[i] = 1 - r.AvgNetLatency/base.AvgNetLatency
			reuse[i] = r.Reusability
		}
		res.Reduction[bi] = reds
		res.Reuse[bi] = reuse
	})
	for bi := range o.Benchmarks {
		for i := range fig8Schemes {
			res.AvgReduction[i] += res.Reduction[bi][i] / float64(len(o.Benchmarks))
			res.AvgReuse[i] += res.Reuse[bi][i] / float64(len(o.Benchmarks))
		}
	}
	return res
}

// Tables renders Fig. 8a and Fig. 8b.
func (r Fig8Result) Tables() []Table {
	a := Table{
		ID:     "fig8a",
		Title:  "Overall latency reduction vs best baseline (O1TURN, dynamic VA)",
		Header: append([]string{"benchmark"}, r.Schemes...),
	}
	b := Table{
		ID:     "fig8b",
		Title:  "Overall pseudo-circuit reusability",
		Header: append([]string{"benchmark"}, r.Schemes...),
	}
	for i, bench := range r.Benchmarks {
		ra := []string{bench}
		rb := []string{bench}
		for s := range r.Schemes {
			ra = append(ra, pct(r.Reduction[i][s]))
			rb = append(rb, pct(r.Reuse[i][s]))
		}
		a.Rows = append(a.Rows, ra)
		b.Rows = append(b.Rows, rb)
	}
	avgA := []string{"average"}
	avgB := []string{"average"}
	for s := range r.Schemes {
		avgA = append(avgA, pct(r.AvgReduction[s]))
		avgB = append(avgB, pct(r.AvgReuse[s]))
	}
	a.Rows = append(a.Rows, avgA)
	b.Rows = append(b.Rows, avgB)
	return []Table{a, b}
}
