package experiments

import (
	"fmt"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// Fig12Result holds the synthetic-workload load-latency curves (paper
// Fig. 12): average latency versus offered traffic for uniform random (UR),
// bit complement (BC) and bit permutation (BP, transpose) on an 8×8 mesh
// with XY routing and static VA, 5-flit packets, for the baseline and the
// four pseudo-circuit schemes. The paper reports ≈11% low-load improvement
// for UR and BP and ≈6% for BC, with all schemes converging at saturation.
type Fig12Result struct {
	Patterns []string
	Schemes  []string
	// Loads[p] is the swept injection rates (flits/node/cycle); Latency[p][s][l].
	Loads   [][]float64
	Latency [][][]float64
	// LowLoadImprovement[p][s] = 1 - latency(scheme)/latency(baseline) at
	// the lowest load.
	LowLoadImprovement [][]float64
}

// fig12Patterns maps each pattern to its load sweep; the upper ends sit
// just past each pattern's saturation under XY on the 8×8 mesh (BP crosses
// the diagonal and saturates earliest, BC next, UR last — §6.B).
var fig12Patterns = []struct {
	name    string
	pattern traffic.Pattern
	loads   []float64
}{
	{"UR", traffic.UniformRandom, []float64{0.02, 0.06, 0.10, 0.14, 0.18, 0.22, 0.26}},
	{"BC", traffic.BitComplement, []float64{0.01, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13}},
	{"BP", traffic.BitPermutation, []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12}},
}

// Fig12 runs the synthetic load sweeps.
func Fig12(o Options) Fig12Result {
	o = o.defaults()
	res := Fig12Result{Schemes: schemeLabels}
	total := 0
	for _, pc := range fig12Patterns {
		total += len(core.Schemes) * len(pc.loads)
	}
	tick := o.progress(total)
	for _, pc := range fig12Patterns {
		pc := pc
		res.Patterns = append(res.Patterns, pc.name)
		res.Loads = append(res.Loads, pc.loads)
		lat := make([][]float64, len(core.Schemes))
		for si := range core.Schemes {
			lat[si] = make([]float64, len(pc.loads))
		}
		forEach(len(core.Schemes)*len(pc.loads), func(k int, pool *noc.Pool) {
			si, li := k/len(pc.loads), k%len(pc.loads)
			e := noc.Experiment{
				Topology: topology.NewMesh(8, 8),
				Scheme:   core.Schemes[si],
				Routing:  routing.XY,
				Policy:   vcalloc.Static,
				Seed:     o.Seed,
				Pool:     pool,
				Warmup:   o.Warmup,
				Measure:  o.Measure,
				Workers:  o.Workers,
			}
			r := e.RunSynthetic(noc.Synthetic{Pattern: pc.pattern, Rate: pc.loads[li], PacketSize: 5})
			lat[si][li] = r.AvgLatency
			tick()
		})
		impr := make([]float64, len(core.Schemes))
		for si := range core.Schemes {
			impr[si] = 1 - lat[si][0]/lat[0][0]
		}
		res.Latency = append(res.Latency, lat)
		res.LowLoadImprovement = append(res.LowLoadImprovement, impr)
	}
	return res
}

// Tables renders one load-latency table per pattern.
func (r Fig12Result) Tables() []Table {
	var out []Table
	for pi, p := range r.Patterns {
		t := Table{
			ID:     fmt.Sprintf("fig12%c", 'a'+pi),
			Title:  fmt.Sprintf("Latency vs offered traffic, %s (8x8 mesh, XY, static VA)", p),
			Header: []string{"load (flits/node/cyc)"},
		}
		t.Header = append(t.Header, r.Schemes...)
		for li, load := range r.Loads[pi] {
			row := []string{fmt.Sprintf("%.2f", load)}
			for si := range r.Schemes {
				row = append(row, num(r.Latency[pi][si][li]))
			}
			t.Rows = append(t.Rows, row)
		}
		impr := []string{"low-load gain"}
		for si := range r.Schemes {
			impr = append(impr, pct(r.LowLoadImprovement[pi][si]))
		}
		t.Rows = append(t.Rows, impr)
		out = append(out, t)
	}
	return out
}
