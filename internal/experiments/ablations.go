package experiments

import (
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// AblationResult compares the paper's design choices against their
// alternatives (DESIGN.md §7) on the CMP platform: average latency and
// reusability with the choice as published vs flipped.
type AblationResult struct {
	Names []string
	// Paper[i] and Flipped[i] are average latencies (cycles) over the
	// benchmark subset; Reuse holds the matching reusabilities.
	Paper        []float64
	Flipped      []float64
	PaperReuse   []float64
	FlippedReuse []float64
}

// ablation defines one knob flip.
type ablation struct {
	name string
	flip func(*core.Options)
	// policy/alg overrides for ablations about VA keys.
	staticKey vcalloc.StaticKey
}

func ablations() []ablation {
	return []ablation{
		{name: "terminate PC on zero credit (paper) vs keep",
			flip: func(o *core.Options) { o.TerminateOnZeroCredit = false }},
		{name: "SA grants preempt PC (default) vs PC defers to SA requests",
			flip: func(o *core.Options) { o.PCDefersToSA = true }},
		{name: "no speculation to congested outputs (paper) vs allow",
			flip: func(o *core.Options) { o.SpeculateToCongested = true }},
		{name: "static VA keyed by destination (paper) vs flow",
			flip:      func(o *core.Options) {},
			staticKey: vcalloc.KeyFlow},
	}
}

// Ablations runs every knob flip with Pseudo+S+B, XY + static VA.
func Ablations(o Options) AblationResult {
	o = o.defaults()
	var res AblationResult
	for _, a := range ablations() {
		res.Names = append(res.Names, a.name)
		paperOpts := core.DefaultOptions(core.PseudoSB)
		flipOpts := paperOpts
		a.flip(&flipOpts)
		pLat, pReuse := runAblation(o, paperOpts, vcalloc.KeyDestination)
		fLat, fReuse := runAblation(o, flipOpts, a.staticKey)
		res.Paper = append(res.Paper, pLat)
		res.Flipped = append(res.Flipped, fLat)
		res.PaperReuse = append(res.PaperReuse, pReuse)
		res.FlippedReuse = append(res.FlippedReuse, fReuse)
	}
	return res
}

func runAblation(o Options, opts core.Options, key vcalloc.StaticKey) (lat, reuse float64) {
	n := 0
	for _, b := range o.Benchmarks {
		e := noc.Experiment{
			Topology:  cmpTopology(),
			Scheme:    opts.Scheme,
			Opts:      &opts,
			Routing:   routing.XY,
			Policy:    vcalloc.Static,
			StaticKey: key,
			Seed:      o.Seed,
			Warmup:    o.Warmup,
			Measure:   o.Measure,
			Workers:   o.Workers,
		}
		r := mustRunCMP(e, b)
		lat += r.AvgLatency
		reuse += r.Reusability
		n++
	}
	return lat / float64(n), reuse / float64(n)
}

// Tables renders the ablation study.
func (r AblationResult) Tables() []Table {
	t := Table{
		ID:     "ablations",
		Title:  "Design-choice ablations (Pseudo+S+B, XY + static VA, CMP average)",
		Header: []string{"choice", "paper lat", "flipped lat", "paper reuse", "flipped reuse"},
	}
	for i, name := range r.Names {
		t.Rows = append(t.Rows, []string{
			name, num(r.Paper[i]), num(r.Flipped[i]), pct(r.PaperReuse[i]), pct(r.FlippedReuse[i]),
		})
	}
	return []Table{t}
}
