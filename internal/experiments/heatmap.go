package experiments

import (
	"fmt"

	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
	"pseudocircuit/noc"
)

// HeatmapResult holds per-router observability metrics over a mesh — the
// spatial view behind the paper's position-dependent reusability claims
// (Fig. 1 measures locality network-wide; the registry shows where it
// concentrates). Rendered as KY×KX tables, one cell per router.
type HeatmapResult struct {
	KX, KY int
	Scheme string
	Rate   float64
	// Per router (ID = y*KX + x), measured window only.
	Reuse        []float64 // pseudo-circuit reuse fraction
	Bypass       []float64 // buffer-bypass fraction
	CreditStalls []uint64  // credit-stall cycles summed over input ports
	BufHighWater []int     // deepest VC buffer across input ports
}

// RouterHeatmap runs the paper's standard mesh configuration (8×8, XY,
// static VA, Pseudo+S+B, uniform random at the given Fig. 12 low-load point)
// with the per-router registry enabled and returns the spatial metrics.
func RouterHeatmap(o Options) HeatmapResult {
	o = o.defaults()
	const kx, ky, rate = 8, 8, 0.10
	e := noc.Experiment{
		Topology: topology.NewMesh(kx, ky),
		Scheme:   noc.PseudoSB,
		Routing:  routing.XY,
		Policy:   vcalloc.Static,
		Seed:     o.Seed,
		Warmup:   o.Warmup,
		Measure:  o.Measure,
		Workers:  o.Workers,
		Observe:  noc.Observe{PerRouter: true},
	}
	n := e.Build()
	e.RunOn(n, e.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: rate, PacketSize: 5}))

	res := HeatmapResult{
		KX: kx, KY: ky, Scheme: "Pseudo+S+B", Rate: rate,
		Reuse:        make([]float64, kx*ky),
		Bypass:       make([]float64, kx*ky),
		CreditStalls: make([]uint64, kx*ky),
		BufHighWater: make([]int, kx*ky),
	}
	for _, r := range n.Registry().Routers() {
		res.Reuse[r.ID] = r.Reusability()
		res.Bypass[r.ID] = r.BypassRate()
		res.CreditStalls[r.ID] = r.CreditStallCycles()
		for i := range r.In {
			if hw := r.In[i].BufHighWater; hw > res.BufHighWater[r.ID] {
				res.BufHighWater[r.ID] = hw
			}
		}
	}
	return res
}

// Tables renders one KY×KX grid per metric; row y, column x, router y*KX+x.
func (h HeatmapResult) Tables() []Table {
	header := make([]string, h.KX+1)
	header[0] = "y\\x"
	for x := 0; x < h.KX; x++ {
		header[x+1] = fmt.Sprintf("x=%d", x)
	}
	grid := func(id, title string, cell func(r int) string) Table {
		t := Table{ID: id, Title: title, Header: header}
		for y := 0; y < h.KY; y++ {
			row := make([]string, h.KX+1)
			row[0] = fmt.Sprintf("%d", y)
			for x := 0; x < h.KX; x++ {
				row[x+1] = cell(y*h.KX + x)
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	title := func(metric string) string {
		return fmt.Sprintf("Per-router %s, %s, UR %.2f on %dx%d mesh", metric, h.Scheme, h.Rate, h.KX, h.KY)
	}
	return []Table{
		grid("heatmap.reuse", title("pseudo-circuit reuse"), func(r int) string { return pct(h.Reuse[r]) }),
		grid("heatmap.bypass", title("buffer bypass"), func(r int) string { return pct(h.Bypass[r]) }),
		grid("heatmap.stalls", title("credit-stall cycles"), func(r int) string { return fmt.Sprintf("%d", h.CreditStalls[r]) }),
		grid("heatmap.bufhwm", title("buffer high-water (flits)"), func(r int) string { return fmt.Sprintf("%d", h.BufHighWater[r]) }),
	}
}
