package experiments

import (
	"reflect"
	"testing"

	"pseudocircuit/noc"
)

// runPoint runs one small grid point with the worker-local pool, the way
// every Fig function does.
func runPoint(i int, pool *noc.Pool) noc.Result {
	e := noc.Experiment{
		Topology: noc.Mesh(4, 4),
		Scheme:   noc.Schemes[i%len(noc.Schemes)],
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Seed:     uint64(1 + i),
		Pool:     pool,
		Warmup:   200,
		Measure:  800,
	}
	return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
}

// TestForEachParallelMatchesSequential drives the sweep executor with one
// worker and with many, sharing each worker's pool across its grid points,
// and requires identical per-index results. Run under -race this also
// checks that pool handoff between sequential runs on one worker never
// crosses goroutines.
func TestForEachParallelMatchesSequential(t *testing.T) {
	const n = 16
	seq := make([]noc.Result, n)
	forEachN(n, 1, func(i int, pool *noc.Pool) {
		seq[i] = runPoint(i, pool)
	})
	for _, workers := range []int{2, 4, 8} {
		par := make([]noc.Result, n)
		forEachN(n, workers, func(i int, pool *noc.Pool) {
			par[i] = runPoint(i, pool)
		})
		for i := range seq {
			if !reflect.DeepEqual(seq[i], par[i]) {
				t.Errorf("workers=%d index %d diverged:\nseq: %+v\npar: %+v", workers, i, seq[i], par[i])
			}
		}
	}
}

// TestForEachCoversAllIndices guards the executor itself: every index runs
// exactly once regardless of worker count.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 7, 32} {
		counts := make([]int, 50)
		var order []int // written only under workers=1
		forEachN(len(counts), workers, func(i int, pool *noc.Pool) {
			if pool == nil {
				t.Fatalf("workers=%d: nil pool for index %d", workers, i)
			}
			if workers == 1 {
				order = append(order, i)
				counts[i]++
				return
			}
			counts[i]++ // distinct indices: no two workers share a slot
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		if workers == 1 {
			for k, i := range order {
				if k != i {
					t.Errorf("sequential order violated: position %d got index %d", k, i)
					break
				}
			}
		}
	}
}
