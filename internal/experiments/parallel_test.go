package experiments

import (
	"reflect"
	"sync"
	"testing"

	"pseudocircuit/noc"
)

// runPoint runs one small grid point with the worker-local pool, the way
// every Fig function does.
func runPoint(i int, pool *noc.Pool) noc.Result {
	e := noc.Experiment{
		Topology: noc.Mesh(4, 4),
		Scheme:   noc.Schemes[i%len(noc.Schemes)],
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Seed:     uint64(1 + i),
		Pool:     pool,
		Warmup:   200,
		Measure:  800,
	}
	return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
}

// TestForEachParallelMatchesSequential drives the sweep executor with one
// worker and with many, sharing each worker's pool across its grid points,
// and requires identical per-index results. Run under -race this also
// checks that pool handoff between sequential runs on one worker never
// crosses goroutines.
func TestForEachParallelMatchesSequential(t *testing.T) {
	const n = 16
	seq := make([]noc.Result, n)
	forEachN(n, 1, func(i int, pool *noc.Pool) {
		seq[i] = runPoint(i, pool)
	})
	for _, workers := range []int{2, 4, 8} {
		par := make([]noc.Result, n)
		forEachN(n, workers, func(i int, pool *noc.Pool) {
			par[i] = runPoint(i, pool)
		})
		for i := range seq {
			if !reflect.DeepEqual(seq[i], par[i]) {
				t.Errorf("workers=%d index %d diverged:\nseq: %+v\npar: %+v", workers, i, seq[i], par[i])
			}
		}
	}
}

// TestForEachNZeroWork: n=0 must return immediately — no worker goroutines,
// no fn calls, no hang on the work channel — for every worker count
// (including the degenerate 0 and negative ones).
func TestForEachNZeroWork(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 4} {
		calls := 0
		forEachN(0, workers, func(i int, pool *noc.Pool) {
			calls++
		})
		if calls != 0 {
			t.Errorf("workers=%d: fn called %d times for n=0", workers, calls)
		}
	}
}

// TestForEachNWorkersExceedN: with more workers than work items the
// executor clamps rather than spawning idle goroutines, and still runs each
// index exactly once with a non-nil worker-local pool.
func TestForEachNWorkersExceedN(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	counts := make([]int, n)
	pools := make(map[*noc.Pool]bool)
	forEachN(n, 64, func(i int, pool *noc.Pool) {
		if pool == nil {
			t.Errorf("nil pool for index %d", i)
			return
		}
		mu.Lock()
		counts[i]++
		pools[pool] = true
		mu.Unlock()
	})
	for i, c := range counts {
		if c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
	if len(pools) > n {
		t.Errorf("%d distinct pools for %d work items: workers not clamped", len(pools), n)
	}
}

// TestForEachNSingleWorkerIsSequential: workers=1 (and below) must run on
// the calling goroutine in index order — callers rely on this for
// deterministic sequential baselines.
func TestForEachNSingleWorkerIsSequential(t *testing.T) {
	for _, workers := range []int{0, 1} {
		var order []int
		var pools []*noc.Pool
		forEachN(5, workers, func(i int, pool *noc.Pool) {
			order = append(order, i) // unsynchronized: must be one goroutine
			pools = append(pools, pool)
		})
		for k, i := range order {
			if k != i {
				t.Fatalf("workers=%d: position %d got index %d", workers, k, i)
			}
		}
		for k := 1; k < len(pools); k++ {
			if pools[k] != pools[0] {
				t.Errorf("workers=%d: sequential run switched pools at index %d", workers, k)
			}
		}
	}
}

// TestForEachCoversAllIndices guards the executor itself: every index runs
// exactly once regardless of worker count.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 7, 32} {
		counts := make([]int, 50)
		var order []int // written only under workers=1
		forEachN(len(counts), workers, func(i int, pool *noc.Pool) {
			if pool == nil {
				t.Fatalf("workers=%d: nil pool for index %d", workers, i)
			}
			if workers == 1 {
				order = append(order, i)
				counts[i]++
				return
			}
			counts[i]++ // distinct indices: no two workers share a slot
		})
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
		if workers == 1 {
			for k, i := range order {
				if k != i {
					t.Errorf("sequential order violated: position %d got index %d", k, i)
					break
				}
			}
		}
	}
}
