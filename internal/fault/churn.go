// Churn: a seeded Markov up/down process over links and routers that expands
// at run start into an ordinary cycle-stamped Schedule. Everything downstream
// of expansion — canonical cache keys, the determinism triangle, fault
// figures, the replaying State — works on the expanded schedule unchanged;
// the process itself is pure data (four per-cycle probabilities and a seed),
// so two runs with the same parameters expand to bit-identical schedules on
// any host.
package fault

import (
	"fmt"
	"math"

	"pseudocircuit/internal/sim"
)

// Churn describes an independent two-state (up/down) Markov chain per wired
// link and per router. Each cycle, an up target goes down with its Fail
// probability and a down target comes back with its Repair probability. A
// zero Fail probability disables the chain for that target class; a zero
// Repair probability with a nonzero Fail probability yields permanent faults
// (the expanded schedule is open, Schedule.AllowOpen).
type Churn struct {
	// Seed drives the expansion's private RNG. Equal seeds and parameters
	// expand identically; the seed is independent of the experiment's
	// traffic seed so churn can be varied while holding traffic fixed.
	Seed uint64
	// LinkFail/LinkRepair are per-cycle down/up transition probabilities
	// for every wired directional link, in [0, 1].
	LinkFail   float64
	LinkRepair float64
	// RouterFail/RouterRepair are the same for whole routers.
	RouterFail   float64
	RouterRepair float64
	// Policy selects the in-flight packet salvage policy of the expanded
	// schedule, exactly as on a spec-declared Schedule.
	Policy Policy
}

// Enabled reports whether the process can generate any event at all.
func (c Churn) Enabled() bool { return c.LinkFail > 0 || c.RouterFail > 0 }

// Validate rejects parameters outside the model: every probability must be a
// real number in [0, 1]. The negated comparison deliberately catches NaN.
func (c Churn) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"linkFail", c.LinkFail},
		{"linkRepair", c.LinkRepair},
		{"routerFail", c.RouterFail},
		{"routerRepair", c.RouterRepair},
	} {
		if !(p.v >= 0 && p.v <= 1) {
			return fmt.Errorf("fault: churn %s probability %v outside [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// churnWait samples the geometric waiting time (in cycles, >= 1) until the
// next transition of a chain whose per-cycle transition probability is p,
// via the inverse transform k = 1 + floor(log(1-U)/log(1-p)). One uniform
// draw per transition keeps expansion O(events), not O(horizon·targets) —
// a per-cycle Bernoulli sweep would make tiny probabilities on long runs
// quadratically expensive. Waits past limit are clamped to limit (the caller
// treats that as "no transition before the horizon"), which also keeps the
// float→int conversion in range for arbitrarily small p.
func churnWait(rng *sim.RNG, p float64, limit int64) int64 {
	if p >= 1 {
		return 1
	}
	k := math.Floor(math.Log1p(-rng.Float64())/math.Log1p(-p)) + 1
	if k < 1 {
		k = 1
	}
	if k >= float64(limit) {
		return limit
	}
	return int64(k)
}

// Expand materializes the process into a validated Schedule over t for cycles
// [0, horizon). Targets are walked in a fixed order (routers ascending, then
// wired links by router then direction port) with a single seeded RNG, so the
// expansion is a pure function of (parameters, topology, horizon). Every
// target starts up. Chains still down at the horizon stay down: the schedule
// is marked AllowOpen and the kernel treats those targets as permanently
// failed. Expansion fails, rather than truncating silently, if the parameters
// generate more than MaxEvents events — degenerate inputs (fail probability
// near 1 over a long horizon) surface as an error at the spec boundary, not
// as an unbounded allocation.
func (c Churn) Expand(t Topo, horizon int64) (*Schedule, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if horizon < 0 {
		return nil, fmt.Errorf("fault: churn horizon %d is negative", horizon)
	}
	s := &Schedule{Policy: c.Policy, AllowOpen: true}
	if !c.Enabled() || horizon == 0 {
		return s, nil
	}
	rng := sim.NewRNG(c.Seed)
	routers := t.Routers()
	expand := func(router, port int, down, up Kind, pf, pr float64) error {
		if pf <= 0 {
			return nil
		}
		cycle := int64(0)
		for {
			cycle += churnWait(rng, pf, horizon)
			if cycle >= horizon {
				return nil
			}
			if len(s.Events) >= MaxEvents {
				return fmt.Errorf("fault: churn expansion exceeds %d events; lower the fail probabilities or shorten the run", MaxEvents)
			}
			s.Events = append(s.Events, Event{Cycle: cycle, Kind: down, Router: router, Port: port})
			if pr <= 0 {
				return nil // permanent: chain never repairs
			}
			cycle += churnWait(rng, pr, horizon)
			if cycle >= horizon {
				return nil // still down at the horizon: left open
			}
			if len(s.Events) >= MaxEvents {
				return fmt.Errorf("fault: churn expansion exceeds %d events; lower the fail probabilities or shorten the run", MaxEvents)
			}
			s.Events = append(s.Events, Event{Cycle: cycle, Kind: up, Router: router, Port: port})
		}
	}
	for r := 0; r < routers; r++ {
		if err := expand(r, 0, RouterDown, RouterUp, c.RouterFail, c.RouterRepair); err != nil {
			return nil, err
		}
	}
	for r := 0; r < routers; r++ {
		for out := 0; out < 4; out++ {
			if !wired(t, r, out) {
				continue
			}
			if err := expand(r, out, LinkDown, LinkUp, c.LinkFail, c.LinkRepair); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Validate(t, horizon); err != nil {
		// By construction the expansion satisfies every structural rule;
		// a failure here is a bug in the expander, not bad input.
		return nil, fmt.Errorf("fault: churn expansion produced an invalid schedule: %v", err)
	}
	return s, nil
}
