package fault

import (
	"reflect"
	"testing"

	"pseudocircuit/internal/topology"
)

func sched(events ...Event) Schedule { return Schedule{Events: events} }

func TestValidateAcceptsWellFormed(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cases := map[string]Schedule{
		"empty": {},
		"link window": sched(
			Event{Cycle: 100, Kind: LinkDown, Router: 5, Port: topology.PortE},
			Event{Cycle: 400, Kind: LinkUp, Router: 5, Port: topology.PortE},
		),
		"router window": sched(
			Event{Cycle: 50, Kind: RouterDown, Router: 10},
			Event{Cycle: 90, Kind: RouterUp, Router: 10},
		),
		"repeated window same target": sched(
			Event{Cycle: 10, Kind: LinkDown, Router: 0, Port: topology.PortS},
			Event{Cycle: 20, Kind: LinkUp, Router: 0, Port: topology.PortS},
			Event{Cycle: 30, Kind: LinkDown, Router: 0, Port: topology.PortS},
			Event{Cycle: 40, Kind: LinkUp, Router: 0, Port: topology.PortS},
		),
		"overlapping targets": sched(
			Event{Cycle: 10, Kind: LinkDown, Router: 1, Port: topology.PortE},
			Event{Cycle: 15, Kind: RouterDown, Router: 6},
			Event{Cycle: 20, Kind: RouterUp, Router: 6},
			Event{Cycle: 25, Kind: LinkUp, Router: 1, Port: topology.PortE},
		),
		"router and link on same router are distinct targets": sched(
			Event{Cycle: 10, Kind: LinkDown, Router: 5, Port: topology.PortW},
			Event{Cycle: 12, Kind: RouterDown, Router: 5},
			Event{Cycle: 14, Kind: RouterUp, Router: 5},
			Event{Cycle: 16, Kind: LinkUp, Router: 5, Port: topology.PortW},
		),
	}
	for name, s := range cases {
		if err := s.Validate(m, 1000); err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

func TestValidateRejectsHostile(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cases := map[string]Schedule{
		"router out of range": sched(
			Event{Cycle: 10, Kind: RouterDown, Router: 16},
			Event{Cycle: 20, Kind: RouterUp, Router: 16},
		),
		"negative router": sched(
			Event{Cycle: 10, Kind: LinkDown, Router: -1, Port: 0},
			Event{Cycle: 20, Kind: LinkUp, Router: -1, Port: 0},
		),
		"port out of range": sched(
			Event{Cycle: 10, Kind: LinkDown, Router: 0, Port: 4},
			Event{Cycle: 20, Kind: LinkUp, Router: 0, Port: 4},
		),
		"unwired edge port": sched(
			// Router 0 sits at (0,0): west is off the grid.
			Event{Cycle: 10, Kind: LinkDown, Router: 0, Port: topology.PortW},
			Event{Cycle: 20, Kind: LinkUp, Router: 0, Port: topology.PortW},
		),
		"router event with port": sched(
			Event{Cycle: 10, Kind: RouterDown, Router: 3, Port: 1},
			Event{Cycle: 20, Kind: RouterUp, Router: 3, Port: 1},
		),
		"past horizon": sched(
			Event{Cycle: 10, Kind: LinkDown, Router: 5, Port: topology.PortE},
			Event{Cycle: 1000, Kind: LinkUp, Router: 5, Port: topology.PortE},
		),
		"negative cycle": sched(
			Event{Cycle: -1, Kind: LinkDown, Router: 5, Port: topology.PortE},
			Event{Cycle: 20, Kind: LinkUp, Router: 5, Port: topology.PortE},
		),
		"down without up": sched(
			Event{Cycle: 10, Kind: LinkDown, Router: 5, Port: topology.PortE},
		),
		"up without down": sched(
			Event{Cycle: 10, Kind: LinkUp, Router: 5, Port: topology.PortE},
		),
		"double down": sched(
			Event{Cycle: 10, Kind: RouterDown, Router: 5},
			Event{Cycle: 20, Kind: RouterDown, Router: 5},
			Event{Cycle: 30, Kind: RouterUp, Router: 5},
		),
		"duplicate event": sched(
			Event{Cycle: 10, Kind: LinkDown, Router: 5, Port: topology.PortE},
			Event{Cycle: 10, Kind: LinkDown, Router: 5, Port: topology.PortE},
			Event{Cycle: 20, Kind: LinkUp, Router: 5, Port: topology.PortE},
		),
		"same-cycle down and up": sched(
			Event{Cycle: 10, Kind: LinkDown, Router: 5, Port: topology.PortE},
			Event{Cycle: 10, Kind: LinkUp, Router: 5, Port: topology.PortE},
		),
		"unknown kind": sched(
			Event{Cycle: 10, Kind: Kind(99), Router: 5},
		),
	}
	for name, s := range cases {
		if err := s.Validate(m, 1000); err == nil {
			t.Errorf("%s: expected validation error, got nil", name)
		}
	}
}

func TestValidateRejectsOversized(t *testing.T) {
	m := topology.NewMesh(4, 4)
	var s Schedule
	for i := 0; i <= MaxEvents; i += 2 {
		s.Events = append(s.Events,
			Event{Cycle: int64(i), Kind: RouterDown, Router: 5},
			Event{Cycle: int64(i + 1), Kind: RouterUp, Router: 5},
		)
	}
	if err := s.Validate(m, int64(MaxEvents+10)); err == nil {
		t.Fatalf("expected oversized schedule to be rejected")
	}
}

func TestCanonOrderIndependent(t *testing.T) {
	a := sched(
		Event{Cycle: 20, Kind: LinkUp, Router: 1, Port: topology.PortE},
		Event{Cycle: 10, Kind: LinkDown, Router: 1, Port: topology.PortE},
		Event{Cycle: 15, Kind: RouterDown, Router: 6},
		Event{Cycle: 18, Kind: RouterUp, Router: 6},
	)
	b := sched(
		Event{Cycle: 15, Kind: RouterDown, Router: 6},
		Event{Cycle: 10, Kind: LinkDown, Router: 1, Port: topology.PortE},
		Event{Cycle: 18, Kind: RouterUp, Router: 6},
		Event{Cycle: 20, Kind: LinkUp, Router: 1, Port: topology.PortE},
	)
	a.Canon()
	b.Canon()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("canonical forms differ:\n%v\n%v", a, b)
	}
	m := topology.NewMesh(4, 4)
	if err := a.Validate(m, 100); err != nil {
		t.Fatalf("canonical schedule failed validation: %v", err)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("kind %d: round-trip via %q gave (%d, %v)", int(k), k.String(), int(got), ok)
		}
	}
	if _, ok := KindByName("meltdown"); ok {
		t.Errorf("unknown kind name resolved")
	}
}

func TestPolicyByName(t *testing.T) {
	if p, ok := PolicyByName(""); !ok || p != Drop {
		t.Errorf("empty policy: got (%v, %v)", p, ok)
	}
	if p, ok := PolicyByName("reroute"); !ok || p != Reroute {
		t.Errorf("reroute: got (%v, %v)", p, ok)
	}
	if _, ok := PolicyByName("explode"); ok {
		t.Errorf("unknown policy resolved")
	}
}

func TestNeighborTable(t *testing.T) {
	m := topology.NewMesh(4, 4)
	nbr := NeighborTable(m)
	// Router 5 sits at (1,1) of a 4x4 grid.
	want := map[int]int{topology.PortE: 6, topology.PortW: 4, topology.PortN: 1, topology.PortS: 9}
	for out, w := range want {
		if nbr[5*4+out] != w {
			t.Errorf("router 5 port %d: neighbor %d, want %d", out, nbr[5*4+out], w)
		}
	}
	// Corner router 0 has no west or north neighbor.
	if nbr[0*4+topology.PortW] != -1 || nbr[0*4+topology.PortN] != -1 {
		t.Errorf("router 0 edge ports should be unwired")
	}
}

func TestStateReplay(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s := sched(
		Event{Cycle: 10, Kind: LinkDown, Router: 5, Port: topology.PortE},
		Event{Cycle: 10, Kind: RouterDown, Router: 9},
		Event{Cycle: 30, Kind: LinkUp, Router: 5, Port: topology.PortE},
		Event{Cycle: 40, Kind: RouterUp, Router: 9},
	)
	if err := s.Validate(m, 100); err != nil {
		t.Fatal(err)
	}
	st := NewState(s, m.Routers(), NeighborTable(m))

	if evs := st.Take(9); evs != nil {
		t.Fatalf("cycle 9: unexpected events %v", evs)
	}
	evs := st.Take(10)
	if len(evs) != 2 {
		t.Fatalf("cycle 10: want 2 events, got %v", evs)
	}
	for _, e := range evs {
		st.Apply(e)
	}
	if !st.LinkDead(5, topology.PortE) {
		t.Errorf("link 5.E should be dead")
	}
	if !st.RouterDead(9) {
		t.Errorf("router 9 should be dead")
	}
	// Links into and out of a dead router are dead too: router 9 is east of
	// router 8 on a 4x4 grid.
	if !st.LinkDead(8, topology.PortE) {
		t.Errorf("link 8.E into dead router 9 should be dead")
	}
	if !st.LinkDead(9, topology.PortW) {
		t.Errorf("link 9.W out of dead router 9 should be dead")
	}
	if st.LinkDead(5, topology.PortW) {
		t.Errorf("link 5.W should be alive")
	}
	if !st.AnyDown() || !st.Pending() {
		t.Errorf("mid-window: AnyDown=%v Pending=%v, want true/true", st.AnyDown(), st.Pending())
	}

	for _, e := range st.Take(30) {
		st.Apply(e)
	}
	if st.LinkDead(5, topology.PortE) {
		t.Errorf("link 5.E should have recovered at cycle 30")
	}
	for _, e := range st.Take(40) {
		st.Apply(e)
	}
	if st.AnyDown() {
		t.Errorf("all targets restored; AnyDown should be false")
	}
	if st.Pending() {
		t.Errorf("cursor should be exhausted")
	}
	// Ejection ports die only with their router.
	if st.LinkDead(5, 4) {
		t.Errorf("ejection port on live router should be alive")
	}
}

func TestTakeZeroAllocFastPath(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s := sched(
		Event{Cycle: 1 << 40, Kind: RouterDown, Router: 5},
		Event{Cycle: 1<<40 + 10, Kind: RouterUp, Router: 5},
	)
	if err := s.Validate(m, 1<<41); err != nil {
		t.Fatal(err)
	}
	st := NewState(s, m.Routers(), NeighborTable(m))
	allocs := testing.AllocsPerRun(100, func() {
		for c := int64(0); c < 1000; c++ {
			if st.Take(c) != nil {
				t.Fatal("unexpected due events")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Take fast path allocated %v times", allocs)
	}
}
