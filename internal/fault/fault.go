// Package fault defines deterministic fault schedules for the cycle kernel:
// cycle-stamped link-down/link-up and router-down/router-up events declared
// up front on the experiment spec, applied inside the kernel's main phase so
// faulted runs stay bit-identical across the naive, active-set and sharded
// parallel kernels at every worker count.
//
// A schedule is data, not behavior: validation happens once at the spec
// boundary (and again defensively at network build time), and the runtime
// State replays the canonically sorted event list with an alloc-free cursor
// so the steady-state hot path stays zero-alloc.
package fault

import (
	"fmt"
	"sort"
)

// Kind enumerates fault event kinds.
type Kind int

const (
	// LinkDown disables a router's outgoing direction link (and the
	// corresponding reverse path is unaffected: links are unidirectional).
	LinkDown Kind = iota
	// LinkUp re-enables a previously downed link.
	LinkUp
	// RouterDown disables a whole router: all its links, its terminals'
	// injection, and delivery of packets homed at it.
	RouterDown
	// RouterUp re-enables a previously downed router.
	RouterUp
	numKinds
)

var kindNames = [numKinds]string{"link-down", "link-up", "router-down", "router-up"}

// String returns the canonical spec name of the kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindByName resolves a canonical kind name; ok is false for unknown names.
func KindByName(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// IsDown reports whether the kind takes a target down.
func (k Kind) IsDown() bool { return k == LinkDown || k == RouterDown }

// IsLink reports whether the kind targets a link rather than a router.
func (k Kind) IsLink() bool { return k == LinkDown || k == LinkUp }

// Event is one scheduled fault transition. Link events identify the link by
// its source router and direction output port (0..3: E, W, N, S); router
// events leave Port zero.
type Event struct {
	Cycle  int64
	Kind   Kind
	Router int
	Port   int
}

// Policy selects what happens to in-flight flits whose committed path
// crosses a failing link.
type Policy int

const (
	// Drop kills the whole packet (all flits purged, credits replenished,
	// the drop accounted in stats). The default.
	Drop Policy = iota
	// Reroute salvages packets whose head flit is still buffered at the
	// failure point by re-running route computation around the dead link;
	// packets already partially forwarded are dropped as under Drop.
	Reroute
)

// String returns the canonical spec name of the policy.
func (p Policy) String() string {
	if p == Reroute {
		return "reroute"
	}
	return "drop"
}

// PolicyByName resolves a policy name; empty selects Drop.
func PolicyByName(s string) (Policy, bool) {
	switch s {
	case "", "drop":
		return Drop, true
	case "reroute":
		return Reroute, true
	}
	return Drop, false
}

// Schedule is a validated, canonically ordered fault schedule.
type Schedule struct {
	Policy Policy
	Events []Event
	// AllowOpen permits schedules whose final event for a target is a down
	// with no later up: the target stays down forever (a permanent fault).
	// Spec-declared schedules keep the closed-schedule guarantee; expanded
	// churn processes set AllowOpen because a chain may still be down when
	// the horizon ends. The kernel distinguishes permanent from transient
	// downs (State.AnyTransientDown) so its termination watchdogs keep
	// working under open schedules.
	AllowOpen bool
}

// MaxEvents bounds schedule size at the service boundary.
const MaxEvents = 4096

// target identifies a fault target for alternation checking: router faults
// use port -1 so they never collide with link faults.
type target struct {
	router, port int
}

func (e Event) target() target {
	if e.Kind.IsLink() {
		return target{e.Router, e.Port}
	}
	return target{e.Router, -1}
}

// Canon sorts events into canonical order: by cycle, then router, then port,
// then kind. Two schedules that differ only in event order canonicalize (and
// therefore hash) identically.
func (s *Schedule) Canon() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		a, b := s.Events[i], s.Events[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Kind < b.Kind
	})
}

// Topo is the slice of topology the validator needs. *topology.Mesh
// satisfies it; topologies without a wired-port notion are rejected before
// validation reaches here.
type Topo interface {
	Routers() int
	// Dims returns the router grid dimensions (mesh-like topologies).
	Dims() (kx, ky int)
	// Coord returns router r's grid coordinates.
	Coord(r int) (x, y int)
}

// wired reports whether direction port out of router r connects to a
// neighbor on the grid (edge ports exist but are unwired).
func wired(t Topo, r, out int) bool {
	kx, ky := t.Dims()
	x, y := t.Coord(r)
	switch out {
	case 0: // E
		return x+1 < kx
	case 1: // W
		return x > 0
	case 2: // N
		return y > 0
	case 3: // S
		return y+1 < ky
	}
	return false
}

// NeighborTable builds the (router*4 + port) → far-end-router table a State
// needs: the router at the other end of each direction link, or -1 for
// unwired grid-edge ports.
func NeighborTable(t Topo) []int {
	kx, ky := t.Dims()
	nbr := make([]int, t.Routers()*4)
	for r := 0; r < t.Routers(); r++ {
		x, y := t.Coord(r)
		for out := 0; out < 4; out++ {
			nx, ny := x, y
			switch out {
			case 0: // E
				nx++
			case 1: // W
				nx--
			case 2: // N
				ny--
			case 3: // S
				ny++
			}
			if nx < 0 || nx >= kx || ny < 0 || ny >= ky {
				nbr[r*4+out] = -1
			} else {
				nbr[r*4+out] = ny*kx + nx
			}
		}
	}
	return nbr
}

// Validate canonicalizes the schedule in place and checks every structural
// rule the kernel depends on:
//
//   - every event cycle in [0, horizon)
//   - router IDs on the grid; link ports 0..3 and wired
//   - per target, events strictly alternate down → up → down … starting
//     with down, at strictly increasing cycles (no duplicates, no same-cycle
//     down+up pair)
//   - unless AllowOpen is set, every down is matched by a later up, so no
//     fault is permanent and Drain is guaranteed to terminate
//   - at most MaxEvents events
//
// The empty schedule is valid and equivalent to no schedule at all.
func (s *Schedule) Validate(t Topo, horizon int64) error {
	if len(s.Events) > MaxEvents {
		return fmt.Errorf("fault: %d events exceeds limit %d", len(s.Events), MaxEvents)
	}
	s.Canon()
	routers := t.Routers()
	for _, e := range s.Events {
		if e.Kind < 0 || e.Kind >= numKinds {
			return fmt.Errorf("fault: unknown event kind %d", int(e.Kind))
		}
		if e.Cycle < 0 || e.Cycle >= horizon {
			return fmt.Errorf("fault: event cycle %d outside [0, %d)", e.Cycle, horizon)
		}
		if e.Router < 0 || e.Router >= routers {
			return fmt.Errorf("fault: router %d out of range [0, %d)", e.Router, routers)
		}
		if e.Kind.IsLink() {
			if e.Port < 0 || e.Port > 3 {
				return fmt.Errorf("fault: link port %d outside direction ports 0..3", e.Port)
			}
			if !wired(t, e.Router, e.Port) {
				return fmt.Errorf("fault: router %d port %d is off the grid edge", e.Router, e.Port)
			}
		} else if e.Port != 0 {
			return fmt.Errorf("fault: router event carries nonzero port %d", e.Port)
		}
	}
	// Per-target alternation at strictly increasing cycles, closed by an up.
	type phase struct {
		down  bool
		cycle int64
	}
	open := make(map[target]phase)
	for _, e := range s.Events {
		tg := e.target()
		p, seen := open[tg]
		if seen && e.Cycle <= p.cycle {
			return fmt.Errorf("fault: events for router %d port %d at non-increasing cycles (%d then %d)",
				tg.router, tg.port, p.cycle, e.Cycle)
		}
		if e.Kind.IsDown() {
			if seen && p.down {
				return fmt.Errorf("fault: router %d port %d taken down twice without an up", tg.router, tg.port)
			}
			open[tg] = phase{down: true, cycle: e.Cycle}
		} else {
			if !seen || !p.down {
				return fmt.Errorf("fault: up event for router %d port %d without a preceding down", tg.router, tg.port)
			}
			open[tg] = phase{down: false, cycle: e.Cycle}
		}
	}
	if !s.AllowOpen {
		for tg, p := range open {
			if p.down {
				return fmt.Errorf("fault: router %d port %d is taken down at cycle %d and never restored", tg.router, tg.port, p.cycle)
			}
		}
	}
	return nil
}

// State replays a validated schedule at runtime. All methods are called from
// the kernel's main goroutine only; the dead-state queries (LinkDead,
// RouterDead) are read concurrently by shard workers, which is safe because
// the main phase mutates state strictly before shard phases run (channel
// sync provides the happens-before edge).
type State struct {
	policy     Policy
	events     []Event
	next       int
	linkDown   []bool // indexed router*4 + port
	routerDown []bool
	// nbr[router*4+port] is the router at the far end of direction port
	// out, or -1 when the port is unwired. A link is dead when either its
	// own down flag is set or either endpoint router is down.
	nbr []int
	// remLink/remRouter count the schedule events not yet applied for each
	// target. A down whose target has no remaining events is permanent (an
	// AllowOpen schedule left it open); every other down is transient. The
	// split keeps the kernel's termination machinery honest: watchdogs pause
	// only while a transient fault is pending recovery, and permanently dead
	// routers can be drained instead of waited on.
	remLink        []int
	remRouter      []int
	transientDowns int
	permDowns      int
}

// NewState builds runtime state for a validated schedule over a mesh-like
// topology. nbr maps (router*4 + port) to the far-end router or -1.
func NewState(s Schedule, routers int, nbr []int) *State {
	if len(nbr) != routers*4 {
		panic(fmt.Sprintf("fault: neighbor table length %d != %d routers * 4", len(nbr), routers))
	}
	st := &State{
		policy:     s.Policy,
		events:     s.Events,
		linkDown:   make([]bool, routers*4),
		routerDown: make([]bool, routers),
		nbr:        nbr,
		remLink:    make([]int, routers*4),
		remRouter:  make([]int, routers),
	}
	for _, e := range s.Events {
		if e.Kind.IsLink() {
			st.remLink[e.Router*4+e.Port]++
		} else {
			st.remRouter[e.Router]++
		}
	}
	return st
}

// Policy returns the schedule's drop policy.
func (st *State) Policy() Policy { return st.policy }

// Take returns the events due at exactly cycle now and advances the cursor.
// The fast path (no event due) is a single comparison and allocates nothing;
// the returned slice aliases the schedule.
func (st *State) Take(now int64) []Event {
	if st.next >= len(st.events) || st.events[st.next].Cycle != now {
		return nil
	}
	lo := st.next
	for st.next < len(st.events) && st.events[st.next].Cycle == now {
		st.next++
	}
	return st.events[lo:st.next]
}

// Pending reports whether any events remain unapplied.
func (st *State) Pending() bool { return st.next < len(st.events) }

// AnyDown reports whether any link or router is currently down.
func (st *State) AnyDown() bool { return st.transientDowns+st.permDowns > 0 }

// AnyTransientDown reports whether any link or router is down with a
// restoring up event still pending. Permanent downs (open AllowOpen
// schedules) are excluded: nothing is coming back, so termination machinery
// — the standstill watchdog and stale sweep — must keep running rather than
// wait out a recovery that never happens. On closed schedules this is
// identical to AnyDown.
func (st *State) AnyTransientDown() bool { return st.transientDowns > 0 }

// Apply folds one event into the state. Events must be applied in schedule
// order (the Take cursor guarantees this); permanence bookkeeping counts the
// events remaining per target, so a down with none remaining is permanent.
func (st *State) Apply(e Event) {
	switch e.Kind {
	case LinkDown:
		i := e.Router*4 + e.Port
		st.linkDown[i] = true
		st.remLink[i]--
		if st.remLink[i] == 0 {
			st.permDowns++
		} else {
			st.transientDowns++
		}
	case LinkUp:
		i := e.Router*4 + e.Port
		st.linkDown[i] = false
		st.remLink[i]--
		st.transientDowns--
	case RouterDown:
		st.routerDown[e.Router] = true
		st.remRouter[e.Router]--
		if st.remRouter[e.Router] == 0 {
			st.permDowns++
		} else {
			st.transientDowns++
		}
	case RouterUp:
		st.routerDown[e.Router] = false
		st.remRouter[e.Router]--
		st.transientDowns--
	}
}

// LinkDead reports whether output port out of router r is currently unusable:
// the link itself is down, the sending router is down, or the receiving
// router is down. Ejection ports (out >= 4) are dead only with their router.
func (st *State) LinkDead(r, out int) bool {
	if st.routerDown[r] {
		return true
	}
	if out >= 4 {
		return false
	}
	i := r*4 + out
	if st.linkDown[i] {
		return true
	}
	if n := st.nbr[i]; n >= 0 && st.routerDown[n] {
		return true
	}
	return false
}

// RouterDead reports whether router r is currently down.
func (st *State) RouterDead(r int) bool { return st.routerDown[r] }

// RouterPermanentlyDown reports whether router r is down with no restoring
// event left in the schedule: it will never come back. Packets sourced at a
// permanently dead router can be dropped instead of held, which is what lets
// open-schedule runs drain.
func (st *State) RouterPermanentlyDown(r int) bool {
	return st.routerDown[r] && st.remRouter[r] == 0
}
