package fault

import (
	"math"
	"reflect"
	"testing"

	"pseudocircuit/internal/topology"
)

// TestChurnExpandDeterministic pins the expansion contract everything else
// (cache keys, the determinism triangle) relies on: equal parameters expand
// to deeply equal schedules, run after run.
func TestChurnExpandDeterministic(t *testing.T) {
	m := topology.NewMesh(4, 4)
	c := Churn{Seed: 7, LinkFail: 1e-3, LinkRepair: 0.02, RouterFail: 1e-4, RouterRepair: 0.01, Policy: Reroute}
	a, err := c.Expand(m, 20000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Expand(m, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Fatal("expansion produced no events; the test exercises nothing")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two expansions of identical parameters differ")
	}
	if a.Policy != Reroute {
		t.Errorf("expanded policy = %v, want Reroute", a.Policy)
	}
	if !a.AllowOpen {
		t.Error("churn expansion must be open: chains may still be down at the horizon")
	}
}

// TestChurnExpandSeedAndParamsMatter is the inverse: changing the seed or any
// probability must change the trace (otherwise sweeping churn levels would
// re-measure one schedule).
func TestChurnExpandSeedAndParamsMatter(t *testing.T) {
	m := topology.NewMesh(4, 4)
	base := Churn{Seed: 7, LinkFail: 1e-3, LinkRepair: 0.02}
	ref, err := base.Expand(m, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]Churn{
		"seed":       {Seed: 8, LinkFail: 1e-3, LinkRepair: 0.02},
		"linkFail":   {Seed: 7, LinkFail: 2e-3, LinkRepair: 0.02},
		"linkRepair": {Seed: 7, LinkFail: 1e-3, LinkRepair: 0.04},
	} {
		got, err := c.Expand(m, 20000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reflect.DeepEqual(ref.Events, got.Events) {
			t.Errorf("changing %s did not change the expanded trace", name)
		}
	}
}

// TestChurnExpandWellFormed checks the structural shape of an expansion: the
// schedule passes its own validation (cycle order, alternation, bounds), and
// per target the events strictly alternate down/up starting with a down.
func TestChurnExpandWellFormed(t *testing.T) {
	m := topology.NewMesh(4, 4)
	c := Churn{Seed: 3, LinkFail: 2e-3, LinkRepair: 0.05, RouterFail: 5e-4, RouterRepair: 0.03}
	s, err := c.Expand(m, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m, 5000); err != nil {
		t.Fatalf("expansion does not validate: %v", err)
	}
	type target struct {
		link         bool
		router, port int
	}
	down := map[target]bool{}
	for _, e := range s.Events {
		var tg target
		var isDown bool
		switch e.Kind {
		case LinkDown:
			tg, isDown = target{true, e.Router, e.Port}, true
		case LinkUp:
			tg = target{true, e.Router, e.Port}
		case RouterDown:
			tg, isDown = target{false, e.Router, 0}, true
		case RouterUp:
			tg = target{false, e.Router, 0}
		default:
			t.Fatalf("unexpected event kind %v", e.Kind)
		}
		if down[tg] == isDown {
			t.Fatalf("target %+v: consecutive %v events", tg, e.Kind)
		}
		down[tg] = isDown
	}
}

// TestChurnValidateRejectsHostileParams covers the probability domain checks,
// including the NaN trap a plain range comparison would miss.
func TestChurnValidateRejectsHostileParams(t *testing.T) {
	for name, c := range map[string]Churn{
		"negative":  {LinkFail: -0.1},
		"above one": {LinkRepair: 1.5},
		"NaN":       {RouterFail: math.NaN()},
		"inf":       {RouterRepair: math.Inf(1)},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, c)
		}
		if _, err := c.Expand(topology.NewMesh(2, 2), 100); err == nil {
			t.Errorf("%s: Expand accepted %+v", name, c)
		}
	}
	if _, err := (Churn{LinkFail: 0.1}).Expand(topology.NewMesh(2, 2), -1); err == nil {
		t.Error("Expand accepted a negative horizon")
	}
}

// TestChurnExpandZeroIsEmpty: disabled churn (all-zero fail probabilities) and
// a zero horizon both expand to an empty schedule, not an error — the spec
// layer treats "churn absent" and "churn zero" as the same run.
func TestChurnExpandZeroIsEmpty(t *testing.T) {
	m := topology.NewMesh(4, 4)
	for name, expand := range map[string]func() (*Schedule, error){
		"zero probabilities": func() (*Schedule, error) { return Churn{Seed: 5, LinkRepair: 0.5}.Expand(m, 10000) },
		"zero horizon":       func() (*Schedule, error) { return Churn{Seed: 5, LinkFail: 0.5}.Expand(m, 0) },
	} {
		s, err := expand()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s.Events) != 0 {
			t.Errorf("%s: expanded to %d events, want none", name, len(s.Events))
		}
	}
}

// TestChurnExpandEventBound: degenerate probabilities over a long horizon must
// surface as an explicit MaxEvents error, never a silent truncation.
func TestChurnExpandEventBound(t *testing.T) {
	m := topology.NewMesh(4, 4)
	c := Churn{Seed: 1, LinkFail: 0.9, LinkRepair: 0.9}
	if _, err := c.Expand(m, 100000); err == nil {
		t.Fatal("near-certain churn over a long horizon expanded without error")
	}
}

// TestChurnPermanentFaults: a zero repair probability yields one terminal down
// per failing target and an open schedule the replay state reports as
// permanent (so drain watchdogs do not wait for a repair that never comes).
func TestChurnPermanentFaults(t *testing.T) {
	m := topology.NewMesh(4, 4)
	c := Churn{Seed: 2, RouterFail: 5e-4}
	s, err := c.Expand(m, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) == 0 {
		t.Fatal("no router ever failed; the test exercises nothing")
	}
	seen := map[int]bool{}
	for _, e := range s.Events {
		if e.Kind != RouterDown {
			t.Fatalf("unexpected %v event with zero repair probability", e.Kind)
		}
		if seen[e.Router] {
			t.Fatalf("router %d failed twice without repairing", e.Router)
		}
		seen[e.Router] = true
	}
	st := NewState(*s, m.Routers(), NeighborTable(m))
	last := s.Events[len(s.Events)-1]
	for cyc := int64(0); cyc <= last.Cycle; cyc++ {
		for _, e := range st.Take(cyc) {
			st.Apply(e)
		}
	}
	if !st.RouterPermanentlyDown(last.Router) {
		t.Errorf("router %d not reported permanently down after its terminal failure", last.Router)
	}
	if st.AnyTransientDown() {
		t.Error("open-schedule downs reported as transient; drains would stall their stale sweeps")
	}
}
