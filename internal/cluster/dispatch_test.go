package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pseudocircuit/internal/service"
	"pseudocircuit/internal/sweepapi"
	"pseudocircuit/internal/telemetry"
	"pseudocircuit/noc"
	"pseudocircuit/nocdclient"
)

// peerServer is a minimal nocd-compatible daemon: POST /jobs?wait=1 backed
// by a real service.Manager, enough surface for the dispatcher's client.
func peerServer(t *testing.T) (*httptest.Server, *service.Manager) {
	t.Helper()
	m := service.New(service.Config{Workers: 2, Chunk: 100})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		req, err := service.DecodeRequest(body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		j, err := m.Submit(req)
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		if r.URL.Query().Get("wait") != "" && !j.State.Terminal() {
			if j, err = m.Wait(r.Context(), j.ID); err != nil {
				w.WriteHeader(http.StatusInternalServerError)
				json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
				return
			}
		}
		json.NewEncoder(w).Encode(j)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, m
}

func dispatchReq(seed uint64) (service.Request, string) {
	req := service.Request{
		Spec: noc.Spec{
			Topology: "mesh4x4", Scheme: "pseudo", VA: "static",
			Warmup: 50, Measure: 200, Seed: seed,
		},
		Workload: noc.WorkloadSpec{Pattern: "uniform", Rate: 0.10},
	}
	canon, key, _, err := service.Canonicalize(req)
	if err != nil {
		panic(err)
	}
	return canon, key
}

// keyOwnedBy scans seeds for a spec whose primary owner is the wanted
// member — deterministic, so tests can steer keys at specific nodes.
func keyOwnedBy(t *testing.T, r *Ring, want string) (service.Request, string) {
	t.Helper()
	for seed := uint64(1); seed < 4096; seed++ {
		req, key := dispatchReq(seed)
		if r.Owners(key, 1)[0] == want {
			return req, key
		}
	}
	t.Fatalf("no seed under 4096 hashes to %s", want)
	panic("unreachable")
}

func fastRetry() nocdclient.RetryPolicy {
	return nocdclient.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestDispatchSelfOwned: a key this node owns routes local without touching
// the network.
func TestDispatchSelfOwned(t *testing.T) {
	reg := telemetry.NewRegistry()
	d, err := New(Config{Self: "http://self", Peers: []string{"http://unreachable.invalid"},
		Retry: fastRetry(), Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	req, key := keyOwnedBy(t, d.Ring(), "http://self")
	_, route, err := d.Dispatch(context.Background(), key, req)
	if err != nil || route != sweepapi.RouteLocal {
		t.Fatalf("route %q err %v, want local", route, err)
	}
}

// TestDispatchRemote: a peer-owned key is simulated on the peer and the
// returned result is bit-identical to a direct local run of the same spec.
func TestDispatchRemote(t *testing.T) {
	srv, peerSvc := peerServer(t)
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog(16)
	d, err := New(Config{Self: "http://self", Peers: []string{srv.URL},
		Retry: fastRetry(), Telemetry: reg, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	req, key := keyOwnedBy(t, d.Ring(), srv.URL)
	res, route, err := d.Dispatch(context.Background(), key, req)
	if err != nil || route != sweepapi.RouteRemote {
		t.Fatalf("route %q err %v, want remote", route, err)
	}

	exp, err := req.Spec.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	want := exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: req.Workload.Rate})
	got, _ := json.Marshal(res)
	wantB, _ := json.Marshal(want)
	if string(got) != string(wantB) {
		t.Fatalf("remote result diverged from direct run:\nremote: %s\ndirect: %s", got, wantB)
	}
	if peerSvc.Stats()["completed"] != 1 {
		t.Fatalf("peer completed %d jobs, want 1", peerSvc.Stats()["completed"])
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `nocd_dispatch_total{route="remote"} 1`) {
		t.Fatalf("dispatch counter missing:\n%s", b.String())
	}
}

// TestDispatchFallback: with every responsible peer unreachable, the point
// falls back to local execution instead of failing the sweep.
func TestDispatchFallback(t *testing.T) {
	srv, _ := peerServer(t)
	url := srv.URL
	srv.Close() // peer is in the ring but down
	reg := telemetry.NewRegistry()
	d, err := New(Config{Self: "http://self", Peers: []string{url},
		Replicas: 1, Retry: fastRetry(), Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	req, key := keyOwnedBy(t, d.Ring(), url)
	_, route, err := d.Dispatch(context.Background(), key, req)
	if err != nil || route != sweepapi.RouteFallback {
		t.Fatalf("route %q err %v, want fallback", route, err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `nocd_dispatch_total{route="fallback"} 1`) ||
		!strings.Contains(out, "nocd_dispatch_peer_errors_total 1") {
		t.Fatalf("fallback counters missing:\n%s", out)
	}
}

// TestDispatchReplicaFailover: with the primary down and a healthy second
// replica, the point lands on the replica, not on local fallback.
func TestDispatchReplicaFailover(t *testing.T) {
	srv, peerSvc := peerServer(t)
	dead, _ := peerServer(t)
	deadURL := dead.URL
	dead.Close()
	d, err := New(Config{Self: "http://self", Peers: []string{srv.URL, deadURL},
		Replicas: 3, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	// A key whose primary is the dead peer; with three replicas over three
	// members, the live peer and self are both consulted after it.
	req, key := keyOwnedBy(t, d.Ring(), deadURL)
	owners := d.Ring().Owners(key, 3)
	_, route, err := d.Dispatch(context.Background(), key, req)
	if err != nil {
		t.Fatal(err)
	}
	// The live peer precedes self in ring order for some keys and follows it
	// for others; both outcomes are correct — what may not happen is a
	// failure or a fallback that skipped a live replica before self.
	switch route {
	case sweepapi.RouteRemote:
		if peerSvc.Stats()["completed"] != 1 {
			t.Fatalf("remote route but peer completed %d", peerSvc.Stats()["completed"])
		}
	case sweepapi.RouteLocal:
		if owners[1] != "http://self" {
			t.Fatalf("local route but self is not the second replica: %v", owners)
		}
	default:
		t.Fatalf("route %q (owners %v)", route, owners)
	}
}

// TestDispatchBadRequestPropagates: a deterministic 4xx from the owner is
// returned to the caller, not retried on other replicas.
func TestDispatchBadRequestPropagates(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "bad spec"})
	}))
	defer srv.Close()
	d, err := New(Config{Self: "http://self", Peers: []string{srv.URL}, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	req, key := keyOwnedBy(t, d.Ring(), srv.URL)
	_, _, err = d.Dispatch(context.Background(), key, req)
	var apiErr *nocdclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want propagated 400", err)
	}
}

// TestDispatchExactlyOnce is the fleet-level acceptance check at the
// package level: two nodes, each dispatching the same grid with the same
// ring, simulate each point exactly once between them (node A runs a real
// service; node B is the peer HTTP daemon).
func TestDispatchExactlyOnce(t *testing.T) {
	srv, peerSvc := peerServer(t)
	localSvc := service.New(service.Config{Workers: 2, Chunk: 100})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		localSvc.Shutdown(ctx)
	}()
	d, err := New(Config{Self: "http://self", Peers: []string{srv.URL},
		Replicas: 2, Retry: fastRetry(), Telemetry: localSvc.Telemetry(), Spans: localSvc.SpanLog()})
	if err != nil {
		t.Fatal(err)
	}
	sw := sweepapi.New(localSvc, sweepapi.Config{Dispatcher: d, Inflight: 4})
	st, err := sw.Submit([]byte(`{
	  "template": {"topology":"mesh4x4","scheme":"baseline","va":"static",
	               "warmup":50,"measure":200,
	               "workload":{"pattern":"uniform","rate":0.1}},
	  "axes": {"scheme": ["baseline","pseudo"], "seed": [1,2,3,4,5,6,7,8]}}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if st, err = sw.Wait(ctx, st.ID); err != nil || st.State != "done" || st.Done != 16 {
		t.Fatalf("sweep: %+v err %v", st, err)
	}
	localDone := localSvc.Stats()["completed"]
	peerDone := peerSvc.Stats()["completed"]
	if localDone+peerDone != 16 || localDone == 0 || peerDone == 0 {
		t.Fatalf("fleet simulated %d+%d points, want each of the 16 points run exactly once",
			localDone, peerDone)
	}
	if st.Remote != int(peerDone) {
		t.Fatalf("sweep counted %d remote points, peer completed %d", st.Remote, peerDone)
	}

	// Every point's result is bit-identical to a direct experiment run.
	pts, _, _, _ := sw.PointsSince(st.ID, 0)
	for _, p := range pts {
		exp, err := p.Spec.Spec.Experiment()
		if err != nil {
			t.Fatal(err)
		}
		want := exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: p.Spec.Workload.Rate})
		got, _ := json.Marshal(*p.Result)
		wantB, _ := json.Marshal(want)
		if string(got) != string(wantB) {
			t.Fatalf("point %d (%s seed %d) diverged from direct run", p.Index, p.Spec.Scheme, p.Spec.Seed)
		}
	}
}
