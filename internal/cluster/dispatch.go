package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pseudocircuit/internal/service"
	"pseudocircuit/internal/sweepapi"
	"pseudocircuit/internal/telemetry"
	"pseudocircuit/noc"
	"pseudocircuit/nocdclient"
)

// Config parameterizes a Dispatcher.
type Config struct {
	// Self is this node's own name in the fleet — the exact string the other
	// nodes list it under in their -peers flags (its advertised base URL).
	// Required: without it the node cannot recognize the keys it owns.
	Self string
	// Peers are the other fleet members' base URLs.
	Peers []string
	// Replicas is how many distinct owners are consulted per key before
	// falling back to local execution (default 2, clamped to fleet size).
	Replicas int
	// Retry tunes the per-peer client; zero selects nocdclient defaults.
	Retry nocdclient.RetryPolicy
	// HTTP overrides the transport (tests); nil uses a client with a sane
	// per-attempt timeout.
	HTTP *http.Client
	// Telemetry, when non-nil, receives the dispatch counters.
	Telemetry *telemetry.Registry
	// Spans, when non-nil, receives a span per remote dispatch.
	Spans *telemetry.SpanLog
}

// Dispatcher routes grid points to their consistent-hash owners, meeting
// sweepapi.Dispatcher. It is stateless per-call and safe for concurrent use.
type Dispatcher struct {
	self     string
	ring     *Ring
	clients  map[string]*nocdclient.Client
	replicas int
	spans    *telemetry.SpanLog
	routes   telemetry.CounterVec // label route: local|remote|fallback
	peerErrs *telemetry.Counter
}

// New builds a dispatcher over the fleet {Self} ∪ Peers.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self is required")
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	ring := NewRing(members)
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	hc := cfg.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	d := &Dispatcher{
		self:     cfg.Self,
		ring:     ring,
		clients:  map[string]*nocdclient.Client{},
		replicas: cfg.Replicas,
		spans:    cfg.Spans,
	}
	for _, m := range ring.Members() {
		if m != cfg.Self {
			d.clients[m] = nocdclient.New(m).WithHTTP(hc).WithRetry(cfg.Retry)
		}
	}
	if reg := cfg.Telemetry; reg != nil {
		d.routes = reg.CounterVec("nocd_dispatch_total",
			"sweep grid points routed, by route", "route")
		d.peerErrs = reg.Counter("nocd_dispatch_peer_errors_total",
			"peer dispatch attempts that failed and moved to the next replica")
	}
	return d, nil
}

// Ring exposes the dispatcher's ring (status endpoints, tests).
func (d *Dispatcher) Ring() *Ring { return d.ring }

// Dispatch routes one grid point. The key's first Replicas distinct owners
// are tried in ring order: this node itself short-circuits to local
// execution (route "local"); a peer that answers serves the result (route
// "remote"); a peer that rejects the spec outright (4xx) propagates the
// error rather than retrying elsewhere — the rejection is deterministic. If
// every consulted owner is unreachable, the point falls back to local
// execution (route "fallback") so a degraded fleet still completes sweeps.
func (d *Dispatcher) Dispatch(ctx context.Context, key string, req service.Request) (noc.Result, string, error) {
	owners := d.ring.Owners(key, d.replicas)
	for _, owner := range owners {
		if owner == d.self {
			d.count(sweepapi.RouteLocal)
			return noc.Result{}, sweepapi.RouteLocal, nil
		}
		res, err := d.remote(ctx, owner, key, req)
		if err == nil {
			d.count(sweepapi.RouteRemote)
			return res, sweepapi.RouteRemote, nil
		}
		if ctx.Err() != nil {
			return noc.Result{}, sweepapi.RouteRemote, ctx.Err()
		}
		var apiErr *nocdclient.APIError
		if errors.As(err, &apiErr) && apiErr.Status >= 400 && apiErr.Status < 500 &&
			apiErr.Status != http.StatusTooManyRequests {
			// Deterministic rejection: every peer (and the local service)
			// would refuse the same way. Propagate instead of spreading it.
			return noc.Result{}, sweepapi.RouteRemote, err
		}
		if d.peerErrs != nil {
			d.peerErrs.Inc()
		}
	}
	// Every responsible peer is down (or this node owns no replica of the
	// key and none answered): run it here rather than failing the sweep.
	d.count(sweepapi.RouteFallback)
	return noc.Result{}, sweepapi.RouteFallback, nil
}

// remote runs one grid point on one peer and returns its result.
func (d *Dispatcher) remote(ctx context.Context, owner, key string, req service.Request) (noc.Result, error) {
	start := time.Now()
	j, err := d.clients[owner].SubmitWait(ctx, nocdclient.Request{Spec: req.Spec, Workload: req.Workload})
	if err == nil && !j.Terminal() {
		j, err = d.clients[owner].Wait(ctx, j.ID)
	}
	outcome := "ok"
	switch {
	case err != nil:
		outcome = "error"
	case j.State != "done":
		outcome = j.State
		err = fmt.Errorf("cluster: peer job %s %s: %s", j.ID, j.State, j.Error)
	case j.Result == nil:
		outcome = "error"
		err = errors.New("cluster: peer returned a done job with no result")
	}
	if d.spans != nil {
		d.spans.Record(telemetry.Span{
			Name: "dispatch", Job: owner, Key: key, Outcome: outcome,
			Start: start, End: time.Now(),
		})
	}
	if err != nil {
		return noc.Result{}, err
	}
	return *j.Result, nil
}

func (d *Dispatcher) count(route string) {
	if d.routes != (telemetry.CounterVec{}) {
		d.routes.With(route).Inc()
	}
}
