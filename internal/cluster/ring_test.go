package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func keyOf(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestRingDeterministic: member order in the config must not matter — every
// node builds the identical ring, or the fleet disagrees on ownership.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"http://n1", "http://n2", "http://n3"})
	b := NewRing([]string{"http://n3", "http://n1", "http://n2", "http://n1", ""})
	for i := 0; i < 1000; i++ {
		k := keyOf(i)
		ao, bo := a.Owners(k, 2), b.Owners(k, 2)
		if len(ao) != 2 || len(bo) != 2 || ao[0] != bo[0] || ao[1] != bo[1] {
			t.Fatalf("key %d: owners diverge across member orders: %v vs %v", i, ao, bo)
		}
	}
}

// TestRingOwnersDistinct: replicas are distinct members, clamped to fleet
// size, and always include the primary first.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing([]string{"http://n1", "http://n2", "http://n3"})
	for i := 0; i < 200; i++ {
		owners := r.Owners(keyOf(i), 5)
		if len(owners) != 3 {
			t.Fatalf("key %d: %d owners, want all 3", i, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %d: duplicate owner %s", i, o)
			}
			seen[o] = true
		}
		if one := r.Owners(keyOf(i), 1); one[0] != owners[0] {
			t.Fatalf("key %d: primary changes with replica count", i)
		}
	}
	if got := NewRing(nil).Owners(keyOf(0), 2); got != nil {
		t.Fatalf("empty ring returned owners %v", got)
	}
}

// TestRingBalance: 64 vnodes per member keep a 4-node fleet's shares within
// a loose but meaningful band of fair (25% ± 15pt over 20k keys).
func TestRingBalance(t *testing.T) {
	members := []string{"http://n1", "http://n2", "http://n3", "http://n4"}
	r := NewRing(members)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.Owners(keyOf(i), 1)[0]]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.10 || share > 0.40 {
			t.Fatalf("member %s owns %.1f%% of keys: %v", m, share*100, counts)
		}
	}
}

// TestRingMinimalRemap: removing one member only remaps the keys it owned;
// every other key keeps its primary. This is the property that lets a fleet
// lose a node without invalidating the surviving disk stores.
func TestRingMinimalRemap(t *testing.T) {
	before := NewRing([]string{"http://n1", "http://n2", "http://n3", "http://n4"})
	after := NewRing([]string{"http://n1", "http://n2", "http://n3"})
	moved := 0
	const n = 5000
	for i := 0; i < n; i++ {
		k := keyOf(i)
		was, is := before.Owners(k, 1)[0], after.Owners(k, 1)[0]
		if was == "http://n4" {
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %d moved from %s to %s though its owner survived", i, was, is)
		}
	}
	if moved == 0 || moved > n/2 {
		t.Fatalf("removed member owned %d/%d keys", moved, n)
	}
}

// TestRingFleetAgreement: every node, building the ring from its own
// perspective (self + peers), assigns each key the same primary — so with
// replicas covering the fleet, exactly one node claims any key as local.
func TestRingFleetAgreement(t *testing.T) {
	urls := []string{"http://n1", "http://n2", "http://n3"}
	for i := 0; i < 1000; i++ {
		k := keyOf(i)
		locals := 0
		var primary string
		for _, self := range urls {
			peers := make([]string, 0, 2)
			for _, u := range urls {
				if u != self {
					peers = append(peers, u)
				}
			}
			r := NewRing(append([]string{self}, peers...))
			p := r.Owners(k, 1)[0]
			if primary == "" {
				primary = p
			} else if p != primary {
				t.Fatalf("key %d: node %s thinks primary is %s, fleet says %s", i, self, p, primary)
			}
			if p == self {
				locals++
			}
		}
		if locals != 1 {
			t.Fatalf("key %d: %d nodes claim it as local", i, locals)
		}
	}
}
