// Package cluster fans sweep grid points out across a fleet of nocd
// daemons. Ownership is decided by consistent hashing of the canonical spec
// key, so every node in the fleet — given the same member list — routes the
// same spec to the same owners without any coordination, and the fleet's
// disk stores each accumulate a disjoint shard of the result space. When an
// owner is unreachable the dispatcher tries the next replica and finally
// falls back to local execution: dispatch changes only where a simulation
// runs, never its result.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// vnodesPerMember is the number of ring points each member projects. 64
// keeps the largest/smallest ownership arc within a few percent of fair for
// fleet sizes in the tens while the ring stays small enough to rebuild on
// every membership change.
const vnodesPerMember = 64

type ringPoint struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a set of member names.
// Member names must be spelled identically across the fleet (every node
// lists every other node the same way) for ownership to agree.
type Ring struct {
	points  []ringPoint
	members []string
}

// NewRing builds a ring over the distinct non-empty members.
func NewRing(members []string) *Ring {
	seen := map[string]bool{}
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for i := 0; i < vnodesPerMember; i++ {
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(i))
			h := sha256.New()
			h.Write([]byte(m))
			h.Write([]byte{'#'})
			h.Write(buf[:])
			r.points = append(r.points, ringPoint{hash: sum64(h.Sum(nil)), member: m})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on the member name so every
		// node sorts the ring identically.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's distinct members, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owners returns the first n distinct members clockwise from the key's ring
// position — the key's owner and its replicas, in preference order. Fewer
// than n members yields all of them.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := sha256.Sum256([]byte(key))
	target := sum64(h[:])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= target })
	owners := make([]string, 0, n)
	seen := map[string]bool{}
	for j := 0; j < len(r.points) && len(owners) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		owners = append(owners, p.member)
	}
	return owners
}

// sum64 folds the leading 8 bytes of a digest into the ring coordinate.
func sum64(digest []byte) uint64 { return binary.BigEndian.Uint64(digest[:8]) }
