package network_test

import (
	"bytes"
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/fault"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/obs"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// TestObservedSteadyStateZeroAlloc is TestSteadyStateZeroAlloc with every
// observability probe enabled: registry counters, a windowed series, and the
// lifecycle tracer (small enough to wrap). Probes write into preallocated
// storage, so the Step path must stay allocation-free even while observing.
func TestObservedSteadyStateZeroAlloc(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(core.PseudoSB)
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	cfg.Registry = stats.NewRegistry()
	cfg.Series = stats.NewSeries(100, 8) // ring wraps during the run
	cfg.Tracer = obs.NewTracer(1 << 10)  // ring wraps during the run
	n := network.New(cfg)
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.10,
	}, sim.NewRNG(7))

	n.Run(w, 2000)
	n.ResetStats()
	n.Run(w, 2000)
	if n.Tracer().Dropped() == 0 {
		t.Fatal("tracer ring never wrapped; shrink the capacity so the test covers eviction")
	}

	const stepsPerRun = 100
	var avg float64
	for trial := 0; trial < 8; trial++ {
		avg = testing.AllocsPerRun(20, func() {
			for i := 0; i < stepsPerRun; i++ {
				n.Step(w)
			}
		})
		if avg == 0 {
			return
		}
	}
	t.Errorf("observed Step still allocates after warmup: %.2f allocs per %d steps (want 0)", avg, stepsPerRun)
}

// TestFaultedSteadyStateZeroAlloc adds a fault schedule to the observed
// zero-alloc test: the storm lands (and may allocate — storms are rare by
// construction) during warmup, and the measured steady-state loop must then
// stay allocation-free — the per-cycle fault cost is one event-cycle
// comparison plus the watchdog's counter check and the stale sweep's guard,
// none of which may touch the heap.
func TestFaultedSteadyStateZeroAlloc(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(core.PseudoSB)
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	cfg.Registry = stats.NewRegistry()
	cfg.Series = stats.NewSeries(100, 8)
	cfg.Tracer = obs.NewTracer(1 << 10)
	cfg.Faults = &fault.Schedule{
		Policy: fault.Reroute,
		Events: []fault.Event{
			{Cycle: 500, Kind: fault.LinkDown, Router: 27, Port: 0},
			{Cycle: 900, Kind: fault.LinkUp, Router: 27, Port: 0},
		},
	}
	n := network.New(cfg)
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.10,
	}, sim.NewRNG(7))

	n.Run(w, 2000)
	n.ResetStats()
	n.Run(w, 2000)

	const stepsPerRun = 100
	var avg float64
	for trial := 0; trial < 8; trial++ {
		avg = testing.AllocsPerRun(20, func() {
			for i := 0; i < stepsPerRun; i++ {
				n.Step(w)
			}
		})
		if avg == 0 {
			return
		}
	}
	t.Errorf("faulted Step still allocates after warmup: %.2f allocs per %d steps (want 0)", avg, stepsPerRun)
}

// TestFaultedExportsValidate runs a faulted, traced run and holds both
// export formats to their strict validators: the streams must decode
// cleanly with the fault transitions present among the events.
func TestFaultedExportsValidate(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(core.PseudoSB)
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	cfg.Tracer = obs.NewTracer(1 << 16) // large enough to retain the storm
	cfg.Faults = &fault.Schedule{
		Policy: fault.Reroute,
		Events: []fault.Event{
			{Cycle: 600, Kind: fault.RouterDown, Router: 5},
			{Cycle: 900, Kind: fault.RouterUp, Router: 5},
		},
	}
	n := network.New(cfg)
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.10,
	}, sim.NewRNG(7))
	n.Run(w, 1200)

	var jsonl bytes.Buffer
	if err := n.Tracer().WriteJSONL(&jsonl); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	for _, kind := range []string{`"ev":"router-down"`, `"ev":"router-up"`, `"ev":"drop"`} {
		if !bytes.Contains(jsonl.Bytes(), []byte(kind)) {
			t.Errorf("JSONL export missing %s event", kind)
		}
	}
	if _, err := obs.ValidateEventsJSONL(bytes.NewReader(jsonl.Bytes())); err != nil {
		t.Errorf("faulted JSONL export fails validation: %v", err)
	}

	var chrome bytes.Buffer
	if err := n.Tracer().WriteChromeTrace(&chrome); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !bytes.Contains(chrome.Bytes(), []byte("router-down")) {
		t.Error("Chrome trace missing router-down event")
	}
	if _, err := obs.ValidateChromeTrace(bytes.NewReader(chrome.Bytes())); err != nil {
		t.Errorf("faulted Chrome trace fails validation: %v", err)
	}
}
