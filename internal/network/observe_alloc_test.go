package network_test

import (
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/obs"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// TestObservedSteadyStateZeroAlloc is TestSteadyStateZeroAlloc with every
// observability probe enabled: registry counters, a windowed series, and the
// lifecycle tracer (small enough to wrap). Probes write into preallocated
// storage, so the Step path must stay allocation-free even while observing.
func TestObservedSteadyStateZeroAlloc(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(core.PseudoSB)
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	cfg.Registry = stats.NewRegistry()
	cfg.Series = stats.NewSeries(100, 8) // ring wraps during the run
	cfg.Tracer = obs.NewTracer(1 << 10)  // ring wraps during the run
	n := network.New(cfg)
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.10,
	}, sim.NewRNG(7))

	n.Run(w, 2000)
	n.ResetStats()
	n.Run(w, 2000)
	if n.Tracer().Dropped() == 0 {
		t.Fatal("tracer ring never wrapped; shrink the capacity so the test covers eviction")
	}

	const stepsPerRun = 100
	var avg float64
	for trial := 0; trial < 8; trial++ {
		avg = testing.AllocsPerRun(20, func() {
			for i := 0; i < stepsPerRun; i++ {
				n.Step(w)
			}
		})
		if avg == 0 {
			return
		}
	}
	t.Errorf("observed Step still allocates after warmup: %.2f allocs per %d steps (want 0)", avg, stepsPerRun)
}
