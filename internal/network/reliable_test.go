package network_test

import (
	"fmt"
	"reflect"
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/evc"
	"pseudocircuit/internal/fault"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/router"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// buildReliable builds a 4×4 mesh with the reliability layer on, the given
// kernel and an expanded fault schedule, invariant checking enabled. The
// short timeout forces retransmissions inside the measured window instead of
// waiting out the default round-trip margin.
func buildReliable(scheme core.Scheme, k kernel, sched *fault.Schedule, useEVC bool) *network.Network {
	m := topology.NewMesh(4, 4)
	cfg := network.DefaultConfig(m)
	cfg.Opts = core.DefaultOptions(scheme)
	cfg.Opts.Workers = k.workers
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	cfg.Naive = k.naive
	cfg.Faults = sched
	cfg.Reliable = &network.Reliability{Timeout: 64, MaxTimeout: 256, Budget: 8}
	if useEVC {
		nEVC := cfg.NumVCs / 2
		cfg.NIVCLimit = cfg.NumVCs - nEVC
		cfg.Factory = func(id, in, out int, rcfg *router.Config) network.Node {
			return evc.New(id, in, out, rcfg, m, nEVC)
		}
	}
	n := network.New(cfg)
	n.CheckInvariants = true
	return n
}

// relGrid is one churn-and-reliability determinism grid point: a scheme (or
// the EVC comparison router) under a seeded churn process. The schedule is
// expanded once per grid point so every kernel replays the identical fault
// trace.
type relGrid struct {
	name   string
	scheme core.Scheme
	evc    bool
	churn  fault.Churn
}

var relGrids = []relGrid{
	{
		name:   "psb/seed1-drop",
		scheme: core.PseudoSB,
		churn: fault.Churn{
			Seed: 1, LinkFail: 3e-4, LinkRepair: 0.01,
			RouterFail: 2e-5, RouterRepair: 0.01, Policy: fault.Drop,
		},
	},
	{
		name:   "psb/seed2-reroute",
		scheme: core.PseudoSB,
		churn: fault.Churn{
			Seed: 2, LinkFail: 3e-4, LinkRepair: 0.01,
			RouterFail: 2e-5, RouterRepair: 0.01, Policy: fault.Reroute,
		},
	},
	{
		name:   "pseudo/seed3-drop",
		scheme: core.Pseudo,
		churn: fault.Churn{
			Seed: 3, LinkFail: 3e-4, LinkRepair: 0.01, Policy: fault.Drop,
		},
	},
	{
		name:   "evc/seed1-drop",
		scheme: core.Baseline,
		evc:    true,
		churn: fault.Churn{
			Seed: 1, LinkFail: 3e-4, LinkRepair: 0.01, Policy: fault.Drop,
		},
	},
}

// runReliable executes the determinism harness protocol (warmup, stats reset,
// measured window) on a churned reliable grid point under kernel k.
func runReliable(g relGrid, sched *fault.Schedule, k kernel) *network.Network {
	n := buildReliable(g.scheme, k, sched, g.evc)
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: 16, Rate: 0.10,
	}, sim.NewRNG(42))
	n.Run(w, 500)
	n.ResetStats()
	n.Run(w, 2500)
	return n
}

// TestReliableChurnDeterminismTriangle closes the acceptance loop for the
// reliability layer: with a fixed-seed churn process expanded into a fault
// schedule and end-to-end reliable delivery on, the naive reference, the
// active-set kernel and the sharded parallel kernel at workers 1/2/4/8 must
// produce bit-identical statistics — including the retransmit, ack, dedup
// and failure counters — on every scheme × churn grid point.
func TestReliableChurnDeterminismTriangle(t *testing.T) {
	m := topology.NewMesh(4, 4)
	for _, g := range relGrids {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			sched, err := g.churn.Expand(m, 3000)
			if err != nil {
				t.Fatalf("expanding churn: %v", err)
			}
			if len(sched.Events) == 0 {
				t.Fatal("churn expanded to zero events; grid point exercises nothing")
			}
			ref := runReliable(g, sched, kernels[0])
			if ref.Stats.PacketsRetransmitted == 0 {
				t.Error("churn caused no retransmissions; grid point exercises nothing")
			}
			if ref.Stats.AcksReceived == 0 {
				t.Error("no acks made it back; reliability layer inert")
			}
			for _, k := range kernels[1:] {
				got := runReliable(g, sched, k)
				if !reflect.DeepEqual(ref.Stats, got.Stats) {
					t.Errorf("stats diverge between %s and %s kernels:\n%s: %+v\n%s: %+v",
						kernels[0].name, k.name, kernels[0].name, ref.Stats, k.name, got.Stats)
				}
				if !reflect.DeepEqual(ref.Energy, got.Energy) {
					t.Errorf("energy diverges between %s and %s kernels:\n%s: %+v\n%s: %+v",
						kernels[0].name, k.name, kernels[0].name, ref.Energy, k.name, got.Energy)
				}
			}
		})
	}
}

// TestReliableChurnSeedsDiverge is the sanity inverse of the triangle: two
// different churn seeds must not replay the same fault trace (if they did,
// the multi-seed grid above would be testing one schedule twice).
func TestReliableChurnSeedsDiverge(t *testing.T) {
	m := topology.NewMesh(4, 4)
	base := fault.Churn{Seed: 1, LinkFail: 3e-4, LinkRepair: 0.01, Policy: fault.Drop}
	other := base
	other.Seed = 2
	a, err := base.Expand(m, 3000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := other.Expand(m, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, b.Events) {
		t.Error("seeds 1 and 2 expanded to identical schedules")
	}
}

// TestReliableBudgetExhaustionTerminates pins the no-livelock contract: a
// destination router that dies and never comes back (an open schedule, as
// churn produces when a chain is still down at the horizon) must not wedge
// the drain. Every packet aimed at it burns its retry budget and is abandoned
// as a counted DeliveryFailed; healthy flows deliver normally; the drain
// completes with no unresolved sender records.
func TestReliableBudgetExhaustionTerminates(t *testing.T) {
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			sched := &fault.Schedule{
				Policy:    fault.Drop,
				AllowOpen: true,
				Events: []fault.Event{
					{Cycle: 50, Kind: fault.RouterDown, Router: 15},
				},
			}
			n := buildReliable(core.PseudoSB, k, sched, false)
			// One doomed flow into the dead corner router, one healthy flow
			// that must be unaffected.
			w := traffic.NewFlows(
				traffic.Flow{Src: 0, Dst: 15, Size: 5, Period: 20, Start: 0, Count: 20},
				traffic.Flow{Src: 1, Dst: 2, Size: 5, Period: 20, Start: 3, Count: 20},
			)
			if !n.Drain(w, 30000) {
				t.Fatalf("network failed to drain within 30000 cycles (RelPending=%d)", n.RelPending())
			}
			if n.RelPending() != 0 {
				t.Errorf("drain returned with %d unresolved sender records", n.RelPending())
			}
			if n.Stats.DeliveryFailed == 0 {
				t.Error("no packet was abandoned despite a permanently dead destination")
			}
			if n.Stats.DeliveryFailed > 20 {
				t.Errorf("abandoned %d packets, only 20 were doomed", n.Stats.DeliveryFailed)
			}
			if n.Stats.PacketsDelivered < 20 {
				t.Errorf("healthy flow delivered %d packets, want at least its 20", n.Stats.PacketsDelivered)
			}
			if n.Stats.PacketsRetransmitted == 0 {
				t.Error("budget exhaustion happened without a single retransmission")
			}
		})
	}
}

// TestReliableSteadyStateZeroAlloc extends the zero-alloc bound to reliable
// runs: sequence stamping, ack injection, dedup-window updates and sender
// record bookkeeping must all reach an allocation-free steady state, on the
// sequential and the sharded kernel alike.
func TestReliableSteadyStateZeroAlloc(t *testing.T) {
	for _, workers := range []int{0, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			topo := topology.NewMesh(8, 8)
			cfg := network.DefaultConfig(topo)
			cfg.Opts = core.DefaultOptions(core.PseudoSB)
			cfg.Opts.Workers = workers
			cfg.Algorithm = routing.XY
			cfg.Policy = vcalloc.Static
			cfg.Reliable = &network.Reliability{}
			n := network.New(cfg)
			w := traffic.NewSynthetic(traffic.Config{
				Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.10,
			}, sim.NewRNG(7))

			n.Run(w, 2000)
			n.ResetStats()
			n.Run(w, 2000)
			if n.Stats.AcksReceived == 0 {
				t.Fatal("no acks flowed; reliability layer inert")
			}

			const stepsPerRun = 100
			var avg float64
			for trial := 0; trial < 8; trial++ {
				avg = testing.AllocsPerRun(20, func() {
					for i := 0; i < stepsPerRun; i++ {
						n.Step(w)
					}
				})
				if avg == 0 {
					return
				}
			}
			t.Errorf("reliable steady-state Step still allocates: %.2f allocs per %d steps (want 0)", avg, stepsPerRun)
		})
	}
}
