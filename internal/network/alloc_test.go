package network_test

import (
	"fmt"
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// TestSteadyStateZeroAlloc asserts the tick path is allocation-free once
// warm: after the pool free lists, NI queues, reassembly maps, delivery ring
// and histogram buckets have grown to their steady-state footprint, stepping
// the simulator allocates nothing — every flit and packet comes from the
// pool and returns to it.
func TestSteadyStateZeroAlloc(t *testing.T) {
	// workers=0 and workers=1 are the sequential kernel (the SoA active-set
	// walk); workers=4 exercises the sharded parallel kernel's
	// buffering/merge path over the same shared LaneStore. Step outside Run
	// serializes shard phases inline (no goroutines), so the same
	// exactly-zero bound applies: per-shard pend queues, pools and
	// accumulators must all reach a steady-state footprint.
	for _, workers := range []int{0, 1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			n, w := buildAllocNet(workers)

			// Warm up well past the stats reset so every growable structure
			// has reached its working-set size.
			n.Run(w, 2000)
			n.ResetStats()
			n.Run(w, 2000)

			// Growable structures (histogram buckets, map buckets, slice
			// capacities) approach their working set asymptotically: rare
			// latency excursions still add a bucket early on. Require the
			// alloc rate to decay to exactly zero within a few trials —
			// steady state must be allocation-free, not merely cheap.
			const stepsPerRun = 100
			var avg float64
			for trial := 0; trial < 8; trial++ {
				avg = testing.AllocsPerRun(20, func() {
					for i := 0; i < stepsPerRun; i++ {
						n.Step(w)
					}
				})
				if avg == 0 {
					return
				}
			}
			t.Errorf("steady-state Step still allocates after warmup: %.2f allocs per %d steps (want 0)", avg, stepsPerRun)
		})
	}
}

func buildAllocNet(workers int) (*network.Network, network.Workload) {
	topo := topology.NewMesh(8, 8)
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(core.PseudoSB)
	cfg.Opts.Workers = workers
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	n := network.New(cfg)
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.10,
	}, sim.NewRNG(7))
	return n, w
}

// TestParallelRunSteadyStateAlloc bounds the live-worker path: with worker
// goroutines running inside Run, the per-cycle simulation work must still be
// allocation-free. Each Run call may allocate a bounded amount for goroutine
// startup (the runtime's g structures), but that cost is per-Run, not
// per-cycle: doubling the cycles must not increase allocations.
func TestParallelRunSteadyStateAlloc(t *testing.T) {
	n, w := buildAllocNet(4)
	n.Run(w, 2000)
	n.ResetStats()
	n.Run(w, 2000)

	allocsFor := func(cycles int) float64 {
		best := -1.0
		for trial := 0; trial < 8; trial++ {
			avg := testing.AllocsPerRun(20, func() { n.Run(w, cycles) })
			if best < 0 || avg < best {
				best = avg
			}
		}
		return best
	}
	short, long := allocsFor(100), allocsFor(200)
	if long > short {
		t.Errorf("parallel Run allocates per cycle: %.2f allocs for 100 cycles vs %.2f for 200 (want no growth)", short, long)
	}
}
