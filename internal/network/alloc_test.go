package network_test

import (
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// TestSteadyStateZeroAlloc asserts the tick path is allocation-free once
// warm: after the pool free lists, NI queues, reassembly maps, delivery ring
// and histogram buckets have grown to their steady-state footprint, stepping
// the simulator allocates nothing — every flit and packet comes from the
// pool and returns to it.
func TestSteadyStateZeroAlloc(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(core.PseudoSB)
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	n := network.New(cfg)
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.10,
	}, sim.NewRNG(7))

	// Warm up well past the stats reset so every growable structure has
	// reached its working-set size.
	n.Run(w, 2000)
	n.ResetStats()
	n.Run(w, 2000)

	// Growable structures (histogram buckets, map buckets, slice
	// capacities) approach their working set asymptotically: rare latency
	// excursions still add a bucket early on. Require the alloc rate to
	// decay to exactly zero within a few trials — steady state must be
	// allocation-free, not merely cheap.
	const stepsPerRun = 100
	var avg float64
	for trial := 0; trial < 8; trial++ {
		avg = testing.AllocsPerRun(20, func() {
			for i := 0; i < stepsPerRun; i++ {
				n.Step(w)
			}
		})
		if avg == 0 {
			return
		}
	}
	t.Errorf("steady-state Step still allocates after warmup: %.2f allocs per %d steps (want 0)", avg, stepsPerRun)
}
