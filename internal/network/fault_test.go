package network_test

import (
	"reflect"
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/evc"
	"pseudocircuit/internal/fault"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/router"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// buildFaulted builds a 4×4 mesh network with the given scheme, kernel and
// fault schedule, invariant checking on. useEVC swaps in the EVC comparison
// router (scheme must be Baseline).
func buildFaulted(scheme core.Scheme, k kernel, sched *fault.Schedule, useEVC bool) *network.Network {
	m := topology.NewMesh(4, 4)
	cfg := network.DefaultConfig(m)
	cfg.Opts = core.DefaultOptions(scheme)
	cfg.Opts.Workers = k.workers
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	cfg.Naive = k.naive
	cfg.Faults = sched
	if useEVC {
		nEVC := cfg.NumVCs / 2
		cfg.NIVCLimit = cfg.NumVCs - nEVC
		cfg.Factory = func(id, in, out int, rcfg *router.Config) network.Node {
			return evc.New(id, in, out, rcfg, m, nEVC)
		}
	}
	n := network.New(cfg)
	n.CheckInvariants = true
	return n
}

// faultGrid is one faulted determinism grid point: a scheme/router pairing
// and a schedule whose storms land inside the measured window.
type faultGrid struct {
	name   string
	scheme core.Scheme
	evc    bool
	rate   float64
	sched  fault.Schedule
}

// On the 4×4 mesh router 5 (x=1, y=1) is interior: every direction port is
// wired, so both its east link and the whole router are legal fault targets.
var faultGrids = []faultGrid{
	{
		// Loaded enough that the link is busy when it dies, so the reroute
		// policy has committed heads to salvage.
		name:   "psb/link-reroute",
		scheme: core.PseudoSB,
		rate:   0.30,
		sched: fault.Schedule{
			Policy: fault.Reroute,
			Events: []fault.Event{
				{Cycle: 700, Kind: fault.LinkDown, Router: 5, Port: 0},
				{Cycle: 1600, Kind: fault.LinkUp, Router: 5, Port: 0},
			},
		},
	},
	{
		name:   "psb/router-drop",
		scheme: core.PseudoSB,
		sched: fault.Schedule{
			Policy: fault.Drop,
			Events: []fault.Event{
				{Cycle: 800, Kind: fault.RouterDown, Router: 5},
				{Cycle: 1700, Kind: fault.RouterUp, Router: 5},
			},
		},
	},
	{
		name:   "baseline/multi-reroute",
		scheme: core.Baseline,
		sched: fault.Schedule{
			Policy: fault.Reroute,
			Events: []fault.Event{
				{Cycle: 650, Kind: fault.LinkDown, Router: 5, Port: 0},
				{Cycle: 900, Kind: fault.RouterDown, Router: 10},
				{Cycle: 1500, Kind: fault.LinkUp, Router: 5, Port: 0},
				{Cycle: 1900, Kind: fault.RouterUp, Router: 10},
			},
		},
	},
	{
		name:   "evc/link-drop",
		scheme: core.Baseline,
		evc:    true,
		sched: fault.Schedule{
			Policy: fault.Drop,
			Events: []fault.Event{
				{Cycle: 700, Kind: fault.LinkDown, Router: 5, Port: 0},
				{Cycle: 1600, Kind: fault.LinkUp, Router: 5, Port: 0},
			},
		},
	},
}

// runFaulted executes the determinism harness protocol (warmup, stats
// reset, measured window) on a faulted grid point under kernel k.
func runFaulted(g faultGrid, k kernel) *network.Network {
	n := buildFaulted(g.scheme, k, &g.sched, g.evc)
	rate := g.rate
	if rate == 0 {
		rate = 0.10
	}
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: 16, Rate: rate,
	}, sim.NewRNG(42))
	n.Run(w, 500)
	n.ResetStats()
	n.Run(w, 2500)
	return n
}

// TestFaultedDeterminismTriangle extends the determinism harness to faulted
// runs: for each scheme × schedule grid point, the naive reference, the
// active-set kernel and the sharded parallel kernel at every required worker
// count must produce bit-identical statistics and energy counters while
// links and routers go down and come back mid-run.
func TestFaultedDeterminismTriangle(t *testing.T) {
	for _, g := range faultGrids {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			ref := runFaulted(g, kernels[0])
			if ref.Stats.FaultEvents != uint64(len(g.sched.Events)) {
				t.Fatalf("reference run applied %d fault events, want %d",
					ref.Stats.FaultEvents, len(g.sched.Events))
			}
			if ref.Stats.PacketsDropped+ref.Stats.PacketsRerouted == 0 {
				t.Error("schedule caused no drops and no reroutes; grid point exercises nothing")
			}
			for _, k := range kernels[1:] {
				got := runFaulted(g, k)
				if !reflect.DeepEqual(ref.Stats, got.Stats) {
					t.Errorf("stats diverge between %s and %s kernels:\n%s: %+v\n%s: %+v",
						kernels[0].name, k.name, kernels[0].name, ref.Stats, k.name, got.Stats)
				}
				if !reflect.DeepEqual(ref.Energy, got.Energy) {
					t.Errorf("energy diverges between %s and %s kernels:\n%s: %+v\n%s: %+v",
						kernels[0].name, k.name, kernels[0].name, ref.Energy, k.name, got.Energy)
				}
			}
		})
	}
}

// TestEmptyFaultScheduleBitIdentical pins the zero-cost contract: a nil
// schedule and an empty one build byte-for-byte the same run.
func TestEmptyFaultScheduleBitIdentical(t *testing.T) {
	run := func(sched *fault.Schedule) *network.Network {
		n := buildFaulted(core.PseudoSB, kernel{}, sched, false)
		w := traffic.NewSynthetic(traffic.Config{
			Pattern: traffic.UniformRandom, Nodes: 16, Rate: 0.10,
		}, sim.NewRNG(42))
		n.Run(w, 2000)
		return n
	}
	ref := run(nil)
	got := run(&fault.Schedule{Policy: fault.Reroute})
	if !reflect.DeepEqual(ref.Stats, got.Stats) {
		t.Errorf("empty schedule diverges from nil:\nnil:   %+v\nempty: %+v", ref.Stats, got.Stats)
	}
	if !reflect.DeepEqual(ref.Energy, got.Energy) {
		t.Errorf("empty schedule energy diverges from nil:\nnil:   %+v\nempty: %+v", ref.Energy, got.Energy)
	}
	if got.Stats.FaultEvents != 0 {
		t.Errorf("empty schedule applied %d events", got.Stats.FaultEvents)
	}
}

// TestFaultReroutePolicySalvages compares the two storm policies on the same
// schedule: Reroute must salvage packets Drop would kill, and Drop must
// never report a reroute. Salvage needs a head that has committed an output
// VC but not yet traversed at the storm instant — a one-cycle window in this
// microarchitecture (speculation sends heads the cycle they allocate) — so
// the scenario is engineered for it: dynamic VA lets a second head commit
// while another packet streams through the same output port, three flows
// converge on router 1's south output, and the schedule storms that link
// repeatedly. Everything is deterministic (flows, no RNG), so the window is
// hit reproducibly.
func TestFaultReroutePolicySalvages(t *testing.T) {
	run := func(p fault.Policy) *network.Network {
		cfg := network.DefaultConfig(topology.NewMesh(4, 4))
		cfg.Opts = core.DefaultOptions(core.PseudoSB)
		cfg.Algorithm = routing.XY
		cfg.Policy = vcalloc.Dynamic
		sched := &fault.Schedule{Policy: p}
		for i := 0; i < 10; i++ {
			base := int64(300 + 100*i)
			sched.Events = append(sched.Events,
				fault.Event{Cycle: base, Kind: fault.LinkDown, Router: 1, Port: 3},
				fault.Event{Cycle: base + 50, Kind: fault.LinkUp, Router: 1, Port: 3},
			)
		}
		cfg.Faults = sched
		n := network.New(cfg)
		n.CheckInvariants = true
		// 2.5× oversubscription of the south link keeps its output port
		// contended through every storm; the flow count is sized so the
		// backlog drains before the stale sweep's post-recovery grace
		// period ends, keeping slow-but-moving packets out of its reach.
		w := traffic.NewFlows(
			traffic.Flow{Src: 0, Dst: 13, Size: 5, Period: 6, Start: 0, Count: 120},
			traffic.Flow{Src: 3, Dst: 13, Size: 5, Period: 6, Start: 1, Count: 120},
			traffic.Flow{Src: 1, Dst: 13, Size: 5, Period: 6, Start: 2, Count: 120},
		)
		if !n.Drain(w, 30000) {
			t.Fatalf("policy %v: network failed to drain", p)
		}
		if got := n.Stats.PacketsDelivered + n.Stats.PacketsDropped; got != 360 {
			t.Fatalf("policy %v: %d packets accounted for, want 360", p, got)
		}
		return n
	}
	drop, rer := run(fault.Drop), run(fault.Reroute)
	if drop.Stats.PacketsRerouted != 0 {
		t.Errorf("drop policy rerouted %d packets", drop.Stats.PacketsRerouted)
	}
	if drop.Stats.PacketsDropped == 0 {
		t.Error("drop policy dropped nothing; schedule too mild to compare policies")
	}
	if rer.Stats.PacketsRerouted == 0 {
		t.Error("reroute policy salvaged nothing")
	}
	if rer.Stats.PacketsDropped >= drop.Stats.PacketsDropped {
		t.Errorf("reroute policy dropped %d packets, not below drop policy's %d",
			rer.Stats.PacketsDropped, drop.Stats.PacketsDropped)
	}
}

// TestFaultedDrainTerminates is the stranded-flit regression: bounded flows
// cross a router that dies mid-stream, and the network must still drain —
// every in-flight flit either delivers, detours, or is purged by the fault
// storm; nothing wedges waiting for a credit that died with the router.
func TestFaultedDrainTerminates(t *testing.T) {
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			sched := &fault.Schedule{
				Policy: fault.Reroute,
				Events: []fault.Event{
					{Cycle: 150, Kind: fault.RouterDown, Router: 5},
					{Cycle: 5000, Kind: fault.RouterUp, Router: 5},
				},
			}
			n := buildFaulted(core.PseudoSB, k, sched, false)
			// Flows chosen to cross router 5 (x=1, y=1) under XY routing in
			// both dimensions, still injecting while it dies.
			w := traffic.NewFlows(
				traffic.Flow{Src: 0, Dst: 15, Size: 5, Period: 7, Start: 0, Count: 60},
				traffic.Flow{Src: 4, Dst: 7, Size: 5, Period: 11, Start: 3, Count: 40},
				traffic.Flow{Src: 1, Dst: 13, Size: 1, Period: 5, Start: 1, Count: 80},
			)
			if !n.Drain(w, 20000) {
				t.Fatalf("network failed to drain within 20000 cycles")
			}
			done := n.Stats.PacketsDelivered + n.Stats.PacketsDropped
			if want := uint64(60 + 40 + 80); done != want {
				t.Errorf("delivered %d + dropped %d = %d packets, want %d accounted for",
					n.Stats.PacketsDelivered, n.Stats.PacketsDropped, done, want)
			}
		})
	}
}
