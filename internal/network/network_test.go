package network_test

import (
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

func build(t *testing.T, topo topology.Topology, scheme core.Scheme, algo routing.Algorithm, pol vcalloc.Policy) *network.Network {
	t.Helper()
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(scheme)
	cfg.Algorithm = algo
	cfg.Policy = pol
	n := network.New(cfg)
	n.CheckInvariants = true
	return n
}

// TestDeterminism: identical configurations produce identical statistics.
func TestDeterminism(t *testing.T) {
	run := func() string {
		n := build(t, topology.NewMesh(4, 4), core.PseudoSB, routing.O1TURN, vcalloc.Dynamic)
		w := traffic.NewSynthetic(traffic.Config{
			Pattern: traffic.UniformRandom, Nodes: 16, Rate: 0.15,
		}, sim.NewRNG(77))
		n.Run(w, 2000)
		return n.Stats.String() + n.Stats.LatencyHist.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
}

// TestAllTopologiesDeliver: every topology delivers every pattern's traffic
// with all schemes, under invariant checking.
func TestAllTopologiesDeliver(t *testing.T) {
	topos := []func() topology.Topology{
		func() topology.Topology { return topology.NewMesh(4, 4) },
		func() topology.Topology { return topology.NewCMesh(3, 3, 4) },
		func() topology.Topology { return topology.NewMECS(3, 3, 2) },
		func() topology.Topology { return topology.NewFBFly(3, 3, 2) },
	}
	for _, mk := range topos {
		for _, scheme := range []core.Scheme{core.Baseline, core.PseudoSB} {
			topo := mk()
			n := build(t, topo, scheme, routing.XY, vcalloc.Static)
			w := traffic.NewSynthetic(traffic.Config{
				Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.08,
			}, sim.NewRNG(5))
			n.Run(w, 3000)
			if n.Stats.PacketsDelivered < 100 {
				t.Errorf("%s/%v: only %d packets delivered", topo.Name(), scheme, n.Stats.PacketsDelivered)
			}
		}
	}
}

// TestO1TURNDeadlockFree: transpose traffic at high load with O1TURN's VC
// classes keeps making forward progress (the class split prevents the
// XY/YX cyclic dependency).
func TestO1TURNDeadlockFree(t *testing.T) {
	n := build(t, topology.NewMesh(8, 8), core.PseudoSB, routing.O1TURN, vcalloc.Dynamic)
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.BitPermutation, Nodes: 64, GridW: 8, Rate: 0.4,
	}, sim.NewRNG(9))
	n.Run(w, 2000)
	before := n.Stats.PacketsDelivered
	n.Run(w, 2000)
	if n.Stats.PacketsDelivered == before {
		t.Fatal("no deliveries in 2000 cycles at saturation: deadlock")
	}
}

// TestHighLoadAllSchemes: saturation stress with invariants on; nothing
// panics, credits never corrupt.
func TestHighLoadAllSchemes(t *testing.T) {
	for _, scheme := range core.Schemes {
		n := build(t, topology.NewMesh(4, 4), scheme, routing.XY, vcalloc.Static)
		w := traffic.NewSynthetic(traffic.Config{
			Pattern: traffic.UniformRandom, Nodes: 16, Rate: 0.9,
		}, sim.NewRNG(13))
		n.Run(w, 3000)
		if n.Stats.PacketsDelivered == 0 {
			t.Errorf("%v: nothing delivered under overload", scheme)
		}
	}
}

// TestDrainToQuiescence: after sources stop, the network fully drains.
func TestDrainToQuiescence(t *testing.T) {
	n := build(t, topology.NewMesh(4, 4), core.PseudoSB, routing.XY, vcalloc.Dynamic)
	w := traffic.NewFlows(
		traffic.Flow{Src: 0, Dst: 15, Size: 5, Period: 3, Count: 50},
		traffic.Flow{Src: 12, Dst: 3, Size: 1, Period: 2, Count: 80},
		traffic.Flow{Src: 5, Dst: 10, Size: 5, Period: 7, Count: 20},
	)
	if !n.Drain(w, 10000) {
		t.Fatalf("drain failed: inflight=%d queued=%d", n.InFlight(), n.QueuedPackets())
	}
	if !n.Quiescent() {
		t.Fatal("not quiescent after drain")
	}
	if n.Stats.PacketsDelivered != 150 {
		t.Fatalf("delivered %d, want 150", n.Stats.PacketsDelivered)
	}
}

// TestPacketConservation: every injected packet is delivered exactly once
// with all its flits, to the right node.
func TestPacketConservation(t *testing.T) {
	topo := topology.NewCMesh(3, 3, 4)
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(core.PseudoSB)
	n := network.New(cfg)
	n.CheckInvariants = true

	w := &conservationWorkload{rng: sim.NewRNG(21), nodes: topo.Nodes(), want: 400}
	if !n.Drain(w, 100000) {
		t.Fatalf("drain failed with %d in flight", n.InFlight())
	}
	if w.delivered != w.want {
		t.Fatalf("delivered %d, want %d", w.delivered, w.want)
	}
	if len(w.outstanding) != 0 {
		t.Fatalf("%d packets never delivered", len(w.outstanding))
	}
}

type conservationWorkload struct {
	rng         *sim.RNG
	nodes       int
	want        int
	sent        int
	delivered   int
	outstanding map[uint64]int // id -> dst
}

func (w *conservationWorkload) Tick(now sim.Cycle, inj network.Injector) {
	if w.outstanding == nil {
		w.outstanding = make(map[uint64]int)
	}
	for i := 0; i < 2 && w.sent < w.want; i++ {
		src := w.rng.Intn(w.nodes)
		dst := w.rng.Intn(w.nodes - 1)
		if dst >= src {
			dst++
		}
		p := &flit.Packet{Src: src, Dst: dst, Size: 1 + w.rng.Intn(5)}
		inj.Inject(p)
		w.outstanding[p.ID] = dst
		w.sent++
	}
}

func (w *conservationWorkload) Deliver(now sim.Cycle, p *flit.Packet) {
	dst, ok := w.outstanding[p.ID]
	if !ok {
		panic("duplicate or unknown delivery")
	}
	if dst != p.Dst {
		panic("delivered to the wrong node")
	}
	delete(w.outstanding, p.ID)
	w.delivered++
}

func (w *conservationWorkload) Done() bool { return w.sent >= w.want }

// TestHopCountsMatchTopology: measured average hops equal DOR path lengths.
func TestHopCountsMatchTopology(t *testing.T) {
	n := build(t, topology.NewMesh(4, 4), core.Baseline, routing.XY, vcalloc.Dynamic)
	w := traffic.NewFlows(traffic.Flow{Src: 0, Dst: 15, Size: 1, Period: 20, Count: 10})
	if !n.Drain(w, 5000) {
		t.Fatal("drain failed")
	}
	// (0,0) -> (3,3): 3 + 3 links, 7 routers.
	if got := n.Stats.AvgHops(); got != 7 {
		t.Fatalf("AvgHops = %v, want 7", got)
	}
}

// TestInjectValidation: malformed packets are rejected loudly.
func TestInjectValidation(t *testing.T) {
	n := build(t, topology.NewMesh(4, 4), core.Baseline, routing.XY, vcalloc.Dynamic)
	for name, p := range map[string]*flit.Packet{
		"self":     {Src: 3, Dst: 3, Size: 1},
		"oob-dst":  {Src: 0, Dst: 99, Size: 1},
		"zero-len": {Src: 0, Dst: 1, Size: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s packet accepted", name)
				}
			}()
			n.Inject(p)
		}()
	}
}

// TestMeasurementWindow: packets injected before ResetStats are excluded
// from latency samples but still delivered.
func TestMeasurementWindow(t *testing.T) {
	n := build(t, topology.NewMesh(4, 4), core.Baseline, routing.XY, vcalloc.Dynamic)
	w := traffic.NewFlows(traffic.Flow{Src: 0, Dst: 15, Size: 1, Period: 10, Count: 5})
	n.Run(w, 49) // all 5 injected before the window
	n.ResetStats()
	n.Drain(nil, 1000)
	if n.Stats.LatencySamples != 0 {
		t.Fatalf("pre-window packets sampled: %d", n.Stats.LatencySamples)
	}
	if n.Stats.PacketsDelivered == 0 {
		t.Fatal("pre-window packets not delivered")
	}
}

// TestLinkLoads: the utilization report is flit-conserving and sorted.
func TestLinkLoads(t *testing.T) {
	n := build(t, topology.NewMesh(4, 4), core.PseudoSB, routing.XY, vcalloc.Static)
	w := traffic.NewFlows(traffic.Flow{Src: 0, Dst: 3, Size: 5, Period: 10, Count: 30})
	if !n.Drain(w, 5000) {
		t.Fatal("drain failed")
	}
	loads := n.LinkLoads()
	if len(loads) == 0 {
		t.Fatal("no link loads recorded")
	}
	for i := 1; i < len(loads); i++ {
		if loads[i].Flits > loads[i-1].Flits {
			t.Fatal("loads not sorted")
		}
	}
	// The flow crosses routers 0->1->2->3 along row 0: each of the three
	// row links carries all 150 flits; the ejection port at router 3 too.
	var total uint64
	ejections := 0
	for _, l := range loads {
		total += l.Flits
		if l.Ejection {
			ejections++
			if l.Router != 3 {
				t.Errorf("ejection traffic at router %d, want 3", l.Router)
			}
		}
		if l.Utilization < 0 || l.Utilization > 1 {
			t.Errorf("utilization %v out of range", l.Utilization)
		}
	}
	// 150 flits times 4 channels (3 links + 1 ejection).
	if total != 600 {
		t.Fatalf("total channel flits = %d, want 600", total)
	}
	if ejections != 1 {
		t.Fatalf("ejection channels = %d, want 1", ejections)
	}
}
