package network_test

import (
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

func runUniform(t *testing.T, scheme core.Scheme, rate float64) *network.Network {
	t.Helper()
	cfg := network.DefaultConfig(topology.NewMesh(8, 8))
	cfg.Opts = core.DefaultOptions(scheme)
	cfg.Algorithm = routing.XY
	cfg.Policy = vcalloc.Static
	n := network.New(cfg)
	n.CheckInvariants = true
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom,
		Nodes:   64,
		Rate:    rate,
	}, sim.NewRNG(42))
	n.Run(w, 1000)
	n.ResetStats()
	n.Run(w, 3000)
	if n.Stats.LatencySamples == 0 {
		t.Fatalf("scheme %v: no measured deliveries", scheme)
	}
	return n
}

func TestSmokeSchemes(t *testing.T) {
	base := runUniform(t, core.Baseline, 0.05)
	psb := runUniform(t, core.PseudoSB, 0.05)
	t.Logf("baseline: %v", base.Stats)
	t.Logf("pseudo+s+b: %v", psb.Stats)
	if base.Stats.PCReused != 0 {
		t.Errorf("baseline reused pseudo-circuits: %d", base.Stats.PCReused)
	}
	if psb.Stats.Reusability() <= 0.05 {
		t.Errorf("pseudo+s+b reusability too low: %.3f", psb.Stats.Reusability())
	}
	if psb.Stats.AvgLatency() >= base.Stats.AvgLatency() {
		t.Errorf("pseudo+s+b latency %.2f not better than baseline %.2f",
			psb.Stats.AvgLatency(), base.Stats.AvgLatency())
	}
}
