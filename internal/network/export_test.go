package network

import "pseudocircuit/internal/core"

// Lanes exposes the shared structure-of-arrays lane store to tests (layout
// round-trip and consistency checks).
func (n *Network) Lanes() *core.LaneStore { return n.lanes }
