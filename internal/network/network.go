// Package network assembles routers into a complete on-chip network: it
// wires the topology's port graph, implements the network interfaces (NIs)
// that packetize, inject, and reassemble messages, carries flits and credits
// over links with wire-length-proportional latency, and drives the global
// cycle loop.
//
// The simulator is fully deterministic for a given seed, and all
// cross-router effects are latched with at least one cycle of latency, so
// routers tick in a fixed order without affecting results.
//
// The cycle kernel is work-proportional: an active-set scheduler visits only
// routers that hold state or received a flit/credit this cycle (idle routers
// are provably at a fixed point, so skipping their ticks is bit-identical to
// the naive all-routers loop — Config.Naive selects that loop for the
// determinism harness), and a per-network flit/packet free list recycles
// delivered flits so the steady-state tick path performs no allocations.
//
// With Opts.Workers > 1 the kernel additionally shards routers and NIs
// across that many goroutines inside each cycle: the latched-cross-effects
// invariant above means concurrent routers cannot observe each other
// mid-cycle, and all shard-local side effects (link/credit schedules, stats,
// energy) are merged in fixed shard order, so parallel runs stay
// bit-identical to sequential ones (DESIGN.md §12).
package network

import (
	"fmt"
	"sort"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/energy"
	"pseudocircuit/internal/fault"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/obs"
	"pseudocircuit/internal/router"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
)

// Workload generates the network's traffic. Open-loop (synthetic, trace)
// workloads only implement Tick; closed-loop workloads (the CMP substrate)
// also react to deliveries.
type Workload interface {
	// Tick is called once per cycle; the workload enqueues new packets via
	// inj (packets carry their source node in Src).
	Tick(now sim.Cycle, inj Injector)
	// Deliver notifies the workload that a packet reached its destination.
	Deliver(now sim.Cycle, p *flit.Packet)
	// Done reports that the workload will generate no further packets, so a
	// run may terminate once the network drains. Open-loop sources return
	// false.
	Done() bool
}

// Injector accepts new packets into source queues.
type Injector interface {
	// Inject enqueues p at its source node's NI. The network assigns the
	// packet ID and timestamps.
	Inject(p *flit.Packet)
}

// PacketSource is implemented by injectors that hand out pooled packets.
// Packets obtained this way are recycled by the network after
// Workload.Deliver returns, so workloads must not retain them.
type PacketSource interface {
	NewPacket() *flit.Packet
}

// AcquirePacket returns a zeroed packet to fill and pass to inj.Inject:
// pooled (allocation-free in steady state) when the injector supports it,
// freshly allocated otherwise.
func AcquirePacket(inj Injector) *flit.Packet {
	if ps, ok := inj.(PacketSource); ok {
		return ps.NewPacket()
	}
	return &flit.Packet{}
}

// Node is the router-side interface the network drives; implemented by the
// standard (pseudo-circuit-capable) router and by the EVC comparison router.
type Node interface {
	// Tick advances the router one cycle and reports whether it must be
	// ticked again next cycle. A false return promises the router is at a
	// fixed point: absent new deliveries, further ticks would neither change
	// its state nor touch any statistics or energy counter, so the network's
	// active-set scheduler may skip it until the next Deliver/DeliverCredit.
	Tick(now sim.Cycle) bool
	Deliver(in int, f *flit.Flit)
	DeliverCredit(out, vc int)
	MarkEjection(out int)
	Quiescent() bool
	CheckInvariants()
}

// faultNode is the teardown surface a router must additionally provide when
// a fault schedule is configured. It is deliberately not part of Node so
// fault-free configurations keep accepting any Node implementation.
type faultNode interface {
	FaultScan(fc *router.FaultContext)
	FaultStale(cutoff sim.Cycle, kill func(p *flit.Packet))
	FaultPurge(p *flit.Packet, drop func(f *flit.Flit))
}

// NodeFactory builds router id with the given radix; rcfg carries the shared
// router configuration (callbacks, meters). A nil factory builds the
// standard router.
type NodeFactory func(id, inPorts, outPorts int, rcfg *router.Config) Node

// Config describes one simulated network.
type Config struct {
	Topo      topology.Topology
	Algorithm routing.Algorithm
	Policy    vcalloc.Policy
	StaticKey vcalloc.StaticKey
	NumVCs    int // per input port (paper: 4)
	BufDepth  int // flits per VC (paper: 4)
	Opts      core.Options
	Seed      uint64
	// Factory overrides the router implementation (EVC comparison, §7.B).
	Factory NodeFactory
	// NIVCLimit restricts injection to VCs [0, NIVCLimit) when positive;
	// the EVC configuration reserves the upper VCs for express paths.
	NIVCLimit int
	// Pool supplies the flit/packet free list; nil builds a private one.
	// Sharing a pool across sequentially executed networks (one experiment
	// worker) carries warmed free lists between runs. A pool must never be
	// shared by concurrently running networks.
	Pool *flit.Pool
	// Naive disables the active-set scheduler: every router is ticked every
	// cycle, as the seed simulator did. Results are bit-identical either
	// way (the determinism harness asserts this); the naive kernel exists
	// as the reference for that comparison.
	Naive bool

	// Faults declares a deterministic fault schedule: cycle-stamped
	// link/router down/up events applied inside the kernel's main phase, so
	// faulted runs stay bit-identical across all kernels and worker counts.
	// The schedule must satisfy fault.Schedule.Validate on the network's
	// topology; nil or empty behaves exactly like no schedule at all.
	Faults *fault.Schedule

	// Reliable enables NI-level end-to-end reliable delivery: per-flow
	// sequence numbers, receiver acks and dedup, sender retransmission with
	// capped exponential backoff and a bounded retry budget (DESIGN.md §14).
	// nil (the default) disables the layer entirely — no sequence numbers,
	// no acks, no per-NI reliability state.
	Reliable *Reliability

	// Observability probes, all opt-in and observation-only: enabling any of
	// them cannot change simulation results, and leaving them nil (the
	// default) costs one predictable branch per probe site and zero
	// allocations.
	//
	// Registry collects per-router/per-port counters (standard routers only;
	// the EVC comparison router does not attach rows). Series collects
	// cycle-windowed samples of the global counters. Tracer records flit
	// lifecycle events into a bounded ring.
	Registry *stats.Registry
	Series   *stats.Series
	Tracer   *obs.Tracer
}

// DefaultConfig returns the paper's network configuration (§5) on the given
// topology: 4 VCs per input port, 4-flit buffers, XY routing, dynamic VA,
// baseline router.
func DefaultConfig(t topology.Topology) Config {
	return Config{
		Topo:      t,
		Algorithm: routing.XY,
		Policy:    vcalloc.Dynamic,
		NumVCs:    4,
		BufDepth:  4,
		Opts:      core.DefaultOptions(core.Baseline),
		Seed:      1,
	}
}

// upstream identifies what feeds a router input port.
type upstream struct {
	router int // -1 when fed by an NI
	out    int // output port, or node id when router == -1
}

// delivery is an in-flight flit or credit.
type delivery struct {
	flit *flit.Flit
	// Flit target: router/port, or NI node when router == -1.
	router, port int
	// Credit target (when flit == nil): router out-port VC, or NI when
	// router == -1 (port = node, vc meaningful).
	vc int
}

// credRet is a router-bound credit return deferred until purgePacket's ring
// sweep has finished rebuilding every slot (see purgePacket).
type credRet struct {
	router, out, vc int
}

// pending is a shard-buffered schedule call: a delivery plus the link
// latency it was issued with. Shards buffer instead of appending to the
// delivery ring directly so the merge can reproduce the sequential kernel's
// exact append order.
type pending struct {
	lat int
	d   delivery
}

// shard is one worker's slice of the network: a contiguous router range
// [r0, r1), a contiguous NI range [n0, n1), and private accumulators for
// every global structure a router tick or NI injection touches. Routers in
// the shard are constructed against rcfg, whose Stats/Energy point at the
// shard's meters and whose Send/Credit callbacks buffer into pendTick; the
// shard's NIs draw flits from its private pool and buffer their schedules
// into pendInj. After each cycle the main goroutine merges pendInj in shard
// order (= ascending node order, matching the sequential injection loop),
// then pendTick in shard order (= ascending router order, matching the
// sequential tick loop), then drains the shard meters in shard order.
type shard struct {
	net    *Network
	idx    int // index into the network's shardStats/shardEnergy slices
	r0, r1 int // routers [r0, r1)
	n0, n1 int // NI nodes [n0, n1)

	rcfg *router.Config
	pool *flit.Pool

	pendInj  []pending
	pendTick []pending
	// pendKill buffers hop-limit victims found while latching this shard's
	// due deliveries; the main goroutine condemns them in shard order after
	// the phases, reproducing the sequential kernel's due-order kills.
	pendKill []*flit.Packet

	// work carries one token per cycle: true = run this cycle's phases,
	// false = exit the worker goroutine (acknowledged on Network.done).
	work chan bool
}

// send is the shard-local router Send callback.
func (sh *shard) send(id, out int, f *flit.Flit) {
	lat, d := sh.net.resolveFlit(id, out, f)
	sh.pendTick = append(sh.pendTick, pending{lat: lat, d: d})
}

// credit is the shard-local router Credit callback.
func (sh *shard) credit(id, in, vc int) {
	lat, d := sh.net.resolveCredit(id, in, vc)
	sh.pendTick = append(sh.pendTick, pending{lat: lat, d: d})
}

// routeTabLimit caps the route-table size (entries = classes × routers ×
// nodes); topologies past it fall back to dynamic route computation. 1M
// single-byte entries covers every configuration in the experiment suite.
const routeTabLimit = 1 << 20

// Network is a runnable simulated network.
type Network struct {
	cfg     Config
	topo    topology.Topology
	engine  *routing.Engine
	alloc   *vcalloc.Allocator
	niAlloc *vcalloc.Allocator
	routers []Node
	nis     []*ni
	ups     [][]upstream // [router][inPort]
	rcfg    *router.Config
	// lanes is the structure-of-arrays hot-path store every standard router's
	// per-(port, vc) state lives in (core.LaneStore; DESIGN.md §17). The
	// network owns it so the arrays span all routers contiguously — the
	// active-set walk touches one cache-linear region, and parallel shards
	// operate on disjoint index ranges of the same slices. Comparison routers
	// (EVC) keep private state and leave their region untouched.
	lanes *core.LaneStore
	// routeTab caches the pure dimension-order route for every
	// (class, router, dst) triple, indexed (class*Routers + r)*Nodes + dst.
	// Ports fit in int8 (core.LaneLimit caps radix at 64). The fault-free
	// hot path reads it instead of re-deriving grid coordinates per hop;
	// fault-aware routing (RouteAvoid) stays dynamic because it depends on
	// live link state. nil when the topology is too large to tabulate
	// (routeTabLimit).
	routeTab []int8
	nNodes   int

	Stats  *stats.Network
	Energy *energy.Meter

	registry *stats.Registry
	series   *stats.Series
	tracer   *obs.Tracer

	now      sim.Cycle
	ring     [][]delivery // future deliveries, indexed by cycle & ringMask
	ringMask int          // len(ring)-1; the ring is a power of two so slot lookup divides nothing
	rng      *sim.RNG
	nextID   uint64
	inFlight int // packets injected but not yet fully ejected

	pool *flit.Pool
	// active marks routers the scheduler must tick this cycle: set on any
	// flit/credit delivery, cleared when the router's Tick reports it
	// reached a fixed point. naive bypasses the active set entirely.
	active []bool
	naive  bool

	// Fault machinery (nil/empty without a schedule): the replayed schedule
	// state, the node→home-router table, per-router wired/dead closures
	// (precomputed so fault-aware route computation allocates nothing on the
	// hot path), the misroute livelock bound, and the scratch victim list
	// reused across purges.
	faults   *fault.State
	home     []int
	wiredFn  []func(out int) bool
	deadFn   []func(out int) bool
	hopLimit int
	victims  []*flit.Packet
	credRet  []credRet
	// Wedge watchdog (active only with a schedule): fault detours are not
	// covered by XY's turn restrictions, so a storm can leave packets in a
	// buffer-dependency cycle that never moves again — invisible to the hop
	// limit, which only fires on flits that still travel. lastMove/stallRun
	// track whole-network progress from the main phase; stallLimit cycles of
	// total standstill with flits in flight (and no fault currently down,
	// when waiting is legitimate) purge the fabric so runs and drains
	// terminate.
	lastMove   uint64
	stallRun   int
	stallLimit int
	condemnFn  func(p *flit.Packet) // hoisted n.condemn (per-call method values allocate)
	// Stale sweep (the watchdog's partial-wedge companion): a detour
	// deadlock that other traffic keeps flowing around never trips the
	// standstill watchdog, so every staleScanEvery cycles resident packets
	// whose network residence exceeds staleLimit are condemned — a bounded
	// residence time, enforced only when a schedule is configured. staleHold
	// records the last cycle any fault was down: while one is, parking in
	// front of it is legitimate waiting, so the sweep pauses and resumes
	// only a full staleLimit after recovery, giving released packets the
	// same residence budget a fresh one gets.
	staleLimit sim.Cycle
	staleHold  sim.Cycle

	// Reliability layer (nil when off): the resolved configuration and the
	// count of outstanding sender records across all NIs — packets neither
	// acknowledged nor abandoned yet, which Drain must wait out.
	rel        *Reliability
	relPending int

	// Parallel kernel state (nil/zero when Opts.Workers <= 1): the shards,
	// their slice-indexed stats/energy accumulators (shard i owns element i;
	// contiguous so the per-cycle drain walks two flat slices in shard
	// order), the shared completion channel, whether worker goroutines are
	// live (between startWorkers/stopWorkers, i.e. inside Run/Drain), and the
	// due-deliveries slice of the cycle in flight, published to workers.
	shards      []*shard
	shardStats  []stats.Network
	shardEnergy []energy.Meter
	done        chan struct{}
	parRunning  bool
	curDue      []delivery

	// CheckInvariants enables per-cycle router invariant checking (tests).
	CheckInvariants bool
}

// New builds a network from cfg.
func New(cfg Config) *Network {
	if cfg.NumVCs <= 0 || cfg.BufDepth <= 0 {
		panic("network: NumVCs and BufDepth must be positive")
	}
	t := cfg.Topo
	engine := routing.New(cfg.Algorithm, t)
	alloc := vcalloc.New(cfg.Policy, cfg.NumVCs, engine.NumClasses(), t.Nodes()).
		WithStaticKey(cfg.StaticKey)
	niAlloc := alloc
	if cfg.NIVCLimit > 0 {
		if engine.NumClasses() != 1 {
			panic("network: NIVCLimit requires a single-class routing algorithm")
		}
		niAlloc = vcalloc.New(cfg.Policy, cfg.NIVCLimit, 1, t.Nodes()).
			WithStaticKey(cfg.StaticKey)
	}

	pool := cfg.Pool
	if pool == nil {
		pool = flit.NewPool()
	}
	n := &Network{
		cfg:      cfg,
		topo:     t,
		engine:   engine,
		alloc:    alloc,
		niAlloc:  niAlloc,
		Stats:    &stats.Network{},
		Energy:   energy.NewMeter(),
		rng:      sim.NewRNG(cfg.Seed),
		pool:     pool,
		active:   make([]bool, t.Routers()),
		naive:    cfg.Naive,
		registry: cfg.Registry,
		series:   cfg.Series,
		tracer:   cfg.Tracer,
	}
	if cfg.Reliable != nil {
		rel := cfg.Reliable.withDefaults()
		n.rel = &rel
	}

	// Ring sized for the largest link latency plus slack.
	maxLat := 1
	for r := 0; r < t.Routers(); r++ {
		for o := 0; o < t.OutPorts(r); o++ {
			for d := 0; d < t.Nodes(); d++ {
				if !reachable(t, r, o, d) {
					continue
				}
				if h := t.NextHop(r, o, d); h.Latency > maxLat {
					maxLat = h.Latency
				}
			}
		}
	}
	ringLen := 1
	for ringLen < maxLat+3 {
		ringLen <<= 1
	}
	n.ring = make([][]delivery, ringLen)
	n.ringMask = ringLen - 1

	// Route table: dimension-order routing is a pure function of
	// (class, router, dst), so tabulate it once and turn the per-hop route
	// computation into a byte load. Skipped (falling back to the dynamic
	// computation) only for topologies too large to tabulate cheaply.
	n.nNodes = t.Nodes()
	if cls := engine.NumClasses(); cls*t.Routers()*n.nNodes <= routeTabLimit {
		n.routeTab = make([]int8, cls*t.Routers()*n.nNodes)
		for c := 0; c < cls; c++ {
			for r := 0; r < t.Routers(); r++ {
				row := n.routeTab[(c*t.Routers()+r)*n.nNodes:]
				for d := 0; d < n.nNodes; d++ {
					row[d] = int8(engine.Route(r, d, c))
				}
			}
		}
	}

	// Fault schedule: validated defensively (the spec layer validates with
	// the real horizon; here only structure matters), replayed by a State
	// whose dead-queries shard workers may read while the main phase holds
	// it constant. The empty schedule is deliberately identical to no
	// schedule: no state, no hop limit, no extra branches anywhere.
	if cfg.Faults != nil && len(cfg.Faults.Events) > 0 {
		ft, ok := t.(fault.Topo)
		if !ok {
			panic(fmt.Sprintf("network: fault schedules are not supported on %T", t))
		}
		sched := fault.Schedule{
			Policy:    cfg.Faults.Policy,
			AllowOpen: cfg.Faults.AllowOpen,
			Events:    append([]fault.Event(nil), cfg.Faults.Events...),
		}
		if err := sched.Validate(ft, 1<<62); err != nil {
			panic(fmt.Sprintf("network: invalid fault schedule: %v", err))
		}
		n.faults = fault.NewState(sched, t.Routers(), fault.NeighborTable(ft))
		// Misrouting around dead links can exceed the minimal hop count;
		// bound it so a pathological schedule becomes packet drops, never
		// livelock. Generous: a detour never needs more than a few grid
		// perimeters.
		n.hopLimit = 4*t.Routers() + 64
		// Wedge watchdog threshold: far above any transient (link latencies
		// are single-digit; with flits in flight and no fault down, a healthy
		// network cannot go this long without a single buffer write or link
		// traversal anywhere), far below any drain horizon a test would use.
		n.stallLimit = 1024
		// Stale bound: far above any healthy residence time at the operating
		// points the experiments run (latencies are tens to hundreds of
		// cycles), small enough that a wedge clears within a few thousand
		// cycles of forming.
		n.staleLimit = 2048
		n.condemnFn = n.condemn
		nbr := fault.NeighborTable(ft)
		n.wiredFn = make([]func(out int) bool, t.Routers())
		n.deadFn = make([]func(out int) bool, t.Routers())
		for r := 0; r < t.Routers(); r++ {
			r := r
			n.wiredFn[r] = func(out int) bool { return nbr[r*4+out] >= 0 }
			n.deadFn[r] = func(out int) bool { return n.faults.LinkDead(r, out) }
		}
		n.home = make([]int, t.Nodes())
		for node := 0; node < t.Nodes(); node++ {
			hr, _, _ := t.NodeRouter(node)
			n.home[node] = hr
		}
	}

	// The network owns the structure-of-arrays hot-path store; every standard
	// router gets a contiguous region of it (prefix-summed by radix).
	inRadix := make([]int, t.Routers())
	outRadix := make([]int, t.Routers())
	for r := range inRadix {
		inRadix[r], outRadix[r] = t.InPorts(r), t.OutPorts(r)
	}
	n.lanes = core.NewLaneStore(cfg.NumVCs, cfg.BufDepth, inRadix, outRadix)

	n.rcfg = &router.Config{
		NumVCs:   cfg.NumVCs,
		BufDepth: cfg.BufDepth,
		Lanes:    n.lanes,
		Opts:     cfg.Opts,
		Alloc:    alloc,
		Energy:   n.Energy,
		Stats:    n.Stats,
		Send:     n.sendFlit,
		Credit:   n.sendCredit,
		Reg:      cfg.Registry,
		Trace:    cfg.Tracer,
	}
	if n.faults != nil {
		n.rcfg.LinkUp = func(id, out int) bool { return !n.faults.LinkDead(id, out) }
		n.rcfg.Reroute = func(id, dst, class int) int { return n.routeFor(id, dst, class) }
	}
	// Shard the routers and NIs for the parallel kernel. The naive reference
	// loop and the tracer stay sequential: naive exists precisely as the
	// single-threaded reference, and the trace ring is single-writer (worker
	// count cannot change results either way, so forcing workers=1 under
	// tracing is an execution detail, not a behaviour change).
	if w := cfg.Opts.Workers; w > 1 && !cfg.Naive && cfg.Tracer == nil {
		if w > t.Routers() {
			w = t.Routers()
		}
		if w > 1 {
			n.shards = make([]*shard, w)
			n.shardStats = make([]stats.Network, w)
			n.shardEnergy = make([]energy.Meter, w)
			n.done = make(chan struct{}, w)
			for i := range n.shards {
				sh := &shard{
					net:  n,
					idx:  i,
					r0:   i * t.Routers() / w,
					r1:   (i + 1) * t.Routers() / w,
					n0:   i * t.Nodes() / w,
					n1:   (i + 1) * t.Nodes() / w,
					pool: flit.NewPool(),
					work: make(chan bool, 1),
				}
				rcfg := *n.rcfg
				rcfg.Energy = &n.shardEnergy[i]
				rcfg.Stats = &n.shardStats[i]
				rcfg.Send = sh.send
				rcfg.Credit = sh.credit
				sh.rcfg = &rcfg
				n.shards[i] = sh
			}
		}
	}
	factory := cfg.Factory
	if factory == nil {
		factory = func(id, in, out int, rcfg *router.Config) Node {
			return router.New(id, in, out, rcfg)
		}
	}
	n.routers = make([]Node, t.Routers())
	for r := range n.routers {
		n.routers[r] = factory(r, t.InPorts(r), t.OutPorts(r), n.routerConfig(r))
		if n.faults != nil {
			if _, ok := n.routers[r].(faultNode); !ok {
				panic(fmt.Sprintf("network: router %T cannot run under a fault schedule", n.routers[r]))
			}
		}
	}
	n.nis = make([]*ni, t.Nodes())
	n.ups = make([][]upstream, t.Routers())
	for r := range n.ups {
		n.ups[r] = make([]upstream, t.InPorts(r))
		for i := range n.ups[r] {
			n.ups[r][i] = upstream{router: -2}
		}
	}
	// Wire router-to-router upstream links.
	for r := 0; r < t.Routers(); r++ {
		for o := 0; o < t.OutPorts(r); o++ {
			for d := 0; d < t.Nodes(); d++ {
				if !reachable(t, r, o, d) {
					continue
				}
				h := t.NextHop(r, o, d)
				if h.Router < 0 {
					continue
				}
				u := upstream{router: r, out: o}
				cur := n.ups[h.Router][h.InPort]
				if cur.router != -2 && cur != u {
					panic(fmt.Sprintf("network: input port %d of router %d fed by two outputs", h.InPort, h.Router))
				}
				n.ups[h.Router][h.InPort] = u
			}
		}
	}
	// Wire terminals.
	for node := 0; node < t.Nodes(); node++ {
		r, inP, outP := t.NodeRouter(node)
		n.routers[r].MarkEjection(outP)
		n.ups[r][inP] = upstream{router: -1, out: node}
		n.nis[node] = newNI(n, node, r, inP)
	}
	return n
}

// reachable reports whether output port o at router r is a meaningful exit
// toward destination d — i.e. the port dimension-order routing could use.
// It is used only during wiring/sizing to avoid asking NextHop nonsense
// questions on multidrop topologies.
func reachable(t topology.Topology, r, o, d int) bool {
	for class := 0; class < 2; class++ {
		rt := t.Route(r, d, class)
		if rt == o {
			return true
		}
		// Also walk one step further for the turn port: from the drop/turn
		// router the other dimension's port matters; wiring only needs
		// every (router, port) pair to be exercised by some destination,
		// which Route over all (r, d, class) provides.
	}
	return false
}

// Now returns the current simulation cycle.
func (n *Network) Now() sim.Cycle { return n.now }

// Nodes returns the terminal count.
func (n *Network) Nodes() int { return n.topo.Nodes() }

// Topology returns the simulated topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// InFlight returns the number of injected-but-undelivered packets.
func (n *Network) InFlight() int { return n.inFlight }

// NewPacket implements PacketSource: it returns a pooled packet that the
// network will recycle after the delivering Workload.Deliver returns.
func (n *Network) NewPacket() *flit.Packet { return n.pool.NewPacket() }

// Inject implements Injector: it enqueues p at its source NI.
func (n *Network) Inject(p *flit.Packet) {
	if p.Src < 0 || p.Src >= len(n.nis) || p.Dst < 0 || p.Dst >= len(n.nis) {
		panic(fmt.Sprintf("network: packet %d->%d out of range", p.Src, p.Dst))
	}
	if p.Src == p.Dst {
		panic("network: self-addressed packet")
	}
	if p.Size <= 0 {
		panic("network: packet size must be positive")
	}
	p.ID = n.nextID
	n.nextID++
	p.Injected = n.now
	// Reliability: first sends of workload packets get a per-flow sequence
	// number and a sender retransmit record before any drop decision — if
	// the packet is dropped at the source below, the retransmit timer is
	// what retries it (and the retry budget is what eventually gives up).
	// Retransmissions (RelSeq already set) reuse their existing record;
	// acks are never sequenced or tracked.
	if n.rel != nil && !p.RelAck && p.RelSeq == 0 {
		s := n.nis[p.Src]
		s.relNext[p.Dst]++
		p.RelSeq = s.relNext[p.Dst]
		s.trackTx(p)
	}
	if n.faults != nil && (n.faults.RouterDead(n.home[p.Dst]) || n.faults.RouterPermanentlyDown(n.home[p.Src])) {
		// The destination's home router is down, or the source's own router
		// is permanently dead: the packet can never be delivered, so it is
		// accounted and dropped at the source instead of wedging a queue
		// behind an unreachable destination (or behind a router that will
		// never inject again).
		n.Stats.PacketsInjected++
		n.Stats.PacketsDropped++
		if tr := n.tracer; tr != nil {
			tr.Record(obs.Event{
				Cycle: int64(n.now), Kind: obs.Drop, Packet: p.ID, Seq: -1,
				Src: int32(p.Src), Dst: int32(p.Dst), Loc: int32(p.Src),
				In: -1, VC: -1, Out: -1,
			})
		}
		n.pool.RecyclePacket(p)
		return
	}
	n.nis[p.Src].enqueue(p)
	n.inFlight++
	n.Stats.PacketsInjected++
	n.relInflightDelta(p, 1, false)
}

// routerConfig returns the router.Config router r must be constructed
// against: its shard's when the parallel kernel is on, the network-global
// one otherwise.
func (n *Network) routerConfig(r int) *router.Config {
	for _, sh := range n.shards {
		if r >= sh.r0 && r < sh.r1 {
			return sh.rcfg
		}
	}
	return n.rcfg
}

// shardForNode returns the shard owning NI node, nil when sequential.
func (n *Network) shardForNode(node int) *shard {
	for _, sh := range n.shards {
		if node >= sh.n0 && node < sh.n1 {
			return sh
		}
	}
	return nil
}

// resolveFlit resolves one hop for a flit leaving output port out of router
// id: set lookahead routing for the next router and return the delivery and
// its latency. A flit switched during cycle t spends h.Latency cycles in
// link traversal (LT) and is processed by the next hop at t + h.Latency + 1,
// so LT is a real pipeline stage (paper Fig. 6: ... | ST | LT |).
func (n *Network) resolveFlit(id, out int, f *flit.Flit) (int, delivery) {
	h := n.topo.NextHop(id, out, f.Packet.Dst)
	if h.Router < 0 {
		f.NextOut = -1
		return h.Latency + 1, delivery{flit: f, router: -1, port: h.InPort}
	}
	f.NextOut = n.routeFor(h.Router, f.Packet.Dst, f.RouteClass)
	return h.Latency + 1, delivery{flit: f, router: h.Router, port: h.InPort}
}

// routeFor computes lookahead routing at router r: plain dimension-order
// when no fault schedule is configured, the fault-aware detour otherwise.
// Safe to call from shard workers — the fault state is mutated only by the
// main phase, strictly before shard phases run.
func (n *Network) routeFor(r, dst, class int) int {
	if n.faults == nil {
		if n.routeTab != nil {
			return int(n.routeTab[(class*len(n.routers)+r)*n.nNodes+dst])
		}
		return n.engine.Route(r, dst, class)
	}
	return n.engine.RouteAvoid(r, dst, class, n.wiredFn[r], n.deadFn[r])
}

// resolveCredit resolves a credit return to whatever feeds (id, in), with
// one cycle latency.
func (n *Network) resolveCredit(id, in, vc int) (int, delivery) {
	u := n.ups[id][in]
	switch u.router {
	case -2:
		panic(fmt.Sprintf("network: credit from unwired input port %d of router %d", in, id))
	case -1:
		return 1, delivery{router: -1, port: u.out, vc: vc}
	default:
		return 1, delivery{router: u.router, port: u.out, vc: vc}
	}
}

// sendFlit is the sequential-kernel router Send callback.
func (n *Network) sendFlit(id, out int, f *flit.Flit) {
	lat, d := n.resolveFlit(id, out, f)
	n.schedule(lat, d)
}

// sendCredit is the sequential-kernel router Credit callback.
func (n *Network) sendCredit(id, in, vc int) {
	lat, d := n.resolveCredit(id, in, vc)
	n.schedule(lat, d)
}

func (n *Network) schedule(latency int, d delivery) {
	if latency < 1 || latency >= len(n.ring) {
		panic(fmt.Sprintf("network: link latency %d outside ring", latency))
	}
	slot := (int(n.now) + latency) & n.ringMask
	n.ring[slot] = append(n.ring[slot], d)
}

// Step advances the simulation one cycle.
func (n *Network) Step(w Workload) {
	// Fault events land first, on the main goroutine, strictly before any
	// delivery or router work: the fault state is therefore constant for the
	// rest of the cycle, whichever kernel runs it.
	if n.faults != nil {
		n.applyFaults()
		n.watchdog()
		// Only a transient down holds the stale sweep: waiting out a
		// permanent fault would hold it forever, and traffic stranded by one
		// is exactly what the sweep must clear for the run to drain. On
		// closed schedules AnyTransientDown == AnyDown, bit-identically.
		if n.faults.AnyTransientDown() {
			n.staleHold = n.now
		} else if int(n.now)&(staleScanEvery-1) == 0 {
			n.staleScan()
		}
	}
	// Retransmit timers fire after fault state settles and before any
	// delivery or injection work, on the main goroutine in both kernels:
	// re-injected packets join their source queues for this cycle's
	// injection phase, wherever it runs.
	if n.rel != nil {
		n.relTick(w)
	}
	if n.shards != nil {
		n.stepSharded(w)
		return
	}
	// 1. Deliver flits and credits due now; every delivery (re)activates
	// its target router. A schedule always targets a future ring slot
	// (latency >= 1, < len(ring)), so the slot's backing array can be
	// reused once drained.
	slot := int(n.now) & n.ringMask
	due := n.ring[slot]
	for _, d := range due {
		switch {
		case d.flit != nil && d.router >= 0:
			if n.hopLimit > 0 && d.flit.Kind.IsHead() && d.flit.Packet.Hops > n.hopLimit {
				n.condemn(d.flit.Packet)
			}
			n.routers[d.router].Deliver(d.port, d.flit)
			n.active[d.router] = true
		case d.flit != nil:
			n.nis[d.port].receive(n.now, d.flit, w)
		case d.router >= 0:
			n.routers[d.router].DeliverCredit(d.port, d.vc)
			n.active[d.router] = true
		default:
			n.nis[d.port].credit(d.vc)
		}
	}
	n.ring[slot] = due[:0]
	// 2. Workload generates traffic; busy NIs inject (one flit per node per
	// cycle). An NI with no queued work is skipped — the check mirrors
	// inject's own early return, so skipping is behaviour-preserving.
	if w != nil {
		w.Tick(n.now, n)
	}
	for _, s := range n.nis {
		if s.cur == nil && len(s.queue) == 0 {
			continue
		}
		s.inject(n.now)
	}
	// 3. Routers tick: all of them under the naive reference kernel, only
	// the active set otherwise. Both orders are ascending router ID, so the
	// kernels are interchangeable cycle for cycle.
	if n.naive {
		for _, r := range n.routers {
			r.Tick(n.now)
			if n.CheckInvariants {
				r.CheckInvariants()
			}
		}
	} else {
		for id, r := range n.routers {
			if !n.active[id] {
				continue
			}
			if !r.Tick(n.now) {
				n.active[id] = false
			}
			if n.CheckInvariants {
				r.CheckInvariants()
			}
		}
	}
	// Hop-limit victims condemned during delivery are purged only now, when
	// every flit the cycle produced has reached the ring where the purge
	// sweep can find it.
	if len(n.victims) > 0 {
		n.purgeVictims()
	}
	n.now++
	n.Stats.MeasuredTo = n.now
	if n.series != nil {
		n.series.Tick(n.now, n.Stats)
	}
}

// stepSharded advances the simulation one cycle under the parallel kernel.
// It reproduces the sequential Step exactly:
//
//  1. NI-bound deliveries (ejection + NI credits) and the workload tick run
//     on the main goroutine, in due/node order, exactly as sequentially —
//     they touch the global stats, the packet pool and source queues.
//  2. Each shard then latches its routers' due deliveries (due order is
//     preserved per router, and a delivery only touches its target router),
//     injects from its NIs (ascending node order within the shard), and
//     ticks its active routers (ascending router order within the shard).
//     Shards are mutually independent: a router tick reads and writes only
//     that router's state plus shard-local buffers/meters, because every
//     cross-router effect is latched through the delivery ring.
//  3. The main goroutine merges the shard-buffered schedules — injections
//     in shard order (= ascending node order, the sequential phase-2 append
//     order) then router emissions in shard order (= ascending router
//     order, the sequential phase-3 append order) — and drains the shard
//     stats/energy meters in shard order. All merged quantities are sums,
//     and ring-append order is reproduced exactly, so the cycle is
//     bit-identical to the sequential kernel's.
//
// With worker goroutines live (inside Run/Drain) phase 2 runs concurrently;
// otherwise it runs inline in shard order, which is the same schedule
// serialized.
func (n *Network) stepSharded(w Workload) {
	slot := int(n.now) & n.ringMask
	due := n.ring[slot]
	for _, d := range due {
		if d.router >= 0 {
			continue // router-bound: latched by the owning shard below
		}
		if d.flit != nil {
			n.nis[d.port].receive(n.now, d.flit, w)
		} else {
			n.nis[d.port].credit(d.vc)
		}
	}
	if w != nil {
		w.Tick(n.now, n)
	}
	n.curDue = due
	if n.parRunning {
		for _, sh := range n.shards {
			sh.work <- true
		}
		for range n.shards {
			<-n.done
		}
	} else {
		for _, sh := range n.shards {
			n.shardPhase(sh)
		}
	}
	n.ring[slot] = due[:0]
	for _, sh := range n.shards {
		for _, p := range sh.pendInj {
			n.schedule(p.lat, p.d)
		}
		sh.pendInj = sh.pendInj[:0]
	}
	for _, sh := range n.shards {
		for _, p := range sh.pendTick {
			n.schedule(p.lat, p.d)
		}
		sh.pendTick = sh.pendTick[:0]
	}
	// Hop-limit victims the shards found while latching deliveries: condemn
	// in shard order (= ascending router order, matching the sequential due
	// loop's kills — purge effects commute, so within-slot order is enough)
	// and purge now that every shard-buffered send has been merged into the
	// ring. Purging may emit relay credits through shard Credit callbacks;
	// drain those immediately so they land in the same ring slot as under
	// the sequential kernel.
	for _, sh := range n.shards {
		for _, p := range sh.pendKill {
			n.condemn(p)
		}
		sh.pendKill = sh.pendKill[:0]
	}
	if len(n.victims) > 0 {
		n.purgeVictims()
		for _, sh := range n.shards {
			for _, p := range sh.pendTick {
				n.schedule(p.lat, p.d)
			}
			sh.pendTick = sh.pendTick[:0]
		}
	}
	n.Stats.MergeAll(n.shardStats)
	n.Energy.MergeAll(n.shardEnergy)
	n.now++
	n.Stats.MeasuredTo = n.now
	if n.series != nil {
		n.series.Tick(n.now, n.Stats)
	}
}

// shardPhase runs one shard's slice of a cycle: latch due deliveries into
// the shard's routers, inject from the shard's NIs, tick the shard's active
// routers. Called from worker goroutines when they are live, inline on the
// main goroutine otherwise — the two are bit-identical because shards touch
// disjoint state and all shared effects are buffered shard-locally.
func (n *Network) shardPhase(sh *shard) {
	for _, d := range n.curDue {
		if d.router < sh.r0 || d.router >= sh.r1 {
			continue
		}
		if d.flit != nil {
			if n.hopLimit > 0 && d.flit.Kind.IsHead() && d.flit.Packet.Hops > n.hopLimit {
				sh.pendKill = append(sh.pendKill, d.flit.Packet)
			}
			n.routers[d.router].Deliver(d.port, d.flit)
		} else {
			n.routers[d.router].DeliverCredit(d.port, d.vc)
		}
		n.active[d.router] = true
	}
	for node := sh.n0; node < sh.n1; node++ {
		s := n.nis[node]
		if s.cur == nil && len(s.queue) == 0 {
			continue
		}
		s.inject(n.now)
	}
	for id := sh.r0; id < sh.r1; id++ {
		if !n.active[id] {
			continue
		}
		if !n.routers[id].Tick(n.now) {
			n.active[id] = false
		}
		if n.CheckInvariants {
			n.routers[id].CheckInvariants()
		}
	}
}

// startWorkers brings up one goroutine per shard and returns the matching
// stop function (a no-op pair when the kernel is sequential or workers are
// already live, so nesting Run/Drain is safe). Workers are scoped to
// Run/Drain rather than to the Network so there is no Close obligation and
// an idle Network holds no goroutines; Step outside Run executes the same
// sharded phases inline.
func (n *Network) startWorkers() func() {
	if n.shards == nil || n.parRunning {
		return func() {}
	}
	n.parRunning = true
	for _, sh := range n.shards {
		go n.workerLoop(sh)
	}
	return n.stopWorkers
}

// stopWorkers shuts the worker goroutines down and waits for them to exit,
// so all their writes are visible to the caller.
func (n *Network) stopWorkers() {
	for _, sh := range n.shards {
		sh.work <- false
	}
	for range n.shards {
		<-n.done
	}
	n.parRunning = false
}

// workerLoop serves one shard: one phase per work token, exit on false.
func (n *Network) workerLoop(sh *shard) {
	for <-sh.work {
		n.shardPhase(sh)
		n.done <- struct{}{}
	}
	n.done <- struct{}{}
}

// applyFaults replays the fault events due this cycle. The fast path — no
// event due — is a single comparison and allocates nothing; event cycles may
// allocate freely (fault storms are rare by construction). Any down event
// triggers a storm scan tearing down pseudo-circuits and packets stranded on
// dead resources. Every event re-activates all routers: an up event can
// unblock flits parked behind a dead link, and the storm scan mutates router
// state directly.
func (n *Network) applyFaults() {
	evs := n.faults.Take(int64(n.now))
	if len(evs) == 0 {
		return
	}
	anyDown := false
	for _, e := range evs {
		n.faults.Apply(e)
		n.Stats.FaultEvents++
		if e.Kind.IsDown() {
			anyDown = true
		}
		if tr := n.tracer; tr != nil {
			kind, out := obs.RouterUp, int32(-1)
			switch e.Kind {
			case fault.LinkDown:
				kind, out = obs.LinkDown, int32(e.Port)
			case fault.LinkUp:
				kind, out = obs.LinkUp, int32(e.Port)
			case fault.RouterDown:
				kind = obs.RouterDown
			}
			tr.Record(obs.Event{
				Cycle: int64(n.now), Kind: kind, Packet: 0, Seq: -1,
				Src: -1, Dst: -1, Loc: int32(e.Router), In: -1, VC: -1, Out: out,
			})
		}
	}
	for i := range n.active {
		n.active[i] = true
	}
	if anyDown {
		n.stormScan()
	}
}

// watchdog detects and breaks total standstill. Fault detours do not obey
// the routing algorithm's turn restrictions, so a storm can leave packets in
// a buffer-dependency cycle — each waiting for a credit only another member
// of the cycle can release. Such a wedge makes no progress at all, so the
// hop limit (which fires on delivery) never sees it. The watchdog watches
// global movement counters from the main phase: stallLimit consecutive
// cycles with flits in flight, no transient fault currently down (while one
// is down, parking in front of it is legitimate waiting; a permanent fault
// will never release anyone, so it does not pause the watchdog) and not a
// single buffer
// write, link traversal, delivery or drop anywhere condemns the whole
// fabric population, accounted as fault drops. The counters are merged
// identically by every kernel, so the watchdog fires on the same cycle at
// every worker count. A wedge that forms while other traffic still flows is
// only detected once that traffic drains — the bound is eventual
// termination, not bounded staleness.
func (n *Network) watchdog() {
	moved := n.Energy.Writes + n.Energy.Traversals +
		n.Stats.PacketsDelivered + n.Stats.PacketsDropped
	if n.inFlight == 0 || n.faults.AnyTransientDown() || moved != n.lastMove {
		n.lastMove = moved
		n.stallRun = 0
		return
	}
	if n.stallRun++; n.stallRun < n.stallLimit {
		return
	}
	n.breakWedge()
	n.stallRun = 0
}

// staleScanEvery is the stale-sweep period: rare enough that the sweep's
// O(routers × VCs) cost amortizes to noise, frequent enough that the
// effective residence bound stays close to staleLimit.
const staleScanEvery = 64

// staleScan condemns every router-resident packet whose network residence
// (measured from NetStart, the cycle its header left the source NI) exceeds
// staleLimit, plus any packet mid-injection at an NI whose header is that
// old (it is already in the fabric, possibly inside a wedge). Packets still
// waiting whole in a source queue are left alone — they hold no network
// resources, however long they have existed. The sweep is held while any
// fault is down and for staleLimit cycles after the last recovery
// (staleHold): packets parked in front of a dead resource are waiting
// legitimately, and once released they keep their original NetStart, so
// without the grace period recovery would be followed by an immediate
// massacre of exactly the packets the reroute policy just saved. Runs on
// the kernel's main phase, so the sweep order (ascending router, then node)
// is the deterministic condemnation order.
func (n *Network) staleScan() {
	if n.staleHold+n.staleLimit > n.now {
		return
	}
	cutoff := n.now - n.staleLimit
	for _, node := range n.routers {
		node.(faultNode).FaultStale(cutoff, n.condemnFn)
	}
	for _, s := range n.nis {
		if s.cur != nil && s.idx > 0 && s.cur[s.idx].Packet.NetStart < cutoff {
			n.condemn(s.cur[s.idx].Packet)
		}
	}
	if len(n.victims) > 0 {
		n.purgeVictims()
		for i := range n.active {
			n.active[i] = true
		}
	}
}

// breakWedge purges every packet resident in the fabric: router buffers
// (via the routers' fault-teardown surface, with every router treated as
// dead), the delivery ring, and any packet mid-injection at an NI. Queued
// but uninjected packets survive — once the fabric is empty they inject and
// route normally. Runs on the main phase only.
func (n *Network) breakWedge() {
	never := func(int) bool { return false }
	for _, node := range n.routers {
		fc := router.FaultContext{
			RouterDead: true,
			LinkDead:   never,
			DstDead:    never,
			Kill:       n.condemn,
			PCTerm: func() {
				n.Stats.PCTerminated++
				n.Stats.PCFaultTerminated++
			},
		}
		node.(faultNode).FaultScan(&fc)
	}
	for _, due := range n.ring {
		for _, d := range due {
			if d.flit != nil {
				n.condemn(d.flit.Packet)
			}
		}
	}
	for _, s := range n.nis {
		if s.cur != nil {
			n.condemn(s.cur[s.idx].Packet)
		}
	}
	n.purgeVictims()
	for i := range n.active {
		n.active[i] = true
	}
}

// stormScan runs after down events land: it sweeps routers, the delivery
// ring and the NIs for traffic stranded on dead resources, tears down
// affected pseudo-circuits, and purges every condemned packet before the
// cycle's deliveries are processed. It runs on the kernel's main phase, so
// it may touch any state; determinism needs only a fixed sweep order, which
// ascending router/slot/node order provides.
func (n *Network) stormScan() {
	st := n.faults
	salvage := st.Policy() == fault.Reroute
	for r, node := range n.routers {
		r := r
		fc := router.FaultContext{
			RouterDead: st.RouterDead(r),
			LinkDead:   func(out int) bool { return st.LinkDead(r, out) },
			DstDead:    func(dst int) bool { return st.RouterDead(n.home[dst]) },
			Salvage:    salvage,
			Reroute:    func(dst, class int) int { return n.routeFor(r, dst, class) },
			Kill:       n.condemn,
			Salvaged:   func(p *flit.Packet) { n.Stats.PacketsRerouted++ },
			PCTerm: func() {
				n.Stats.PCTerminated++
				n.Stats.PCFaultTerminated++
			},
		}
		node.(faultNode).FaultScan(&fc)
	}
	// In-flight flits: a packet dies when one of its flits is mid-link on a
	// dead feeder, when its destination's home router died, or when it is an
	// express flit whose committed continuation link died (express flits
	// cannot buffer at the intermediate router they bypass).
	for _, due := range n.ring {
		for _, d := range due {
			f := d.flit
			if f == nil {
				continue
			}
			if d.router < 0 {
				if st.RouterDead(n.nis[d.port].router) {
					n.condemn(f.Packet)
				}
				continue
			}
			u := n.ups[d.router][d.port]
			switch {
			case u.router >= 0 && st.LinkDead(u.router, u.out):
				n.condemn(f.Packet)
			case u.router == -1 && st.RouterDead(d.router):
				n.condemn(f.Packet)
			case st.RouterDead(n.home[f.Packet.Dst]):
				n.condemn(f.Packet)
			case f.ExpressHops > 0 && st.LinkDead(d.router, f.NextOut):
				n.condemn(f.Packet)
			}
		}
	}
	// Source queues: packets bound for a dead home router can never deliver.
	// Packets queued at a transiently dead source router are held, not
	// killed — their injection is gated until the router recovers. A
	// permanently dead source router never recovers, so everything queued
	// there is condemned (reliability records, if any, keep retrying until
	// their budgets give the packets up as DeliveryFailed).
	for _, s := range n.nis {
		srcDead := st.RouterPermanentlyDown(s.router)
		if s.cur != nil {
			if p := s.cur[s.idx].Packet; srcDead || st.RouterDead(n.home[p.Dst]) {
				n.condemn(p)
			}
		}
		for _, p := range s.queue {
			if srcDead || st.RouterDead(n.home[p.Dst]) {
				n.condemn(p)
			}
		}
	}
	n.purgeVictims()
}

// condemn marks a packet for purging, once; repeated reports (a packet can
// trip several teardown rules in one storm) are deduplicated by the Dropped
// flag, which pool recycling clears.
func (n *Network) condemn(p *flit.Packet) {
	if p == nil || p.Dropped {
		return
	}
	p.Dropped = true
	n.victims = append(n.victims, p)
}

// purgeVictims purges every condemned packet in condemnation order.
func (n *Network) purgeVictims() {
	for _, p := range n.victims {
		n.purgePacket(p)
	}
	n.victims = n.victims[:0]
}

// purgePacket removes every trace of a condemned packet: its in-flight ring
// deliveries, its buffered flits and VC allocations inside routers, its
// injection state at the source NI, and its reassembly state at the
// destination. Credits are bookkeeping, not payload — every removed flit
// that debited a downstream buffer slot returns exactly one credit, so a
// fault can never leak buffer space and the network cannot wedge.
func (n *Network) purgePacket(p *flit.Packet) {
	for slot, due := range n.ring {
		kept := due[:0]
		for _, d := range due {
			if d.flit == nil || d.flit.Packet != p {
				kept = append(kept, d)
				continue
			}
			f := d.flit
			if d.router >= 0 {
				// The flit was heading into a buffer slot its sender already
				// debited; hand the credit back. Plain credit increments
				// commute, but an EVC router may *relay* the credit, which
				// schedules a fresh ring delivery — and an append into the
				// slot this sweep is rebuilding would be lost when the slot
				// is reassigned below. Defer every router credit until the
				// sweep is done so relays land in fully-rebuilt slots.
				u := n.ups[d.router][d.port]
				if u.router >= 0 {
					n.credRet = append(n.credRet, credRet{router: u.router, out: u.out, vc: f.VC})
				} else {
					n.nis[u.out].credit(f.VC)
				}
			}
			n.dropFlit(f)
		}
		n.ring[slot] = kept
	}
	for _, c := range n.credRet {
		n.routers[c.router].DeliverCredit(c.out, c.vc)
	}
	n.credRet = n.credRet[:0]
	for _, node := range n.routers {
		node.(faultNode).FaultPurge(p, n.dropFlit)
	}
	// Source NI: unsent flits, the injection VC, and the queue entry.
	src := n.nis[p.Src]
	if src.cur != nil && src.cur[src.idx].Packet == p {
		for i := src.idx; i < len(src.cur); i++ {
			n.dropFlit(src.cur[i])
		}
		if src.outVC >= 0 {
			src.busy[src.outVC] = false
		}
		src.cur = nil
		src.outVC = -1
	}
	for i, q := range src.queue {
		if q == p {
			src.queue = append(src.queue[:i], src.queue[i+1:]...)
			break
		}
	}
	delete(n.nis[p.Dst].rx, p.ID)
	n.inFlight--
	n.relInflightDelta(p, -1, false)
	n.Stats.PacketsDropped++
	if tr := n.tracer; tr != nil {
		tr.Record(obs.Event{
			Cycle: int64(n.now), Kind: obs.Drop, Packet: p.ID, Seq: -1,
			Src: int32(p.Src), Dst: int32(p.Dst), Loc: int32(p.Src),
			In: -1, VC: -1, Out: -1,
		})
	}
	n.pool.RecyclePacket(p)
}

// dropFlit accounts and recycles one purged flit (to its source node's pool,
// like normal ejection, so per-shard free lists stay balanced).
func (n *Network) dropFlit(f *flit.Flit) {
	n.Stats.FlitsDropped++
	n.nis[f.Packet.Src].fpool.RecycleFlit(f)
}

// Run advances the simulation for cycles cycles.
func (n *Network) Run(w Workload, cycles int) {
	stop := n.startWorkers()
	defer stop()
	for i := 0; i < cycles; i++ {
		n.Step(w)
	}
}

// ResetStats begins the measurement phase: statistics and energy counters
// are cleared; packets injected before this instant no longer count toward
// latency averages. Per-router registry counters are reset at the same
// instant so they cover exactly the global counters' window, and the time
// series closes its open warmup window and rebases against the zeroed
// counters.
func (n *Network) ResetStats() {
	if n.series != nil {
		n.series.Rebase(n.now, n.Stats)
	}
	n.Stats.Reset(n.now)
	n.registry.Reset()
	n.Energy.Writes, n.Energy.Reads, n.Energy.Traversals, n.Energy.Arbitrations = 0, 0, 0, 0
}

// Drain runs until the workload is done, no packets remain in flight, and —
// with reliable delivery on — every sender record has been acknowledged or
// abandoned, up to maxCycles. It returns true if the network drained. The
// retry budget bounds how long a record can stay unresolved, so faulted
// reliable runs terminate even under permanent (never-repaired) failures.
func (n *Network) Drain(w Workload, maxCycles int) bool {
	stop := n.startWorkers()
	defer stop()
	for i := 0; i < maxCycles; i++ {
		if (w == nil || w.Done()) && n.inFlight == 0 && n.relPending == 0 {
			return true
		}
		n.Step(w)
	}
	return (w == nil || w.Done()) && n.inFlight == 0 && n.relPending == 0
}

// Quiescent reports whether all routers and NIs are empty.
func (n *Network) Quiescent() bool {
	if n.inFlight != 0 {
		return false
	}
	for _, r := range n.routers {
		if !r.Quiescent() {
			return false
		}
	}
	return true
}

// RNG exposes the network's deterministic random stream (workloads derive
// sub-streams from it).
func (n *Network) RNG() *sim.RNG { return n.rng }

// Registry returns the per-router counter registry, nil when that probe is
// off.
func (n *Network) Registry() *stats.Registry { return n.registry }

// Series returns the cycle-windowed time series, nil when that probe is off.
func (n *Network) Series() *stats.Series { return n.series }

// Tracer returns the flit-lifecycle tracer, nil when tracing is off.
func (n *Network) Tracer() *obs.Tracer { return n.tracer }

// Router returns node r (testing hook); for standard networks it is a
// *router.Router.
func (n *Network) Router(r int) Node { return n.routers[r] }

// LinkLoad reports one output channel's traffic over the simulation so far.
type LinkLoad struct {
	Router      int
	Out         int
	Flits       uint64
	Utilization float64 // flits per cycle on this channel
	Ejection    bool
}

// LinkLoads returns per-channel utilization, most loaded first — a
// diagnostic for spotting hotspots and routing imbalance (e.g. specjbb's
// over-utilized home banks, paper §6.A). Router implementations without
// per-port counters (the EVC comparison router) are skipped.
func (n *Network) LinkLoads() []LinkLoad {
	type sender interface{ OutputSends() []uint64 }
	var out []LinkLoad
	for rid, node := range n.routers {
		s, ok := node.(sender)
		if !ok {
			continue
		}
		for o, flits := range s.OutputSends() {
			if flits == 0 {
				continue
			}
			ll := LinkLoad{Router: rid, Out: o, Flits: flits}
			if n.now > 0 {
				ll.Utilization = float64(flits) / float64(n.now)
			}
			ll.Ejection = isEjectionPort(n.topo, rid, o)
			out = append(out, ll)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flits > out[j].Flits })
	return out
}

// isEjectionPort reports whether output o of router r is a terminal port.
func isEjectionPort(t topology.Topology, r, o int) bool {
	for slot := 0; slot < t.Concentration(); slot++ {
		node := r*t.Concentration() + slot
		if node >= t.Nodes() {
			break
		}
		rr, _, outP := t.NodeRouter(node)
		if rr == r && outP == o {
			return true
		}
	}
	return false
}

// QueuedPackets returns the number of packets waiting in source queues
// (testing/diagnostics hook).
func (n *Network) QueuedPackets() int {
	q := 0
	for _, s := range n.nis {
		q += len(s.queue)
		if s.cur != nil {
			q++
		}
	}
	return q
}
