// Package network assembles routers into a complete on-chip network: it
// wires the topology's port graph, implements the network interfaces (NIs)
// that packetize, inject, and reassemble messages, carries flits and credits
// over links with wire-length-proportional latency, and drives the global
// cycle loop.
//
// The simulator is fully deterministic for a given seed, and all
// cross-router effects are latched with at least one cycle of latency, so
// routers tick in a fixed order without affecting results.
//
// The cycle kernel is work-proportional: an active-set scheduler visits only
// routers that hold state or received a flit/credit this cycle (idle routers
// are provably at a fixed point, so skipping their ticks is bit-identical to
// the naive all-routers loop — Config.Naive selects that loop for the
// determinism harness), and a per-network flit/packet free list recycles
// delivered flits so the steady-state tick path performs no allocations.
package network

import (
	"fmt"
	"sort"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/energy"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/obs"
	"pseudocircuit/internal/router"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
)

// Workload generates the network's traffic. Open-loop (synthetic, trace)
// workloads only implement Tick; closed-loop workloads (the CMP substrate)
// also react to deliveries.
type Workload interface {
	// Tick is called once per cycle; the workload enqueues new packets via
	// inj (packets carry their source node in Src).
	Tick(now sim.Cycle, inj Injector)
	// Deliver notifies the workload that a packet reached its destination.
	Deliver(now sim.Cycle, p *flit.Packet)
	// Done reports that the workload will generate no further packets, so a
	// run may terminate once the network drains. Open-loop sources return
	// false.
	Done() bool
}

// Injector accepts new packets into source queues.
type Injector interface {
	// Inject enqueues p at its source node's NI. The network assigns the
	// packet ID and timestamps.
	Inject(p *flit.Packet)
}

// PacketSource is implemented by injectors that hand out pooled packets.
// Packets obtained this way are recycled by the network after
// Workload.Deliver returns, so workloads must not retain them.
type PacketSource interface {
	NewPacket() *flit.Packet
}

// AcquirePacket returns a zeroed packet to fill and pass to inj.Inject:
// pooled (allocation-free in steady state) when the injector supports it,
// freshly allocated otherwise.
func AcquirePacket(inj Injector) *flit.Packet {
	if ps, ok := inj.(PacketSource); ok {
		return ps.NewPacket()
	}
	return &flit.Packet{}
}

// Node is the router-side interface the network drives; implemented by the
// standard (pseudo-circuit-capable) router and by the EVC comparison router.
type Node interface {
	// Tick advances the router one cycle and reports whether it must be
	// ticked again next cycle. A false return promises the router is at a
	// fixed point: absent new deliveries, further ticks would neither change
	// its state nor touch any statistics or energy counter, so the network's
	// active-set scheduler may skip it until the next Deliver/DeliverCredit.
	Tick(now sim.Cycle) bool
	Deliver(in int, f *flit.Flit)
	DeliverCredit(out, vc int)
	MarkEjection(out int)
	Quiescent() bool
	CheckInvariants()
}

// NodeFactory builds router id with the given radix; rcfg carries the shared
// router configuration (callbacks, meters). A nil factory builds the
// standard router.
type NodeFactory func(id, inPorts, outPorts int, rcfg *router.Config) Node

// Config describes one simulated network.
type Config struct {
	Topo      topology.Topology
	Algorithm routing.Algorithm
	Policy    vcalloc.Policy
	StaticKey vcalloc.StaticKey
	NumVCs    int // per input port (paper: 4)
	BufDepth  int // flits per VC (paper: 4)
	Opts      core.Options
	Seed      uint64
	// Factory overrides the router implementation (EVC comparison, §7.B).
	Factory NodeFactory
	// NIVCLimit restricts injection to VCs [0, NIVCLimit) when positive;
	// the EVC configuration reserves the upper VCs for express paths.
	NIVCLimit int
	// Pool supplies the flit/packet free list; nil builds a private one.
	// Sharing a pool across sequentially executed networks (one experiment
	// worker) carries warmed free lists between runs. A pool must never be
	// shared by concurrently running networks.
	Pool *flit.Pool
	// Naive disables the active-set scheduler: every router is ticked every
	// cycle, as the seed simulator did. Results are bit-identical either
	// way (the determinism harness asserts this); the naive kernel exists
	// as the reference for that comparison.
	Naive bool

	// Observability probes, all opt-in and observation-only: enabling any of
	// them cannot change simulation results, and leaving them nil (the
	// default) costs one predictable branch per probe site and zero
	// allocations.
	//
	// Registry collects per-router/per-port counters (standard routers only;
	// the EVC comparison router does not attach rows). Series collects
	// cycle-windowed samples of the global counters. Tracer records flit
	// lifecycle events into a bounded ring.
	Registry *stats.Registry
	Series   *stats.Series
	Tracer   *obs.Tracer
}

// DefaultConfig returns the paper's network configuration (§5) on the given
// topology: 4 VCs per input port, 4-flit buffers, XY routing, dynamic VA,
// baseline router.
func DefaultConfig(t topology.Topology) Config {
	return Config{
		Topo:      t,
		Algorithm: routing.XY,
		Policy:    vcalloc.Dynamic,
		NumVCs:    4,
		BufDepth:  4,
		Opts:      core.DefaultOptions(core.Baseline),
		Seed:      1,
	}
}

// upstream identifies what feeds a router input port.
type upstream struct {
	router int // -1 when fed by an NI
	out    int // output port, or node id when router == -1
}

// delivery is an in-flight flit or credit.
type delivery struct {
	flit *flit.Flit
	// Flit target: router/port, or NI node when router == -1.
	router, port int
	// Credit target (when flit == nil): router out-port VC, or NI when
	// router == -1 (port = node, vc meaningful).
	vc int
}

// Network is a runnable simulated network.
type Network struct {
	cfg     Config
	topo    topology.Topology
	engine  *routing.Engine
	alloc   *vcalloc.Allocator
	niAlloc *vcalloc.Allocator
	routers []Node
	nis     []*ni
	ups     [][]upstream // [router][inPort]
	rcfg    *router.Config

	Stats  *stats.Network
	Energy *energy.Meter

	registry *stats.Registry
	series   *stats.Series
	tracer   *obs.Tracer

	now      sim.Cycle
	ring     [][]delivery // future deliveries, indexed by cycle % len(ring)
	rng      *sim.RNG
	nextID   uint64
	inFlight int // packets injected but not yet fully ejected

	pool *flit.Pool
	// active marks routers the scheduler must tick this cycle: set on any
	// flit/credit delivery, cleared when the router's Tick reports it
	// reached a fixed point. naive bypasses the active set entirely.
	active []bool
	naive  bool

	// CheckInvariants enables per-cycle router invariant checking (tests).
	CheckInvariants bool
}

// New builds a network from cfg.
func New(cfg Config) *Network {
	if cfg.NumVCs <= 0 || cfg.BufDepth <= 0 {
		panic("network: NumVCs and BufDepth must be positive")
	}
	t := cfg.Topo
	engine := routing.New(cfg.Algorithm, t)
	alloc := vcalloc.New(cfg.Policy, cfg.NumVCs, engine.NumClasses(), t.Nodes()).
		WithStaticKey(cfg.StaticKey)
	niAlloc := alloc
	if cfg.NIVCLimit > 0 {
		if engine.NumClasses() != 1 {
			panic("network: NIVCLimit requires a single-class routing algorithm")
		}
		niAlloc = vcalloc.New(cfg.Policy, cfg.NIVCLimit, 1, t.Nodes()).
			WithStaticKey(cfg.StaticKey)
	}

	pool := cfg.Pool
	if pool == nil {
		pool = flit.NewPool()
	}
	n := &Network{
		cfg:      cfg,
		topo:     t,
		engine:   engine,
		alloc:    alloc,
		niAlloc:  niAlloc,
		Stats:    &stats.Network{},
		Energy:   energy.NewMeter(),
		rng:      sim.NewRNG(cfg.Seed),
		pool:     pool,
		active:   make([]bool, t.Routers()),
		naive:    cfg.Naive,
		registry: cfg.Registry,
		series:   cfg.Series,
		tracer:   cfg.Tracer,
	}

	// Ring sized for the largest link latency plus slack.
	maxLat := 1
	for r := 0; r < t.Routers(); r++ {
		for o := 0; o < t.OutPorts(r); o++ {
			for d := 0; d < t.Nodes(); d++ {
				if !reachable(t, r, o, d) {
					continue
				}
				if h := t.NextHop(r, o, d); h.Latency > maxLat {
					maxLat = h.Latency
				}
			}
		}
	}
	n.ring = make([][]delivery, maxLat+3)

	n.rcfg = &router.Config{
		NumVCs:   cfg.NumVCs,
		BufDepth: cfg.BufDepth,
		Opts:     cfg.Opts,
		Alloc:    alloc,
		Energy:   n.Energy,
		Stats:    n.Stats,
		Send:     n.sendFlit,
		Credit:   n.sendCredit,
		Reg:      cfg.Registry,
		Trace:    cfg.Tracer,
	}
	factory := cfg.Factory
	if factory == nil {
		factory = func(id, in, out int, rcfg *router.Config) Node {
			return router.New(id, in, out, rcfg)
		}
	}
	n.routers = make([]Node, t.Routers())
	for r := range n.routers {
		n.routers[r] = factory(r, t.InPorts(r), t.OutPorts(r), n.rcfg)
	}
	n.nis = make([]*ni, t.Nodes())
	n.ups = make([][]upstream, t.Routers())
	for r := range n.ups {
		n.ups[r] = make([]upstream, t.InPorts(r))
		for i := range n.ups[r] {
			n.ups[r][i] = upstream{router: -2}
		}
	}
	// Wire router-to-router upstream links.
	for r := 0; r < t.Routers(); r++ {
		for o := 0; o < t.OutPorts(r); o++ {
			for d := 0; d < t.Nodes(); d++ {
				if !reachable(t, r, o, d) {
					continue
				}
				h := t.NextHop(r, o, d)
				if h.Router < 0 {
					continue
				}
				u := upstream{router: r, out: o}
				cur := n.ups[h.Router][h.InPort]
				if cur.router != -2 && cur != u {
					panic(fmt.Sprintf("network: input port %d of router %d fed by two outputs", h.InPort, h.Router))
				}
				n.ups[h.Router][h.InPort] = u
			}
		}
	}
	// Wire terminals.
	for node := 0; node < t.Nodes(); node++ {
		r, inP, outP := t.NodeRouter(node)
		n.routers[r].MarkEjection(outP)
		n.ups[r][inP] = upstream{router: -1, out: node}
		n.nis[node] = newNI(n, node, r, inP)
	}
	return n
}

// reachable reports whether output port o at router r is a meaningful exit
// toward destination d — i.e. the port dimension-order routing could use.
// It is used only during wiring/sizing to avoid asking NextHop nonsense
// questions on multidrop topologies.
func reachable(t topology.Topology, r, o, d int) bool {
	for class := 0; class < 2; class++ {
		rt := t.Route(r, d, class)
		if rt == o {
			return true
		}
		// Also walk one step further for the turn port: from the drop/turn
		// router the other dimension's port matters; wiring only needs
		// every (router, port) pair to be exercised by some destination,
		// which Route over all (r, d, class) provides.
	}
	return false
}

// Now returns the current simulation cycle.
func (n *Network) Now() sim.Cycle { return n.now }

// Nodes returns the terminal count.
func (n *Network) Nodes() int { return n.topo.Nodes() }

// Topology returns the simulated topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// InFlight returns the number of injected-but-undelivered packets.
func (n *Network) InFlight() int { return n.inFlight }

// NewPacket implements PacketSource: it returns a pooled packet that the
// network will recycle after the delivering Workload.Deliver returns.
func (n *Network) NewPacket() *flit.Packet { return n.pool.NewPacket() }

// Inject implements Injector: it enqueues p at its source NI.
func (n *Network) Inject(p *flit.Packet) {
	if p.Src < 0 || p.Src >= len(n.nis) || p.Dst < 0 || p.Dst >= len(n.nis) {
		panic(fmt.Sprintf("network: packet %d->%d out of range", p.Src, p.Dst))
	}
	if p.Src == p.Dst {
		panic("network: self-addressed packet")
	}
	if p.Size <= 0 {
		panic("network: packet size must be positive")
	}
	p.ID = n.nextID
	n.nextID++
	p.Injected = n.now
	n.nis[p.Src].enqueue(p)
	n.inFlight++
	n.Stats.PacketsInjected++
}

// sendFlit is the router Send callback: resolve the hop, set lookahead
// routing for the next router, and schedule delivery. A flit switched
// during cycle t spends h.Latency cycles in link traversal (LT) and is
// processed by the next hop at t + h.Latency + 1, so LT is a real pipeline
// stage (paper Fig. 6: ... | ST | LT |).
func (n *Network) sendFlit(id, out int, f *flit.Flit) {
	h := n.topo.NextHop(id, out, f.Packet.Dst)
	if h.Router < 0 {
		f.NextOut = -1
		n.schedule(h.Latency+1, delivery{flit: f, router: -1, port: h.InPort})
		return
	}
	f.NextOut = n.engine.Route(h.Router, f.Packet.Dst, f.RouteClass)
	n.schedule(h.Latency+1, delivery{flit: f, router: h.Router, port: h.InPort})
}

// sendCredit is the router Credit callback: return a credit to whatever
// feeds (id, in), with one cycle latency.
func (n *Network) sendCredit(id, in, vc int) {
	u := n.ups[id][in]
	switch u.router {
	case -2:
		panic(fmt.Sprintf("network: credit from unwired input port %d of router %d", in, id))
	case -1:
		n.schedule(1, delivery{router: -1, port: u.out, vc: vc})
	default:
		n.schedule(1, delivery{router: u.router, port: u.out, vc: vc})
	}
}

func (n *Network) schedule(latency int, d delivery) {
	if latency < 1 || latency >= len(n.ring) {
		panic(fmt.Sprintf("network: link latency %d outside ring", latency))
	}
	slot := (int(n.now) + latency) % len(n.ring)
	n.ring[slot] = append(n.ring[slot], d)
}

// Step advances the simulation one cycle.
func (n *Network) Step(w Workload) {
	// 1. Deliver flits and credits due now; every delivery (re)activates
	// its target router. A schedule always targets a future ring slot
	// (latency >= 1, < len(ring)), so the slot's backing array can be
	// reused once drained.
	slot := int(n.now) % len(n.ring)
	due := n.ring[slot]
	for _, d := range due {
		switch {
		case d.flit != nil && d.router >= 0:
			n.routers[d.router].Deliver(d.port, d.flit)
			n.active[d.router] = true
		case d.flit != nil:
			n.nis[d.port].receive(n.now, d.flit, w)
		case d.router >= 0:
			n.routers[d.router].DeliverCredit(d.port, d.vc)
			n.active[d.router] = true
		default:
			n.nis[d.port].credit(d.vc)
		}
	}
	n.ring[slot] = due[:0]
	// 2. Workload generates traffic; busy NIs inject (one flit per node per
	// cycle). An NI with no queued work is skipped — the check mirrors
	// inject's own early return, so skipping is behaviour-preserving.
	if w != nil {
		w.Tick(n.now, n)
	}
	for _, s := range n.nis {
		if s.cur == nil && len(s.queue) == 0 {
			continue
		}
		s.inject(n.now)
	}
	// 3. Routers tick: all of them under the naive reference kernel, only
	// the active set otherwise. Both orders are ascending router ID, so the
	// kernels are interchangeable cycle for cycle.
	if n.naive {
		for _, r := range n.routers {
			r.Tick(n.now)
			if n.CheckInvariants {
				r.CheckInvariants()
			}
		}
	} else {
		for id, r := range n.routers {
			if !n.active[id] {
				continue
			}
			if !r.Tick(n.now) {
				n.active[id] = false
			}
			if n.CheckInvariants {
				r.CheckInvariants()
			}
		}
	}
	n.now++
	n.Stats.MeasuredTo = n.now
	if n.series != nil {
		n.series.Tick(n.now, n.Stats)
	}
}

// Run advances the simulation for cycles cycles.
func (n *Network) Run(w Workload, cycles int) {
	for i := 0; i < cycles; i++ {
		n.Step(w)
	}
}

// ResetStats begins the measurement phase: statistics and energy counters
// are cleared; packets injected before this instant no longer count toward
// latency averages. Per-router registry counters are reset at the same
// instant so they cover exactly the global counters' window, and the time
// series closes its open warmup window and rebases against the zeroed
// counters.
func (n *Network) ResetStats() {
	if n.series != nil {
		n.series.Rebase(n.now, n.Stats)
	}
	n.Stats.Reset(n.now)
	n.registry.Reset()
	n.Energy.Writes, n.Energy.Reads, n.Energy.Traversals, n.Energy.Arbitrations = 0, 0, 0, 0
}

// Drain runs until the workload is done and no packets remain in flight, up
// to maxCycles. It returns true if the network drained.
func (n *Network) Drain(w Workload, maxCycles int) bool {
	for i := 0; i < maxCycles; i++ {
		if (w == nil || w.Done()) && n.inFlight == 0 {
			return true
		}
		n.Step(w)
	}
	return (w == nil || w.Done()) && n.inFlight == 0
}

// Quiescent reports whether all routers and NIs are empty.
func (n *Network) Quiescent() bool {
	if n.inFlight != 0 {
		return false
	}
	for _, r := range n.routers {
		if !r.Quiescent() {
			return false
		}
	}
	return true
}

// RNG exposes the network's deterministic random stream (workloads derive
// sub-streams from it).
func (n *Network) RNG() *sim.RNG { return n.rng }

// Registry returns the per-router counter registry, nil when that probe is
// off.
func (n *Network) Registry() *stats.Registry { return n.registry }

// Series returns the cycle-windowed time series, nil when that probe is off.
func (n *Network) Series() *stats.Series { return n.series }

// Tracer returns the flit-lifecycle tracer, nil when tracing is off.
func (n *Network) Tracer() *obs.Tracer { return n.tracer }

// Router returns node r (testing hook); for standard networks it is a
// *router.Router.
func (n *Network) Router(r int) Node { return n.routers[r] }

// LinkLoad reports one output channel's traffic over the simulation so far.
type LinkLoad struct {
	Router      int
	Out         int
	Flits       uint64
	Utilization float64 // flits per cycle on this channel
	Ejection    bool
}

// LinkLoads returns per-channel utilization, most loaded first — a
// diagnostic for spotting hotspots and routing imbalance (e.g. specjbb's
// over-utilized home banks, paper §6.A). Router implementations without
// per-port counters (the EVC comparison router) are skipped.
func (n *Network) LinkLoads() []LinkLoad {
	type sender interface{ OutputSends() []uint64 }
	var out []LinkLoad
	for rid, node := range n.routers {
		s, ok := node.(sender)
		if !ok {
			continue
		}
		for o, flits := range s.OutputSends() {
			if flits == 0 {
				continue
			}
			ll := LinkLoad{Router: rid, Out: o, Flits: flits}
			if n.now > 0 {
				ll.Utilization = float64(flits) / float64(n.now)
			}
			ll.Ejection = isEjectionPort(n.topo, rid, o)
			out = append(out, ll)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flits > out[j].Flits })
	return out
}

// isEjectionPort reports whether output o of router r is a terminal port.
func isEjectionPort(t topology.Topology, r, o int) bool {
	for slot := 0; slot < t.Concentration(); slot++ {
		node := r*t.Concentration() + slot
		if node >= t.Nodes() {
			break
		}
		rr, _, outP := t.NodeRouter(node)
		if rr == r && outP == o {
			return true
		}
	}
	return false
}

// QueuedPackets returns the number of packets waiting in source queues
// (testing/diagnostics hook).
func (n *Network) QueuedPackets() int {
	q := 0
	for _, s := range n.nis {
		q += len(s.queue)
		if s.cur != nil {
			q++
		}
	}
	return q
}
