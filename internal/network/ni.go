package network

import (
	"fmt"

	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/obs"
	"pseudocircuit/internal/sim"
)

// ni is a network interface: the per-terminal endpoint that queues packets,
// splits them into flits, injects at link bandwidth (one flit per cycle)
// under credit flow control, and reassembles arriving flits into packets
// (paper §3.A).
type ni struct {
	net    *Network
	node   int
	router int
	inPort int

	queue  []*flit.Packet
	cur    []*flit.Flit // flits of the packet being injected
	curBuf []*flit.Flit // backing storage for cur, reused across packets
	idx    int
	class  int // routing class of the current packet
	outVC  int // VC allocated for the current packet, -1 while VA pending

	busy    []bool // our view of router input VC occupancy
	credits []int

	rng     *sim.RNG
	lastDst int // previous packet's destination (Fig. 1 end-to-end locality)

	rx map[uint64]int // packet ID -> flits received so far

	// Reliability state (allocated only with Config.Reliable; DESIGN.md §14).
	// Sender side: relNext assigns per-destination sequence numbers, tx holds
	// the outstanding retransmit records, txIdx maps (dst, seq) to a tx index.
	// Receiver side: relMax/relWin are the per-source dedup window. All of it
	// is touched on the main goroutine only.
	relNext []uint64
	relMax  []uint64
	relWin  []uint64
	tx      []relTx
	txIdx   map[uint64]int

	// sh is the owning shard of the parallel kernel (nil when sequential);
	// injections buffer into it instead of the delivery ring. fpool supplies
	// injection flits: the shard's private pool under the parallel kernel
	// (ejected flits are recycled back to their source node's fpool, so the
	// per-shard free lists stay balanced under any traffic pattern), the
	// network pool otherwise.
	sh    *shard
	fpool *flit.Pool
}

func newNI(n *Network, node, r, inPort int) *ni {
	s := &ni{
		net:     n,
		node:    node,
		router:  r,
		inPort:  inPort,
		outVC:   -1,
		busy:    make([]bool, n.cfg.NumVCs),
		credits: make([]int, n.cfg.NumVCs),
		rng:     n.rng.Split(),
		lastDst: -1,
		rx:      make(map[uint64]int),
		fpool:   n.pool,
	}
	if sh := n.shardForNode(node); sh != nil {
		s.sh = sh
		s.fpool = sh.pool
	}
	if n.rel != nil {
		nodes := n.topo.Nodes()
		s.relNext = make([]uint64, nodes)
		s.relMax = make([]uint64, nodes)
		s.relWin = make([]uint64, nodes)
		s.txIdx = make(map[uint64]int)
	}
	for v := range s.credits {
		s.credits[v] = n.cfg.BufDepth
	}
	return s
}

// enqueue adds a packet to the source queue and records end-to-end temporal
// locality (Fig. 1): whether this packet repeats the previous packet's
// source-destination pair.
func (s *ni) enqueue(p *flit.Packet) {
	if s.lastDst >= 0 {
		s.net.Stats.E2EPrev++
		if s.lastDst == p.Dst {
			s.net.Stats.E2ESame++
		}
	}
	s.lastDst = p.Dst
	s.queue = append(s.queue, p)
}

// inject advances the injection state machine by one cycle: start the next
// packet if idle, allocate a VC, and send at most one flit.
func (s *ni) inject(now sim.Cycle) {
	if s.net.faults != nil && s.net.faults.RouterDead(s.router) {
		return // our router is down; hold everything until it recovers
	}
	if s.cur == nil {
		if len(s.queue) == 0 {
			return
		}
		p := s.queue[0]
		s.queue = s.queue[:copy(s.queue, s.queue[1:])]
		s.cur = s.fpool.SplitInto(s.curBuf[:0], p)
		s.curBuf = s.cur
		s.idx = 0
		s.class = s.net.engine.ClassFor(s.rng)
		s.outVC = -1
	}
	// Read the packet through the next unsent flit: earlier flits may
	// already have been delivered and recycled (their Packet pointer zeroed)
	// while this NI is still draining the rest of the packet.
	p := s.cur[s.idx].Packet
	if s.outVC < 0 {
		v := s.net.niAlloc.Pick(p.Src, p.Dst, s.class, s.busy, s.credits)
		if v < 0 {
			return // all candidate VCs busy; retry next cycle
		}
		s.outVC = v
		s.busy[v] = true
	}
	if s.credits[s.outVC] <= 0 {
		return // downstream input VC full; wait for credit
	}
	f := s.cur[s.idx]
	f.VC = s.outVC
	f.RouteClass = s.class
	f.NextOut = s.net.routeFor(s.router, p.Dst, s.class)
	f.InjectedAt = now
	f.EnteredNet = now
	if f.Kind.IsHead() {
		p.NetStart = now
	}
	s.credits[s.outVC]--
	if s.sh != nil {
		s.sh.pendInj = append(s.sh.pendInj, pending{lat: 1, d: delivery{flit: f, router: s.router, port: s.inPort}})
	} else {
		s.net.schedule(1, delivery{flit: f, router: s.router, port: s.inPort})
	}
	if tr := s.net.tracer; tr != nil {
		tr.Record(obs.Event{
			Cycle: int64(now), Kind: obs.Inject, Packet: p.ID, Seq: int32(f.Seq),
			Src: int32(p.Src), Dst: int32(p.Dst),
			Loc: int32(s.node), In: -1, VC: int32(f.VC), Out: int32(f.NextOut),
		})
	}
	s.idx++
	if s.idx == len(s.cur) {
		s.busy[s.outVC] = false // tail injected; VC reusable by the next packet
		s.cur = nil
		s.outVC = -1
	}
}

// credit returns one buffer slot for VC vc at the router input port this NI
// feeds.
func (s *ni) credit(vc int) {
	s.credits[vc]++
	if s.credits[vc] > s.net.cfg.BufDepth {
		panic(fmt.Sprintf("ni %d: credit overflow on vc %d", s.node, vc))
	}
}

// receive accepts an ejected flit, reassembling packets and recording
// delivery statistics when the last flit arrives. Ejected flits are recycled
// into the network's pool immediately; the packet is recycled after the
// workload has seen the delivery.
func (s *ni) receive(now sim.Cycle, f *flit.Flit, w Workload) {
	p := f.Packet
	if p.Dst != s.node {
		panic(fmt.Sprintf("ni %d: misdelivered flit %v", s.node, f))
	}
	if tr := s.net.tracer; tr != nil {
		tr.Record(obs.Event{
			Cycle: int64(now), Kind: obs.Eject, Packet: p.ID, Seq: int32(f.Seq),
			Src: int32(p.Src), Dst: int32(p.Dst),
			Loc: int32(s.node), In: -1, VC: int32(f.VC), Out: -1,
		})
	}
	// Recycle to the source node's injection pool: under the parallel
	// kernel that keeps each shard's free list fed by exactly the flits its
	// own NIs injected (self-balancing, so the zero-alloc steady state
	// survives any traffic pattern); sequentially it is the network pool.
	s.net.nis[p.Src].fpool.RecycleFlit(f)
	s.rx[p.ID]++
	if s.rx[p.ID] < p.Size {
		return
	}
	if s.rx[p.ID] > p.Size {
		panic(fmt.Sprintf("ni %d: duplicate flits for packet %d", s.node, p.ID))
	}
	delete(s.rx, p.ID)
	s.net.inFlight--
	if n := s.net; n.rel != nil {
		if p.RelAck {
			// Acknowledgement for one of our packets: clear the sender
			// record. A stray ack (record already cleared or abandoned) is
			// ignored. Acks are protocol overhead, not payload: they are
			// counted separately and never reach delivery stats or the
			// workload.
			n.Stats.AcksReceived++
			if i := s.lookupTx(p.Src, p.RelSeq); i >= 0 {
				s.removeTx(i)
			}
			n.pool.RecyclePacket(p)
			return
		}
		if p.RelSeq != 0 {
			dup := s.relSeen(p.Src, p.RelSeq)
			n.relInflightDelta(p, -1, !dup)
			// Ack both fresh and duplicate arrivals — a duplicate means an
			// earlier ack was lost (or the sender timed out spuriously), and
			// only a fresh ack can stop the retransmissions.
			s.sendAck(p)
			if dup {
				n.Stats.DuplicatesDropped++
				n.pool.RecyclePacket(p)
				return
			}
		}
	}
	measured := p.Injected >= s.net.Stats.MeasuredFrom
	s.net.Stats.RecordDelivery(now-p.Injected, now-p.NetStart, p.Size, p.Hops, measured)
	if w != nil {
		w.Deliver(now, p)
	}
	s.net.pool.RecyclePacket(p)
}
