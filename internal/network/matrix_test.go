package network_test

import (
	"fmt"
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// TestMatrix exercises every scheme on every topology under every synthetic
// pattern with invariant checking on, asserting delivery and a sane latency
// floor. 60 configurations; each runs briefly.
func TestMatrix(t *testing.T) {
	topos := []struct {
		name string
		mk   func() topology.Topology
	}{
		{"mesh4x4", func() topology.Topology { return topology.NewMesh(4, 4) }},
		{"cmesh2x2x4", func() topology.Topology { return topology.NewCMesh(2, 2, 4) }},
		{"mecs3x3x2", func() topology.Topology { return topology.NewMECS(3, 3, 2) }},
		{"fbfly3x3x2", func() topology.Topology { return topology.NewFBFly(3, 3, 2) }},
	}
	patterns := []traffic.Pattern{traffic.UniformRandom, traffic.BitComplement, traffic.BitPermutation}
	for _, tc := range topos {
		for _, scheme := range core.Schemes {
			for _, pat := range patterns {
				tc, scheme, pat := tc, scheme, pat
				name := fmt.Sprintf("%s/%v/%v", tc.name, scheme, pat)
				t.Run(name, func(t *testing.T) {
					topo := tc.mk()
					if pat == traffic.BitPermutation {
						w := isqrt(topo.Nodes())
						if w*w != topo.Nodes() {
							t.Skip("transpose needs a square node grid")
						}
					}
					cfg := network.DefaultConfig(topo)
					cfg.Opts = core.DefaultOptions(scheme)
					cfg.Algorithm = routing.XY
					cfg.Policy = vcalloc.Static
					n := network.New(cfg)
					n.CheckInvariants = true
					w := traffic.NewSynthetic(traffic.Config{
						Pattern: pat, Nodes: topo.Nodes(), Rate: 0.06,
						GridW: isqrt(topo.Nodes()),
					}, sim.NewRNG(31))
					n.Run(w, 2500)
					if n.Stats.PacketsDelivered < 20 {
						t.Fatalf("only %d packets delivered", n.Stats.PacketsDelivered)
					}
					// Latency cannot be below the serialization floor.
					if n.Stats.AvgNetLatency() < 5 {
						t.Fatalf("implausible latency %.2f", n.Stats.AvgNetLatency())
					}
				})
			}
		}
	}
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// TestO1TURNMatrix repeats the matrix for O1TURN + dynamic VA on the mesh
// topologies (two VC classes).
func TestO1TURNMatrix(t *testing.T) {
	for _, scheme := range core.Schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			topo := topology.NewMesh(5, 5)
			cfg := network.DefaultConfig(topo)
			cfg.Opts = core.DefaultOptions(scheme)
			cfg.Algorithm = routing.O1TURN
			cfg.Policy = vcalloc.Dynamic
			n := network.New(cfg)
			n.CheckInvariants = true
			w := traffic.NewSynthetic(traffic.Config{
				Pattern: traffic.UniformRandom, Nodes: 25, Rate: 0.10,
			}, sim.NewRNG(41))
			n.Run(w, 2500)
			if n.Stats.PacketsDelivered < 100 {
				t.Fatalf("only %d delivered", n.Stats.PacketsDelivered)
			}
		})
	}
}
