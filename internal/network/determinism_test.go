package network_test

import (
	"fmt"
	"reflect"
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// kernel selects which cycle kernel a determinism run uses: the naive
// reference loop, the active-set kernel (workers 0), or the sharded
// parallel kernel (workers > 1).
type kernel struct {
	name    string
	naive   bool
	workers int
}

// kernels is the determinism triangle: the naive reference, the sequential
// active-set kernel, and the parallel kernel across the worker counts the
// acceptance harness requires. workers=1 must degrade to the sequential
// kernel; higher counts exercise shard partitioning including shards
// smaller than a row and clamping (small topologies have < 8 routers).
var kernels = []kernel{
	{"naive", true, 0},
	{"active", false, 0},
	{"par1", false, 1},
	{"par2", false, 2},
	{"par4", false, 4},
	{"par8", false, 8},
}

// buildKernel builds a network with the kernel selected by k, invariant
// checking on, and everything else from the grid point.
func buildKernel(topo topology.Topology, scheme core.Scheme, algo routing.Algorithm, pol vcalloc.Policy, k kernel) *network.Network {
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(scheme)
	cfg.Opts.Workers = k.workers
	cfg.Algorithm = algo
	cfg.Policy = pol
	cfg.Naive = k.naive
	n := network.New(cfg)
	n.CheckInvariants = true
	return n
}

// TestActiveSetMatchesNaive is the determinism harness for the
// work-proportional and parallel kernels: for each scheme × topology ×
// workload grid point, run the naive reference loop (tick every router
// every cycle), the active-set kernel, and the sharded parallel kernel at
// workers ∈ {1,2,4,8} with the same seed, and require bit-identical
// statistics, energy counters and latency histograms across the whole
// triangle.
func TestActiveSetMatchesNaive(t *testing.T) {
	type grid struct {
		name    string
		topo    func() topology.Topology
		scheme  core.Scheme
		algo    routing.Algorithm
		pol     vcalloc.Policy
		pattern traffic.Pattern
		rate    float64
	}
	var cases []grid
	// All five schemes on the mesh with uniform-random traffic.
	for _, s := range core.Schemes {
		cases = append(cases, grid{
			name:    fmt.Sprintf("mesh/%v/uniform", s),
			topo:    func() topology.Topology { return topology.NewMesh(4, 4) },
			scheme:  s,
			algo:    routing.XY,
			pol:     vcalloc.Static,
			pattern: traffic.UniformRandom,
			rate:    0.10,
		})
	}
	// The full scheme on every topology, with patterns and configurations
	// that exercise O1TURN classes, dynamic VA and bursty hotspot arrivals.
	cases = append(cases,
		grid{
			name:    "mesh/psb/transpose-o1turn",
			topo:    func() topology.Topology { return topology.NewMesh(4, 4) },
			scheme:  core.PseudoSB,
			algo:    routing.O1TURN,
			pol:     vcalloc.Dynamic,
			pattern: traffic.BitPermutation,
			rate:    0.12,
		},
		grid{
			name:    "cmesh/psb/uniform",
			topo:    func() topology.Topology { return topology.NewCMesh(3, 3, 4) },
			scheme:  core.PseudoSB,
			algo:    routing.XY,
			pol:     vcalloc.Static,
			pattern: traffic.UniformRandom,
			rate:    0.08,
		},
		grid{
			name:    "mecs/psb/hotspot",
			topo:    func() topology.Topology { return topology.NewMECS(3, 3, 2) },
			scheme:  core.PseudoSB,
			algo:    routing.XY,
			pol:     vcalloc.Static,
			pattern: traffic.Hotspot,
			rate:    0.06,
		},
		grid{
			name:    "fbfly/pseudo/bitcomp",
			topo:    func() topology.Topology { return topology.NewFBFly(3, 3, 2) },
			scheme:  core.Pseudo,
			algo:    routing.XY,
			pol:     vcalloc.Dynamic,
			pattern: traffic.BitComplement,
			rate:    0.08,
		},
	)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			run := func(k kernel) *network.Network {
				topo := tc.topo()
				n := buildKernel(topo, tc.scheme, tc.algo, tc.pol, k)
				w := traffic.NewSynthetic(traffic.Config{
					Pattern: tc.pattern, Nodes: topo.Nodes(), Rate: tc.rate,
					HotspotNode: 0, HotspotFrac: 0.3,
				}, sim.NewRNG(42))
				// Split the run so a mid-run stats reset (the warmup
				// protocol) is covered too.
				n.Run(w, 500)
				n.ResetStats()
				n.Run(w, 2500)
				return n
			}
			ref := run(kernels[0])
			for _, k := range kernels[1:] {
				got := run(k)
				if !reflect.DeepEqual(ref.Stats, got.Stats) {
					t.Errorf("stats diverge between %s and %s kernels:\n%s: %+v\n%s: %+v",
						kernels[0].name, k.name, kernels[0].name, ref.Stats, k.name, got.Stats)
				}
				if !reflect.DeepEqual(ref.Energy, got.Energy) {
					t.Errorf("energy diverges between %s and %s kernels:\n%s: %+v\n%s: %+v",
						kernels[0].name, k.name, kernels[0].name, ref.Energy, k.name, got.Energy)
				}
			}
		})
	}
}

// TestActiveSetMatchesNaiveFlows covers deterministic flows (multi-flit
// packets on fixed paths with idle gaps — the workload most likely to
// expose a router deactivating too early).
func TestActiveSetMatchesNaiveFlows(t *testing.T) {
	run := func(k kernel) *network.Network {
		n := buildKernel(topology.NewMesh(4, 4), core.PseudoSB, routing.XY, vcalloc.Static, k)
		w := traffic.NewFlows(
			traffic.Flow{Src: 0, Dst: 15, Size: 5, Period: 37, Start: 3},
			traffic.Flow{Src: 5, Dst: 6, Size: 1, Period: 113, Start: 50},
			traffic.Flow{Src: 12, Dst: 3, Size: 5, Period: 61, Start: 10},
		)
		n.Run(w, 2000)
		return n
	}
	ref := run(kernels[0])
	for _, k := range kernels[1:] {
		got := run(k)
		if !reflect.DeepEqual(ref.Stats, got.Stats) {
			t.Errorf("stats diverge on flows (%s vs %s):\nref: %+v\ngot: %+v", kernels[0].name, k.name, ref.Stats, got.Stats)
		}
		if !reflect.DeepEqual(ref.Energy, got.Energy) {
			t.Errorf("energy diverges on flows (%s vs %s):\nref: %+v\ngot: %+v", kernels[0].name, k.name, ref.Energy, got.Energy)
		}
	}
}

// TestParallelKernelRaceSpotCheck is the -race determinism spot-check the CI
// race step leans on: one loaded scheme×topology point, workers=4 versus the
// sequential kernel, driven through Run so the real worker goroutines (not
// the inline fallback) execute under the race detector. Kept deliberately
// small so `go test -race ./internal/network/...` stays fast.
func TestParallelKernelRaceSpotCheck(t *testing.T) {
	run := func(workers int) *network.Network {
		topo := topology.NewMesh(4, 4)
		n := buildKernel(topo, core.PseudoSB, routing.O1TURN, vcalloc.Dynamic, kernel{workers: workers})
		w := traffic.NewSynthetic(traffic.Config{
			Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.14,
		}, sim.NewRNG(7))
		n.Run(w, 300)
		n.ResetStats()
		n.Run(w, 1200)
		return n
	}
	seq, par := run(1), run(4)
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Errorf("stats diverge between workers=1 and workers=4:\nseq: %+v\npar: %+v", seq.Stats, par.Stats)
	}
	if !reflect.DeepEqual(seq.Energy, par.Energy) {
		t.Errorf("energy diverges between workers=1 and workers=4:\nseq: %+v\npar: %+v", seq.Energy, par.Energy)
	}
}
