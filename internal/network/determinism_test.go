package network_test

import (
	"fmt"
	"reflect"
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// buildKernel builds a network with the kernel selected by naive, invariant
// checking on, and everything else from the grid point.
func buildKernel(topo topology.Topology, scheme core.Scheme, algo routing.Algorithm, pol vcalloc.Policy, naive bool) *network.Network {
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(scheme)
	cfg.Algorithm = algo
	cfg.Policy = pol
	cfg.Naive = naive
	n := network.New(cfg)
	n.CheckInvariants = true
	return n
}

// TestActiveSetMatchesNaive is the determinism harness for the
// work-proportional kernel: for each scheme × topology × workload grid
// point, run the naive reference loop (tick every router every cycle) and
// the active-set kernel with the same seed and require bit-identical
// statistics, energy counters and latency histograms.
func TestActiveSetMatchesNaive(t *testing.T) {
	type grid struct {
		name    string
		topo    func() topology.Topology
		scheme  core.Scheme
		algo    routing.Algorithm
		pol     vcalloc.Policy
		pattern traffic.Pattern
		rate    float64
	}
	var cases []grid
	// All five schemes on the mesh with uniform-random traffic.
	for _, s := range core.Schemes {
		cases = append(cases, grid{
			name:    fmt.Sprintf("mesh/%v/uniform", s),
			topo:    func() topology.Topology { return topology.NewMesh(4, 4) },
			scheme:  s,
			algo:    routing.XY,
			pol:     vcalloc.Static,
			pattern: traffic.UniformRandom,
			rate:    0.10,
		})
	}
	// The full scheme on every topology, with patterns and configurations
	// that exercise O1TURN classes, dynamic VA and bursty hotspot arrivals.
	cases = append(cases,
		grid{
			name:    "mesh/psb/transpose-o1turn",
			topo:    func() topology.Topology { return topology.NewMesh(4, 4) },
			scheme:  core.PseudoSB,
			algo:    routing.O1TURN,
			pol:     vcalloc.Dynamic,
			pattern: traffic.BitPermutation,
			rate:    0.12,
		},
		grid{
			name:    "cmesh/psb/uniform",
			topo:    func() topology.Topology { return topology.NewCMesh(3, 3, 4) },
			scheme:  core.PseudoSB,
			algo:    routing.XY,
			pol:     vcalloc.Static,
			pattern: traffic.UniformRandom,
			rate:    0.08,
		},
		grid{
			name:    "mecs/psb/hotspot",
			topo:    func() topology.Topology { return topology.NewMECS(3, 3, 2) },
			scheme:  core.PseudoSB,
			algo:    routing.XY,
			pol:     vcalloc.Static,
			pattern: traffic.Hotspot,
			rate:    0.06,
		},
		grid{
			name:    "fbfly/pseudo/bitcomp",
			topo:    func() topology.Topology { return topology.NewFBFly(3, 3, 2) },
			scheme:  core.Pseudo,
			algo:    routing.XY,
			pol:     vcalloc.Dynamic,
			pattern: traffic.BitComplement,
			rate:    0.08,
		},
	)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			run := func(naive bool) *network.Network {
				topo := tc.topo()
				n := buildKernel(topo, tc.scheme, tc.algo, tc.pol, naive)
				w := traffic.NewSynthetic(traffic.Config{
					Pattern: tc.pattern, Nodes: topo.Nodes(), Rate: tc.rate,
					HotspotNode: 0, HotspotFrac: 0.3,
				}, sim.NewRNG(42))
				// Split the run so a mid-run stats reset (the warmup
				// protocol) is covered too.
				n.Run(w, 500)
				n.ResetStats()
				n.Run(w, 2500)
				return n
			}
			naive, fast := run(true), run(false)
			if !reflect.DeepEqual(naive.Stats, fast.Stats) {
				t.Errorf("stats diverge between naive and active-set kernels:\nnaive: %+v\nfast:  %+v", naive.Stats, fast.Stats)
			}
			if !reflect.DeepEqual(naive.Energy, fast.Energy) {
				t.Errorf("energy diverges between naive and active-set kernels:\nnaive: %+v\nfast:  %+v", naive.Energy, fast.Energy)
			}
		})
	}
}

// TestActiveSetMatchesNaiveFlows covers deterministic flows (multi-flit
// packets on fixed paths with idle gaps — the workload most likely to
// expose a router deactivating too early).
func TestActiveSetMatchesNaiveFlows(t *testing.T) {
	run := func(naive bool) *network.Network {
		n := buildKernel(topology.NewMesh(4, 4), core.PseudoSB, routing.XY, vcalloc.Static, naive)
		w := traffic.NewFlows(
			traffic.Flow{Src: 0, Dst: 15, Size: 5, Period: 37, Start: 3},
			traffic.Flow{Src: 5, Dst: 6, Size: 1, Period: 113, Start: 50},
			traffic.Flow{Src: 12, Dst: 3, Size: 5, Period: 61, Start: 10},
		)
		n.Run(w, 2000)
		return n
	}
	naive, fast := run(true), run(false)
	if !reflect.DeepEqual(naive.Stats, fast.Stats) {
		t.Errorf("stats diverge on flows:\nnaive: %+v\nfast:  %+v", naive.Stats, fast.Stats)
	}
	if !reflect.DeepEqual(naive.Energy, fast.Energy) {
		t.Errorf("energy diverges on flows:\nnaive: %+v\nfast:  %+v", naive.Energy, fast.Energy)
	}
}
