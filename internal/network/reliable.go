package network

import (
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/sim"
)

// End-to-end reliable delivery (DESIGN.md §14). With Config.Reliable set,
// every workload packet carries a per-flow (src,dst) sequence number; the
// receiving NI acknowledges each sequenced packet with a 1-flit ClassAck
// packet that travels the network like any other traffic, and deduplicates
// retransmissions against a per-source sliding window. The sending NI keeps
// one retransmit record per unacked packet and re-injects a fresh copy on a
// deterministic timeout with capped exponential backoff; a bounded retry
// budget turns permanent loss into a counted DeliveryFailed (reported to the
// workload when it implements FailureObserver), never a hang.
//
// Determinism: every piece of reliability state — sequence counters, sender
// records, receiver windows — is mutated on the kernel's main goroutine only
// (Inject, ni.receive and relTick all run there, in both the sequential and
// the sharded kernel, in identical order), so reliable runs stay
// bit-identical across naive/active/parallel kernels at every worker count.

// Reliability configures the end-to-end reliable delivery layer. The zero
// value of each field selects its default.
type Reliability struct {
	// Timeout is the cycles after a (re)send before the sender retransmits.
	// It should exceed the round-trip time at the operating point (delivery
	// plus the returning ack), or healthy packets are retransmitted
	// spuriously — safe, the receiver deduplicates, but wasteful.
	Timeout int
	// MaxTimeout caps the exponential backoff (Timeout, 2·Timeout, 4·Timeout,
	// …, MaxTimeout).
	MaxTimeout int
	// Budget is the maximum number of send attempts per packet, including
	// the first. When the budget is exhausted and no copy is left in the
	// network, the packet is abandoned: Stats.DeliveryFailed is incremented
	// and FailureObserver workloads are notified.
	Budget int
}

// Reliability defaults: the timeout clears the round-trip at every operating
// point the experiments run (latencies are tens to low hundreds of cycles),
// the cap keeps abandoned flows from idling for whole measurement windows,
// and the budget bounds worst-case give-up time at roughly
// Timeout + 2·Timeout + … ≈ 5·MaxTimeout cycles.
const (
	DefaultRelTimeout    = 256
	DefaultRelMaxTimeout = 2048
	DefaultRelBudget     = 8
)

// withDefaults fills zero fields and clamps the pair ordering.
func (r Reliability) withDefaults() Reliability {
	if r.Timeout <= 0 {
		r.Timeout = DefaultRelTimeout
	}
	if r.MaxTimeout <= 0 {
		r.MaxTimeout = DefaultRelMaxTimeout
	}
	if r.MaxTimeout < r.Timeout {
		r.MaxTimeout = r.Timeout
	}
	if r.Budget <= 0 {
		r.Budget = DefaultRelBudget
	}
	return r
}

// FailureObserver is implemented by workloads that want to hear about
// abandoned packets. DeliveryFailed is called on the kernel's main goroutine
// when a packet's retry budget is exhausted with no copy left in flight: the
// payload described by (src, dst, class, meta) will never be delivered, so a
// closed-loop workload must unwind whatever transaction was waiting on it
// instead of wedging. meta is the Packet.Meta of the abandoned packet.
type FailureObserver interface {
	DeliveryFailed(now sim.Cycle, src, dst int, class flit.Class, meta any)
}

// relTx is one sender-side retransmit record: an injected, sequenced,
// not-yet-acknowledged packet. The record owns everything needed to rebuild
// the packet (retransmissions are fresh pooled packets; the original may
// long since have been delivered and recycled).
type relTx struct {
	dst       int
	seq       uint64
	size      int
	class     flit.Class
	meta      any
	attempts  int       // sends so far (>= 1)
	inflight  int       // copies currently inside the network
	delivered bool      // some copy reached the destination workload
	deadline  sim.Cycle // next retransmit (or give-up) decision cycle
}

// txKey packs a sender record's map key. Sequence numbers are per-flow
// injection counters, far below 2^40 for any feasible run length (the
// service bounds runs at 10M cycles), so the destination tag above bit 40
// cannot collide.
func txKey(dst int, seq uint64) uint64 { return uint64(dst)<<40 | seq }

// trackTx registers a freshly sequenced packet with its sender NI. Called
// from Inject on the main goroutine, before the packet is enqueued (the
// record must exist even when the packet is immediately dropped at the
// source — the retransmit timer is then what retries it).
func (s *ni) trackTx(p *flit.Packet) {
	s.tx = append(s.tx, relTx{
		dst:      p.Dst,
		seq:      p.RelSeq,
		size:     p.Size,
		class:    p.Class,
		meta:     p.Meta,
		attempts: 1,
		deadline: s.net.now + sim.Cycle(s.net.rel.Timeout),
	})
	s.txIdx[txKey(p.Dst, p.RelSeq)] = len(s.tx) - 1
	s.net.relPending++
}

// lookupTx returns the index of the record for (dst, seq), or -1.
func (s *ni) lookupTx(dst int, seq uint64) int {
	if i, ok := s.txIdx[txKey(dst, seq)]; ok {
		return i
	}
	return -1
}

// removeTx deletes record i by swap-removal, fixing the moved record's index
// entry. The order perturbation is deterministic: records are only ever
// mutated on the main goroutine, in the same order in every kernel.
func (s *ni) removeTx(i int) {
	rec := &s.tx[i]
	delete(s.txIdx, txKey(rec.dst, rec.seq))
	rec.meta = nil // release the payload reference for the pool's sake
	last := len(s.tx) - 1
	if i != last {
		s.tx[i] = s.tx[last]
		s.txIdx[txKey(s.tx[i].dst, s.tx[i].seq)] = i
	}
	s.tx[last] = relTx{}
	s.tx = s.tx[:last]
	s.net.relPending--
}

// relSeen records sequence seq from peer in the receive window and reports
// whether it was already delivered. The window is relMax (highest sequence
// seen per peer) plus a 64-bit bitmap covering [relMax-63, relMax]; a
// sequence below the window is conservatively treated as a duplicate. That
// is exact unless a flow accumulates more than 64 newer deliveries while one
// packet's retransmissions are still pending — far beyond the outstanding
// window of any workload here (the CMP substrate holds at most a few misses
// per flow) — and the failure mode is a dropped-then-re-acked packet, never
// a duplicate delivery.
func (s *ni) relSeen(peer int, seq uint64) bool {
	max := s.relMax[peer]
	switch {
	case seq > max:
		if shift := seq - max; shift >= 64 {
			s.relWin[peer] = 1
		} else {
			s.relWin[peer] = s.relWin[peer]<<shift | 1
		}
		s.relMax[peer] = seq
		return false
	case max-seq >= 64:
		return true
	default:
		bit := uint64(1) << (max - seq)
		if s.relWin[peer]&bit != 0 {
			return true
		}
		s.relWin[peer] |= bit
		return false
	}
}

// sendAck injects the 1-flit acknowledgement for sequenced packet p back to
// its source. Acks are ordinary network traffic — they occupy VCs, burn
// energy and can be dropped by faults (a lost ack is recovered by the data
// retransmission it provokes, which the receiver dedups and re-acks). They
// are never themselves sequenced or acknowledged.
func (s *ni) sendAck(p *flit.Packet) {
	a := s.net.pool.NewPacket()
	a.Src, a.Dst = s.node, p.Src
	a.Size = 1
	a.Class = flit.ClassAck
	a.RelAck = true
	a.RelSeq = p.RelSeq
	s.net.Stats.AcksSent++
	s.net.Inject(a)
}

// relInflightDelta adjusts the in-network copy count of the record backing
// sequenced data packet p (no-op for acks, unsequenced packets, or records
// already cleared by an ack). Called wherever a copy enters or leaves the
// network: Inject (+1), final ejection at the receiver (-1), and fault purge
// (-1). The count is what keeps budget exhaustion honest: the sender only
// abandons a packet when no copy can still arrive.
func (n *Network) relInflightDelta(p *flit.Packet, d int, delivered bool) {
	if n.rel == nil || p.RelAck || p.RelSeq == 0 {
		return
	}
	s := n.nis[p.Src]
	if i := s.lookupTx(p.Dst, p.RelSeq); i >= 0 {
		s.tx[i].inflight += d
		if delivered {
			s.tx[i].delivered = true
		}
	}
}

// relTick drives every sender's retransmit timers one cycle. It runs on the
// main goroutine in both kernels, after fault events land and before any
// delivery or injection work, walking NIs in ascending node order — a fixed
// point in the cycle, so timer decisions are bit-identical at every worker
// count. Due records either retransmit (fresh pooled packet, same flow and
// sequence, capped exponential backoff) or, once the budget is spent and no
// copy remains in the network, give the packet up: DeliveryFailed if it
// never arrived, silent record retirement if it was delivered but every ack
// was lost.
func (n *Network) relTick(w Workload) {
	for _, s := range n.nis {
		for i := 0; i < len(s.tx); {
			rec := &s.tx[i]
			if rec.deadline > n.now {
				i++
				continue
			}
			if rec.attempts >= n.rel.Budget {
				if rec.inflight > 0 {
					// The final copy is still traveling: it will either be
					// delivered (the ack clears the record) or purged (the
					// count drops to zero and the next tick abandons it).
					// Re-examining each cycle keeps the decision cycle
					// deterministic without a separate wait state.
					i++
					continue
				}
				if !rec.delivered {
					n.Stats.DeliveryFailed++
					if fo, ok := w.(FailureObserver); ok {
						fo.DeliveryFailed(n.now, s.node, rec.dst, rec.class, rec.meta)
					}
				}
				s.removeTx(i)
				continue // the swapped-in record is examined next
			}
			rec.attempts++
			backoff := n.rel.MaxTimeout
			if sh := rec.attempts - 1; sh < 32 {
				if b := n.rel.Timeout << sh; b < backoff {
					backoff = b
				}
			}
			rec.deadline = n.now + sim.Cycle(backoff)
			p := n.pool.NewPacket()
			p.Src, p.Dst = s.node, rec.dst
			p.Size = rec.size
			p.Class = rec.class
			p.Meta = rec.meta
			p.RelSeq = rec.seq
			n.Stats.PacketsRetransmitted++
			n.Inject(p)
			i++
		}
	}
}

// RelPending returns the number of unresolved sender records — packets
// injected under the reliability layer that are neither acknowledged nor
// abandoned yet (testing/diagnostics hook; Drain waits for it to reach 0).
func (n *Network) RelPending() int { return n.relPending }
