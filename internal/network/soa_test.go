package network_test

import (
	"reflect"
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
	"pseudocircuit/internal/vcalloc"
)

// TestLaneStoreRoundTrip drives two identically seeded networks — the naive
// reference kernel and the active-set kernel, both over the shared
// structure-of-arrays LaneStore — through randomized tick bursts and, after
// each burst, checks the layout from both sides:
//
//   - flat view: LaneStore.CheckConsistency re-derives every occupancy mask
//     and the PCByOut reverse index from the ground-truth arrays for every
//     router;
//   - struct view: LaneStore.View materializes each lane back into the
//     pre-SoA struct shape, and the two kernels' views must be deeply equal
//     lane by lane — the flat layout holds exactly the state the struct
//     layout would, whichever kernel mutated it.
func TestLaneStoreRoundTrip(t *testing.T) {
	build := func(naive bool) (*network.Network, network.Workload, topology.Topology) {
		topo := topology.NewMesh(4, 4)
		cfg := network.DefaultConfig(topo)
		cfg.Opts = core.DefaultOptions(core.PseudoSB)
		cfg.Algorithm = routing.XY
		cfg.Policy = vcalloc.Static
		cfg.Naive = naive
		n := network.New(cfg)
		n.CheckInvariants = true
		w := traffic.NewSynthetic(traffic.Config{
			Pattern: traffic.UniformRandom, Nodes: topo.Nodes(), Rate: 0.12,
		}, sim.NewRNG(11))
		return n, w, topo
	}
	nA, wA, topo := build(true)
	nB, wB, _ := build(false)
	sA, sB := nA.Lanes(), nB.Lanes()
	if sA == nil || sB == nil {
		t.Fatal("standard-router networks must own a LaneStore")
	}

	rng := sim.NewRNG(99)
	for trial := 0; trial < 40; trial++ {
		burst := 1 + rng.Intn(13)
		for i := 0; i < burst; i++ {
			nA.Step(wA)
			nB.Step(wB)
		}
		for _, s := range []*core.LaneStore{sA, sB} {
			for r := 0; r < topo.Routers(); r++ {
				inBase, outBase := s.InBase[r], s.OutBase[r]
				nIn, nOut := s.InBase[r+1]-inBase, s.OutBase[r+1]-outBase
				if err := s.CheckConsistency(r, inBase, nIn, outBase, nOut); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		}
		for p := 0; p < len(sA.Occ); p++ {
			for vc := 0; vc < sA.NumVCs; vc++ {
				va, vb := sA.View(p, vc), sB.View(p, vc)
				if !reflect.DeepEqual(va, vb) {
					t.Fatalf("trial %d: lane view diverges at port %d vc %d:\nnaive:  %+v\nactive: %+v",
						trial, p, vc, va, vb)
				}
			}
		}
	}
}

// TestLaneStorePerRouterRanges pins the index scheme the flat layout is
// built on (DESIGN.md §17): InBase/OutBase are prefix sums over the
// topology's radices, so every router owns one contiguous lane range and the
// array lengths are exactly the range totals.
func TestLaneStorePerRouterRanges(t *testing.T) {
	topo := topology.NewMECS(3, 3, 2) // asymmetric radix: inputs != outputs
	cfg := network.DefaultConfig(topo)
	n := network.New(cfg)
	s := n.Lanes()
	for r := 0; r < topo.Routers(); r++ {
		if got := s.InBase[r+1] - s.InBase[r]; got != topo.InPorts(r) {
			t.Errorf("router %d: InBase radix %d, topology says %d", r, got, topo.InPorts(r))
		}
		if got := s.OutBase[r+1] - s.OutBase[r]; got != topo.OutPorts(r) {
			t.Errorf("router %d: OutBase radix %d, topology says %d", r, got, topo.OutPorts(r))
		}
	}
	nIn := s.InBase[topo.Routers()]
	nOut := s.OutBase[topo.Routers()]
	if len(s.BufLen) != nIn*cfg.NumVCs || len(s.At) != nIn*cfg.NumVCs*cfg.BufDepth {
		t.Errorf("input-lane arrays sized %d/%d, want %d lanes × depth %d", len(s.BufLen), len(s.At), nIn*cfg.NumVCs, cfg.BufDepth)
	}
	if len(s.Credits) != nOut*cfg.NumVCs || len(s.PCByOut) != nOut {
		t.Errorf("output arrays sized %d/%d, want %d lanes / %d ports", len(s.Credits), len(s.PCByOut), nOut*cfg.NumVCs, nOut)
	}
}
