package topology_test

import (
	"testing"
	"testing/quick"

	"pseudocircuit/internal/topology"
)

func all() []topology.Topology {
	return []topology.Topology{
		topology.NewMesh(8, 8),
		topology.NewMesh(4, 4),
		topology.NewCMesh(4, 4, 4),
		topology.NewCMesh(3, 5, 2),
		topology.NewMECS(4, 4, 4),
		topology.NewMECS(3, 3, 2),
		topology.NewFBFly(4, 4, 4),
		topology.NewFBFly(3, 3, 2),
	}
}

// TestNodeRouterMapping: every terminal attaches to a valid router with
// in-range ports, and no two terminals share an attachment port.
func TestNodeRouterMapping(t *testing.T) {
	for _, topo := range all() {
		type port struct{ r, p int }
		seenIn := map[port]bool{}
		seenOut := map[port]bool{}
		for n := 0; n < topo.Nodes(); n++ {
			r, in, out := topo.NodeRouter(n)
			if r < 0 || r >= topo.Routers() {
				t.Fatalf("%s: node %d router %d out of range", topo.Name(), n, r)
			}
			if in < 0 || in >= topo.InPorts(r) {
				t.Fatalf("%s: node %d inPort %d out of range", topo.Name(), n, in)
			}
			if out < 0 || out >= topo.OutPorts(r) {
				t.Fatalf("%s: node %d outPort %d out of range", topo.Name(), n, out)
			}
			if seenIn[port{r, in}] || seenOut[port{r, out}] {
				t.Fatalf("%s: node %d shares an attachment port", topo.Name(), n)
			}
			seenIn[port{r, in}] = true
			seenOut[port{r, out}] = true
		}
	}
}

// TestDORReachesDestination: dimension-order routing from every router to
// every node terminates at the right terminal within diameter hops, for
// both dimension orders, and NextHop agrees with Route.
func TestDORReachesDestination(t *testing.T) {
	for _, topo := range all() {
		for class := 0; class < 2; class++ {
			for r := 0; r < topo.Routers(); r++ {
				for d := 0; d < topo.Nodes(); d++ {
					cur := r
					hops := 0
					for {
						out := topo.Route(cur, d, class)
						if out < 0 || out >= topo.OutPorts(cur) {
							t.Fatalf("%s: Route(%d,%d,%d) = %d out of range", topo.Name(), cur, d, class, out)
						}
						h := topo.NextHop(cur, out, d)
						if h.Latency < 1 {
							t.Fatalf("%s: latency %d < 1", topo.Name(), h.Latency)
						}
						if h.Router < 0 {
							if h.InPort != d {
								t.Fatalf("%s: route %d->%d class %d ejected at %d", topo.Name(), r, d, class, h.InPort)
							}
							break
						}
						if h.InPort < 0 || h.InPort >= topo.InPorts(h.Router) {
							t.Fatalf("%s: hop into invalid port %d of router %d", topo.Name(), h.InPort, h.Router)
						}
						cur = h.Router
						hops++
						if hops > topo.Routers()+1 {
							t.Fatalf("%s: route %d->%d class %d loops", topo.Name(), r, d, class)
						}
					}
				}
			}
		}
	}
}

// TestExpressTopologiesHopBound: MECS and FBFLY route in at most one hop
// per dimension (plus ejection).
func TestExpressTopologiesHopBound(t *testing.T) {
	for _, topo := range []topology.Topology{
		topology.NewMECS(4, 4, 4), topology.NewFBFly(4, 4, 4),
	} {
		for r := 0; r < topo.Routers(); r++ {
			for d := 0; d < topo.Nodes(); d++ {
				cur, hops := r, 0
				for {
					h := topo.NextHop(cur, topo.Route(cur, d, 0), d)
					if h.Router < 0 {
						break
					}
					cur = h.Router
					hops++
				}
				if hops > 2 {
					t.Fatalf("%s: %d hops from router %d to node %d, want <= 2", topo.Name(), hops, r, d)
				}
			}
		}
	}
}

// TestUniqueUpstream: every reachable input port is fed by exactly one
// (router, output) pair — the invariant the network's credit wiring needs.
func TestUniqueUpstream(t *testing.T) {
	for _, topo := range all() {
		type src struct{ r, o int }
		feeders := map[[2]int]src{}
		for r := 0; r < topo.Routers(); r++ {
			for d := 0; d < topo.Nodes(); d++ {
				for class := 0; class < 2; class++ {
					o := topo.Route(r, d, class)
					h := topo.NextHop(r, o, d)
					if h.Router < 0 {
						continue
					}
					key := [2]int{h.Router, h.InPort}
					s := src{r, o}
					if prev, ok := feeders[key]; ok && prev != s {
						t.Fatalf("%s: input (%d,%d) fed by both %v and %v", topo.Name(), h.Router, h.InPort, prev, s)
					}
					feeders[key] = s
				}
			}
		}
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m := topology.NewMesh(5, 7)
	err := quick.Check(func(r uint8) bool {
		id := int(r) % m.Routers()
		x, y := m.Coord(id)
		kx, _ := m.Dims()
		return y*kx+x == id
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAvgDistancePositive(t *testing.T) {
	for _, topo := range all() {
		if d := topo.AvgDistance(); d <= 0 {
			t.Errorf("%s: AvgDistance = %v", topo.Name(), d)
		}
	}
	// The 8x8 mesh's mean Manhattan distance between distinct nodes is
	// known: 2*(k-1/k)/3 per dimension with exclusion correction; just
	// bound it loosely.
	m := topology.NewMesh(8, 8)
	if d := m.AvgDistance(); d < 4.5 || d > 6.0 {
		t.Errorf("mesh8x8 AvgDistance = %v, want ~5.3", d)
	}
}

func TestInvalidConstruction(t *testing.T) {
	for name, fn := range map[string]func(){
		"mesh1x4":    func() { topology.NewMesh(1, 4) },
		"cmesh0conc": func() { topology.NewCMesh(4, 4, 0) },
		"mecs1x1":    func() { topology.NewMECS(1, 1, 1) },
		"fbfly1x2":   func() { topology.NewFBFly(1, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid construction accepted", name)
				}
			}()
			fn()
		}()
	}
}

func TestMECSPortCounts(t *testing.T) {
	m := topology.NewMECS(4, 4, 4)
	// Outputs: 4 directions + 4 terminals; inputs: 3 row drops + 3 column
	// drops + 4 terminals.
	if got := m.OutPorts(0); got != 8 {
		t.Errorf("MECS OutPorts = %d, want 8", got)
	}
	if got := m.InPorts(0); got != 10 {
		t.Errorf("MECS InPorts = %d, want 10", got)
	}
}

func TestFBFlyPortCounts(t *testing.T) {
	f := topology.NewFBFly(4, 4, 4)
	// 3 row + 3 column + 4 terminals, symmetric.
	if got := f.OutPorts(0); got != 10 {
		t.Errorf("FBFLY OutPorts = %d, want 10", got)
	}
	if got := f.InPorts(0); got != 10 {
		t.Errorf("FBFLY InPorts = %d, want 10", got)
	}
}

// TestMECSExpressLatency: multidrop channels cost latency proportional to
// the distance covered (wire-length model).
func TestMECSExpressLatency(t *testing.T) {
	m := topology.NewMECS(4, 4, 4)
	// Router 0 (0,0) to a node homed at router 3 (3,0): one row hop of
	// distance 3, span 2 -> latency 6.
	dst := 3 * 4 // first terminal of router 3
	h := m.NextHop(0, m.Route(0, dst, 0), dst)
	if h.Router != 3 || h.Latency != 6 {
		t.Errorf("MECS hop = %+v, want router 3 latency 6", h)
	}
}
