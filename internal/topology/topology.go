// Package topology defines the interconnection-network topologies evaluated
// in the paper: 2D mesh, concentrated mesh (CMesh, Balfour & Dally),
// Multidrop Express Cube (MECS, Grot et al.) and Flattened Butterfly
// (FBFLY, Kim et al.) — paper §5 and §7.A.
//
// A topology is a port graph: routers with numbered input and output ports,
// terminals (nodes) attached to dedicated terminal ports, and a delivery
// function that resolves where a flit sent on an output port lands. Multidrop
// channels (MECS) are modelled by letting the delivery function depend on the
// flit's destination: the flit drops off at the router computed by
// dimension-order routing.
//
// Link latency models wire length: channels that span d tile-widths take d
// cycles of link traversal, matching the paper's T = H*t_router + D*t_link
// decomposition (§7.A) in which t_link is per-unit-length delay.
package topology

import "fmt"

// Direction port indices shared by mesh-like topologies.
const (
	PortE = 0 // +x
	PortW = 1 // -x
	PortN = 2 // -y
	PortS = 3 // +y
)

// Hop describes where a flit lands after leaving a router's output port.
type Hop struct {
	Router  int // destination router, or -1 when the port ejects to a terminal
	InPort  int // input port at the destination router (or terminal index when ejecting)
	Latency int // link traversal latency in cycles (>= 1)
}

// Topology is the structural interface consumed by the network assembler and
// the routing algorithms.
type Topology interface {
	// Name identifies the topology in reports ("mesh", "cmesh", ...).
	Name() string
	// Routers returns the number of routers.
	Routers() int
	// Nodes returns the number of terminals.
	Nodes() int
	// Concentration returns terminals per router.
	Concentration() int
	// InPorts and OutPorts return the port counts of router r (MECS is
	// asymmetric: few outputs, many inputs).
	InPorts(r int) int
	OutPorts(r int) int
	// NodeRouter returns the router a terminal attaches to, plus the input
	// port the terminal injects into and the output port it ejects from.
	NodeRouter(node int) (router, inPort, outPort int)
	// NextHop resolves delivery of a flit destined for dstNode that leaves
	// router r via output port out. For ejection ports, Hop.Router is -1 and
	// Hop.InPort is the terminal node ID.
	NextHop(r, out, dstNode int) Hop
	// Route returns the dimension-order output port at router r toward
	// dstNode. class selects dimension order: 0 = X-first (XY),
	// 1 = Y-first (YX). Topologies with a single sensible DOR (MECS, FBFLY)
	// may ignore class. Returns the ejection port when dstNode is local.
	Route(r, dstNode, class int) int
	// AvgDistance returns the average Manhattan distance in tile units
	// between two uniformly chosen distinct terminals (used in reports).
	AvgDistance() float64
}

// grid is shared geometry for the four topologies: routers on a kx × ky grid
// with conc terminals per router and a tile-width span per router pitch.
type grid struct {
	kx, ky, conc int
	span         int // tile widths between adjacent routers (wire length model)
}

func (g grid) Routers() int               { return g.kx * g.ky }
func (g grid) Nodes() int                 { return g.kx * g.ky * g.conc }
func (g grid) Concentration() int         { return g.conc }
func (g grid) coord(r int) (x, y int)     { return r % g.kx, r / g.kx }
func (g grid) router(x, y int) int        { return y*g.kx + x }
func (g grid) nodeHome(node int) int      { return node / g.conc }
func (g grid) nodeSlot(node int) int      { return node % g.conc }
func (g grid) validNode(node int) bool    { return node >= 0 && node < g.Nodes() }
func (g grid) validRouter(r int) bool     { return r >= 0 && r < g.Routers() }
func (g grid) terminalPorts(base int) int { return base + g.conc }

func (g grid) checkNode(node int) {
	if !g.validNode(node) {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", node, g.Nodes()))
	}
}

// avgGridDistance computes the mean Manhattan distance (in tile units)
// between distinct terminals for a concentrated grid layout in which the
// conc terminals of a router sit at the router's position.
func (g grid) avgGridDistance() float64 {
	total := 0.0
	n := 0
	for a := 0; a < g.Routers(); a++ {
		ax, ay := g.coord(a)
		for b := 0; b < g.Routers(); b++ {
			bx, by := g.coord(b)
			d := abs(ax-bx) + abs(ay-by)
			pairs := g.conc * g.conc
			if a == b {
				pairs = g.conc * (g.conc - 1)
			}
			total += float64(d * g.span * pairs)
			n += pairs
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
