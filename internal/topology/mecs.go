package topology

import "fmt"

// MECS is the Multidrop Express Cube (Grot, Hestness, Keckler & Mutlu,
// HPCA 2009): each router drives one multidrop channel per direction
// (E, W, N, S) that passes every router further along that direction; a flit
// drops off at the router chosen by routing. Output radix therefore stays at
// 4 + conc while the input side has a dedicated drop port per upstream
// router in the row/column. The paper (§7.A) configures MECS without
// replicated channels, noting its crossbar is simpler than FBFLY's.
//
// Port layout per router at (x, y):
//
//	outputs: 0..3 directions (E, W, N, S), 4.. terminals
//	inputs:  0 .. kx-2            row drop ports, ordered by source x
//	                              (skipping x itself)
//	         kx-1 .. kx+ky-3      column drop ports, ordered by source y
//	         kx+ky-2 ..           terminal ports
type MECS struct {
	grid
}

// NewMECS builds a kx × ky MECS with conc terminals per router. Channels
// span 2·distance tile widths (concentrated layout).
func NewMECS(kx, ky, conc int) *MECS {
	if kx < 2 || ky < 2 || conc < 1 {
		panic(fmt.Sprintf("topology: invalid mecs %dx%d conc %d", kx, ky, conc))
	}
	return &MECS{grid: grid{kx: kx, ky: ky, conc: conc, span: 2}}
}

// Name implements Topology.
func (m *MECS) Name() string { return "mecs" }

func (m *MECS) dropPorts() int { return m.kx - 1 + m.ky - 1 }

// InPorts implements Topology.
func (m *MECS) InPorts(r int) int { return m.terminalPorts(m.dropPorts()) }

// OutPorts implements Topology.
func (m *MECS) OutPorts(r int) int { return m.terminalPorts(4) }

// rowDrop returns the input port at a router with x-coordinate atX receiving
// from the row source at fromX.
func (m *MECS) rowDrop(atX, fromX int) int {
	if fromX < atX {
		return fromX
	}
	return fromX - 1
}

// colDrop returns the input port at a router with y-coordinate atY receiving
// from the column source at fromY.
func (m *MECS) colDrop(atY, fromY int) int {
	base := m.kx - 1
	if fromY < atY {
		return base + fromY
	}
	return base + fromY - 1
}

// NodeRouter implements Topology.
func (m *MECS) NodeRouter(node int) (router, inPort, outPort int) {
	m.checkNode(node)
	return m.nodeHome(node), m.dropPorts() + m.nodeSlot(node), 4 + m.nodeSlot(node)
}

// NextHop implements Topology. For direction ports the drop-off router is
// the one dimension-order routing targets: the destination's coordinate in
// the traversed dimension.
func (m *MECS) NextHop(r, out, dstNode int) Hop {
	x, y := m.coord(r)
	switch out {
	case PortE, PortW:
		dx, _ := m.coord(m.nodeHome(dstNode))
		if (out == PortE && dx <= x) || (out == PortW && dx >= x) {
			panic(fmt.Sprintf("topology: mecs flit to node %d misrouted on port %d at router %d", dstNode, out, r))
		}
		return Hop{Router: m.router(dx, y), InPort: m.rowDrop(dx, x), Latency: m.span * abs(dx-x)}
	case PortN, PortS:
		_, dy := m.coord(m.nodeHome(dstNode))
		if (out == PortS && dy <= y) || (out == PortN && dy >= y) {
			panic(fmt.Sprintf("topology: mecs flit to node %d misrouted on port %d at router %d", dstNode, out, r))
		}
		return Hop{Router: m.router(x, dy), InPort: m.colDrop(dy, y), Latency: m.span * abs(dy-y)}
	default:
		return Hop{Router: -1, InPort: r*m.conc + (out - 4), Latency: 1}
	}
}

// Route implements Topology: dimension-order with single-hop-per-dimension
// semantics (the multidrop channel carries the flit all the way to the turn
// point). Class 0 = X first, class 1 = Y first.
func (m *MECS) Route(r, dstNode, class int) int {
	m.checkNode(dstNode)
	dr := m.nodeHome(dstNode)
	if dr == r {
		return 4 + m.nodeSlot(dstNode)
	}
	x, y := m.coord(r)
	dx, dy := m.coord(dr)
	if class == 0 {
		if dx != x {
			return stepX(x, dx)
		}
		return stepY(y, dy)
	}
	if dy != y {
		return stepY(y, dy)
	}
	return stepX(x, dx)
}

// AvgDistance implements Topology.
func (m *MECS) AvgDistance() float64 { return m.avgGridDistance() }
