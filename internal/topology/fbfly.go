package topology

import "fmt"

// FBFly is the flattened butterfly (Kim, Balfour & Dally, MICRO 2007): every
// router has a dedicated bidirectional channel to every other router in its
// row and in its column, so dimension-order routing needs at most one hop
// per dimension. Paper §7.A evaluates it with 4 VCs per input port and the
// same channel bandwidth as the mesh.
//
// Port layout per router at (x, y) (symmetric in/out):
//
//	0 .. kx-2           row channels, ordered by the remote x coordinate
//	                    (skipping x itself)
//	kx-1 .. kx+ky-3     column channels, ordered by the remote y coordinate
//	                    (skipping y itself)
//	kx+ky-2 ..          terminal ports
type FBFly struct {
	grid
}

// NewFBFly builds a kx × ky flattened butterfly with conc terminals per
// router. Express channels span 2·distance tile widths like the CMesh they
// replace (routers spaced two tiles apart).
func NewFBFly(kx, ky, conc int) *FBFly {
	if kx < 2 || ky < 2 || conc < 1 {
		panic(fmt.Sprintf("topology: invalid fbfly %dx%d conc %d", kx, ky, conc))
	}
	return &FBFly{grid: grid{kx: kx, ky: ky, conc: conc, span: 2}}
}

// Name implements Topology.
func (f *FBFly) Name() string { return "fbfly" }

func (f *FBFly) dirPorts() int { return f.kx - 1 + f.ky - 1 }

// InPorts implements Topology.
func (f *FBFly) InPorts(r int) int { return f.terminalPorts(f.dirPorts()) }

// OutPorts implements Topology.
func (f *FBFly) OutPorts(r int) int { return f.terminalPorts(f.dirPorts()) }

// rowPort returns the port index at router x-coordinate x that reaches row
// peer at x-coordinate tx.
func (f *FBFly) rowPort(x, tx int) int {
	if tx < x {
		return tx
	}
	return tx - 1
}

// colPort returns the port index at router y-coordinate y that reaches
// column peer at y-coordinate ty.
func (f *FBFly) colPort(y, ty int) int {
	base := f.kx - 1
	if ty < y {
		return base + ty
	}
	return base + ty - 1
}

// NodeRouter implements Topology.
func (f *FBFly) NodeRouter(node int) (router, inPort, outPort int) {
	f.checkNode(node)
	p := f.dirPorts() + f.nodeSlot(node)
	return f.nodeHome(node), p, p
}

// NextHop implements Topology.
func (f *FBFly) NextHop(r, out, dstNode int) Hop {
	x, y := f.coord(r)
	switch {
	case out < f.kx-1: // row channel
		tx := out
		if tx >= x {
			tx++
		}
		return Hop{Router: f.router(tx, y), InPort: f.rowPortAt(tx, x), Latency: f.span * abs(tx-x)}
	case out < f.dirPorts(): // column channel
		ty := out - (f.kx - 1)
		if ty >= y {
			ty++
		}
		return Hop{Router: f.router(x, ty), InPort: f.colPortAt(ty, y), Latency: f.span * abs(ty-y)}
	default: // ejection
		return Hop{Router: -1, InPort: r*f.conc + (out - f.dirPorts()), Latency: 1}
	}
}

// rowPortAt returns the input port at a router with x-coordinate atX that
// receives from the row peer at fromX.
func (f *FBFly) rowPortAt(atX, fromX int) int { return f.rowPort(atX, fromX) }

// colPortAt returns the input port at a router with y-coordinate atY that
// receives from the column peer at fromY.
func (f *FBFly) colPortAt(atY, fromY int) int { return f.colPort(atY, fromY) }

// Route implements Topology: dimension-order (X then Y for class 0, Y then X
// for class 1); each dimension is one hop.
func (f *FBFly) Route(r, dstNode, class int) int {
	f.checkNode(dstNode)
	dr := f.nodeHome(dstNode)
	if dr == r {
		return f.dirPorts() + f.nodeSlot(dstNode)
	}
	x, y := f.coord(r)
	dx, dy := f.coord(dr)
	if class == 0 {
		if dx != x {
			return f.rowPort(x, dx)
		}
		return f.colPort(y, dy)
	}
	if dy != y {
		return f.colPort(y, dy)
	}
	return f.rowPort(x, dx)
}

// AvgDistance implements Topology.
func (f *FBFly) AvgDistance() float64 { return f.avgGridDistance() }
