package topology

import "fmt"

// Mesh is a kx × ky 2D mesh with conc terminals per router. With conc == 1
// it is the plain mesh of paper §6.B (synthetic experiments, 8×8); with
// conc == 4 it is the concentrated mesh (CMesh) of Balfour & Dally used for
// the CMP experiments (4×4 routers, 2 cores + 2 L2 banks per router,
// paper Fig. 7).
//
// Port layout per router: 0..3 are E, W, N, S direction ports (present on
// both input and output sides even at grid edges; edge ports are simply
// unused), 4..4+conc-1 are terminal ports (injection on the input side,
// ejection on the output side).
type Mesh struct {
	grid
	name string
}

// NewMesh builds a kx × ky mesh with one terminal per router and unit link
// span.
func NewMesh(kx, ky int) *Mesh {
	return newMesh("mesh", kx, ky, 1, 1)
}

// NewCMesh builds a kx × ky concentrated mesh with conc terminals per
// router. Link traversal is one cycle, following the paper's platform
// assumption ("we assume link traversal takes one cycle", §3.A) even though
// concentrated routers are spaced two tile widths apart.
func NewCMesh(kx, ky, conc int) *Mesh {
	return newMesh("cmesh", kx, ky, conc, 1)
}

func newMesh(name string, kx, ky, conc, span int) *Mesh {
	if kx < 2 || ky < 2 || conc < 1 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d conc %d", kx, ky, conc))
	}
	return &Mesh{grid: grid{kx: kx, ky: ky, conc: conc, span: span}, name: name}
}

// Name implements Topology.
func (m *Mesh) Name() string { return m.name }

// Dims returns the router-grid dimensions.
func (m *Mesh) Dims() (kx, ky int) { return m.kx, m.ky }

// Coord returns router r's grid coordinates.
func (m *Mesh) Coord(r int) (x, y int) { return m.grid.coord(r) }

// InPorts implements Topology.
func (m *Mesh) InPorts(r int) int { return m.terminalPorts(4) }

// OutPorts implements Topology.
func (m *Mesh) OutPorts(r int) int { return m.terminalPorts(4) }

// NodeRouter implements Topology.
func (m *Mesh) NodeRouter(node int) (router, inPort, outPort int) {
	m.checkNode(node)
	p := 4 + m.nodeSlot(node)
	return m.nodeHome(node), p, p
}

// NextHop implements Topology.
func (m *Mesh) NextHop(r, out, dstNode int) Hop {
	x, y := m.coord(r)
	switch out {
	case PortE:
		return m.neighbor(x+1, y, PortW)
	case PortW:
		return m.neighbor(x-1, y, PortE)
	case PortN:
		return m.neighbor(x, y-1, PortS)
	case PortS:
		return m.neighbor(x, y+1, PortN)
	default:
		node := r*m.conc + (out - 4)
		return Hop{Router: -1, InPort: node, Latency: 1}
	}
}

func (m *Mesh) neighbor(x, y, inPort int) Hop {
	if x < 0 || x >= m.kx || y < 0 || y >= m.ky {
		panic(fmt.Sprintf("topology: mesh hop off the grid to (%d,%d)", x, y))
	}
	return Hop{Router: m.router(x, y), InPort: inPort, Latency: m.span}
}

// Route implements Topology: dimension-order routing, class 0 = XY,
// class 1 = YX.
func (m *Mesh) Route(r, dstNode, class int) int {
	m.checkNode(dstNode)
	dr := m.nodeHome(dstNode)
	if dr == r {
		return 4 + m.nodeSlot(dstNode)
	}
	x, y := m.coord(r)
	dx, dy := m.coord(dr)
	if class == 0 { // XY
		if dx != x {
			return stepX(x, dx)
		}
		return stepY(y, dy)
	}
	// YX
	if dy != y {
		return stepY(y, dy)
	}
	return stepX(x, dx)
}

// AvgDistance implements Topology.
func (m *Mesh) AvgDistance() float64 { return m.avgGridDistance() }

func stepX(x, dx int) int {
	if dx > x {
		return PortE
	}
	return PortW
}

func stepY(y, dy int) int {
	if dy > y {
		return PortS
	}
	return PortN
}
