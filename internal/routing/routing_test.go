package routing_test

import (
	"testing"

	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
)

func TestNumClasses(t *testing.T) {
	m := topology.NewMesh(4, 4)
	if got := routing.New(routing.XY, m).NumClasses(); got != 1 {
		t.Errorf("XY classes = %d", got)
	}
	if got := routing.New(routing.YX, m).NumClasses(); got != 1 {
		t.Errorf("YX classes = %d", got)
	}
	if got := routing.New(routing.O1TURN, m).NumClasses(); got != 2 {
		t.Errorf("O1TURN classes = %d", got)
	}
}

func TestClassForDistribution(t *testing.T) {
	e := routing.New(routing.O1TURN, topology.NewMesh(4, 4))
	rng := sim.NewRNG(1)
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		counts[e.ClassFor(rng)]++
	}
	if counts[0] < 4500 || counts[0] > 5500 {
		t.Errorf("O1TURN class split %v not ~uniform", counts)
	}
	e = routing.New(routing.XY, topology.NewMesh(4, 4))
	for i := 0; i < 100; i++ {
		if e.ClassFor(rng) != 0 {
			t.Fatal("XY chose a nonzero class")
		}
	}
}

func TestXYvsYXOrder(t *testing.T) {
	m := topology.NewMesh(4, 4)
	// From router 0 (0,0) to node 15 at router (3,3): XY goes East first,
	// YX goes South first.
	xy := routing.New(routing.XY, m)
	yx := routing.New(routing.YX, m)
	if got := xy.Route(0, 15, 0); got != topology.PortE {
		t.Errorf("XY first hop = %d, want E", got)
	}
	if got := yx.Route(0, 15, 0); got != topology.PortS {
		t.Errorf("YX first hop = %d, want S", got)
	}
}

func TestO1TURNClassSelectsOrder(t *testing.T) {
	m := topology.NewMesh(4, 4)
	e := routing.New(routing.O1TURN, m)
	if got := e.Route(0, 15, 0); got != topology.PortE {
		t.Errorf("O1TURN class 0 first hop = %d, want E (XY)", got)
	}
	if got := e.Route(0, 15, 1); got != topology.PortS {
		t.Errorf("O1TURN class 1 first hop = %d, want S (YX)", got)
	}
}

// TestRoutesTerminate walks every (src router, dst node, class, algorithm)
// pair to the destination, bounding hop count by the network diameter.
func TestRoutesTerminate(t *testing.T) {
	topos := []topology.Topology{
		topology.NewMesh(4, 4),
		topology.NewCMesh(3, 3, 4),
		topology.NewMECS(4, 4, 2),
		topology.NewFBFly(4, 4, 2),
	}
	algos := []routing.Algorithm{routing.XY, routing.YX, routing.O1TURN}
	for _, topo := range topos {
		for _, algo := range algos {
			e := routing.New(algo, topo)
			for r := 0; r < topo.Routers(); r++ {
				for d := 0; d < topo.Nodes(); d++ {
					for class := 0; class < e.NumClasses(); class++ {
						walk(t, topo, e, r, d, class)
					}
				}
			}
		}
	}
}

func walk(t *testing.T, topo topology.Topology, e *routing.Engine, r, dst, class int) {
	t.Helper()
	cur := r
	for hops := 0; ; hops++ {
		if hops > topo.Routers()+2 {
			t.Fatalf("%s/%v: route %d->node %d class %d did not terminate", topo.Name(), e.Algorithm(), r, dst, class)
		}
		out := e.Route(cur, dst, class)
		h := topo.NextHop(cur, out, dst)
		if h.Router < 0 {
			if h.InPort != dst {
				t.Fatalf("%s: route %d->%d ejected at node %d", topo.Name(), r, dst, h.InPort)
			}
			return
		}
		cur = h.Router
	}
}
