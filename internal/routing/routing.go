// Package routing implements the routing algorithms the paper evaluates
// (§5): the two dimension-order algorithms XY and YX, and O1TURN (Seo et
// al., ISCA 2005), which picks the dimension order uniformly at random per
// packet and is made deadlock-free by splitting the virtual channels into an
// XY class and a YX class.
//
// All algorithms are used with lookahead routing (Galles): the output port
// for the next router is computed during the current hop and carried in the
// flit, keeping route computation off the router critical path (§3.A).
package routing

import (
	"fmt"

	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
)

// Algorithm identifies a routing algorithm.
type Algorithm int

const (
	// XY routes X-dimension first (DOR).
	XY Algorithm = iota
	// YX routes Y-dimension first (DOR).
	YX
	// O1TURN randomly chooses XY or YX per packet, with VC classes for
	// deadlock freedom.
	O1TURN
)

func (a Algorithm) String() string {
	switch a {
	case XY:
		return "XY"
	case YX:
		return "YX"
	case O1TURN:
		return "O1TURN"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Engine binds an algorithm to a topology.
type Engine struct {
	algo Algorithm
	topo topology.Topology
}

// New builds a routing engine.
func New(algo Algorithm, topo topology.Topology) *Engine {
	return &Engine{algo: algo, topo: topo}
}

// Algorithm returns the configured algorithm.
func (e *Engine) Algorithm() Algorithm { return e.algo }

// NumClasses returns how many VC classes the algorithm needs for deadlock
// freedom: O1TURN needs 2 (XY flits and YX flits must not share VCs); the
// single-order algorithms need 1.
func (e *Engine) NumClasses() int {
	if e.algo == O1TURN {
		return 2
	}
	return 1
}

// ClassFor picks the routing class for a new packet. O1TURN chooses the
// first dimension uniformly at random (paper §5); XY and YX always use
// class 0.
func (e *Engine) ClassFor(rng *sim.RNG) int {
	if e.algo == O1TURN {
		return rng.Intn(2)
	}
	return 0
}

// Route returns the output port at router r for a packet to dstNode with
// routing class class.
func (e *Engine) Route(r, dstNode, class int) int {
	switch e.algo {
	case XY:
		return e.topo.Route(r, dstNode, 0)
	case YX:
		return e.topo.Route(r, dstNode, 1)
	case O1TURN:
		return e.topo.Route(r, dstNode, class)
	default:
		panic(fmt.Sprintf("routing: unknown algorithm %d", int(e.algo)))
	}
}

// RouteAvoid is the fault-aware variant of Route: it detours around dead
// links with a fixed, deterministic preference order so every kernel makes
// the same choice.
//
// Selection order:
//
//  1. the nominal DOR port, if it is an ejection port or its link is alive;
//  2. the other dimension's DOR step toward the destination (the O1TURN
//     alternative), if that port is wired and alive;
//  3. the first wired, alive direction port in fixed E, W, N, S order
//     (a deterministic misroute);
//  4. the nominal port — every escape is dead, so the flit waits in place
//     for the link to recover (faults are transient by validation).
//
// wired reports whether a direction port connects to a neighbor; dead
// reports whether the port's link is currently unusable. Misrouting can
// raise hop counts, so the network bounds livelock with a hop limit when a
// fault schedule is configured.
func (e *Engine) RouteAvoid(r, dstNode, class int, wired, dead func(out int) bool) int {
	nominal := e.Route(r, dstNode, class)
	if nominal >= 4 || !dead(nominal) {
		return nominal
	}
	for dimClass := 0; dimClass < 2; dimClass++ {
		if alt := e.topo.Route(r, dstNode, dimClass); alt != nominal && alt < 4 && wired(alt) && !dead(alt) {
			return alt
		}
	}
	for out := 0; out < 4; out++ {
		if wired(out) && !dead(out) {
			return out
		}
	}
	return nominal
}
