package energy_test

import (
	"math"
	"testing"

	"pseudocircuit/internal/energy"
)

// TestTableIIPercentages checks the reproduced Table II component shares:
// buffer 23.4%, crossbar 76.22%, arbiter 0.24%.
func TestTableIIPercentages(t *testing.T) {
	buf, xbar, arb := energy.PaperParams().Shares()
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 0.005 {
			t.Errorf("%s share = %.4f, want %.4f", name, got, want)
		}
	}
	check("buffer", buf, 0.234)
	check("crossbar", xbar, 0.7622)
	check("arbiter", arb, 0.0024)
	if math.Abs(buf+xbar+arb-1) > 1e-12 {
		t.Errorf("shares sum to %v", buf+xbar+arb)
	}
}

func TestMeterAccounting(t *testing.T) {
	m := energy.NewMeter()
	for i := 0; i < 10; i++ {
		m.AddWrite()
		m.AddRead()
		m.AddTraversal()
		m.AddArbitration()
	}
	p := energy.PaperParams()
	wantBuf := 10 * (p.BufferWrite + p.BufferRead)
	if got := m.BufferEnergy(); math.Abs(got-wantBuf) > 1e-9 {
		t.Errorf("BufferEnergy = %v, want %v", got, wantBuf)
	}
	if got := m.CrossbarEnergy(); math.Abs(got-10*p.Crossbar) > 1e-9 {
		t.Errorf("CrossbarEnergy = %v", got)
	}
	if got := m.ArbiterEnergy(); math.Abs(got-10*p.Arbiter) > 1e-9 {
		t.Errorf("ArbiterEnergy = %v", got)
	}
	want := 10 * p.PerHopReference()
	if got := m.Total(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

func TestZeroMeter(t *testing.T) {
	var m energy.Meter
	if m.Total() != 0 {
		t.Errorf("zero meter total = %v", m.Total())
	}
	b, x, a := m.Params.Shares()
	if b != 0 || x != 0 || a != 0 {
		t.Error("zero params shares not zero")
	}
}
