// Package energy implements the Orion-style router energy model the paper
// uses (§5, Table II). Energy is accounted per micro-architectural event:
// buffer write, buffer read, crossbar traversal and switch arbitration.
// Pseudo-circuit comparators are assumed negligible, as in the paper.
//
// Table II (45 nm) gives per-component energy and its share of router
// energy:
//
//	buffer   23.40 %   (1.96 pJ per flit: write + read)
//	crossbar 76.22 %   (6.38 pJ per traversal)
//	arbiter   0.24 %   (0.02 pJ per allocation)
//
// Only the ratios matter for the paper's claim: schemes without buffer
// bypassing save almost nothing (arbiter energy is tiny), while buffer
// bypassing saves the buffer share times the bypass rate (Fig. 11).
package energy

// Params holds per-event energies in picojoules.
type Params struct {
	BufferWrite float64 // per flit written into an input VC buffer
	BufferRead  float64 // per flit read out of an input VC buffer
	Crossbar    float64 // per flit crossbar traversal
	Arbiter     float64 // per switch-arbitration grant
}

// PaperParams returns the Table II energy characterization.
func PaperParams() Params {
	return Params{
		BufferWrite: 0.98,
		BufferRead:  0.98,
		Crossbar:    6.38,
		Arbiter:     0.02,
	}
}

// Meter accumulates event counts for one simulation and converts them to
// energy. The zero value with zero Params counts events without energy;
// use NewMeter for the paper's model.
type Meter struct {
	Params
	Writes       uint64
	Reads        uint64
	Traversals   uint64
	Arbitrations uint64
}

// NewMeter returns a meter with the paper's Table II parameters.
func NewMeter() *Meter {
	return &Meter{Params: PaperParams()}
}

// AddWrite records a buffer write.
func (m *Meter) AddWrite() { m.Writes++ }

// AddRead records a buffer read.
func (m *Meter) AddRead() { m.Reads++ }

// AddTraversal records a crossbar traversal.
func (m *Meter) AddTraversal() { m.Traversals++ }

// AddArbitration records a switch-arbitration grant.
func (m *Meter) AddArbitration() { m.Arbitrations++ }

// MergeCounts folds src's event counts into m and zeroes them in src,
// leaving both meters' Params untouched. It is the shard-drain primitive of
// the parallel cycle kernel: per-shard meters are merged into the global
// meter in fixed shard order once per cycle. All fields are sums, so the
// per-shard grouping cannot change the totals.
func (m *Meter) MergeCounts(src *Meter) {
	m.Writes += src.Writes
	m.Reads += src.Reads
	m.Traversals += src.Traversals
	m.Arbitrations += src.Arbitrations
	src.Writes, src.Reads, src.Traversals, src.Arbitrations = 0, 0, 0, 0
}

// MergeAll folds every shard meter into m in slice order. The parallel
// kernel keeps its per-shard meters slice-indexed (one contiguous []Meter
// owned by the network, shard i writing only element i), so the
// once-per-cycle drain is a single ordered walk over that slice.
func (m *Meter) MergeAll(shards []Meter) {
	for i := range shards {
		m.MergeCounts(&shards[i])
	}
}

// BufferEnergy returns total buffer energy in pJ.
func (m *Meter) BufferEnergy() float64 {
	return float64(m.Writes)*m.BufferWrite + float64(m.Reads)*m.BufferRead
}

// CrossbarEnergy returns total crossbar energy in pJ.
func (m *Meter) CrossbarEnergy() float64 {
	return float64(m.Traversals) * m.Crossbar
}

// ArbiterEnergy returns total arbiter energy in pJ.
func (m *Meter) ArbiterEnergy() float64 {
	return float64(m.Arbitrations) * m.Arbiter
}

// Total returns total router energy in pJ.
func (m *Meter) Total() float64 {
	return m.BufferEnergy() + m.CrossbarEnergy() + m.ArbiterEnergy()
}

// PerHopReference returns the energy of one fully pipelined baseline flit
// hop (write + read + traversal + arbitration), the unit Table II's
// percentages describe.
func (p Params) PerHopReference() float64 {
	return p.BufferWrite + p.BufferRead + p.Crossbar + p.Arbiter
}

// Shares returns each component's share of PerHopReference, in the Table II
// order (buffer, crossbar, arbiter). Shares sum to 1.
func (p Params) Shares() (buffer, crossbar, arbiter float64) {
	ref := p.PerHopReference()
	if ref == 0 {
		return 0, 0, 0
	}
	return (p.BufferWrite + p.BufferRead) / ref, p.Crossbar / ref, p.Arbiter / ref
}
