package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Error("KindByName accepted an unknown name")
	}
	if Kind(200).String() != "?" {
		t.Error("out-of-range Kind must stringify as ?")
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer accessors must be zero")
	}
}

func TestNewTracerRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTracer(%d) did not panic", c)
				}
			}()
			NewTracer(c)
		}()
	}
}

// The ring must keep the newest events, count evictions, and report retained
// events in recording order across the wrap point.
func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Cycle: int64(i), Kind: Traverse})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	for i, ev := range tr.Events() {
		if want := int64(6 + i); ev.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d", i, ev.Cycle, want)
		}
	}
}

// demoTracer records one event of each kind, in cycle order, as a pipeline
// would: inject, buffer write, SA grant, traverse, a bypassed hop, eject.
func demoTracer() *Tracer {
	tr := NewTracer(16)
	tr.Record(Event{Cycle: 0, Kind: Inject, Packet: 7, Seq: 0, Src: 1, Dst: 6, Loc: 1, In: -1, VC: 0, Out: 2})
	tr.Record(Event{Cycle: 1, Kind: BufWrite, Packet: 7, Seq: 0, Src: 1, Dst: 6, Loc: 1, In: 4, VC: 0, Out: 2})
	tr.Record(Event{Cycle: 1, Kind: SAGrant, Packet: 7, Seq: 0, Src: 1, Dst: 6, Loc: 1, In: 4, VC: 0, Out: 2})
	tr.Record(Event{Cycle: 2, Kind: Traverse, Packet: 7, Seq: 0, Src: 1, Dst: 6, Loc: 1, In: 4, VC: 0, Out: 2})
	tr.Record(Event{Cycle: 3, Kind: Bypass, Packet: 7, Seq: 0, Src: 1, Dst: 6, Loc: 2, In: 0, VC: 0, Out: 4})
	tr.Record(Event{Cycle: 4, Kind: Eject, Packet: 7, Seq: 0, Src: 1, Dst: 6, Loc: 6, In: -1, VC: 0, Out: -1})
	return tr
}

func TestEventsJSONLRoundTrip(t *testing.T) {
	tr := demoTracer()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateEventsJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip invalid: %v\n%s", err, buf.String())
	}
	if n != tr.Len() {
		t.Errorf("validated %d events, tracer holds %d", n, tr.Len())
	}
}

func TestValidateEventsRejects(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "empty"},
		{"unknown event", `{"cycle":0,"ev":"warp","pkt":0,"seq":0,"src":0,"dst":0,"at":0,"in":0,"vc":0,"out":0}`, "unknown event"},
		{"unknown field", `{"cycle":0,"ev":"st","bogus":1,"pkt":0,"seq":0,"src":0,"dst":0,"at":0,"in":0,"vc":0,"out":0}`, "bogus"},
		{"negative cycle", `{"cycle":-1,"ev":"st","pkt":0,"seq":0,"src":0,"dst":0,"at":0,"in":0,"vc":0,"out":0}`, "negative cycle"},
		{
			"cycle regression",
			`{"cycle":5,"ev":"st","pkt":0,"seq":0,"src":0,"dst":0,"at":0,"in":0,"vc":0,"out":0}` + "\n" +
				`{"cycle":4,"ev":"st","pkt":0,"seq":0,"src":0,"dst":0,"at":0,"in":0,"vc":0,"out":0}`,
			"before previous",
		},
	}
	for _, c := range cases {
		if _, err := ValidateEventsJSONL(strings.NewReader(c.input)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := demoTracer()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("chrome trace invalid: %v\n%s", err, buf.String())
	}
	// 6 events + one process_name metadata per distinct pid: router 1,
	// router 2, ni 1, ni 6.
	if want := tr.Len() + 4; n != want {
		t.Errorf("trace events = %d, want %d", n, want)
	}
	out := buf.String()
	// NI lanes must not collide with router lanes: node 1 injects and
	// router 1 traverses, so both pids appear.
	if !strings.Contains(out, `"name":"router 1"`) || !strings.Contains(out, `"name":"ni 1"`) {
		t.Errorf("missing process names:\n%s", out)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"not json", "nope", "chrome trace"},
		{"no events", `{"traceEvents":[]}`, "no traceEvents"},
		{"missing required", `{"traceEvents":[{"ph":"X","ts":1,"pid":0}]}`, "missing required"},
		{"missing ts", `{"traceEvents":[{"name":"a","ph":"X","pid":0}]}`, "missing ts"},
	}
	for _, c := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(c.input)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
	// Metadata events carry no ts and must pass.
	ok := `{"traceEvents":[{"name":"process_name","ph":"M","pid":0}]}`
	if _, err := ValidateChromeTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("metadata-only trace rejected: %v", err)
	}
}

// Recording into a warm ring must not allocate — the tracer is part of the
// steady-state zero-alloc contract.
func TestRecordZeroAlloc(t *testing.T) {
	tr := NewTracer(64)
	for i := 0; i < 128; i++ { // fill past the wrap point
		tr.Record(Event{Cycle: int64(i)})
	}
	avg := testing.AllocsPerRun(100, func() {
		tr.Record(Event{Cycle: 1000})
	})
	if avg != 0 {
		t.Errorf("Record allocates %.2f per call, want 0", avg)
	}
}
