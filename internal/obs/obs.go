// Package obs is the opt-in flit-lifecycle event tracer: a bounded ring
// buffer of per-flit pipeline events (inject, buffer write, switch
// arbitration, switch traversal, buffer bypass, eject) with exporters to
// JSONL and to Chrome's trace_event format for chrome://tracing / Perfetto.
//
// Tracing is observation only — it never feeds back into the simulation, so
// enabling it cannot perturb results — and the ring is preallocated, so the
// recording path performs no allocations (the steady-state zero-alloc
// contract holds with tracing enabled). When the ring fills, the oldest
// events are evicted and counted in Dropped.
package obs

// Kind identifies a flit-lifecycle pipeline event.
type Kind uint8

const (
	// Inject: a flit left its source NI onto the injection link.
	Inject Kind = iota
	// BufWrite: a flit was written into an input VC buffer (BW stage).
	BufWrite
	// SAGrant: switch arbitration granted the crossbar to a flit for next
	// cycle.
	SAGrant
	// Traverse: a flit crossed the crossbar (ST stage).
	Traverse
	// Bypass: a flit crossed the crossbar directly from the link, skipping
	// the buffer write (pseudo-circuit buffer bypassing).
	Bypass
	// Eject: a flit reached its destination NI.
	Eject
	// LinkDown: a scheduled fault disabled a router's direction link. Fault
	// events carry no flit identity: Packet is 0 and Seq/Src/Dst/In/VC are -1;
	// Loc is the router and Out the failed port.
	LinkDown
	// LinkUp: a scheduled fault re-enabled a direction link.
	LinkUp
	// RouterDown: a scheduled fault disabled a whole router (Out is -1).
	RouterDown
	// RouterUp: a scheduled fault re-enabled a router.
	RouterUp
	// Drop: a packet was killed by a fault (purged, credits replenished).
	// Recorded once per packet against its head flit at the source NI.
	Drop

	numKinds
)

var kindNames = [numKinds]string{
	"inject", "bw", "sa", "st", "bypass", "eject",
	"link-down", "link-up", "router-down", "router-up", "drop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// KindByName resolves an exported event name back to its Kind.
func KindByName(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one recorded lifecycle event. Loc is the router ID for router
// events (BufWrite, SAGrant, Traverse, Bypass) and the terminal node for NI
// events (Inject, Eject). Fields that do not apply carry -1.
type Event struct {
	Cycle  int64
	Kind   Kind
	Packet uint64
	Seq    int32 // flit index within its packet
	Src    int32 // packet source node
	Dst    int32 // packet destination node
	Loc    int32 // router ID, or terminal node for Inject/Eject
	In     int32 // input port at Loc, -1 for NI events
	VC     int32 // virtual channel on the input side
	Out    int32 // output port the flit is heading to, -1 when unknown
}

// Tracer is a bounded ring of Events. A nil *Tracer is the valid "disabled"
// value; callers guard recording sites with a nil check so the disabled path
// costs nothing. One simulation owns one tracer; it is not safe for
// concurrent use.
type Tracer struct {
	ring    []Event // grows to cap, then wraps
	head    int     // index of the oldest event once wrapped
	dropped uint64
}

// NewTracer returns a tracer retaining up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic("obs: tracer capacity must be positive")
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Record appends one event, evicting the oldest when the ring is full.
func (t *Tracer) Record(ev Event) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return
	}
	t.ring[t.head] = ev
	t.head = (t.head + 1) % len(t.ring)
	t.dropped++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Dropped returns how many events were evicted by the ring bound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events in recording order (a copy; safe to
// keep). Reporting-path only: it allocates.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}
