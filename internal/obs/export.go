package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// eventJSON is the JSONL wire form of an Event. Every field is always
// present so the schema is strict and validators can reject unknown fields.
type eventJSON struct {
	Cycle int64  `json:"cycle"`
	Ev    string `json:"ev"`
	Pkt   uint64 `json:"pkt"`
	Seq   int32  `json:"seq"`
	Src   int32  `json:"src"`
	Dst   int32  `json:"dst"`
	At    int32  `json:"at"` // router ID, or terminal node for inject/eject
	In    int32  `json:"in"`
	VC    int32  `json:"vc"`
	Out   int32  `json:"out"`
}

// WriteJSONL writes the tracer's retained events as one JSON object per
// line, in recording order.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		line := eventJSON{
			Cycle: ev.Cycle, Ev: ev.Kind.String(), Pkt: ev.Packet, Seq: ev.Seq,
			Src: ev.Src, Dst: ev.Dst, At: ev.Loc, In: ev.In, VC: ev.VC, Out: ev.Out,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ValidateEventsJSONL checks a lifecycle-event JSONL stream against the
// schema: every line must strictly decode as an eventJSON with a known event
// name, and cycles must be non-negative and non-decreasing (events are
// recorded in simulation order). It returns the number of events validated.
func ValidateEventsJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	last := int64(-1)
	for sc.Scan() {
		data := bytes.TrimSpace(sc.Bytes())
		if len(data) == 0 {
			continue
		}
		n++
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var ev eventJSON
		if err := dec.Decode(&ev); err != nil {
			return n, fmt.Errorf("event line %d: %v", n, err)
		}
		if _, ok := KindByName(ev.Ev); !ok {
			return n, fmt.Errorf("event line %d: unknown event %q", n, ev.Ev)
		}
		if ev.Cycle < 0 {
			return n, fmt.Errorf("event line %d: negative cycle %d", n, ev.Cycle)
		}
		if ev.Cycle < last {
			return n, fmt.Errorf("event line %d: cycle %d before previous %d", n, ev.Cycle, last)
		}
		last = ev.Cycle
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("events: empty stream")
	}
	return n, nil
}

// Chrome trace_event export. One simulated cycle maps to one microsecond of
// trace time. Router events become complete ("X") slices one cycle long on
// pid = router ID, tid = input port; NI events become thread-scoped instants
// on pid = niPidBase + node. Metadata events name each process so
// chrome://tracing and Perfetto render "router N" / "ni N" lanes.
const niPidBase = 1 << 20

type chromeArgs struct {
	Pkt uint64 `json:"pkt"`
	Seq int32  `json:"seq"`
	Src int32  `json:"src"`
	Dst int32  `json:"dst"`
	VC  int32  `json:"vc"`
	Out int32  `json:"out"`
}

// ChromeEvent is one trace_event entry: a slice (ph "X"), instant ("i") or
// metadata ("M") record. It is the shared wire shape for every exporter that
// wants its spans on the same chrome://tracing / Perfetto timeline as the
// flit-lifecycle traces (the service layer's job spans reuse it).
type ChromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   int64       `json:"ts"`
	Dur  int64       `json:"dur,omitempty"`
	Pid  int64       `json:"pid"`
	Tid  int64       `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args interface{} `json:"args,omitempty"`
}

// ChromeWriter streams ChromeEvents as trace_event JSON (the object form:
// {"traceEvents": [...]}). NewChromeWriter writes the header; Event appends
// entries; Close terminates the array and flushes. The writer dedups
// process_name metadata so every exporter sharing the file names its lanes
// exactly once.
type ChromeWriter struct {
	bw    *bufio.Writer
	first bool
	named map[int64]bool
}

// NewChromeWriter starts a trace_event stream on w.
func NewChromeWriter(w io.Writer) (*ChromeWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return nil, err
	}
	return &ChromeWriter{bw: bw, first: true, named: map[int64]bool{}}, nil
}

// Event appends one trace entry.
func (cw *ChromeWriter) Event(ev ChromeEvent) error {
	if !cw.first {
		if err := cw.bw.WriteByte(','); err != nil {
			return err
		}
	}
	cw.first = false
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = cw.bw.Write(data)
	return err
}

// NameProcess emits a process_name metadata entry for pid once; repeated
// calls for the same pid are no-ops.
func (cw *ChromeWriter) NameProcess(pid int64, name string) error {
	if cw.named[pid] {
		return nil
	}
	cw.named[pid] = true
	return cw.Event(ChromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]string{"name": name},
	})
}

// Close terminates the traceEvents array and flushes.
func (cw *ChromeWriter) Close() error {
	if _, err := cw.bw.WriteString("]}\n"); err != nil {
		return err
	}
	return cw.bw.Flush()
}

// WriteChromeTrace writes the retained events in Chrome trace_event JSON
// (the object form: {"traceEvents": [...]}), loadable by chrome://tracing
// and ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	cw, err := NewChromeWriter(w)
	if err != nil {
		return err
	}
	for _, ev := range t.Events() {
		pid := int64(ev.Loc)
		procName := fmt.Sprintf("router %d", ev.Loc)
		tid := int64(ev.In)
		ph, dur, scope := "X", int64(1), ""
		switch ev.Kind {
		case Inject, Eject, Drop:
			pid = niPidBase + int64(ev.Loc)
			procName = fmt.Sprintf("ni %d", ev.Loc)
			tid = int64(ev.VC)
			ph, dur, scope = "i", 0, "t"
		case SAGrant:
			ph, dur, scope = "i", 0, "t"
		case LinkDown, LinkUp, RouterDown, RouterUp:
			// Process-scoped instants on the faulted router's lane.
			ph, dur, scope = "i", 0, "p"
		}
		if tid < 0 {
			tid = 0
		}
		if err := cw.NameProcess(pid, procName); err != nil {
			return err
		}
		name := fmt.Sprintf("%s p%d.%d", ev.Kind, ev.Packet, ev.Seq)
		switch ev.Kind {
		case LinkDown, LinkUp:
			name = fmt.Sprintf("%s out%d", ev.Kind, ev.Out)
		case RouterDown, RouterUp:
			name = ev.Kind.String()
		}
		if err := cw.Event(ChromeEvent{
			Name: name,
			Ph:   ph, Ts: ev.Cycle, Dur: dur, Pid: pid, Tid: tid, S: scope,
			Args: chromeArgs{Pkt: ev.Packet, Seq: ev.Seq, Src: ev.Src, Dst: ev.Dst, VC: ev.VC, Out: ev.Out},
		}); err != nil {
			return err
		}
	}
	return cw.Close()
}

// ValidateChromeTrace checks that a Chrome trace decodes as the trace_event
// object form with a non-empty traceEvents array whose entries carry the
// required name/ph/ts/pid fields. It returns the number of trace events.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  *float64 `json:"pid"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("chrome trace: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("chrome trace: no traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == nil || ev.Ph == nil || ev.Pid == nil {
			return i, fmt.Errorf("chrome trace: event %d missing required field", i)
		}
		if *ev.Ph != "M" && ev.Ts == nil {
			return i, fmt.Errorf("chrome trace: event %d missing ts", i)
		}
	}
	return len(doc.TraceEvents), nil
}
