package evc_test

import (
	"testing"

	"pseudocircuit/internal/evc"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
)

// TestEVCDrainsClean: after traffic stops, the EVC network is quiescent —
// express latches empty, credits conserved (an unbalanced credit relay
// would trip the credit-overflow panics or strand flits).
func TestEVCDrainsClean(t *testing.T) {
	m := topology.NewMesh(6, 6)
	cfg := evcConfig(m)
	n := network.New(cfg)
	n.CheckInvariants = true
	w := traffic.NewFlows(
		traffic.Flow{Src: 0, Dst: 5, Size: 5, Period: 3, Count: 60},  // long row: express
		traffic.Flow{Src: 30, Dst: 2, Size: 5, Period: 4, Count: 40}, // row+column
		traffic.Flow{Src: 7, Dst: 8, Size: 1, Period: 2, Count: 90},  // 1 hop: NVC only
	)
	if !n.Drain(w, 20000) {
		t.Fatalf("EVC network failed to drain: inflight=%d", n.InFlight())
	}
	if !n.Quiescent() {
		t.Fatal("EVC network not quiescent")
	}
	if n.Stats.PacketsDelivered != 190 {
		t.Fatalf("delivered %d, want 190", n.Stats.PacketsDelivered)
	}
}

// TestEVCLongHaulLatency: a lone long-haul flow gains from express bypasses
// versus the plain baseline.
func TestEVCLongHaulLatency(t *testing.T) {
	lat := func(express bool) float64 {
		m := topology.NewMesh(8, 8)
		var cfg network.Config
		if express {
			cfg = evcConfig(m)
		} else {
			cfg = network.DefaultConfig(m)
		}
		n := network.New(cfg)
		n.CheckInvariants = true
		w := traffic.NewFlows(traffic.Flow{Src: 0, Dst: 7, Size: 1, Period: 25})
		n.Run(w, 500)
		n.ResetStats()
		n.Run(w, 2000)
		return n.Stats.AvgNetLatency()
	}
	base, express := lat(false), lat(true)
	t.Logf("7-hop row flow: baseline=%.2f evc=%.2f", base, express)
	if express >= base {
		t.Fatalf("EVC latency %.2f not below baseline %.2f on a 7-hop straight path", express, base)
	}
	// Three intermediate bypasses (hops 2-of-2 segments) save ~3 cycles.
	if base-express < 2 {
		t.Errorf("EVC saved only %.2f cycles on a 7-hop path", base-express)
	}
}

// TestEVCShortTrafficUsesNVCs: traffic with <2 hops per dimension never
// allocates EVCs, so no express forwards occur.
func TestEVCShortTrafficUsesNVCs(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cfg := evcConfig(m)
	n := network.New(cfg)
	w := traffic.NewFlows(
		traffic.Flow{Src: 0, Dst: 1, Size: 5, Period: 4},
		traffic.Flow{Src: 5, Dst: 9, Size: 5, Period: 5},
	)
	n.Run(w, 2000)
	var forwards uint64
	for r := 0; r < 16; r++ {
		forwards += n.Router(r).(*evc.Router).ExpressForwards
	}
	if forwards != 0 {
		t.Fatalf("%d express forwards on 1-hop traffic", forwards)
	}
	if n.Stats.PacketsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestEVCPreemption: under load on a shared column, express flits preempt
// pipeline grants (the counter must move) while everything still delivers.
func TestEVCPreemption(t *testing.T) {
	m := topology.NewMesh(8, 8)
	cfg := evcConfig(m)
	n := network.New(cfg)
	n.CheckInvariants = true
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: 64, Rate: 0.20,
	}, sim.NewRNG(17))
	n.Run(w, 4000)
	var pre uint64
	for r := 0; r < 64; r++ {
		pre += n.Router(r).(*evc.Router).Preemptions
	}
	if pre == 0 {
		t.Error("no preemptions at 0.20 load; express prioritization inactive?")
	}
	if n.Stats.PacketsDelivered < 1000 {
		t.Fatalf("only %d packets delivered", n.Stats.PacketsDelivered)
	}
}
