// Package evc implements Express Virtual Channels (Kumar, Peh, Kundu & Jha,
// ISCA 2007), the comparison baseline of paper §7.B. The paper's
// configuration: dynamic EVCs with l_max = 2, 4 VCs per input port of which
// 2 are reserved as express VCs (EVCs) and 2 remain normal VCs (NVCs),
// 4-flit buffers.
//
// A packet with at least two remaining hops in its current dimension may
// allocate an EVC: its flits then bypass the entire pipeline of the
// intermediate router (a one-cycle latched pass-through with absolute
// priority over locally arbitrated traffic) and are buffered at the express
// sink two hops away. The EVC source performs flow control against the
// sink's buffer, so express flits never stall mid-path.
//
// Implementation notes (documented deviations, DESIGN.md §4):
//
//   - Express paths are striped across the two EVCs by source-coordinate
//     parity, so each (link, VC) pair carries a single source's express
//     flits and credits can be relayed upstream deterministically instead of
//     using the original paper's token scheme.
//   - Pipeline grants preempted by an express pass-through are re-arbitrated
//     (EVC's flit prioritization).
//
// The router pipeline is otherwise identical to the baseline speculative
// router (BW | VA+SA | ST), with no pseudo-circuit machinery.
package evc

import (
	"fmt"

	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/router"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
)

// oppositeIn maps a direction output port to the input port a flit sent on
// it arrives at downstream (E→W, W→E, N→S, S→N).
func oppositeIn(out int) int {
	switch out {
	case topology.PortE:
		return topology.PortW
	case topology.PortW:
		return topology.PortE
	case topology.PortN:
		return topology.PortS
	case topology.PortS:
		return topology.PortN
	default:
		panic(fmt.Sprintf("evc: port %d is not a direction port", out))
	}
}

type vcState struct {
	buf     []*flit.Flit
	at      []sim.Cycle
	active  bool
	outPort int
	outVC   int
	class   int
	src     int
	dst     int
	pkt     *flit.Packet // the packet owning the VC (fault teardown needs it even when buf is empty)
}

func (v *vcState) reset() {
	v.active = false
	v.outPort = -1
	v.outVC = -1
	v.pkt = nil
}

// inputPort holds one input port's state. Ports and their VC lanes live in
// contiguous value slices (the same layout discipline as the standard
// router's core.LaneStore, DESIGN.md §17) — iteration takes the address of
// each element (&in.vcs[v]), never a range copy, so mutation hits the slice.
type inputPort struct {
	vcs     []vcState
	arrival *flit.Flit
	rrVC    int
}

type outputPort struct {
	credits  []int // NVC: downstream buffer; EVC: express-sink buffer
	vcBusy   []bool
	rrIn     int
	ejection bool
}

type reservation struct {
	in, vc, out int
	f           *flit.Flit
}

type saRequest struct {
	in, vc, out int
}

// Router is an EVC-capable baseline router. It implements network.Node.
type Router struct {
	ID   int
	cfg  *router.Config
	mesh *topology.Mesh
	base int // first EVC index (NumVCs - numEVCs)

	in  []inputPort
	out []outputPort

	res     []reservation
	nextRes []reservation
	busyIn  []bool
	busyOut []bool
	reqs    []saRequest
	chosen  []int

	// Preemptions counts pipeline grants displaced by express flits.
	Preemptions uint64
	// ExpressForwards counts one-cycle intermediate bypasses.
	ExpressForwards uint64

	// worked records that this tick forwarded or traversed a flit; see
	// Tick.
	worked bool
}

// New builds an EVC router on mesh with numEVCs express VCs (paper: 2).
func New(id, inPorts, outPorts int, cfg *router.Config, mesh *topology.Mesh, numEVCs int) *Router {
	if numEVCs < 2 || numEVCs%2 != 0 || numEVCs >= cfg.NumVCs {
		panic("evc: need an even number of EVCs in [2, NumVCs)")
	}
	r := &Router{
		ID:      id,
		cfg:     cfg,
		mesh:    mesh,
		base:    cfg.NumVCs - numEVCs,
		in:      make([]inputPort, inPorts),
		out:     make([]outputPort, outPorts),
		busyIn:  make([]bool, inPorts),
		busyOut: make([]bool, outPorts),
		chosen:  make([]int, inPorts),
	}
	for i := range r.in {
		p := &r.in[i]
		p.vcs = make([]vcState, cfg.NumVCs)
		for v := range p.vcs {
			p.vcs[v] = vcState{outPort: -1, outVC: -1}
		}
	}
	for o := range r.out {
		p := &r.out[o]
		p.credits = make([]int, cfg.NumVCs)
		p.vcBusy = make([]bool, cfg.NumVCs)
		for v := range p.credits {
			p.credits[v] = cfg.BufDepth
		}
	}
	return r
}

// MarkEjection implements network.Node.
func (r *Router) MarkEjection(out int) { r.out[out].ejection = true }

// Deliver implements network.Node.
func (r *Router) Deliver(in int, f *flit.Flit) {
	if r.in[in].arrival != nil {
		panic(fmt.Sprintf("evc router %d: two flits on input port %d in one cycle", r.ID, in))
	}
	r.in[in].arrival = f
}

// DeliverCredit implements network.Node. EVC credits are relayed upstream
// when the coordinate parity shows the express path originates there.
func (r *Router) DeliverCredit(out, vc int) {
	if vc >= r.base && out < 4 && !r.out[out].ejection {
		if r.parityFor(out) != vc-r.base {
			// Credit belongs to the upstream express source: relay it.
			r.cfg.Credit(r.ID, oppositeIn(out), vc)
			return
		}
	}
	o := &r.out[out]
	o.credits[vc]++
	if o.credits[vc] > r.cfg.BufDepth {
		panic(fmt.Sprintf("evc router %d: credit overflow on out %d vc %d", r.ID, out, vc))
	}
}

// parityFor returns this router's coordinate parity in the dimension of a
// direction port, selecting which EVC this router sources express paths on.
func (r *Router) parityFor(out int) int {
	x, y := r.mesh.Coord(r.ID)
	if out == topology.PortE || out == topology.PortW {
		return x & 1
	}
	return y & 1
}

// linkDead reports whether output port out is currently unusable under the
// configured fault schedule; always false without one.
func (r *Router) linkDead(out int) bool {
	return r.cfg.LinkUp != nil && !r.cfg.LinkUp(r.ID, out)
}

// expressBlocked reports whether the two-hop express path via out is
// unusable: either the link to the intermediate router or the intermediate
// router's onward link (same direction) is dead.
func (r *Router) expressBlocked(out int) bool {
	if r.cfg.LinkUp == nil {
		return false
	}
	if !r.cfg.LinkUp(r.ID, out) {
		return true
	}
	mid := r.mesh.NextHop(r.ID, out, 0).Router
	return !r.cfg.LinkUp(mid, out)
}

// expressRouteStable reports whether fault-aware lookahead routing keeps the
// express path straight. Without a fault schedule routes are pure DOR and an
// express-capable port is always the nominal route at both hops; under a
// schedule the committed port may be a detour, and the mid router's lookahead
// (recomputed by the network at send time) could turn — an express flit must
// travel straight through the relay latch, so such paths are ineligible.
func (r *Router) expressRouteStable(out, dst, class int) bool {
	if r.cfg.Reroute == nil {
		return true
	}
	if r.cfg.Reroute(r.ID, dst, class) != out {
		return false
	}
	mid := r.mesh.NextHop(r.ID, out, 0).Router
	return r.cfg.Reroute(mid, dst, class) == out
}

// expressCapable reports whether a packet leaving via out toward dst has at
// least two remaining hops in that dimension (l_max = 2 express paths).
func (r *Router) expressCapable(out, dst int) bool {
	if out >= 4 {
		return false
	}
	x, y := r.mesh.Coord(r.ID)
	dr, _, _ := r.mesh.NodeRouter(dst)
	dx, dy := r.mesh.Coord(dr)
	switch out {
	case topology.PortE:
		return dx-x >= 2
	case topology.PortW:
		return x-dx >= 2
	case topology.PortS:
		return dy-y >= 2
	case topology.PortN:
		return y-dy >= 2
	}
	return false
}

// Tick implements network.Node. The boolean reports whether the router must
// be ticked again next cycle (see network.Node); an EVC router with no
// pending traversals, buffered flits, or in-flight packets holds no other
// cycle-dependent state, so it is at a fixed point until the next delivery.
func (r *Router) Tick(now sim.Cycle) bool {
	r.worked = false
	r.expressPass(now)
	r.executeReservations(now)
	r.admitHeads()
	r.allocateVCs(now)
	r.classify(now)
	r.switchArbitrate()
	r.processArrivals(now)
	r.res, r.nextRes = r.nextRes, r.res[:0]
	return r.worked || r.holdsFlits()
}

// holdsFlits reports pending traversals, buffered flits, or an in-flight
// packet owning a VC.
func (r *Router) holdsFlits() bool {
	if len(r.res) > 0 {
		return true
	}
	for i := range r.in {
		for v := range r.in[i].vcs {
			vs := &r.in[i].vcs[v]
			if vs.active || len(vs.buf) > 0 {
				return true
			}
		}
	}
	return false
}

// expressPass forwards arriving express flits through the latch in their
// arrival cycle, with absolute priority (phase 0).
func (r *Router) expressPass(now sim.Cycle) {
	for i := range r.busyIn {
		r.busyIn[i] = false
	}
	for o := range r.busyOut {
		r.busyOut[o] = false
	}
	for i := range r.in {
		in := &r.in[i]
		f := in.arrival
		if f == nil || f.ExpressHops == 0 {
			continue
		}
		out := f.NextOut
		if i >= 4 || out != oppositeIn(i) {
			panic(fmt.Sprintf("evc router %d: express flit %v not travelling straight (in %d out %d)", r.ID, f, i, out))
		}
		in.arrival = nil
		f.ExpressHops--
		// Hop accounting is head-only, as in traverse: the packet visits the
		// intermediate router once, not once per flit. (Body flits of one
		// packet occupy different routers in the same cycle, so a per-flit
		// increment would also be a cross-router write.)
		if f.Kind.IsHead() {
			f.Packet.Hops++
		}
		r.ExpressForwards++
		r.worked = true
		r.cfg.Stats.Traversals++
		r.cfg.Energy.AddTraversal()
		r.cfg.Send(r.ID, out, f)
		r.busyIn[i] = true
		r.busyOut[out] = true
	}
	_ = now
}

// executeReservations performs ST for last cycle's grants; grants whose
// output an express flit just claimed are preempted and re-arbitrated.
func (r *Router) executeReservations(now sim.Cycle) {
	for _, res := range r.res {
		if r.busyOut[res.out] {
			r.Preemptions++
			continue
		}
		vs := &r.in[res.in].vcs[res.vc]
		if vs.outVC < 0 || r.linkDead(res.out) || !r.hasCredit(res.out, vs.outVC) {
			continue
		}
		if len(vs.buf) == 0 || vs.buf[0] != res.f {
			panic(fmt.Sprintf("evc router %d: reservation lost its flit", r.ID))
		}
		r.popBuffer(res.in, res.vc)
		r.traverse(res.in, res.vc, res.out, res.f)
		r.busyIn[res.in] = true
		r.busyOut[res.out] = true
	}
	_ = now
}

func (r *Router) hasCredit(out, vc int) bool {
	o := &r.out[out]
	return o.ejection || o.credits[vc] > 0
}

func (r *Router) admitHeads() {
	for i := range r.in {
		for v := range r.in[i].vcs {
			vs := &r.in[i].vcs[v]
			if vs.active || len(vs.buf) == 0 {
				continue
			}
			h := vs.buf[0]
			if !h.Kind.IsHead() {
				panic(fmt.Sprintf("evc router %d: non-head flit %v at head of idle VC", r.ID, h))
			}
			vs.active = true
			vs.outPort = h.NextOut
			vs.outVC = -1
			vs.class = h.RouteClass
			vs.src = h.Packet.Src
			vs.dst = h.Packet.Dst
			vs.pkt = h.Packet
			// Stale lookahead: re-route around a link that died while the
			// flit was in flight.
			if r.cfg.Reroute != nil && vs.outPort < 4 && r.linkDead(vs.outPort) {
				vs.outPort = r.cfg.Reroute(r.ID, vs.dst, vs.class)
			}
		}
	}
}

// allocateVCs performs VA: express-capable packets prefer their parity EVC
// (dynamic EVC allocation); everything else uses the NVC pool.
func (r *Router) allocateVCs(now sim.Cycle) {
	n := len(r.in)
	start := int(now) % n
	for k := 0; k < n; k++ {
		in := &r.in[(start+k)%n]
		for v := range in.vcs {
			vs := &in.vcs[v]
			if !vs.active || vs.outVC >= 0 || len(vs.buf) == 0 || !vs.buf[0].Kind.IsHead() {
				continue
			}
			r.tryVA(vs)
		}
	}
}

func (r *Router) tryVA(vs *vcState) {
	o := &r.out[vs.outPort]
	if o.ejection {
		vs.outVC = 0
		return
	}
	if r.linkDead(vs.outPort) {
		return // dead link: hold the packet until recovery or reroute
	}
	if r.expressCapable(vs.outPort, vs.dst) && !r.expressBlocked(vs.outPort) &&
		r.expressRouteStable(vs.outPort, vs.dst, vs.class) {
		v := r.base + r.parityFor(vs.outPort)
		if !o.vcBusy[v] && o.credits[v] > 0 {
			o.vcBusy[v] = true
			vs.outVC = v
			return
		}
	}
	best, bestCred := -1, -1
	for v := 0; v < r.base; v++ {
		if o.vcBusy[v] {
			continue
		}
		if o.credits[v] > bestCred {
			best, bestCred = v, o.credits[v]
		}
	}
	if best >= 0 {
		o.vcBusy[best] = true
		vs.outVC = best
	}
}

func (r *Router) classify(now sim.Cycle) {
	r.reqs = r.reqs[:0]
	for i := range r.in {
		for v := range r.in[i].vcs {
			vs := &r.in[i].vcs[v]
			if !vs.active || len(vs.buf) == 0 || vs.at[0] >= now {
				continue
			}
			if r.linkDead(vs.outPort) {
				continue // dead link: stall until recovery or the storm's reroute
			}
			if vs.outVC < 0 {
				r.reqs = append(r.reqs, saRequest{in: i, vc: v, out: vs.outPort})
				continue
			}
			if !r.hasCredit(vs.outPort, vs.outVC) {
				continue
			}
			r.reqs = append(r.reqs, saRequest{in: i, vc: v, out: vs.outPort})
		}
	}
}

func (r *Router) switchArbitrate() {
	for i := range r.chosen {
		r.chosen[i] = -1
	}
	for qi, q := range r.reqs {
		ip := &r.in[q.in]
		if r.chosen[q.in] < 0 {
			r.chosen[q.in] = qi
			continue
		}
		cur := r.reqs[r.chosen[q.in]]
		if rrDist(q.vc, ip.rrVC, r.cfg.NumVCs) < rrDist(cur.vc, ip.rrVC, r.cfg.NumVCs) {
			r.chosen[q.in] = qi
		}
	}
	for o := range r.out {
		op := &r.out[o]
		best := -1
		for i := range r.in {
			qi := r.chosen[i]
			if qi < 0 || r.reqs[qi].out != o {
				continue
			}
			if best < 0 || rrDist(i, op.rrIn, len(r.in)) < rrDist(best, op.rrIn, len(r.in)) {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		q := r.reqs[r.chosen[best]]
		vs := &r.in[q.in].vcs[q.vc]
		r.cfg.Energy.AddArbitration()
		r.cfg.Stats.SAGrants++
		r.nextRes = append(r.nextRes, reservation{in: q.in, vc: q.vc, out: q.out, f: vs.buf[0]})
		r.in[q.in].rrVC = (q.vc + 1) % r.cfg.NumVCs
		op.rrIn = (q.in + 1) % len(r.in)
	}
}

func (r *Router) processArrivals(now sim.Cycle) {
	for i := range r.in {
		in := &r.in[i]
		f := in.arrival
		if f == nil {
			continue
		}
		in.arrival = nil
		vs := &in.vcs[f.VC]
		if len(vs.buf) >= r.cfg.BufDepth {
			panic(fmt.Sprintf("evc router %d: buffer overflow at in %d vc %d", r.ID, i, f.VC))
		}
		vs.buf = append(vs.buf, f)
		vs.at = append(vs.at, now)
		r.cfg.Energy.AddWrite()
	}
}

func (r *Router) popBuffer(in, vc int) {
	vs := &r.in[in].vcs[vc]
	vs.buf = vs.buf[:copy(vs.buf, vs.buf[1:])]
	vs.at = vs.at[:copy(vs.at, vs.at[1:])]
	r.cfg.Energy.AddRead()
	r.cfg.Credit(r.ID, in, vc)
}

func (r *Router) traverse(in, vc, out int, f *flit.Flit) {
	r.worked = true
	vs := &r.in[in].vcs[vc]
	op := &r.out[out]
	r.cfg.Stats.Traversals++
	r.cfg.Energy.AddTraversal()
	f.VC = vs.outVC
	if vs.outVC >= r.base && !op.ejection {
		f.ExpressHops = 1 // one intermediate bypass ahead (l_max = 2)
	}
	if !op.ejection {
		op.credits[vs.outVC]--
		if op.credits[vs.outVC] < 0 {
			panic(fmt.Sprintf("evc router %d: negative credit on out %d vc %d", r.ID, out, vs.outVC))
		}
	}
	if f.Kind.IsHead() {
		f.Packet.Hops++
	}
	if f.Kind.IsTail() {
		if !op.ejection {
			op.vcBusy[vs.outVC] = false
		}
		vs.reset()
	}
	r.cfg.Send(r.ID, out, f)
}

func rrDist(x, ptr, n int) int { return ((x-ptr)%n + n) % n }

// Quiescent implements network.Node.
func (r *Router) Quiescent() bool {
	if len(r.res) != 0 {
		return false
	}
	for i := range r.in {
		in := &r.in[i]
		if in.arrival != nil {
			return false
		}
		for v := range in.vcs {
			vs := &in.vcs[v]
			if len(vs.buf) != 0 || vs.active {
				return false
			}
		}
	}
	return true
}

// CheckInvariants implements network.Node.
func (r *Router) CheckInvariants() {
	for i := range r.in {
		for v := range r.in[i].vcs {
			vs := &r.in[i].vcs[v]
			if len(vs.buf) != len(vs.at) {
				panic(fmt.Sprintf("evc router %d: buffer desync at in %d vc %d", r.ID, i, v))
			}
			if len(vs.buf) > r.cfg.BufDepth {
				panic(fmt.Sprintf("evc router %d: buffer overflow at in %d vc %d", r.ID, i, v))
			}
		}
	}
	for o := range r.out {
		op := &r.out[o]
		if op.ejection {
			continue
		}
		for v, c := range op.credits {
			if c < 0 || c > r.cfg.BufDepth {
				panic(fmt.Sprintf("evc router %d: credit %d out of range on out %d vc %d", r.ID, c, o, v))
			}
		}
	}
}

// FaultScan implements the fault-storm sweep for the EVC router (see
// router.Router.FaultScan). In addition to the base rules, a packet
// committed to an express VC is torn down when either link of its two-hop
// express path dies: its credits track the sink buffer two hops away, so it
// cannot simply wait out the fault at the intermediate router.
func (r *Router) FaultScan(fc *router.FaultContext) {
	for i := range r.in {
		for v := range r.in[i].vcs {
			vs := &r.in[i].vcs[v]
			for _, f := range vs.buf {
				if fc.RouterDead || fc.DstDead(f.Packet.Dst) {
					fc.Kill(f.Packet)
				}
			}
			if !vs.active {
				continue
			}
			express := vs.outVC >= r.base && vs.outPort < 4
			switch {
			case fc.RouterDead || fc.DstDead(vs.dst):
				fc.Kill(vs.pkt)
			case vs.outPort < len(r.out) && !r.out[vs.outPort].ejection &&
				(fc.LinkDead(vs.outPort) || (express && r.expressBlocked(vs.outPort))):
				if vs.outVC < 0 {
					vs.outPort = fc.Reroute(vs.dst, vs.class)
				} else if fc.Salvage && len(vs.buf) > 0 && vs.buf[0].Kind.IsHead() {
					r.out[vs.outPort].vcBusy[vs.outVC] = false
					vs.outVC = -1
					vs.outPort = fc.Reroute(vs.dst, vs.class)
					fc.Salvaged(vs.pkt)
				} else {
					fc.Kill(vs.pkt)
				}
			}
		}
	}
}

// FaultStale implements the bounded-wait stale sweep for the EVC router
// (see router.Router.FaultStale): every resident packet whose header entered
// the network before cutoff is reported for purging.
func (r *Router) FaultStale(cutoff sim.Cycle, kill func(p *flit.Packet)) {
	for i := range r.in {
		for v := range r.in[i].vcs {
			vs := &r.in[i].vcs[v]
			for _, f := range vs.buf {
				if f.Packet.NetStart < cutoff {
					kill(f.Packet)
				}
			}
			if vs.active && vs.pkt.NetStart < cutoff {
				kill(vs.pkt)
			}
		}
	}
}

// FaultPurge implements the per-packet purge for the EVC router (see
// router.Router.FaultPurge). Credits for purged flits flow through the
// normal pop path, so express credits are relayed upstream to their source.
func (r *Router) FaultPurge(p *flit.Packet, drop func(f *flit.Flit)) {
	for i := range r.in {
		for v := range r.in[i].vcs {
			vs := &r.in[i].vcs[v]
			for k := 0; k < len(vs.buf); {
				if vs.buf[k].Packet != p {
					k++
					continue
				}
				f := vs.buf[k]
				vs.buf = append(vs.buf[:k], vs.buf[k+1:]...)
				vs.at = append(vs.at[:k], vs.at[k+1:]...)
				r.cfg.Credit(r.ID, i, v)
				drop(f)
			}
			if vs.active && vs.pkt == p {
				if vs.outVC >= 0 && !r.out[vs.outPort].ejection {
					r.out[vs.outPort].vcBusy[vs.outVC] = false
				}
				vs.reset()
			}
		}
	}
}
