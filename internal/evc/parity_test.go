package evc_test

import (
	"testing"

	"pseudocircuit/internal/network"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
)

// TestParityStriping: express paths sourced at even and odd coordinates use
// different EVCs, so each (link, VC) pair carries one source's flits —
// observable as both EVC indices appearing among forwarded express flits on
// a row with sources of both parities.
func TestParityStriping(t *testing.T) {
	m := topology.NewMesh(8, 8)
	cfg := evcConfig(m)
	n := network.New(cfg)
	n.CheckInvariants = true
	// Two long flows starting at x=0 (even) and x=1 (odd) along row 0.
	w := traffic.NewFlows(
		traffic.Flow{Src: 0, Dst: 7, Size: 1, Period: 6},
		traffic.Flow{Src: 1, Dst: 6, Size: 1, Period: 7, Start: 3},
	)
	n.Run(w, 3000)
	if n.Stats.PacketsDelivered < 500 {
		t.Fatalf("only %d delivered", n.Stats.PacketsDelivered)
	}
	// Both parities express: sources 0,2,4 (even EVC) and 1,3,5 (odd EVC)
	// along the paths; no credit mis-relay would show as a stall or a
	// credit-overflow panic under CheckInvariants.
}

// TestEVCCreditConservationUnderChurn: sustained mixed traffic with many
// express segments neither leaks nor duplicates credits (overflow panics
// are armed by CheckInvariants; leaks appear as a throughput collapse).
func TestEVCCreditConservationUnderChurn(t *testing.T) {
	m := topology.NewMesh(8, 8)
	cfg := evcConfig(m)
	n := network.New(cfg)
	n.CheckInvariants = true
	w := traffic.NewFlows(
		traffic.Flow{Src: 0, Dst: 7, Size: 5, Period: 8},
		traffic.Flow{Src: 7, Dst: 0, Size: 5, Period: 8, Start: 1},
		traffic.Flow{Src: 56, Dst: 63, Size: 5, Period: 9, Start: 2},
		traffic.Flow{Src: 0, Dst: 56, Size: 5, Period: 10, Start: 3},
		traffic.Flow{Src: 63, Dst: 0, Size: 5, Period: 11, Start: 4},
	)
	n.Run(w, 2000)
	first := n.Stats.PacketsDelivered
	n.Run(w, 6000)
	// Throughput must be sustained: the last 6000 cycles deliver at least
	// 2.5x the first 2000 (a credit leak would strangle the flows).
	if n.Stats.PacketsDelivered-first < first*5/2 {
		t.Fatalf("throughput collapsed: %d then %d total", first, n.Stats.PacketsDelivered)
	}
}
