package evc_test

import (
	"testing"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/evc"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/router"
	"pseudocircuit/internal/routing"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/traffic"
)

// EVCConfig returns a network config with the paper's EVC setup (§7.B):
// 2 EVCs + 2 NVCs, l_max = 2, XY routing.
func evcConfig(m *topology.Mesh) network.Config {
	cfg := network.DefaultConfig(m)
	cfg.Algorithm = routing.XY
	cfg.NIVCLimit = 2
	cfg.Factory = func(id, in, out int, rcfg *router.Config) network.Node {
		return evc.New(id, in, out, rcfg, m, 2)
	}
	return cfg
}

func runMeshUniform(t *testing.T, cfg network.Config, nodes int, rate float64) float64 {
	t.Helper()
	n := network.New(cfg)
	n.CheckInvariants = true
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: nodes, Rate: rate,
	}, sim.NewRNG(99))
	n.Run(w, 1000)
	n.ResetStats()
	n.Run(w, 4000)
	if n.Stats.LatencySamples == 0 {
		t.Fatal("no deliveries")
	}
	return n.Stats.AvgLatency()
}

func TestEVCImprovesMesh(t *testing.T) {
	m := topology.NewMesh(8, 8)
	base := runMeshUniform(t, network.DefaultConfig(m), 64, 0.08)
	e := runMeshUniform(t, evcConfig(topology.NewMesh(8, 8)), 64, 0.08)
	t.Logf("8x8 mesh uniform: baseline=%.2f evc=%.2f", base, e)
	if e >= base {
		t.Errorf("EVC latency %.2f should beat baseline %.2f on a large mesh", e, base)
	}
}

func TestEVCWeakOnCMesh(t *testing.T) {
	// Paper Fig. 14(b): on the 4x4 concentrated mesh most routes have < 2
	// hops per dimension, EVCs go unused, and the halved NVC pool hurts.
	topoB := topology.NewCMesh(4, 4, 4)
	cfgB := network.DefaultConfig(topoB)
	nB := network.New(cfgB)
	topoE := topology.NewCMesh(4, 4, 4)
	cfgE := evcConfig(topoE)
	nE := network.New(cfgE)

	prof, _ := cmp.ProfileByName("streamcluster")
	for _, nc := range []struct {
		n *network.Network
		t *topology.Mesh
	}{{nB, topoB}, {nE, topoE}} {
		w := cmp.New(nc.t, cmp.PaperTableI(), prof, sim.NewRNG(5))
		nc.n.Run(w, 1500)
		nc.n.ResetStats()
		nc.n.Run(w, 6000)
	}
	b, e := nB.Stats.AvgLatency(), nE.Stats.AvgLatency()
	t.Logf("4x4 cmesh streamcluster: baseline=%.2f evc=%.2f", b, e)
	// EVC should show no meaningful gain here (paper: "no performance
	// improvement on average"); allow a small tolerance either way.
	if e < b*0.95 {
		t.Errorf("EVC unexpectedly strong on CMesh: %.2f vs %.2f", e, b)
	}
}

func TestEVCExpressForwardsHappen(t *testing.T) {
	m := topology.NewMesh(8, 8)
	cfg := evcConfig(m)
	n := network.New(cfg)
	n.CheckInvariants = true
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.BitComplement, Nodes: 64, Rate: 0.05,
	}, sim.NewRNG(3))
	n.Run(w, 3000)
	var forwards uint64
	for r := 0; r < 64; r++ {
		forwards += n.Router(r).(*evc.Router).ExpressForwards
	}
	if forwards == 0 {
		t.Error("no express forwards on long-haul traffic")
	}
	t.Logf("express forwards: %d", forwards)
}
