package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-memory latency histogram with exponentially growing
// bucket widths, good for tail percentiles of cycle counts spanning several
// orders of magnitude (zero-load ~20 cycles to saturation ~10^4).
//
// Bucket b covers [bucketLo(b), bucketLo(b+1)): widths are 1 up to 64, then
// double every 32 buckets, bounding relative error to ~3 %.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    uint64
	max    uint64
}

const (
	histLinear  = 64 // one-cycle buckets below this
	histPerStep = 32 // buckets per doubling above it
)

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < histLinear {
		return int(v)
	}
	// Above the linear region, each doubling of v adds histPerStep buckets.
	step := uint64(histLinear)
	width := uint64(2)
	idx := histLinear
	for {
		if v < step*2 {
			return idx + int((v-step)/width)
		}
		idx += histPerStep
		step *= 2
		width *= 2
	}
}

// bucketLo returns the lower bound of bucket idx.
func bucketLo(idx int) uint64 {
	if idx < histLinear {
		return uint64(idx)
	}
	step := uint64(histLinear)
	width := uint64(2)
	base := histLinear
	for {
		if idx < base+histPerStep {
			return step + uint64(idx-base)*width
		}
		base += histPerStep
		step *= 2
		width *= 2
	}
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	b := bucketOf(v)
	if b >= len(h.counts) {
		grown := make([]uint64, b+histPerStep)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[b]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact sample mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the exact maximum sample.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an estimate of the p-th percentile (p in [0,100]):
// the lower bound of the bucket containing that rank.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketLo(b)
		}
	}
	return h.max
}

// Quantiles returns the standard reporting set (p50, p95, p99).
func (h *Histogram) Quantiles() (p50, p95, p99 uint64) {
	return h.Percentile(50), h.Percentile(95), h.Percentile(99)
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b, c := range other.counts {
		if c == 0 {
			continue
		}
		if b >= len(h.counts) {
			grown := make([]uint64, b+histPerStep)
			copy(grown, h.counts)
			h.counts = grown
		}
		h.counts[b] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
}

// String renders a compact summary.
func (h *Histogram) String() string {
	p50, p95, p99 := h.Quantiles()
	return fmt.Sprintf("n=%d mean=%.2f p50=%d p95=%d p99=%d max=%d",
		h.total, h.Mean(), p50, p95, p99, h.max)
}

// ASCII renders a bar chart of the nonempty buckets (diagnostics and the
// loadsweep example); width is the widest bar in characters.
func (h *Histogram) ASCII(width int) string {
	if h.total == 0 {
		return "(empty)\n"
	}
	var peak uint64
	last := 0
	for b, c := range h.counts {
		if c > peak {
			peak = c
		}
		if c > 0 {
			last = b
		}
	}
	var sb strings.Builder
	for b := 0; b <= last; b++ {
		c := h.counts[b]
		if c == 0 {
			continue
		}
		bar := int(math.Round(float64(c) / float64(peak) * float64(width)))
		fmt.Fprintf(&sb, "%6d | %-*s %d\n", bucketLo(b), width, strings.Repeat("#", bar), c)
	}
	return sb.String()
}

// sortedBucketBounds is exposed for tests validating monotonicity.
func sortedBucketBounds(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = bucketLo(i)
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		panic("stats: bucket bounds not monotone")
	}
	return out
}
