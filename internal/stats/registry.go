package stats

// PortStats accumulates per-input-port counters for one router. BufHighWater
// is the deepest any VC buffer of the port ever got (in flits) since the last
// Reset; CreditStalls counts head-of-VC flits that were ready to traverse but
// were held back by credit exhaustion, one count per stalled VC per cycle.
type PortStats struct {
	Traversals   uint64 // crossbar traversals entering through this port
	PCReused     uint64 // traversals that reused a pseudo-circuit
	Bypassed     uint64 // traversals that also bypassed the input buffer
	BufHighWater int    // max flits buffered in any one VC of this port
	CreditStalls uint64 // head-of-VC cycles lost waiting for downstream credit
}

// RouterStats accumulates per-router counters; it mirrors the router-level
// slice of the global Network counters (same increment sites, same reset
// instant) so per-router values sum exactly to their global counterparts.
type RouterStats struct {
	ID int

	SAGrants     uint64
	PCCreated    uint64
	PCReused     uint64
	PCTerminated uint64
	PCSpeculated uint64
	SpecReused   uint64
	Traversals   uint64
	Bypassed     uint64
	HeadTravs    uint64
	HeadReused   uint64
	HeadBypassed uint64

	// In holds per-input-port counters; OutSends counts flits leaving each
	// output port.
	In       []PortStats
	OutSends []uint64
}

// Reusability returns this router's pseudo-circuit reuse fraction.
func (r *RouterStats) Reusability() float64 {
	if r.Traversals == 0 {
		return 0
	}
	return float64(r.PCReused) / float64(r.Traversals)
}

// BypassRate returns this router's buffer-bypass fraction.
func (r *RouterStats) BypassRate() float64 {
	if r.Traversals == 0 {
		return 0
	}
	return float64(r.Bypassed) / float64(r.Traversals)
}

// CreditStalls sums credit-stall cycles over all input ports.
func (r *RouterStats) CreditStallCycles() uint64 {
	var n uint64
	for i := range r.In {
		n += r.In[i].CreditStalls
	}
	return n
}

// Registry holds per-router statistics for one network. It is opt-in: a nil
// *Registry is a valid "disabled" value — Attach returns nil and routers
// guard every increment on that, so the disabled path costs one predictable
// nil check and allocates nothing.
//
// Rows are created by Attach during network construction and then only
// written by their owning router, so a Registry is as concurrency-safe as the
// network that owns it (not at all; one simulation owns one).
type Registry struct {
	routers []*RouterStats
}

// NewRegistry returns an empty registry; routers populate it via Attach.
func NewRegistry() *Registry { return &Registry{} }

// Attach creates (or returns) the per-router row for router id with the given
// port counts. It is nil-safe: a nil registry yields a nil row, the router's
// signal that per-router instrumentation is off.
func (g *Registry) Attach(id, inPorts, outPorts int) *RouterStats {
	if g == nil {
		return nil
	}
	for id >= len(g.routers) {
		g.routers = append(g.routers, nil)
	}
	if g.routers[id] == nil {
		g.routers[id] = &RouterStats{
			ID:       id,
			In:       make([]PortStats, inPorts),
			OutSends: make([]uint64, outPorts),
		}
	}
	return g.routers[id]
}

// Router returns the row for router id, or nil if none was attached.
func (g *Registry) Router(id int) *RouterStats {
	if g == nil || id < 0 || id >= len(g.routers) {
		return nil
	}
	return g.routers[id]
}

// Routers returns every attached row in router-ID order.
func (g *Registry) Routers() []*RouterStats {
	if g == nil {
		return nil
	}
	out := make([]*RouterStats, 0, len(g.routers))
	for _, r := range g.routers {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

// Reset zeroes all counters in place (rows and port slices are kept), marking
// the start of the measurement phase; the network calls it from ResetStats so
// per-router counters cover exactly the same window as the global ones.
func (g *Registry) Reset() {
	if g == nil {
		return
	}
	for _, r := range g.routers {
		if r == nil {
			continue
		}
		in, outs, id := r.In, r.OutSends, r.ID
		*r = RouterStats{ID: id, In: in, OutSends: outs}
		for i := range in {
			in[i] = PortStats{}
		}
		for o := range outs {
			outs[o] = 0
		}
	}
}

// Totals aggregates all rows into one RouterStats (ID -1, no port slices).
// For a standard-router network it must equal the matching global Network
// counters over the same window; tests assert that equivalence.
func (g *Registry) Totals() RouterStats {
	t := RouterStats{ID: -1}
	if g == nil {
		return t
	}
	for _, r := range g.routers {
		if r == nil {
			continue
		}
		t.SAGrants += r.SAGrants
		t.PCCreated += r.PCCreated
		t.PCReused += r.PCReused
		t.PCTerminated += r.PCTerminated
		t.PCSpeculated += r.PCSpeculated
		t.SpecReused += r.SpecReused
		t.Traversals += r.Traversals
		t.Bypassed += r.Bypassed
		t.HeadTravs += r.HeadTravs
		t.HeadReused += r.HeadReused
		t.HeadBypassed += r.HeadBypassed
	}
	return t
}
