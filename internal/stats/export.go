package stats

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Metrics JSONL export: one self-describing JSON object per line, typed by a
// "type" field. Three line types exist:
//
//	{"type":"router", ...}  one per instrumented router (Registry row)
//	{"type":"window", ...}  one per closed time-series window (Series sample)
//	{"type":"global", ...}  exactly one, the whole-run Network counters
//
// The schema is strict — validators reject unknown fields — so downstream
// tooling can rely on it; the global line lets any consumer cross-check that
// per-router counters sum to the network totals.

// PortMetrics is the serialized form of PortStats.
type PortMetrics struct {
	Port         int    `json:"port"`
	Traversals   uint64 `json:"traversals"`
	PCReused     uint64 `json:"pc_reused"`
	Bypassed     uint64 `json:"bypassed"`
	BufHighWater int    `json:"buf_hwm"`
	CreditStalls uint64 `json:"credit_stalls"`
}

// RouterMetrics is the serialized form of a RouterStats row.
type RouterMetrics struct {
	Type         string        `json:"type"` // "router"
	Router       int           `json:"router"`
	SAGrants     uint64        `json:"sa_grants"`
	PCCreated    uint64        `json:"pc_created"`
	PCReused     uint64        `json:"pc_reused"`
	PCTerminated uint64        `json:"pc_terminated"`
	PCSpeculated uint64        `json:"pc_speculated"`
	SpecReused   uint64        `json:"spec_reused"`
	Traversals   uint64        `json:"traversals"`
	Bypassed     uint64        `json:"bypassed"`
	HeadTravs    uint64        `json:"head_traversals"`
	HeadReused   uint64        `json:"head_reused"`
	HeadBypassed uint64        `json:"head_bypassed"`
	Ports        []PortMetrics `json:"ports"`
	OutSends     []uint64      `json:"out_sends"`
}

// WindowMetrics is the serialized form of a Series sample.
type WindowMetrics struct {
	Type           string `json:"type"` // "window"
	From           int64  `json:"from"`
	To             int64  `json:"to"`
	Injected       uint64 `json:"injected"`
	Delivered      uint64 `json:"delivered"`
	FlitsDelivered uint64 `json:"flits_delivered"`
	LatencySamples uint64 `json:"latency_samples"`
	LatencySum     uint64 `json:"latency_sum"`
	Traversals     uint64 `json:"traversals"`
	PCReused       uint64 `json:"pc_reused"`
	Bypassed       uint64 `json:"bypassed"`
}

// GlobalMetrics is the serialized form of the global Network counters.
type GlobalMetrics struct {
	Type             string  `json:"type"` // "global"
	MeasuredFrom     int64   `json:"measured_from"`
	MeasuredTo       int64   `json:"measured_to"`
	PacketsInjected  uint64  `json:"packets_injected"`
	PacketsDelivered uint64  `json:"packets_delivered"`
	FlitsDelivered   uint64  `json:"flits_delivered"`
	SAGrants         uint64  `json:"sa_grants"`
	PCCreated        uint64  `json:"pc_created"`
	PCReused         uint64  `json:"pc_reused"`
	PCTerminated     uint64  `json:"pc_terminated"`
	PCSpeculated     uint64  `json:"pc_speculated"`
	SpecReused       uint64  `json:"spec_reused"`
	Traversals       uint64  `json:"traversals"`
	Bypassed         uint64  `json:"bypassed"`
	AvgLatency       float64 `json:"avg_latency"`

	// Fault accounting; zero on fault-free runs.
	FaultEvents       uint64 `json:"fault_events"`
	PacketsDropped    uint64 `json:"packets_dropped"`
	FlitsDropped      uint64 `json:"flits_dropped"`
	PacketsRerouted   uint64 `json:"packets_rerouted"`
	PCFaultTerminated uint64 `json:"pc_fault_terminated"`

	// Reliability accounting; zero when reliable delivery is off.
	PacketsRetransmitted uint64 `json:"packets_retransmitted"`
	AcksSent             uint64 `json:"acks_sent"`
	AcksReceived         uint64 `json:"acks_received"`
	DuplicatesDropped    uint64 `json:"duplicates_dropped"`
	DeliveryFailed       uint64 `json:"delivery_failed"`
}

// WriteMetricsJSONL writes the run's metrics as JSONL: router lines from reg
// (nil skips them), window lines from series (nil skips them), then the
// global line from st.
func WriteMetricsJSONL(w io.Writer, reg *Registry, series *Series, st *Network) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range reg.Routers() {
		line := RouterMetrics{
			Type:         "router",
			Router:       r.ID,
			SAGrants:     r.SAGrants,
			PCCreated:    r.PCCreated,
			PCReused:     r.PCReused,
			PCTerminated: r.PCTerminated,
			PCSpeculated: r.PCSpeculated,
			SpecReused:   r.SpecReused,
			Traversals:   r.Traversals,
			Bypassed:     r.Bypassed,
			HeadTravs:    r.HeadTravs,
			HeadReused:   r.HeadReused,
			HeadBypassed: r.HeadBypassed,
			Ports:        make([]PortMetrics, len(r.In)),
			OutSends:     r.OutSends,
		}
		for i := range r.In {
			p := &r.In[i]
			line.Ports[i] = PortMetrics{
				Port:         i,
				Traversals:   p.Traversals,
				PCReused:     p.PCReused,
				Bypassed:     p.Bypassed,
				BufHighWater: p.BufHighWater,
				CreditStalls: p.CreditStalls,
			}
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	if series != nil {
		for _, s := range series.Samples() {
			line := WindowMetrics{
				Type:           "window",
				From:           int64(s.From),
				To:             int64(s.To),
				Injected:       s.Injected,
				Delivered:      s.Delivered,
				FlitsDelivered: s.FlitsDelivered,
				LatencySamples: s.LatencySamples,
				LatencySum:     s.LatencySum,
				Traversals:     s.Traversals,
				PCReused:       s.PCReused,
				Bypassed:       s.Bypassed,
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	if st != nil {
		line := GlobalMetrics{
			Type:              "global",
			MeasuredFrom:      int64(st.MeasuredFrom),
			MeasuredTo:        int64(st.MeasuredTo),
			PacketsInjected:   st.PacketsInjected,
			PacketsDelivered:  st.PacketsDelivered,
			FlitsDelivered:    st.FlitsDelivered,
			SAGrants:          st.SAGrants,
			PCCreated:         st.PCCreated,
			PCReused:          st.PCReused,
			PCTerminated:      st.PCTerminated,
			PCSpeculated:      st.PCSpeculated,
			SpecReused:        st.SpecReused,
			Traversals:        st.Traversals,
			Bypassed:          st.Bypassed,
			AvgLatency:        st.AvgLatency(),
			FaultEvents:       st.FaultEvents,
			PacketsDropped:    st.PacketsDropped,
			FlitsDropped:      st.FlitsDropped,
			PacketsRerouted:   st.PacketsRerouted,
			PCFaultTerminated: st.PCFaultTerminated,

			PacketsRetransmitted: st.PacketsRetransmitted,
			AcksSent:             st.AcksSent,
			AcksReceived:         st.AcksReceived,
			DuplicatesDropped:    st.DuplicatesDropped,
			DeliveryFailed:       st.DeliveryFailed,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ValidateMetricsJSONL checks a metrics JSONL stream against the schema:
// every line must strictly decode as one of the three line types, and when
// both router lines and a global line are present, the per-router
// pseudo-circuit and traversal counters must sum exactly to the global
// values. It returns the number of lines validated.
func ValidateMetricsJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var (
		lines, routers, globals       int
		sumReused, sumTrav, sumGrants uint64
		global                        GlobalMetrics
		seen                          = map[int]bool{}
	)
	strict := func(data []byte, v any) error {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		return dec.Decode(v)
	}
	for sc.Scan() {
		data := bytes.TrimSpace(sc.Bytes())
		if len(data) == 0 {
			continue
		}
		lines++
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(data, &head); err != nil {
			return lines, fmt.Errorf("metrics line %d: %v", lines, err)
		}
		switch head.Type {
		case "router":
			var rm RouterMetrics
			if err := strict(data, &rm); err != nil {
				return lines, fmt.Errorf("metrics line %d (router): %v", lines, err)
			}
			if rm.Router < 0 {
				return lines, fmt.Errorf("metrics line %d: negative router id %d", lines, rm.Router)
			}
			if seen[rm.Router] {
				return lines, fmt.Errorf("metrics line %d: duplicate router %d", lines, rm.Router)
			}
			seen[rm.Router] = true
			var portReuse uint64
			for _, p := range rm.Ports {
				portReuse += p.PCReused
			}
			if portReuse != rm.PCReused {
				return lines, fmt.Errorf("metrics line %d: router %d port pc_reused sum %d != router pc_reused %d",
					lines, rm.Router, portReuse, rm.PCReused)
			}
			routers++
			sumReused += rm.PCReused
			sumTrav += rm.Traversals
			sumGrants += rm.SAGrants
		case "window":
			var wm WindowMetrics
			if err := strict(data, &wm); err != nil {
				return lines, fmt.Errorf("metrics line %d (window): %v", lines, err)
			}
			if wm.To <= wm.From {
				return lines, fmt.Errorf("metrics line %d: empty window [%d,%d)", lines, wm.From, wm.To)
			}
		case "global":
			if err := strict(data, &global); err != nil {
				return lines, fmt.Errorf("metrics line %d (global): %v", lines, err)
			}
			globals++
		default:
			return lines, fmt.Errorf("metrics line %d: unknown type %q", lines, head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return lines, err
	}
	if lines == 0 {
		return 0, fmt.Errorf("metrics: empty stream")
	}
	if globals > 1 {
		return lines, fmt.Errorf("metrics: %d global lines (want at most 1)", globals)
	}
	if routers > 0 && globals == 1 {
		if sumReused != global.PCReused {
			return lines, fmt.Errorf("metrics: per-router pc_reused sum %d != global %d", sumReused, global.PCReused)
		}
		if sumTrav != global.Traversals {
			return lines, fmt.Errorf("metrics: per-router traversals sum %d != global %d", sumTrav, global.Traversals)
		}
		if sumGrants != global.SAGrants {
			return lines, fmt.Errorf("metrics: per-router sa_grants sum %d != global %d", sumGrants, global.SAGrants)
		}
	}
	return lines, nil
}
