package stats

import "testing"

// Percentile edge cases: empty, single-sample, and all-equal histograms must
// degrade gracefully at the extreme ranks, including p=0 and p=100.
func TestPercentileEmpty(t *testing.T) {
	var h Histogram
	for _, p := range []float64{0, 50, 99.999, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty p%v = %d, want 0", p, got)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	for _, v := range []uint64{0, 1, 63, 64, 100, 9999} {
		var h Histogram
		h.Add(v)
		lo := bucketLo(bucketOf(v))
		for _, p := range []float64{0, 1, 50, 99, 100} {
			if got := h.Percentile(p); got != lo {
				t.Errorf("single sample %d: p%v = %d, want bucket floor %d", v, p, got, lo)
			}
		}
		if h.Max() != v || h.Mean() != float64(v) {
			t.Errorf("single sample %d: max=%d mean=%v", v, h.Max(), h.Mean())
		}
	}
}

func TestPercentileAllEqual(t *testing.T) {
	for _, v := range []uint64{5, 63, 500} {
		var h Histogram
		for i := 0; i < 1000; i++ {
			h.Add(v)
		}
		lo := bucketLo(bucketOf(v))
		for _, p := range []float64{0, 50, 95, 99, 100} {
			if got := h.Percentile(p); got != lo {
				t.Errorf("all-equal %d: p%v = %d, want %d", v, p, got, lo)
			}
		}
	}
}

// p=0 must clamp the rank to the first sample, not index before it.
func TestPercentileZeroRankClamp(t *testing.T) {
	var h Histogram
	h.Add(3)
	h.Add(40)
	if got := h.Percentile(0); got != 3 {
		t.Errorf("p0 = %d, want 3 (first sample)", got)
	}
	if got := h.Percentile(100); got != 40 {
		t.Errorf("p100 = %d, want 40", got)
	}
}
