// Package stats collects the measurements the paper reports: packet latency,
// throughput, pseudo-circuit reusability (§6, Fig. 8b/10), buffer bypass
// rate, communication temporal locality (Fig. 1), and hop counts.
package stats

import (
	"fmt"

	"pseudocircuit/internal/sim"
)

// Network accumulates measurements for one simulation run. It is not safe
// for concurrent use; a simulation owns one.
type Network struct {
	// Packets.
	PacketsInjected  uint64
	PacketsDelivered uint64
	FlitsDelivered   uint64

	// Latency sums over measured delivered packets, in cycles. Latency is
	// measured from packet creation (entering the source queue) to
	// tail-flit ejection; NetLatency from header injection into the
	// network to tail ejection (excludes source queueing). Packets injected
	// before the measurement window started are delivered but not sampled.
	LatencySamples uint64
	LatencySum     uint64
	NetLatencySum  uint64
	HopSum         uint64

	// LatencyHist collects the measured packet-latency distribution for
	// percentile reporting.
	LatencyHist Histogram

	// Router-level events.
	Traversals   uint64 // flit crossbar traversals (all paths)
	PCReused     uint64 // traversals that reused a pseudo-circuit (incl. bypass)
	Bypassed     uint64 // traversals that also bypassed the input buffer
	HeadTravs    uint64 // header-flit traversals
	HeadReused   uint64 // header-flit pseudo-circuit reuses
	HeadBypassed uint64 // header-flit buffer bypasses
	SpecReused   uint64 // pseudo-circuit reuses of speculative circuits
	PCCreated    uint64 // pseudo-circuits written by traversals
	PCTerminated uint64 // terminations (conflict or credit exhaustion)
	PCSpeculated uint64 // speculative revivals
	SAGrants     uint64 // switch-arbitration grants

	// Communication temporal locality (Fig. 1).
	XbarSame uint64 // traversals repeating the previous connection at that input port
	XbarPrev uint64 // traversals with a previous connection to compare against
	E2ESame  uint64 // packets whose (src,dst) repeats the source's previous packet
	E2EPrev  uint64 // packets with a previous packet at the source

	// Fault accounting (deterministic fault schedules).
	FaultEvents       uint64 // schedule events applied (down and up)
	PacketsDropped    uint64 // packets killed by a fault (purged everywhere)
	FlitsDropped      uint64 // flits recycled by fault purges
	PacketsRerouted   uint64 // packets salvaged in place under the reroute policy
	PCFaultTerminated uint64 // pseudo-circuits torn down because their link died

	// Reliability accounting (end-to-end reliable delivery; zero when the
	// reliability layer is off). All five are mutated on the kernel's main
	// goroutine only.
	PacketsRetransmitted uint64 // sender timeout re-injections
	AcksSent             uint64 // acknowledgement packets injected by receiver NIs
	AcksReceived         uint64 // acknowledgement packets ejected at sender NIs
	DuplicatesDropped    uint64 // already-delivered sequenced packets discarded (and re-acked)
	DeliveryFailed       uint64 // retry budgets exhausted: the flow gave the packet up

	// Warmup handling: events before Reset are discarded by reassigning the
	// struct; this field records the measurement start for rate reporting.
	MeasuredFrom sim.Cycle
	MeasuredTo   sim.Cycle
}

// Reset clears all counters, marking the start of the measurement phase.
// MeasuredTo is set to now as well, so the measurement window is empty (not
// negative) until the first post-reset cycle completes and rate reporting
// never divides by a zero- or negative-length window.
func (n *Network) Reset(now sim.Cycle) {
	*n = Network{MeasuredFrom: now, MeasuredTo: now}
}

// MergeCounters folds src's additive counters (including any histogram
// samples) into n and zeroes them in src, leaving both structs' measurement
// windows (MeasuredFrom/MeasuredTo) untouched. It is the shard-drain
// primitive of the parallel cycle kernel: per-shard accumulators are merged
// into the global struct in fixed shard order once per cycle. Every merged
// field is a sum (and histogram buckets are sums), so the per-shard grouping
// cannot change the totals — parallel runs report bit-identical statistics
// to sequential ones.
func (n *Network) MergeCounters(src *Network) {
	n.PacketsInjected += src.PacketsInjected
	n.PacketsDelivered += src.PacketsDelivered
	n.FlitsDelivered += src.FlitsDelivered
	n.LatencySamples += src.LatencySamples
	n.LatencySum += src.LatencySum
	n.NetLatencySum += src.NetLatencySum
	n.HopSum += src.HopSum
	if src.LatencyHist.Count() != 0 {
		n.LatencyHist.Merge(&src.LatencyHist)
		src.LatencyHist.Reset()
	}
	n.Traversals += src.Traversals
	n.PCReused += src.PCReused
	n.Bypassed += src.Bypassed
	n.HeadTravs += src.HeadTravs
	n.HeadReused += src.HeadReused
	n.HeadBypassed += src.HeadBypassed
	n.SpecReused += src.SpecReused
	n.PCCreated += src.PCCreated
	n.PCTerminated += src.PCTerminated
	n.PCSpeculated += src.PCSpeculated
	n.SAGrants += src.SAGrants
	n.XbarSame += src.XbarSame
	n.XbarPrev += src.XbarPrev
	n.E2ESame += src.E2ESame
	n.E2EPrev += src.E2EPrev
	n.FaultEvents += src.FaultEvents
	n.PacketsDropped += src.PacketsDropped
	n.FlitsDropped += src.FlitsDropped
	n.PacketsRerouted += src.PacketsRerouted
	n.PCFaultTerminated += src.PCFaultTerminated
	n.PacketsRetransmitted += src.PacketsRetransmitted
	n.AcksSent += src.AcksSent
	n.AcksReceived += src.AcksReceived
	n.DuplicatesDropped += src.DuplicatesDropped
	n.DeliveryFailed += src.DeliveryFailed
	hist := src.LatencyHist
	*src = Network{MeasuredFrom: src.MeasuredFrom, MeasuredTo: src.MeasuredTo}
	src.LatencyHist = hist
}

// MergeAll folds every shard accumulator into n in slice order. The parallel
// kernel keeps its per-shard accumulators slice-indexed (one contiguous
// []Network owned by the network, shard i writing only element i), so the
// once-per-cycle drain is a single ordered walk over that slice.
func (n *Network) MergeAll(shards []Network) {
	for i := range shards {
		n.MergeCounters(&shards[i])
	}
}

// Window returns the measured window length in cycles, never negative.
func (n *Network) Window() sim.Cycle {
	if n.MeasuredTo <= n.MeasuredFrom {
		return 0
	}
	return n.MeasuredTo - n.MeasuredFrom
}

// RecordDelivery accounts a fully ejected packet. Only measured packets
// (injected inside the measurement window) contribute latency samples.
func (n *Network) RecordDelivery(latency, netLatency sim.Cycle, flits, hops int, measured bool) {
	n.PacketsDelivered++
	n.FlitsDelivered += uint64(flits)
	if !measured {
		return
	}
	n.LatencySamples++
	n.LatencySum += uint64(latency)
	n.NetLatencySum += uint64(netLatency)
	n.HopSum += uint64(hops)
	n.LatencyHist.Add(uint64(latency))
}

// AvgLatency returns mean packet latency (creation → tail ejection).
func (n *Network) AvgLatency() float64 {
	if n.LatencySamples == 0 {
		return 0
	}
	return float64(n.LatencySum) / float64(n.LatencySamples)
}

// AvgNetLatency returns mean network latency (injection → tail ejection).
func (n *Network) AvgNetLatency() float64 {
	if n.LatencySamples == 0 {
		return 0
	}
	return float64(n.NetLatencySum) / float64(n.LatencySamples)
}

// AvgHops returns mean router hops per delivered packet.
func (n *Network) AvgHops() float64 {
	if n.LatencySamples == 0 {
		return 0
	}
	return float64(n.HopSum) / float64(n.LatencySamples)
}

// Reusability returns the fraction of flit traversals that reused a
// pseudo-circuit (paper Fig. 8b/10 definition).
func (n *Network) Reusability() float64 {
	if n.Traversals == 0 {
		return 0
	}
	return float64(n.PCReused) / float64(n.Traversals)
}

// BypassRate returns the fraction of flit traversals that bypassed the
// input buffer.
func (n *Network) BypassRate() float64 {
	if n.Traversals == 0 {
		return 0
	}
	return float64(n.Bypassed) / float64(n.Traversals)
}

// HeadReuseRate returns the fraction of header-flit traversals that reused
// a pseudo-circuit — the component of reusability that shortens packet
// latency directly (body flits pipeline behind their header either way).
func (n *Network) HeadReuseRate() float64 {
	if n.HeadTravs == 0 {
		return 0
	}
	return float64(n.HeadReused) / float64(n.HeadTravs)
}

// HeadBypassRate returns the fraction of header-flit traversals that also
// bypassed the input buffer.
func (n *Network) HeadBypassRate() float64 {
	if n.HeadTravs == 0 {
		return 0
	}
	return float64(n.HeadBypassed) / float64(n.HeadTravs)
}

// XbarLocality returns crossbar-connection temporal locality (Fig. 1): the
// fraction of traversals repeating the previous connection at their input
// port.
func (n *Network) XbarLocality() float64 {
	if n.XbarPrev == 0 {
		return 0
	}
	return float64(n.XbarSame) / float64(n.XbarPrev)
}

// E2ELocality returns end-to-end communication temporal locality (Fig. 1):
// the fraction of packets repeating their source's previous destination.
func (n *Network) E2ELocality() float64 {
	if n.E2EPrev == 0 {
		return 0
	}
	return float64(n.E2ESame) / float64(n.E2EPrev)
}

// Throughput returns delivered flits per node per cycle over the measured
// window, for nodes terminals. A zero-length window reports 0, never NaN/Inf.
func (n *Network) Throughput(nodes int) float64 {
	cycles := n.Window()
	if cycles == 0 || nodes == 0 {
		return 0
	}
	return float64(n.FlitsDelivered) / float64(cycles) / float64(nodes)
}

// InjectionRate returns injected packets per node per cycle over the
// measured window, with the same zero-window guard as Throughput.
func (n *Network) InjectionRate(nodes int) float64 {
	cycles := n.Window()
	if cycles == 0 || nodes == 0 {
		return 0
	}
	return float64(n.PacketsInjected) / float64(cycles) / float64(nodes)
}

// String summarizes the run for logs and examples.
func (n *Network) String() string {
	return fmt.Sprintf(
		"pkts=%d lat=%.2f netlat=%.2f hops=%.2f reuse=%.1f%% bypass=%.1f%% xbarLoc=%.1f%% e2eLoc=%.1f%%",
		n.PacketsDelivered, n.AvgLatency(), n.AvgNetLatency(), n.AvgHops(),
		100*n.Reusability(), 100*n.BypassRate(), 100*n.XbarLocality(), 100*n.E2ELocality())
}
