package stats_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
)

// exportWindows runs the series through the JSONL exporter and returns the
// window lines after the strict validator has accepted the stream.
func exportWindows(t *testing.T, s *stats.Series, n *stats.Network) []stats.WindowMetrics {
	t.Helper()
	var buf bytes.Buffer
	if err := stats.WriteMetricsJSONL(&buf, nil, s, n); err != nil {
		t.Fatal(err)
	}
	if _, err := stats.ValidateMetricsJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("export rejected by own validator: %v\n%s", err, buf.String())
	}
	var out []stats.WindowMetrics
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &head); err != nil {
			t.Fatal(err)
		}
		if head.Type != "window" {
			continue
		}
		var wm stats.WindowMetrics
		if err := json.Unmarshal([]byte(line), &wm); err != nil {
			t.Fatal(err)
		}
		out = append(out, wm)
	}
	return out
}

// A series rebased mid-window at the warmup boundary must export a
// contiguous, validator-clean stream: the partial warmup window closes at
// the boundary and the first measurement window differences against the
// zeroed counters instead of going backwards.
func TestWindowedExportAcrossRebase(t *testing.T) {
	var n stats.Network
	s := stats.NewSeries(10, 8)
	for now := sim.Cycle(1); now <= 15; now++ {
		n.PacketsInjected += 4
		s.Tick(now, &n)
	}
	s.Rebase(15, &n) // warmup boundary mid-window, as ResetStats does
	n.Reset(15)
	for now := sim.Cycle(16); now <= 35; now++ {
		n.PacketsInjected++
		s.Tick(now, &n)
	}

	wins := exportWindows(t, s, &n)
	if len(wins) != 4 {
		t.Fatalf("exported %d windows, want 4 (full, partial, 2 post-reset)", len(wins))
	}
	for i, w := range wins {
		if w.To <= w.From {
			t.Errorf("window %d is empty: [%d,%d)", i, w.From, w.To)
		}
		if i > 0 && w.From != wins[i-1].To {
			t.Errorf("window %d not contiguous: starts at %d, previous ended %d", i, w.From, wins[i-1].To)
		}
	}
	if w := wins[1]; w.From != 10 || w.To != 15 || w.Injected != 20 {
		t.Errorf("partial warmup window = %+v, want [10,15) with 20 injected", w)
	}
	// Post-reset windows difference against the zeroed baseline: 10/window,
	// not a wrapped-around uint64 from subtracting the warmup total.
	if w := wins[2]; w.From != 15 || w.To != 25 || w.Injected != 10 {
		t.Errorf("first measurement window = %+v, want [15,25) with 10 injected", w)
	}
}

// Rebase landing exactly on a window boundary leaves a zero-length tail;
// the export must skip it entirely — the validator rejects empty windows,
// so emitting one would poison every downstream consumer.
func TestWindowedExportZeroLengthTail(t *testing.T) {
	var n stats.Network
	s := stats.NewSeries(10, 8)
	for now := sim.Cycle(1); now <= 20; now++ {
		n.PacketsInjected++
		s.Tick(now, &n)
	}
	s.Rebase(20, &n) // boundary-aligned: the open window has zero cycles
	n.Reset(20)

	wins := exportWindows(t, s, &n)
	if len(wins) != 2 {
		t.Fatalf("exported %d windows, want 2 (no zero-length tail)", len(wins))
	}
	for i, w := range wins {
		if w.To <= w.From {
			t.Errorf("window %d is empty: [%d,%d)", i, w.From, w.To)
		}
	}

	// A second Rebase at the same cycle must still not emit anything.
	s.Rebase(20, &n)
	if got := exportWindows(t, s, &n); len(got) != 2 {
		t.Fatalf("double Rebase emitted a window: %d windows, want 2", len(got))
	}
}
