package stats_test

import (
	"math"
	"strings"
	"testing"

	"pseudocircuit/internal/stats"
)

func TestZeroValueSafe(t *testing.T) {
	var n stats.Network
	for name, v := range map[string]float64{
		"AvgLatency":    n.AvgLatency(),
		"AvgNetLatency": n.AvgNetLatency(),
		"AvgHops":       n.AvgHops(),
		"Reusability":   n.Reusability(),
		"BypassRate":    n.BypassRate(),
		"XbarLocality":  n.XbarLocality(),
		"E2ELocality":   n.E2ELocality(),
		"HeadReuseRate": n.HeadReuseRate(),
		"Throughput":    n.Throughput(64),
	} {
		if v != 0 {
			t.Errorf("%s on zero value = %v", name, v)
		}
	}
}

func TestRecordDelivery(t *testing.T) {
	var n stats.Network
	n.RecordDelivery(10, 8, 5, 3, true)
	n.RecordDelivery(20, 16, 1, 4, true)
	n.RecordDelivery(100, 90, 5, 2, false) // unmeasured: counted, not sampled
	if n.PacketsDelivered != 3 || n.FlitsDelivered != 11 {
		t.Fatalf("counts = %d pkts / %d flits", n.PacketsDelivered, n.FlitsDelivered)
	}
	if got := n.AvgLatency(); math.Abs(got-15) > 1e-9 {
		t.Errorf("AvgLatency = %v, want 15", got)
	}
	if got := n.AvgNetLatency(); math.Abs(got-12) > 1e-9 {
		t.Errorf("AvgNetLatency = %v, want 12", got)
	}
	if got := n.AvgHops(); math.Abs(got-3.5) > 1e-9 {
		t.Errorf("AvgHops = %v, want 3.5", got)
	}
}

func TestRates(t *testing.T) {
	var n stats.Network
	n.Traversals = 200
	n.PCReused = 80
	n.Bypassed = 30
	n.HeadTravs = 50
	n.HeadReused = 20
	n.HeadBypassed = 5
	n.XbarPrev = 100
	n.XbarSame = 31
	n.E2EPrev = 100
	n.E2ESame = 22
	if got := n.Reusability(); got != 0.4 {
		t.Errorf("Reusability = %v", got)
	}
	if got := n.BypassRate(); got != 0.15 {
		t.Errorf("BypassRate = %v", got)
	}
	if got := n.HeadReuseRate(); got != 0.4 {
		t.Errorf("HeadReuseRate = %v", got)
	}
	if got := n.HeadBypassRate(); got != 0.1 {
		t.Errorf("HeadBypassRate = %v", got)
	}
	if got := n.XbarLocality(); got != 0.31 {
		t.Errorf("XbarLocality = %v", got)
	}
	if got := n.E2ELocality(); got != 0.22 {
		t.Errorf("E2ELocality = %v", got)
	}
}

func TestThroughputAndReset(t *testing.T) {
	var n stats.Network
	n.Reset(100)
	n.FlitsDelivered = 640
	n.MeasuredTo = 200
	if got := n.Throughput(64); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("Throughput = %v, want 0.1", got)
	}
	n.Reset(500)
	if n.FlitsDelivered != 0 || n.MeasuredFrom != 500 {
		t.Error("Reset did not clear counters / set window start")
	}
}

// TestZeroLengthWindow: rate accessors must not divide by a zero- or
// negative-length measurement window. Reset(now) sets MeasuredTo = now, so
// the instant after a reset — before the next Step — is exactly this case.
func TestZeroLengthWindow(t *testing.T) {
	var n stats.Network
	n.Reset(100)
	n.FlitsDelivered = 640
	n.PacketsInjected = 128
	if got := n.Window(); got != 0 {
		t.Errorf("Window right after Reset = %d, want 0", got)
	}
	if got := n.Throughput(64); got != 0 {
		t.Errorf("Throughput on zero window = %v, want 0", got)
	}
	if got := n.InjectionRate(64); got != 0 {
		t.Errorf("InjectionRate on zero window = %v, want 0", got)
	}
	n.MeasuredTo = 50 // corrupt: To before From must still not blow up
	if n.Window() != 0 || n.Throughput(64) != 0 || n.InjectionRate(64) != 0 {
		t.Error("negative window not guarded")
	}
	n.MeasuredTo = 200
	if got := n.Window(); got != 100 {
		t.Errorf("Window = %d, want 100", got)
	}
	if got := n.Throughput(64); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("Throughput = %v, want 0.1", got)
	}
	if got := n.InjectionRate(64); math.Abs(got-0.02) > 1e-9 {
		t.Errorf("InjectionRate = %v, want 0.02", got)
	}
}

func TestString(t *testing.T) {
	var n stats.Network
	n.RecordDelivery(10, 9, 2, 3, true)
	s := n.String()
	if !strings.Contains(s, "pkts=1") {
		t.Errorf("String() = %q", s)
	}
}
