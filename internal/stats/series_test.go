package stats_test

import (
	"testing"

	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
)

func TestNewSeriesRejectsBadArgs(t *testing.T) {
	for _, c := range []struct{ w, cap int }{{0, 4}, {4, 0}, {-1, 4}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSeries(%d, %d) did not panic", c.w, c.cap)
				}
			}()
			stats.NewSeries(c.w, c.cap)
		}()
	}
}

// Drive a fake network through three windows and check the per-window deltas.
func TestSeriesWindows(t *testing.T) {
	var n stats.Network
	s := stats.NewSeries(10, 8)
	for now := sim.Cycle(1); now <= 30; now++ {
		n.PacketsInjected += 2 // 20 per window
		if now%2 == 0 {
			n.PacketsDelivered++
			n.FlitsDelivered += 5
			n.LatencySamples++
			n.LatencySum += 40
		}
		n.Traversals += 4
		n.PCReused += 3
		s.Tick(now, &n)
	}
	got := s.Samples()
	if len(got) != 3 || s.Len() != 3 || s.Dropped() != 0 {
		t.Fatalf("windows = %d (dropped %d), want 3", len(got), s.Dropped())
	}
	for i, sm := range got {
		if sm.From != sim.Cycle(i*10) || sm.To != sm.From+10 {
			t.Errorf("window %d spans [%d,%d)", i, sm.From, sm.To)
		}
		if sm.Injected != 20 || sm.Delivered != 5 || sm.FlitsDelivered != 25 {
			t.Errorf("window %d deltas: %+v", i, sm)
		}
		if sm.Traversals != 40 || sm.PCReused != 30 {
			t.Errorf("window %d traversal deltas: %+v", i, sm)
		}
		if sm.Cycles() != 10 {
			t.Errorf("window %d Cycles = %d", i, sm.Cycles())
		}
		if r := sm.InjectionRate(2); r != 1.0 {
			t.Errorf("window %d InjectionRate = %v, want 1.0", i, r)
		}
		if th := sm.Throughput(5); th != 0.5 {
			t.Errorf("window %d Throughput = %v, want 0.5", i, th)
		}
		if l := sm.AvgLatency(); l != 40 {
			t.Errorf("window %d AvgLatency = %v, want 40", i, l)
		}
		if r := sm.Reusability(); r != 0.75 {
			t.Errorf("window %d Reusability = %v, want 0.75", i, r)
		}
	}
}

// The ring bound evicts the oldest windows; Samples stays chronological.
func TestSeriesRingWrap(t *testing.T) {
	var n stats.Network
	s := stats.NewSeries(10, 3)
	for now := sim.Cycle(1); now <= 70; now++ {
		n.PacketsInjected++
		s.Tick(now, &n)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Dropped() != 4 {
		t.Errorf("Dropped = %d, want 4", s.Dropped())
	}
	got := s.Samples()
	for i, sm := range got {
		want := sim.Cycle(40 + i*10)
		if sm.From != want {
			t.Errorf("sample %d From = %d, want %d (chronological, oldest evicted)", i, sm.From, want)
		}
	}
}

// Rebase must close the open partial window against the pre-reset counters
// and difference later windows against the zeroed baseline — the warmup /
// measurement seam.
func TestSeriesRebase(t *testing.T) {
	var n stats.Network
	s := stats.NewSeries(10, 8)
	for now := sim.Cycle(1); now <= 15; now++ {
		n.PacketsInjected++
		s.Tick(now, &n)
	}
	// Mid-window reset at cycle 15, as ResetStats does.
	s.Rebase(15, &n)
	n.Reset(15)
	for now := sim.Cycle(16); now <= 25; now++ {
		n.PacketsInjected += 3
		s.Tick(now, &n)
	}
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("windows = %d, want 3 (full, partial, post-reset)", len(got))
	}
	if got[1].From != 10 || got[1].To != 15 || got[1].Injected != 5 {
		t.Errorf("partial warmup window = %+v", got[1])
	}
	if got[2].From != 15 || got[2].To != 25 || got[2].Injected != 30 {
		t.Errorf("post-reset window = %+v (baseline not rebased?)", got[2])
	}
}

// Rebase with nothing elapsed must not emit an empty window.
func TestSeriesRebaseNoPartial(t *testing.T) {
	var n stats.Network
	s := stats.NewSeries(10, 8)
	for now := sim.Cycle(1); now <= 10; now++ {
		s.Tick(now, &n)
	}
	s.Rebase(10, &n)
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 (no zero-length window from Rebase at a boundary)", s.Len())
	}
}

func TestSampleZeroGuards(t *testing.T) {
	var sm stats.Sample
	if sm.InjectionRate(64) != 0 || sm.Throughput(64) != 0 || sm.AvgLatency() != 0 || sm.Reusability() != 0 {
		t.Error("zero-value Sample rates must be 0")
	}
	sm.To = 10
	if sm.InjectionRate(0) != 0 || sm.Throughput(0) != 0 {
		t.Error("zero nodes must not divide by zero")
	}
}
