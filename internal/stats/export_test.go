package stats_test

import (
	"bytes"
	"strings"
	"testing"

	"pseudocircuit/internal/stats"
)

// exportFixture builds a registry/series/global trio whose per-router sums
// match the global counters, as a real run produces.
func exportFixture() (*stats.Registry, *stats.Series, *stats.Network) {
	g := stats.NewRegistry()
	a := g.Attach(0, 2, 2)
	b := g.Attach(1, 2, 2)
	a.SAGrants, a.Traversals, a.PCReused = 12, 10, 4
	a.In[0] = stats.PortStats{Traversals: 6, PCReused: 3, BufHighWater: 2}
	a.In[1] = stats.PortStats{Traversals: 4, PCReused: 1, CreditStalls: 5}
	b.SAGrants, b.Traversals, b.PCReused = 8, 6, 2
	b.In[0] = stats.PortStats{Traversals: 6, PCReused: 2}

	var n stats.Network
	n.MeasuredFrom, n.MeasuredTo = 100, 200
	n.SAGrants, n.Traversals, n.PCReused = 20, 16, 6
	n.PacketsInjected, n.PacketsDelivered, n.FlitsDelivered = 40, 38, 190
	n.LatencySamples, n.LatencySum = 38, 760

	s := stats.NewSeries(50, 4)
	n2 := n // close two windows against evolving counters
	s.Tick(150, &n2)
	s.Tick(200, &n2)
	return g, s, &n
}

func TestMetricsRoundTrip(t *testing.T) {
	g, s, n := exportFixture()
	var buf bytes.Buffer
	if err := stats.WriteMetricsJSONL(&buf, g, s, n); err != nil {
		t.Fatal(err)
	}
	lines, err := stats.ValidateMetricsJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip invalid: %v\n%s", err, buf.String())
	}
	// 2 router lines + 2 closed windows + 1 global line.
	if want := strings.Count(buf.String(), "\n"); lines != want {
		t.Errorf("validated %d lines, file has %d", lines, want)
	}
	if !strings.Contains(buf.String(), `"type":"router"`) ||
		!strings.Contains(buf.String(), `"type":"window"`) ||
		!strings.Contains(buf.String(), `"type":"global"`) {
		t.Errorf("missing line types:\n%s", buf.String())
	}
}

// Nil registry and series: only the global line is written, still valid.
func TestMetricsGlobalOnly(t *testing.T) {
	_, _, n := exportFixture()
	var buf bytes.Buffer
	if err := stats.WriteMetricsJSONL(&buf, nil, nil, n); err != nil {
		t.Fatal(err)
	}
	if lines, err := stats.ValidateMetricsJSONL(&buf); err != nil || lines != 1 {
		t.Errorf("global-only export: %d lines, err %v", lines, err)
	}
}

func TestValidateMetricsRejects(t *testing.T) {
	valid := func() string {
		g, s, n := exportFixture()
		var buf bytes.Buffer
		if err := stats.WriteMetricsJSONL(&buf, g, s, n); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "empty"},
		{"unknown type", `{"type":"bogus"}`, "unknown type"},
		{"unknown field", `{"type":"global","bogus_field":1}`, "bogus_field"},
		{"empty window", `{"type":"window","from":100,"to":100}`, "empty window"},
		{"negative router", `{"type":"router","router":-1}`, "negative router"},
		{
			"duplicate router",
			`{"type":"router","router":0}` + "\n" + `{"type":"router","router":0}`,
			"duplicate router",
		},
		{
			"port sum mismatch",
			`{"type":"router","router":0,"pc_reused":5,"ports":[{"port":0,"pc_reused":1}]}`,
			"port pc_reused sum",
		},
		{
			"global sum mismatch",
			// Hits the global line (and harmlessly the window lines, which
			// carry the same delta but are not cross-checked).
			strings.ReplaceAll(valid, `"pc_reused":6`, `"pc_reused":7`),
			"pc_reused sum",
		},
		{"two globals", `{"type":"global"}` + "\n" + `{"type":"global"}`, "global lines"},
	}
	for _, c := range cases {
		_, err := stats.ValidateMetricsJSONL(strings.NewReader(c.input))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
	// Sanity: the unmodified fixture still passes.
	if _, err := stats.ValidateMetricsJSONL(strings.NewReader(valid)); err != nil {
		t.Errorf("fixture no longer valid: %v", err)
	}
}
