package stats

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestBucketBoundsMonotone(t *testing.T) {
	bounds := sortedBucketBounds(512)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bucket %d bound %d <= previous %d", i, bounds[i], bounds[i-1])
		}
	}
}

// TestBucketRoundTrip: every value falls in the bucket whose bounds contain
// it, with bounded relative error.
func TestBucketRoundTrip(t *testing.T) {
	err := quick.Check(func(v uint32) bool {
		val := uint64(v) % 10_000_000
		b := bucketOf(val)
		lo := bucketLo(b)
		hi := bucketLo(b + 1)
		if !(lo <= val && val < hi) {
			return false
		}
		// Relative bucket width bounded (exact below the linear region).
		if val >= histLinear && float64(hi-lo)/float64(lo) > 0.04 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < 64; v++ {
		h.Add(v)
	}
	if h.Count() != 64 || h.Max() != 63 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if got := h.Percentile(50); got != 31 {
		t.Errorf("p50 = %d, want 31", got)
	}
	if got := h.Percentile(100); got != 63 {
		t.Errorf("p100 = %d, want 63", got)
	}
	if h.Mean() != 31.5 {
		t.Errorf("mean = %v, want 31.5", h.Mean())
	}
}

// TestPercentileAgainstSort: histogram percentiles track exact order
// statistics within bucket resolution.
func TestPercentileAgainstSort(t *testing.T) {
	var h Histogram
	vals := make([]uint64, 0, 2000)
	x := uint64(12345)
	for i := 0; i < 2000; i++ {
		x = x*2862933555777941757 + 3037000493
		v := x % 5000
		vals = append(vals, v)
		h.Add(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{50, 90, 95, 99} {
		exact := vals[int(p/100*float64(len(vals)))-1]
		got := h.Percentile(p)
		rel := float64(got) / float64(exact)
		if rel < 0.93 || rel > 1.05 {
			t.Errorf("p%.0f = %d vs exact %d (ratio %.3f)", p, got, exact, rel)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := uint64(0); v < 100; v++ {
		a.Add(v)
		b.Add(v + 1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1099 {
		t.Fatalf("merged max = %d", a.Max())
	}
	if p := a.Percentile(75); p < 1000 {
		t.Errorf("p75 = %d, want >= 1000", p)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Add(5)
	h.Add(50000)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Percentile(99) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.ASCII(10) != "(empty)\n" {
		t.Fatal("empty ASCII")
	}
}

func TestHistogramASCII(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Add(3)
	}
	h.Add(7)
	out := h.ASCII(20)
	if !strings.Contains(out, "3 | ####################") {
		t.Errorf("ASCII output:\n%s", out)
	}
	if !strings.Contains(out, "7 | ##") {
		t.Errorf("ASCII output missing small bucket:\n%s", out)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Add(10)
	s := h.String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "max=10") {
		t.Errorf("String = %q", s)
	}
}
