package stats

import (
	"fmt"

	"pseudocircuit/internal/sim"
)

// Sample is one closed window of the cycle-windowed time series: the deltas
// of the global counters over [From, To). Rates derived from it expose the
// transients a whole-run average hides (warmup convergence, injection bursts,
// pseudo-circuit reuse ramping up as circuits form).
type Sample struct {
	From, To sim.Cycle

	Injected       uint64 // packets entering source queues
	Delivered      uint64 // packets fully ejected
	FlitsDelivered uint64
	LatencySamples uint64
	LatencySum     uint64
	Traversals     uint64
	PCReused       uint64
	Bypassed       uint64
}

// Cycles returns the window length.
func (s Sample) Cycles() int { return int(s.To - s.From) }

// InjectionRate returns injected packets per node per cycle over the window.
func (s Sample) InjectionRate(nodes int) float64 {
	if c := s.Cycles(); c > 0 && nodes > 0 {
		return float64(s.Injected) / float64(c) / float64(nodes)
	}
	return 0
}

// Throughput returns delivered flits per node per cycle over the window.
func (s Sample) Throughput(nodes int) float64 {
	if c := s.Cycles(); c > 0 && nodes > 0 {
		return float64(s.FlitsDelivered) / float64(c) / float64(nodes)
	}
	return 0
}

// AvgLatency returns the mean latency of packets delivered in the window.
func (s Sample) AvgLatency() float64 {
	if s.LatencySamples == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.LatencySamples)
}

// Reusability returns the window's pseudo-circuit reuse fraction.
func (s Sample) Reusability() float64 {
	if s.Traversals == 0 {
		return 0
	}
	return float64(s.PCReused) / float64(s.Traversals)
}

// String renders one sample for logs.
func (s Sample) String() string {
	return fmt.Sprintf("[%d,%d) inj=%d dlv=%d lat=%.2f reuse=%.1f%%",
		s.From, s.To, s.Injected, s.Delivered, s.AvgLatency(), 100*s.Reusability())
}

// snapshot captures the cumulative counters a Series differentiates.
type snapshot struct {
	injected, delivered, flits uint64
	latSamples, latSum         uint64
	traversals, reused, bypass uint64
}

func snap(n *Network) snapshot {
	return snapshot{
		injected:   n.PacketsInjected,
		delivered:  n.PacketsDelivered,
		flits:      n.FlitsDelivered,
		latSamples: n.LatencySamples,
		latSum:     n.LatencySum,
		traversals: n.Traversals,
		reused:     n.PCReused,
		bypass:     n.Bypassed,
	}
}

// Series records cycle-windowed samples of the global counters into a
// bounded ring buffer. The network ticks it once per cycle; every window
// cycles it closes a Sample. All storage is preallocated, so the per-cycle
// path never allocates (the steady-state zero-alloc contract holds with the
// series enabled).
//
// The series spans warmup and measurement: Rebase (called when the global
// counters are reset) closes the current partial window and restarts the
// baseline, so warmup windows stay in the ring and post-reset windows
// difference against the zeroed counters.
type Series struct {
	window  int
	samples []Sample // ring storage, len grows to cap then wraps
	head    int      // index of the oldest sample once wrapped
	dropped uint64   // samples evicted by the ring bound

	prev snapshot  // counters at the last window boundary
	from sim.Cycle // start of the currently open window
}

// NewSeries returns a series with the given window length in cycles and ring
// capacity in windows. Both must be positive.
func NewSeries(window, capacity int) *Series {
	if window <= 0 || capacity <= 0 {
		panic("stats: series window and capacity must be positive")
	}
	return &Series{window: window, samples: make([]Sample, 0, capacity)}
}

// Window returns the configured window length in cycles.
func (s *Series) Window() int { return s.window }

// Dropped returns how many closed windows were evicted by the ring bound.
func (s *Series) Dropped() uint64 { return s.dropped }

// Len returns the number of retained samples.
func (s *Series) Len() int { return len(s.samples) }

// Tick advances the series to cycle now; the network calls it once per Step
// after updating st. When a window boundary is crossed the open window is
// closed into the ring.
func (s *Series) Tick(now sim.Cycle, st *Network) {
	if now-s.from < sim.Cycle(s.window) {
		return
	}
	s.close(now, st)
}

// Rebase closes the currently open window (if any cycles elapsed) against
// the pre-reset counters and restarts the baseline at now with zeroed
// counters. The network calls it from ResetStats immediately before the
// global reset.
func (s *Series) Rebase(now sim.Cycle, st *Network) {
	if now > s.from {
		s.close(now, st)
	}
	s.prev = snapshot{}
	s.from = now
}

func (s *Series) close(now sim.Cycle, st *Network) {
	cur := snap(st)
	sm := Sample{
		From:           s.from,
		To:             now,
		Injected:       cur.injected - s.prev.injected,
		Delivered:      cur.delivered - s.prev.delivered,
		FlitsDelivered: cur.flits - s.prev.flits,
		LatencySamples: cur.latSamples - s.prev.latSamples,
		LatencySum:     cur.latSum - s.prev.latSum,
		Traversals:     cur.traversals - s.prev.traversals,
		PCReused:       cur.reused - s.prev.reused,
		Bypassed:       cur.bypass - s.prev.bypass,
	}
	if len(s.samples) < cap(s.samples) {
		s.samples = append(s.samples, sm)
	} else {
		s.samples[s.head] = sm
		s.head = (s.head + 1) % len(s.samples)
		s.dropped++
	}
	s.prev = cur
	s.from = now
}

// Samples returns the retained windows in chronological order (a copy; safe
// to keep). Reporting-path only: it allocates.
func (s *Series) Samples() []Sample {
	out := make([]Sample, 0, len(s.samples))
	out = append(out, s.samples[s.head:]...)
	out = append(out, s.samples[:s.head]...)
	return out
}
