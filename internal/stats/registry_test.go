package stats_test

import (
	"testing"

	"pseudocircuit/internal/stats"
)

// A nil *Registry is the disabled state: every method must be a safe no-op.
func TestRegistryNilSafe(t *testing.T) {
	var g *stats.Registry
	if g.Attach(3, 5, 5) != nil {
		t.Error("nil registry Attach returned a row")
	}
	if g.Router(0) != nil || g.Routers() != nil {
		t.Error("nil registry lookup returned rows")
	}
	g.Reset() // must not panic
	if tot := g.Totals(); tot.ID != -1 || tot.Traversals != 0 {
		t.Errorf("nil registry Totals = %+v", tot)
	}
}

func TestRegistryAttach(t *testing.T) {
	g := stats.NewRegistry()
	r5 := g.Attach(5, 3, 4) // out-of-order, sparse IDs
	r1 := g.Attach(1, 2, 2)
	if r5 == nil || r1 == nil {
		t.Fatal("Attach returned nil on live registry")
	}
	if len(r5.In) != 3 || len(r5.OutSends) != 4 {
		t.Errorf("row 5 port slices = %d in / %d out", len(r5.In), len(r5.OutSends))
	}
	if again := g.Attach(5, 3, 4); again != r5 {
		t.Error("re-Attach returned a different row")
	}
	if g.Router(5) != r5 || g.Router(1) != r1 {
		t.Error("Router lookup mismatch")
	}
	if g.Router(0) != nil || g.Router(2) != nil || g.Router(99) != nil || g.Router(-1) != nil {
		t.Error("unattached IDs must yield nil")
	}
	rows := g.Routers()
	if len(rows) != 2 || rows[0] != r1 || rows[1] != r5 {
		t.Errorf("Routers() = %v rows, want [r1 r5]", len(rows))
	}
}

func TestRegistryTotalsAndReset(t *testing.T) {
	g := stats.NewRegistry()
	a := g.Attach(0, 2, 2)
	b := g.Attach(1, 2, 2)
	a.SAGrants, a.Traversals, a.PCReused = 10, 8, 3
	b.SAGrants, b.Traversals, b.PCReused = 5, 4, 2
	a.In[1].CreditStalls = 7
	a.In[0].BufHighWater = 4
	b.OutSends[0] = 9

	tot := g.Totals()
	if tot.SAGrants != 15 || tot.Traversals != 12 || tot.PCReused != 5 {
		t.Errorf("Totals = %+v", tot)
	}
	if got := a.CreditStallCycles(); got != 7 {
		t.Errorf("CreditStallCycles = %d", got)
	}
	if r := a.Reusability(); r != 3.0/8 {
		t.Errorf("Reusability = %v", r)
	}

	inBefore := &a.In[0]
	g.Reset()
	if g.Router(0) != a || &a.In[0] != inBefore {
		t.Error("Reset must zero in place, not reallocate rows or ports")
	}
	if tot := g.Totals(); tot.SAGrants != 0 || tot.Traversals != 0 || tot.PCReused != 0 {
		t.Errorf("Totals after Reset = %+v", tot)
	}
	if a.In[1].CreditStalls != 0 || a.In[0].BufHighWater != 0 || b.OutSends[0] != 0 {
		t.Error("Reset left port counters set")
	}
	if a.ID != 0 || b.ID != 1 {
		t.Error("Reset clobbered router IDs")
	}
}

// Rate helpers must guard the zero-traversal case (a router that never
// forwarded anything).
func TestRouterStatsZeroGuards(t *testing.T) {
	var r stats.RouterStats
	if r.Reusability() != 0 || r.BypassRate() != 0 || r.CreditStallCycles() != 0 {
		t.Error("zero-value RouterStats rates must be 0")
	}
}
