package traffic_test

import (
	"math"
	"testing"

	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/traffic"
)

// sink collects injected packets.
type sink struct{ pkts []*flit.Packet }

func (s *sink) Inject(p *flit.Packet) { s.pkts = append(s.pkts, p) }

func TestUniformRandomProperties(t *testing.T) {
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: 64, Rate: 0.5, PacketSize: 5,
	}, sim.NewRNG(1))
	var s sink
	for cy := sim.Cycle(0); cy < 2000; cy++ {
		w.Tick(cy, &s)
	}
	if len(s.pkts) == 0 {
		t.Fatal("no packets")
	}
	seen := map[int]bool{}
	for _, p := range s.pkts {
		if p.Src == p.Dst {
			t.Fatal("self-addressed packet")
		}
		if p.Dst < 0 || p.Dst >= 64 || p.Size != 5 {
			t.Fatalf("bad packet %+v", p)
		}
		seen[p.Dst] = true
	}
	if len(seen) < 50 {
		t.Errorf("uniform random reached only %d destinations", len(seen))
	}
}

func TestInjectionRate(t *testing.T) {
	const rate = 0.2
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.UniformRandom, Nodes: 64, Rate: rate, PacketSize: 5,
	}, sim.NewRNG(2))
	var s sink
	const cycles = 5000
	for cy := sim.Cycle(0); cy < cycles; cy++ {
		w.Tick(cy, &s)
	}
	flits := 0
	for _, p := range s.pkts {
		flits += p.Size
	}
	got := float64(flits) / cycles / 64
	if math.Abs(got-rate) > 0.02 {
		t.Errorf("offered load = %.4f flits/node/cycle, want %.2f", got, rate)
	}
}

func TestBitComplement(t *testing.T) {
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.BitComplement, Nodes: 64, Rate: 1,
	}, sim.NewRNG(3))
	rng := sim.NewRNG(4)
	for node := 0; node < 64; node++ {
		if got := w.Destination(node, rng); got != 63-node {
			t.Fatalf("BC dest of %d = %d, want %d", node, got, 63-node)
		}
	}
}

func TestBitPermutationTranspose(t *testing.T) {
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.BitPermutation, Nodes: 64, GridW: 8, Rate: 1,
	}, sim.NewRNG(3))
	rng := sim.NewRNG(4)
	// (x,y) -> (y,x): node 1 = (1,0) -> (0,1) = node 8.
	if got := w.Destination(1, rng); got != 8 {
		t.Fatalf("BP dest of 1 = %d, want 8", got)
	}
	// Diagonal nodes are fixed points; the generator must skip them, so
	// Destination returns the node itself and Tick drops it.
	if got := w.Destination(9, rng); got != 9 {
		t.Fatalf("BP dest of 9 = %d, want 9 (fixed point)", got)
	}
}

func TestHotspotSkew(t *testing.T) {
	w := traffic.NewSynthetic(traffic.Config{
		Pattern: traffic.Hotspot, Nodes: 64, Rate: 1,
		HotspotNode: 7, HotspotFrac: 0.5,
	}, sim.NewRNG(5))
	rng := sim.NewRNG(6)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if w.Destination(3, rng) == 7 {
			hits++
		}
	}
	if got := float64(hits) / n; got < 0.45 || got > 0.58 {
		t.Errorf("hotspot fraction = %.3f, want ~0.5", got)
	}
}

func TestFlows(t *testing.T) {
	w := traffic.NewFlows(
		traffic.Flow{Src: 0, Dst: 5, Size: 3, Period: 10, Count: 4},
		traffic.Flow{Src: 1, Dst: 2, Size: 1, Period: 7, Start: 3},
	)
	var s sink
	for cy := sim.Cycle(0); cy < 100; cy++ {
		w.Tick(cy, &s)
	}
	if w.Sent(0) != 4 {
		t.Errorf("flow 0 sent %d, want 4 (capped)", w.Sent(0))
	}
	if w.Sent(1) != 14 { // cycles 3,10,...,94
		t.Errorf("flow 1 sent %d, want 14", w.Sent(1))
	}
	if w.Done() {
		t.Error("Done with an unbounded flow")
	}
	bounded := traffic.NewFlows(traffic.Flow{Src: 0, Dst: 1, Period: 5, Count: 2})
	var s2 sink
	for cy := sim.Cycle(0); cy < 20; cy++ {
		bounded.Tick(cy, &s2)
	}
	if !bounded.Done() {
		t.Error("bounded flow not Done")
	}
	if len(s2.pkts) != 2 {
		t.Errorf("bounded flow injected %d, want 2", len(s2.pkts))
	}
}

func TestPatternStrings(t *testing.T) {
	for p, want := range map[traffic.Pattern]string{
		traffic.UniformRandom:  "uniform",
		traffic.BitComplement:  "bitcomp",
		traffic.BitPermutation: "transpose",
		traffic.Hotspot:        "hotspot",
	} {
		if p.String() != want {
			t.Errorf("%v.String() = %q", p, p.String())
		}
	}
}
