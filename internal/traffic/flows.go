package traffic

import (
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
)

// Flow is a deterministic periodic packet stream, used for pipeline-latency
// validation (paper Fig. 6) and unit tests.
type Flow struct {
	Src, Dst int
	Size     int       // flits per packet
	Period   sim.Cycle // inject one packet every Period cycles
	Start    sim.Cycle // first injection cycle
	Count    int       // number of packets (0 = unbounded)
}

// Flows is an open-loop workload of deterministic flows.
type Flows struct {
	flows []Flow
	sent  []int
}

// NewFlows builds the workload.
func NewFlows(flows ...Flow) *Flows {
	return &Flows{flows: flows, sent: make([]int, len(flows))}
}

// Tick implements network.Workload.
func (w *Flows) Tick(now sim.Cycle, inj network.Injector) {
	for i, f := range w.flows {
		if now < f.Start || (f.Count > 0 && w.sent[i] >= f.Count) {
			continue
		}
		if (now-f.Start)%f.Period != 0 {
			continue
		}
		size := f.Size
		if size == 0 {
			size = 1
		}
		w.sent[i]++
		p := network.AcquirePacket(inj)
		p.Src, p.Dst, p.Size, p.Class = f.Src, f.Dst, size, flit.ClassData
		inj.Inject(p)
	}
}

// Deliver implements network.Workload.
func (w *Flows) Deliver(now sim.Cycle, p *flit.Packet) {}

// Done implements network.Workload: true once every bounded flow is sent.
func (w *Flows) Done() bool {
	for i, f := range w.flows {
		if f.Count == 0 || w.sent[i] < f.Count {
			return false
		}
	}
	return true
}

// Sent returns packets generated for flow i.
func (w *Flows) Sent(i int) int { return w.sent[i] }
