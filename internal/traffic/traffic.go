// Package traffic implements the synthetic workloads of paper §6.B —
// uniform random (UR), bit complement (BC) and bit permutation (BP, matrix
// transpose) — plus a hotspot pattern used in tests and ablations. Each node
// injects packets as a Bernoulli process with a configurable per-node flit
// injection rate; synthetic packets are 5 flits long as in the paper.
package traffic

import (
	"fmt"

	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
)

// Pattern selects the destination distribution.
type Pattern int

const (
	// UniformRandom sends each packet to a uniformly random other node.
	UniformRandom Pattern = iota
	// BitComplement sends node i to node (N-1)-i (bitwise complement of the
	// node index for power-of-two N), a long-distance pattern that
	// saturates early.
	BitComplement
	// BitPermutation is the matrix-transpose permutation on the node grid:
	// node (x, y) sends to node (y, x). All traffic crosses the diagonal,
	// saturating earliest under DOR (paper §6.B).
	BitPermutation
	// Hotspot sends a configurable fraction of traffic to one node and the
	// rest uniformly (not in the paper's Fig. 12; used for ablations).
	Hotspot
)

func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case BitComplement:
		return "bitcomp"
	case BitPermutation:
		return "transpose"
	case Hotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Config parameterizes a synthetic workload.
type Config struct {
	Pattern Pattern
	// Nodes is the terminal count; GridW is the node-grid width used by
	// BitPermutation (nodes are laid out row-major on a GridW-wide grid).
	Nodes int
	GridW int
	// Rate is the injection rate in flits per node per cycle.
	Rate float64
	// PacketSize is the flit count per packet (paper: 5).
	PacketSize int
	// HotspotNode and HotspotFrac configure the Hotspot pattern.
	HotspotNode int
	HotspotFrac float64
}

// Synthetic is an open-loop workload implementing network.Workload.
type Synthetic struct {
	cfg  Config
	rngs []*sim.RNG
	// generated counts injected packets (diagnostics).
	generated uint64
}

// NewSynthetic builds a synthetic workload; rng seeds the per-node streams.
func NewSynthetic(cfg Config, rng *sim.RNG) *Synthetic {
	if cfg.Nodes < 2 {
		panic("traffic: need at least 2 nodes")
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 5
	}
	if cfg.GridW <= 0 {
		cfg.GridW = isqrt(cfg.Nodes)
	}
	s := &Synthetic{cfg: cfg, rngs: make([]*sim.RNG, cfg.Nodes)}
	for i := range s.rngs {
		s.rngs[i] = rng.Split()
	}
	return s
}

// Tick implements network.Workload: each node flips a Bernoulli coin with
// probability rate/packetSize (so the flit rate matches cfg.Rate).
func (s *Synthetic) Tick(now sim.Cycle, inj network.Injector) {
	pPkt := s.cfg.Rate / float64(s.cfg.PacketSize)
	for node := 0; node < s.cfg.Nodes; node++ {
		if !s.rngs[node].Bernoulli(pPkt) {
			continue
		}
		dst := s.Destination(node, s.rngs[node])
		if dst == node {
			continue // patterns with fixed points skip self-traffic
		}
		s.generated++
		p := network.AcquirePacket(inj)
		p.Src = node
		p.Dst = dst
		p.Size = s.cfg.PacketSize
		p.Class = flit.ClassData
		inj.Inject(p)
	}
}

// Destination returns the pattern's destination for a packet from node.
func (s *Synthetic) Destination(node int, rng *sim.RNG) int {
	n := s.cfg.Nodes
	switch s.cfg.Pattern {
	case UniformRandom:
		d := rng.Intn(n - 1)
		if d >= node {
			d++
		}
		return d
	case BitComplement:
		return n - 1 - node
	case BitPermutation:
		w := s.cfg.GridW
		if w*w != n {
			panic(fmt.Sprintf("traffic: transpose needs a square node grid, got %d nodes, width %d", n, w))
		}
		x, y := node%w, node/w
		return x*w + y // (x, y) -> (y, x)
	case Hotspot:
		if rng.Bernoulli(s.cfg.HotspotFrac) {
			return s.cfg.HotspotNode
		}
		d := rng.Intn(n - 1)
		if d >= node {
			d++
		}
		return d
	default:
		panic("traffic: unknown pattern")
	}
}

// Deliver implements network.Workload (open loop: no reaction).
func (s *Synthetic) Deliver(now sim.Cycle, p *flit.Packet) {}

// Done implements network.Workload; open-loop sources never finish.
func (s *Synthetic) Done() bool { return false }

// Generated returns the number of packets generated so far.
func (s *Synthetic) Generated() uint64 { return s.generated }

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
