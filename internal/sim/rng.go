// Package sim provides the deterministic simulation substrate shared by all
// other packages: a reproducible random-number generator and small helpers
// for cycle-based bookkeeping.
//
// Everything in the simulator is deterministic given a seed, so experiments
// are exactly repeatable and tests can assert on precise cycle counts.
package sim

// Cycle is a simulation time stamp measured in router clock cycles.
type Cycle int64

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64* variant). It is not safe for concurrent use; each
// simulation owns one (or derives sub-streams with Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Split derives an independent sub-stream, used to give each traffic source
// its own generator so injector order does not perturb other components.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A5DEADBEEF)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (number of failures before the first success). Used for
// burst-length modelling in the CMP workload profiles.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		p = 1e-9
	}
	n := 0
	for !r.Bernoulli(p) && n < 1<<20 {
		n++
	}
	return n
}

// Perm fills dst with a pseudo-random permutation of [0, len(dst)).
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero-total weights choose uniformly.
func (r *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
