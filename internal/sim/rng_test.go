package sim_test

import (
	"math"
	"testing"
	"testing/quick"

	"pseudocircuit/internal/sim"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := sim.NewRNG(42), sim.NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := sim.NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestIntnRange(t *testing.T) {
	err := quick.Check(func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := sim.NewRNG(seed)
		v := r.Intn(int(n))
		return v >= 0 && v < int(n)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	sim.NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := sim.NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := sim.NewRNG(3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %.4f", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := sim.NewRNG(9)
	// Mean failures before success with p = 1/(1+L) is L.
	const L = 3.0
	p := 1 / (1 + L)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	got := float64(sum) / n
	if math.Abs(got-L) > 0.15 {
		t.Fatalf("Geometric mean = %.3f, want ~%.1f", got, L)
	}
}

func TestGeometricEdges(t *testing.T) {
	r := sim.NewRNG(1)
	if got := r.Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
	if got := r.Geometric(2); got != 0 {
		t.Fatalf("Geometric(2) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, sz uint8) bool {
		n := int(sz%64) + 1
		dst := make([]int, n)
		sim.NewRNG(seed).Perm(dst)
		seen := make([]bool, n)
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := sim.NewRNG(5)
	counts := make([]int, 3)
	weights := []float64{0, 1, 3}
	for i := 0; i < 40000; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight bucket chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestWeightedChoiceZeroTotal(t *testing.T) {
	r := sim.NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[r.WeightedChoice([]float64{0, 0, 0})] = true
	}
	if len(seen) < 2 {
		t.Fatal("zero-total weights should choose uniformly")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := sim.NewRNG(11)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d/100 equal draws", same)
	}
}
