package cmp

import (
	"pseudocircuit/internal/topology"
)

// TableI holds the paper's CMP configuration parameters (Table I). Cache
// geometry (sizes, associativities) is recorded for documentation; the
// timing-relevant fields drive the model.
type TableI struct {
	Cores         int // out-of-order processors
	L2Banks       int // 512 KB each
	MSHRsPerCore  int // lockup-free L1: outstanding misses before the core throttles
	CacheBlockB   int
	L1ILatency    int // cycles
	L2BankLatency int // cycles
	MemoryLatency int // cycles
	L1IKB, L1DKB  int
	L1IWays       int
	L1DWays       int
	L2MB          int
	L2Ways        int
	ClockGHz      int
	AddrFlits     int // address-only packet size
	DataFlits     int // address + 64 B block packet size (128-bit links)
	// InterleaveBlocks is the S-NUCA interleaving granularity in blocks
	// (64 blocks = one 4 KB page): bursts through a page keep hitting the
	// same home bank, which is what gives application traffic its
	// pair-wise end-to-end locality (Fig. 1).
	InterleaveBlocks int
}

// PaperTableI returns the configuration of paper Table I: 32 OoO cores,
// 32 L2 banks (S-NUCA), 4 MSHRs per core, 64 B blocks, 16 MB shared L2,
// 1-flit address packets and 5-flit data packets on 128-bit links.
func PaperTableI() TableI {
	return TableI{
		Cores:         32,
		L2Banks:       32,
		MSHRsPerCore:  4,
		CacheBlockB:   64,
		L1ILatency:    1,
		L2BankLatency: 6,
		MemoryLatency: 200,
		L1IKB:         32, L1DKB: 32,
		L1IWays: 1, L1DWays: 4,
		L2MB: 16, L2Ways: 16,
		ClockGHz:         5,
		AddrFlits:        1,
		DataFlits:        5,
		InterleaveBlocks: 4,
	}
}

// Layout maps cores and L2 banks onto terminals of the paper's concentrated
// mesh (Fig. 7): each router concentrates 2 processing cores and 2 L2 cache
// banks. Terminal slots 0-1 of every router are cores, slots 2-3 are banks.
type Layout struct {
	topo topology.Topology
	cfg  TableI
}

// NewLayout validates that the topology can host the CMP and returns the
// node mapping.
func NewLayout(t topology.Topology, cfg TableI) Layout {
	if t.Nodes() != cfg.Cores+cfg.L2Banks {
		panic("cmp: topology terminal count must equal cores + banks")
	}
	if t.Concentration()%2 != 0 && t.Concentration() != 1 {
		panic("cmp: concentration must be even (or 1) to split cores and banks")
	}
	return Layout{topo: t, cfg: cfg}
}

// CoreNode returns the terminal node hosting core i.
func (l Layout) CoreNode(i int) int {
	c := l.topo.Concentration()
	half := c / 2
	if half == 0 { // concentration 1: even routers host cores, odd host banks
		return 2 * i
	}
	return (i/half)*c + i%half
}

// BankNode returns the terminal node hosting L2 bank j.
func (l Layout) BankNode(j int) int {
	c := l.topo.Concentration()
	half := c / 2
	if half == 0 {
		return 2*j + 1
	}
	return (j/half)*c + half + j%half
}

// HomeBank returns the S-NUCA home bank of a block address
// (address-interleaved shared L2, Table I; page-granularity interleaving).
func (l Layout) HomeBank(block uint64) int {
	g := uint64(l.cfg.InterleaveBlocks)
	if g == 0 {
		g = 1
	}
	return int(block / g % uint64(l.cfg.L2Banks))
}
