package cmp_test

import (
	"testing"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/vcalloc"
)

func buildCMP(t *testing.T, scheme core.Scheme, profName string) (*network.Network, *cmp.Workload) {
	t.Helper()
	topo := topology.NewCMesh(4, 4, 4)
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(scheme)
	cfg.Policy = vcalloc.Static
	n := network.New(cfg)
	prof, ok := cmp.ProfileByName(profName)
	if !ok {
		t.Fatalf("unknown profile %q", profName)
	}
	w := cmp.New(topo, cmp.PaperTableI(), prof, sim.NewRNG(7))
	return n, w
}

func TestCMPSmoke(t *testing.T) {
	n, w := buildCMP(t, core.PseudoSB, "fma3d")
	n.CheckInvariants = true
	n.Run(w, 2000)
	n.ResetStats()
	n.Run(w, 8000)
	t.Logf("fma3d pseudo+s+b: %v misses=%d", n.Stats, w.TotalMisses())
	if w.TotalMisses() == 0 {
		t.Fatal("no misses generated")
	}
	if n.Stats.PacketsDelivered == 0 {
		t.Fatal("no packets delivered")
	}
	if n.Stats.Reusability() == 0 {
		t.Error("no pseudo-circuit reuse on CMP traffic")
	}
}

func TestCMPDrains(t *testing.T) {
	n, w := buildCMP(t, core.Baseline, "blackscholes")
	n.CheckInvariants = true
	w.MaxMisses = 500
	if !n.Drain(w, 200000) {
		t.Fatalf("network failed to drain: inflight=%d queued=%d", n.InFlight(), n.QueuedPackets())
	}
	if !n.Quiescent() {
		t.Error("network not quiescent after drain")
	}
	if got := w.TotalMisses(); got != 500 {
		t.Errorf("TotalMisses = %d, want 500", got)
	}
}

func TestCMPLocalitySignature(t *testing.T) {
	// The paper's Fig. 1 point: crossbar-connection locality exceeds
	// end-to-end locality on application traffic.
	n, w := buildCMP(t, core.Baseline, "equake")
	n.Run(w, 2000)
	n.ResetStats()
	n.Run(w, 10000)
	e2e, xbar := n.Stats.E2ELocality(), n.Stats.XbarLocality()
	t.Logf("equake locality: e2e=%.3f xbar=%.3f", e2e, xbar)
	if xbar <= e2e {
		t.Errorf("crossbar locality %.3f not above end-to-end %.3f", xbar, e2e)
	}
}
