package cmp_test

import (
	"testing"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
)

// TestProtocolCompletes: with a miss cap, every read and write transaction
// finishes (data/ack received, MSHRs all freed, no dangling invalidations).
func TestProtocolCompletes(t *testing.T) {
	for _, prof := range []string{"fma3d", "specjbb", "radix"} {
		n, w := buildCMP(t, core.PseudoSB, prof)
		w.MaxMisses = 800
		if !n.Drain(w, 500000) {
			t.Fatalf("%s: protocol did not drain (inflight=%d)", prof, n.InFlight())
		}
		if !w.Done() {
			t.Fatalf("%s: workload not done after drain", prof)
		}
	}
}

// TestMSHRSelfThrottling: a core never exceeds its MSHR budget; with a tiny
// budget the cores stall measurably.
func TestMSHRSelfThrottling(t *testing.T) {
	topo := topology.NewCMesh(4, 4, 4)
	cfg := cmp.PaperTableI()
	cfg.MSHRsPerCore = 1
	prof, _ := cmp.ProfileByName("radix")
	n := network.New(network.DefaultConfig(topo))
	w := cmp.New(topo, cfg, prof, sim.NewRNG(3))
	n.Run(w, 5000)
	stalls := uint64(0)
	for _, s := range w.CoreStalls() {
		stalls += s
	}
	if stalls == 0 {
		t.Fatal("no stall cycles with 1 MSHR per core under radix load")
	}
}

// TestHotspotSkewShowsInBanks: specjbb concentrates requests on few banks;
// mgrid spreads them.
func TestHotspotSkewShowsInBanks(t *testing.T) {
	imbalance := func(prof string) float64 {
		n, w := buildCMP(t, core.Baseline, prof)
		n.Run(w, 8000)
		reqs := w.BankRequests()
		var max, total uint64
		for _, r := range reqs {
			total += r
			if r > max {
				max = r
			}
		}
		if total == 0 {
			t.Fatalf("%s generated no bank requests", prof)
		}
		return float64(max) * float64(len(reqs)) / float64(total)
	}
	jbb := imbalance("specjbb")
	grid := imbalance("mgrid")
	t.Logf("bank imbalance (max/avg): specjbb=%.2f mgrid=%.2f", jbb, grid)
	if jbb <= grid {
		t.Errorf("specjbb (%.2f) not more bank-skewed than mgrid (%.2f)", jbb, grid)
	}
	if jbb < 2 {
		t.Errorf("specjbb imbalance %.2f too mild for a hotspot workload", jbb)
	}
}

// TestLayoutMapping: cores and banks land on distinct terminals covering
// the whole chip (Fig. 7's 2-core + 2-bank concentration).
func TestLayoutMapping(t *testing.T) {
	topo := topology.NewCMesh(4, 4, 4)
	l := cmp.NewLayout(topo, cmp.PaperTableI())
	seen := map[int]string{}
	for i := 0; i < 32; i++ {
		n := l.CoreNode(i)
		if prev, ok := seen[n]; ok {
			t.Fatalf("core %d collides with %s at node %d", i, prev, n)
		}
		seen[n] = "core"
	}
	for j := 0; j < 32; j++ {
		n := l.BankNode(j)
		if prev, ok := seen[n]; ok {
			t.Fatalf("bank %d collides with %s at node %d", j, prev, n)
		}
		seen[n] = "bank"
	}
	if len(seen) != 64 {
		t.Fatalf("layout covers %d terminals, want 64", len(seen))
	}
	// Each router hosts exactly 2 cores and 2 banks.
	perRouter := map[int][2]int{}
	for n, kind := range seen {
		r := n / 4
		c := perRouter[r]
		if kind == "core" {
			c[0]++
		} else {
			c[1]++
		}
		perRouter[r] = c
	}
	for r, c := range perRouter {
		if c != [2]int{2, 2} {
			t.Fatalf("router %d hosts %v, want [2 cores, 2 banks]", r, c)
		}
	}
}

// TestHomeBankInterleaving: consecutive pages map to different banks and
// all banks are used.
func TestHomeBankInterleaving(t *testing.T) {
	l := cmp.NewLayout(topology.NewCMesh(4, 4, 4), cmp.PaperTableI())
	g := uint64(cmp.PaperTableI().InterleaveBlocks)
	seen := map[int]bool{}
	for page := uint64(0); page < 64; page++ {
		b := l.HomeBank(page * g)
		if b2 := l.HomeBank(page*g + g - 1); b2 != b {
			t.Fatalf("page %d spans banks %d and %d", page, b, b2)
		}
		seen[b] = true
	}
	if len(seen) != 32 {
		t.Fatalf("interleaving uses %d banks, want 32", len(seen))
	}
}

// TestProfilesDistinct: every benchmark profile exists, is distinctly
// parameterized, and produces traffic.
func TestProfilesDistinct(t *testing.T) {
	profs := cmp.Profiles()
	if len(profs) != 11 {
		t.Fatalf("%d profiles, want 11", len(profs))
	}
	names := map[string]bool{}
	for _, p := range profs {
		if names[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.IssueProb <= 0 || p.MissRate <= 0 || p.ReadFrac <= 0 || p.ReadFrac > 1 {
			t.Errorf("%s: implausible rates %+v", p.Name, p)
		}
		if p.Suite == "" {
			t.Errorf("%s: missing suite", p.Name)
		}
	}
	if _, ok := cmp.ProfileByName("nope"); ok {
		t.Error("unknown profile resolved")
	}
}

// TestDeterministicTraffic: the workload generates an identical packet
// sequence for a fixed seed.
func TestDeterministicTraffic(t *testing.T) {
	run := func() (uint64, uint64) {
		n, w := buildCMP(t, core.Baseline, "lu")
		n.Run(w, 3000)
		return w.TotalMisses(), n.Stats.PacketsInjected
	}
	m1, p1 := run()
	m2, p2 := run()
	if m1 != m2 || p1 != p2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", m1, p1, m2, p2)
	}
}

// TestSystemStatsReset: ResetSystemStats clears the system-impact
// accumulators so measurement windows are clean.
func TestSystemStatsReset(t *testing.T) {
	n, w := buildCMP(t, core.Baseline, "fma3d")
	n.Run(w, 3000)
	if w.AvgMissLatency() == 0 {
		t.Fatal("no miss latency recorded during warmup")
	}
	w.ResetSystemStats()
	if w.AvgMissLatency() != 0 || w.StallFraction() != 0 {
		t.Fatal("reset did not clear system stats")
	}
	n.Run(w, 3000)
	if w.AvgMissLatency() == 0 {
		t.Fatal("no miss latency recorded after reset")
	}
}

// TestStallFractionBounds: the stall fraction is a fraction.
func TestStallFractionBounds(t *testing.T) {
	n, w := buildCMP(t, core.Baseline, "streamcluster")
	n.Run(w, 5000)
	f := w.StallFraction()
	if f < 0 || f > 1 {
		t.Fatalf("stall fraction %v out of [0,1]", f)
	}
}
