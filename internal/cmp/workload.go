package cmp

import (
	"container/heap"
	"fmt"
	"math"

	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
)

// msgKind enumerates the coherence-protocol messages (paper §5: read
// transactions, write transactions, coherence management).
type msgKind uint8

const (
	msgReadReq   msgKind = iota // core -> home bank, 1 flit
	msgWriteReq                 // core -> home bank, 5 flits (write-through data)
	msgData                     // bank -> core, 5 flits
	msgWriteAck                 // bank -> core, 1 flit
	msgInv                      // bank -> sharer core, 1 flit
	msgInvAck                   // sharer core -> bank, 1 flit
	msgWriteBack                // core -> home bank, 5 flits (write-back protocol only, posted)
)

// Protocol selects the coherence write policy.
type Protocol int

const (
	// WriteThrough is the paper's simplification (§5): every write carries
	// its data to the L2 home bank (5 flits) and completes with a 1-flit
	// acknowledgement after invalidations.
	WriteThrough Protocol = iota
	// WriteBack is the conventional alternative: a write miss sends a
	// 1-flit ownership request, receives the block (5 flits), and the
	// dirty line is written back to the home bank later as a posted 5-flit
	// message. Provided to test the scheme's robustness to the protocol
	// choice; not part of the paper's evaluation.
	WriteBack
)

// msg is the protocol payload carried in flit.Packet.Meta.
type msg struct {
	kind  msgKind
	block uint64
	core  int // requester (or sharer for Inv/InvAck)
	// writer identifies the write transaction an Inv/InvAck belongs to, so
	// concurrent writes to one block stay disentangled.
	writer int
}

// txnKey identifies a pending write transaction at a bank.
type txnKey struct {
	block  uint64
	writer int
}

// writeTxn tracks an in-progress write at the home bank: the ack count the
// bank still awaits before acknowledging the writer, and how many writes by
// that writer have been folded into the transaction (each needs its own
// acknowledgement to release its MSHR).
type writeTxn struct {
	core    int
	block   uint64
	pending int
	writes  int
}

// event is a deferred bank action (response becoming ready after the bank
// and, on an L2 miss, memory latency).
type event struct {
	due sim.Cycle
	p   *flit.Packet
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].due < h[j].due }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// core models one out-of-order processor's memory-reference stream with a
// lockup-free L1 (MSHRsPerCore outstanding misses; the core self-throttles
// when they are exhausted, paper §5).
type core struct {
	id          int
	node        int
	rng         *sim.RNG
	outstanding int
	burst       int
	lastBlock   uint64
	hot         bool

	// Phase state: the hot pages this core works on until phaseEnd.
	focus    []uint64
	phaseEnd sim.Cycle

	// inflight tracks issue cycles of outstanding misses (bounded by the
	// MSHR count) for miss-latency accounting.
	inflight []sim.Cycle

	// Counters for tests and reports.
	misses      uint64
	stallCycles uint64
}

// bank models one S-NUCA L2 bank with its slice of the directory.
type bank struct {
	id     int
	node   int
	rng    *sim.RNG
	dir    map[uint64]uint32 // block -> sharer bitmask (32 cores)
	txns   map[txnKey]*writeTxn
	freeAt sim.Cycle // bank occupied until (serialization -> hotspot contention)

	requests uint64
}

// Workload is the closed-loop CMP traffic generator; it implements
// network.Workload.
type Workload struct {
	cfg     TableI
	prof    Profile
	layout  Layout
	cores   []*core
	banks   []*bank
	byNode  map[int]any // node -> *core or *bank
	pending eventHeap

	// Protocol selects write-through (paper default) or write-back
	// coherence.
	Protocol Protocol

	// MaxMisses optionally caps total L1 misses so Done-based draining
	// terminates (0 = unbounded).
	MaxMisses   uint64
	totalMisses uint64
	// writebacks counts posted write-back packets (diagnostics).
	writebacks uint64

	// System-impact accounting (paper §8 future work: overall system
	// performance, not just network latency).
	missLatencySum uint64
	missCompleted  uint64
	cycles         uint64

	// failures counts delivery failures the reliability layer reported
	// (abandoned packets, unwound in DeliveryFailed). Zero without
	// Config.Reliable.
	failures uint64
}

// New builds the CMP workload for profile prof on topology t using the
// Table I configuration.
func New(t topology.Topology, cfg TableI, prof Profile, rng *sim.RNG) *Workload {
	layout := NewLayout(t, cfg)
	w := &Workload{
		cfg:    cfg,
		prof:   prof,
		layout: layout,
		byNode: make(map[int]any),
	}
	for i := 0; i < cfg.Cores; i++ {
		r := rng.Split()
		c := &core{id: i, node: layout.CoreNode(i), rng: r, hot: r.Bernoulli(prof.HotCoreFrac)}
		w.cores = append(w.cores, c)
		w.byNode[c.node] = c
	}
	for j := 0; j < cfg.L2Banks; j++ {
		b := &bank{
			id: j, node: layout.BankNode(j), rng: rng.Split(),
			dir:  make(map[uint64]uint32),
			txns: make(map[txnKey]*writeTxn),
		}
		w.banks = append(w.banks, b)
		w.byNode[b.node] = b
	}
	return w
}

// Tick implements network.Workload: release due bank responses and advance
// every core's reference stream.
func (w *Workload) Tick(now sim.Cycle, inj network.Injector) {
	w.cycles++
	for len(w.pending) > 0 && w.pending[0].due <= now {
		e := heap.Pop(&w.pending).(event)
		inj.Inject(e.p)
	}
	for _, c := range w.cores {
		w.tickCore(now, c, inj)
	}
}

func (w *Workload) tickCore(now sim.Cycle, c *core, inj network.Injector) {
	if c.outstanding >= w.cfg.MSHRsPerCore {
		c.stallCycles++ // self-throttled: all MSHRs busy
		return
	}
	if w.MaxMisses > 0 && w.totalMisses >= w.MaxMisses {
		return
	}
	p := w.prof
	if c.burst > 0 {
		// Streaming burst: stride onward from the previous miss (the L1
		// filters dense sequential hits, so the observed miss stream skips
		// ahead irregularly).
		c.burst--
		w.issueMiss(now, c, c.lastBlock+1+uint64(c.rng.Intn(4)), inj)
		return
	}
	issue := p.IssueProb
	if c.hot {
		issue = math.Min(1, issue*p.HotCoreBoost)
	}
	if !c.rng.Bernoulli(issue) || !c.rng.Bernoulli(p.MissRate) {
		return
	}
	block := w.chooseBlock(now, c)
	if p.BurstLen > 0.5 {
		c.burst = c.rng.Geometric(1 / (1 + p.BurstLen))
	}
	w.issueMiss(now, c, block, inj)
}

// chooseBlock picks the miss address: repeat the previous block with the
// profile's temporal-locality probability; otherwise draw from the core's
// current phase's hot pages (FocusProb of the time) or the full working
// sets.
func (w *Workload) chooseBlock(now sim.Cycle, c *core) uint64 {
	p := w.prof
	if c.lastBlock != 0 && c.rng.Bernoulli(p.Temporal) {
		return c.lastBlock
	}
	if p.FocusPages > 0 {
		if now >= c.phaseEnd || len(c.focus) == 0 {
			w.newPhase(now, c)
		}
		if c.rng.Bernoulli(p.FocusProb) {
			page := c.focus[c.rng.Intn(len(c.focus))]
			return page*uint64(w.cfg.InterleaveBlocks) + uint64(c.rng.Intn(w.cfg.InterleaveBlocks))
		}
	}
	return w.drawWorkingSet(c)
}

// newPhase re-draws the core's hot page set from the working sets.
func (w *Workload) newPhase(now sim.Cycle, c *core) {
	p := w.prof
	c.focus = c.focus[:0]
	for i := 0; i < p.FocusPages; i++ {
		c.focus = append(c.focus, w.drawWorkingSet(c)/uint64(w.cfg.InterleaveBlocks))
	}
	c.phaseEnd = now + sim.Cycle(p.PhaseLen)
}

// drawWorkingSet samples the shared (possibly skewed) or private working
// set.
func (w *Workload) drawWorkingSet(c *core) uint64 {
	p := w.prof
	if c.rng.Bernoulli(p.SharedFrac) {
		u := c.rng.Float64()
		if p.Skew > 0 {
			u = math.Pow(u, 1+p.Skew*10)
		}
		idx := int(u * float64(p.SharedBlocks))
		if idx >= p.SharedBlocks {
			idx = p.SharedBlocks - 1
		}
		return sharedBase + uint64(idx)
	}
	return privateBase(c.id) + uint64(c.rng.Intn(p.PrivateBlocks))
}

// Address-space layout: shared blocks first, then per-core private regions.
const sharedBase uint64 = 1 // block 0 reserved so lastBlock==0 means "none"

func privateBase(coreID int) uint64 {
	return 1 << 20 * (uint64(coreID) + 1)
}

func (w *Workload) issueMiss(now sim.Cycle, c *core, block uint64, inj network.Injector) {
	c.lastBlock = block
	c.outstanding++
	c.inflight = append(c.inflight, now)
	c.misses++
	w.totalMisses++
	isRead := c.rng.Bernoulli(w.prof.ReadFrac)
	bank := w.banks[w.layout.HomeBank(block)]
	kind, size, class := msgReadReq, w.cfg.AddrFlits, flit.ClassRequest
	if !isRead {
		kind, class = msgWriteReq, flit.ClassRequest
		if w.Protocol == WriteThrough {
			size = w.cfg.DataFlits // the write carries its data to the bank
		}
	}
	pk := network.AcquirePacket(inj)
	pk.Src, pk.Dst, pk.Size, pk.Class = c.node, bank.node, size, class
	pk.Meta = msg{kind: kind, block: block, core: c.id}
	inj.Inject(pk)
}

// Deliver implements network.Workload: protocol reactions at banks and
// cores.
func (w *Workload) Deliver(now sim.Cycle, p *flit.Packet) {
	m, ok := p.Meta.(msg)
	if !ok {
		panic("cmp: foreign packet delivered to CMP workload")
	}
	switch dst := w.byNode[p.Dst].(type) {
	case *bank:
		w.bankReceive(now, dst, m)
	case *core:
		w.coreReceive(now, dst, m)
	default:
		panic(fmt.Sprintf("cmp: delivery to unmapped node %d", p.Dst))
	}
}

// bankReceive handles requests and invalidation acks at an L2 bank.
func (w *Workload) bankReceive(now sim.Cycle, b *bank, m msg) {
	switch m.kind {
	case msgReadReq:
		b.requests++
		ready := w.bankService(now, b, w.cfg.DataFlits)
		b.dir[m.block] |= 1 << uint(m.core)
		w.respondAt(ready, b, m.core, msgData, w.cfg.DataFlits, m.block, flit.ClassResponse)
	case msgWriteBack:
		// Posted dirty-line write-back (write-back protocol): the bank
		// absorbs the data; no reply, no directory change (the writer
		// keeps ownership until invalidated).
		b.requests++
		w.bankService(now, b, 2)
	case msgWriteReq:
		b.requests++
		occupancy := 2
		if w.Protocol == WriteBack {
			occupancy = w.cfg.DataFlits // the exclusive fill serializes the reply port
		}
		ready := w.bankService(now, b, occupancy)
		sharers := b.dir[m.block] &^ (1 << uint(m.core))
		b.dir[m.block] = 1 << uint(m.core) // write-invalidate: writer becomes sole sharer
		n := 0
		for s := 0; s < w.cfg.Cores; s++ {
			if sharers&(1<<uint(s)) != 0 {
				n++
				w.scheduleCoherence(ready, b.node, s, msgInv, m.block, m.core)
			}
		}
		if n == 0 {
			w.respondWrite(ready, b, m.core, m.block)
			return
		}
		key := txnKey{block: m.block, writer: m.core}
		if prev := b.txns[key]; prev != nil {
			// The same writer re-wrote the block before its first write
			// finished (possible with temporal locality and 4 MSHRs); fold
			// the new invalidations into the outstanding transaction and
			// remember that one more acknowledgement is owed.
			prev.pending += n
			prev.writes++
			return
		}
		b.txns[key] = &writeTxn{core: m.core, block: m.block, pending: n, writes: 1}
	case msgInvAck:
		key := txnKey{block: m.block, writer: m.writer}
		t := b.txns[key]
		if t == nil {
			panic("cmp: stray invalidation ack")
		}
		t.pending--
		if t.pending == 0 {
			delete(b.txns, key)
			for i := 0; i < t.writes; i++ {
				w.respondWrite(now+1, b, t.core, t.block)
			}
		}
	default:
		panic(fmt.Sprintf("cmp: bank %d received unexpected %d", b.id, m.kind))
	}
}

// bankService models bank occupancy: the bank is busy for as many cycles as
// its response needs on the injection port (hot banks queue at their service
// rate, not faster than they can talk), service takes L2BankLatency, and an
// L2 miss adds MemoryLatency.
func (w *Workload) bankService(now sim.Cycle, b *bank, occupancy int) sim.Cycle {
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	b.freeAt = start + sim.Cycle(occupancy)
	ready := start + sim.Cycle(w.cfg.L2BankLatency)
	if b.rng.Bernoulli(w.prof.L2MissRate) {
		ready += sim.Cycle(w.cfg.MemoryLatency)
	}
	return ready
}

// respondWrite completes a write: a 1-flit acknowledgement under
// write-through, or the 5-flit exclusive block fill under write-back.
func (w *Workload) respondWrite(due sim.Cycle, b *bank, coreID int, block uint64) {
	if w.Protocol == WriteBack {
		w.respondAt(due, b, coreID, msgData, w.cfg.DataFlits, block, flit.ClassResponse)
		return
	}
	w.respondAt(due, b, coreID, msgWriteAck, w.cfg.AddrFlits, block, flit.ClassResponse)
}

// respondAt schedules a bank→core packet for injection at cycle due.
func (w *Workload) respondAt(due sim.Cycle, b *bank, coreID int, kind msgKind, size int, block uint64, class flit.Class) {
	heap.Push(&w.pending, event{due: due, p: &flit.Packet{
		Src: b.node, Dst: w.cores[coreID].node, Size: size, Class: class,
		Meta: msg{kind: kind, block: block, core: coreID},
	}})
}

// scheduleCoherence schedules a coherence-management packet (invalidation)
// from a bank to a sharer core, tagged with the owning write transaction.
func (w *Workload) scheduleCoherence(due sim.Cycle, from, sharer int, kind msgKind, block uint64, writer int) {
	heap.Push(&w.pending, event{due: due, p: &flit.Packet{
		Src: from, Dst: w.cores[sharer].node, Size: w.cfg.AddrFlits, Class: flit.ClassCoherence,
		Meta: msg{kind: kind, block: block, core: sharer, writer: writer},
	}})
}

// coreReceive completes misses and answers invalidations at a core.
func (w *Workload) coreReceive(now sim.Cycle, c *core, m msg) {
	switch m.kind {
	case msgData, msgWriteAck:
		c.outstanding--
		if c.outstanding < 0 {
			panic(fmt.Sprintf("cmp: core %d MSHR underflow", c.id))
		}
		if w.Protocol == WriteBack && m.kind == msgData && c.rng.Bernoulli(0.4) {
			// A fraction of filled lines are dirtied and written back after
			// residing in the L1 for a while (posted; holds no MSHR).
			delay := sim.Cycle(50 + c.rng.Intn(300))
			w.writebacks++
			heap.Push(&w.pending, event{due: now + delay, p: &flit.Packet{
				Src: c.node, Dst: w.banks[w.layout.HomeBank(m.block)].node,
				Size: w.cfg.DataFlits, Class: flit.ClassCoherence,
				Meta: msg{kind: msgWriteBack, block: m.block, core: c.id},
			}})
		}
		// Misses complete roughly in issue order (same-path responses do
		// not overtake); FIFO matching keeps the latency estimate honest
		// within a couple of cycles.
		issued := c.inflight[0]
		c.inflight = c.inflight[:copy(c.inflight, c.inflight[1:])]
		w.missLatencySum += uint64(now - issued)
		w.missCompleted++
	case msgInv:
		// Drop the line and acknowledge to the home bank, echoing the write
		// transaction's identity.
		b := w.banks[w.layout.HomeBank(m.block)]
		heap.Push(&w.pending, event{due: now + 1, p: &flit.Packet{
			Src: c.node, Dst: b.node, Size: w.cfg.AddrFlits, Class: flit.ClassCoherence,
			Meta: msg{kind: msgInvAck, block: m.block, core: c.id, writer: m.writer},
		}})
	default:
		panic(fmt.Sprintf("cmp: core %d received unexpected %d", c.id, m.kind))
	}
}

// DeliveryFailed implements network.FailureObserver: the reliability layer
// exhausted a packet's retry budget, so the protocol message in meta will
// never arrive. The transaction waiting on it is unwound so the workload
// drains instead of wedging — a failed request or response releases the
// requester's MSHR (without a miss-latency sample: the miss did not
// complete), and a failed invalidation leg is treated as acknowledged so the
// bank's write transaction can finish.
func (w *Workload) DeliveryFailed(now sim.Cycle, src, dst int, class flit.Class, meta any) {
	m, ok := meta.(msg)
	if !ok {
		panic("cmp: foreign packet reported failed to CMP workload")
	}
	w.failures++
	switch m.kind {
	case msgReadReq, msgWriteReq, msgData, msgWriteAck:
		// The miss can no longer complete: either the request never reached
		// the bank or the response never reached the core. Release the
		// requester's MSHR either way.
		c := w.cores[m.core]
		c.outstanding--
		if c.outstanding < 0 {
			panic(fmt.Sprintf("cmp: core %d MSHR underflow on delivery failure", c.id))
		}
		c.inflight = c.inflight[:copy(c.inflight, c.inflight[1:])]
	case msgInv, msgInvAck:
		// One invalidation leg is gone (the sharer will never see the Inv, or
		// the bank will never see the Ack) — count it as acknowledged. Unlike
		// bankReceive, tolerate a missing transaction: a lost Inv whose write
		// already completed through the other sharers cannot happen (each
		// sharer is decremented exactly once), but a failed request that never
		// created the transaction leaves nothing to unwind.
		b := w.banks[w.layout.HomeBank(m.block)]
		key := txnKey{block: m.block, writer: m.writer}
		if t := b.txns[key]; t != nil {
			t.pending--
			if t.pending == 0 {
				delete(b.txns, key)
				for i := 0; i < t.writes; i++ {
					w.respondWrite(now+1, b, t.core, t.block)
				}
			}
		}
	case msgWriteBack:
		// Posted: nothing waits on it.
	default:
		panic(fmt.Sprintf("cmp: delivery failure for unexpected %d", m.kind))
	}
}

// DeliveryFailures returns the number of abandoned packets the reliability
// layer reported (diagnostics; zero when reliable delivery is off).
func (w *Workload) DeliveryFailures() uint64 { return w.failures }

// Done implements network.Workload: true when a miss cap is set, reached,
// and all transactions have completed.
func (w *Workload) Done() bool {
	if w.MaxMisses == 0 || w.totalMisses < w.MaxMisses {
		return false
	}
	if len(w.pending) > 0 {
		return false
	}
	for _, c := range w.cores {
		if c.outstanding > 0 {
			return false
		}
	}
	for _, b := range w.banks {
		if len(b.txns) > 0 {
			return false
		}
	}
	return true
}

// TotalMisses returns the number of L1 misses issued so far.
func (w *Workload) TotalMisses() uint64 { return w.totalMisses }

// Writebacks returns posted write-back packets scheduled so far
// (write-back protocol only).
func (w *Workload) Writebacks() uint64 { return w.writebacks }

// OutstandingMisses returns MSHR entries currently awaiting completion
// across all cores (diagnostics).
func (w *Workload) OutstandingMisses() int {
	n := 0
	for _, c := range w.cores {
		n += c.outstanding
	}
	return n
}

// PendingEvents returns scheduled-but-uninjected bank/core events
// (diagnostics).
func (w *Workload) PendingEvents() int { return len(w.pending) }

// PendingWriteTxns returns write transactions awaiting invalidation acks
// (diagnostics).
func (w *Workload) PendingWriteTxns() int {
	n := 0
	for _, b := range w.banks {
		n += len(b.txns)
	}
	return n
}

// AvgMissLatency returns the mean cycles from miss issue to data/ack
// arrival — the system-level quantity the network accelerates (paper §8:
// "overall system performance such as IPC"; miss latency is its dominant
// network-dependent term under the self-throttling MSHR model).
func (w *Workload) AvgMissLatency() float64 {
	if w.missCompleted == 0 {
		return 0
	}
	return float64(w.missLatencySum) / float64(w.missCompleted)
}

// StallFraction returns the fraction of core-cycles spent blocked with all
// MSHRs outstanding.
func (w *Workload) StallFraction() float64 {
	if w.cycles == 0 {
		return 0
	}
	var stalls uint64
	for _, c := range w.cores {
		stalls += c.stallCycles
	}
	return float64(stalls) / float64(w.cycles*uint64(len(w.cores)))
}

// ResetSystemStats clears the system-impact accumulators (miss latency and
// stall counts) at the start of a measurement window.
func (w *Workload) ResetSystemStats() {
	w.missLatencySum, w.missCompleted, w.cycles = 0, 0, 0
	for _, c := range w.cores {
		c.stallCycles = 0
	}
}

// BankRequests returns per-bank request counts (hotspot diagnostics).
func (w *Workload) BankRequests() []uint64 {
	out := make([]uint64, len(w.banks))
	for i, b := range w.banks {
		out[i] = b.requests
	}
	return out
}

// CoreStalls returns per-core MSHR-full stall cycles (self-throttling
// diagnostics).
func (w *Workload) CoreStalls() []uint64 {
	out := make([]uint64, len(w.cores))
	for i, c := range w.cores {
		out[i] = c.stallCycles
	}
	return out
}
