package cmp_test

import (
	"testing"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
)

// countingInjector wraps a network to count packets by class while still
// running the simulation.
type classCounter struct {
	inner network.Workload
	count map[flit.Class]uint64
}

func (c *classCounter) Tick(now sim.Cycle, inj network.Injector) {
	c.inner.Tick(now, countInjector{c, inj})
}
func (c *classCounter) Deliver(now sim.Cycle, p *flit.Packet) { c.inner.Deliver(now, p) }
func (c *classCounter) Done() bool                            { return c.inner.Done() }

type countInjector struct {
	c   *classCounter
	inj network.Injector
}

func (ci countInjector) Inject(p *flit.Packet) {
	if ci.c.count == nil {
		ci.c.count = map[flit.Class]uint64{}
	}
	ci.c.count[p.Class]++
	ci.inj.Inject(p)
}

// TestCoherenceMessagesFlow: a write-heavy, high-sharing workload generates
// the paper's three transaction classes, including coherence management
// (invalidations + acks), and their counts are consistent: coherence
// messages come in (inv, ack) pairs.
func TestCoherenceMessagesFlow(t *testing.T) {
	topo := topology.NewCMesh(4, 4, 4)
	cfg := network.DefaultConfig(topo)
	cfg.Opts = core.DefaultOptions(core.Baseline)
	n := network.New(cfg)

	prof, _ := cmp.ProfileByName("radix") // write-heavy (35% writes), shared-heavy
	// Bias further toward shared writes so invalidations are common.
	prof.SharedFrac = 0.9
	prof.ReadFrac = 0.5
	prof.SharedBlocks = 64 // small shared set -> heavy sharing
	prof.Skew = 0

	w := cmp.New(topo, cmp.PaperTableI(), prof, sim.NewRNG(11))
	w.MaxMisses = 4000
	cc := &classCounter{inner: w}
	if !n.Drain(cc, 300000) {
		t.Fatalf("protocol did not drain: inflight=%d", n.InFlight())
	}

	if cc.count[flit.ClassRequest] == 0 || cc.count[flit.ClassResponse] == 0 {
		t.Fatalf("missing request/response traffic: %v", cc.count)
	}
	coh := cc.count[flit.ClassCoherence]
	if coh == 0 {
		t.Fatal("no coherence-management messages despite heavy write sharing")
	}
	if coh%2 != 0 {
		t.Fatalf("coherence messages odd (%d): inv/ack pairing broken", coh)
	}
	// Every request eventually gets exactly one response.
	if cc.count[flit.ClassResponse] != cc.count[flit.ClassRequest] {
		t.Fatalf("requests %d != responses %d",
			cc.count[flit.ClassRequest], cc.count[flit.ClassResponse])
	}
}

// TestWriteInvalidateSemantics: after a write, re-writes by the same core
// to an unshared block trigger no invalidations (the writer is the sole
// sharer), exercised via the coherence counter staying flat.
func TestWriteInvalidateSemantics(t *testing.T) {
	topo := topology.NewCMesh(4, 4, 4)
	n := network.New(network.DefaultConfig(topo))
	prof, _ := cmp.ProfileByName("blackscholes")
	prof.SharedFrac = 0 // private-only: no cross-core sharing at all
	prof.ReadFrac = 0.3
	w := cmp.New(topo, cmp.PaperTableI(), prof, sim.NewRNG(13))
	cc := &classCounter{inner: w}
	n.Run(cc, 10000)
	if cc.count[flit.ClassCoherence] != 0 {
		t.Fatalf("%d coherence messages for private-only traffic", cc.count[flit.ClassCoherence])
	}
	if cc.count[flit.ClassRequest] == 0 {
		t.Fatal("no traffic generated")
	}
}

// TestMissLatencyAccounting: average miss latency is at least the bank
// round trip and responds to the L2 miss rate.
func TestMissLatencyAccounting(t *testing.T) {
	run := func(l2Miss float64) float64 {
		topo := topology.NewCMesh(4, 4, 4)
		n := network.New(network.DefaultConfig(topo))
		prof, _ := cmp.ProfileByName("fma3d")
		prof.L2MissRate = l2Miss
		w := cmp.New(topo, cmp.PaperTableI(), prof, sim.NewRNG(17))
		n.Run(w, 12000)
		return w.AvgMissLatency()
	}
	fast := run(0)
	slow := run(0.5)
	t.Logf("miss latency: l2miss=0 -> %.1f, l2miss=0.5 -> %.1f", fast, slow)
	if fast < 15 {
		t.Errorf("miss latency %.1f below bank+network floor", fast)
	}
	// Half the misses pay +200 cycles of memory latency.
	if slow < fast+60 {
		t.Errorf("memory latency not reflected: %.1f vs %.1f", slow, fast)
	}
}

// TestWriteBackProtocol: the write-back variant completes all transactions,
// generates posted write-backs, and shifts traffic from request to response
// flits versus write-through.
func TestWriteBackProtocol(t *testing.T) {
	run := func(p cmp.Protocol) (*classCounter, *cmp.Workload, bool) {
		topo := topology.NewCMesh(4, 4, 4)
		n := network.New(network.DefaultConfig(topo))
		n.CheckInvariants = true
		prof, _ := cmp.ProfileByName("radix")
		prof.ReadFrac = 0.5
		w := cmp.New(topo, cmp.PaperTableI(), prof, sim.NewRNG(23))
		w.Protocol = p
		w.MaxMisses = 1500
		cc := &classCounter{inner: w}
		ok := n.Drain(cc, 500000)
		return cc, w, ok
	}
	wtCC, wtW, ok := run(cmp.WriteThrough)
	if !ok {
		t.Fatal("write-through did not drain")
	}
	if wtW.Writebacks() != 0 {
		t.Fatal("write-through produced write-backs")
	}
	wbCC, wbW, ok := run(cmp.WriteBack)
	if !ok {
		t.Fatal("write-back did not drain")
	}
	if wbW.Writebacks() == 0 {
		t.Fatal("write-back produced no write-backs")
	}
	// Same misses, different shapes: write-back requests are all 1-flit,
	// write-through write requests are 5-flit.
	if wbCC.count[flit.ClassRequest] != wtCC.count[flit.ClassRequest] {
		t.Fatalf("request counts differ: wb=%d wt=%d",
			wbCC.count[flit.ClassRequest], wtCC.count[flit.ClassRequest])
	}
	if wbCC.count[flit.ClassCoherence] <= wtCC.count[flit.ClassCoherence] {
		t.Fatal("write-back coherence traffic (incl. posted write-backs) should exceed write-through")
	}
}

// TestSchemeRobustToProtocol: the pseudo-circuit scheme wins under both
// protocols (the paper's simplification is not load-bearing).
func TestSchemeRobustToProtocol(t *testing.T) {
	for _, p := range []cmp.Protocol{cmp.WriteThrough, cmp.WriteBack} {
		lat := func(s core.Scheme) float64 {
			topo := topology.NewCMesh(4, 4, 4)
			cfg := network.DefaultConfig(topo)
			cfg.Opts = core.DefaultOptions(s)
			n := network.New(cfg)
			prof, _ := cmp.ProfileByName("lu")
			w := cmp.New(topo, cmp.PaperTableI(), prof, sim.NewRNG(29))
			w.Protocol = p
			n.Run(w, 1000)
			n.ResetStats()
			n.Run(w, 8000)
			return n.Stats.AvgNetLatency()
		}
		base, psb := lat(core.Baseline), lat(core.PseudoSB)
		t.Logf("protocol %d: baseline=%.2f psb=%.2f", p, base, psb)
		if psb >= base {
			t.Errorf("protocol %d: Pseudo+S+B %.2f not below baseline %.2f", p, psb, base)
		}
	}
}
