package sweepapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"pseudocircuit/internal/service"
	"pseudocircuit/noc"
)

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func newSvc(t *testing.T, cfg service.Config) *service.Manager {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Chunk == 0 {
		cfg.Chunk = 100
	}
	m := service.New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

func waitSweep(t *testing.T, sw *Manager, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := sw.Wait(ctx, id)
	if err != nil {
		t.Fatalf("sweep %s did not finish: %v (state %s %d/%d)", id, err, st.State, st.Completed, st.Points)
	}
	return st
}

const sweepBody = `{
  "template": {"topology":"mesh4x4","scheme":"baseline","va":"static",
               "warmup":50,"measure":200,
               "workload":{"pattern":"uniform","rate":0.1}},
  "axes": {"scheme": ["baseline","pseudo"], "seed": [1,2,3]}}`

// TestParseExpansionOrder: axes sorted by name, last axis fastest, every
// point canonicalized onto the exact key a direct submission would use.
func TestParseExpansionOrder(t *testing.T) {
	plan, err := Parse([]byte(sweepBody), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(plan.Points))
	}
	i := 0
	for _, scheme := range []string{"baseline", "pseudo"} {
		for _, seed := range []uint64{1, 2, 3} {
			p := plan.Points[i]
			if p.Req.Scheme != scheme || p.Req.Seed != seed {
				t.Fatalf("point %d = %s/%d, want %s/%d", i, p.Req.Scheme, p.Req.Seed, scheme, seed)
			}
			_, key, _, err := service.Canonicalize(p.Req)
			if err != nil {
				t.Fatal(err)
			}
			if key != p.Key {
				t.Fatalf("point %d key %s does not round-trip canonicalization (%s)", i, p.Key, key)
			}
			i++
		}
	}
	// Same request parses to the same plan: expansion is deterministic.
	plan2, err := Parse([]byte(sweepBody), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Points {
		if plan.Points[i].Key != plan2.Points[i].Key {
			t.Fatalf("point %d key differs across parses", i)
		}
	}
}

// TestParseRejects: every malformed grid is an explicit ErrBadRequest.
func TestParseRejects(t *testing.T) {
	tmpl := `{"topology":"mesh4x4","scheme":"baseline","va":"static","warmup":10,"measure":50,"workload":{"pattern":"uniform","rate":0.1}}`
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `{"template"`},
		{"trailing data", `{"template":` + tmpl + `} {"x":1}`},
		{"unknown top-level field", `{"template":` + tmpl + `,"points":5}`},
		{"missing template", `{"axes":{"seed":[1]}}`},
		{"null template", `{"template":null,"axes":{"seed":[1]}}`},
		{"template unknown field", `{"template":{"topology":"mesh4x4","bogus":1}}`},
		{"axes not object", `{"template":` + tmpl + `,"axes":[1,2]}`},
		{"unknown axis", `{"template":` + tmpl + `,"axes":{"speed":[1]}}`},
		{"duplicate axis", `{"template":` + tmpl + `,"axes":{"seed":[1],"seed":[2]}}`},
		{"empty axis", `{"template":` + tmpl + `,"axes":{"seed":[]}}`},
		{"wrong type string", `{"template":` + tmpl + `,"axes":{"seed":["one"]}}`},
		{"wrong type number", `{"template":` + tmpl + `,"axes":{"scheme":[1]}}`},
		{"nested value", `{"template":` + tmpl + `,"axes":{"seed":[[1]]}}`},
		{"null value", `{"template":` + tmpl + `,"axes":{"seed":[null]}}`},
		{"negative seed", `{"template":` + tmpl + `,"axes":{"seed":[-1]}}`},
		{"float seed", `{"template":` + tmpl + `,"axes":{"seed":[1.5]}}`},
		{"bad scheme value", `{"template":` + tmpl + `,"axes":{"scheme":["warp"]}}`},
		{"bad rate value", `{"template":` + tmpl + `,"axes":{"rate":[2.5]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.body), 0)
			if !errors.Is(err, service.ErrBadRequest) {
				t.Fatalf("err = %v, want ErrBadRequest", err)
			}
		})
	}
}

// TestParseBoundsExpansion: a grid over the limit is rejected outright, and
// the running-product guard cannot be overflowed into acceptance.
func TestParseBoundsExpansion(t *testing.T) {
	tmpl := `{"topology":"mesh4x4","scheme":"baseline","va":"static","warmup":10,"measure":50,"workload":{"pattern":"uniform","rate":0.1}}`
	seeds := ""
	for i := 0; i < 100; i++ {
		if i > 0 {
			seeds += ","
		}
		seeds += fmt.Sprint(i)
	}
	body := `{"template":` + tmpl + `,"axes":{"seed":[` + seeds + `],"warmup":[` + seeds + `]}}`
	if _, err := Parse([]byte(body), 4096); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("10000-point grid: err = %v, want ErrBadRequest", err)
	}
	if plan, err := Parse([]byte(body), 10000); err != nil || len(plan.Points) != 10000 {
		t.Fatalf("10000-point grid under a 10000 limit: %v", err)
	}
	// Template-only sweeps are one point.
	plan, err := Parse([]byte(`{"template":`+tmpl+`}`), 0)
	if err != nil || len(plan.Points) != 1 {
		t.Fatalf("template-only sweep: plan %v err %v", plan, err)
	}
}

// TestSweepRunsAllPoints: every grid point completes with a result
// bit-identical to submitting the same canonical spec directly.
func TestSweepRunsAllPoints(t *testing.T) {
	svc := newSvc(t, service.Config{})
	sw := New(svc, Config{Inflight: 3})
	st, err := sw.Submit([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	st = waitSweep(t, sw, st.ID)
	if st.State != "done" || st.Done != 6 || st.Failed != 0 || st.Canceled != 0 {
		t.Fatalf("sweep finished %+v", st)
	}

	pts, cursor, _, ok := sw.PointsSince(st.ID, 0)
	if !ok || cursor != 6 || len(pts) != 6 {
		t.Fatalf("PointsSince: ok %v cursor %d len %d", ok, cursor, len(pts))
	}
	for _, p := range pts {
		if p.State != "done" || p.Result == nil {
			t.Fatalf("point %d: %+v", p.Index, p)
		}
		j, err := svc.Submit(p.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !j.CacheHit || j.Key != p.Key {
			t.Fatalf("point %d: direct submission missed the sweep's cache entry (hit %v key %s vs %s)",
				p.Index, j.CacheHit, j.Key, p.Key)
		}
		if got, want := mustJSON(t, *j.Result), mustJSON(t, *p.Result); got != want {
			t.Fatalf("point %d result diverged from direct submission", p.Index)
		}
	}
	// Incremental cursor: nothing new after the end.
	pts, cursor, fin, _ := sw.PointsSince(st.ID, cursor)
	if len(pts) != 0 || cursor != 6 || !fin.Terminal() {
		t.Fatalf("tail read: %d points, cursor %d, state %s", len(pts), cursor, fin.State)
	}
}

// TestSweepStreamIncremental: the PointsSince cursor observes points in
// publication order with no duplicates and no gaps while the sweep runs.
func TestSweepStreamIncremental(t *testing.T) {
	svc := newSvc(t, service.Config{Workers: 2})
	sw := New(svc, Config{Inflight: 2})
	st, err := sw.Submit([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	cursor := 0
	deadline := time.Now().Add(60 * time.Second)
	for {
		pts, next, s, ok := sw.PointsSince(st.ID, cursor)
		if !ok {
			t.Fatal("sweep vanished mid-stream")
		}
		for _, p := range pts {
			if seen[p.Index] {
				t.Fatalf("point %d streamed twice", p.Index)
			}
			seen[p.Index] = true
		}
		cursor = next
		if s.Terminal() && cursor == s.Points {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream stalled at %d/%d", cursor, s.Points)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(seen) != 6 {
		t.Fatalf("streamed %d points, want 6", len(seen))
	}
}

// TestSweepCancel: cancelling a running sweep stops feeding, cancels
// in-flight points, and lands the sweep in the canceled state.
func TestSweepCancel(t *testing.T) {
	svc := newSvc(t, service.Config{Workers: 1, Chunk: 50})
	sw := New(svc, Config{Inflight: 2})
	body := `{
	  "template": {"topology":"mesh8x8","scheme":"pseudo","va":"static",
	               "warmup":100,"measure":20000,
	               "workload":{"pattern":"uniform","rate":0.05}},
	  "axes": {"seed": [1,2,3,4,5,6,7,8]}}`
	st, err := sw.Submit([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	st = waitSweep(t, sw, st.ID)
	if st.State != "canceled" {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if st.Canceled == 0 {
		t.Fatalf("no points were canceled: %+v", st)
	}
	if st.Done+st.Failed+st.Canceled != st.Points || st.Completed != st.Points {
		t.Fatalf("point accounting does not close: %+v", st)
	}
	if _, err := sw.Cancel(st.ID); err != nil {
		t.Fatalf("cancel of a terminal sweep: %v", err)
	}
	if _, err := sw.Cancel("nope"); !errors.Is(err, ErrUnknownSweep) {
		t.Fatalf("unknown sweep cancel: %v", err)
	}
}

// remoteDispatcher serves every point from a peer service manager, the way
// cluster dispatch does, so the local manager must not simulate at all.
type remoteDispatcher struct {
	peer *service.Manager
}

func (d *remoteDispatcher) Dispatch(ctx context.Context, key string, req service.Request) (noc.Result, string, error) {
	j, err := d.peer.Submit(req)
	if err != nil {
		return noc.Result{}, RouteFallback, err
	}
	if !j.State.Terminal() {
		if j, err = d.peer.Wait(ctx, j.ID); err != nil {
			return noc.Result{}, RouteFallback, err
		}
	}
	if j.State != service.StateDone {
		return noc.Result{}, RouteRemote, errors.New(j.Error)
	}
	return *j.Result, RouteRemote, nil
}

// TestSweepDispatcherRemote: with a dispatcher resolving every point
// remotely, the local service simulates zero cycles and the sweep's results
// are bit-identical to the peer's.
func TestSweepDispatcherRemote(t *testing.T) {
	local := newSvc(t, service.Config{})
	peer := newSvc(t, service.Config{})
	sw := New(local, Config{Dispatcher: &remoteDispatcher{peer: peer}})
	st, err := sw.Submit([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	st = waitSweep(t, sw, st.ID)
	if st.State != "done" || st.Done != 6 || st.Remote != 6 {
		t.Fatalf("sweep finished %+v", st)
	}
	if got := local.Stats()["submitted"]; got != 0 {
		t.Fatalf("local manager saw %d submissions; want 0 (all remote)", got)
	}
	pts, _, _, _ := sw.PointsSince(st.ID, 0)
	for _, p := range pts {
		if p.Source != RouteRemote {
			t.Fatalf("point %d source %q", p.Index, p.Source)
		}
		j, err := peer.Submit(p.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !j.CacheHit || mustJSON(t, *j.Result) != mustJSON(t, *p.Result) {
			t.Fatalf("point %d diverged from the peer's cached result", p.Index)
		}
	}
}

// TestSweepSubmitRejects: Submit maps grid errors to ErrBadRequest without
// creating a sweep record.
func TestSweepSubmitRejects(t *testing.T) {
	svc := newSvc(t, service.Config{})
	sw := New(svc, Config{})
	if _, err := sw.Submit([]byte(`{"template":{"topology":"nope"}}`)); !errors.Is(err, service.ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	if got := len(sw.Sweeps()); got != 0 {
		t.Fatalf("rejected sweep left %d records", got)
	}
	if _, ok := sw.Get("s1"); ok {
		t.Fatal("rejected sweep is queryable")
	}
}

// TestSweepShutdown: Shutdown refuses new sweeps and drains active ones.
func TestSweepShutdown(t *testing.T) {
	svc := newSvc(t, service.Config{})
	sw := New(svc, Config{})
	st, err := sw.Submit([]byte(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sw.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Submit([]byte(sweepBody)); !errors.Is(err, service.ErrShuttingDown) {
		t.Fatalf("submit after shutdown: %v", err)
	}
	fin, ok := sw.Get(st.ID)
	if !ok || !fin.Terminal() {
		t.Fatalf("sweep not drained by shutdown: %+v", fin)
	}
}
