package sweepapi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pseudocircuit/internal/service"
	"pseudocircuit/internal/telemetry"
	"pseudocircuit/noc"
)

// Dispatch routes for point execution; cluster.Dispatcher returns the same
// strings so the two packages stay decoupled.
const (
	RouteLocal    = "local"
	RouteRemote   = "remote"
	RouteFallback = "fallback"
)

// Dispatcher decides where one grid point runs. Dispatch either serves the
// result from a peer (route RouteRemote) or tells the caller to execute
// locally (RouteLocal when this node owns the key, RouteFallback when every
// responsible peer was unreachable). A non-nil error makes the point fail
// (or cancel, when ctx ended).
type Dispatcher interface {
	Dispatch(ctx context.Context, key string, req service.Request) (res noc.Result, route string, err error)
}

// Config parameterizes a sweep Manager. Zero values select the defaults.
type Config struct {
	// MaxPoints bounds one sweep's grid expansion (default DefaultMaxPoints);
	// larger grids are rejected with a 400-mapped error, never truncated.
	MaxPoints int
	// Inflight bounds the grid points one sweep works on concurrently
	// (default 16). It should not exceed the service queue capacity; the
	// feeder backs off and retries on queue-full either way.
	Inflight int
	// SweepsCap bounds retained sweep records (default 128), oldest terminal
	// evicted first.
	SweepsCap int
	// Dispatcher, when non-nil, fans points out across the fleet; nil runs
	// everything locally.
	Dispatcher Dispatcher
}

func (c Config) withDefaults() Config {
	if c.MaxPoints <= 0 {
		c.MaxPoints = DefaultMaxPoints
	}
	if c.Inflight <= 0 {
		c.Inflight = 16
	}
	if c.SweepsCap <= 0 {
		c.SweepsCap = 128
	}
	return c
}

// Status is an immutable snapshot of one sweep.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"` // running|done|canceled
	// Points is the grid size; Completed counts terminal points.
	Points    int `json:"points"`
	Completed int `json:"completed"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	// CacheHits counts locally-executed points served without simulating
	// (StoreHits of those from the disk tier); Remote counts points served
	// by peers.
	CacheHits int `json:"cacheHits"`
	StoreHits int `json:"storeHits"`
	Remote    int `json:"remote"`
	// ElapsedMS is wall time since submission (final once terminal).
	ElapsedMS float64 `json:"elapsedMs"`
}

// Terminal reports whether the sweep has finished.
func (s Status) Terminal() bool { return s.State != "running" }

// PointStatus is the per-point NDJSON line: the canonical spec, where and
// how it was served, and the result.
type PointStatus struct {
	Index    int             `json:"index"`
	Key      string          `json:"key"`
	Spec     service.Request `json:"spec"`
	State    string          `json:"state"` // done|failed|canceled
	CacheHit bool            `json:"cacheHit,omitempty"`
	StoreHit bool            `json:"storeHit,omitempty"`
	Source   string          `json:"source,omitempty"` // local|remote|fallback
	Result   *noc.Result     `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// ErrUnknownSweep is returned for sweep IDs that don't resolve.
var ErrUnknownSweep = errors.New("sweepapi: unknown sweep")

// point is the mutable record behind PointStatus. A point is owned by
// exactly one worker until it is published (appended to completedOrder
// under the sweep lock); after publication it is immutable.
type point struct {
	index    int
	key      string
	req      service.Request
	state    string
	cacheHit bool
	storeHit bool
	source   string
	result   *noc.Result
	err      string
}

func (p *point) status() PointStatus {
	return PointStatus{
		Index: p.index, Key: p.key, Spec: p.req, State: p.state,
		CacheHit: p.cacheHit, StoreHit: p.storeHit, Source: p.source,
		Result: p.result, Error: p.err,
	}
}

type sweep struct {
	id     string
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	start  time.Time
	points []*point

	mu             sync.Mutex
	state          string
	finish         time.Time
	completedOrder []int // publication order; index into points
	doneN          int
	failedN        int
	canceledN      int
	cacheHits      int
	storeHits      int
	remote         int
}

func (s *sweep) statusLocked() Status {
	elapsed := time.Since(s.start)
	if !s.finish.IsZero() {
		elapsed = s.finish.Sub(s.start)
	}
	return Status{
		ID: s.id, State: s.state, Points: len(s.points),
		Completed: len(s.completedOrder),
		Done:      s.doneN, Failed: s.failedN, Canceled: s.canceledN,
		CacheHits: s.cacheHits, StoreHits: s.storeHits, Remote: s.remote,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
}

func (s *sweep) status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked()
}

// Manager expands sweep requests and drives their grid points through the
// service (and, in cluster mode, across the fleet).
type Manager struct {
	svc *service.Manager
	cfg Config

	sweepsTotal  *telemetry.Counter
	pointsTotal  telemetry.CounterVec // label outcome: done|failed|canceled
	sweepsActive *telemetry.Gauge
	pointsActive *telemetry.Gauge

	mu     sync.Mutex
	closed bool
	seq    int
	sweeps map[string]*sweep
	order  []string
	wg     sync.WaitGroup
}

// New returns a sweep manager over svc, registering its metrics on the
// service's registry and its lifecycle spans on the service's span log.
func New(svc *service.Manager, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	reg := svc.Telemetry()
	m := &Manager{
		svc:    svc,
		cfg:    cfg,
		sweeps: map[string]*sweep{},
		sweepsTotal: reg.Counter("nocd_sweeps_total",
			"sweep submissions accepted and expanded"),
		pointsTotal: reg.CounterVec("nocd_sweep_points_total",
			"sweep grid points reaching a terminal state, by outcome", "outcome"),
		sweepsActive: reg.Gauge("nocd_sweeps_active", "sweeps currently running"),
		pointsActive: reg.Gauge("nocd_sweep_points_active",
			"grid points of running sweeps not yet terminal"),
	}
	return m
}

// Submit parses, expands and starts a sweep, returning its initial status.
// Errors wrap service.ErrBadRequest (invalid or over-limit grid) or are
// service.ErrShuttingDown.
func (m *Manager) Submit(data []byte) (Status, error) {
	plan, err := Parse(data, m.cfg.MaxPoints)
	if err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, service.ErrShuttingDown
	}
	m.seq++
	ctx, cancel := context.WithCancel(context.Background())
	s := &sweep{
		id: fmt.Sprintf("s%d", m.seq), ctx: ctx, cancel: cancel,
		done: make(chan struct{}), start: time.Now(), state: "running",
		points: make([]*point, len(plan.Points)),
	}
	for i, pp := range plan.Points {
		s.points[i] = &point{index: i, key: pp.Key, req: pp.Req}
	}
	m.sweeps[s.id] = s
	m.order = append(m.order, s.id)
	m.evictSweepsLocked()
	m.wg.Add(1)
	m.mu.Unlock()

	m.sweepsTotal.Inc()
	m.sweepsActive.Add(1)
	m.pointsActive.Add(float64(len(s.points)))
	go m.run(s)
	return s.status(), nil
}

// evictSweepsLocked drops the oldest terminal sweep records over SweepsCap.
func (m *Manager) evictSweepsLocked() {
	for i := 0; len(m.sweeps) > m.cfg.SweepsCap && i < len(m.order); {
		id := m.order[i]
		s, ok := m.sweeps[id]
		if ok && !s.status().Terminal() {
			i++
			continue
		}
		delete(m.sweeps, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
	}
}

// run drives one sweep: a bounded worker pool pulls point indices in grid
// order, so at most Inflight points occupy the service queue at once and a
// fleet peer sees a steady trickle, not a thundering herd.
func (m *Manager) run(s *sweep) {
	defer m.wg.Done()
	workers := min(m.cfg.Inflight, len(s.points))
	idxc := make(chan int)
	var pwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := range idxc {
				m.runPoint(s, s.points[i])
			}
		}()
	}
	fed := 0
feed:
	for ; fed < len(s.points); fed++ {
		select {
		case idxc <- fed:
		case <-s.ctx.Done():
			break feed
		}
	}
	close(idxc)
	pwg.Wait()
	// Points never handed to a worker are canceled wholesale.
	for i := fed; i < len(s.points); i++ {
		p := s.points[i]
		if p.state == "" {
			p.state = "canceled"
			p.err = "sweep canceled"
			m.publish(s, p)
		}
	}

	s.mu.Lock()
	if s.canceledN > 0 || s.ctx.Err() != nil {
		s.state = "canceled"
	} else {
		s.state = "done"
	}
	s.finish = time.Now()
	final := s.statusLocked()
	s.mu.Unlock()
	m.sweepsActive.Add(-1)
	outcome := final.State
	if final.Failed > 0 {
		outcome = "failed"
	}
	m.svc.SpanLog().Record(telemetry.Span{
		Name: "sweep", Job: s.id, Outcome: outcome, Start: s.start, End: s.finish,
	})
	close(s.done)
}

// runPoint executes one grid point: through the dispatcher when configured,
// locally through the service otherwise (or as fallback).
func (m *Manager) runPoint(s *sweep, p *point) {
	defer m.publish(s, p)
	if s.ctx.Err() != nil {
		p.state, p.err = "canceled", "sweep canceled"
		return
	}
	if d := m.cfg.Dispatcher; d != nil {
		res, route, err := d.Dispatch(s.ctx, p.key, p.req)
		p.source = route
		switch {
		case err != nil:
			if s.ctx.Err() != nil {
				p.state, p.err = "canceled", "sweep canceled"
			} else {
				p.state, p.err = "failed", err.Error()
			}
			return
		case route == RouteRemote:
			p.state = "done"
			p.result = &res
			return
		}
		// RouteLocal / RouteFallback: fall through to local execution.
	} else {
		p.source = RouteLocal
	}
	m.runPointLocal(s, p)
}

// runPointLocal submits the point to the local service, backing off while
// the queue is saturated, and waits for the terminal state.
func (m *Manager) runPointLocal(s *sweep, p *point) {
	var j service.Job
	for {
		var err error
		j, err = m.svc.Submit(p.req)
		if err == nil {
			break
		}
		switch {
		case errors.Is(err, service.ErrQueueFull):
			select {
			case <-s.ctx.Done():
				p.state, p.err = "canceled", "sweep canceled"
				return
			case <-time.After(5 * time.Millisecond):
			}
		case errors.Is(err, service.ErrShuttingDown):
			p.state, p.err = "canceled", err.Error()
			return
		default:
			// Canonicalization already vetted the spec at parse time, so
			// this is unexpected — surface it as the point's failure.
			p.state, p.err = "failed", err.Error()
			return
		}
	}
	p.cacheHit, p.storeHit = j.CacheHit, j.StoreHit
	if !j.State.Terminal() {
		jw, err := m.svc.Wait(s.ctx, j.ID)
		if err != nil {
			// Sweep canceled while the job ran: cancel the underlying job
			// too (shared submitters included — singleflight semantics).
			m.svc.Cancel(j.ID)
			p.state, p.err = "canceled", "sweep canceled"
			return
		}
		j = jw
	}
	switch j.State {
	case service.StateDone:
		p.state = "done"
		p.result = j.Result
	case service.StateCanceled:
		p.state, p.err = "canceled", j.Error
	default:
		p.state, p.err = "failed", j.Error
	}
}

// publish makes a terminal point visible to streamers and accounting. The
// point's fields must not change afterwards.
func (m *Manager) publish(s *sweep, p *point) {
	s.mu.Lock()
	s.completedOrder = append(s.completedOrder, p.index)
	switch p.state {
	case "done":
		s.doneN++
		if p.cacheHit {
			s.cacheHits++
		}
		if p.storeHit {
			s.storeHits++
		}
		if p.source == RouteRemote {
			s.remote++
		}
	case "canceled":
		s.canceledN++
	default:
		s.failedN++
	}
	s.mu.Unlock()
	m.pointsTotal.With(p.state).Inc()
	m.pointsActive.Add(-1)
}

// Get returns the sweep's status snapshot.
func (m *Manager) Get(id string) (Status, bool) {
	m.mu.Lock()
	s, ok := m.sweeps[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return s.status(), true
}

// Sweeps lists snapshots of all retained sweeps, oldest first.
func (m *Manager) Sweeps() []Status {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	ss := make([]*sweep, 0, len(order))
	for _, id := range order {
		if s, ok := m.sweeps[id]; ok {
			ss = append(ss, s)
		}
	}
	m.mu.Unlock()
	out := make([]Status, len(ss))
	for i, s := range ss {
		out[i] = s.status()
	}
	return out
}

// Cancel requests cancellation of a sweep: no further points are fed,
// in-flight points are cancelled (including their underlying jobs), and the
// sweep reaches the canceled state. Cancelling a terminal sweep is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	m.mu.Lock()
	s, ok := m.sweeps[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownSweep
	}
	s.cancel()
	return s.status(), nil
}

// PointsSince returns the terminal points published after cursor (a count
// of points already consumed), the new cursor, and the sweep's status — the
// polling primitive the NDJSON streamers are built on.
func (m *Manager) PointsSince(id string, cursor int) ([]PointStatus, int, Status, bool) {
	m.mu.Lock()
	s, ok := m.sweeps[id]
	m.mu.Unlock()
	if !ok {
		return nil, cursor, Status{}, false
	}
	s.mu.Lock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(s.completedOrder) {
		cursor = len(s.completedOrder)
	}
	fresh := s.completedOrder[cursor:]
	out := make([]PointStatus, len(fresh))
	for i, idx := range fresh {
		out[i] = s.points[idx].status()
	}
	st := s.statusLocked()
	s.mu.Unlock()
	return out, cursor + len(out), st, true
}

// Done exposes the sweep's completion channel (closed at terminal state).
func (m *Manager) Done(id string) (<-chan struct{}, bool) {
	m.mu.Lock()
	s, ok := m.sweeps[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return s.done, true
}

// Wait blocks until the sweep is terminal or ctx ends, returning the latest
// status either way.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	s, ok := m.sweeps[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownSweep
	}
	select {
	case <-s.done:
		return s.status(), nil
	case <-ctx.Done():
		return s.status(), ctx.Err()
	}
}

// Shutdown stops accepting sweeps and waits for active ones to finish; when
// ctx expires first, every remaining sweep is cancelled and Shutdown waits
// for the workers to unwind. Call before the service manager's own
// Shutdown, with the same drain deadline.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, s := range m.sweeps {
			s.cancel()
		}
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
