package sweepapi

import (
	"errors"
	"testing"

	"pseudocircuit/internal/service"
)

// FuzzSweepSpec throws hostile grids at the sweep parser: whatever the
// bytes, Parse must never panic, every rejection must wrap ErrBadRequest
// (the daemon's 400 mapping), and every accepted plan must respect the
// expansion bound with each point surviving re-canonicalization onto the
// same key — the invariant the whole cache tier rests on.
func FuzzSweepSpec(f *testing.F) {
	tmpl := `{"topology":"mesh4x4","scheme":"baseline","va":"static","warmup":10,"measure":50,"workload":{"pattern":"uniform","rate":0.1}}`
	seeds := []string{
		`{"template":` + tmpl + `,"axes":{"scheme":["baseline","pseudo"],"seed":[1,2]}}`,
		`{"template":` + tmpl + `}`,
		`{"template":` + tmpl + `,"axes":{}}`,
		`{"template":` + tmpl + `,"axes":null}`,
		`{"template":` + tmpl + `,"axes":{"seed":[1],"seed":[2]}}`,
		`{"template":` + tmpl + `,"axes":{"SEED":[1]}}`,
		`{"template":` + tmpl + `,"axes":{"seed":[18446744073709551615]}}`,
		`{"template":` + tmpl + `,"axes":{"seed":[-1]}}`,
		`{"template":` + tmpl + `,"axes":{"seed":[1e308]}}`,
		`{"template":` + tmpl + `,"axes":{"rate":[0.0,1.0,2.0]}}`,
		`{"template":` + tmpl + `,"axes":{"seed":[[1,2]]}}`,
		`{"template":` + tmpl + `,"axes":{"seed":[{"a":1}]}}`,
		`{"template":` + tmpl + `,"axes":{"warmup":[1,2,3,4,5,6,7,8],"measure":[1,2,3,4,5,6,7,8],"seed":[1,2,3,4,5,6,7,8]}}`,
		`{"template":` + tmpl + `,"axes":{"scheme":"baseline"}}`,
		`{"template":{"topology":"mesh64x64"},"axes":{"seed":[1]}}`,
		`{"template":` + tmpl + `} trailing`,
		`{"axes":{"seed":[1]}}`,
		`[]`, `{}`, `null`, `"sweep"`, ``, `{{`,
		"{\"template\":" + tmpl + ",\"axes\":{\"seed\":[0]}}\x00",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	const maxPoints = 64
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := Parse(data, maxPoints)
		if err != nil {
			if !errors.Is(err, service.ErrBadRequest) {
				t.Fatalf("non-400 parse error: %v", err)
			}
			if plan != nil {
				t.Fatal("error with a non-nil plan")
			}
			return
		}
		if n := len(plan.Points); n == 0 || n > maxPoints {
			t.Fatalf("accepted plan with %d points (bound %d)", n, maxPoints)
		}
		seen := map[string]bool{}
		for i, p := range plan.Points {
			canon, key, _, err := service.Canonicalize(p.Req)
			if err != nil {
				t.Fatalf("point %d does not re-canonicalize: %v", i, err)
			}
			if key != p.Key {
				t.Fatalf("point %d key %s re-canonicalizes to %s", i, p.Key, key)
			}
			if canon != p.Req {
				t.Fatalf("point %d request is not a fixed point of canonicalization", i)
			}
			if seen[key] {
				// Duplicate keys are legal (axes may collapse under
				// canonicalization) — the cache dedups them; nothing to check.
				continue
			}
			seen[key] = true
		}
	})
}
