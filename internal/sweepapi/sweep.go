// Package sweepapi turns one spec template plus a parameter grid into many
// cached simulation jobs — the batch front door of the nocd daemon.
//
// A sweep request is a template (the same wire format as a single job
// submission) and a set of axes, each axis a named parameter with a list of
// values:
//
//	{"template": {"topology":"mesh8x8","scheme":"baseline","va":"static",
//	              "workload":{"pattern":"uniform","rate":0.1}},
//	 "axes": {"scheme": ["baseline","pseudo","pseudo+s+b"],
//	          "rate":   [0.05, 0.1, 0.15, 0.2],
//	          "seed":   [1, 2, 3]}}
//
// Expansion is the cartesian product of the axes, enumerated in a
// deterministic order (axes sorted by name, values in the order given, last
// axis fastest), each point passed through the service's canonicalization —
// so every point lands on exactly the cache key a direct submission of that
// spec would, and the paper's figure grids (scheme × load × seed) become
// one request. The expansion is bounded: a grid over the limit is an
// explicit 400-mapped error, never a truncation. Results stream back as
// NDJSON as each point completes, and a sweep can be cancelled as a unit.
//
// Parsing is hostile-input safe (FuzzSweepSpec): malformed JSON, duplicate
// axis names, unknown axes, wrong-typed or out-of-range values are all
// errors wrapping service.ErrBadRequest, and never panics.
package sweepapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"pseudocircuit/internal/service"
)

// DefaultMaxPoints bounds a sweep expansion when the Config leaves it zero.
const DefaultMaxPoints = 4096

// Plan is a parsed, expanded, validated sweep: every grid point already
// canonicalized to the spec the cache is keyed by.
type Plan struct {
	Points []PlanPoint
}

// PlanPoint is one grid point of a sweep plan.
type PlanPoint struct {
	// Key is the canonical cache key (hex SHA-256) of the point's spec.
	Key string
	// Req is the canonical request; submitting it re-derives Key exactly.
	Req service.Request
}

// rawSweep is the wire shape; both members are parsed strictly afterwards.
type rawSweep struct {
	Template json.RawMessage `json:"template"`
	Axes     json.RawMessage `json:"axes"`
}

// axis is one parsed grid dimension.
type axis struct {
	name   string
	values []axisValue
}

// axisValue is a JSON scalar: a string or a number (kept as json.Number so
// uint64 seeds round-trip without float truncation).
type axisValue struct {
	str   string
	num   json.Number
	isStr bool
}

func (v axisValue) String() string {
	if v.isStr {
		return fmt.Sprintf("%q", v.str)
	}
	return v.num.String()
}

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: sweep: %s", service.ErrBadRequest, fmt.Sprintf(format, args...))
}

// Parse decodes a sweep request and expands it into a validated plan. Every
// failure — malformed JSON, unknown or duplicate axis, wrong-typed value,
// expansion over maxPoints, any point the service would reject — wraps
// service.ErrBadRequest. maxPoints <= 0 selects DefaultMaxPoints.
func Parse(data []byte, maxPoints int) (*Plan, error) {
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var raw rawSweep
	if err := dec.Decode(&raw); err != nil {
		return nil, badf("%v", err)
	}
	if dec.More() {
		return nil, badf("trailing data after sweep object")
	}
	if len(raw.Template) == 0 || string(raw.Template) == "null" {
		return nil, badf("missing template")
	}
	template, err := service.DecodeRequest(raw.Template)
	if err != nil {
		return nil, fmt.Errorf("%w (template)", err)
	}
	axes, err := parseAxes(raw.Axes)
	if err != nil {
		return nil, err
	}

	// Bound the product before materializing anything. The running product
	// is capped at maxPoints+1, so absurd grids cannot overflow the count.
	points := 1
	for _, ax := range axes {
		if len(ax.values) == 0 {
			return nil, badf("axis %q has no values", ax.name)
		}
		if points > maxPoints/len(ax.values) {
			return nil, badf("grid expands past the %d-point limit", maxPoints)
		}
		points *= len(ax.values)
	}

	plan := &Plan{Points: make([]PlanPoint, 0, points)}
	idx := make([]int, len(axes))
	for {
		req := template
		for i, ax := range axes {
			if err := applyAxis(&req, ax.name, ax.values[idx[i]]); err != nil {
				return nil, err
			}
		}
		canon, key, _, err := service.Canonicalize(req)
		if err != nil {
			return nil, fmt.Errorf("%w (point %s)", err, coord(axes, idx))
		}
		plan.Points = append(plan.Points, PlanPoint{Key: key, Req: canon})

		// Odometer increment, last axis fastest.
		i := len(axes) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(axes[i].values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return plan, nil
		}
	}
}

// coord renders one grid coordinate for error messages.
func coord(axes []axis, idx []int) string {
	var b bytes.Buffer
	for i, ax := range axes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", ax.name, ax.values[idx[i]])
	}
	if b.Len() == 0 {
		return "template"
	}
	return b.String()
}

// parseAxes token-parses the axes object so duplicate names are detected
// (encoding/json silently keeps the last duplicate), returning axes sorted
// by name. A missing/null axes member yields no axes: the sweep is the
// template alone.
func parseAxes(raw json.RawMessage) ([]axis, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return nil, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return nil, badf("axes: %v", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, badf("axes must be an object of value lists")
	}
	var axes []axis
	seen := map[string]bool{}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, badf("axes: %v", err)
		}
		name := tok.(string) // inside an object, keys are always strings
		if seen[name] {
			return nil, badf("duplicate axis %q", name)
		}
		seen[name] = true
		if _, ok := axisSetters[name]; !ok {
			return nil, badf("unknown axis %q (have %v)", name, axisNames())
		}
		var vals []any
		if err := dec.Decode(&vals); err != nil {
			return nil, badf("axis %q: %v", name, err)
		}
		ax := axis{name: name, values: make([]axisValue, 0, len(vals))}
		for _, v := range vals {
			switch v := v.(type) {
			case string:
				ax.values = append(ax.values, axisValue{str: v, isStr: true})
			case json.Number:
				ax.values = append(ax.values, axisValue{num: v})
			default:
				return nil, badf("axis %q: values must be strings or numbers, got %T", name, v)
			}
		}
		axes = append(axes, ax)
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return nil, badf("axes: %v", err)
	}
	if t, err := dec.Token(); err != io.EOF {
		return nil, badf("axes: trailing data %v %v", t, err)
	}
	sort.Slice(axes, func(i, j int) bool { return axes[i].name < axes[j].name })
	return axes, nil
}

// applyAxis sets one template field from an axis value. The axis names are
// a closed set mirroring the JSON field names of the request wire format.
func applyAxis(r *service.Request, name string, v axisValue) error {
	return axisSetters[name](r, v)
}

var errWantString = errors.New("want a string")

func (v axisValue) asString() (string, error) {
	if !v.isStr {
		return "", errWantString
	}
	return v.str, nil
}

func (v axisValue) asInt() (int, error) {
	if v.isStr {
		return 0, errors.New("want a number")
	}
	n, err := v.num.Int64()
	if err != nil {
		return 0, err
	}
	if n < -1<<31 || n > 1<<31 {
		return 0, errors.New("out of range")
	}
	return int(n), nil
}

func (v axisValue) asUint64() (uint64, error) {
	if v.isStr {
		return 0, errors.New("want a number")
	}
	// json.Number.Int64 overflows above 1<<63; parse the text directly so
	// full-range uint64 seeds survive.
	return strconv.ParseUint(v.num.String(), 10, 64)
}

func (v axisValue) asFloat() (float64, error) {
	if v.isStr {
		return 0, errors.New("want a number")
	}
	return v.num.Float64()
}

// setter wraps a typed assignment with a uniform axis-scoped error.
func strSetter(name string, set func(*service.Request, string)) func(*service.Request, axisValue) error {
	return func(r *service.Request, v axisValue) error {
		s, err := v.asString()
		if err != nil {
			return badf("axis %q: %v", name, err)
		}
		set(r, s)
		return nil
	}
}

func intSetter(name string, set func(*service.Request, int)) func(*service.Request, axisValue) error {
	return func(r *service.Request, v axisValue) error {
		n, err := v.asInt()
		if err != nil {
			return badf("axis %q: %v", name, err)
		}
		set(r, n)
		return nil
	}
}

var axisSetters = map[string]func(*service.Request, axisValue) error{
	"topology":  strSetter("topology", func(r *service.Request, s string) { r.Topology = s }),
	"scheme":    strSetter("scheme", func(r *service.Request, s string) { r.Scheme = s }),
	"routing":   strSetter("routing", func(r *service.Request, s string) { r.Routing = s }),
	"va":        strSetter("va", func(r *service.Request, s string) { r.VA = s }),
	"staticKey": strSetter("staticKey", func(r *service.Request, s string) { r.StaticKey = s }),
	"pattern":   strSetter("pattern", func(r *service.Request, s string) { r.Workload.Pattern = s }),
	"benchmark": strSetter("benchmark", func(r *service.Request, s string) { r.Workload.Benchmark = s }),

	"numVCs":     intSetter("numVCs", func(r *service.Request, n int) { r.NumVCs = n }),
	"bufDepth":   intSetter("bufDepth", func(r *service.Request, n int) { r.BufDepth = n }),
	"warmup":     intSetter("warmup", func(r *service.Request, n int) { r.Warmup = n }),
	"measure":    intSetter("measure", func(r *service.Request, n int) { r.Measure = n }),
	"packetSize": intSetter("packetSize", func(r *service.Request, n int) { r.Workload.PacketSize = n }),

	"seed": func(r *service.Request, v axisValue) error {
		n, err := v.asUint64()
		if err != nil {
			return badf("axis %q: %v", "seed", err)
		}
		r.Seed = n
		return nil
	},
	"rate": func(r *service.Request, v axisValue) error {
		f, err := v.asFloat()
		if err != nil {
			return badf("axis %q: %v", "rate", err)
		}
		r.Workload.Rate = f
		return nil
	},
}

func axisNames() []string {
	names := make([]string, 0, len(axisSetters))
	for n := range axisSetters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
