package router_test

import (
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/energy"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/router"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
	"pseudocircuit/internal/vcalloc"
)

// staticHarness builds a harness with static VA (destination-keyed).
func staticHarness(t *testing.T, opts core.Options) *harness {
	t.Helper()
	h := newHarness(t, opts)
	h.cfg.Alloc = vcalloc.New(vcalloc.Static, 4, 1, 64)
	return h
}

// TestStaticVAPinsVC: under static VA, packets to the same destination use
// the same output VC.
func TestStaticVAPinsVC(t *testing.T) {
	h := staticHarness(t, core.DefaultOptions(core.Baseline))
	mk := func(id uint64, dst int) *flit.Flit {
		p := &flit.Packet{ID: id, Src: 0, Dst: dst, Size: 1}
		f := flit.Split(p)[0]
		f.VC = 0
		f.NextOut = 2
		return f
	}
	h.r.Deliver(0, mk(1, 9))
	h.tick()
	h.tick()
	h.tick()
	h.r.Deliver(0, mk(2, 9))
	h.tick()
	h.tick()
	h.tick()
	if len(h.sent) != 2 {
		t.Fatalf("sent %d", len(h.sent))
	}
	if h.sent[0].f.VC != h.sent[1].f.VC {
		t.Fatalf("same destination on different VCs: %d vs %d", h.sent[0].f.VC, h.sent[1].f.VC)
	}
	alloc := vcalloc.New(vcalloc.Static, 4, 1, 64)
	if want := alloc.StaticVC(0, 9, 0); h.sent[0].f.VC != want {
		t.Fatalf("VC = %d, want destination-keyed %d", h.sent[0].f.VC, want)
	}
}

// TestVARetry: a header whose static VC is busy waits and allocates once
// the VC frees (non-atomic reuse after the tail).
func TestVARetry(t *testing.T) {
	h := staticHarness(t, core.DefaultOptions(core.Baseline))
	// Packet A (5 flits) to dst 9 occupies static VC; packet B to dst 13
	// (13%4 == 9%4 == 1) from another input port must wait for A's tail.
	mk := func(id uint64, dst, vc, size int) []*flit.Flit {
		p := &flit.Packet{ID: id, Src: 0, Dst: dst, Size: size}
		fs := flit.Split(p)
		for _, f := range fs {
			f.VC = vc
			f.NextOut = 2
		}
		return fs
	}
	a := mk(1, 9, 0, 5)
	b := mk(2, 13, 0, 1)
	reflect := func() {
		// The "downstream" pops each flit a cycle later, returning its
		// credit.
		for ; h.credited < len(h.sent); h.credited++ {
			s := h.sent[h.credited]
			h.r.DeliverCredit(s.out, s.f.VC)
		}
	}
	for i, f := range a {
		h.r.Deliver(0, f)
		if i == 0 {
			h.r.Deliver(1, b[0])
		}
		h.tick()
		reflect()
	}
	for i := 0; len(h.sent) < 6 && i < 80; i++ {
		h.tick()
		reflect()
	}
	if len(h.sent) != 6 {
		t.Fatalf("sent %d flits, want 6", len(h.sent))
	}
	// Whichever packet won VC allocation, the other must not interleave
	// into the shared output VC: B's single flit is either first or last.
	bPos := -1
	for i, s := range h.sent {
		if s.f.Packet.ID == 2 {
			bPos = i
		}
	}
	if bPos != 0 && bPos != 5 {
		t.Fatalf("packet B interleaved into A's wormhole at position %d", bPos)
	}
}

// TestHeadTailPacketsReusePC: single-flit packets (the CMP's address-only
// requests) create and reuse pseudo-circuits like any other.
func TestHeadTailPacketsReusePC(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.PseudoSB))
	for i := 0; i < 6; i++ {
		h.r.Deliver(0, mkFlit(uint64(i), 0, 2))
		h.tick()
		h.tick()
		h.tick()
		h.r.DeliverCredit(2, h.sent[len(h.sent)-1].f.VC)
	}
	if h.stats.PCReused < 4 {
		t.Fatalf("PCReused = %d, want >= 4 of 6", h.stats.PCReused)
	}
	if h.stats.Bypassed < 4 {
		t.Fatalf("Bypassed = %d, want >= 4", h.stats.Bypassed)
	}
}

// TestMismatchFallsBackWithoutPenalty: a flit not matching the circuit goes
// through the normal pipeline (3 cycles) — "no performance overhead"
// (§3.B).
func TestMismatchFallsBackWithoutPenalty(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.Pseudo))
	h.r.Deliver(0, mkFlit(1, 0, 2))
	h.tick()
	h.tick()
	h.tick() // circuit 0->2 up
	start := h.now
	h.r.Deliver(0, mkFlit(2, 0, 3)) // different output: mismatch
	for len(h.sent) < 2 {
		h.tick()
	}
	if got := h.lastSent(t).cycle - start; got != 2 {
		t.Fatalf("mismatched flit took %d cycles, want 3-stage pipeline (ST at +2)", got+1)
	}
	if h.stats.PCReused != 0 {
		t.Fatal("mismatch counted as reuse")
	}
}

// TestAsymmetricRadix: routers with more inputs than outputs (MECS shape)
// work.
func TestAsymmetricRadix(t *testing.T) {
	h := &harness{stats: &stats.Network{}}
	h.cfg = &router.Config{
		NumVCs:   2,
		BufDepth: 2,
		Opts:     core.DefaultOptions(core.PseudoSB),
		Alloc:    vcalloc.New(vcalloc.Dynamic, 2, 1, 64),
		Energy:   energy.NewMeter(),
		Stats:    h.stats,
		Send: func(id, out int, f *flit.Flit) {
			h.sent = append(h.sent, sentFlit{out: out, f: f, cycle: h.now})
		},
		Credit: func(id, in, vc int) {},
	}
	h.r = router.New(0, 10, 3, h.cfg)
	h.r.MarkEjection(2)
	for in := 0; in < 10; in++ {
		p := &flit.Packet{ID: uint64(in), Src: 0, Dst: 1, Size: 1}
		f := flit.Split(p)[0]
		f.VC = in % 2
		f.NextOut = 2
		h.r.Deliver(in, f)
	}
	for i := 0; i < 20; i++ {
		h.tick()
	}
	if len(h.sent) != 10 {
		t.Fatalf("delivered %d of 10 through the 10-in/3-out crossbar", len(h.sent))
	}
}

// TestSpeculativeFlagClearsOnUse: the first traversal over a revived
// circuit re-arms it as a normal circuit.
func TestSpeculativeFlagClearsOnUse(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.PseudoSB))
	// Build and break a circuit via credit starvation, then revive it.
	for i := 0; i < 16; i++ {
		h.r.Deliver(0, mkFlit(uint64(i), 0, 2))
		for len(h.sent) != i+1 && h.now < 500 {
			h.tick()
		}
	}
	for i := 0; i < 3; i++ {
		h.tick()
	}
	if _, valid := h.r.PCValid(0); valid {
		t.Fatal("circuit should be credit-terminated")
	}
	for vc := 0; vc < 4; vc++ {
		h.r.DeliverCredit(2, vc)
	}
	h.tick() // speculation revives
	if _, valid := h.r.PCValid(0); !valid {
		t.Fatal("speculation did not revive")
	}
	specReuse := h.stats.SpecReused
	h.r.Deliver(0, mkFlit(99, 0, 2))
	h.tick()
	h.tick()
	if h.stats.SpecReused != specReuse+1 {
		t.Fatalf("speculative reuse not counted: %d -> %d", specReuse, h.stats.SpecReused)
	}
}

// TestInvariantCheckerCatchesDoubleDelivery: two flits on one input port in
// one cycle violate link bandwidth and must panic.
func TestInvariantCheckerCatchesDoubleDelivery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double delivery accepted")
		}
	}()
	h := newHarness(t, core.DefaultOptions(core.Baseline))
	h.r.Deliver(0, mkFlit(1, 0, 2))
	h.r.Deliver(0, mkFlit(2, 1, 3))
}

// TestCreditOverflowPanics: returning more credits than the buffer holds is
// a protocol violation.
func TestCreditOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("credit overflow accepted")
		}
	}()
	h := newHarness(t, core.DefaultOptions(core.Baseline))
	h.r.DeliverCredit(2, 0)
}

// TestRNGlessDeterminism: two identical routers fed identical inputs make
// identical decisions (no hidden nondeterminism in arbitration).
func TestRNGlessDeterminism(t *testing.T) {
	run := func() []sentFlit {
		h := newHarness(t, core.DefaultOptions(core.PseudoSB))
		rng := sim.NewRNG(4)
		for cy := 0; cy < 200; cy++ {
			in := rng.Intn(4)
			if rng.Bernoulli(0.4) {
				p := &flit.Packet{ID: uint64(cy), Src: 0, Dst: 1, Size: 1}
				f := flit.Split(p)[0]
				f.VC = rng.Intn(4)
				f.NextOut = rng.Intn(5)
				if hBuffered(h, in, f.VC) < 4 {
					h.r.Deliver(in, f)
				}
			}
			h.tick()
			for len(h.credits) > 0 {
				c := h.credits[0]
				h.credits = h.credits[1:]
				_ = c
			}
			for _, s := range h.sent[hCredited(h):] {
				if s.out != 4 {
					h.r.DeliverCredit(s.out, s.f.VC)
				}
				h.credited++
			}
		}
		return h.sent
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d sends", len(a), len(b))
	}
	for i := range a {
		if a[i].out != b[i].out || a[i].cycle != b[i].cycle || a[i].f.Packet.ID != b[i].f.Packet.ID {
			t.Fatalf("send %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func hBuffered(h *harness, in, vc int) int { return h.r.BufferedFlits(in) }
func hCredited(h *harness) int             { return h.credited }
