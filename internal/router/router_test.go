package router_test

import (
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/energy"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/router"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
	"pseudocircuit/internal/vcalloc"
)

// harness drives a single router directly, capturing sends and credits.
type harness struct {
	r        *router.Router
	cfg      *router.Config
	stats    *stats.Network
	sent     []sentFlit
	credits  []sentCredit
	credited int // test-side bookkeeping for credit reflection
	now      sim.Cycle
}

type sentFlit struct {
	out   int
	f     *flit.Flit
	cycle sim.Cycle
}

type sentCredit struct {
	in, vc int
	cycle  sim.Cycle
}

// newHarness builds a 5-in/5-out router (4 directions + 1 terminal pair)
// with the given scheme. Output 4 is the ejection port.
func newHarness(t *testing.T, opts core.Options) *harness {
	t.Helper()
	h := &harness{stats: &stats.Network{}}
	h.cfg = &router.Config{
		NumVCs:   4,
		BufDepth: 4,
		Opts:     opts,
		Alloc:    vcalloc.New(vcalloc.Dynamic, 4, 1, 64),
		Energy:   energy.NewMeter(),
		Stats:    h.stats,
		Send: func(id, out int, f *flit.Flit) {
			h.sent = append(h.sent, sentFlit{out: out, f: f, cycle: h.now})
		},
		Credit: func(id, in, vc int) {
			h.credits = append(h.credits, sentCredit{in: in, vc: vc, cycle: h.now})
		},
	}
	h.r = router.New(0, 5, 5, h.cfg)
	h.r.MarkEjection(4)
	return h
}

func (h *harness) tick() {
	h.r.Tick(h.now)
	h.r.CheckInvariants()
	h.now++
}

// mkFlit builds a single-flit packet headed for output out at this router.
func mkFlit(id uint64, vc, out int) *flit.Flit {
	p := &flit.Packet{ID: id, Src: 0, Dst: 1, Size: 1}
	f := flit.Split(p)[0]
	f.VC = vc
	f.NextOut = out
	return f
}

// mkPacket builds an n-flit packet's flits headed for output out.
func mkPacket(id uint64, vc, out, n int) []*flit.Flit {
	p := &flit.Packet{ID: id, Src: 0, Dst: 1, Size: n}
	fs := flit.Split(p)
	for _, f := range fs {
		f.VC = vc
		f.NextOut = out
	}
	return fs
}

// lastSent returns the most recent send, failing if none.
func (h *harness) lastSent(t *testing.T) sentFlit {
	t.Helper()
	if len(h.sent) == 0 {
		t.Fatal("no flit sent")
	}
	return h.sent[len(h.sent)-1]
}

// TestBaselinePipelineDepth checks the 3-cycle baseline pipeline: a flit
// delivered at cycle 0 performs BW(0), VA+SA(1), ST(2).
func TestBaselinePipelineDepth(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.Baseline))
	h.r.Deliver(0, mkFlit(1, 0, 2))
	for i := 0; i < 3; i++ {
		if len(h.sent) != 0 {
			t.Fatalf("flit sent during cycle %d, want ST at cycle 2", h.now)
		}
		h.tick()
	}
	s := h.lastSent(t)
	if s.cycle != 2 || s.out != 2 {
		t.Fatalf("ST at cycle %d out %d, want cycle 2 out 2", s.cycle, s.out)
	}
}

// TestPseudoCircuitReusePipeline checks Fig. 4 (a)+(b): the first flit
// creates the pseudo-circuit; a later flit on the same VC to the same
// output traverses one cycle after buffer write (BW | PC+ST).
func TestPseudoCircuitReusePipeline(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.Pseudo))
	h.r.Deliver(0, mkFlit(1, 0, 2))
	h.tick() // BW
	h.tick() // VA+SA
	h.tick() // ST
	if out, valid := h.r.PCValid(0); !valid || out != 2 {
		t.Fatalf("pseudo-circuit not created: out=%d valid=%v", out, valid)
	}
	base := len(h.sent)

	h.r.Deliver(0, mkFlit(2, 0, 2))
	h.tick() // BW
	h.tick() // PC + ST
	if len(h.sent) != base+1 {
		t.Fatalf("second flit not sent after 2 cycles (PC+ST)")
	}
	s := h.lastSent(t)
	if got := s.cycle - 3; got != 1 {
		t.Fatalf("PC-hit flit took %d cycles after arrival, want ST one cycle after BW", got+1)
	}
	if h.stats.PCReused != 1 {
		t.Fatalf("PCReused = %d, want 1", h.stats.PCReused)
	}
	if h.stats.SAGrants != 1 {
		t.Fatalf("SAGrants = %d, want 1 (only the first flit arbitrates)", h.stats.SAGrants)
	}
}

// TestBufferBypassPipeline checks §4.B: with a connected pseudo-circuit and
// an empty buffer, an arriving flit traverses in its arrival cycle.
func TestBufferBypassPipeline(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.PseudoB))
	h.r.Deliver(0, mkFlit(1, 0, 2))
	h.tick()
	h.tick()
	h.tick() // PC established
	base := len(h.sent)

	h.r.Deliver(0, mkFlit(2, 0, 2))
	h.tick()
	if len(h.sent) != base+1 {
		t.Fatal("bypass flit not sent in its arrival cycle")
	}
	if h.stats.Bypassed != 1 {
		t.Fatalf("Bypassed = %d, want 1", h.stats.Bypassed)
	}
	// Bypassed flits pay no buffer energy.
	if h.cfg.Energy.Writes != 1 || h.cfg.Energy.Reads != 1 {
		t.Fatalf("buffer events = %d writes/%d reads, want 1/1 (first flit only)",
			h.cfg.Energy.Writes, h.cfg.Energy.Reads)
	}
}

// TestPCTerminationByConflict checks Fig. 4 (c): a connection claiming the
// pseudo-circuit's output port terminates it.
func TestPCTerminationByConflict(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.Pseudo))
	h.r.Deliver(0, mkFlit(1, 0, 2))
	h.tick()
	h.tick()
	h.tick()
	if _, valid := h.r.PCValid(0); !valid {
		t.Fatal("pseudo-circuit not created")
	}
	// A flit from input 1 claims output 2.
	h.r.Deliver(1, mkFlit(2, 0, 2))
	h.tick()
	h.tick() // SA grant terminates input 0's circuit
	if _, valid := h.r.PCValid(0); valid {
		t.Fatal("input 0's pseudo-circuit survived a conflicting grant")
	}
	h.tick()
	if out, valid := h.r.PCValid(1); !valid || out != 2 {
		t.Fatalf("input 1's circuit not created: out=%d valid=%v", out, valid)
	}
	if h.stats.PCTerminated == 0 {
		t.Fatal("no termination recorded")
	}
}

// TestPCTerminationSameInput: a flit from another VC of the same input port
// to a different output also terminates the circuit (one circuit per input
// port).
func TestPCTerminationSameInput(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.Pseudo))
	h.r.Deliver(0, mkFlit(1, 0, 2))
	h.tick()
	h.tick()
	h.tick()
	h.r.Deliver(0, mkFlit(2, 1, 3)) // same input, VC 1, different output
	h.tick()
	h.tick() // grant claims input 0
	h.tick() // traversal rewrites the register to output 3
	if out, valid := h.r.PCValid(0); !valid || out != 3 {
		t.Fatalf("pseudo-circuit = (out %d, valid %v), want rewritten to output 3", out, valid)
	}
}

// TestSpeculationRevival checks Fig. 5: after the interloper's connection is
// torn down by yet another connection, the output's history register revives
// the most recent circuit when the output goes idle — and the revived
// circuit carries a flit without SA.
func TestSpeculationRevival(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.PseudoS))
	// Input 1 connects to output 2 and holds the circuit.
	h.r.Deliver(1, mkFlit(1, 0, 2))
	h.tick()
	h.tick()
	h.tick()
	// Input 1 then sends to output 3: its register is rewritten, output 2
	// goes idle with history pointing at input 1 — no revival possible for
	// output 2 anymore (the register moved on). Instead check the
	// congestion-relief revival: terminate by credit exhaustion.
	if out, valid := h.r.PCValid(1); !valid || out != 2 {
		t.Fatalf("precondition: circuit (out=%d valid=%v)", out, valid)
	}
	// Drain output 2's credits by filling it with traffic from input 1
	// until no credit remains in any VC: dynamic VA spreads 16 single-flit
	// packets across the 4 downstream VCs (4 credits each), and the
	// harness never returns credits.
	for i := 0; i < 15; i++ {
		h.r.Deliver(1, mkFlit(uint64(10+i), 0, 2))
		for want := i + 2; len(h.sent) < want && h.now < 500; {
			h.tick()
		}
	}
	for i := 0; i < 4; i++ {
		h.tick()
	}
	if _, valid := h.r.PCValid(1); valid {
		t.Fatal("circuit survived credit exhaustion (all VCs empty downstream)")
	}
	// Congestion relief: return credits; speculation must revive the
	// circuit without any flit traversal.
	for vc := 0; vc < 4; vc++ {
		h.r.DeliverCredit(2, vc)
	}
	h.tick()
	if out, valid := h.r.PCValid(1); !valid || out != 2 {
		t.Fatalf("speculation did not revive circuit after congestion relief: out=%d valid=%v", out, valid)
	}
	if h.stats.PCSpeculated == 0 {
		t.Fatal("no speculative revival recorded")
	}
}

// TestCreditGating: with zero credits on the output VC, flits stay buffered;
// they move as soon as a credit arrives.
func TestCreditGating(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.Baseline))
	// Consume all 4 credits of the VC the allocator will pick. Dynamic VA
	// picks the VC with most credits, so 4 packets drain VCs round-robin;
	// force determinism by sending 16 single-flit packets (4 per VC).
	for i := 0; i < 16; i++ {
		h.r.Deliver(0, mkFlit(uint64(i), 0, 2))
		for len(h.sent) != i+1 {
			h.tick()
			if h.now > 200 {
				t.Fatalf("flit %d stuck with credits available", i)
			}
		}
	}
	// All 16 downstream slots consumed. The 17th flit must stall.
	h.r.Deliver(0, mkFlit(99, 0, 2))
	for i := 0; i < 10; i++ {
		h.tick()
	}
	if len(h.sent) != 16 {
		t.Fatalf("flit traversed without credit: sent=%d", len(h.sent))
	}
	h.r.DeliverCredit(2, h.sent[0].f.VC)
	deadline := h.now + 5
	for len(h.sent) != 17 && h.now < deadline {
		h.tick()
	}
	if len(h.sent) != 17 {
		t.Fatal("flit did not move after credit returned")
	}
}

// TestWormholeOrder: flits of one packet leave in order on one VC, and the
// tail frees the VC.
func TestWormholeOrder(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.PseudoSB))
	fs := mkPacket(1, 0, 2, 5)
	reflected := 0
	reflect := func() {
		// Downstream pops each received flit after a cycle, returning its
		// credit so the 5-flit packet fits through the 4-deep buffer.
		for ; reflected < len(h.sent); reflected++ {
			h.r.DeliverCredit(h.sent[reflected].out, h.sent[reflected].f.VC)
		}
	}
	for _, f := range fs {
		h.r.Deliver(0, f)
		h.tick()
		reflect()
	}
	for i := 0; i < 10 && len(h.sent) < 5; i++ {
		h.tick()
		reflect()
	}
	if len(h.sent) != 5 {
		t.Fatalf("sent %d flits, want 5", len(h.sent))
	}
	for i, s := range h.sent {
		if s.f.Seq != i {
			t.Fatalf("flit %d left out of order (seq %d)", i, s.f.Seq)
		}
		if s.f.VC != h.sent[0].f.VC {
			t.Fatalf("packet switched VCs mid-flight")
		}
	}
	if !h.r.Quiescent() {
		t.Fatal("router not quiescent after packet drained")
	}
}

// TestEjectionPortUnconstrained: ejection ports need no credits.
func TestEjectionPortUnconstrained(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.Baseline))
	for i := 0; i < 12; i++ {
		h.r.Deliver(0, mkFlit(uint64(i), 0, 4))
		h.tick()
		h.tick()
		h.tick()
	}
	if len(h.sent) != 12 {
		t.Fatalf("ejected %d flits, want 12", len(h.sent))
	}
}

// TestCreditReturnedPerFlit: every traversal returns exactly one credit
// upstream, including bypassed flits.
func TestCreditReturnedPerFlit(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.PseudoSB))
	for i := 0; i < 6; i++ {
		h.r.Deliver(0, mkFlit(uint64(i), 0, 2))
		h.tick()
		h.tick()
		h.tick()
	}
	if len(h.credits) != len(h.sent) {
		t.Fatalf("credits %d != sends %d", len(h.credits), len(h.sent))
	}
	for _, c := range h.credits {
		if c.in != 0 || c.vc != 0 {
			t.Fatalf("credit for (in %d, vc %d), want (0, 0)", c.in, c.vc)
		}
	}
}

// TestBypassRefusedWhenBufferOccupied: §4.B requires the buffer to be empty.
func TestBypassRefusedWhenBufferOccupied(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.PseudoB))
	// Establish a circuit 0->2.
	h.r.Deliver(0, mkFlit(1, 0, 2))
	h.tick()
	h.tick()
	h.tick()
	// Stall the next flit by exhausting credits on all VCs of output 2.
	for i := 0; i < 15; i++ {
		h.r.Deliver(0, mkFlit(uint64(i+2), 0, 2))
		for len(h.sent) != i+2 && h.now < 500 {
			h.tick()
		}
	}
	// Output 2 now has 0 credits on vc0 (16 flits sent, none credited).
	h.r.Deliver(0, mkFlit(100, 0, 2))
	h.tick() // buffered, cannot move
	if h.r.BufferedFlits(0) != 1 {
		t.Fatalf("buffered = %d, want 1", h.r.BufferedFlits(0))
	}
	bypassed := h.stats.Bypassed
	h.r.Deliver(0, mkFlit(101, 0, 2))
	h.tick()
	if h.stats.Bypassed != bypassed {
		t.Fatal("flit bypassed an occupied buffer")
	}
	if h.r.BufferedFlits(0) != 2 {
		t.Fatalf("buffered = %d, want 2", h.r.BufferedFlits(0))
	}
}

// TestNoSchemeStateInBaseline: the baseline never creates pseudo-circuits.
func TestNoSchemeStateInBaseline(t *testing.T) {
	h := newHarness(t, core.DefaultOptions(core.Baseline))
	for i := 0; i < 8; i++ {
		h.r.Deliver(0, mkFlit(uint64(i), 0, 2))
		h.tick()
		h.tick()
		h.tick()
	}
	if _, valid := h.r.PCValid(0); valid {
		t.Fatal("baseline router holds a valid pseudo-circuit")
	}
	if h.stats.PCReused != 0 || h.stats.PCCreated != 0 {
		t.Fatal("baseline recorded pseudo-circuit activity")
	}
}
