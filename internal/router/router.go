// Package router implements the cycle-accurate pipelined virtual-channel
// router the paper builds on (§3.A, Peh & Dally's speculative router) and
// integrates the pseudo-circuit datapath from internal/core.
//
// Pipeline (paper Fig. 6; one stage per cycle, LT handled by the network):
//
//	baseline flit:            BW | VA+SA (speculative, retried) | ST | LT
//	pseudo-circuit hit:       BW | PC-compare + ST              | LT
//	hit with buffer bypass:   PC-compare + ST                   | LT
//
// Within a simulated cycle the router processes, in order:
//
//  1. ST for switch-arbitration grants issued last cycle.
//  2. Head-of-VC bookkeeping and VC allocation (VA), performed independently
//     of SA so pseudo-circuit flits can traverse while VA proceeds (§3.B).
//  3. Classification of head flits into pseudo-circuit candidates and SA
//     requests; pseudo-circuit traversal (PC + ST) for candidates no SA
//     request conflicts with (starvation freedom, §3.C).
//  4. Switch arbitration (separable, round-robin, credit-gated); grants
//     reserve the crossbar for next cycle, terminate conflicting
//     pseudo-circuits, and cost arbiter energy.
//  5. Pseudo-circuit maintenance: credit-exhaustion termination (§3.C) and
//     speculation (§4.A).
//  6. Arrivals: buffer write, or buffer bypass + ST when a connected
//     pseudo-circuit matches and the VC buffer is empty (§4.B).
//
// All cross-router communication (flits, credits) is mediated by callbacks
// with at least one cycle of latency, so routers may tick in any order.
package router

import (
	"fmt"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/energy"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/obs"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
	"pseudocircuit/internal/vcalloc"
)

// SendFunc delivers a flit leaving output port out of router id; the network
// resolves the link, performs lookahead routing, and schedules the arrival.
type SendFunc func(id, out int, f *flit.Flit)

// CreditFunc returns one credit for (input port in, VC vc) of router id to
// whatever feeds that port (upstream router or NI), with one cycle latency.
type CreditFunc func(id, in, vc int)

// Config carries the parameters shared by every router in a network.
type Config struct {
	NumVCs   int
	BufDepth int
	Opts     core.Options
	Alloc    *vcalloc.Allocator
	Energy   *energy.Meter
	Stats    *stats.Network
	Send     SendFunc
	Credit   CreditFunc
	// Reg enables per-router/per-port counters when non-nil (observation
	// only; increments mirror the Stats sites exactly).
	Reg *stats.Registry
	// Trace enables flit-lifecycle event recording when non-nil.
	Trace *obs.Tracer
	// LinkUp reports whether output port out of router id is currently
	// usable; nil means no fault schedule is configured (always up). Fault
	// state changes only in the kernel's main phase, so the callback is
	// read-only during router ticks and safe to call from shard workers.
	LinkUp func(id, out int) bool
	// Reroute returns a detour output port at router id for a packet to
	// dst with routing class class whose nominal port is dead (fault-aware
	// routing); nil when no fault schedule is configured.
	Reroute func(id, dst, class int) int
}

// vcState tracks the packet currently owning an input VC (wormhole: one
// packet drains at a time; the FIFO buffer may hold flits of queued
// successors).
type vcState struct {
	buf     []*flit.Flit
	at      []sim.Cycle // arrival cycle of each buffered flit (BW takes one cycle)
	active  bool        // a packet's header has been admitted and its tail has not traversed
	outPort int
	outVC   int // -1 until VA succeeds
	class   int
	src     int
	dst     int
	pkt     *flit.Packet // the packet owning the VC (fault teardown needs it even when buf is empty)
}

func (v *vcState) reset() {
	v.active = false
	v.outPort = -1
	v.outVC = -1
	v.pkt = nil
}

type inputPort struct {
	vcs []*vcState
	pc  core.Register
	// hist backs speculation: the input's most recent connections
	// (depth 1 = the paper's register pair; SpecHistoryDepth extends it).
	hist core.InputHistory
	// arrival staged by Deliver for processing at the end of this cycle.
	arrival *flit.Flit
	// rrVC is the round-robin pointer for SA input arbitration.
	rrVC int
	// lastOut tracks the previous crossbar connection through this port for
	// the Fig. 1 temporal-locality measurement (independent of scheme).
	lastOut int
}

type outputPort struct {
	credits  []int
	vcBusy   []bool
	hist     core.History
	rrIn     int // round-robin pointer for SA output arbitration
	ejection bool
}

func (o *outputPort) hasCredit(vc int) bool {
	return o.ejection || o.credits[vc] > 0
}

func (o *outputPort) anyCredit() bool {
	if o.ejection {
		return true
	}
	for _, c := range o.credits {
		if c > 0 {
			return true
		}
	}
	return false
}

// reservation is a switch-arbitration grant: flit at (in, vc) traverses to
// out next cycle.
type reservation struct {
	in, vc, out int
	f           *flit.Flit
}

type saRequest struct {
	in, vc, out int
}

// Router is one pipelined router instance.
type Router struct {
	ID  int
	cfg *Config

	in  []*inputPort
	out []*outputPort

	res     []reservation // STs to execute this cycle
	nextRes []reservation // grants made this cycle

	// Per-tick scratch, reused across cycles.
	busyIn  []bool
	busyOut []bool
	reqs    []saRequest
	chosen  []int // per input port: index into reqs selected by input arbitration, -1 none
	pcCand  []int // per input port: vc of pseudo-circuit candidate, -1 none

	// outSends counts flits per output port over the router's lifetime
	// (link-utilization diagnostics).
	outSends []uint64

	// rs is this router's row in the per-router registry (nil when per-router
	// instrumentation is off) and tr the lifecycle tracer (nil when tracing
	// is off); both are observation-only and nil in the default configuration,
	// so the hot path pays one predictable branch each.
	rs *stats.RouterStats
	tr *obs.Tracer

	// worked records that this tick mutated router state beyond the buffers
	// the active-set scan below can see: a crossbar traversal (which
	// rewrites pseudo-circuit registers and histories even when the flit
	// leaves the router empty) or a pseudo-circuit termination/speculation.
	// Any such event may enable further work next cycle, so the router must
	// stay scheduled one more tick to reach its fixed point.
	worked bool
}

// New constructs a router with the given input and output radix. Ejection
// output ports (terminal side) must be marked afterwards with MarkEjection.
func New(id, inPorts, outPorts int, cfg *Config) *Router {
	if cfg.NumVCs < 1 || cfg.BufDepth < 1 {
		panic("router: NumVCs and BufDepth must be positive")
	}
	if err := cfg.Opts.Validate(); err != nil {
		panic(err)
	}
	r := &Router{
		ID:       id,
		cfg:      cfg,
		in:       make([]*inputPort, inPorts),
		out:      make([]*outputPort, outPorts),
		busyIn:   make([]bool, inPorts),
		busyOut:  make([]bool, outPorts),
		chosen:   make([]int, inPorts),
		pcCand:   make([]int, inPorts),
		outSends: make([]uint64, outPorts),
		rs:       cfg.Reg.Attach(id, inPorts, outPorts),
		tr:       cfg.Trace,
	}
	for i := range r.in {
		p := &inputPort{
			vcs:     make([]*vcState, cfg.NumVCs),
			pc:      core.NewRegister(),
			hist:    core.NewInputHistory(cfg.Opts.SpecHistoryDepth),
			lastOut: -1,
		}
		for v := range p.vcs {
			p.vcs[v] = &vcState{outPort: -1, outVC: -1}
		}
		r.in[i] = p
	}
	for o := range r.out {
		p := &outputPort{
			credits: make([]int, cfg.NumVCs),
			vcBusy:  make([]bool, cfg.NumVCs),
			hist:    core.NewHistory(),
		}
		for v := range p.credits {
			p.credits[v] = cfg.BufDepth
		}
		r.out[o] = p
	}
	return r
}

// MarkEjection flags output port out as a terminal (ejection) port: VC state
// and credits are unconstrained because the receiver NI sinks flits at link
// rate.
func (r *Router) MarkEjection(out int) { r.out[out].ejection = true }

// Deliver stages a flit arriving on input port in this cycle. The network
// calls it before Tick; at most one flit per input port per cycle (link
// bandwidth).
func (r *Router) Deliver(in int, f *flit.Flit) {
	if r.in[in].arrival != nil {
		panic(fmt.Sprintf("router %d: two flits on input port %d in one cycle", r.ID, in))
	}
	r.in[in].arrival = f
}

// DeliverCredit returns one credit for (output port out, VC vc); the network
// calls it when the downstream hop frees a buffer slot.
func (r *Router) DeliverCredit(out, vc int) {
	o := r.out[out]
	o.credits[vc]++
	if o.credits[vc] > r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: credit overflow on out %d vc %d", r.ID, out, vc))
	}
}

// Tick advances the router by one cycle. It reports whether the router must
// be ticked again next cycle; false means this tick was a no-op apart from
// clearing scratch state and, absent new deliveries, every later tick would
// be too (the active-set fixed point).
func (r *Router) Tick(now sim.Cycle) bool {
	r.worked = false
	r.executeReservations(now)
	r.admitHeads()
	r.allocateVCs(now)
	r.classify(now)
	r.pcTraversals(now)
	r.switchArbitrate(now)
	r.maintainPseudoCircuits()
	r.processArrivals(now)
	r.res, r.nextRes = r.nextRes, r.res[:0]
	return r.worked || r.holdsFlits()
}

// holdsFlits reports whether any state demands a tick next cycle: pending
// switch traversals, buffered flits, or an in-flight packet owning a VC.
func (r *Router) holdsFlits() bool {
	if len(r.res) > 0 {
		return true
	}
	for _, in := range r.in {
		for _, vs := range in.vcs {
			if vs.active || len(vs.buf) > 0 {
				return true
			}
		}
	}
	return false
}

// executeReservations performs ST for last cycle's SA grants (phase 1) and
// computes this cycle's crossbar busy sets.
func (r *Router) executeReservations(now sim.Cycle) {
	for i := range r.busyIn {
		r.busyIn[i] = false
	}
	for o := range r.busyOut {
		r.busyOut[o] = false
	}
	for _, res := range r.res {
		in := r.in[res.in]
		vs := in.vcs[res.vc]
		// Speculative SA: a grant issued in parallel with a failed VA is
		// void (paper §3.A); the flit retries.
		if vs.outVC < 0 {
			continue
		}
		// A fault storm may have killed or salvaged the VC since the grant
		// (which also resets outVC, caught above); this guards the port too.
		if r.linkDead(res.out) {
			continue
		}
		// Credits may have been drained by a pseudo-circuit traversal after
		// the request was credit-checked; re-verify and retry on failure.
		if !r.out[res.out].hasCredit(vs.outVC) {
			continue
		}
		if len(vs.buf) == 0 || vs.buf[0] != res.f {
			panic(fmt.Sprintf("router %d: reservation lost its flit at in %d vc %d", r.ID, res.in, res.vc))
		}
		r.popBuffer(in, res.vc)
		r.traverse(now, res.in, res.vc, res.out, res.f, false, false)
		r.busyIn[res.in] = true
		r.busyOut[res.out] = true
	}
}

// admitHeads activates the packet whose header flit has reached the head of
// an idle VC, latching its lookahead route (phase 2a).
func (r *Router) admitHeads() {
	for _, in := range r.in {
		for _, vs := range in.vcs {
			if vs.active || len(vs.buf) == 0 {
				continue
			}
			h := vs.buf[0]
			if !h.Kind.IsHead() {
				panic(fmt.Sprintf("router %d: non-head flit %v at head of idle VC", r.ID, h))
			}
			r.admit(vs, h)
		}
	}
}

func (r *Router) admit(vs *vcState, h *flit.Flit) {
	vs.active = true
	vs.outPort = h.NextOut
	vs.outVC = -1
	vs.class = h.RouteClass
	vs.src = h.Packet.Src
	vs.dst = h.Packet.Dst
	vs.pkt = h.Packet
	if vs.outPort < 0 || vs.outPort >= len(r.out) {
		panic(fmt.Sprintf("router %d: header %v carries invalid output port %d", r.ID, h, vs.outPort))
	}
	// Lookahead routing computed NextOut at the previous hop; a fault storm
	// between then and now may have killed the link. Re-route at admission
	// so the stale lookahead cannot commit the packet to a dead port.
	if r.cfg.Reroute != nil && vs.outPort < 4 && r.linkDead(vs.outPort) {
		vs.outPort = r.cfg.Reroute(r.ID, vs.dst, vs.class)
	}
}

// linkDead reports whether output port out is currently unusable under the
// configured fault schedule; always false without one.
func (r *Router) linkDead(out int) bool {
	return r.cfg.LinkUp != nil && !r.cfg.LinkUp(r.ID, out)
}

// allocateVCs performs VA for admitted packets without an output VC
// (phase 2b). VA is independent of SA, so it proceeds for pseudo-circuit
// flits too. Inputs are scanned from a rotating offset for fairness.
func (r *Router) allocateVCs(now sim.Cycle) {
	n := len(r.in)
	start := int(now) % n
	for k := 0; k < n; k++ {
		in := r.in[(start+k)%n]
		for _, vs := range in.vcs {
			if !vs.active || vs.outVC >= 0 || len(vs.buf) == 0 {
				continue
			}
			if !vs.buf[0].Kind.IsHead() {
				continue // header already traversed; body flits keep the VC
			}
			r.tryVA(vs)
		}
	}
}

// tryVA attempts VC allocation for the packet owning vs; it returns true on
// success.
func (r *Router) tryVA(vs *vcState) bool {
	o := r.out[vs.outPort]
	if !o.ejection && r.linkDead(vs.outPort) {
		return false // dead link: hold the packet until recovery or reroute
	}
	var v int
	if o.ejection {
		// The receiver NI drains every VC; allocate within the class.
		lo, _ := r.cfg.Alloc.ClassRange(vs.class)
		v = lo
	} else {
		v = r.cfg.Alloc.Pick(vs.src, vs.dst, vs.class, o.vcBusy, o.credits)
		if v < 0 {
			return false
		}
		o.vcBusy[v] = true
	}
	vs.outVC = v
	return true
}

// classify splits eligible head flits into pseudo-circuit candidates and SA
// requests (phase 3a). A flit is eligible once it has spent a full cycle in
// the buffer (BW stage).
func (r *Router) classify(now sim.Cycle) {
	r.reqs = r.reqs[:0]
	for i, in := range r.in {
		r.pcCand[i] = -1
		for v, vs := range in.vcs {
			if !vs.active || len(vs.buf) == 0 {
				continue
			}
			if in.vcs[v].at[0] >= now {
				continue // still in BW this cycle
			}
			if r.linkDead(vs.outPort) {
				continue // dead link: stall until recovery or the storm's reroute
			}
			if vs.outVC < 0 {
				// Header whose VA failed: issue a speculative SA request
				// anyway (grant will be void), modelling the speculative
				// pipeline's wasted grants.
				r.reqs = append(r.reqs, saRequest{in: i, vc: v, out: vs.outPort})
				continue
			}
			o := r.out[vs.outPort]
			if !o.hasCredit(vs.outVC) {
				if r.rs != nil {
					r.rs.In[i].CreditStalls++
				}
				continue // credit-gated: no request without credit
			}
			// A flit matching the input port's connected pseudo-circuit
			// rides it instead of re-arbitrating, even if the crossbar port
			// is occupied this cycle (back-to-back streaming: it traverses
			// next cycle, still without SA).
			if r.cfg.Opts.Pseudo && in.pc.Match(v, vs.outPort) && r.pcCand[i] < 0 {
				r.pcCand[i] = v
				continue
			}
			r.reqs = append(r.reqs, saRequest{in: i, vc: v, out: vs.outPort})
		}
	}
}

// pcTraversals performs PC-compare + ST for pseudo-circuit candidates
// (phase 3b). With the paper's starvation-free policy a candidate defers to
// any SA request claiming either of its ports.
func (r *Router) pcTraversals(now sim.Cycle) {
	for i, in := range r.in {
		v := r.pcCand[i]
		if v < 0 {
			continue
		}
		vs := in.vcs[v]
		if r.busyIn[i] || r.busyOut[vs.outPort] {
			continue // crossbar port in use this cycle; ride the circuit next cycle
		}
		if r.cfg.Opts.PCDefersToSA && r.saClaims(i, vs.outPort) {
			continue
		}
		f := vs.buf[0]
		out := vs.outPort
		r.popBuffer(in, v)
		r.traverse(now, i, v, out, f, true, false)
		r.busyIn[i] = true
		r.busyOut[out] = true
	}
}

// saClaims reports whether any SA request this cycle claims input port in or
// output port out.
func (r *Router) saClaims(in, out int) bool {
	for _, q := range r.reqs {
		if q.in == in || q.out == out {
			return true
		}
	}
	return false
}

// switchArbitrate runs the separable round-robin switch allocator
// (phase 4): one request per input port, then one input per output port.
// Grants reserve the crossbar for next cycle and terminate conflicting
// pseudo-circuits.
func (r *Router) switchArbitrate(now sim.Cycle) {
	// Input arbitration: choose one requesting VC per input port.
	for i := range r.chosen {
		r.chosen[i] = -1
	}
	for qi, q := range r.reqs {
		ip := r.in[q.in]
		if r.chosen[q.in] < 0 {
			r.chosen[q.in] = qi
			continue
		}
		// Round-robin preference: smallest (vc - rrVC) mod V wins.
		cur := r.reqs[r.chosen[q.in]]
		if rrDist(q.vc, ip.rrVC, r.cfg.NumVCs) < rrDist(cur.vc, ip.rrVC, r.cfg.NumVCs) {
			r.chosen[q.in] = qi
		}
	}
	// Output arbitration among the per-input winners.
	for o, op := range r.out {
		best := -1
		for i := range r.in {
			qi := r.chosen[i]
			if qi < 0 || r.reqs[qi].out != o {
				continue
			}
			if best < 0 || rrDist(i, op.rrIn, len(r.in)) < rrDist(best, op.rrIn, len(r.in)) {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		q := r.reqs[r.chosen[best]]
		vs := r.in[q.in].vcs[q.vc]
		r.grant(now, q, vs)
	}
}

func (r *Router) grant(now sim.Cycle, q saRequest, vs *vcState) {
	r.cfg.Energy.AddArbitration()
	r.cfg.Stats.SAGrants++
	f := vs.buf[0]
	if r.rs != nil {
		r.rs.SAGrants++
	}
	if r.tr != nil {
		r.tr.Record(obs.Event{
			Cycle: int64(now), Kind: obs.SAGrant, Packet: f.Packet.ID, Seq: int32(f.Seq),
			Src: int32(f.Packet.Src), Dst: int32(f.Packet.Dst),
			Loc: int32(r.ID), In: int32(q.in), VC: int32(q.vc), Out: int32(q.out),
		})
	}
	r.nextRes = append(r.nextRes, reservation{in: q.in, vc: q.vc, out: q.out, f: f})
	r.in[q.in].rrVC = (q.vc + 1) % r.cfg.NumVCs
	r.out[q.out].rrIn = (q.in + 1) % len(r.in)
	if r.cfg.Opts.Pseudo {
		// The new connection claims its ports: terminate conflicting
		// pseudo-circuits (§3.C condition 1).
		for i, in := range r.in {
			if in.pc.Valid && (i == q.in || in.pc.OutPort == q.out) {
				in.pc.Terminate()
				r.cfg.Stats.PCTerminated++
				if r.rs != nil {
					r.rs.PCTerminated++
				}
			}
		}
	}
}

// rrDist is the round-robin distance from pointer ptr to index x modulo n.
func rrDist(x, ptr, n int) int { return ((x-ptr)%n + n) % n }

// maintainPseudoCircuits terminates circuits whose output ran out of credit
// (§3.C condition 2) and speculatively revives circuits on idle outputs
// (§4.A) — phase 5.
func (r *Router) maintainPseudoCircuits() {
	if !r.cfg.Opts.Pseudo {
		return
	}
	if r.cfg.Opts.TerminateOnZeroCredit {
		for _, in := range r.in {
			if !in.pc.Valid {
				continue
			}
			if !r.pcHasCredit(in) {
				in.pc.Terminate()
				r.cfg.Stats.PCTerminated++
				if r.rs != nil {
					r.rs.PCTerminated++
				}
				r.worked = true
			}
		}
	}
	if !r.cfg.Opts.Speculation {
		return
	}
	for o, op := range r.out {
		if !op.hist.Valid || r.outputHasPC(o) || r.outputReserved(o) {
			continue
		}
		if r.linkDead(o) {
			continue // never speculate a circuit across a dead link
		}
		if !op.anyCredit() && !r.cfg.Opts.SpeculateToCongested {
			continue
		}
		in := r.in[op.hist.InPort]
		if in.pc.Valid {
			continue
		}
		vc, ok := in.hist.Lookup(o)
		if !ok {
			continue
		}
		in.pc.SetSpeculative(vc, o)
		r.cfg.Stats.PCSpeculated++
		if r.rs != nil {
			r.rs.PCSpeculated++
		}
		r.worked = true
	}
}

// pcHasCredit reports whether the pseudo-circuit's output port is congested
// (§3.C condition 2: "congestion at the downstream router on the output
// port"). Congestion is a port-level condition — no credit left in any VC;
// transient per-VC credit exhaustion inside a streaming packet does not
// terminate the circuit, because per-flit safety is already enforced by the
// credit check every traversal performs.
func (r *Router) pcHasCredit(in *inputPort) bool {
	return r.out[in.pc.OutPort].anyCredit()
}

func (r *Router) outputHasPC(out int) bool {
	for _, in := range r.in {
		if in.pc.Valid && in.pc.OutPort == out {
			return true
		}
	}
	return false
}

func (r *Router) outputReserved(out int) bool {
	for _, res := range r.nextRes {
		if res.out == out {
			return true
		}
	}
	return false
}

// processArrivals handles flits delivered this cycle: buffer bypass when a
// connected pseudo-circuit matches (§4.B), buffer write otherwise
// (phase 6).
func (r *Router) processArrivals(now sim.Cycle) {
	for i, in := range r.in {
		f := in.arrival
		if f == nil {
			continue
		}
		in.arrival = nil
		if r.tryBypass(now, i, f) {
			continue
		}
		vs := in.vcs[f.VC]
		if len(vs.buf) >= r.cfg.BufDepth {
			panic(fmt.Sprintf("router %d: buffer overflow at in %d vc %d (credit protocol violated)", r.ID, i, f.VC))
		}
		vs.buf = append(vs.buf, f)
		vs.at = append(vs.at, now)
		r.cfg.Energy.AddWrite()
		if r.rs != nil {
			if d := len(vs.buf); d > r.rs.In[i].BufHighWater {
				r.rs.In[i].BufHighWater = d
			}
		}
		if r.tr != nil {
			r.tr.Record(obs.Event{
				Cycle: int64(now), Kind: obs.BufWrite, Packet: f.Packet.ID, Seq: int32(f.Seq),
				Src: int32(f.Packet.Src), Dst: int32(f.Packet.Dst),
				Loc: int32(r.ID), In: int32(i), VC: int32(f.VC), Out: int32(f.NextOut),
			})
		}
	}
}

// tryBypass attempts buffer bypassing for an arriving flit; on success the
// flit traverses the crossbar this cycle (PC + ST), saving the BW stage.
func (r *Router) tryBypass(now sim.Cycle, i int, f *flit.Flit) bool {
	if !r.cfg.Opts.BufferBypass {
		return false
	}
	in := r.in[i]
	vs := in.vcs[f.VC]
	if len(vs.buf) != 0 || r.busyIn[i] {
		return false
	}
	if f.Kind.IsHead() {
		if vs.active {
			return false // previous packet's tail still in flight upstream of us
		}
		if r.linkDead(f.NextOut) {
			return false // dead onward link: buffer, then re-route at admission
		}
		if !in.pc.Match(f.VC, f.NextOut) || r.busyOut[f.NextOut] {
			return false
		}
		// VA in parallel with the bypass (§4.B: "VA is performed only for
		// header flits and it needs the output port numbers only").
		r.admit(vs, f)
		if !r.tryVA(vs) {
			vs.reset()
			return false
		}
	} else {
		if !vs.active || vs.outVC < 0 {
			panic(fmt.Sprintf("router %d: body flit %v arrived on idle VC", r.ID, f))
		}
		if r.linkDead(vs.outPort) {
			return false
		}
		if !in.pc.Match(f.VC, vs.outPort) || r.busyOut[vs.outPort] {
			return false
		}
	}
	if !r.out[vs.outPort].hasCredit(vs.outVC) {
		return false
	}
	out := vs.outPort
	r.traverse(now, i, f.VC, out, f, true, true)
	r.busyIn[i] = true
	r.busyOut[out] = true
	return true
}

// popBuffer removes the head flit of (in, vc), paying buffer-read energy and
// returning the freed slot's credit upstream.
func (r *Router) popBuffer(in *inputPort, vc int) {
	vs := in.vcs[vc]
	vs.buf = vs.buf[:copy(vs.buf, vs.buf[1:])]
	vs.at = vs.at[:copy(vs.at, vs.at[1:])]
	r.cfg.Energy.AddRead()
}

// traverse moves flit f through the crossbar from (in, vc) to out: the ST
// stage. viaPC marks pseudo-circuit reuse; bypass marks buffer bypassing
// (the flit never occupied the buffer).
func (r *Router) traverse(now sim.Cycle, in, vc, out int, f *flit.Flit, viaPC, bypass bool) {
	r.worked = true
	ip := r.in[in]
	vs := ip.vcs[vc]
	op := r.out[out]
	st := r.cfg.Stats

	// Fig. 1 crossbar-connection temporal locality, measured at packet
	// granularity (header flits) regardless of scheme: body flits reuse
	// their header's connection by construction and would trivially inflate
	// the metric.
	if f.Kind.IsHead() {
		if ip.lastOut >= 0 {
			st.XbarPrev++
			if ip.lastOut == out {
				st.XbarSame++
			}
		}
		ip.lastOut = out
	}

	st.Traversals++
	r.cfg.Energy.AddTraversal()
	if f.Kind.IsHead() {
		st.HeadTravs++
	}
	if viaPC {
		st.PCReused++
		if ip.pc.Speculative {
			st.SpecReused++
		}
		if f.Kind.IsHead() {
			st.HeadReused++
		}
	}
	if bypass {
		st.Bypassed++
		if f.Kind.IsHead() {
			st.HeadBypassed++
		}
	}
	if rs := r.rs; rs != nil {
		rs.Traversals++
		rs.OutSends[out]++
		ps := &rs.In[in]
		ps.Traversals++
		if f.Kind.IsHead() {
			rs.HeadTravs++
		}
		if viaPC {
			rs.PCReused++
			ps.PCReused++
			if ip.pc.Speculative {
				rs.SpecReused++
			}
			if f.Kind.IsHead() {
				rs.HeadReused++
			}
		}
		if bypass {
			rs.Bypassed++
			ps.Bypassed++
			if f.Kind.IsHead() {
				rs.HeadBypassed++
			}
		}
	}
	if r.tr != nil {
		kind := obs.Traverse
		if bypass {
			kind = obs.Bypass
		}
		r.tr.Record(obs.Event{
			Cycle: int64(now), Kind: kind, Packet: f.Packet.ID, Seq: int32(f.Seq),
			Src: int32(f.Packet.Src), Dst: int32(f.Packet.Dst),
			Loc: int32(r.ID), In: int32(in), VC: int32(vc), Out: int32(out),
		})
	}

	// Pseudo-circuit refresh: every traversal (re)writes the register
	// (§3.B) and claims the output, terminating any other circuit on it.
	if r.cfg.Opts.Pseudo {
		if !ip.pc.Match(vc, out) {
			st.PCCreated++
			if r.rs != nil {
				r.rs.PCCreated++
			}
		}
		for j, other := range r.in {
			if j != in && other.pc.Valid && other.pc.OutPort == out {
				other.pc.Terminate()
				st.PCTerminated++
				if r.rs != nil {
					r.rs.PCTerminated++
				}
			}
		}
		ip.pc.Set(vc, out)
		ip.hist.Record(vc, out)
		op.hist.Record(in)
	}

	// Flow control and lookahead state for the next hop.
	f.VC = vs.outVC
	if !op.ejection {
		op.credits[vs.outVC]--
		if op.credits[vs.outVC] < 0 {
			panic(fmt.Sprintf("router %d: negative credit on out %d vc %d", r.ID, out, vs.outVC))
		}
	}
	if f.Kind.IsHead() {
		f.Packet.Hops++
	}
	if f.Kind.IsTail() {
		if !op.ejection {
			op.vcBusy[vs.outVC] = false
		}
		vs.reset()
	}
	// The buffer slot (real or bypassed) is free again: return the credit.
	r.outSends[out]++
	r.cfg.Credit(r.ID, in, vc)
	r.cfg.Send(r.ID, out, f)
}

// OutputSends returns per-output-port flit counts over the router's
// lifetime (link-utilization diagnostics).
func (r *Router) OutputSends() []uint64 { return r.outSends }

// FaultContext parameterizes a fault storm sweep over one router. All
// callbacks run on the kernel's main goroutine.
type FaultContext struct {
	// RouterDead marks the router itself as failed: every held packet is
	// killed and every pseudo-circuit cleared.
	RouterDead bool
	// LinkDead reports whether an output port's link is unusable.
	LinkDead func(out int) bool
	// DstDead reports whether a destination node's home router is dead
	// (such packets cannot be delivered and are killed immediately).
	DstDead func(dst int) bool
	// Salvage enables the reroute drop policy: a committed packet whose
	// header is still buffered at this router is re-routed instead of
	// killed when its output link dies.
	Salvage bool
	// Reroute returns the detour output port for (dst, class).
	Reroute func(dst, class int) int
	// Kill reports a victim packet; the network dedups repeated reports of
	// the same packet and performs the actual purge.
	Kill func(p *flit.Packet)
	// Salvaged reports a committed packet re-routed in place.
	Salvaged func(p *flit.Packet)
	// PCTerm is called once per pseudo-circuit torn down by the fault.
	PCTerm func()
}

// FaultScan applies a fault transition to this router: pseudo-circuits
// crossing dead links are cleared together with the history that could
// revive them, packets that can no longer make progress are reported to
// fc.Kill, and survivors whose committed-but-unallocated output died are
// re-routed. Called between cycles from the kernel's main phase, so staged
// arrivals are always nil and scratch state is idle.
func (r *Router) FaultScan(fc *FaultContext) {
	for _, in := range r.in {
		if in.pc.Valid && (fc.RouterDead || fc.LinkDead(in.pc.OutPort)) {
			in.hist.Drop(in.pc.OutPort)
			in.pc.Clear()
			fc.PCTerm()
		}
		for _, vs := range in.vcs {
			for _, f := range vs.buf {
				if fc.RouterDead || fc.DstDead(f.Packet.Dst) {
					fc.Kill(f.Packet)
				}
			}
			if !vs.active {
				continue
			}
			switch {
			case fc.RouterDead || fc.DstDead(vs.dst):
				fc.Kill(vs.pkt)
			case vs.outPort < len(r.out) && !r.out[vs.outPort].ejection && fc.LinkDead(vs.outPort):
				if vs.outVC < 0 {
					// Not yet committed to an output VC: detour in place.
					vs.outPort = fc.Reroute(vs.dst, vs.class)
				} else if fc.Salvage && len(vs.buf) > 0 && vs.buf[0].Kind.IsHead() {
					// Committed but the whole packet is still here: release
					// the allocation and detour.
					r.out[vs.outPort].vcBusy[vs.outVC] = false
					vs.outVC = -1
					vs.outPort = fc.Reroute(vs.dst, vs.class)
					fc.Salvaged(vs.pkt)
				} else {
					// Partially forwarded (or salvage disabled): the wormhole
					// spans the dead link and cannot be reassembled.
					fc.Kill(vs.pkt)
				}
			}
		}
	}
}

// FaultStale reports every packet resident in this router whose header
// entered the network before cutoff. Fault detours are not covered by the
// routing algorithm's turn restrictions, so a storm can leave a small set of
// packets in a buffer-dependency cycle; when other traffic keeps flowing, no
// global standstill ever appears, and the cycle throttles everything routed
// through it indefinitely. The stale sweep is the bounded-wait escape: any
// packet resident that long is either wedged or queued behind a wedge, and
// killing it frees the cycle. Residence is measured from NetStart (network
// entry), not Injected (source-queue entry): time spent waiting at the
// source holds no network resources and must not count against the bound.
// Called between cycles from the kernel's main phase.
func (r *Router) FaultStale(cutoff sim.Cycle, kill func(p *flit.Packet)) {
	for _, in := range r.in {
		for _, vs := range in.vcs {
			for _, f := range vs.buf {
				if f.Packet.NetStart < cutoff {
					kill(f.Packet)
				}
			}
			if vs.active && vs.pkt.NetStart < cutoff {
				kill(vs.pkt)
			}
		}
	}
}

// FaultPurge removes every flit of packet p from this router: buffered
// flits are unlinked (their buffer-slot credit is returned upstream through
// the normal credit path, then drop is called so the network can recycle
// and account them) and the VC owned by p is released. Reservations held
// for p skip harmlessly next cycle because the VC's outVC resets. Called
// from the kernel's main phase only.
func (r *Router) FaultPurge(p *flit.Packet, drop func(f *flit.Flit)) {
	for i, in := range r.in {
		for v, vs := range in.vcs {
			for k := 0; k < len(vs.buf); {
				if vs.buf[k].Packet != p {
					k++
					continue
				}
				f := vs.buf[k]
				vs.buf = append(vs.buf[:k], vs.buf[k+1:]...)
				vs.at = append(vs.at[:k], vs.at[k+1:]...)
				r.cfg.Credit(r.ID, i, v)
				drop(f)
			}
			if vs.active && vs.pkt == p {
				if vs.outVC >= 0 && !r.out[vs.outPort].ejection {
					r.out[vs.outPort].vcBusy[vs.outVC] = false
				}
				vs.reset()
			}
		}
	}
}

// Quiescent reports whether the router holds no flits and no pending grants
// (used for drain-based termination and invariant tests).
func (r *Router) Quiescent() bool {
	if len(r.res) != 0 {
		return false
	}
	for _, in := range r.in {
		if in.arrival != nil {
			return false
		}
		for _, vs := range in.vcs {
			if len(vs.buf) != 0 || vs.active {
				return false
			}
		}
	}
	return true
}

// CheckInvariants panics if internal invariants are violated; tests call it
// every cycle.
func (r *Router) CheckInvariants() {
	seenOut := make(map[int]int)
	for i, in := range r.in {
		if in.pc.Valid {
			if prev, ok := seenOut[in.pc.OutPort]; ok {
				panic(fmt.Sprintf("router %d: inputs %d and %d both hold a pseudo-circuit to output %d", r.ID, prev, i, in.pc.OutPort))
			}
			seenOut[in.pc.OutPort] = i
		}
		for v, vs := range in.vcs {
			if len(vs.buf) != len(vs.at) {
				panic(fmt.Sprintf("router %d: buffer/timestamp desync at in %d vc %d", r.ID, i, v))
			}
			if len(vs.buf) > r.cfg.BufDepth {
				panic(fmt.Sprintf("router %d: buffer overflow at in %d vc %d", r.ID, i, v))
			}
		}
	}
	for o, op := range r.out {
		if op.ejection {
			continue
		}
		for v, c := range op.credits {
			if c < 0 || c > r.cfg.BufDepth {
				panic(fmt.Sprintf("router %d: credit %d out of range on out %d vc %d", r.ID, c, o, v))
			}
		}
	}
}

// PCValid reports whether input port in currently holds a valid
// pseudo-circuit, and to which output (testing hook).
func (r *Router) PCValid(in int) (out int, valid bool) {
	pc := &r.in[in].pc
	return pc.OutPort, pc.Valid
}

// BufferedFlits returns the number of flits buffered across all VCs of input
// port in (testing hook).
func (r *Router) BufferedFlits(in int) int {
	n := 0
	for _, vs := range r.in[in].vcs {
		n += len(vs.buf)
	}
	return n
}
