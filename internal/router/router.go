// Package router implements the cycle-accurate pipelined virtual-channel
// router the paper builds on (§3.A, Peh & Dally's speculative router) and
// integrates the pseudo-circuit datapath from internal/core.
//
// Pipeline (paper Fig. 6; one stage per cycle, LT handled by the network):
//
//	baseline flit:            BW | VA+SA (speculative, retried) | ST | LT
//	pseudo-circuit hit:       BW | PC-compare + ST              | LT
//	hit with buffer bypass:   PC-compare + ST                   | LT
//
// Within a simulated cycle the router processes, in order:
//
//  1. ST for switch-arbitration grants issued last cycle.
//  2. Head-of-VC bookkeeping and VC allocation (VA), performed independently
//     of SA so pseudo-circuit flits can traverse while VA proceeds (§3.B).
//  3. Classification of head flits into pseudo-circuit candidates and SA
//     requests; pseudo-circuit traversal (PC + ST) for candidates no SA
//     request conflicts with (starvation freedom, §3.C).
//  4. Switch arbitration (separable, round-robin, credit-gated); grants
//     reserve the crossbar for next cycle, terminate conflicting
//     pseudo-circuits, and cost arbiter energy.
//  5. Pseudo-circuit maintenance: credit-exhaustion termination (§3.C) and
//     speculation (§4.A).
//  6. Arrivals: buffer write, or buffer bypass + ST when a connected
//     pseudo-circuit matches and the VC buffer is empty (§4.B).
//
// All cross-router communication (flits, credits) is mediated by callbacks
// with at least one cycle of latency, so routers may tick in any order.
//
// Hot-path state lives in the structure-of-arrays core.LaneStore owned by
// the network (DESIGN.md §17): per-(port, vc) lane metadata, the
// pseudo-circuit register file, per-port occupancy masks, and per-output
// credits are contiguous slices the phases below walk linearly, with the
// occupancy masks letting every scan skip empty lanes without touching them.
// Flit and packet pointers stay in router-local flat arrays (same layout,
// router-owned) so core carries no dependency on the data plane. All
// mutations go through the lane helper methods, which keep the derived masks
// and the PCByOut reverse index in lockstep with the ground-truth arrays —
// CheckInvariants re-derives and verifies them.
package router

import (
	"fmt"
	"math/bits"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/energy"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/obs"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/stats"
	"pseudocircuit/internal/vcalloc"
)

// SendFunc delivers a flit leaving output port out of router id; the network
// resolves the link, performs lookahead routing, and schedules the arrival.
type SendFunc func(id, out int, f *flit.Flit)

// CreditFunc returns one credit for (input port in, VC vc) of router id to
// whatever feeds that port (upstream router or NI), with one cycle latency.
type CreditFunc func(id, in, vc int)

// Config carries the parameters shared by every router in a network.
type Config struct {
	NumVCs   int
	BufDepth int
	Opts     core.Options
	Alloc    *vcalloc.Allocator
	Energy   *energy.Meter
	Stats    *stats.Network
	Send     SendFunc
	Credit   CreditFunc
	// Lanes is the network-owned structure-of-arrays hot-path store shared by
	// every router (and every shard — shards touch disjoint index ranges).
	// nil builds a private single-router store (unit tests).
	Lanes *core.LaneStore
	// Reg enables per-router/per-port counters when non-nil (observation
	// only; increments mirror the Stats sites exactly).
	Reg *stats.Registry
	// Trace enables flit-lifecycle event recording when non-nil.
	Trace *obs.Tracer
	// LinkUp reports whether output port out of router id is currently
	// usable; nil means no fault schedule is configured (always up). Fault
	// state changes only in the kernel's main phase, so the callback is
	// read-only during router ticks and safe to call from shard workers.
	LinkUp func(id, out int) bool
	// Reroute returns a detour output port at router id for a packet to
	// dst with routing class class whose nominal port is dead (fault-aware
	// routing); nil when no fault schedule is configured.
	Reroute func(id, dst, class int) int
}

// reservation is a switch-arbitration grant: flit at (in, vc) traverses to
// out next cycle.
type reservation struct {
	in, vc, out int
	f           *flit.Flit
}

type saRequest struct {
	in, vc, out int
}

// Router is one pipelined router instance. All per-(port, vc) state lives in
// subslices of the shared core.LaneStore, re-based so local indices are
// in*V+vc (input lanes) and out*V+vc (output lanes); see the package comment
// for the layout.
type Router struct {
	ID  int
	cfg *Config

	nIn, nOut int
	V, D      int // NumVCs, BufDepth

	// Input-lane views (len nIn*V; buffer slots len nIn*V*D).
	bufLen  []int
	activeL []bool
	outPort []int
	outVC   []int
	classL  []int
	srcL    []int
	dstL    []int
	at      []int64
	// Router-local flat pointer arrays, same indexing as the store.
	buf []*flit.Flit // lane*D + k
	pkt []*flit.Packet

	// Input-port views (len nIn).
	pcInVC  []int
	pcOut   []int
	pcValid []bool
	pcSpec  []bool
	occ     []uint64
	act     []uint64

	// Output-lane and output-port views.
	credits   []int // len nOut*V
	vcBusy    []bool
	histIn    []int // len nOut
	histValid []bool
	pcByOut   []int

	// Router-local per-port state off the comparator path.
	hist     []core.InputHistory // speculation history (depth N extension)
	arrival  []*flit.Flit        // staged by Deliver for this cycle
	rrVC     []int               // SA input-arbitration round-robin pointers
	lastOut  []int               // Fig. 1 temporal-locality measurement
	rrIn     []int               // SA output-arbitration round-robin pointers
	ejection []bool

	// Derived masks and counters that keep the per-cycle maintenance scans
	// work-proportional; all are redundant with the views above and verified
	// by CheckInvariants.
	va       []uint64 // per input port: bit vc ⇔ active lane awaiting VA (outVC < 0)
	pcMask   uint64   // bit in ⇔ pcValid[in]
	heldMask uint64   // bit out ⇔ pcByOut[out] >= 0
	histMask uint64   // bit out ⇔ histValid[out]
	outCred  []int    // per output port: count of VCs with credits > 0
	headAt   []int64  // per input lane: arrival cycle of the head flit (= At[l*D])
	headHead []bool   // per input lane: head flit is a header
	vaNow    int64    // cycle vaStart was computed for (-2 = never)
	vaStart  int      // cached int(vaNow) % nIn, advanced incrementally

	res     []reservation // STs to execute this cycle
	nextRes []reservation // grants made this cycle

	// Per-tick scratch, reused across cycles.
	busyIn  uint64 // input ports whose crossbar row is in use this cycle
	busyOut uint64 // output ports whose crossbar column is in use this cycle
	arrMask uint64 // input ports with a staged arrival this cycle
	reqs    []saRequest
	chosen  []int // per input port: index into reqs selected by input arbitration, -1 none
	pcCand  []int // per input port: vc of pseudo-circuit candidate, -1 none

	// outSends counts flits per output port over the router's lifetime
	// (link-utilization diagnostics).
	outSends []uint64

	// rs is this router's row in the per-router registry (nil when per-router
	// instrumentation is off) and tr the lifecycle tracer (nil when tracing
	// is off); both are observation-only and nil in the default configuration,
	// so the hot path pays one predictable branch each.
	rs *stats.RouterStats
	tr *obs.Tracer

	// worked records that this tick mutated router state beyond the buffers
	// the active-set scan below can see: a crossbar traversal (which
	// rewrites pseudo-circuit registers and histories even when the flit
	// leaves the router empty) or a pseudo-circuit termination/speculation.
	// Any such event may enable further work next cycle, so the router must
	// stay scheduled one more tick to reach its fixed point.
	worked bool
}

// New constructs a router with the given input and output radix. Ejection
// output ports (terminal side) must be marked afterwards with MarkEjection.
func New(id, inPorts, outPorts int, cfg *Config) *Router {
	if cfg.NumVCs < 1 || cfg.BufDepth < 1 {
		panic("router: NumVCs and BufDepth must be positive")
	}
	if err := cfg.Opts.Validate(); err != nil {
		panic(err)
	}
	ls := cfg.Lanes
	inBase, outBase := 0, 0
	if ls == nil {
		ls = core.NewLaneStore(cfg.NumVCs, cfg.BufDepth, []int{inPorts}, []int{outPorts})
	} else {
		inBase, outBase = ls.InBase[id], ls.OutBase[id]
		if ls.InBase[id+1]-inBase != inPorts || ls.OutBase[id+1]-outBase != outPorts {
			panic(fmt.Sprintf("router %d: radix %d/%d disagrees with the lane store's %d/%d",
				id, inPorts, outPorts, ls.InBase[id+1]-inBase, ls.OutBase[id+1]-outBase))
		}
		if ls.NumVCs != cfg.NumVCs || ls.BufDepth != cfg.BufDepth {
			panic(fmt.Sprintf("router %d: VC/depth %d/%d disagrees with the lane store's %d/%d",
				id, cfg.NumVCs, cfg.BufDepth, ls.NumVCs, ls.BufDepth))
		}
	}
	V, D := cfg.NumVCs, cfg.BufDepth
	r := &Router{
		ID:   id,
		cfg:  cfg,
		nIn:  inPorts,
		nOut: outPorts,
		V:    V,
		D:    D,

		bufLen:  ls.BufLen[inBase*V : (inBase+inPorts)*V],
		activeL: ls.Active[inBase*V : (inBase+inPorts)*V],
		outPort: ls.OutPort[inBase*V : (inBase+inPorts)*V],
		outVC:   ls.OutVC[inBase*V : (inBase+inPorts)*V],
		classL:  ls.Class[inBase*V : (inBase+inPorts)*V],
		srcL:    ls.Src[inBase*V : (inBase+inPorts)*V],
		dstL:    ls.Dst[inBase*V : (inBase+inPorts)*V],
		at:      ls.At[inBase*V*D : (inBase+inPorts)*V*D],
		buf:     make([]*flit.Flit, inPorts*V*D),
		pkt:     make([]*flit.Packet, inPorts*V),

		pcInVC:  ls.PCInVC[inBase : inBase+inPorts],
		pcOut:   ls.PCOut[inBase : inBase+inPorts],
		pcValid: ls.PCValid[inBase : inBase+inPorts],
		pcSpec:  ls.PCSpec[inBase : inBase+inPorts],
		occ:     ls.Occ[inBase : inBase+inPorts],
		act:     ls.Act[inBase : inBase+inPorts],

		credits:   ls.Credits[outBase*V : (outBase+outPorts)*V],
		vcBusy:    ls.VCBusy[outBase*V : (outBase+outPorts)*V],
		histIn:    ls.HistIn[outBase : outBase+outPorts],
		histValid: ls.HistValid[outBase : outBase+outPorts],
		pcByOut:   ls.PCByOut[outBase : outBase+outPorts],

		hist:     make([]core.InputHistory, inPorts),
		arrival:  make([]*flit.Flit, inPorts),
		rrVC:     make([]int, inPorts),
		lastOut:  make([]int, inPorts),
		rrIn:     make([]int, outPorts),
		ejection: make([]bool, outPorts),

		chosen:   make([]int, inPorts),
		pcCand:   make([]int, inPorts),
		va:       make([]uint64, inPorts),
		outCred:  make([]int, outPorts),
		headAt:   make([]int64, inPorts*V),
		headHead: make([]bool, inPorts*V),
		vaNow:    -2,
		outSends: make([]uint64, outPorts),
		rs:       cfg.Reg.Attach(id, inPorts, outPorts),
		tr:       cfg.Trace,
	}
	for i := 0; i < inPorts; i++ {
		r.hist[i] = core.NewInputHistory(cfg.Opts.SpecHistoryDepth)
		r.lastOut[i] = -1
	}
	// Lane sentinels: a fresh store arrives pre-initialized, but a store
	// region may also be re-sliced by tests; normalize defensively.
	for l := range r.outPort {
		if !r.activeL[l] && r.bufLen[l] == 0 {
			r.outPort[l], r.outVC[l] = -1, -1
		}
	}
	for o := 0; o < outPorts; o++ {
		for vc := 0; vc < V; vc++ {
			if r.credits[o*V+vc] > 0 {
				r.outCred[o]++
			}
		}
	}
	return r
}

// MarkEjection flags output port out as a terminal (ejection) port: VC state
// and credits are unconstrained because the receiver NI sinks flits at link
// rate.
func (r *Router) MarkEjection(out int) { r.ejection[out] = true }

// --- lane helpers: the accessor seam ----------------------------------------
//
// Every mutation of lane ground truth flows through these, keeping the
// occupancy masks and PCByOut consistent by construction.

// pushBuf appends a flit to lane (in, vc) and returns the new depth.
func (r *Router) pushBuf(in, vc int, f *flit.Flit, now sim.Cycle) int {
	l := in*r.V + vc
	n := r.bufLen[l]
	b := l*r.D + n
	r.buf[b] = f
	r.at[b] = int64(now)
	r.bufLen[l] = n + 1
	r.occ[in] |= 1 << uint(vc)
	if n == 0 {
		r.headAt[l] = int64(now)
		r.headHead[l] = f.Kind.IsHead()
	}
	return n + 1
}

// popHead removes the head flit of lane (in, vc), paying buffer-read energy.
// The shift is a manual loop: buffers are a handful of flits deep, where
// memmove call overhead exceeds the moves themselves.
func (r *Router) popHead(in, vc int) {
	l := in*r.V + vc
	b := l * r.D
	n := r.bufLen[l]
	for k := b; k < b+n-1; k++ {
		r.buf[k] = r.buf[k+1]
		r.at[k] = r.at[k+1]
	}
	r.bufLen[l] = n - 1
	if n == 1 {
		r.occ[in] &^= 1 << uint(vc)
	} else {
		r.headAt[l] = r.at[b]
		r.headHead[l] = r.buf[b].Kind.IsHead()
	}
	r.cfg.Energy.AddRead()
}

// removeBufAt unlinks buffer slot k of lane (in, vc) (fault purge only).
func (r *Router) removeBufAt(in, vc, k int) {
	l := in*r.V + vc
	b := l * r.D
	n := r.bufLen[l]
	for j := b + k; j < b+n-1; j++ {
		r.buf[j] = r.buf[j+1]
		r.at[j] = r.at[j+1]
	}
	r.bufLen[l] = n - 1
	if n == 1 {
		r.occ[in] &^= 1 << uint(vc)
	} else if k == 0 {
		r.headAt[l] = r.at[b]
		r.headHead[l] = r.buf[b].Kind.IsHead()
	}
}

// resetLane releases lane (in, vc) after a tail traversal or a purge.
func (r *Router) resetLane(in, vc int) {
	l := in*r.V + vc
	r.activeL[l] = false
	r.outPort[l] = -1
	r.outVC[l] = -1
	r.pkt[l] = nil
	r.act[in] &^= 1 << uint(vc)
	r.va[in] &^= 1 << uint(vc)
}

// pcMatch is the pseudo-circuit comparator (Fig. 3): may a flit on input VC
// vc destined for output port out reuse input port in's circuit?
func (r *Router) pcMatch(in, vc, out int) bool {
	return r.pcValid[in] && r.pcInVC[in] == vc && r.pcOut[in] == out
}

// pcTerminate disconnects input port in's circuit, clearing the valid bit
// without touching the registers (§3.C). Caller has checked pcValid[in].
func (r *Router) pcTerminate(in int) {
	r.pcValid[in] = false
	r.pcMask &^= 1 << uint(in)
	out := r.pcOut[in]
	r.pcByOut[out] = -1
	r.heldMask &^= 1 << uint(out)
}

// pcSet records a fresh connection after a crossbar traversal, making the
// circuit valid and non-speculative.
func (r *Router) pcSet(in, vc, out int) {
	if r.pcValid[in] && r.pcOut[in] != out {
		r.pcByOut[r.pcOut[in]] = -1
		r.heldMask &^= 1 << uint(r.pcOut[in])
	}
	r.pcInVC[in] = vc
	r.pcOut[in] = out
	r.pcValid[in] = true
	r.pcSpec[in] = false
	r.pcMask |= 1 << uint(in)
	r.pcByOut[out] = in
	r.heldMask |= 1 << uint(out)
}

// pcSetSpeculative connects input port in's register to (vc, out)
// speculatively (§4.A); the caller guarantees the register is invalid and the
// output holds no circuit.
func (r *Router) pcSetSpeculative(in, vc, out int) {
	if r.pcValid[in] {
		panic("router: speculative connect on a valid pseudo-circuit")
	}
	r.pcInVC[in] = vc
	r.pcOut[in] = out
	r.pcValid[in] = true
	r.pcSpec[in] = true
	r.pcMask |= 1 << uint(in)
	r.pcByOut[out] = in
	r.heldMask |= 1 << uint(out)
}

// pcClear tears input port in's circuit down completely (fault teardown):
// valid bit and both registers reset, so neither speculation path can
// reconnect it — the crossbar state it describes may be wrong when the link
// returns.
func (r *Router) pcClear(in int) {
	if r.pcValid[in] {
		r.pcByOut[r.pcOut[in]] = -1
		r.heldMask &^= 1 << uint(r.pcOut[in])
	}
	r.pcInVC[in] = -1
	r.pcOut[in] = -1
	r.pcValid[in] = false
	r.pcSpec[in] = false
	r.pcMask &^= 1 << uint(in)
}

// -----------------------------------------------------------------------------

// Deliver stages a flit arriving on input port in this cycle. The network
// calls it before Tick; at most one flit per input port per cycle (link
// bandwidth).
func (r *Router) Deliver(in int, f *flit.Flit) {
	if r.arrival[in] != nil {
		panic(fmt.Sprintf("router %d: two flits on input port %d in one cycle", r.ID, in))
	}
	r.arrival[in] = f
	r.arrMask |= 1 << uint(in)
}

// DeliverCredit returns one credit for (output port out, VC vc); the network
// calls it when the downstream hop frees a buffer slot.
func (r *Router) DeliverCredit(out, vc int) {
	m := out*r.V + vc
	r.credits[m]++
	if r.credits[m] == 1 {
		r.outCred[out]++
	}
	if r.credits[m] > r.D {
		panic(fmt.Sprintf("router %d: credit overflow on out %d vc %d", r.ID, out, vc))
	}
}

func (r *Router) hasCredit(out, vc int) bool {
	return r.ejection[out] || r.credits[out*r.V+vc] > 0
}

// anyCredit reports whether any VC of output port out has credit; the
// outCred counters make it O(1).
func (r *Router) anyCredit(out int) bool {
	return r.ejection[out] || r.outCred[out] > 0
}

// Tick advances the router by one cycle. It reports whether the router must
// be ticked again next cycle; false means this tick was a no-op apart from
// clearing scratch state and, absent new deliveries, every later tick would
// be too (the active-set fixed point).
func (r *Router) Tick(now sim.Cycle) bool {
	r.worked = false
	r.executeReservations(now)
	r.admitHeads()
	r.allocateVCs(now)
	r.classify(now)
	r.pcTraversals(now)
	r.switchArbitrate(now)
	r.maintainPseudoCircuits()
	r.processArrivals(now)
	r.res, r.nextRes = r.nextRes, r.res[:0]
	return r.worked || r.holdsFlits()
}

// holdsFlits reports whether any state demands a tick next cycle: pending
// switch traversals, buffered flits, or an in-flight packet owning a VC. The
// occupancy masks make this an O(ports) word scan.
func (r *Router) holdsFlits() bool {
	if len(r.res) > 0 {
		return true
	}
	for i := 0; i < r.nIn; i++ {
		if r.occ[i]|r.act[i] != 0 {
			return true
		}
	}
	return false
}

// executeReservations performs ST for last cycle's SA grants (phase 1) and
// computes this cycle's crossbar busy sets.
func (r *Router) executeReservations(now sim.Cycle) {
	r.busyIn, r.busyOut = 0, 0
	for _, res := range r.res {
		l := res.in*r.V + res.vc
		// Speculative SA: a grant issued in parallel with a failed VA is
		// void (paper §3.A); the flit retries.
		if r.outVC[l] < 0 {
			continue
		}
		// A fault storm may have killed or salvaged the VC since the grant
		// (which also resets outVC, caught above); this guards the port too.
		if r.linkDead(res.out) {
			continue
		}
		// Credits may have been drained by a pseudo-circuit traversal after
		// the request was credit-checked; re-verify and retry on failure.
		if !r.hasCredit(res.out, r.outVC[l]) {
			continue
		}
		if r.bufLen[l] == 0 || r.buf[l*r.D] != res.f {
			panic(fmt.Sprintf("router %d: reservation lost its flit at in %d vc %d", r.ID, res.in, res.vc))
		}
		r.popHead(res.in, res.vc)
		r.traverse(now, res.in, res.vc, res.out, res.f, false, false)
		r.busyIn |= 1 << uint(res.in)
		r.busyOut |= 1 << uint(res.out)
	}
}

// admitHeads activates the packet whose header flit has reached the head of
// an idle VC, latching its lookahead route (phase 2a). The scan walks only
// lanes with buffered flits and no active packet (occ &^ act).
func (r *Router) admitHeads() {
	for i := 0; i < r.nIn; i++ {
		for m := r.occ[i] &^ r.act[i]; m != 0; m &= m - 1 {
			vc := bits.TrailingZeros64(m)
			h := r.buf[(i*r.V+vc)*r.D]
			if !h.Kind.IsHead() {
				panic(fmt.Sprintf("router %d: non-head flit %v at head of idle VC", r.ID, h))
			}
			r.admit(i, vc, h)
		}
	}
}

func (r *Router) admit(in, vc int, h *flit.Flit) {
	l := in*r.V + vc
	r.activeL[l] = true
	r.act[in] |= 1 << uint(vc)
	r.va[in] |= 1 << uint(vc)
	r.outPort[l] = h.NextOut
	r.outVC[l] = -1
	r.classL[l] = h.RouteClass
	r.srcL[l] = h.Packet.Src
	r.dstL[l] = h.Packet.Dst
	r.pkt[l] = h.Packet
	if h.NextOut < 0 || h.NextOut >= r.nOut {
		panic(fmt.Sprintf("router %d: header %v carries invalid output port %d", r.ID, h, h.NextOut))
	}
	// Lookahead routing computed NextOut at the previous hop; a fault storm
	// between then and now may have killed the link. Re-route at admission
	// so the stale lookahead cannot commit the packet to a dead port.
	if r.cfg.Reroute != nil && r.outPort[l] < 4 && r.linkDead(r.outPort[l]) {
		r.outPort[l] = r.cfg.Reroute(r.ID, r.dstL[l], r.classL[l])
	}
}

// linkDead reports whether output port out is currently unusable under the
// configured fault schedule; always false without one.
func (r *Router) linkDead(out int) bool {
	return r.cfg.LinkUp != nil && !r.cfg.LinkUp(r.ID, out)
}

// allocateVCs performs VA for admitted packets without an output VC
// (phase 2b). VA is independent of SA, so it proceeds for pseudo-circuit
// flits too. Inputs are scanned from a rotating offset for fairness; within a
// port only lanes still awaiting VA with a buffered flit (va & occ) are
// visited — a router full of streaming bodies skips the phase entirely.
func (r *Router) allocateVCs(now sim.Cycle) {
	n := r.nIn
	// start = int(now) % n, advanced incrementally: routers on consecutive
	// active cycles pay one wrap test instead of an integer division.
	start := r.vaStart + int(int64(now)-r.vaNow)
	if start >= n || start < 0 {
		start = int(int64(now) % int64(n))
	}
	r.vaNow, r.vaStart = int64(now), start
	for k := 0; k < n; k++ {
		i := start + k
		if i >= n {
			i -= n
		}
		for m := r.va[i] & r.occ[i]; m != 0; m &= m - 1 {
			vc := bits.TrailingZeros64(m)
			if !r.headHead[i*r.V+vc] {
				continue // header already traversed; body flits keep the VC
			}
			r.tryVA(i, vc)
		}
	}
}

// tryVA attempts VC allocation for the packet owning lane (in, vc); it
// returns true on success.
func (r *Router) tryVA(in, vc int) bool {
	l := in*r.V + vc
	out := r.outPort[l]
	if !r.ejection[out] && r.linkDead(out) {
		return false // dead link: hold the packet until recovery or reroute
	}
	var v int
	if r.ejection[out] {
		// The receiver NI drains every VC; allocate within the class.
		lo, _ := r.cfg.Alloc.ClassRange(r.classL[l])
		v = lo
	} else {
		v = r.cfg.Alloc.Pick(r.srcL[l], r.dstL[l], r.classL[l],
			r.vcBusy[out*r.V:(out+1)*r.V], r.credits[out*r.V:(out+1)*r.V])
		if v < 0 {
			return false
		}
		r.vcBusy[out*r.V+v] = true
	}
	r.outVC[l] = v
	r.va[in] &^= 1 << uint(vc)
	return true
}

// classify splits eligible head flits into pseudo-circuit candidates and SA
// requests (phase 3a). A flit is eligible once it has spent a full cycle in
// the buffer (BW stage). One linear pass per router: the per-port occupancy
// masks select the populated lanes and the pseudo-circuit comparator inputs
// (pcInVC/pcOut/pcValid) are read from the contiguous register file, so the
// comparator check is a batched walk across input ports rather than a
// per-object pointer chase.
func (r *Router) classify(now sim.Cycle) {
	r.reqs = r.reqs[:0]
	pseudo := r.cfg.Opts.Pseudo
	for i := 0; i < r.nIn; i++ {
		r.pcCand[i] = -1
		for m := r.act[i] & r.occ[i]; m != 0; m &= m - 1 {
			vc := bits.TrailingZeros64(m)
			l := i*r.V + vc
			if r.headAt[l] >= int64(now) {
				continue // still in BW this cycle
			}
			out := r.outPort[l]
			if r.linkDead(out) {
				continue // dead link: stall until recovery or the storm's reroute
			}
			if r.outVC[l] < 0 {
				// Header whose VA failed: issue a speculative SA request
				// anyway (grant will be void), modelling the speculative
				// pipeline's wasted grants.
				r.reqs = append(r.reqs, saRequest{in: i, vc: vc, out: out})
				continue
			}
			if !r.hasCredit(out, r.outVC[l]) {
				if r.rs != nil {
					r.rs.In[i].CreditStalls++
				}
				continue // credit-gated: no request without credit
			}
			// A flit matching the input port's connected pseudo-circuit
			// rides it instead of re-arbitrating, even if the crossbar port
			// is occupied this cycle (back-to-back streaming: it traverses
			// next cycle, still without SA).
			if pseudo && r.pcCand[i] < 0 && r.pcMatch(i, vc, out) {
				r.pcCand[i] = vc
				continue
			}
			r.reqs = append(r.reqs, saRequest{in: i, vc: vc, out: out})
		}
	}
}

// pcTraversals performs PC-compare + ST for pseudo-circuit candidates
// (phase 3b). With the paper's starvation-free policy a candidate defers to
// any SA request claiming either of its ports.
func (r *Router) pcTraversals(now sim.Cycle) {
	for i := 0; i < r.nIn; i++ {
		v := r.pcCand[i]
		if v < 0 {
			continue
		}
		l := i*r.V + v
		out := r.outPort[l]
		if (r.busyIn>>uint(i))&1 != 0 || (r.busyOut>>uint(out))&1 != 0 {
			continue // crossbar port in use this cycle; ride the circuit next cycle
		}
		if r.cfg.Opts.PCDefersToSA && r.saClaims(i, out) {
			continue
		}
		f := r.buf[l*r.D]
		r.popHead(i, v)
		r.traverse(now, i, v, out, f, true, false)
		r.busyIn |= 1 << uint(i)
		r.busyOut |= 1 << uint(out)
	}
}

// saClaims reports whether any SA request this cycle claims input port in or
// output port out.
func (r *Router) saClaims(in, out int) bool {
	for _, q := range r.reqs {
		if q.in == in || q.out == out {
			return true
		}
	}
	return false
}

// switchArbitrate runs the separable round-robin switch allocator
// (phase 4): one request per input port, then one input per output port.
// Grants reserve the crossbar for next cycle and terminate conflicting
// pseudo-circuits. With no requests the whole phase is skipped — the
// arbitration scans below only visit inputs that won input arbitration
// (chosenMask), so an idle router pays nothing here.
func (r *Router) switchArbitrate(now sim.Cycle) {
	if len(r.reqs) == 0 {
		return
	}
	// Input arbitration: choose one requesting VC per input port.
	var chosenMask uint64
	for qi, q := range r.reqs {
		if chosenMask&(1<<uint(q.in)) == 0 {
			chosenMask |= 1 << uint(q.in)
			r.chosen[q.in] = qi
			continue
		}
		// Round-robin preference: smallest (vc - rrVC) mod V wins.
		cur := r.reqs[r.chosen[q.in]]
		if rrDist(q.vc, r.rrVC[q.in], r.V) < rrDist(cur.vc, r.rrVC[q.in], r.V) {
			r.chosen[q.in] = qi
		}
	}
	// Output arbitration among the per-input winners, visiting only outputs
	// they actually request.
	var outMask uint64
	for m := chosenMask; m != 0; m &= m - 1 {
		outMask |= 1 << uint(r.reqs[r.chosen[bits.TrailingZeros64(m)]].out)
	}
	for om := outMask; om != 0; om &= om - 1 {
		o := bits.TrailingZeros64(om)
		best := -1
		for m := chosenMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if r.reqs[r.chosen[i]].out != o {
				continue
			}
			if best < 0 || rrDist(i, r.rrIn[o], r.nIn) < rrDist(best, r.rrIn[o], r.nIn) {
				best = i
			}
		}
		r.grant(now, r.reqs[r.chosen[best]])
	}
}

func (r *Router) grant(now sim.Cycle, q saRequest) {
	r.cfg.Energy.AddArbitration()
	r.cfg.Stats.SAGrants++
	f := r.buf[(q.in*r.V+q.vc)*r.D]
	if r.rs != nil {
		r.rs.SAGrants++
	}
	if r.tr != nil {
		r.tr.Record(obs.Event{
			Cycle: int64(now), Kind: obs.SAGrant, Packet: f.Packet.ID, Seq: int32(f.Seq),
			Src: int32(f.Packet.Src), Dst: int32(f.Packet.Dst),
			Loc: int32(r.ID), In: int32(q.in), VC: int32(q.vc), Out: int32(q.out),
		})
	}
	r.nextRes = append(r.nextRes, reservation{in: q.in, vc: q.vc, out: q.out, f: f})
	if r.rrVC[q.in] = q.vc + 1; r.rrVC[q.in] == r.V {
		r.rrVC[q.in] = 0
	}
	if r.rrIn[q.out] = q.in + 1; r.rrIn[q.out] == r.nIn {
		r.rrIn[q.out] = 0
	}
	if r.cfg.Opts.Pseudo {
		// The new connection claims its ports: terminate conflicting
		// pseudo-circuits (§3.C condition 1) — the granted input's own
		// circuit and the circuit of whichever input holds the output.
		if r.pcValid[q.in] {
			r.pcTerminate(q.in)
			r.cfg.Stats.PCTerminated++
			if r.rs != nil {
				r.rs.PCTerminated++
			}
		}
		if j := r.pcByOut[q.out]; j >= 0 {
			r.pcTerminate(j)
			r.cfg.Stats.PCTerminated++
			if r.rs != nil {
				r.rs.PCTerminated++
			}
		}
	}
}

// rrDist is the round-robin distance from pointer ptr to index x modulo n;
// both lie in [0, n), so one conditional add replaces the modulo.
func rrDist(x, ptr, n int) int {
	d := x - ptr
	if d < 0 {
		d += n
	}
	return d
}

// maintainPseudoCircuits terminates circuits whose output ran out of credit
// (§3.C condition 2) and speculatively revives circuits on idle outputs
// (§4.A) — phase 5. The PCByOut reverse index makes the former O(ports²)
// output-has-circuit scan a single lookup.
func (r *Router) maintainPseudoCircuits() {
	if !r.cfg.Opts.Pseudo {
		return
	}
	if r.cfg.Opts.TerminateOnZeroCredit {
		for m := r.pcMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			// §3.C condition 2: "congestion at the downstream router on the
			// output port" — a port-level condition (no credit left in any
			// VC); transient per-VC exhaustion inside a streaming packet does
			// not terminate the circuit, because per-flit safety is already
			// enforced by the credit check every traversal performs.
			if !r.anyCredit(r.pcOut[i]) {
				r.pcTerminate(i)
				r.cfg.Stats.PCTerminated++
				if r.rs != nil {
					r.rs.PCTerminated++
				}
				r.worked = true
			}
		}
	}
	if !r.cfg.Opts.Speculation {
		return
	}
	// Only outputs with a recorded history, no live circuit, and no crossbar
	// reservation for next cycle can host a speculative connection; the masks
	// select exactly those.
	var resMask uint64
	for _, res := range r.nextRes {
		resMask |= 1 << uint(res.out)
	}
	for om := r.histMask &^ r.heldMask &^ resMask; om != 0; om &= om - 1 {
		o := bits.TrailingZeros64(om)
		if r.linkDead(o) {
			continue // never speculate a circuit across a dead link
		}
		if !r.anyCredit(o) && !r.cfg.Opts.SpeculateToCongested {
			continue
		}
		in := r.histIn[o]
		if r.pcValid[in] {
			continue
		}
		vc, ok := r.hist[in].Lookup(o)
		if !ok {
			continue
		}
		r.pcSetSpeculative(in, vc, o)
		r.cfg.Stats.PCSpeculated++
		if r.rs != nil {
			r.rs.PCSpeculated++
		}
		r.worked = true
	}
}

// processArrivals handles flits delivered this cycle: buffer bypass when a
// connected pseudo-circuit matches (§4.B), buffer write otherwise
// (phase 6).
func (r *Router) processArrivals(now sim.Cycle) {
	for m := r.arrMask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		f := r.arrival[i]
		r.arrival[i] = nil
		if r.tryBypass(now, i, f) {
			continue
		}
		if r.bufLen[i*r.V+f.VC] >= r.D {
			panic(fmt.Sprintf("router %d: buffer overflow at in %d vc %d (credit protocol violated)", r.ID, i, f.VC))
		}
		depth := r.pushBuf(i, f.VC, f, now)
		r.cfg.Energy.AddWrite()
		if r.rs != nil {
			if depth > r.rs.In[i].BufHighWater {
				r.rs.In[i].BufHighWater = depth
			}
		}
		if r.tr != nil {
			r.tr.Record(obs.Event{
				Cycle: int64(now), Kind: obs.BufWrite, Packet: f.Packet.ID, Seq: int32(f.Seq),
				Src: int32(f.Packet.Src), Dst: int32(f.Packet.Dst),
				Loc: int32(r.ID), In: int32(i), VC: int32(f.VC), Out: int32(f.NextOut),
			})
		}
	}
	r.arrMask = 0
}

// tryBypass attempts buffer bypassing for an arriving flit; on success the
// flit traverses the crossbar this cycle (PC + ST), saving the BW stage.
func (r *Router) tryBypass(now sim.Cycle, i int, f *flit.Flit) bool {
	if !r.cfg.Opts.BufferBypass {
		return false
	}
	l := i*r.V + f.VC
	if r.bufLen[l] != 0 || (r.busyIn>>uint(i))&1 != 0 {
		return false
	}
	if f.Kind.IsHead() {
		if r.activeL[l] {
			return false // previous packet's tail still in flight upstream of us
		}
		if r.linkDead(f.NextOut) {
			return false // dead onward link: buffer, then re-route at admission
		}
		if !r.pcMatch(i, f.VC, f.NextOut) || (r.busyOut>>uint(f.NextOut))&1 != 0 {
			return false
		}
		// VA in parallel with the bypass (§4.B: "VA is performed only for
		// header flits and it needs the output port numbers only").
		r.admit(i, f.VC, f)
		if !r.tryVA(i, f.VC) {
			r.resetLane(i, f.VC)
			return false
		}
	} else {
		if !r.activeL[l] || r.outVC[l] < 0 {
			panic(fmt.Sprintf("router %d: body flit %v arrived on idle VC", r.ID, f))
		}
		if r.linkDead(r.outPort[l]) {
			return false
		}
		if !r.pcMatch(i, f.VC, r.outPort[l]) || (r.busyOut>>uint(r.outPort[l]))&1 != 0 {
			return false
		}
	}
	if !r.hasCredit(r.outPort[l], r.outVC[l]) {
		return false
	}
	out := r.outPort[l]
	r.traverse(now, i, f.VC, out, f, true, true)
	r.busyIn |= 1 << uint(i)
	r.busyOut |= 1 << uint(out)
	return true
}

// traverse moves flit f through the crossbar from (in, vc) to out: the ST
// stage. viaPC marks pseudo-circuit reuse; bypass marks buffer bypassing
// (the flit never occupied the buffer).
func (r *Router) traverse(now sim.Cycle, in, vc, out int, f *flit.Flit, viaPC, bypass bool) {
	r.worked = true
	l := in*r.V + vc
	st := r.cfg.Stats

	// Fig. 1 crossbar-connection temporal locality, measured at packet
	// granularity (header flits) regardless of scheme: body flits reuse
	// their header's connection by construction and would trivially inflate
	// the metric.
	if f.Kind.IsHead() {
		if r.lastOut[in] >= 0 {
			st.XbarPrev++
			if r.lastOut[in] == out {
				st.XbarSame++
			}
		}
		r.lastOut[in] = out
	}

	st.Traversals++
	r.cfg.Energy.AddTraversal()
	if f.Kind.IsHead() {
		st.HeadTravs++
	}
	if viaPC {
		st.PCReused++
		if r.pcSpec[in] {
			st.SpecReused++
		}
		if f.Kind.IsHead() {
			st.HeadReused++
		}
	}
	if bypass {
		st.Bypassed++
		if f.Kind.IsHead() {
			st.HeadBypassed++
		}
	}
	if rs := r.rs; rs != nil {
		rs.Traversals++
		rs.OutSends[out]++
		ps := &rs.In[in]
		ps.Traversals++
		if f.Kind.IsHead() {
			rs.HeadTravs++
		}
		if viaPC {
			rs.PCReused++
			ps.PCReused++
			if r.pcSpec[in] {
				rs.SpecReused++
			}
			if f.Kind.IsHead() {
				rs.HeadReused++
			}
		}
		if bypass {
			rs.Bypassed++
			ps.Bypassed++
			if f.Kind.IsHead() {
				rs.HeadBypassed++
			}
		}
	}
	if r.tr != nil {
		kind := obs.Traverse
		if bypass {
			kind = obs.Bypass
		}
		r.tr.Record(obs.Event{
			Cycle: int64(now), Kind: kind, Packet: f.Packet.ID, Seq: int32(f.Seq),
			Src: int32(f.Packet.Src), Dst: int32(f.Packet.Dst),
			Loc: int32(r.ID), In: int32(in), VC: int32(vc), Out: int32(out),
		})
	}

	// Pseudo-circuit refresh: every traversal (re)writes the register
	// (§3.B) and claims the output, terminating any other circuit on it.
	if r.cfg.Opts.Pseudo {
		if !r.pcMatch(in, vc, out) {
			st.PCCreated++
			if r.rs != nil {
				r.rs.PCCreated++
			}
		}
		if j := r.pcByOut[out]; j >= 0 && j != in {
			r.pcTerminate(j)
			st.PCTerminated++
			if r.rs != nil {
				r.rs.PCTerminated++
			}
		}
		r.pcSet(in, vc, out)
		r.hist[in].Record(vc, out)
		r.histIn[out] = in
		r.histValid[out] = true
		r.histMask |= 1 << uint(out)
	}

	// Flow control and lookahead state for the next hop.
	ov := r.outVC[l]
	f.VC = ov
	if !r.ejection[out] {
		m := out*r.V + ov
		r.credits[m]--
		if r.credits[m] == 0 {
			r.outCred[out]--
		} else if r.credits[m] < 0 {
			panic(fmt.Sprintf("router %d: negative credit on out %d vc %d", r.ID, out, ov))
		}
	}
	if f.Kind.IsHead() {
		f.Packet.Hops++
	}
	if f.Kind.IsTail() {
		if !r.ejection[out] {
			r.vcBusy[out*r.V+ov] = false
		}
		r.resetLane(in, vc)
	}
	// The buffer slot (real or bypassed) is free again: return the credit.
	r.outSends[out]++
	r.cfg.Credit(r.ID, in, vc)
	r.cfg.Send(r.ID, out, f)
}

// OutputSends returns per-output-port flit counts over the router's
// lifetime (link-utilization diagnostics).
func (r *Router) OutputSends() []uint64 { return r.outSends }

// FaultContext parameterizes a fault storm sweep over one router. All
// callbacks run on the kernel's main goroutine.
type FaultContext struct {
	// RouterDead marks the router itself as failed: every held packet is
	// killed and every pseudo-circuit cleared.
	RouterDead bool
	// LinkDead reports whether an output port's link is unusable.
	LinkDead func(out int) bool
	// DstDead reports whether a destination node's home router is dead
	// (such packets cannot be delivered and are killed immediately).
	DstDead func(dst int) bool
	// Salvage enables the reroute drop policy: a committed packet whose
	// header is still buffered at this router is re-routed instead of
	// killed when its output link dies.
	Salvage bool
	// Reroute returns the detour output port for (dst, class).
	Reroute func(dst, class int) int
	// Kill reports a victim packet; the network dedups repeated reports of
	// the same packet and performs the actual purge.
	Kill func(p *flit.Packet)
	// Salvaged reports a committed packet re-routed in place.
	Salvaged func(p *flit.Packet)
	// PCTerm is called once per pseudo-circuit torn down by the fault.
	PCTerm func()
}

// FaultScan applies a fault transition to this router: pseudo-circuits
// crossing dead links are cleared together with the history that could
// revive them, packets that can no longer make progress are reported to
// fc.Kill, and survivors whose committed-but-unallocated output died are
// re-routed. Called between cycles from the kernel's main phase, so staged
// arrivals are always nil and scratch state is idle.
func (r *Router) FaultScan(fc *FaultContext) {
	for i := 0; i < r.nIn; i++ {
		if r.pcValid[i] && (fc.RouterDead || fc.LinkDead(r.pcOut[i])) {
			r.hist[i].Drop(r.pcOut[i])
			r.pcClear(i)
			fc.PCTerm()
		}
		for vc := 0; vc < r.V; vc++ {
			l := i*r.V + vc
			for _, f := range r.buf[l*r.D : l*r.D+r.bufLen[l]] {
				if fc.RouterDead || fc.DstDead(f.Packet.Dst) {
					fc.Kill(f.Packet)
				}
			}
			if !r.activeL[l] {
				continue
			}
			switch {
			case fc.RouterDead || fc.DstDead(r.dstL[l]):
				fc.Kill(r.pkt[l])
			case r.outPort[l] < r.nOut && !r.ejection[r.outPort[l]] && fc.LinkDead(r.outPort[l]):
				if r.outVC[l] < 0 {
					// Not yet committed to an output VC: detour in place.
					r.outPort[l] = fc.Reroute(r.dstL[l], r.classL[l])
				} else if fc.Salvage && r.bufLen[l] > 0 && r.buf[l*r.D].Kind.IsHead() {
					// Committed but the whole packet is still here: release
					// the allocation and detour.
					r.vcBusy[r.outPort[l]*r.V+r.outVC[l]] = false
					r.outVC[l] = -1
					r.va[i] |= 1 << uint(vc)
					r.outPort[l] = fc.Reroute(r.dstL[l], r.classL[l])
					fc.Salvaged(r.pkt[l])
				} else {
					// Partially forwarded (or salvage disabled): the wormhole
					// spans the dead link and cannot be reassembled.
					fc.Kill(r.pkt[l])
				}
			}
		}
	}
}

// FaultStale reports every packet resident in this router whose header
// entered the network before cutoff. Fault detours are not covered by the
// routing algorithm's turn restrictions, so a storm can leave a small set of
// packets in a buffer-dependency cycle; when other traffic keeps flowing, no
// global standstill ever appears, and the cycle throttles everything routed
// through it indefinitely. The stale sweep is the bounded-wait escape: any
// packet resident that long is either wedged or queued behind a wedge, and
// killing it frees the cycle. Residence is measured from NetStart (network
// entry), not Injected (source-queue entry): time spent waiting at the
// source holds no network resources and must not count against the bound.
// Called between cycles from the kernel's main phase.
func (r *Router) FaultStale(cutoff sim.Cycle, kill func(p *flit.Packet)) {
	for i := 0; i < r.nIn; i++ {
		for vc := 0; vc < r.V; vc++ {
			l := i*r.V + vc
			for _, f := range r.buf[l*r.D : l*r.D+r.bufLen[l]] {
				if f.Packet.NetStart < cutoff {
					kill(f.Packet)
				}
			}
			if r.activeL[l] && r.pkt[l].NetStart < cutoff {
				kill(r.pkt[l])
			}
		}
	}
}

// FaultPurge removes every flit of packet p from this router: buffered
// flits are unlinked (their buffer-slot credit is returned upstream through
// the normal credit path, then drop is called so the network can recycle
// and account them) and the VC owned by p is released. Reservations held
// for p skip harmlessly next cycle because the VC's outVC resets. Called
// from the kernel's main phase only.
func (r *Router) FaultPurge(p *flit.Packet, drop func(f *flit.Flit)) {
	for i := 0; i < r.nIn; i++ {
		for vc := 0; vc < r.V; vc++ {
			l := i*r.V + vc
			for k := 0; k < r.bufLen[l]; {
				if r.buf[l*r.D+k].Packet != p {
					k++
					continue
				}
				f := r.buf[l*r.D+k]
				r.removeBufAt(i, vc, k)
				r.cfg.Credit(r.ID, i, vc)
				drop(f)
			}
			if r.activeL[l] && r.pkt[l] == p {
				if r.outVC[l] >= 0 && !r.ejection[r.outPort[l]] {
					r.vcBusy[r.outPort[l]*r.V+r.outVC[l]] = false
				}
				r.resetLane(i, vc)
			}
		}
	}
}

// Quiescent reports whether the router holds no flits and no pending grants
// (used for drain-based termination and invariant tests).
func (r *Router) Quiescent() bool {
	if len(r.res) != 0 {
		return false
	}
	for i := 0; i < r.nIn; i++ {
		if r.arrival[i] != nil || r.occ[i]|r.act[i] != 0 {
			return false
		}
	}
	return true
}

// CheckInvariants panics if internal invariants are violated; tests call it
// every cycle. Beyond the paper's structural invariants it verifies every
// derived structure the SoA layout introduced — the occupancy masks and the
// PCByOut reverse index — against the ground-truth arrays.
func (r *Router) CheckInvariants() {
	var pcMask uint64
	for i := 0; i < r.nIn; i++ {
		var occ, act, va uint64
		for vc := 0; vc < r.V; vc++ {
			l := i*r.V + vc
			if r.bufLen[l] < 0 || r.bufLen[l] > r.D {
				panic(fmt.Sprintf("router %d: buffer overflow at in %d vc %d", r.ID, i, vc))
			}
			if r.bufLen[l] > 0 {
				occ |= 1 << uint(vc)
				if r.headAt[l] != r.at[l*r.D] || r.headHead[l] != r.buf[l*r.D].Kind.IsHead() {
					panic(fmt.Sprintf("router %d: head cache desynced at in %d vc %d", r.ID, i, vc))
				}
			}
			if r.activeL[l] {
				act |= 1 << uint(vc)
				if r.outVC[l] < 0 {
					va |= 1 << uint(vc)
				}
			}
		}
		if occ != r.occ[i] || act != r.act[i] {
			panic(fmt.Sprintf("router %d: occupancy masks desynced at in %d (occ %b/%b act %b/%b)",
				r.ID, i, r.occ[i], occ, r.act[i], act))
		}
		if va != r.va[i] {
			panic(fmt.Sprintf("router %d: VA mask desynced at in %d (%b, lanes say %b)", r.ID, i, r.va[i], va))
		}
		if r.pcValid[i] {
			pcMask |= 1 << uint(i)
		}
	}
	if pcMask != r.pcMask {
		panic(fmt.Sprintf("router %d: pcMask desynced (%b, registers say %b)", r.ID, r.pcMask, pcMask))
	}
	var heldMask uint64
	for o := 0; o < r.nOut; o++ {
		holder := -1
		for i := 0; i < r.nIn; i++ {
			if r.pcValid[i] && r.pcOut[i] == o {
				if holder >= 0 {
					panic(fmt.Sprintf("router %d: inputs %d and %d both hold a pseudo-circuit to output %d", r.ID, holder, i, o))
				}
				holder = i
			}
		}
		if holder != r.pcByOut[o] {
			panic(fmt.Sprintf("router %d: PCByOut[%d] = %d, register file says %d", r.ID, o, r.pcByOut[o], holder))
		}
		if holder >= 0 {
			heldMask |= 1 << uint(o)
		}
		if r.histValid[o] && r.histMask&(1<<uint(o)) == 0 {
			panic(fmt.Sprintf("router %d: histMask missing output %d", r.ID, o))
		}
		cred := 0
		for vc := 0; vc < r.V; vc++ {
			c := r.credits[o*r.V+vc]
			if !r.ejection[o] && (c < 0 || c > r.D) {
				panic(fmt.Sprintf("router %d: credit %d out of range on out %d vc %d", r.ID, c, o, vc))
			}
			if c > 0 {
				cred++
			}
		}
		if cred != r.outCred[o] {
			panic(fmt.Sprintf("router %d: outCred[%d] = %d, credits say %d", r.ID, o, r.outCred[o], cred))
		}
	}
	if heldMask != r.heldMask {
		panic(fmt.Sprintf("router %d: heldMask desynced (%b, PCByOut says %b)", r.ID, r.heldMask, heldMask))
	}
}

// PCValid reports whether input port in currently holds a valid
// pseudo-circuit, and to which output (testing hook).
func (r *Router) PCValid(in int) (out int, valid bool) {
	return r.pcOut[in], r.pcValid[in]
}

// BufferedFlits returns the number of flits buffered across all VCs of input
// port in (testing hook).
func (r *Router) BufferedFlits(in int) int {
	n := 0
	for vc := 0; vc < r.V; vc++ {
		n += r.bufLen[in*r.V+vc]
	}
	return n
}
