package router_test

import (
	"fmt"
	"testing"

	"pseudocircuit/internal/core"
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/sim"
)

// TestFuzzOptionMatrix hammers a single router with randomized traffic
// under every option combination, with invariants checked each cycle and
// conservation verified at the end: flits in == flits out, credits match
// sends, packets stay intact.
func TestFuzzOptionMatrix(t *testing.T) {
	combos := []core.Options{}
	for _, scheme := range core.Schemes {
		o := core.DefaultOptions(scheme)
		combos = append(combos, o)
		if scheme.Pseudo {
			o2 := o
			o2.PCDefersToSA = true
			combos = append(combos, o2)
			o3 := o
			o3.TerminateOnZeroCredit = false
			combos = append(combos, o3)
		}
		if scheme.Speculation {
			o4 := o
			o4.SpecHistoryDepth = 4
			combos = append(combos, o4)
			o5 := o
			o5.SpeculateToCongested = true
			combos = append(combos, o5)
		}
	}
	for ci, opts := range combos {
		opts := opts
		t.Run(fmt.Sprintf("combo%02d_%v", ci, opts.Scheme), func(t *testing.T) {
			fuzzRouter(t, opts, 3000, sim.NewRNG(uint64(1000+ci)))
		})
	}
}

// fuzzRouter drives random multi-flit packets into random ports and checks
// conservation.
func fuzzRouter(t *testing.T, opts core.Options, cycles int, rng *sim.RNG) {
	t.Helper()
	h := newHarness(t, opts)
	type pending struct {
		fs  []*flit.Flit
		in  int
		idx int
	}
	var streams []*pending // one per (input port, VC) at most
	active := map[[2]int]*pending{}
	nextID := uint64(1)
	injected, seqErr := 0, false

	// Per-(input, VC) credit tracking: the fuzzer plays the upstream
	// router, so it must respect the 4-flit buffers.
	avail := map[[2]int]int{}
	for in := 0; in < 4; in++ {
		for vc := 0; vc < 4; vc++ {
			avail[[2]int{in, vc}] = 4
		}
	}
	received := map[uint64]int{}
	for cy := 0; cy < cycles; cy++ {
		// Maybe start a new packet on a free (in, vc) pair.
		if rng.Bernoulli(0.5) {
			in, vc := rng.Intn(4), rng.Intn(4)
			key := [2]int{in, vc}
			if active[key] == nil {
				p := &flit.Packet{ID: nextID, Src: 0, Dst: 1, Size: 1 + rng.Intn(5)}
				nextID++
				fs := flit.Split(p)
				out := rng.Intn(5)
				for _, f := range fs {
					f.VC = vc
					f.NextOut = out
				}
				st := &pending{fs: fs, in: in}
				active[key] = st
				streams = append(streams, st)
			}
		}
		// Advance each active stream by at most one flit per input port per
		// cycle, respecting the 4-deep buffer (our side of flow control is
		// approximated by capping buffered flits).
		usedPort := map[int]bool{}
		for key, st := range active {
			vc := st.fs[st.idx].VC
			if usedPort[st.in] || avail[[2]int{st.in, vc}] == 0 {
				continue
			}
			usedPort[st.in] = true
			avail[[2]int{st.in, vc}]--
			h.r.Deliver(st.in, st.fs[st.idx])
			st.idx++
			injected++
			if st.idx == len(st.fs) {
				delete(active, key)
			}
		}
		h.tick()
		h.reflect(received, &seqErr, avail)
	}
	// Finish delivering any partially injected packets (a wormhole router
	// rightly refuses to go idle while a packet's tail is outstanding).
	for i := 0; i < 2000 && len(active) > 0; i++ {
		usedPort := map[int]bool{}
		for key, st := range active {
			vc := st.fs[st.idx].VC
			if usedPort[st.in] || avail[[2]int{st.in, vc}] == 0 {
				continue
			}
			usedPort[st.in] = true
			avail[[2]int{st.in, vc}]--
			h.r.Deliver(st.in, st.fs[st.idx])
			st.idx++
			injected++
			if st.idx == len(st.fs) {
				delete(active, key)
			}
		}
		h.tick()
		h.reflect(received, &seqErr, avail)
	}
	// Drain.
	for i := 0; i < 500 && len(h.sent) < injected; i++ {
		h.tick()
		h.reflect(received, &seqErr, avail)
	}
	if len(h.sent) != injected {
		t.Fatalf("conservation violated: %d in, %d out", injected, len(h.sent))
	}
	if seqErr {
		t.Fatal("flits reordered within a packet")
	}
	if !h.r.Quiescent() {
		t.Fatal("router not quiescent after drain")
	}
	_ = streams
}

// FuzzCreditStarvation drives the full Pseudo+S+B router (pseudo-circuit
// reuse, speculation, buffer bypass, termination on zero credit) while the
// fuzzer plays a hostile downstream: the starve bitstream dictates windows
// during which sent flits earn no credits back, forcing output VCs to zero
// credit mid-packet. That is exactly the regime where pseudo-circuits must
// terminate (§4.A) and buffer bypass must shut off, and where a
// work-proportional router is most tempted to go idle while it still holds
// state. After the schedule ends all withheld credits are released and the
// router must drain to quiescence with every flit accounted for, in order.
func FuzzCreditStarvation(f *testing.F) {
	f.Add(uint64(1), []byte{0xff, 0x00, 0x3c})
	f.Add(uint64(7), []byte{0xaa, 0x55, 0xaa, 0x55})
	f.Add(uint64(42), []byte{})
	f.Add(uint64(9000), []byte{0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, seed uint64, starve []byte) {
		if len(starve) > 64 {
			starve = starve[:64]
		}
		opts := core.DefaultOptions(core.PseudoSB)
		// Derive the termination ablation from the input so the corpus
		// explores both sides of the zero-credit policy.
		opts.TerminateOnZeroCredit = seed%2 == 0
		rng := sim.NewRNG(seed | 1)
		h := newHarness(t, opts)

		starving := func(cy int) bool {
			if len(starve) == 0 {
				return false
			}
			b := starve[(cy/8)%len(starve)]
			return b>>(uint(cy)%8)&1 == 1
		}

		type pending struct {
			fs  []*flit.Flit
			in  int
			idx int
		}
		active := map[[2]int]*pending{}
		avail := map[[2]int]int{}
		for in := 0; in < 4; in++ {
			for vc := 0; vc < 4; vc++ {
				avail[[2]int{in, vc}] = 4
			}
		}
		received := map[uint64]int{}
		var withheld []sentFlit // credits the downstream is sitting on
		nextID := uint64(1)
		injected, seqErr := 0, false

		inject := func() {
			usedPort := map[int]bool{}
			for key, st := range active {
				vc := st.fs[st.idx].VC
				if usedPort[st.in] || avail[[2]int{st.in, vc}] == 0 {
					continue
				}
				usedPort[st.in] = true
				avail[[2]int{st.in, vc}]--
				h.r.Deliver(st.in, st.fs[st.idx])
				st.idx++
				injected++
				if st.idx == len(st.fs) {
					delete(active, key)
				}
			}
		}
		// reflect checks ordering and reflects credits, withholding the
		// downstream ones while starved.
		reflect := func(starved bool) {
			for ; h.credited < len(h.sent); h.credited++ {
				s := h.sent[h.credited]
				received[s.f.Packet.ID]++
				if s.f.Seq != received[s.f.Packet.ID]-1 {
					seqErr = true
				}
				if s.out == 4 {
					continue // ejection port: no credit loop
				}
				if starved {
					withheld = append(withheld, s)
				} else {
					h.r.DeliverCredit(s.out, s.f.VC)
				}
			}
			if !starved {
				for _, s := range withheld {
					h.r.DeliverCredit(s.out, s.f.VC)
				}
				withheld = withheld[:0]
			}
			for _, c := range h.credits {
				avail[[2]int{c.in, c.vc}]++
			}
			h.credits = h.credits[:0]
		}

		for cy := 0; cy < 1500; cy++ {
			if rng.Bernoulli(0.5) {
				in, vc := rng.Intn(4), rng.Intn(4)
				key := [2]int{in, vc}
				if active[key] == nil {
					p := &flit.Packet{ID: nextID, Src: 0, Dst: 1, Size: 1 + rng.Intn(5)}
					nextID++
					fs := flit.Split(p)
					out := rng.Intn(5)
					for _, f := range fs {
						f.VC = vc
						f.NextOut = out
					}
					active[key] = &pending{fs: fs, in: in}
				}
			}
			inject()
			h.tick()
			reflect(starving(cy))
		}
		// Release every credit, finish partially injected packets, drain.
		for i := 0; i < 3000 && len(active) > 0; i++ {
			inject()
			h.tick()
			reflect(false)
		}
		for i := 0; i < 1000 && len(h.sent) < injected; i++ {
			h.tick()
			reflect(false)
		}
		if len(h.sent) != injected {
			t.Fatalf("conservation violated under starvation schedule: %d in, %d out", injected, len(h.sent))
		}
		if seqErr {
			t.Fatal("flits reordered within a packet")
		}
		if len(active) > 0 {
			t.Fatalf("%d packets never finished injection after credits released", len(active))
		}
		if !h.r.Quiescent() {
			t.Fatal("router not quiescent after starvation release and drain")
		}
	})
}

// reflect processes new sends: reassembly/order checks, downstream credit
// reflection, and upstream credit bookkeeping from the router's Credit
// callback (recorded in h.credits).
func (h *harness) reflect(received map[uint64]int, seqErr *bool, avail map[[2]int]int) {
	for ; h.credited < len(h.sent); h.credited++ {
		s := h.sent[h.credited]
		received[s.f.Packet.ID]++
		if s.f.Seq != received[s.f.Packet.ID]-1 {
			*seqErr = true
		}
		if s.out != 4 {
			h.r.DeliverCredit(s.out, s.f.VC)
		}
	}
	for _, c := range h.credits {
		avail[[2]int{c.in, c.vc}]++
	}
	h.credits = h.credits[:0]
}
