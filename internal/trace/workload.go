package trace

import (
	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
)

// Recorder wraps a workload and captures every packet it injects, in
// injection order. Use it around the CMP substrate to extract traces the way
// the paper extracts them from its full-system simulator.
type Recorder struct {
	Inner network.Workload
	W     *Writer
	err   error
}

// recInjector tees injections into the trace writer.
type recInjector struct {
	rec *Recorder
	inj network.Injector
	now sim.Cycle
}

func (ri recInjector) Inject(p *flit.Packet) {
	if err := ri.rec.W.Write(Record{
		Cycle: ri.now, Src: p.Src, Dst: p.Dst, Size: p.Size, Class: p.Class,
	}); err != nil && ri.rec.err == nil {
		ri.rec.err = err
	}
	ri.inj.Inject(p)
}

// NewPacket forwards pooled-packet acquisition to the wrapped injector, so
// recording does not reintroduce per-packet allocations.
func (ri recInjector) NewPacket() *flit.Packet {
	return network.AcquirePacket(ri.inj)
}

// Tick implements network.Workload.
func (r *Recorder) Tick(now sim.Cycle, inj network.Injector) {
	r.Inner.Tick(now, recInjector{rec: r, inj: inj, now: now})
}

// Deliver implements network.Workload.
func (r *Recorder) Deliver(now sim.Cycle, p *flit.Packet) { r.Inner.Deliver(now, p) }

// Done implements network.Workload.
func (r *Recorder) Done() bool { return r.Inner.Done() }

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.err }

// Player replays a recorded trace open-loop: each packet is injected at its
// recorded cycle (shifted so the first record lands at the player's start).
type Player struct {
	recs []Record
	idx  int
	off  sim.Cycle
	set  bool
	// Loop restarts the trace when exhausted (for fixed-length runs).
	Loop  bool
	loops sim.Cycle // cumulative cycle offset accrued by looping
}

// NewPlayer builds a player over recs (must be cycle-ordered, as produced by
// Reader).
func NewPlayer(recs []Record) *Player {
	return &Player{recs: recs}
}

// Tick implements network.Workload.
func (p *Player) Tick(now sim.Cycle, inj network.Injector) {
	if len(p.recs) == 0 {
		return
	}
	if !p.set {
		p.off = now - p.recs[0].Cycle
		p.set = true
	}
	for {
		if p.idx >= len(p.recs) {
			if !p.Loop {
				return
			}
			// Restart the trace after the last record's timestamp.
			last := p.recs[len(p.recs)-1].Cycle
			p.loops += last - p.recs[0].Cycle + 1
			p.idx = 0
		}
		r := p.recs[p.idx]
		if r.Cycle+p.off+p.loops > now {
			return
		}
		p.idx++
		pk := network.AcquirePacket(inj)
		pk.Src, pk.Dst, pk.Size, pk.Class = r.Src, r.Dst, r.Size, r.Class
		inj.Inject(pk)
	}
}

// Deliver implements network.Workload.
func (p *Player) Deliver(now sim.Cycle, pk *flit.Packet) {}

// Done implements network.Workload.
func (p *Player) Done() bool { return !p.Loop && p.idx >= len(p.recs) }

// Remaining returns the number of unplayed records.
func (p *Player) Remaining() int { return len(p.recs) - p.idx }
