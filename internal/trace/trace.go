// Package trace provides a compact binary packet-trace format with
// record/replay support. The paper drives its simulator with traces
// extracted from a full-system simulator; this package lets the CMP
// substrate's traffic be captured once (cmd/tracegen) and replayed
// open-loop through any network configuration, exactly like the paper's
// methodology.
//
// Format: a short header (magic, version, node count) followed by
// varint-encoded records of (cycle delta, src, dst, size, class). A typical
// CMP trace compresses to ~6 bytes per packet.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/sim"
)

// Magic identifies trace files.
const Magic = "PCTR"

// Version is the current format version.
const Version = 1

// Record is one traced packet injection.
type Record struct {
	Cycle sim.Cycle
	Src   int
	Dst   int
	Size  int
	Class flit.Class
}

// Writer streams records to an io.Writer.
type Writer struct {
	w    *bufio.Writer
	last sim.Cycle
	n    int
	err  error
}

// NewWriter writes a trace header for a network with nodes terminals and
// returns the record writer.
func NewWriter(w io.Writer, nodes int) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(hdr[:], Version)
	k += binary.PutUvarint(hdr[k:], uint64(nodes))
	if _, err := bw.Write(hdr[:k]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record. Records must arrive in non-decreasing cycle
// order.
func (t *Writer) Write(r Record) error {
	if t.err != nil {
		return t.err
	}
	if r.Cycle < t.last {
		t.err = fmt.Errorf("trace: record at cycle %d after cycle %d", r.Cycle, t.last)
		return t.err
	}
	var buf [5 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(r.Cycle-t.last))
	k += binary.PutUvarint(buf[k:], uint64(r.Src))
	k += binary.PutUvarint(buf[k:], uint64(r.Dst))
	k += binary.PutUvarint(buf[k:], uint64(r.Size))
	k += binary.PutUvarint(buf[k:], uint64(r.Class))
	if _, err := t.w.Write(buf[:k]); err != nil {
		t.err = err
		return err
	}
	t.last = r.Cycle
	t.n++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() int { return t.n }

// Flush flushes buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader streams records from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	nodes int
	last  sim.Cycle
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, errors.New("trace: bad magic")
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading node count: %w", err)
	}
	return &Reader{r: br, nodes: int(nodes)}, nil
}

// Nodes returns the terminal count recorded in the header.
func (t *Reader) Nodes() int { return t.nodes }

// Read returns the next record, or io.EOF at the end of the trace.
func (t *Reader) Read() (Record, error) {
	d, err := binary.ReadUvarint(t.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: reading record: %w", err)
	}
	var rec Record
	rec.Cycle = t.last + sim.Cycle(d)
	fields := []*int{&rec.Src, &rec.Dst, &rec.Size}
	for _, f := range fields {
		v, err := binary.ReadUvarint(t.r)
		if err != nil {
			return Record{}, fmt.Errorf("trace: truncated record: %w", noEOF(err))
		}
		*f = int(v)
	}
	c, err := binary.ReadUvarint(t.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", noEOF(err))
	}
	rec.Class = flit.Class(c)
	t.last = rec.Cycle
	return rec, nil
}

// noEOF converts a clean EOF inside a record into ErrUnexpectedEOF so a
// truncated trace is never mistaken for a complete one.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAll drains the reader.
func (t *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := t.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
