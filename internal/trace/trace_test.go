package trace_test

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"pseudocircuit/internal/flit"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/trace"
)

func roundTrip(t *testing.T, recs []trace.Record, nodes int) []trace.Record {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Nodes() != nodes {
		t.Fatalf("nodes = %d, want %d", rd.Nodes(), nodes)
	}
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	recs := []trace.Record{
		{Cycle: 0, Src: 1, Dst: 2, Size: 1, Class: flit.ClassRequest},
		{Cycle: 0, Src: 5, Dst: 9, Size: 5, Class: flit.ClassResponse},
		{Cycle: 17, Src: 63, Dst: 0, Size: 5, Class: flit.ClassCoherence},
		{Cycle: 100000, Src: 3, Dst: 4, Size: 1, Class: flit.ClassData},
	}
	got := roundTrip(t, recs, 64)
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestRoundTripProperty: arbitrary monotone traces survive the codec.
func TestRoundTripProperty(t *testing.T) {
	err := quick.Check(func(deltas []uint16, seed uint64) bool {
		if len(deltas) > 200 {
			deltas = deltas[:200]
		}
		rng := sim.NewRNG(seed)
		var recs []trace.Record
		cy := sim.Cycle(0)
		for _, d := range deltas {
			cy += sim.Cycle(d)
			recs = append(recs, trace.Record{
				Cycle: cy,
				Src:   rng.Intn(64),
				Dst:   rng.Intn(64),
				Size:  1 + rng.Intn(8),
				Class: flit.Class(rng.Intn(4)),
			})
		}
		got := roundTrip(t, recs, 64)
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriterRejectsBackwardCycles(t *testing.T) {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf, 4)
	if err := w.Write(trace.Record{Cycle: 10}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(trace.Record{Cycle: 9}); err == nil {
		t.Fatal("backward cycle accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := trace.NewReader(bytes.NewBufferString("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := trace.NewReader(bytes.NewBufferString("PC")); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestReaderEOF(t *testing.T) {
	got := roundTrip(t, nil, 16)
	if len(got) != 0 {
		t.Fatalf("empty trace returned %d records", len(got))
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf, 4)
	w.Write(trace.Record{Cycle: 1, Src: 1, Dst: 2, Size: 5})
	w.Flush()
	data := buf.Bytes()
	rd, err := trace.NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd.Read()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record error = %v, want non-EOF error", err)
	}
}

// collectInjector records injections for player tests.
type collectInjector struct{ pkts []*flit.Packet }

func (c *collectInjector) Inject(p *flit.Packet) { c.pkts = append(c.pkts, p) }

func TestPlayerTiming(t *testing.T) {
	recs := []trace.Record{
		{Cycle: 5, Src: 0, Dst: 1, Size: 1},
		{Cycle: 5, Src: 2, Dst: 3, Size: 5},
		{Cycle: 9, Src: 1, Dst: 0, Size: 1},
	}
	p := trace.NewPlayer(recs)
	var c collectInjector
	// Start at cycle 100: offsets shift the trace to begin there.
	for cy := sim.Cycle(100); cy < 110; cy++ {
		before := len(c.pkts)
		p.Tick(cy, &c)
		switch cy {
		case 100:
			if len(c.pkts)-before != 2 {
				t.Fatalf("cycle 100 injected %d, want 2", len(c.pkts)-before)
			}
		case 104:
			if len(c.pkts)-before != 1 {
				t.Fatalf("cycle 104 injected %d, want 1", len(c.pkts)-before)
			}
		default:
			if len(c.pkts) != before {
				t.Fatalf("cycle %d injected unexpectedly", cy)
			}
		}
	}
	if !p.Done() {
		t.Error("player not done after trace exhausted")
	}
}

func TestPlayerLoop(t *testing.T) {
	recs := []trace.Record{{Cycle: 0, Src: 0, Dst: 1, Size: 1}, {Cycle: 3, Src: 1, Dst: 2, Size: 1}}
	p := trace.NewPlayer(recs)
	p.Loop = true
	var c collectInjector
	for cy := sim.Cycle(0); cy < 40; cy++ {
		p.Tick(cy, &c)
	}
	if p.Done() {
		t.Error("looping player reported done")
	}
	if len(c.pkts) < 15 {
		t.Errorf("looping player injected %d packets over 40 cycles, want ~20", len(c.pkts))
	}
}

// TestRecorderTees: the recorder forwards every injection and captures it.
func TestRecorderTees(t *testing.T) {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf, 8)
	inner := &fakeWorkload{}
	rec := &trace.Recorder{Inner: inner, W: w}
	var c collectInjector
	for cy := sim.Cycle(0); cy < 10; cy++ {
		rec.Tick(cy, &c)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	w.Flush()
	rd, _ := trace.NewReader(&buf)
	recs, _ := rd.ReadAll()
	if len(recs) != len(c.pkts) || len(recs) != 10 {
		t.Fatalf("recorded %d, forwarded %d, want 10 each", len(recs), len(c.pkts))
	}
}

type fakeWorkload struct{ n int }

func (f *fakeWorkload) Tick(now sim.Cycle, inj network.Injector) {
	f.n++
	inj.Inject(&flit.Packet{Src: 0, Dst: 1, Size: 1})
}
func (f *fakeWorkload) Deliver(now sim.Cycle, p *flit.Packet) {}
func (f *fakeWorkload) Done() bool                            { return false }

// TestWireFormatGolden pins the on-disk byte layout so existing trace files
// stay readable across refactors.
func TestWireFormatGolden(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	w.Write(trace.Record{Cycle: 5, Src: 1, Dst: 2, Size: 5, Class: flit.ClassResponse})
	w.Write(trace.Record{Cycle: 300, Src: 63, Dst: 0, Size: 1, Class: flit.ClassRequest})
	w.Flush()
	want := []byte{
		'P', 'C', 'T', 'R', // magic
		1,  // version
		64, // nodes
		// record 1: delta=5, src=1, dst=2, size=5, class=1
		5, 1, 2, 5, 1,
		// record 2: delta=295 (varint 0xa7 0x02), src=63, dst=0, size=1, class=0
		0xa7, 0x02, 63, 0, 1, 0,
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("wire format changed:\n got %v\nwant %v", buf.Bytes(), want)
	}
}

// TestPlayerRemaining tracks playback progress.
func TestPlayerRemaining(t *testing.T) {
	p := trace.NewPlayer([]trace.Record{{Cycle: 0, Src: 0, Dst: 1, Size: 1}, {Cycle: 5, Src: 1, Dst: 2, Size: 1}})
	var c collectInjector
	if p.Remaining() != 2 {
		t.Fatalf("Remaining = %d", p.Remaining())
	}
	p.Tick(0, &c)
	if p.Remaining() != 1 {
		t.Fatalf("Remaining after first = %d", p.Remaining())
	}
}
