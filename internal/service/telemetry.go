package service

import (
	"time"

	"pseudocircuit/internal/telemetry"
)

// instruments is the manager's always-on telemetry: counters and histograms
// for every job-lifecycle edge, gauges for the live state, and a span log
// putting the same edges on a wall-clock timeline. Everything here observes
// scheduling only — recording a metric can never change which cycles a
// simulation executes, so results stay bit-identical with telemetry on (the
// service extension of TestObservabilityNoBehaviorChange covers it).
//
// Metric names follow the conventions DESIGN.md §15 documents: the nocd_
// prefix, _total for counters, _seconds for histograms, and exactly one
// low-cardinality label per vector (scheme and outcome come from closed
// sets; job IDs and spec hashes never become labels).
type instruments struct {
	reg   *telemetry.Registry
	spans *telemetry.SpanLog

	submissions *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	coalesced   *telemetry.Counter
	rejected    *telemetry.Counter
	outcomes    telemetry.CounterVec // label outcome: done|failed|canceled
	cycles      *telemetry.Counter

	// Disk-store tier; registered (and non-nil) only when Config.Store is
	// set — every use is behind the same nil check.
	storeHits    *telemetry.Counter
	storeMisses  *telemetry.Counter
	storePutErrs *telemetry.Counter

	queueWait *telemetry.Histogram
	runTime   telemetry.HistogramVec // label scheme

	queued  *telemetry.Gauge // jobs waiting for a worker
	running *telemetry.Gauge // jobs inside simulate
}

// newInstruments registers the service metric schema on a fresh registry and
// wires the pull-style gauges to the manager's own state.
func newInstruments(m *Manager, spanCap int) *instruments {
	reg := telemetry.NewRegistry()
	ins := &instruments{
		reg:   reg,
		spans: telemetry.NewSpanLog(spanCap),

		submissions: reg.Counter("nocd_submissions_total",
			"accepted job submissions, including cache and singleflight hits"),
		cacheHits: reg.Counter("nocd_cache_hits_total",
			"submissions answered from the result cache without simulating"),
		cacheMisses: reg.Counter("nocd_cache_misses_total",
			"submissions that enqueued a new simulation"),
		coalesced: reg.Counter("nocd_singleflight_coalesced_total",
			"submissions that joined an identical in-flight job"),
		rejected: reg.Counter("nocd_rejected_total",
			"submissions rejected by queue-full backpressure"),
		outcomes: reg.CounterVec("nocd_jobs_total",
			"jobs reaching a terminal state, by outcome", "outcome"),
		cycles: reg.Counter("nocd_cycles_simulated_total",
			"simulated cycles completed across all jobs"),

		queueWait: reg.Histogram("nocd_queue_wait_seconds",
			"wall time between a job entering the queue and a worker dequeuing it", nil),
		runTime: reg.HistogramVec("nocd_run_seconds",
			"wall time a worker spent simulating one job", "scheme", nil),
	}
	states := reg.GaugeVec("nocd_jobs",
		"jobs currently in a non-terminal state, by state", "state")
	ins.queued = states.With("queued")
	ins.running = states.With("running")

	reg.GaugeFunc("nocd_queue_capacity", "configured queue bound",
		func() float64 { return float64(m.cfg.QueueCap) })
	reg.GaugeFunc("nocd_cache_entries", "results held in the in-memory cache",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.cache))
		})
	reg.GaugeFunc("nocd_inflight_keys", "distinct canonical specs queued or running",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.inflight))
		})
	reg.GaugeFunc("nocd_jobs_retained", "job records retained for status queries",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.jobs))
		})
	reg.GaugeFunc("nocd_ready", "1 while accepting submissions, 0 while draining or saturated",
		func() float64 {
			if m.Ready() == nil {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("nocd_span_log_dropped", "lifecycle spans evicted by the ring bound",
		func() float64 { return float64(ins.spans.Dropped()) })
	if st := m.cfg.Store; st != nil {
		ins.storeHits = reg.Counter("nocd_store_hits_total",
			"submissions answered from the persistent disk store without simulating")
		ins.storeMisses = reg.Counter("nocd_store_misses_total",
			"disk store lookups that found no intact entry")
		ins.storePutErrs = reg.Counter("nocd_store_put_errors_total",
			"failed disk store writes (the result is still served from memory)")
		reg.CounterFunc("nocd_store_evictions_total", "store entries evicted by the byte cap",
			st.Evictions)
		reg.CounterFunc("nocd_store_corrupt_total",
			"corrupt or torn store entries detected and evicted, never served",
			st.Corrupt)
		reg.GaugeFunc("nocd_store_entries", "intact entries resident in the disk store",
			func() float64 { return float64(st.Len()) })
		reg.GaugeFunc("nocd_store_bytes", "bytes resident in the disk store",
			func() float64 { return float64(st.Bytes()) })
	}
	return ins
}

// instant records a zero-length span at time now.
func (ins *instruments) instant(name string, j *job, outcome string, now time.Time) {
	ins.spans.Record(telemetry.Span{
		Name: name, Job: j.id, Key: j.key, Scheme: j.scheme, Outcome: outcome,
		Start: now, End: now,
	})
}

// span records a closed interval span.
func (ins *instruments) span(name string, j *job, outcome string, start, end time.Time) {
	ins.spans.Record(telemetry.Span{
		Name: name, Job: j.id, Key: j.key, Scheme: j.scheme, Outcome: outcome,
		Start: start, End: end,
	})
}

// Telemetry returns the manager's metric registry, ready for Prometheus
// exposition.
func (m *Manager) Telemetry() *telemetry.Registry { return m.ins.reg }

// SpanLog returns the manager's job-lifecycle span log.
func (m *Manager) SpanLog() *telemetry.SpanLog { return m.ins.spans }

// Ready reports whether the manager would accept a submission right now:
// nil when ready, ErrShuttingDown while draining, ErrQueueFull while the
// queue is saturated. Load balancers poll this through /readyz to stop
// routing before a drain or an overload drops requests.
func (m *Manager) Ready() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrShuttingDown
	}
	if len(m.queue) == cap(m.queue) {
		return ErrQueueFull
	}
	return nil
}

// schemeLabel maps a canonical request to its bounded scheme label value:
// one of the five paper schemes, or "evc" for the comparison baseline.
func schemeLabel(r Request) string {
	if r.UseEVC {
		return "evc"
	}
	return r.Scheme
}
