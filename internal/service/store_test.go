package service

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pseudocircuit/internal/store"
	"pseudocircuit/noc"
)

func storeReq(seed uint64) Request {
	return Request{
		Spec: noc.Spec{
			Topology: "mesh4x4", Scheme: "pseudo+s+b", VA: "static",
			Warmup: 50, Measure: 200, Seed: seed,
		},
		Workload: noc.WorkloadSpec{Pattern: "uniform", Rate: 0.10},
	}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, m *Manager, id string) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := m.Wait(ctx, id)
	if err != nil || j.State != StateDone {
		t.Fatalf("job %s: state %s err %v", id, j.State, err)
	}
	return j
}

// TestStoreSurvivesRestart: a fleet of specs simulated by one manager is
// served entirely from the disk store by a fresh manager on the same
// directory — zero simulations, verified by the cycle and store-hit
// counters, with results bit-identical to the first run.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	const points = 4

	m1 := New(Config{Workers: 2, Chunk: 100, Store: openStore(t, dir)})
	want := map[uint64]string{}
	for seed := uint64(1); seed <= points; seed++ {
		j, err := m1.Submit(storeReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		j = waitDone(t, m1, j.ID)
		if j.CacheHit || j.StoreHit {
			t.Fatalf("first run of seed %d claimed a cache hit", seed)
		}
		want[seed] = mustJSON(t, *j.Result)
	}
	shutdown(t, m1)

	// "Restart": a brand-new manager, empty memory cache, same directory.
	m2 := New(Config{Workers: 2, Chunk: 100, Store: openStore(t, dir)})
	defer shutdown(t, m2)
	for seed := uint64(1); seed <= points; seed++ {
		j, err := m2.Submit(storeReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		if j.State != StateDone || !j.CacheHit || !j.StoreHit {
			t.Fatalf("seed %d after restart: state %s cacheHit %v storeHit %v",
				seed, j.State, j.CacheHit, j.StoreHit)
		}
		if got := mustJSON(t, *j.Result); got != want[seed] {
			t.Fatalf("seed %d result changed across the store round-trip:\nbefore: %s\nafter:  %s",
				seed, want[seed], got)
		}
	}
	stats := m2.Stats()
	if stats["store_hits"] != points {
		t.Fatalf("store_hits = %d, want %d", stats["store_hits"], points)
	}
	if v := m2.ins.cycles.Value(); v != 0 {
		t.Fatalf("restarted manager simulated %d cycles; want 0", v)
	}
	if v := m2.ins.storeHits.Value(); v != points {
		t.Fatalf("nocd_store_hits_total = %d, want %d", v, points)
	}

	// A repeat of the same spec is now a memory hit: the disk tier is only
	// read once per key.
	j, err := m2.Submit(storeReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit || j.StoreHit {
		t.Fatalf("second submission: cacheHit %v storeHit %v; want memory hit", j.CacheHit, j.StoreHit)
	}
	if v := m2.ins.storeHits.Value(); v != points {
		t.Fatalf("memory hit still read the disk store (hits %d)", v)
	}
}

// TestStoreTornEntryResimulated: a torn store entry is evicted, never
// served — the submission simulates again and repairs the entry on disk.
func TestStoreTornEntryResimulated(t *testing.T) {
	dir := t.TempDir()
	m1 := New(Config{Workers: 1, Chunk: 100, Store: openStore(t, dir)})
	j, err := m1.Submit(storeReq(7))
	if err != nil {
		t.Fatal(err)
	}
	j = waitDone(t, m1, j.ID)
	want := mustJSON(t, *j.Result)
	key := j.Key
	shutdown(t, m1)

	// Tear the entry as a crash mid-write would.
	path := filepath.Join(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st := openStore(t, dir)
	if st.Corrupt() != 1 {
		t.Fatalf("corrupt = %d, want 1 (torn entry evicted at open)", st.Corrupt())
	}
	m2 := New(Config{Workers: 1, Chunk: 100, Store: st})
	defer shutdown(t, m2)
	j2, err := m2.Submit(storeReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if j2.CacheHit || j2.StoreHit {
		t.Fatal("torn entry was served as a hit")
	}
	j2 = waitDone(t, m2, j2.ID)
	if got := mustJSON(t, *j2.Result); got != want {
		t.Fatalf("re-simulated result diverged:\nwant %s\ngot  %s", want, got)
	}
	// The write-through repaired the entry: verify on disk.
	payload, ok := st.Get(key)
	if !ok {
		t.Fatal("repaired entry missing from store")
	}
	var res noc.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	if got := mustJSON(t, res); got != want {
		t.Fatalf("stored payload diverged:\nwant %s\ngot  %s", want, got)
	}
}

// TestStoreMatchesDirectRun: a store-served result is bit-identical to a
// direct noc.Experiment run of the same spec.
func TestStoreMatchesDirectRun(t *testing.T) {
	dir := t.TempDir()
	m1 := New(Config{Workers: 1, Chunk: 100, Store: openStore(t, dir)})
	j, err := m1.Submit(storeReq(3))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m1, j.ID)
	shutdown(t, m1)

	m2 := New(Config{Workers: 1, Chunk: 100, Store: openStore(t, dir)})
	defer shutdown(t, m2)
	j2, err := m2.Submit(storeReq(3))
	if err != nil {
		t.Fatal(err)
	}
	if !j2.StoreHit {
		t.Fatal("expected a store hit")
	}

	exp, err := storeReq(3).Spec.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	want := exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
	if got, wantB := mustJSON(t, *j2.Result), mustJSON(t, want); got != wantB {
		t.Fatalf("store-served result diverged from direct run:\nstore:  %s\ndirect: %s", got, wantB)
	}
}
