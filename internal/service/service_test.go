package service

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"pseudocircuit/noc"
)

// smallReq is a fast grid point (a Fig. 9-style mesh at low load).
func smallReq() Request {
	return Request{
		Spec: noc.Spec{
			Topology: "mesh4x4",
			Scheme:   "pseudo+s+b",
			VA:       "static",
			Warmup:   100,
			Measure:  400,
		},
		Workload: noc.WorkloadSpec{Pattern: "uniform", Rate: 0.10},
	}
}

// longReq is a job big enough to still be running when the test reacts to
// it (cancellation stops it at a chunk boundary long before completion).
func longReq(seed uint64) Request {
	r := smallReq()
	r.Spec.Seed = seed
	r.Spec.Warmup = 1000
	r.Spec.Measure = 8_000_000
	return r
}

func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s, want %s (err %q)", id, j.State, want, j.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, want)
	return Job{}
}

func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestCacheHitSingleRun is the subsystem's core contract: two identical
// submissions simulate once, and the second returns the byte-identical
// Result from the cache.
func TestCacheHitSingleRun(t *testing.T) {
	m := New(Config{Workers: 2, Chunk: 100})
	defer shutdown(t, m)

	j1, err := m.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if j1.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j1, err = m.Wait(ctx, j1.ID)
	if err != nil || j1.State != StateDone {
		t.Fatalf("first job: state %s err %v (job err %q)", j1.State, err, j1.Error)
	}

	// Resubmit the same spec from a different JSON spelling: reordered
	// fields and defaults written out explicitly.
	raw := []byte(`{
		"workload": {"rate": 0.10, "pattern": "uniform", "packetSize": 5, "kind": "synthetic"},
		"measure": 400, "warmup": 100,
		"va": "static", "routing": "xy", "scheme": "pseudo+s+b", "topology": "mesh4x4",
		"numVCs": 4, "bufDepth": 4, "seed": 1
	}`)
	req2, err := DecodeRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit || j2.State != StateDone {
		t.Fatalf("second submission: cacheHit=%v state=%s, want cache hit + done", j2.CacheHit, j2.State)
	}
	if j2.Key != j1.Key {
		t.Fatalf("keys differ for identical specs: %s vs %s", j1.Key, j2.Key)
	}
	b1, _ := json.Marshal(j1.Result)
	b2, _ := json.Marshal(j2.Result)
	if string(b1) != string(b2) {
		t.Fatalf("cached result not byte-identical:\nfirst:  %s\nsecond: %s", b1, b2)
	}

	s := m.Stats()
	if s["completed"] != 1 {
		t.Errorf("completed = %d, want exactly 1 underlying run", s["completed"])
	}
	if s["cache_hits"] != 1 {
		t.Errorf("cache_hits = %d, want 1", s["cache_hits"])
	}
}

// TestCacheMatchesCLIRun: the cached result is bit-identical to running the
// same spec directly through the public API (what the CLI does).
func TestCacheMatchesCLIRun(t *testing.T) {
	m := New(Config{Workers: 1, Chunk: 100})
	defer shutdown(t, m)

	j, err := m.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if j, err = m.Wait(ctx, j.ID); err != nil || j.State != StateDone {
		t.Fatalf("state %s err %v", j.State, err)
	}

	exp, err := smallReq().Spec.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	want := exp.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
	got, wantB := mustJSON(t, *j.Result), mustJSON(t, want)
	if got != wantB {
		t.Fatalf("service result diverged from direct run:\nservice: %s\ndirect:  %s", got, wantB)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDedupInflight: an identical submission while the first is queued or
// running joins the same job instead of enqueueing a second run.
func TestDedupInflight(t *testing.T) {
	m := New(Config{Workers: 1, Chunk: 100})

	j1, err := m.Submit(longReq(7))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(longReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID != j1.ID {
		t.Fatalf("dedup returned a different job: %s vs %s", j2.ID, j1.ID)
	}
	if !j2.Dedup {
		t.Fatal("second submission not marked dedup")
	}
	if s := m.Stats(); s["dedup_hits"] != 1 || s["enqueued"] != 1 {
		t.Fatalf("stats = %v, want dedup_hits 1 enqueued 1", s)
	}
	if _, err := m.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if j, err := m.Wait(ctx, j1.ID); err != nil || j.State != StateCanceled {
		t.Fatalf("state %s err %v", j.State, err)
	}
	shutdown(t, m)
}

// TestCancelInflight: cancelling a running job stops it promptly (one chunk)
// and leaves the worker pool serving subsequent jobs.
func TestCancelInflight(t *testing.T) {
	m := New(Config{Workers: 1, Chunk: 100})
	defer shutdown(t, m)

	j, err := m.Submit(longReq(3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateRunning)
	start := time.Now()
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j, err = m.Wait(ctx, j.ID)
	if err != nil || j.State != StateCanceled {
		t.Fatalf("state %s err %v (waited %v)", j.State, err, time.Since(start))
	}
	if j.CyclesDone >= j.CyclesTotal {
		t.Fatalf("cancelled job claims full run: %d/%d cycles", j.CyclesDone, j.CyclesTotal)
	}
	if j.Result != nil {
		t.Fatal("cancelled job carries a result")
	}

	// The same worker (and its pool) must keep serving.
	j2, err := m.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	j2, err = m.Wait(ctx, j2.ID)
	if err != nil || j2.State != StateDone {
		t.Fatalf("post-cancel job: state %s err %v (job err %q)", j2.State, err, j2.Error)
	}
}

// TestQueueFullBackpressure: a bounded queue rejects overflow rather than
// buffering it.
func TestQueueFullBackpressure(t *testing.T) {
	m := New(Config{Workers: 1, QueueCap: 1, Chunk: 100})

	a, err := m.Submit(longReq(11))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a.ID, StateRunning) // worker busy, queue empty
	b, err := m.Submit(longReq(12))     // fills the queue
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(longReq(13)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: err %v, want ErrQueueFull", err)
	}
	if s := m.Stats(); s["rejected"] != 1 {
		t.Fatalf("rejected = %d, want 1", s["rejected"])
	}

	for _, id := range []string{a.ID, b.ID} {
		if _, err := m.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	shutdown(t, m)
}

// TestCancelQueuedJob: cancelling before a worker picks the job up means it
// terminates without simulating a cycle.
func TestCancelQueuedJob(t *testing.T) {
	m := New(Config{Workers: 1, QueueCap: 2, Chunk: 100})

	a, err := m.Submit(longReq(21))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a.ID, StateRunning)
	b, err := m.Submit(longReq(22))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	jb, err := m.Wait(ctx, b.ID)
	if err != nil || jb.State != StateCanceled {
		t.Fatalf("queued-cancel: state %s err %v", jb.State, err)
	}
	if jb.CyclesDone != 0 {
		t.Fatalf("cancelled-while-queued job simulated %d cycles", jb.CyclesDone)
	}
	shutdown(t, m)
}

// TestGracefulDrain: Shutdown lets queued work finish, then refuses new
// submissions.
func TestGracefulDrain(t *testing.T) {
	m := New(Config{Workers: 1, Chunk: 100})
	j, err := m.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	shutdown(t, m)
	got, ok := m.Get(j.ID)
	if !ok || got.State != StateDone {
		t.Fatalf("drained job state: %v (found %v)", got.State, ok)
	}
	if _, err := m.Submit(smallReq()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: err %v, want ErrShuttingDown", err)
	}
}

// TestDrainDeadlineCancels: a shutdown deadline forcibly cancels in-flight
// work instead of hanging.
func TestDrainDeadlineCancels(t *testing.T) {
	m := New(Config{Workers: 1, Chunk: 100})
	j, err := m.Submit(longReq(31))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown err %v, want DeadlineExceeded", err)
	}
	got, _ := m.Get(j.ID)
	if got.State != StateCanceled {
		t.Fatalf("in-flight job after forced drain: %s", got.State)
	}
}

// TestBadRequests: every malformed submission maps to ErrBadRequest.
func TestBadRequests(t *testing.T) {
	m := New(Config{Workers: 1})
	defer shutdown(t, m)
	cases := []Request{
		{Spec: noc.Spec{Topology: "torus4x4", Scheme: "pseudo"}, Workload: noc.WorkloadSpec{Rate: 0.1}},
		{Spec: noc.Spec{Topology: "mesh4x4", Scheme: "pseudo++"}, Workload: noc.WorkloadSpec{Rate: 0.1}},
		{Spec: noc.Spec{Topology: "mesh4x4", Scheme: "pseudo"}, Workload: noc.WorkloadSpec{Rate: -1}},
		{Spec: noc.Spec{Topology: "mesh4x4", Scheme: "pseudo"}, Workload: noc.WorkloadSpec{Kind: "cmp", Benchmark: "nope"}},
		{Spec: noc.Spec{Topology: "mesh4x4", Scheme: "pseudo", Warmup: -1}, Workload: noc.WorkloadSpec{Rate: 0.1}},
		{Spec: noc.Spec{Topology: "mesh999x999", Scheme: "pseudo"}, Workload: noc.WorkloadSpec{Rate: 0.1}},
		{Spec: noc.Spec{Topology: "mesh4x4", Scheme: "pseudo", Measure: MaxCycles + 1}, Workload: noc.WorkloadSpec{Rate: 0.1}},
		{Spec: noc.Spec{Topology: "mesh4x4", Scheme: "pseudo", UseEVC: true}, Workload: noc.WorkloadSpec{Rate: 0.1}},
	}
	for i, r := range cases {
		if _, err := m.Submit(r); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d (%+v): err %v, want ErrBadRequest", i, r, err)
		}
	}
	if s := m.Stats(); s["submitted"] != 0 {
		t.Errorf("bad requests counted as submissions: %d", s["submitted"])
	}
}
