package service

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"pseudocircuit/internal/telemetry"
)

// counterValue pulls one sample line out of a Prometheus exposition.
func counterValue(t *testing.T, out, line string) bool {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if l == line {
			return true
		}
	}
	return false
}

// TestLifecycleMetrics walks one job through miss -> run -> done and a
// second identical submission through the cache, then asserts every
// counter, gauge and histogram the ISSUE names moved the way the
// lifecycle says it must.
func TestLifecycleMetrics(t *testing.T) {
	m := New(Config{Workers: 1, Chunk: 100})
	defer shutdown(t, m)

	j1, err := m.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, j1.ID); err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if !j2.CacheHit {
		t.Fatal("second identical submission missed the cache")
	}

	var buf bytes.Buffer
	if err := m.Telemetry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if _, err := telemetry.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"nocd_submissions_total 2",
		"nocd_cache_hits_total 1",
		"nocd_cache_misses_total 1",
		"nocd_singleflight_coalesced_total 0",
		"nocd_rejected_total 0",
		`nocd_jobs_total{outcome="done"} 1`,
		`nocd_jobs{state="queued"} 0`,
		`nocd_jobs{state="running"} 0`,
		"nocd_queue_wait_seconds_count 1",
		`nocd_run_seconds_count{scheme="pseudo+s+b"} 1`,
		"nocd_cache_entries 1",
		"nocd_ready 1",
	} {
		if !counterValue(t, out, want) {
			t.Errorf("exposition missing line %q\n%s", want, out)
		}
	}
	// The one completed job simulated warmup+measure cycles exactly.
	if want := "nocd_cycles_simulated_total 500"; !counterValue(t, out, want) {
		t.Errorf("exposition missing line %q\n%s", want, out)
	}

	// The span log holds the full lifecycle: miss instant, queue wait,
	// run, and the cache-hit instant from the second submission.
	names := map[string]string{}
	for _, s := range m.SpanLog().Spans() {
		names[s.Name] = s.Outcome
	}
	for span, outcome := range map[string]string{
		"cache-lookup": "miss",
		"queue-wait":   "dequeued",
		"run":          "done",
		"cache-hit":    "hit",
	} {
		// cache-lookup is recorded twice (miss then later spans overwrite
		// nothing; map keeps the last outcome seen which for cache-lookup
		// is "miss" — only one cache-lookup span exists here).
		if got, ok := names[span]; !ok || got != outcome {
			t.Errorf("span %q outcome = %q ok=%v, want %q", span, got, ok, outcome)
		}
	}
}

// TestCoalescedAndCanceledMetrics drives the singleflight and cancel paths.
func TestCoalescedAndCanceledMetrics(t *testing.T) {
	m := New(Config{Workers: 1, Chunk: 100})
	defer shutdown(t, m)

	j1, err := m.Submit(longReq(7))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(longReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Dedup || j2.ID != j1.ID {
		t.Fatalf("second submission not coalesced: %+v", j2)
	}
	waitState(t, m, j1.ID, StateRunning)
	if _, err := m.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := m.Wait(ctx, j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", j.State)
	}

	var buf bytes.Buffer
	if err := m.Telemetry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"nocd_singleflight_coalesced_total 1",
		`nocd_jobs_total{outcome="canceled"} 1`,
	} {
		if !counterValue(t, out, want) {
			t.Errorf("exposition missing line %q\n%s", want, out)
		}
	}
	var cancelSeen bool
	for _, s := range m.SpanLog().Spans() {
		if s.Name == "cancel" && s.Job == j1.ID {
			cancelSeen = true
		}
	}
	if !cancelSeen {
		t.Error("cancel instant span missing")
	}
}

// TestReadyAndDrainSpan: Ready flips to ErrShuttingDown after Shutdown and
// the drain span records a clean outcome.
func TestReadyAndDrainSpan(t *testing.T) {
	m := New(Config{Workers: 1})
	if err := m.Ready(); err != nil {
		t.Fatalf("fresh manager not ready: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Ready(); err != ErrShuttingDown {
		t.Fatalf("Ready after shutdown = %v, want ErrShuttingDown", err)
	}
	var drain *telemetry.Span
	for _, s := range m.SpanLog().Spans() {
		if s.Name == "drain" {
			c := s
			drain = &c
		}
	}
	if drain == nil || drain.Outcome != "clean" {
		t.Fatalf("drain span = %+v, want outcome clean", drain)
	}
}

// TestQueueFullNotReady: a saturated queue reports ErrQueueFull through
// Ready and counts the rejection.
func TestQueueFullNotReady(t *testing.T) {
	m := New(Config{Workers: 1, QueueCap: 1, Chunk: 100})
	defer shutdown(t, m)

	// Occupy the single worker, then fill the single queue slot.
	if _, err := m.Submit(longReq(11)); err != nil {
		t.Fatal(err)
	}
	var filled bool
	for i := uint64(0); i < 50 && !filled; i++ {
		if _, err := m.Submit(longReq(100 + i)); err == nil {
			m.mu.Lock()
			filled = len(m.queue) == cap(m.queue)
			m.mu.Unlock()
		} else if err == ErrQueueFull {
			filled = true
		}
	}
	if !filled {
		t.Fatal("could not saturate the queue")
	}
	if err := m.Ready(); err != ErrQueueFull {
		t.Fatalf("Ready with full queue = %v, want ErrQueueFull", err)
	}
	if _, err := m.Submit(longReq(999)); err != ErrQueueFull {
		t.Fatalf("Submit with full queue = %v, want ErrQueueFull", err)
	}
	var buf bytes.Buffer
	if err := m.Telemetry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "nocd_rejected_total 0") {
		t.Errorf("rejection not counted:\n%s", buf.String())
	}
	// Unblock the drain quickly: cancel everything in flight.
	for _, j := range m.Jobs() {
		m.Cancel(j.ID)
	}
}

// TestJobTimingSnapshot: terminal snapshots carry queue wait and run
// duration; cache hits carry neither.
func TestJobTimingSnapshot(t *testing.T) {
	m := New(Config{Workers: 1, Chunk: 100})
	defer shutdown(t, m)

	j1, err := m.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := m.Wait(ctx, j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.RunMS <= 0 {
		t.Fatalf("terminal RunMS = %v, want > 0", j.RunMS)
	}
	if j.QueueWaitMS < 0 {
		t.Fatalf("QueueWaitMS = %v, want >= 0", j.QueueWaitMS)
	}
	if j.CyclesPerSec <= 0 {
		t.Fatalf("CyclesPerSec = %v, want > 0", j.CyclesPerSec)
	}
	if j.ETASeconds != 0 {
		t.Fatalf("terminal ETASeconds = %v, want 0", j.ETASeconds)
	}

	hit, err := m.Submit(smallReq())
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("expected cache hit")
	}
	if hit.RunMS != 0 || hit.QueueWaitMS != 0 {
		t.Fatalf("cache hit carries timings: run=%v wait=%v", hit.RunMS, hit.QueueWaitMS)
	}
}

// TestServiceTelemetryNoBehaviorChange extends the observability
// no-behavior-change contract to the service path: a result produced
// through the fully instrumented manager is bit-identical to the same
// spec run directly through noc.Experiment.
func TestServiceTelemetryNoBehaviorChange(t *testing.T) {
	req := smallReq()
	req.Spec.Seed = 42

	canon, _, exp, err := Canonicalize(req)
	if err != nil {
		t.Fatal(err)
	}
	w, err := canon.Workload.Workload(exp)
	if err != nil {
		t.Fatal(err)
	}
	direct := exp.RunOn(exp.Build(), w)

	m := New(Config{Workers: 2, Chunk: 100})
	defer shutdown(t, m)
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := m.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result == nil {
		t.Fatalf("no result (state %s, err %q)", got.State, got.Error)
	}
	if *got.Result != direct {
		t.Fatalf("service result differs from direct run:\nservice: %+v\ndirect:  %+v", *got.Result, direct)
	}
}
