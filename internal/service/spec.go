package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"pseudocircuit/noc"
)

// Request is the wire format of a job submission: an experiment spec plus a
// workload selection. The embedded noc.Spec fields appear at the top level
// of the JSON object ("topology", "scheme", ...), the workload nested under
// "workload".
type Request struct {
	noc.Spec
	Workload noc.WorkloadSpec `json:"workload"`
}

// ErrBadRequest wraps every validation failure of a submitted request, so
// transport layers can map it to a 400 without inspecting message text.
var ErrBadRequest = errors.New("bad request")

// Submission limits. The service materializes topologies and runs cycles on
// behalf of remote callers, so absurd requests are rejected at the front
// door rather than allocating in a worker.
const (
	// MaxNodes bounds the terminal count of a requested topology.
	MaxNodes = 4096
	// MaxDim bounds each grid dimension and the concentration.
	MaxDim = 64
	// MaxCycles bounds warmup+measure of one job.
	MaxCycles = 10_000_000
	// MaxReliableNodes bounds topologies running with reliable delivery,
	// whose per-NI sequence/window arrays cost O(nodes) each (O(nodes²)
	// across the network).
	MaxReliableNodes = 1024
	// MaxWorkers bounds the requested cycle-kernel worker count. Worker
	// count never changes results (only wall-clock), so it is stripped from
	// the canonical cache key; the bound just stops a remote caller from
	// demanding an absurd goroutine fan-out.
	MaxWorkers = 32
)

// DecodeRequest parses a job request strictly: unknown fields, trailing
// data and malformed JSON are all ErrBadRequest. It never panics, whatever
// the input (the package fuzz target enforces this).
func DecodeRequest(data []byte) (Request, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Request
	if err := dec.Decode(&r); err != nil {
		return r, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return r, fmt.Errorf("%w: trailing data after request object", ErrBadRequest)
	}
	return r, nil
}

// Canonicalize validates a request and returns its canonical form, the
// content-address key (hex SHA-256 of the canonical JSON encoding) and the
// materialized experiment. Canonicalization fills every defaulted field
// with its canonical value and lowercases names, so two semantically
// identical requests — reordered JSON fields, defaults spelled out versus
// omitted, case differences — produce identical keys, while any
// behaviour-changing difference (seed, scheme, rate, ...) changes the key.
func Canonicalize(r Request) (Request, string, noc.Experiment, error) {
	var exp noc.Experiment
	if err := checkTopologyBounds(r.Spec.Topology); err != nil {
		return r, "", exp, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	exp, err := materialize(r.Spec)
	if err != nil {
		return r, "", exp, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := checkExperiment(exp, r.Spec); err != nil {
		return r, "", exp, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	wl, err := r.Workload.Normalize()
	if err != nil {
		return r, "", exp, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if wl.Kind == "cmp" && exp.Topology.Nodes() != 64 {
		return r, "", exp, fmt.Errorf("%w: cmp workloads need a 64-terminal topology, %s has %d",
			ErrBadRequest, r.Spec.Topology, exp.Topology.Nodes())
	}
	canon := Request{Spec: noc.SpecOf(exp), Workload: wl}
	enc, err := json.Marshal(canon)
	if err != nil {
		return r, "", exp, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	sum := sha256.Sum256(enc)
	return canon, hex.EncodeToString(sum[:]), exp, nil
}

// materialize runs Spec.Experiment under a recover guard: the noc layer is
// panic-on-misuse (it serves trusted in-process callers), while the service
// faces the network and must turn every misuse into a 400.
func materialize(s noc.Spec) (exp noc.Experiment, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("invalid spec: %v", p)
		}
	}()
	return s.Experiment()
}

// checkTopologyBounds bounds the grid dimensions before Spec.Experiment
// constructs the topology, which allocates proportionally to the node
// count; it mirrors noc.ParseTopology's name grammar.
func checkTopologyBounds(topo string) error {
	var kx, ky, c int
	switch {
	case strings.HasPrefix(topo, "mesh"):
		c = 1
		if n, err := fmt.Sscanf(topo, "mesh%dx%d", &kx, &ky); n != 2 || err != nil {
			return fmt.Errorf("unknown topology %q", topo)
		}
	case strings.HasPrefix(topo, "cmesh"), strings.HasPrefix(topo, "mecs"), strings.HasPrefix(topo, "fbfly"):
		i := strings.IndexAny(topo, "0123456789-")
		if i < 0 {
			return fmt.Errorf("unknown topology %q", topo)
		}
		if n, err := fmt.Sscanf(topo, topo[:i]+"%dx%dx%d", &kx, &ky, &c); n != 3 || err != nil {
			return fmt.Errorf("unknown topology %q", topo)
		}
	default:
		return fmt.Errorf("unknown topology %q", topo)
	}
	if kx < 1 || ky < 1 || c < 1 || kx > MaxDim || ky > MaxDim || c > MaxDim {
		return fmt.Errorf("topology %q dimensions outside [1, %d]", topo, MaxDim)
	}
	if nodes := kx * ky * c; nodes > MaxNodes {
		return fmt.Errorf("topology %q has %d nodes, limit %d", topo, nodes, MaxNodes)
	}
	return nil
}

// checkExperiment rejects parameter combinations the noc layer would panic
// on or that exceed the service's resource bounds.
func checkExperiment(exp noc.Experiment, s noc.Spec) error {
	if s.NumVCs < 0 || s.NumVCs > 64 {
		return fmt.Errorf("numVCs %d outside [0, 64]", s.NumVCs)
	}
	if s.BufDepth < 0 || s.BufDepth > 1024 {
		return fmt.Errorf("bufDepth %d outside [0, 1024]", s.BufDepth)
	}
	if s.Warmup < 0 || s.Measure < 0 {
		return fmt.Errorf("negative cycle counts (warmup %d, measure %d)", s.Warmup, s.Measure)
	}
	if s.Workers < 0 || s.Workers > MaxWorkers {
		return fmt.Errorf("workers %d outside [0, %d]", s.Workers, MaxWorkers)
	}
	warmup, measure := exp.Protocol()
	if warmup+measure > MaxCycles {
		return fmt.Errorf("warmup+measure %d exceeds limit %d", warmup+measure, MaxCycles)
	}
	// Reliable delivery keeps three per-peer arrays on every NI — O(nodes²)
	// words total — so it gets a tighter node bound than plain runs.
	if exp.Reliable != nil && exp.Topology.Nodes() > MaxReliableNodes {
		return fmt.Errorf("reliable delivery limited to %d nodes, topology %q has %d",
			MaxReliableNodes, s.Topology, exp.Topology.Nodes())
	}
	if exp.UseEVC {
		if exp.Scheme.Pseudo {
			return fmt.Errorf("useEVC is a comparison baseline; scheme must be baseline")
		}
		if !strings.HasPrefix(s.Topology, "mesh") && !strings.HasPrefix(s.Topology, "cmesh") {
			return fmt.Errorf("useEVC requires a mesh or cmesh topology, got %q", s.Topology)
		}
		if exp.NumVCs != 0 && exp.NumVCs < 2 {
			return fmt.Errorf("useEVC needs at least 2 VCs, got %d", exp.NumVCs)
		}
	}
	return nil
}
