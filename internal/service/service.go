// Package service is the simulation service behind the nocd daemon: a job
// manager that turns the one-shot experiment API into servable work.
//
// Shape of the subsystem:
//
//   - Submissions are canonicalized (spec.go) and content-addressed by the
//     SHA-256 of their canonical encoding. A key that was already computed
//     is answered from the result cache without simulating; a key that is
//     currently queued or running joins the in-flight job (singleflight)
//     instead of enqueueing a duplicate.
//   - New work enters a bounded FIFO queue; a full queue rejects the
//     submission (backpressure) rather than buffering without limit.
//   - A fixed pool of workers drains the queue. Each worker owns one
//     noc.Pool that it threads through its jobs in sequence — the same
//     free-list reuse pattern as the parallel sweep executor — so steady
//     state stays allocation-free across jobs. Pools never cross workers.
//   - Every job carries a context; cancelling it stops the simulation at
//     the next chunk boundary (noc.Experiment.RunOnContext). Shutdown
//     drains the queue gracefully and escalates to cancelling in-flight
//     jobs when the drain deadline passes.
//
// Results are bit-identical to CLI runs of the same spec: the manager
// changes scheduling only (who runs the simulation when), never the
// simulation itself, and every experiment remains self-contained and
// deterministic.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pseudocircuit/internal/store"
	"pseudocircuit/internal/telemetry"
	"pseudocircuit/noc"
)

// Config parameterizes a Manager. Zero values select the defaults.
type Config struct {
	// Workers is the worker-goroutine count (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the FIFO of jobs waiting for a worker (default 64).
	QueueCap int
	// CacheCap bounds the result cache, oldest-inserted evicted first
	// (default 1024).
	CacheCap int
	// JobsCap bounds retained job records; oldest terminal records are
	// evicted first (default 4096).
	JobsCap int
	// Chunk is the cycle count between cancellation checks and progress
	// updates (default 1000).
	Chunk int
	// SpanCap bounds the job-lifecycle span ring (default 4096).
	SpanCap int
	// Store, when non-nil, persists results on disk under their canonical
	// spec hash: the in-memory cache is consulted first, then the store, and
	// every completed simulation is written through — so the cache survives
	// restarts and can be shared (read-only) across processes. Nil keeps the
	// cache memory-only.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheCap <= 0 {
		c.CacheCap = 1024
	}
	if c.JobsCap <= 0 {
		c.JobsCap = 4096
	}
	if c.Chunk <= 0 {
		c.Chunk = 1000
	}
	if c.SpanCap <= 0 {
		c.SpanCap = 4096
	}
	return c
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is an immutable status snapshot of one submission.
type Job struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// CacheHit marks a submission answered from the result cache without
	// simulating.
	CacheHit bool `json:"cacheHit"`
	// StoreHit marks a cache hit that was served from the persistent disk
	// store rather than process memory — i.e. the result outlived a restart
	// or was written by another process sharing the store directory.
	StoreHit bool `json:"storeHit,omitempty"`
	// Dedup marks a submission that joined an identical in-flight job; the
	// ID is the original job's.
	Dedup       bool `json:"dedup"`
	CyclesDone  int  `json:"cyclesDone"`
	CyclesTotal int  `json:"cyclesTotal"`
	// QueueWaitMS is the wall time the job spent waiting for a worker, in
	// milliseconds; zero for cache hits and while still queued.
	QueueWaitMS float64 `json:"queueWaitMs"`
	// RunMS is the wall time a worker spent simulating, in milliseconds:
	// elapsed-so-far while running, final once terminal, zero for cache hits.
	RunMS float64 `json:"runMs"`
	// CyclesPerSec is the simulation rate over the run so far; present while
	// running and on terminal snapshots of jobs that actually simulated.
	CyclesPerSec float64 `json:"cyclesPerSec,omitempty"`
	// ETASeconds estimates the remaining run time from the current rate;
	// present only while running.
	ETASeconds float64     `json:"etaSeconds,omitempty"`
	Request    Request     `json:"request"`
	Result     *noc.Result `json:"result,omitempty"`
	Error      string      `json:"error,omitempty"`
}

// Submission/lifecycle errors the transport maps to HTTP statuses.
var (
	ErrQueueFull    = errors.New("service: job queue full")
	ErrShuttingDown = errors.New("service: shutting down")
	ErrUnknownJob   = errors.New("service: unknown job")
)

// job is the mutable record behind Job snapshots.
type job struct {
	id     string
	key    string
	scheme string // bounded label value for per-scheme metrics
	req    Request
	exp    noc.Experiment
	total  int
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state

	mu         sync.Mutex
	state      State
	cacheHit   bool
	storeHit   bool
	cyclesDone int
	result     *noc.Result
	err        string

	// Wall-clock lifecycle marks; zero until the phase is reached.
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
}

func (j *job) snapshot() Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Job{
		ID:          j.id,
		Key:         j.key,
		State:       j.state,
		CacheHit:    j.cacheHit,
		StoreHit:    j.storeHit,
		CyclesDone:  j.cyclesDone,
		CyclesTotal: j.total,
		Request:     j.req,
		Error:       j.err,
	}
	if j.result != nil {
		r := *j.result
		s.Result = &r
	}
	if !j.startedAt.IsZero() {
		s.QueueWaitMS = float64(j.startedAt.Sub(j.enqueuedAt)) / float64(time.Millisecond)
		runFor := time.Since(j.startedAt)
		if !j.finishedAt.IsZero() {
			runFor = j.finishedAt.Sub(j.startedAt)
		}
		s.RunMS = float64(runFor) / float64(time.Millisecond)
		if secs := runFor.Seconds(); secs > 0 && j.cyclesDone > 0 {
			s.CyclesPerSec = float64(j.cyclesDone) / secs
			if j.state == StateRunning {
				s.ETASeconds = float64(j.total-j.cyclesDone) / s.CyclesPerSec
			}
		}
	}
	return s
}

// Manager owns the queue, the workers, the cache and the job records.
type Manager struct {
	cfg   Config
	queue chan *job
	wg    sync.WaitGroup
	ins   *instruments

	mu         sync.Mutex
	closed     bool
	seq        int
	jobs       map[string]*job
	jobOrder   []string
	inflight   map[string]*job // by key: queued or running, singleflight
	cache      map[string]noc.Result
	cacheOrder []string

	submitted   atomic.Int64 // accepted submissions (incl. cache/dedup hits)
	enqueued    atomic.Int64 // submissions that became new queued jobs
	cacheHits   atomic.Int64
	storeHits   atomic.Int64 // cache hits served from the disk store
	storeMisses atomic.Int64 // disk lookups that found no intact entry
	dedupHits   atomic.Int64
	rejected    atomic.Int64 // queue-full rejections
	completed   atomic.Int64
	failed      atomic.Int64
	canceled    atomic.Int64
	running     atomic.Int64 // gauge
}

// New starts a manager and its workers.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueCap),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		cache:    make(map[string]noc.Result),
	}
	m.ins = newInstruments(m, cfg.SpanCap)
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit accepts a request, answering from the cache or an identical
// in-flight job when possible, enqueueing a new job otherwise. Errors:
// ErrBadRequest (wrapped, invalid spec), ErrQueueFull, ErrShuttingDown.
func (m *Manager) Submit(r Request) (Job, error) {
	canon, key, exp, err := Canonicalize(r)
	if err != nil {
		return Job{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, ErrShuttingDown
	}
	now := time.Now()
	if res, ok := m.cache[key]; ok {
		j := m.newJobLocked(canon, key, exp)
		j.state = StateDone
		j.cacheHit = true
		j.cyclesDone = j.total
		j.result = &res
		close(j.done)
		m.submitted.Add(1)
		m.cacheHits.Add(1)
		m.ins.submissions.Inc()
		m.ins.cacheHits.Inc()
		m.ins.instant("cache-hit", j, "hit", now)
		return j.snapshot(), nil
	}
	if j, ok := m.inflight[key]; ok {
		m.submitted.Add(1)
		m.dedupHits.Add(1)
		m.ins.submissions.Inc()
		m.ins.coalesced.Inc()
		m.ins.instant("cache-lookup", j, "coalesced", now)
		s := j.snapshot()
		s.Dedup = true
		return s, nil
	}
	// Memory and in-flight both missed; the disk store is the last cache
	// tier before simulating. A disk hit is promoted into the memory cache
	// so repeats stay off the disk.
	if m.cfg.Store != nil {
		if res, ok := m.storeLookupLocked(key); ok {
			m.addCacheLocked(key, res)
			j := m.newJobLocked(canon, key, exp)
			j.state = StateDone
			j.cacheHit = true
			j.storeHit = true
			j.cyclesDone = j.total
			j.result = &res
			close(j.done)
			m.submitted.Add(1)
			m.cacheHits.Add(1)
			m.storeHits.Add(1)
			m.ins.submissions.Inc()
			m.ins.cacheHits.Inc()
			m.ins.storeHits.Inc()
			m.ins.instant("store-hit", j, "hit", now)
			return j.snapshot(), nil
		}
		m.storeMisses.Add(1)
		m.ins.storeMisses.Inc()
	}
	j := m.newJobLocked(canon, key, exp)
	j.enqueuedAt = now // pre-publication: workers only see j after the send
	select {
	case m.queue <- j:
	default:
		// Reject before publishing the record: a rejected submission
		// leaves no trace to poll.
		delete(m.jobs, j.id)
		m.jobOrder = m.jobOrder[:len(m.jobOrder)-1]
		j.cancel()
		m.rejected.Add(1)
		m.ins.rejected.Inc()
		return Job{}, ErrQueueFull
	}
	m.inflight[key] = j
	m.submitted.Add(1)
	m.enqueued.Add(1)
	m.ins.submissions.Inc()
	m.ins.cacheMisses.Inc()
	m.ins.queued.Add(1)
	m.ins.instant("cache-lookup", j, "miss", now)
	return j.snapshot(), nil
}

// newJobLocked allocates and registers a job record; m.mu must be held.
func (m *Manager) newJobLocked(req Request, key string, exp noc.Experiment) *job {
	m.seq++
	warmup, measure := exp.Protocol()
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:     fmt.Sprintf("j%d", m.seq),
		key:    key,
		scheme: schemeLabel(req),
		req:    req,
		exp:    exp,
		total:  warmup + measure,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		state:  StateQueued,
	}
	m.jobs[j.id] = j
	m.jobOrder = append(m.jobOrder, j.id)
	m.evictJobsLocked()
	return j
}

// evictJobsLocked drops the oldest terminal job records over JobsCap.
func (m *Manager) evictJobsLocked() {
	for i := 0; len(m.jobs) > m.cfg.JobsCap && i < len(m.jobOrder); {
		id := m.jobOrder[i]
		j, ok := m.jobs[id]
		if ok && !j.snapshotStateTerminal() {
			i++
			continue
		}
		delete(m.jobs, id)
		m.jobOrder = append(m.jobOrder[:i], m.jobOrder[i+1:]...)
	}
}

func (j *job) snapshotStateTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	// One pool per worker, threaded through its jobs in sequence (never
	// shared across goroutines) — free lists warmed by one job are reused
	// by the next.
	pool := noc.NewPool()
	for j := range m.queue {
		m.runJob(j, pool)
	}
}

func (m *Manager) runJob(j *job, pool *noc.Pool) {
	started := time.Now()
	j.mu.Lock()
	j.state = StateRunning
	j.startedAt = started
	j.mu.Unlock()
	m.ins.queued.Add(-1)
	m.ins.queueWait.Observe(started.Sub(j.enqueuedAt).Seconds())
	m.ins.span("queue-wait", j, "dequeued", j.enqueuedAt, started)
	m.running.Add(1)
	m.ins.running.Add(1)
	res, err := m.simulate(j, pool)
	finished := time.Now()
	m.running.Add(-1)
	m.ins.running.Add(-1)

	m.mu.Lock()
	delete(m.inflight, j.key)
	if err == nil {
		m.addCacheLocked(j.key, res)
	}
	m.mu.Unlock()
	if err == nil && m.cfg.Store != nil {
		// Write-through to the disk tier. A failed write degrades durability,
		// not correctness — the result is already in memory — so it is
		// counted, never fatal.
		if payload, merr := json.Marshal(res); merr == nil {
			if perr := m.cfg.Store.Put(j.key, payload); perr != nil {
				m.ins.storePutErrs.Inc()
			}
		} else {
			m.ins.storePutErrs.Inc()
		}
	}

	j.mu.Lock()
	j.finishedAt = finished
	switch {
	case err == nil:
		j.state = StateDone
		j.cyclesDone = j.total
		j.result = &res
		m.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.err = err.Error()
		m.canceled.Add(1)
	default:
		j.state = StateFailed
		j.err = err.Error()
		m.failed.Add(1)
	}
	outcome := string(j.state)
	cyclesDone := j.cyclesDone
	j.mu.Unlock()
	m.ins.outcomes.With(outcome).Inc()
	m.ins.cycles.Add(uint64(cyclesDone))
	m.ins.runTime.With(j.scheme).Observe(finished.Sub(started).Seconds())
	m.ins.span("run", j, outcome, started, finished)
	close(j.done)
}

// simulate runs one job to completion or cancellation. Any panic out of the
// simulator becomes a failed job, not a dead worker.
func (m *Manager) simulate(j *job, pool *noc.Pool) (res noc.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("simulation panic: %v", p)
		}
	}()
	exp := j.exp
	exp.Pool = pool
	w, err := j.req.Workload.Workload(exp)
	if err != nil {
		return noc.Result{}, err
	}
	n := exp.Build()
	return exp.RunOnContext(j.ctx, n, w, m.cfg.Chunk, func(n *noc.Network) {
		j.mu.Lock()
		j.cyclesDone = int(n.Now())
		j.mu.Unlock()
	})
}

// storeLookupLocked fetches and decodes a result from the disk store; m.mu
// must be held. A checksum-valid entry whose payload no longer decodes
// (format drift across versions) is treated as a miss.
func (m *Manager) storeLookupLocked(key string) (noc.Result, bool) {
	payload, ok := m.cfg.Store.Get(key)
	if !ok {
		return noc.Result{}, false
	}
	var res noc.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		return noc.Result{}, false
	}
	return res, true
}

// addCacheLocked inserts a result, evicting the oldest entries over
// CacheCap; m.mu must be held.
func (m *Manager) addCacheLocked(key string, res noc.Result) {
	if _, ok := m.cache[key]; !ok {
		m.cacheOrder = append(m.cacheOrder, key)
	}
	m.cache[key] = res
	for len(m.cache) > m.cfg.CacheCap {
		old := m.cacheOrder[0]
		m.cacheOrder = m.cacheOrder[1:]
		delete(m.cache, old)
	}
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// Jobs lists snapshots of all retained jobs, oldest first.
func (m *Manager) Jobs() []Job {
	m.mu.Lock()
	order := append([]string(nil), m.jobOrder...)
	js := make([]*job, 0, len(order))
	for _, id := range order {
		if j, ok := m.jobs[id]; ok {
			js = append(js, j)
		}
	}
	m.mu.Unlock()
	out := make([]Job, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	return out
}

// Wait blocks until the job reaches a terminal state or the context ends;
// either way it returns the latest snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, ErrUnknownJob
	}
	select {
	case <-j.done:
		return j.snapshot(), nil
	case <-ctx.Done():
		return j.snapshot(), ctx.Err()
	}
}

// Cancel requests cancellation of a queued or running job. The job reaches
// StateCanceled within one chunk; cancelling a terminal job is a no-op.
// With singleflight dedup a cancel also cancels every submitter attached to
// the job — they share one underlying run by design.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, ErrUnknownJob
	}
	j.cancel()
	m.ins.instant("cancel", j, "requested", time.Now())
	return j.snapshot(), nil
}

// Shutdown stops accepting submissions and drains: queued and running jobs
// keep executing until done or until ctx expires, at which point every
// in-flight job is cancelled and Shutdown waits (briefly — one chunk) for
// the workers to exit. It returns nil on a clean drain, ctx.Err() when the
// deadline forced cancellation.
func (m *Manager) Shutdown(ctx context.Context) error {
	start := time.Now()
	m.mu.Lock()
	alreadyClosed := m.closed
	if !alreadyClosed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.ins.spans.Record(telemetry.Span{
			Name: "drain", Outcome: "clean", Start: start, End: time.Now(),
		})
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.inflight {
			j.cancel()
		}
		m.mu.Unlock()
		<-done
		m.ins.spans.Record(telemetry.Span{
			Name: "drain", Outcome: "deadline", Start: start, End: time.Now(),
		})
		return ctx.Err()
	}
}

// Stats returns the service counters in one map, ready for expvar.
func (m *Manager) Stats() map[string]int64 {
	m.mu.Lock()
	queueLen := int64(len(m.queue))
	cacheSize := int64(len(m.cache))
	inflight := int64(len(m.inflight))
	jobs := int64(len(m.jobs))
	m.mu.Unlock()
	return map[string]int64{
		"submitted":    m.submitted.Load(),
		"enqueued":     m.enqueued.Load(),
		"cache_hits":   m.cacheHits.Load(),
		"store_hits":   m.storeHits.Load(),
		"store_misses": m.storeMisses.Load(),
		"dedup_hits":   m.dedupHits.Load(),
		"rejected":     m.rejected.Load(),
		"completed":    m.completed.Load(),
		"failed":       m.failed.Load(),
		"canceled":     m.canceled.Load(),
		"running":      m.running.Load(),
		"queue_len":    queueLen,
		"cache_size":   cacheSize,
		"inflight":     inflight,
		"jobs":         jobs,
	}
}
