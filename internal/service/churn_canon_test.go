package service

import (
	"errors"
	"strings"
	"testing"
)

// TestCanonicalKeyChurnSensitive: churn is a model parameter, so every churn
// knob — presence, seed, probabilities, salvage policy — must reach the cache
// key. A stale hit across churn levels would silently serve the wrong figure.
func TestCanonicalKeyChurnSensitive(t *testing.T) {
	base := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1}}`
	variants := map[string]string{
		"churn": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"churn":{"seed":1,"linkFail":1e-5,"linkRepair":0.002}}`,
		"churn seed": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"churn":{"seed":2,"linkFail":1e-5,"linkRepair":0.002}}`,
		"churn linkFail": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"churn":{"seed":1,"linkFail":2e-5,"linkRepair":0.002}}`,
		"churn routerFail": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"churn":{"seed":1,"linkFail":1e-5,"linkRepair":0.002,"routerFail":1e-6,"routerRepair":0.001}}`,
		"churn policy": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"churn":{"seed":1,"linkFail":1e-5,"linkRepair":0.002,"drop":"reroute"}}`,
		"reliable": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"reliable":{}}`,
		"reliable budget": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"reliable":{"budget":3}}`,
	}
	seen := map[string]string{keyOf(t, base): "base"}
	for name, raw := range variants {
		k := keyOf(t, raw)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s: key %s", name, prev, k)
		}
		seen[k] = name
	}
}

// TestCanonicalKeyChurnDisabledElided: churn with all-zero fail probabilities
// generates no events, so it canonicalizes away — the run is the same run as
// one with no churn block at all and must share its cache entry.
func TestCanonicalKeyChurnDisabledElided(t *testing.T) {
	plain := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1}}`
	disabled := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
		"churn":{"seed":9,"linkRepair":0.5}}`
	if k1, k2 := keyOf(t, plain), keyOf(t, disabled); k1 != k2 {
		t.Errorf("disabled churn changed the cache key: %s vs %s", k1, k2)
	}
}

// TestCanonicalKeyReliableDefaultsFilled: the zero reliable form selects the
// documented defaults, so spelling the defaults out must hash identically.
func TestCanonicalKeyReliableDefaultsFilled(t *testing.T) {
	zero := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},"reliable":{}}`
	explicit := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
		"reliable":{"timeout":256,"maxTimeout":2048,"budget":8}}`
	if k1, k2 := keyOf(t, zero), keyOf(t, explicit); k1 != k2 {
		t.Errorf("explicit reliable defaults changed the cache key: %s vs %s", k1, k2)
	}
}

// TestCanonicalizeRejectsChurnMisuse: schedule+churn together, out-of-range
// probabilities, unknown policies, and event-count overflow all surface as
// ErrBadRequest at the service boundary.
func TestCanonicalizeRejectsChurnMisuse(t *testing.T) {
	cases := map[string]struct {
		raw  string
		want string
	}{
		"faults and churn": {
			raw: `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
				"faults":{"events":[{"cycle":10,"kind":"link-down","router":5},{"cycle":20,"kind":"link-up","router":5}]},
				"churn":{"seed":1,"linkFail":1e-5,"linkRepair":0.002}}`,
			want: "mutually exclusive",
		},
		"probability above one": {
			raw: `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
				"churn":{"linkFail":2.0}}`,
			want: "outside [0, 1]",
		},
		"negative probability": {
			raw: `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
				"churn":{"linkFail":1e-5,"linkRepair":-0.5}}`,
			want: "outside [0, 1]",
		},
		"unknown policy": {
			raw: `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
				"churn":{"linkFail":1e-5,"drop":"meltdown"}}`,
			want: "drop policy",
		},
		"event overflow": {
			raw: `{"topology":"mesh8x8","scheme":"pseudo+s+b","measure":100000,"workload":{"rate":0.1},
				"churn":{"linkFail":0.9,"linkRepair":0.9}}`,
			want: "events",
		},
	}
	for name, c := range cases {
		r, err := DecodeRequest([]byte(c.raw))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		_, _, _, err = Canonicalize(r)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: error %v is not ErrBadRequest", name, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.want)
		}
	}
}
