package service

import (
	"errors"
	"strings"
	"testing"
)

// FuzzFaultSchedule fuzzes the fault-schedule fragment of a job request
// through the same decode + canonicalize path the daemon runs. The fuzzed
// bytes are spliced in as the "faults" value of an otherwise valid request,
// so the fuzzer concentrates on schedule-shaped input: out-of-range ids,
// past-horizon cycles, down-without-up, duplicate or unsorted events. The
// contract matches FuzzDecodeRequest: hostile schedules must come back as
// ErrBadRequest — never a panic — and accepted ones must canonicalize to a
// fixed point.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte(`{"events":[{"cycle":2000,"kind":"link-down","router":5},{"cycle":4000,"kind":"link-up","router":5}]}`))
	f.Add([]byte(`{"drop":"reroute","events":[{"cycle":1500,"kind":"router-down","router":27},{"cycle":9000,"kind":"router-up","router":27}]}`))
	f.Add([]byte(`{"events":[]}`))
	f.Add([]byte(`null`))
	// Out-of-range ids.
	f.Add([]byte(`{"events":[{"cycle":10,"kind":"link-down","router":64},{"cycle":20,"kind":"link-up","router":64}]}`))
	f.Add([]byte(`{"events":[{"cycle":10,"kind":"link-down","router":-1},{"cycle":20,"kind":"link-up","router":-1}]}`))
	f.Add([]byte(`{"events":[{"cycle":10,"kind":"link-down","router":0,"port":7},{"cycle":20,"kind":"link-up","router":0,"port":7}]}`))
	// Past-horizon and negative cycles.
	f.Add([]byte(`{"events":[{"cycle":999999,"kind":"link-down","router":5},{"cycle":1000000,"kind":"link-up","router":5}]}`))
	f.Add([]byte(`{"events":[{"cycle":-7,"kind":"link-down","router":5},{"cycle":20,"kind":"link-up","router":5}]}`))
	// Down without up, up without down, duplicates, unsorted.
	f.Add([]byte(`{"events":[{"cycle":10,"kind":"link-down","router":5}]}`))
	f.Add([]byte(`{"events":[{"cycle":10,"kind":"link-up","router":5}]}`))
	f.Add([]byte(`{"events":[{"cycle":10,"kind":"link-down","router":5},{"cycle":10,"kind":"link-down","router":5}]}`))
	f.Add([]byte(`{"events":[{"cycle":4000,"kind":"link-up","router":5},{"cycle":2000,"kind":"link-down","router":5}]}`))
	// Unknown kind, router event with a port, malformed JSON.
	f.Add([]byte(`{"events":[{"cycle":10,"kind":"meltdown","router":5}]}`))
	f.Add([]byte(`{"events":[{"cycle":10,"kind":"router-down","router":5,"port":2},{"cycle":20,"kind":"router-up","router":5,"port":2}]}`))
	f.Add([]byte(`{"events":[{"cycle":`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		raw := []byte(`{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},"faults":` + string(data) + `}`)
		r, err := DecodeRequest(raw)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode error not ErrBadRequest: %v", err)
			}
			return
		}
		canon, key, _, err := Canonicalize(r)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("canonicalize error not ErrBadRequest: %v", err)
			}
			if strings.Contains(strings.ToLower(err.Error()), "panic") {
				t.Fatalf("rejection leaked a panic: %v", err)
			}
			return
		}
		canon2, key2, _, err := Canonicalize(canon)
		if err != nil {
			t.Fatalf("canonical form rejected on re-canonicalization: %v", err)
		}
		if key2 != key {
			t.Fatalf("canonicalization not idempotent for %s: key %s then %s", data, key, key2)
		}
		_ = canon2
	})
}

// TestCanonicalKeyFaultsInsensitiveToSpelling: semantically identical fault
// schedules hash identically — reordered events, the default drop policy
// spelled out versus omitted, port 0 explicit versus omitted. Sibling of
// TestCanonicalKeyIgnoresWorkers, but with the opposite polarity: faults DO
// belong in the cache key, only their spelling does not.
func TestCanonicalKeyFaultsInsensitiveToSpelling(t *testing.T) {
	terse := keyOf(t, `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
		"faults":{"events":[{"cycle":2000,"kind":"link-down","router":5},{"cycle":4000,"kind":"link-up","router":5}]}}`)
	spellings := map[string]string{
		"events reordered": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"events":[{"cycle":4000,"kind":"link-up","router":5},{"cycle":2000,"kind":"link-down","router":5}]}}`,
		"defaults filled": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"drop":"drop","events":[{"cycle":2000,"kind":"link-down","router":5,"port":0},{"cycle":4000,"kind":"link-up","router":5,"port":0}]}}`,
		"kind case": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"events":[{"cycle":2000,"kind":"LINK-DOWN","router":5},{"cycle":4000,"kind":"Link-Up","router":5}]}}`,
	}
	for name, raw := range spellings {
		if got := keyOf(t, raw); got != terse {
			t.Errorf("%s: key %s differs from terse form %s", name, got, terse)
		}
	}
}

// TestCanonicalKeyFaultsSensitiveToMeaning: any schedule difference — cycle,
// kind, target, port, drop policy, or having a schedule at all — changes the
// cache key, so a faulted run can never be served a fault-free cached result.
func TestCanonicalKeyFaultsSensitiveToMeaning(t *testing.T) {
	base := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
		"faults":{"events":[{"cycle":2000,"kind":"link-down","router":5},{"cycle":4000,"kind":"link-up","router":5}]}}`
	variants := map[string]string{
		"no faults": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1}}`,
		"cycle": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"events":[{"cycle":2001,"kind":"link-down","router":5},{"cycle":4000,"kind":"link-up","router":5}]}}`,
		"router": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"events":[{"cycle":2000,"kind":"link-down","router":6},{"cycle":4000,"kind":"link-up","router":6}]}}`,
		"port": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"events":[{"cycle":2000,"kind":"link-down","router":27,"port":2},{"cycle":4000,"kind":"link-up","router":27,"port":2}]}}`,
		"port vs east": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"events":[{"cycle":2000,"kind":"link-down","router":27},{"cycle":4000,"kind":"link-up","router":27}]}}`,
		"kind": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"events":[{"cycle":2000,"kind":"router-down","router":5},{"cycle":4000,"kind":"router-up","router":5}]}}`,
		"policy": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"drop":"reroute","events":[{"cycle":2000,"kind":"link-down","router":5},{"cycle":4000,"kind":"link-up","router":5}]}}`,
		"extra window": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
			"faults":{"events":[{"cycle":2000,"kind":"link-down","router":5},{"cycle":4000,"kind":"link-up","router":5},
				{"cycle":6000,"kind":"link-down","router":5},{"cycle":7000,"kind":"link-up","router":5}]}}`,
	}
	baseKey := keyOf(t, base)
	seen := map[string]string{baseKey: "base"}
	for name, raw := range variants {
		k := keyOf(t, raw)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s: key %s", name, prev, k)
		}
		seen[k] = name
	}
}

// TestCanonicalKeyEmptyFaults: an empty schedule is behaviorally identical to
// no schedule, so it must hash identically and the canonical spec must strip
// it entirely.
func TestCanonicalKeyEmptyFaults(t *testing.T) {
	absent := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1}}`
	empty := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},"faults":{"events":[]}}`
	if k1, k2 := keyOf(t, absent), keyOf(t, empty); k1 != k2 {
		t.Errorf("empty fault schedule changed the cache key: %s vs %s", k1, k2)
	}
	canon, _, _, err := Canonicalize(mustDecode(t, empty))
	if err != nil {
		t.Fatal(err)
	}
	if canon.Spec.Faults != nil {
		t.Errorf("canonical spec carries an empty fault schedule: %+v", canon.Spec.Faults)
	}
}

// TestCanonicalizeRejectsFaults: hostile fault schedules fail closed with
// ErrBadRequest before reaching a worker — out-of-range targets, cycles
// outside the run, malformed down/up pairing, unwired ports, and schedules
// on topologies without fault support.
func TestCanonicalizeRejectsFaults(t *testing.T) {
	wrap := func(faults string) string {
		return `{"topology":"mesh8x8","scheme":"pseudo","workload":{"rate":0.1},"faults":` + faults + `}`
	}
	bad := map[string]string{
		"router out of range": wrap(`{"events":[{"cycle":10,"kind":"link-down","router":64},{"cycle":20,"kind":"link-up","router":64}]}`),
		"negative router":     wrap(`{"events":[{"cycle":10,"kind":"link-down","router":-1},{"cycle":20,"kind":"link-up","router":-1}]}`),
		"port out of range":   wrap(`{"events":[{"cycle":10,"kind":"link-down","router":0,"port":7},{"cycle":20,"kind":"link-up","router":0,"port":7}]}`),
		// Router 0 sits at the west edge of the mesh: port 1 (west) has no link.
		"unwired edge port": wrap(`{"events":[{"cycle":10,"kind":"link-down","router":0,"port":1},{"cycle":20,"kind":"link-up","router":0,"port":1}]}`),
		// Default horizon is warmup 1000 + measure 10000 = 11000 cycles.
		"past horizon":           wrap(`{"events":[{"cycle":11000,"kind":"link-down","router":5},{"cycle":11500,"kind":"link-up","router":5}]}`),
		"negative cycle":         wrap(`{"events":[{"cycle":-1,"kind":"link-down","router":5},{"cycle":20,"kind":"link-up","router":5}]}`),
		"down without up":        wrap(`{"events":[{"cycle":10,"kind":"link-down","router":5}]}`),
		"up without down":        wrap(`{"events":[{"cycle":10,"kind":"link-up","router":5}]}`),
		"duplicate event":        wrap(`{"events":[{"cycle":10,"kind":"link-down","router":5},{"cycle":10,"kind":"link-down","router":5}]}`),
		"down down up":           wrap(`{"events":[{"cycle":10,"kind":"link-down","router":5},{"cycle":20,"kind":"link-down","router":5},{"cycle":30,"kind":"link-up","router":5}]}`),
		"same-cycle toggle":      wrap(`{"events":[{"cycle":10,"kind":"link-down","router":5},{"cycle":10,"kind":"link-up","router":5}]}`),
		"unknown kind":           wrap(`{"events":[{"cycle":10,"kind":"meltdown","router":5},{"cycle":20,"kind":"link-up","router":5}]}`),
		"unknown policy":         wrap(`{"drop":"explode","events":[{"cycle":10,"kind":"link-down","router":5},{"cycle":20,"kind":"link-up","router":5}]}`),
		"router event with port": wrap(`{"events":[{"cycle":10,"kind":"router-down","router":5,"port":2},{"cycle":20,"kind":"router-up","router":5,"port":2}]}`),
		"faults on fbfly": `{"topology":"fbfly4x4x4","scheme":"pseudo","workload":{"rate":0.1},
			"faults":{"events":[{"cycle":10,"kind":"link-down","router":0},{"cycle":20,"kind":"link-up","router":0}]}}`,
	}
	for name, raw := range bad {
		r, err := DecodeRequest([]byte(raw))
		if err != nil {
			t.Errorf("%s: failed at decode (%v), want canonicalize-time rejection", name, err)
			continue
		}
		if _, _, _, err := Canonicalize(r); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err %v, want ErrBadRequest", name, err)
		} else if strings.Contains(strings.ToLower(err.Error()), "panic") {
			t.Errorf("%s: rejection leaked a panic: %v", name, err)
		}
	}
}

// TestCanonicalizeAcceptsFaults: a well-formed schedule survives to the
// materialized experiment with its events intact.
func TestCanonicalizeAcceptsFaults(t *testing.T) {
	raw := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
		"faults":{"drop":"reroute","events":[{"cycle":4000,"kind":"link-up","router":5},{"cycle":2000,"kind":"link-down","router":5}]}}`
	canon, _, exp, err := Canonicalize(mustDecode(t, raw))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Faults == nil || len(exp.Faults.Events) != 2 {
		t.Fatalf("materialized experiment lost the fault schedule: %+v", exp.Faults)
	}
	if exp.Faults.Events[0].Cycle != 2000 || exp.Faults.Events[1].Cycle != 4000 {
		t.Errorf("schedule not canonically ordered: %+v", exp.Faults.Events)
	}
	if canon.Spec.Faults == nil || canon.Spec.Faults.Drop != "reroute" {
		t.Errorf("canonical spec lost the drop policy: %+v", canon.Spec.Faults)
	}
}
