package service

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func keyOf(t *testing.T, raw string) string {
	t.Helper()
	r, err := DecodeRequest([]byte(raw))
	if err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	_, key, _, err := Canonicalize(r)
	if err != nil {
		t.Fatalf("canonicalize %s: %v", raw, err)
	}
	return key
}

// TestCanonicalKeyInsensitiveToSpelling: semantically identical specs hash
// identically — reordered fields, defaults spelled out versus omitted,
// case-insensitive names, abbreviated pattern names.
func TestCanonicalKeyInsensitiveToSpelling(t *testing.T) {
	terse := keyOf(t, `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1}}`)
	spellings := map[string]string{
		"reordered fields": `{"workload":{"rate":0.1},"scheme":"pseudo+s+b","topology":"mesh8x8"}`,
		"defaults filled": `{"topology":"mesh8x8","scheme":"pseudo+s+b","routing":"xy","va":"dynamic",
			"staticKey":"destination","numVCs":4,"bufDepth":4,"seed":1,"warmup":1000,"measure":10000,
			"workload":{"kind":"synthetic","pattern":"uniform","rate":0.1,"packetSize":5}}`,
		"case and aliases": `{"topology":"mesh8x8","scheme":"PSEUDO+S+B","routing":"XY",
			"workload":{"pattern":"UR","rate":0.1}}`,
	}
	for name, raw := range spellings {
		if got := keyOf(t, raw); got != terse {
			t.Errorf("%s: key %s differs from terse form %s", name, got, terse)
		}
	}
}

// TestCanonicalKeySensitiveToMeaning: anything that changes the simulation
// changes the key.
func TestCanonicalKeySensitiveToMeaning(t *testing.T) {
	base := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1}}`
	variants := map[string]string{
		"seed":      `{"topology":"mesh8x8","scheme":"pseudo+s+b","seed":2,"workload":{"rate":0.1}}`,
		"scheme":    `{"topology":"mesh8x8","scheme":"pseudo","workload":{"rate":0.1}}`,
		"topology":  `{"topology":"mesh4x4","scheme":"pseudo+s+b","workload":{"rate":0.1}}`,
		"rate":      `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.2}}`,
		"pattern":   `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"pattern":"transpose","rate":0.1}}`,
		"va":        `{"topology":"mesh8x8","scheme":"pseudo+s+b","va":"static","workload":{"rate":0.1}}`,
		"routing":   `{"topology":"mesh8x8","scheme":"pseudo+s+b","routing":"o1turn","workload":{"rate":0.1}}`,
		"numVCs":    `{"topology":"mesh8x8","scheme":"pseudo+s+b","numVCs":8,"workload":{"rate":0.1}}`,
		"measure":   `{"topology":"mesh8x8","scheme":"pseudo+s+b","measure":20000,"workload":{"rate":0.1}}`,
		"cmp":       `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"kind":"cmp","benchmark":"specjbb"}}`,
		"benchmark": `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"kind":"cmp","benchmark":"fft"}}`,
	}
	baseKey := keyOf(t, base)
	seen := map[string]string{baseKey: "base"}
	for name, raw := range variants {
		k := keyOf(t, raw)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s: key %s", name, prev, k)
		}
		seen[k] = name
	}
}

// TestCanonicalKeyIgnoresWorkers: the worker count is an execution knob
// with no effect on results, so it must not change the cache key — a
// sequential run's cached result serves parallel requests and vice versa.
// The materialized experiment still carries it so the job runs with the
// requested parallelism.
func TestCanonicalKeyIgnoresWorkers(t *testing.T) {
	seq := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1}}`
	par := `{"topology":"mesh8x8","scheme":"pseudo+s+b","workers":8,"workload":{"rate":0.1}}`
	if k1, k2 := keyOf(t, seq), keyOf(t, par); k1 != k2 {
		t.Errorf("workers changed the cache key: %s vs %s", k1, k2)
	}
	r, err := DecodeRequest([]byte(par))
	if err != nil {
		t.Fatal(err)
	}
	canon, _, exp, err := Canonicalize(r)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Workers != 8 {
		t.Errorf("materialized experiment lost the worker count: got %d, want 8", exp.Workers)
	}
	if canon.Spec.Workers != 0 {
		t.Errorf("canonical spec carries workers=%d, want 0 (stripped)", canon.Spec.Workers)
	}
	for _, w := range []string{"-1", "1000"} {
		raw := `{"topology":"mesh8x8","scheme":"pseudo","workers":` + w + `,"workload":{"rate":0.1}}`
		if _, _, _, err := Canonicalize(mustDecode(t, raw)); !errors.Is(err, ErrBadRequest) {
			t.Errorf("workers=%s err = %v, want ErrBadRequest", w, err)
		}
	}
}

func mustDecode(t *testing.T, raw string) Request {
	t.Helper()
	r, err := DecodeRequest([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCanonicalIdempotent: canonicalizing a canonical request is a fixed
// point — same struct, same key.
func TestCanonicalIdempotent(t *testing.T) {
	r, err := DecodeRequest([]byte(`{"topology":"cmesh4x4x4","scheme":"pseudo+b","va":"static","workload":{"pattern":"bc","rate":0.05}}`))
	if err != nil {
		t.Fatal(err)
	}
	c1, k1, _, err := Canonicalize(r)
	if err != nil {
		t.Fatal(err)
	}
	c2, k2, _, err := Canonicalize(c1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("canonicalization not idempotent: %s then %s", k1, k2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("canonical form not a fixed point:\n%+v\n%+v", c1, c2)
	}
}

// TestDecodeRequestStrict: unknown fields and trailing garbage are rejected
// at decode time with ErrBadRequest.
func TestDecodeRequestStrict(t *testing.T) {
	bad := []string{
		`{"topology":"mesh8x8","scheme":"pseudo","wrokload":{"rate":0.1}}`, // typo field
		`{"topology":"mesh8x8","scheme":"pseudo"} trailing`,
		`{"topology":`,
		`[1,2,3]`,
		``,
	}
	for _, raw := range bad {
		if _, err := DecodeRequest([]byte(raw)); !errors.Is(err, ErrBadRequest) {
			t.Errorf("DecodeRequest(%q) err = %v, want ErrBadRequest", raw, err)
		}
	}
}

// TestCanonicalizeRejects: hostile or nonsensical specs fail closed with
// ErrBadRequest (never a panic) before reaching a worker.
func TestCanonicalizeRejects(t *testing.T) {
	bad := map[string]string{
		"negative mesh dims": `{"topology":"mesh-4x-4","scheme":"pseudo","workload":{"rate":0.1}}`,
		"degenerate mesh":    `{"topology":"mesh1x1","scheme":"pseudo","workload":{"rate":0.1}}`,
		"huge mesh":          `{"topology":"mesh4096x4096","scheme":"pseudo","workload":{"rate":0.1}}`,
		"huge concentration": `{"topology":"cmesh4x4x4096","scheme":"pseudo","workload":{"rate":0.1}}`,
		"bare cmesh":         `{"topology":"cmesh","scheme":"pseudo","workload":{"rate":0.1}}`,
		"rate over 1":        `{"topology":"mesh8x8","scheme":"pseudo","workload":{"rate":1.5}}`,
		"zero rate":          `{"topology":"mesh8x8","scheme":"pseudo","workload":{}}`,
		"cmp plus synthetic": `{"topology":"mesh8x8","scheme":"pseudo","workload":{"kind":"cmp","benchmark":"fft","rate":0.1}}`,
		"cmp wrong size":     `{"topology":"mesh4x4","scheme":"pseudo","workload":{"kind":"cmp","benchmark":"fft"}}`,
		"synthetic w/ bench": `{"topology":"mesh8x8","scheme":"pseudo","workload":{"rate":0.1,"benchmark":"fft"}}`,
		"unknown kind":       `{"topology":"mesh8x8","scheme":"pseudo","workload":{"kind":"openloop","rate":0.1}}`,
	}
	for name, raw := range bad {
		r, err := DecodeRequest([]byte(raw))
		if err != nil {
			t.Errorf("%s: failed at decode (%v), want canonicalize-time rejection", name, err)
			continue
		}
		if _, _, _, err := Canonicalize(r); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err %v, want ErrBadRequest", name, err)
		}
		if err != nil && strings.Contains(strings.ToLower(err.Error()), "panic") {
			t.Errorf("%s: rejection leaked a panic: %v", name, err)
		}
	}
}
