package service

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"pseudocircuit/noc"
)

// FuzzDecodeRequest fuzzes the job-request decode + canonicalize path the
// daemon runs on every POST /jobs body. The contract: malformed input must
// come back as ErrBadRequest — never a panic (a panic here would take down
// a worker-pool submission path) and never an unbounded allocation (the
// topology bounds run before any topology is built). Valid input must
// canonicalize to a fixed point.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1}}`))
	f.Add([]byte(`{"topology":"cmesh4x4x4","scheme":"baseline","va":"static","seed":9,"workload":{"kind":"cmp","benchmark":"specjbb"}}`))
	f.Add([]byte(`{"topology":"fbfly4x4x4","scheme":"pseudo","routing":"o1turn","workload":{"pattern":"bc","rate":0.3}}`))
	f.Add([]byte(`{"topology":"mesh-1x-1","scheme":"pseudo","workload":{"rate":0.1}}`))
	f.Add([]byte(`{"topology":"mesh99999999x99999999","scheme":"pseudo","workload":{"rate":0.1}}`))
	f.Add([]byte(`{"topology":"mesh8x8","scheme":"pseudo","workload":{"rate":1e308}}`))
	f.Add([]byte(`{"topology":"mesh8x8","scheme":"pseudo","measure":-5,"workload":{"rate":0.1}}`))
	f.Add([]byte(`{"topology":"mesh8x8","scheme":"pseudo+s+b","workload":{"rate":0.1},
		"faults":{"events":[{"cycle":2000,"kind":"link-down","router":5},{"cycle":4000,"kind":"link-up","router":5}]}}`))
	f.Add([]byte(`{"topology":"mesh8x8","scheme":"pseudo","workload":{"rate":0.1},
		"faults":{"drop":"reroute","events":[{"cycle":99,"kind":"router-down","router":70}]}}`))
	f.Add([]byte(`{"topology":"mesh8x8","scheme":"pseudo","workload":{"rate":0.1},
		"faults":{"events":[{"cycle":-1,"kind":"meltdown","router":0,"port":9}]}}`))
	f.Add([]byte(`{"unknown":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("decode error not ErrBadRequest: %v", err)
			}
			return
		}
		canon, key, _, err := Canonicalize(r)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("canonicalize error not ErrBadRequest: %v", err)
			}
			return
		}
		canon2, key2, _, err := Canonicalize(canon)
		if err != nil {
			t.Fatalf("canonical form rejected on re-canonicalization: %v", err)
		}
		// reflect.DeepEqual, not struct equality: Spec.Faults is a pointer,
		// and idempotency is about content, not identity.
		if key2 != key || !reflect.DeepEqual(canon2, canon) {
			t.Fatalf("canonicalization not idempotent for %s:\nkey  %s vs %s\nform %+v vs %+v",
				data, key, key2, canon, canon2)
		}
	})
}

// FuzzChurnSpec fuzzes the churn-parameter validation path with hostile
// values the wire decoder cannot always produce (NaN, infinities, negative
// probabilities arrive here via programmatic callers). The contract:
// invalid parameters must come back as ErrBadRequest — never a panic, and
// never a structurally invalid fault schedule reaching the kernel — and
// accepted requests must canonicalize to a fixed point (churn parameters
// are part of the cache key).
func FuzzChurnSpec(f *testing.F) {
	f.Add(uint64(7), 1e-5, 0.002, 5e-6, 0.001, "drop", 1000, 10000)
	f.Add(uint64(1), 0.0, 0.0, 0.0, 0.0, "", 0, 0)
	f.Add(uint64(0), 1.0, 0.0, 1.0, 0.0, "reroute", 100, 500)
	f.Add(uint64(3), -0.5, 2.0, math.NaN(), math.Inf(1), "drop", 1000, 10000)
	f.Add(uint64(9), 1e-9, 1e-9, 0.0, 0.0, "meltdown", 200, 9_000_000)
	f.Add(uint64(2), 0.9, 0.9, 0.9, 0.9, "drop", 1000, 10000)

	f.Fuzz(func(t *testing.T, seed uint64, lf, lr, rf, rr float64, drop string, warmup, measure int) {
		r := Request{
			Spec: noc.Spec{
				Topology: "mesh8x8", Scheme: "pseudo+s+b", VA: "static",
				Warmup: warmup, Measure: measure,
				Churn: &noc.ChurnSpec{
					Seed: seed, LinkFail: lf, LinkRepair: lr,
					RouterFail: rf, RouterRepair: rr, Drop: drop,
				},
				Reliable: &noc.ReliableSpec{},
			},
			Workload: noc.WorkloadSpec{Rate: 0.1},
		}
		canon, key, exp, err := Canonicalize(r)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("canonicalize error not ErrBadRequest: %v", err)
			}
			return
		}
		canon2, key2, _, err := Canonicalize(canon)
		if err != nil {
			t.Fatalf("canonical form rejected on re-canonicalization: %v", err)
		}
		if key2 != key || !reflect.DeepEqual(canon2, canon) {
			t.Fatalf("canonicalization not idempotent:\nkey  %s vs %s\nform %+v vs %+v",
				key, key2, canon, canon2)
		}
		// An accepted churn must expand into a schedule the kernel accepts:
		// Build re-validates it and panics on structural violations.
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Build panicked on accepted churn %+v: %v", r.Spec.Churn, p)
				}
			}()
			exp.Build()
		}()
	})
}
