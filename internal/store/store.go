// Package store is a disk-backed content-addressed result store: one file
// per canonical-spec hash, each self-checksummed, the whole directory
// LRU-bounded by bytes. It is the persistence layer under the simulation
// service's in-memory result cache — results survive daemon restarts, and a
// directory can be shared read-only across processes (every Get re-reads
// and re-verifies the file, so a reader never depends on the writer's
// in-memory index).
//
// Entry format: the 64-hex-character SHA-256 of the payload, a newline,
// then the payload. Writes go to a dot-prefixed temp file in the same
// directory, are synced, then renamed into place — a crash mid-write leaves
// a temp file (swept at the next Open) or a torn entry (caught by the
// checksum at Open or Get, evicted, never served), but never a readable
// half-result under a valid key.
//
// The store knows nothing about what the payloads mean: it moves bytes. The
// service layer owns (de)serialization of noc.Result and the metric names;
// the store exports plain counters (Evictions, Corrupt) for it to re-expose.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// headerLen is the checksum line: 64 hex characters plus the newline.
const headerLen = 65

// ErrReadOnly is returned by Put on a store opened with OpenReadOnly.
var ErrReadOnly = errors.New("store: read-only")

// Store is a disk-backed key→payload store. Keys are 64-character lowercase
// hex strings (the service's canonical spec hashes). Safe for concurrent
// use by multiple goroutines; safe for concurrent use across processes only
// in the one-writer, many-readers arrangement the package comment
// describes.
type Store struct {
	dir      string
	maxBytes int64
	readOnly bool

	mu      sync.Mutex
	entries map[string]*entry
	// lru orders resident entries, least recently used first. Entries track
	// their slice position so touch/remove stay O(n) only in the eviction
	// path, O(1)-amortized on hits (move-to-back via index swap would break
	// ordering; n is small — thousands — and Get already does disk I/O).
	lru []*entry

	bytes atomic.Int64

	evictions    atomic.Uint64
	evictedBytes atomic.Uint64
	corrupt      atomic.Uint64
}

type entry struct {
	key  string
	size int64 // file size on disk, header included
}

// Open opens (creating if needed) the store at dir with the given byte cap.
// The index is rebuilt from a directory scan: leftover temp files are
// removed, every entry is checksum-verified (corrupt and truncated entries
// are evicted on the spot), survivors are ordered least-recently-used first
// by file modification time, and the byte cap is enforced before Open
// returns. maxBytes must be positive.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("store: byte cap %d must be positive", maxBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, entries: map[string]*entry{}}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictOverCapLocked(0)
	s.mu.Unlock()
	return s, nil
}

// OpenReadOnly opens the store at dir for reads only: Get re-verifies
// entries straight off the disk (no index, no cap, no eviction — corrupt
// entries are reported as misses and counted, never deleted), so a second
// process can serve hits from a directory a live daemon is writing.
func OpenReadOnly(dir string) (*Store, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("store: %s is not a directory", dir)
	}
	return &Store{dir: dir, readOnly: true, entries: map[string]*entry{}}, nil
}

// scan rebuilds the index from the directory, removing temp-file leftovers
// and corrupt entries.
func (s *Store) scan() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type survivor struct {
		e     *entry
		mtime time.Time
	}
	var alive []survivor
	for _, de := range des {
		name := de.Name()
		if !de.Type().IsRegular() {
			continue
		}
		if name[0] == '.' {
			// Crash leftover from an interrupted atomic write.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if !validKey(name) {
			continue // foreign file; not ours to manage
		}
		path := filepath.Join(s.dir, name)
		if _, err := loadVerified(path); err != nil {
			s.corrupt.Add(1)
			os.Remove(path)
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		alive = append(alive, survivor{&entry{key: name, size: fi.Size()}, fi.ModTime()})
	}
	sort.Slice(alive, func(i, j int) bool {
		if !alive[i].mtime.Equal(alive[j].mtime) {
			return alive[i].mtime.Before(alive[j].mtime)
		}
		return alive[i].e.key < alive[j].e.key // stable order for equal stamps
	})
	for _, sv := range alive {
		s.entries[sv.e.key] = sv.e
		s.lru = append(s.lru, sv.e)
		s.bytes.Add(sv.e.size)
	}
	return nil
}

// Get returns the payload stored under key. The entry is read from disk and
// checksum-verified on every call; a corrupt entry is evicted (read-write
// stores only), counted, and reported as a miss — never served.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	path := filepath.Join(s.dir, key)
	if s.readOnly {
		payload, err := loadVerified(path)
		if err != nil {
			if !os.IsNotExist(err) {
				s.corrupt.Add(1)
			}
			return nil, false
		}
		return payload, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, err := loadVerified(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.dropLocked(key) // vanished externally; forget it
			return nil, false
		}
		s.corrupt.Add(1)
		os.Remove(path)
		s.dropLocked(key)
		return nil, false
	}
	if e, ok := s.entries[key]; ok {
		s.touchLocked(e)
	} else {
		// Written by another process sharing the directory; adopt it.
		e := &entry{key: key, size: int64(len(payload)) + headerLen}
		s.entries[key] = e
		s.lru = append(s.lru, e)
		s.bytes.Add(e.size)
		s.evictOverCapLocked(0)
	}
	// Refresh the on-disk recency mark so LRU order survives a restart.
	now := time.Now()
	os.Chtimes(path, now, now)
	return payload, true
}

// Put stores payload under key, atomically (write temp, sync, rename) and
// within the byte cap: least-recently-used entries are evicted first, and a
// payload larger than the whole cap is not stored at all (counted as an
// eviction rather than silently wedging the store).
func (s *Store) Put(key string, payload []byte) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	size := int64(len(payload)) + headerLen
	if size > s.maxBytes {
		s.evictions.Add(1)
		s.evictedBytes.Add(uint64(size))
		return nil
	}
	sum := sha256.Sum256(payload)
	data := make([]byte, 0, size)
	data = append(data, hex.EncodeToString(sum[:])...)
	data = append(data, '\n')
	data = append(data, payload...)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictOverCapLocked(size)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err = tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(s.dir, key))
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if e, ok := s.entries[key]; ok {
		s.bytes.Add(size - e.size)
		e.size = size
		s.touchLocked(e)
	} else {
		e := &entry{key: key, size: size}
		s.entries[key] = e
		s.lru = append(s.lru, e)
		s.bytes.Add(size)
	}
	return nil
}

// Delete removes the entry, if present. Not counted as an eviction.
func (s *Store) Delete(key string) {
	if s.readOnly || !validKey(key) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove(filepath.Join(s.dir, key))
	s.dropLocked(key)
}

// evictOverCapLocked removes least-recently-used entries until `need` more
// bytes fit under the cap.
func (s *Store) evictOverCapLocked(need int64) {
	for len(s.lru) > 0 && s.bytes.Load()+need > s.maxBytes {
		e := s.lru[0]
		os.Remove(filepath.Join(s.dir, e.key))
		s.dropLocked(e.key)
		s.evictions.Add(1)
		s.evictedBytes.Add(uint64(e.size))
	}
}

// dropLocked removes key from the index without touching the disk.
func (s *Store) dropLocked(key string) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	delete(s.entries, key)
	for i, le := range s.lru {
		if le == e {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
	s.bytes.Add(-e.size)
}

// touchLocked moves e to the most-recently-used end.
func (s *Store) touchLocked(e *entry) {
	for i, le := range s.lru {
		if le == e {
			copy(s.lru[i:], s.lru[i+1:])
			s.lru[len(s.lru)-1] = e
			return
		}
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of resident entries (0 for read-only stores, which
// keep no index).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the resident size in bytes, headers included.
func (s *Store) Bytes() int64 { return s.bytes.Load() }

// Evictions returns the number of entries evicted by the byte cap (plus
// oversize payloads rejected at Put).
func (s *Store) Evictions() uint64 { return s.evictions.Load() }

// EvictedBytes returns the total bytes reclaimed by those evictions.
func (s *Store) EvictedBytes() uint64 { return s.evictedBytes.Load() }

// Corrupt returns the number of corrupt or truncated entries detected (at
// Open or Get) and evicted — torn writes from a crash, external tampering.
func (s *Store) Corrupt() uint64 { return s.corrupt.Load() }

// loadVerified reads an entry file and verifies its checksum, returning the
// payload. Any structural problem — too short, bad header, digest mismatch —
// is an error distinct from fs.ErrNotExist.
func loadVerified(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerLen || data[headerLen-1] != '\n' {
		return nil, fmt.Errorf("store: %s: truncated entry", path)
	}
	payload := data[headerLen:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(data[:headerLen-1]) {
		return nil, fmt.Errorf("store: %s: checksum mismatch", path)
	}
	return payload, nil
}

// validKey reports whether key is a 64-character lowercase-hex name — the
// only filenames the store creates or manages.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
