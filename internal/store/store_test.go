package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, dir string, cap int64) *Store {
	t.Helper()
	s, err := Open(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	payload := []byte(`{"avgLatency": 12.5}`)
	if err := s.Put(testKey(1), payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(testKey(1))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.Get(testKey(2)); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if want := int64(len(payload)) + headerLen; s.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(), want)
	}
}

func TestRejectsInvalidKeys(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	for _, key := range []string{"", "abc", strings.Repeat("g", 64), strings.Repeat("A", 64), "../../etc/passwd"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) reported a hit for an invalid key", key)
		}
	}
}

// TestReopenServesIntactEntries: the index is rebuilt from the directory
// scan, and every intact entry still hits after a restart.
func TestReopenServesIntactEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	payloads := map[string][]byte{}
	for i := 0; i < 8; i++ {
		k := testKey(i)
		payloads[k] = []byte(fmt.Sprintf(`{"point": %d}`, i))
		if err := s.Put(k, payloads[k]); err != nil {
			t.Fatal(err)
		}
	}

	s2 := mustOpen(t, dir, 1<<20)
	if s2.Len() != 8 {
		t.Fatalf("reopened Len = %d, want 8", s2.Len())
	}
	for k, want := range payloads {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after reopen Get(%s) = %q, %v; want %q, true", k[:8], got, ok, want)
		}
	}
}

// TestCrashMidWrite simulates a daemon killed mid-write: one entry torn
// (truncated in place), one entry's bytes flipped, a temp file left behind.
// Reopening must evict the damaged entries and the temp leftover while every
// intact entry still hits.
func TestCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	for i := 0; i < 6; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf(`{"point": %d}`, i))); err != nil {
			t.Fatal(err)
		}
	}

	// Tear entry 0: keep the header but truncate the payload mid-byte.
	torn := filepath.Join(dir, testKey(0))
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Corrupt entry 1: flip a payload byte, length unchanged.
	flipped := filepath.Join(dir, testKey(1))
	data, err = os.ReadFile(flipped)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(flipped, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncate entry 2 inside the header (shorter than any valid entry).
	if err := os.WriteFile(filepath.Join(dir, testKey(2)), []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And the interrupted atomic write's temp file.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-12345"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 1<<20)
	if got := s2.Corrupt(); got != 3 {
		t.Fatalf("Corrupt = %d, want 3", got)
	}
	if s2.Len() != 3 {
		t.Fatalf("Len = %d, want 3 survivors", s2.Len())
	}
	for i := 0; i < 3; i++ {
		if _, ok := s2.Get(testKey(i)); ok {
			t.Fatalf("damaged entry %d served after reopen", i)
		}
	}
	for i := 3; i < 6; i++ {
		got, ok := s2.Get(testKey(i))
		if !ok || string(got) != fmt.Sprintf(`{"point": %d}`, i) {
			t.Fatalf("intact entry %d lost: %q, %v", i, got, ok)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-12345")); !os.IsNotExist(err) {
		t.Fatal("temp leftover survived the reopen scan")
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn entry file survived the reopen scan")
	}
}

// TestGetDetectsCorruption: an entry damaged while the store is open is
// caught by the per-Get verification, evicted and never served.
func TestGetDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	if err := s.Put(testKey(0), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, testKey(0))
	data, _ := os.ReadFile(path)
	data[headerLen] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(0)); ok {
		t.Fatal("corrupt entry served")
	}
	if s.Corrupt() != 1 {
		t.Fatalf("Corrupt = %d, want 1", s.Corrupt())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("index retained the corrupt entry: len %d bytes %d", s.Len(), s.Bytes())
	}
}

// TestLRUByteCap: eviction respects the byte cap, removes least-recently-
// used entries first, and a Get refreshes recency.
func TestLRUByteCap(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	entrySize := int64(len(payload)) + headerLen // 165
	s := mustOpen(t, dir, 4*entrySize)

	for i := 0; i < 4; i++ {
		if err := s.Put(testKey(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 || s.Bytes() != 4*entrySize {
		t.Fatalf("resident %d entries / %d bytes, want 4 / %d", s.Len(), s.Bytes(), 4*entrySize)
	}

	// Touch the oldest so it survives the next eviction.
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	if err := s.Put(testKey(4), payload); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() > 4*entrySize {
		t.Fatalf("Bytes %d exceeds cap %d", s.Bytes(), 4*entrySize)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("recently-touched entry 0 was evicted")
	}
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions())
	}

	// An oversize payload is rejected outright, never stored.
	big := bytes.Repeat([]byte("y"), int(4*entrySize))
	if err := s.Put(testKey(9), big); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(9)); ok {
		t.Fatal("oversize payload was stored")
	}
}

// TestLRUOrderSurvivesRestart: recency is carried across restarts through
// file mtimes, so a reopened store evicts the same entries a live one would.
func TestLRUOrderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	entrySize := int64(len(payload)) + headerLen
	s := mustOpen(t, dir, 10*entrySize)
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 4; i++ {
		if err := s.Put(testKey(i), payload); err != nil {
			t.Fatal(err)
		}
		// Pin well-separated mtimes so the reopen scan sees an unambiguous
		// recency order regardless of filesystem timestamp granularity.
		stamp := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, testKey(i)), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	// Entry 0 is oldest on disk; a reopened store capped to 3 entries must
	// drop exactly it.
	s2 := mustOpen(t, dir, 3*entrySize)
	if _, ok := s2.Get(testKey(0)); ok {
		t.Fatal("oldest entry survived the reopen cap")
	}
	for i := 1; i < 4; i++ {
		if _, ok := s2.Get(testKey(i)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
}

// TestReadOnlySharing: a read-only store on the same directory serves
// entries a read-write store wrote after the reader opened, rejects writes,
// and reports corruption without deleting anything.
func TestReadOnlySharing(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, 1<<20)
	r, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(testKey(0), []byte("shared")); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get(testKey(0))
	if !ok || string(got) != "shared" {
		t.Fatalf("read-only Get = %q, %v", got, ok)
	}
	if err := r.Put(testKey(1), []byte("nope")); err != ErrReadOnly {
		t.Fatalf("read-only Put err = %v, want ErrReadOnly", err)
	}

	path := filepath.Join(dir, testKey(0))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(testKey(0)); ok {
		t.Fatal("read-only store served a corrupt entry")
	}
	if r.Corrupt() != 1 {
		t.Fatalf("read-only Corrupt = %d, want 1", r.Corrupt())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("read-only store deleted a file")
	}
}

// TestConcurrentAccess hammers one store from several goroutines; the race
// detector and the final invariants are the assertions.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := testKey(g*50 + i)
				if err := s.Put(k, []byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get(k); !ok {
					t.Errorf("just-written key %s missing", k[:8])
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
}
