package telemetry

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("jobs_total", "jobs"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := r.Gauge("queue_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jobs_by_state_total", "per-state jobs", "state")
	v.With("done").Add(2)
	v.With("failed").Inc()
	if v.With("done").Value() != 2 || v.With("failed").Value() != 1 {
		t.Fatalf("children: done=%d failed=%d", v.With("done").Value(), v.With("failed").Value())
	}
	// Same name+label re-resolves; same name with a different shape panics.
	_ = r.CounterVec("jobs_by_state_total", "per-state jobs", "state")
	assertPanics(t, func() { r.CounterVec("jobs_by_state_total", "x", "scheme") })
	assertPanics(t, func() { r.Gauge("jobs_by_state_total", "x") })
	assertPanics(t, func() { r.Counter("invalid name!", "x") })
}

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	// Buckets: (<=1): 0.5, 1 -> 2; (<=2): 1.5 -> 1; (<=4): 3 -> 1; +Inf: 100.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	assertPanics(t, func() { r.Histogram("bad_bounds", "x", []float64{2, 1}) })
	assertPanics(t, func() { r.Histogram("no_bounds", "x", []float64{}) })
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	v := r.HistogramVec("hv_seconds", "", "scheme", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 0.001)
				v.With([]string{"a", "b"}[w%2]).Observe(0.01)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if n := v.With("a").Count() + v.With("b").Count(); n != 8000 {
		t.Fatalf("vec count = %d, want 8000", n)
	}
}

// The hot path — increments, observes and resolved vec children — must not
// allocate: the service records telemetry on every request and the
// steady-state discipline of the lower layers extends up here.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	vec := r.CounterVec("v_total", "", "scheme")
	vec.With("pseudo+s+b").Inc() // create the child outside the measured loop
	hv := r.HistogramVec("hv_seconds", "", "scheme", nil)
	hv.With("pseudo+s+b").Observe(1)

	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(4.5)
		g.Add(-1)
		h.Observe(0.25)
		vec.With("pseudo+s+b").Inc()
		hv.With("pseudo+s+b").Observe(0.125)
	}); n != 0 {
		t.Fatalf("hot path allocates %.1f/op, want 0", n)
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
