// Package telemetry is the service-layer metrics core: named counters,
// gauges and fixed-bucket histograms behind a Prometheus text-format
// exposition writer (prometheus.go) and a wall-clock span log with JSONL /
// Chrome trace exporters (span.go).
//
// It mirrors the discipline the kernel's stats/obs layers established one
// level down: dependency-free (standard library only), allocation-free on
// the hot path (Counter.Add, Gauge.Set, Histogram.Observe and resolved
// vector children perform no allocations and take no locks — everything is
// atomics over preallocated storage), and observation-only (recording never
// feeds back into the work being measured).
//
// Cardinality is a design constraint, not an afterthought: vectors carry
// exactly one label, children are created on first use and never deleted,
// and label values must come from small closed sets (scheme names, job
// states) — never from request data like job IDs or spec hashes.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down. Stored as float bits so Set is
// a single atomic store.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop; lock-free).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: counts[i] holds the observations
// that fell between bounds[i-1] (exclusive) and bounds[i] (inclusive); the
// last slot is the +Inf overflow. Exposition accumulates the counts into
// Prometheus's cumulative le-buckets. All storage is preallocated at
// registration, so Observe never allocates.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, +Inf implicit
	counts  []atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the sample sum, CAS-added
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not increasing at %d (%g <= %g)",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search beats linear walk only past ~16 buckets; duration bucket
	// sets are around that size, and sort.SearchFloat64s does not allocate.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Percentile estimates the p-th percentile (p in [0,100]) by linear
// interpolation inside the bucket containing that rank. The first bucket
// interpolates from zero (observations here are non-negative durations); the
// overflow bucket cannot be interpolated and reports the highest finite
// bound. An empty histogram reports 0.
func (h *Histogram) Percentile(p float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := math.Ceil(p / 100 * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(seen+c) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			// Position of the rank within this bucket, in (0, 1].
			frac := (rank - float64(seen)) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Quantiles returns the standard reporting set (p50, p90, p99).
func (h *Histogram) Quantiles() (p50, p90, p99 float64) {
	return h.Percentile(50), h.Percentile(90), h.Percentile(99)
}

// DurationBuckets is the default bucket set for service latencies, in
// seconds: 100µs to ~2 minutes, roughly trebling. Queue waits at an idle
// daemon land in the first buckets; saturated-queue waits and long
// simulations in the last.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// kind discriminates registered metric families.
type kind uint8

const (
	kindCounter kind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "?"
}

// child is one labeled series within a family (or the single unlabeled
// series of a plain metric).
type child struct {
	labelValue string // empty for unlabeled metrics
	c          *Counter
	g          *Gauge
	fn         func() float64
	cfn        func() uint64
	h          *Histogram
}

// family is one named metric with its help text and children.
type family struct {
	name   string
	help   string
	kind   kind
	label  string // label name for vectors, empty otherwise
	bounds []float64

	mu       sync.Mutex
	children []*child
	byValue  map[string]*child
}

func (f *family) childFor(value string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.byValue[value]; ok {
		return ch
	}
	ch := &child{labelValue: value}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindGauge:
		ch.g = &Gauge{}
	case kindHistogram:
		ch.h = newHistogram(f.bounds)
	}
	f.byValue[value] = ch
	f.children = append(f.children, ch)
	return ch
}

// snapshotChildren copies the child list under the family lock so exposition
// iterates a stable slice while new children appear.
func (f *family) snapshotChildren() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*child(nil), f.children...)
}

// Registry holds metric families in registration order. Registration takes a
// lock and may allocate; it happens at startup. The returned instruments are
// lock-free thereafter.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// register creates (or re-resolves) a family; re-registering with a
// different kind or label panics — metric names are a schema, not a
// namespace to be squatted twice.
func (r *Registry) register(name, help string, k kind, label string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if label != "" && !validName(label) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || f.label != label {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s/%q, was %s/%q",
				name, k, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, label: label, bounds: bounds,
		byValue: map[string]*child{}}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or returns the existing) plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, "", nil).childFor("").c
}

// Gauge registers (or returns the existing) plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, "", nil).childFor("").g
}

// GaugeFunc registers a gauge whose value is pulled from fn at exposition
// time — for values another subsystem already maintains (queue length, cache
// size). fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGaugeFunc, "", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.byValue[""]; ok {
		panic(fmt.Sprintf("telemetry: gauge func %q registered twice", name))
	}
	ch := &child{fn: fn}
	f.byValue[""] = ch
	f.children = append(f.children, ch)
}

// CounterFunc registers a counter whose value is pulled from fn at
// exposition time — for monotonic counts another subsystem already
// maintains (the disk store's eviction tally). fn must be safe to call
// concurrently and must never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, kindCounterFunc, "", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.byValue[""]; ok {
		panic(fmt.Sprintf("telemetry: counter func %q registered twice", name))
	}
	ch := &child{cfn: fn}
	f.byValue[""] = ch
	f.children = append(f.children, ch)
}

// Histogram registers (or returns the existing) plain histogram. Nil bounds
// select DurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return r.register(name, help, kindHistogram, "", bounds).childFor("").h
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// CounterVec registers (or returns the existing) labeled counter family.
func (r *Registry) CounterVec(name, help, label string) CounterVec {
	if label == "" {
		panic("telemetry: CounterVec needs a label name")
	}
	return CounterVec{r.register(name, help, kindCounter, label, nil)}
}

// With resolves the child for one label value, creating it on first use.
// Resolve once and keep the *Counter when the call site is hot.
func (v CounterVec) With(value string) *Counter { return v.f.childFor(value).c }

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns the existing) labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) GaugeVec {
	if label == "" {
		panic("telemetry: GaugeVec needs a label name")
	}
	return GaugeVec{r.register(name, help, kindGauge, label, nil)}
}

// With resolves the child for one label value, creating it on first use.
func (v GaugeVec) With(value string) *Gauge { return v.f.childFor(value).g }

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns the existing) labeled histogram family.
// Nil bounds select DurationBuckets.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) HistogramVec {
	if label == "" {
		panic("telemetry: HistogramVec needs a label name")
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	return HistogramVec{r.register(name, help, kindHistogram, label, bounds)}
}

// With resolves the child for one label value, creating it on first use.
func (v HistogramVec) With(value string) *Histogram { return v.f.childFor(value).h }

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_][a-zA-Z0-9_]* (colons are reserved for recording rules).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
