package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the Prometheus text exposition format
// this package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered family in the Prometheus text
// exposition format (version 0.0.4), in registration order: a # HELP and
// # TYPE line per family, then one sample line per child (histograms expand
// to cumulative _bucket lines plus _sum and _count). Exposition is the
// reporting path — it allocates freely and takes the registration locks.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range families {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, ch := range f.snapshotChildren() {
			writeChild(bw, f, ch)
		}
	}
	return bw.Flush()
}

func writeChild(bw *bufio.Writer, f *family, ch *child) {
	lbl := ""
	if f.label != "" {
		lbl = fmt.Sprintf("{%s=%q}", f.label, ch.labelValue)
	}
	switch f.kind {
	case kindCounter:
		fmt.Fprintf(bw, "%s%s %d\n", f.name, lbl, ch.c.Value())
	case kindCounterFunc:
		fmt.Fprintf(bw, "%s%s %d\n", f.name, lbl, ch.cfn())
	case kindGauge:
		fmt.Fprintf(bw, "%s%s %s\n", f.name, lbl, formatFloat(ch.g.Value()))
	case kindGaugeFunc:
		fmt.Fprintf(bw, "%s%s %s\n", f.name, lbl, formatFloat(ch.fn()))
	case kindHistogram:
		h := ch.h
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, bucketLabels(f.label, ch.labelValue, formatFloat(b)), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, bucketLabels(f.label, ch.labelValue, "+Inf"), cum)
		fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, lbl, formatFloat(h.Sum()))
		fmt.Fprintf(bw, "%s_count%s %d\n", f.name, lbl, h.Count())
	}
}

func bucketLabels(label, value, le string) string {
	if label == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("{%s=%q,le=%q}", label, value, le)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip form, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the text-format spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ValidateExposition checks a Prometheus text-format stream: every sample
// line must parse (name, optional one-level labels, float value), names must
// match the # TYPE declarations, histogram buckets must be cumulative with
// increasing le bounds ending at +Inf, and _count must equal the +Inf
// bucket. It returns the number of metric families seen. Like the obs/stats
// validators it is strict on structure so CI can gate on it.
func ValidateExposition(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	types := map[string]string{}
	// histState tracks one histogram child's bucket walk, keyed by family
	// plus non-le labels.
	type histState struct {
		lastLe  float64
		lastCum uint64
		infCum  uint64
		hasInf  bool
	}
	hists := map[string]*histState{}
	counts := map[string]uint64{}
	lineNo, samples := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return len(types), fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return len(types), fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return len(types), fmt.Errorf("line %d: %v", lineNo, err)
		}
		samples++
		// Resolve the family: an exact name match wins (a gauge may be
		// literally named foo_count); otherwise peel a histogram suffix.
		base, suffix := name, ""
		typ, declared := types[name]
		if !declared {
			base, suffix = splitSuffix(name)
			typ, declared = types[base]
		}
		if !declared {
			// Samples before any TYPE line are legal exposition (untyped),
			// but this writer always declares; hold it to its own schema.
			return len(types), fmt.Errorf("line %d: sample %q has no # TYPE line", lineNo, name)
		}
		switch {
		case typ == "histogram" && suffix == "_bucket":
			le, ok := labels["le"]
			if !ok {
				return len(types), fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			leV, err := parseLe(le)
			if err != nil {
				return len(types), fmt.Errorf("line %d: %v", lineNo, err)
			}
			key := base + "|" + labelKeyWithout(labels, "le")
			st := hists[key]
			if st == nil {
				st = &histState{lastLe: math.Inf(-1)}
				hists[key] = st
			}
			cum := uint64(value)
			if float64(cum) != value || value < 0 {
				return len(types), fmt.Errorf("line %d: bucket count %v not a non-negative integer", lineNo, value)
			}
			if leV <= st.lastLe {
				return len(types), fmt.Errorf("line %d: bucket le %q not increasing", lineNo, le)
			}
			if cum < st.lastCum {
				return len(types), fmt.Errorf("line %d: bucket counts not cumulative (%d < %d)", lineNo, cum, st.lastCum)
			}
			st.lastLe, st.lastCum = leV, cum
			if math.IsInf(leV, 1) {
				st.hasInf, st.infCum = true, cum
			}
		case typ == "histogram" && suffix == "_count":
			key := base + "|" + labelKeyWithout(labels, "le")
			counts[key] = uint64(value)
		case typ == "histogram" && suffix == "_sum":
			// Any float is fine.
		case typ == "histogram":
			return len(types), fmt.Errorf("line %d: histogram sample %q without _bucket/_sum/_count suffix", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return len(types), err
	}
	if samples == 0 {
		return 0, fmt.Errorf("exposition: no samples")
	}
	for key, st := range hists {
		if !st.hasInf {
			return len(types), fmt.Errorf("histogram %s: no +Inf bucket", strings.SplitN(key, "|", 2)[0])
		}
		if c, ok := counts[key]; ok && c != st.infCum {
			return len(types), fmt.Errorf("histogram %s: _count %d != +Inf bucket %d",
				strings.SplitN(key, "|", 2)[0], c, st.infCum)
		}
	}
	return len(types), nil
}

// parseSample splits `name{l1="v1",...} value [timestamp]` into parts.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		if err := parseLabels(rest[i+1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("sample line %q has no value", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	if !validName(strings.TrimSuffix(name, ":")) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	valueField := strings.Fields(rest)
	if len(valueField) < 1 || len(valueField) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	v, err := parseValue(valueField[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	return name, labels, v, nil
}

func parseLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %q value not quoted", key)
		}
		val, remainder, err := scanQuoted(rest)
		if err != nil {
			return fmt.Errorf("label %q: %v", key, err)
		}
		if _, dup := out[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val
		s = strings.TrimPrefix(strings.TrimSpace(remainder), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// scanQuoted consumes a double-quoted string with \\, \" and \n escapes.
func scanQuoted(s string) (val, rest string, err error) {
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\', '"':
				sb.WriteByte(s[i])
			case 'n':
				sb.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return sb.String(), s[i+1:], nil
		default:
			sb.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// splitSuffix peels a histogram sample suffix off a metric name.
func splitSuffix(name string) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf
		}
	}
	return name, ""
}

// labelKeyWithout renders labels (minus one key) as a stable identity string.
func labelKeyWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q,", k, labels[k])
	}
	return sb.String()
}
