package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func buildRegistry() *Registry {
	r := NewRegistry()
	r.Counter("nocd_cache_hits_total", "submissions answered from the result cache").Add(3)
	r.Gauge("nocd_queue_length", "jobs waiting for a worker").Set(2)
	r.GaugeFunc("nocd_cache_entries", "cached results", func() float64 { return 7 })
	h := r.Histogram("nocd_queue_wait_seconds", "enqueue to dequeue", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	v := r.HistogramVec("nocd_run_seconds", "simulation wall time", "scheme", []float64{1, 10})
	v.With("pseudo+s+b").Observe(0.5)
	v.With("baseline").Observe(20)
	return r
}

func TestWritePrometheusShape(t *testing.T) {
	var buf bytes.Buffer
	if err := buildRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE nocd_cache_hits_total counter",
		"nocd_cache_hits_total 3",
		"# TYPE nocd_queue_length gauge",
		"nocd_queue_length 2",
		"nocd_cache_entries 7",
		"# TYPE nocd_queue_wait_seconds histogram",
		`nocd_queue_wait_seconds_bucket{le="0.01"} 1`,
		`nocd_queue_wait_seconds_bucket{le="0.1"} 2`,
		`nocd_queue_wait_seconds_bucket{le="1"} 2`,
		`nocd_queue_wait_seconds_bucket{le="+Inf"} 3`,
		"nocd_queue_wait_seconds_count 3",
		`nocd_run_seconds_bucket{scheme="pseudo+s+b",le="1"} 1`,
		`nocd_run_seconds_bucket{scheme="baseline",le="+Inf"} 1`,
		`nocd_run_seconds_count{scheme="baseline"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestExpositionRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := buildRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families, err := ValidateExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own exposition rejected: %v\n%s", err, buf.String())
	}
	if families != 5 {
		t.Fatalf("validated %d families, want 5", families)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no samples":         "# TYPE a counter\n",
		"untyped sample":     "a_total 3\n",
		"bad value":          "# TYPE a counter\na three\n",
		"bad name":           "# TYPE a counter\n9a 3\n",
		"unterminated label": "# TYPE a gauge\na{x=\"y 3\n",
		"dup TYPE":           "# TYPE a counter\n# TYPE a counter\na 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"le not increasing": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count != +Inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, doc := range cases {
		if _, err := ValidateExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted\n%s", name, doc)
		}
	}
	// A gauge literally named like a histogram suffix must not be
	// misattributed to a histogram family.
	ok := "# TYPE foo_count gauge\nfoo_count 3\n"
	if _, err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("gauge named foo_count rejected: %v", err)
	}
}

// Percentile interpolation at bucket edges (satellite): ranks landing
// exactly on a bucket boundary must report the boundary, interior ranks
// interpolate linearly, and the degenerate shapes (empty, single-bucket,
// overflow-only) stay finite.
func TestHistogramPercentileEdges(t *testing.T) {
	mk := func() *Histogram { return newHistogram([]float64{10, 20, 40}) }

	t.Run("empty", func(t *testing.T) {
		if p := mk().Percentile(99); p != 0 {
			t.Fatalf("empty histogram p99 = %v, want 0", p)
		}
	})

	t.Run("exact bucket edge", func(t *testing.T) {
		h := mk()
		for i := 0; i < 4; i++ {
			h.Observe(5) // all in (0,10]
		}
		// Every rank is inside the first bucket; p100's rank (4) sits at the
		// bucket's top edge and must report exactly the upper bound.
		if p := h.Percentile(100); p != 10 {
			t.Fatalf("p100 = %v, want exactly the bucket edge 10", p)
		}
		// p25 -> rank 1 of 4 -> a quarter of the way through (0,10].
		if p := h.Percentile(25); p != 2.5 {
			t.Fatalf("p25 = %v, want 2.5", p)
		}
	})

	t.Run("interpolates interior bucket", func(t *testing.T) {
		h := mk()
		h.Observe(5)  // bucket (0,10]
		h.Observe(15) // bucket (10,20]
		h.Observe(15)
		h.Observe(15)
		// rank(50) = ceil(0.5*4) = 2 -> first of the three in (10,20]:
		// 10 + 10 * (2-1)/3.
		want := 10 + 10*(1.0/3)
		if p := h.Percentile(50); math.Abs(p-want) > 1e-12 {
			t.Fatalf("p50 = %v, want %v", p, want)
		}
		// rank(100) = 4 -> top of (10,20] -> exactly 20.
		if p := h.Percentile(100); p != 20 {
			t.Fatalf("p100 = %v, want 20", p)
		}
	})

	t.Run("overflow bucket clamps", func(t *testing.T) {
		h := mk()
		h.Observe(1000)
		if p := h.Percentile(50); p != 40 {
			t.Fatalf("overflow p50 = %v, want highest finite bound 40", p)
		}
	})

	t.Run("p0 clamps to rank 1", func(t *testing.T) {
		h := mk()
		h.Observe(5)
		h.Observe(35)
		// p0 clamps to rank 1: the single first-bucket sample occupies its
		// whole bucket (frac 1), so the estimate is that bucket's top edge.
		if p := h.Percentile(0); p != 10 {
			t.Fatalf("p0 = %v, want first bucket edge 10", p)
		}
	})

	t.Run("quantile order", func(t *testing.T) {
		h := newHistogram(DurationBuckets)
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i) * 0.001)
		}
		p50, p90, p99 := h.Quantiles()
		if !(p50 <= p90 && p90 <= p99) {
			t.Fatalf("quantiles not monotone: %v %v %v", p50, p90, p99)
		}
	})
}
