package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pseudocircuit/internal/obs"
)

func sampleLog() *SpanLog {
	l := NewSpanLog(16)
	base := l.base
	l.Record(Span{Name: "cache-miss", Job: "j1", Key: "abcd1234efgh5678", Scheme: "pseudo+s+b",
		Outcome: "enqueued", Start: base, End: base})
	l.Record(Span{Name: "queue-wait", Job: "j1", Key: "abcd1234efgh5678", Scheme: "pseudo+s+b",
		Outcome: "dequeued", Start: base, End: base.Add(2 * time.Millisecond)})
	l.Record(Span{Name: "run", Job: "j1", Key: "abcd1234efgh5678", Scheme: "pseudo+s+b",
		Outcome: "done", Start: base.Add(2 * time.Millisecond), End: base.Add(30 * time.Millisecond)})
	l.Record(Span{Name: "drain", Outcome: "clean", Start: base.Add(40 * time.Millisecond),
		End: base.Add(41 * time.Millisecond)})
	return l
}

func TestSpanLogRing(t *testing.T) {
	l := NewSpanLog(2)
	for i := 0; i < 5; i++ {
		l.Record(Span{Name: "run", Job: "j1"})
	}
	if l.Len() != 2 || l.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", l.Len(), l.Dropped())
	}
	assertPanics(t, func() { NewSpanLog(0) })
}

func TestSpanJSONLRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateSpansJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own export rejected: %v\n%s", err, buf.String())
	}
	if n != 4 {
		t.Fatalf("validated %d spans, want 4", n)
	}
	// The run span's duration must survive the round trip.
	var found bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var s struct {
			Span  string `json:"span"`
			DurUs int64  `json:"durUs"`
		}
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatal(err)
		}
		if s.Span == "run" {
			found = true
			if s.DurUs != 28_000 {
				t.Fatalf("run durUs = %d, want 28000", s.DurUs)
			}
		}
	}
	if !found {
		t.Fatal("run span missing from export")
	}
}

func TestValidateSpansRejects(t *testing.T) {
	for name, doc := range map[string]string{
		"empty":         "",
		"unknown field": `{"span":"run","job":"j1","key":"","scheme":"","outcome":"","startUs":0,"durUs":0,"extra":1}`,
		"empty name":    `{"span":"","job":"j1","key":"","scheme":"","outcome":"","startUs":0,"durUs":0}`,
		"negative time": `{"span":"run","job":"j1","key":"","scheme":"","outcome":"","startUs":-5,"durUs":0}`,
	} {
		if _, err := ValidateSpansJSONL(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// The span Chrome export must validate against the same trace_event checker
// as the flit-lifecycle traces — that is the whole point of sharing the
// format — and must keep its lanes clear of the simulation pids.
func TestSpanChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("chrome trace invalid: %v\n%s", err, buf.String())
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int64  `json:"pid"`
			Tid  int64  `json:"tid"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var runSeen, metaSeen bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			metaSeen = true
			continue
		}
		if ev.Pid != ServicePid {
			t.Fatalf("span event on pid %d, want %d", ev.Pid, ServicePid)
		}
		if strings.HasPrefix(ev.Name, "run") {
			runSeen = true
			if ev.Ph != "X" || ev.Dur != 28_000 {
				t.Fatalf("run slice ph=%q dur=%d, want X/28000", ev.Ph, ev.Dur)
			}
			if ev.Tid != 1 {
				t.Fatalf("run span lane %d, want job lane 1", ev.Tid)
			}
		}
	}
	if !runSeen || !metaSeen {
		t.Fatalf("runSeen=%v metaSeen=%v, want both", runSeen, metaSeen)
	}
}
