package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"pseudocircuit/internal/obs"
)

// Span is one closed interval of a job's lifecycle on the service's
// wall-clock timeline: the queue wait between enqueue and dequeue, the run
// itself, a cache lookup (duration ~0), a cancellation request or the
// daemon-wide drain. Spans are observations of scheduling, never of
// simulated time — simulation results are bit-identical with span recording
// on, because nothing reads the log back.
type Span struct {
	Name    string // "queue-wait", "run", "cache-hit", "cache-miss", "coalesced", "cancel", "drain"
	Job     string // job ID, empty for daemon-scoped spans
	Key     string // canonical spec hash (may be truncated for display)
	Scheme  string // canonical scheme name, for per-scheme slicing
	Outcome string // terminal disposition: "done", "failed", "canceled", ...
	Start   time.Time
	End     time.Time
}

// Duration returns the span length (zero for instant spans).
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// SpanLog is a bounded, concurrency-safe ring of Spans. Unlike the
// simulation tracer (single-goroutine by contract) the service records spans
// from every worker, so the ring takes a mutex — spans close at job
// granularity (a handful per job), never per cycle, so the lock is cold.
// When the ring fills, the oldest spans are evicted and counted in Dropped.
type SpanLog struct {
	mu      sync.Mutex
	ring    []Span
	head    int
	dropped uint64
	base    time.Time // export timestamps are offsets from here
}

// NewSpanLog returns a log retaining up to capacity spans, with export
// timestamps relative to now.
func NewSpanLog(capacity int) *SpanLog {
	if capacity <= 0 {
		panic("telemetry: span log capacity must be positive")
	}
	return &SpanLog{ring: make([]Span, 0, capacity), base: time.Now()}
}

// Record appends one span, evicting the oldest when the ring is full.
func (l *SpanLog) Record(s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, s)
		return
	}
	l.ring[l.head] = s
	l.head = (l.head + 1) % len(l.ring)
	l.dropped++
}

// Len returns the number of retained spans.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Dropped returns how many spans were evicted by the ring bound.
func (l *SpanLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Spans returns the retained spans in recording order (a copy; safe to
// keep). Reporting-path only: it allocates.
func (l *SpanLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, len(l.ring))
	out = append(out, l.ring[l.head:]...)
	out = append(out, l.ring[:l.head]...)
	return out
}

// spanJSON is the strict JSONL wire form of a Span. Timestamps are
// microseconds since the log's base so the stream lines up with the Chrome
// export's ts axis.
type spanJSON struct {
	Span    string `json:"span"`
	Job     string `json:"job"`
	Key     string `json:"key"`
	Scheme  string `json:"scheme"`
	Outcome string `json:"outcome"`
	StartUs int64  `json:"startUs"`
	DurUs   int64  `json:"durUs"`
}

// WriteJSONL writes the retained spans as one JSON object per line, in
// recording order.
func (l *SpanLog) WriteJSONL(w io.Writer) error {
	l.mu.Lock()
	base := l.base
	l.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range l.Spans() {
		line := spanJSON{
			Span: s.Name, Job: s.Job, Key: s.Key, Scheme: s.Scheme, Outcome: s.Outcome,
			StartUs: s.Start.Sub(base).Microseconds(),
			DurUs:   s.Duration().Microseconds(),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ValidateSpansJSONL checks a span JSONL stream: every line must strictly
// decode as a spanJSON with a non-empty span name and non-negative
// start/duration. Spans are recorded at close time by concurrent workers, so
// no ordering is required. It returns the number of spans validated.
func ValidateSpansJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		data := bytes.TrimSpace(sc.Bytes())
		if len(data) == 0 {
			continue
		}
		n++
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var s spanJSON
		if err := dec.Decode(&s); err != nil {
			return n, fmt.Errorf("span line %d: %v", n, err)
		}
		if s.Span == "" {
			return n, fmt.Errorf("span line %d: empty span name", n)
		}
		if s.StartUs < 0 || s.DurUs < 0 {
			return n, fmt.Errorf("span line %d: negative time (start %d, dur %d)", n, s.StartUs, s.DurUs)
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("spans: empty stream")
	}
	return n, nil
}

// ServicePid is the trace_event process ID service spans render under —
// far above the router pids and the NI pid base of the flit-lifecycle
// export, so one merged timeline keeps its lanes distinct.
const ServicePid = 1 << 21

type spanArgs struct {
	Job     string `json:"job"`
	Key     string `json:"key"`
	Scheme  string `json:"scheme"`
	Outcome string `json:"outcome"`
}

// WriteChromeTrace writes the retained spans in the same Chrome trace_event
// form as the flit-lifecycle tracer (internal/obs): complete "X" slices
// under a "nocd service" process, one thread lane per job. Ts is
// microseconds since the log's base — the same axis as WriteJSONL.
func (l *SpanLog) WriteChromeTrace(w io.Writer) error {
	l.mu.Lock()
	base := l.base
	l.mu.Unlock()
	cw, err := obs.NewChromeWriter(w)
	if err != nil {
		return err
	}
	if err := cw.NameProcess(ServicePid, "nocd service"); err != nil {
		return err
	}
	for _, s := range l.Spans() {
		name := s.Name
		if s.Outcome != "" {
			name += " " + s.Outcome
		}
		ph, dur := "X", s.Duration().Microseconds()
		scope := ""
		if dur <= 0 {
			// Instant spans (cache lookups, cancels) as thread-scoped marks.
			ph, dur, scope = "i", 0, "t"
		}
		if err := cw.Event(obs.ChromeEvent{
			Name: name, Ph: ph,
			Ts: s.Start.Sub(base).Microseconds(), Dur: dur,
			Pid: ServicePid, Tid: spanLane(s.Job), S: scope,
			Args: spanArgs{Job: s.Job, Key: shortKey(s.Key), Scheme: s.Scheme, Outcome: s.Outcome},
		}); err != nil {
			return err
		}
	}
	return cw.Close()
}

// spanLane maps a job ID ("j42") to its thread lane; daemon-scoped spans
// (drain) share lane 0.
func spanLane(job string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(job, "j"), 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// shortKey truncates a spec hash for display.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
