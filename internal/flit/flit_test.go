package flit_test

import (
	"strings"
	"testing"
	"testing/quick"

	"pseudocircuit/internal/flit"
)

func TestSplitSingleFlit(t *testing.T) {
	p := &flit.Packet{ID: 1, Src: 0, Dst: 5, Size: 1}
	fs := flit.Split(p)
	if len(fs) != 1 {
		t.Fatalf("len = %d, want 1", len(fs))
	}
	f := fs[0]
	if f.Kind != flit.HeadTail || !f.Kind.IsHead() || !f.Kind.IsTail() {
		t.Fatalf("single-flit packet kind = %v", f.Kind)
	}
}

func TestSplitMultiFlit(t *testing.T) {
	p := &flit.Packet{ID: 2, Src: 1, Dst: 2, Size: 5}
	fs := flit.Split(p)
	if len(fs) != 5 {
		t.Fatalf("len = %d, want 5", len(fs))
	}
	if fs[0].Kind != flit.Header {
		t.Errorf("first flit kind = %v, want Header", fs[0].Kind)
	}
	for i := 1; i < 4; i++ {
		if fs[i].Kind != flit.Body {
			t.Errorf("flit %d kind = %v, want Body", i, fs[i].Kind)
		}
	}
	if fs[4].Kind != flit.Tail {
		t.Errorf("last flit kind = %v, want Tail", fs[4].Kind)
	}
	for i, f := range fs {
		if f.Seq != i || f.Packet != p {
			t.Errorf("flit %d: seq %d packet %p", i, f.Seq, f.Packet)
		}
	}
}

func TestSplitProperties(t *testing.T) {
	err := quick.Check(func(size uint8) bool {
		n := int(size%32) + 1
		fs := flit.Split(&flit.Packet{Size: n})
		heads, tails := 0, 0
		for _, f := range fs {
			if f.Kind.IsHead() {
				heads++
			}
			if f.Kind.IsTail() {
				tails++
			}
		}
		return len(fs) == n && heads == 1 && tails == 1 &&
			fs[0].Kind.IsHead() && fs[n-1].Kind.IsTail()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split of empty packet did not panic")
		}
	}()
	flit.Split(&flit.Packet{Size: 0})
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[flit.Kind]string{
		flit.Header: "H", flit.Body: "B", flit.Tail: "T", flit.HeadTail: "HT",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[flit.Class]string{
		flit.ClassRequest: "req", flit.ClassResponse: "resp",
		flit.ClassCoherence: "coh", flit.ClassData: "data",
	} {
		if c.String() != want {
			t.Errorf("%v.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestFlitString(t *testing.T) {
	p := &flit.Packet{ID: 7, Src: 3, Dst: 9, Size: 2}
	fs := flit.Split(p)
	s := fs[0].String()
	for _, frag := range []string{"pkt=7", "3->9", "H"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
