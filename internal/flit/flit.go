// Package flit defines the units of data transferred by the network:
// packets, the flits they are split into, and the message classes used by
// the CMP coherence substrate.
//
// A packet is created by a sender network interface (NI), split into flits
// that fit the link bandwidth, and reassembled at the receiver NI. The first
// flit of a packet is the header flit carrying routing information; the last
// is the tail flit; flits in between are body flits (paper §3.A).
package flit

import (
	"fmt"

	"pseudocircuit/internal/sim"
)

// Kind distinguishes the position of a flit within its packet.
type Kind uint8

const (
	// Header is the first flit of a packet; it carries routing information.
	Header Kind = iota
	// Body flits follow the header and carry payload.
	Body
	// Tail is the last flit; its departure releases the virtual channel.
	Tail
	// HeadTail is a single-flit packet (address-only messages).
	HeadTail
)

func (k Kind) String() string {
	switch k {
	case Header:
		return "H"
	case Body:
		return "B"
	case Tail:
		return "T"
	case HeadTail:
		return "HT"
	default:
		return "?"
	}
}

// IsHead reports whether the flit carries a packet header.
func (k Kind) IsHead() bool { return k == Header || k == HeadTail }

// IsTail reports whether the flit terminates a packet.
func (k Kind) IsTail() bool { return k == Tail || k == HeadTail }

// Class is the message class a packet belongs to. The CMP substrate uses it
// to separate coherence transaction types; synthetic traffic uses ClassData.
type Class uint8

const (
	// ClassRequest is a read/write request (address-only, 1 flit).
	ClassRequest Class = iota
	// ClassResponse is a data response (address + cache block, 5 flits).
	ClassResponse
	// ClassCoherence is a coherence-management message (invalidation/ack).
	ClassCoherence
	// ClassData is generic synthetic-workload data.
	ClassData
	// ClassAck is a reliability-layer acknowledgement (single flit, sent by
	// the receiver NI back to the packet's source; never itself acked).
	ClassAck
)

func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "req"
	case ClassResponse:
		return "resp"
	case ClassCoherence:
		return "coh"
	case ClassData:
		return "data"
	case ClassAck:
		return "ack"
	default:
		return "?"
	}
}

// Packet is a network message before flit-ization. Src and Dst are node IDs
// (terminal positions in the topology).
type Packet struct {
	ID       uint64
	Src      int
	Dst      int
	Size     int // number of flits
	Class    Class
	Injected sim.Cycle // cycle the packet entered the source queue
	NetStart sim.Cycle // cycle the header flit left the source NI
	Hops     int       // router hops taken (set by the network)

	// Meta carries workload-level payload (e.g. the CMP substrate's
	// coherence message); the network never inspects it.
	Meta any

	// RelSeq is the reliability layer's per-flow (src,dst) sequence number,
	// 1-based; zero means the packet is unsequenced (reliability off, or an
	// unreliable class). Retransmissions of a packet carry the same RelSeq,
	// which is what lets the receiver NI deduplicate them.
	RelSeq uint64

	// RelAck marks reliability acknowledgements: RelSeq then names the
	// sequence number being acknowledged and Dst the flow's original sender.
	RelAck bool

	// Dropped marks packets killed by a fault (dead link or router). It
	// guards against double-kill when several fault sweeps reach the same
	// packet in one storm; pool recycling clears it.
	Dropped bool

	// pooled marks packets owned by a Pool; only those re-enter the free
	// list on recycle.
	pooled bool
}

// Flit is the unit of flow control. It carries lookahead routing state:
// NextOut is the output port to use at the router the flit is about to
// enter, computed one hop ahead (Galles-style lookahead routing, paper §3.A).
type Flit struct {
	Packet *Packet
	Kind   Kind
	Seq    int // index within packet, 0-based

	// VC is the virtual channel the flit occupies on the link it last
	// traversed; set by the upstream router's VC allocator (or the NI).
	VC int

	// NextOut is the output port to take at the router this flit is
	// arriving at (lookahead routing). -1 means "eject here".
	NextOut int

	// RouteClass pins O1TURN packets to their XY/YX VC class for the whole
	// route so deadlock freedom holds.
	RouteClass int

	// ExpressHops is the number of intermediate routers this flit may still
	// bypass on an express virtual channel (EVC comparison baseline, paper
	// §7.B). Zero for ordinary flits.
	ExpressHops int

	// Timestamps for measurement.
	InjectedAt sim.Cycle // cycle the header left the source NI queue
	EnteredNet sim.Cycle // cycle this flit entered the network (link to first router)

	// pooled marks flits owned by a Pool; only those re-enter the free list
	// on recycle.
	pooled bool
}

// String renders a compact debugging description.
func (f *Flit) String() string {
	return fmt.Sprintf("%s[pkt=%d %d->%d seq=%d vc=%d out=%d]",
		f.Kind, f.Packet.ID, f.Packet.Src, f.Packet.Dst, f.Seq, f.VC, f.NextOut)
}

// Split converts a packet into its flits. The caller sets per-flit routing
// (VC, NextOut) at injection time.
func Split(p *Packet) []*Flit {
	if p.Size <= 0 {
		panic("flit: packet size must be positive")
	}
	fs := make([]*Flit, p.Size)
	for i := 0; i < p.Size; i++ {
		k := Body
		switch {
		case p.Size == 1:
			k = HeadTail
		case i == 0:
			k = Header
		case i == p.Size-1:
			k = Tail
		}
		fs[i] = &Flit{Packet: p, Kind: k, Seq: i}
	}
	return fs
}
