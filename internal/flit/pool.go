package flit

// Pool is a free list of flits and packets that eliminates steady-state
// allocations in the simulation kernel: a network splits packets into pooled
// flits at injection and recycles them at ejection, so after warmup the tick
// path allocates nothing.
//
// Ownership protocol (DESIGN.md §9):
//
//   - A flit handed to RecycleFlit must not be referenced afterwards; the
//     pool zeroes it and reuses it for a future packet.
//   - A packet handed to RecyclePacket must not be referenced afterwards.
//     The network recycles a packet after Workload.Deliver returns, so
//     workloads must copy anything they need (including Meta) before
//     returning from Deliver.
//   - Only pool-originated objects re-enter the pool: recycling a packet or
//     flit built with a plain composite literal is a no-op, so external code
//     that constructs its own packets (tests, ahead-of-time schedulers) is
//     unaffected.
//
// A Pool is not safe for concurrent use. Each network owns one; parallel
// experiment drivers give each worker its own pool and reuse it across that
// worker's sequential runs.
type Pool struct {
	flits   []*Flit
	packets []*Packet
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// NewPacket returns a zeroed pool-owned packet.
func (pl *Pool) NewPacket() *Packet {
	if n := len(pl.packets); n > 0 {
		p := pl.packets[n-1]
		pl.packets[n-1] = nil
		pl.packets = pl.packets[:n-1]
		return p
	}
	return &Packet{pooled: true}
}

// RecyclePacket returns a pool-owned packet to the free list, zeroing it.
// Packets not originating from a pool are ignored.
func (pl *Pool) RecyclePacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	*p = Packet{pooled: true}
	pl.packets = append(pl.packets, p)
}

// newFlit returns a zeroed pool-owned flit.
func (pl *Pool) newFlit() *Flit {
	if n := len(pl.flits); n > 0 {
		f := pl.flits[n-1]
		pl.flits[n-1] = nil
		pl.flits = pl.flits[:n-1]
		return f
	}
	return &Flit{pooled: true}
}

// RecycleFlit returns a pool-owned flit to the free list, zeroing it. Flits
// not originating from a pool are ignored.
func (pl *Pool) RecycleFlit(f *Flit) {
	if f == nil || !f.pooled {
		return
	}
	*f = Flit{pooled: true}
	pl.flits = append(pl.flits, f)
}

// SplitInto converts a packet into its flits like Split, drawing the flits
// from the pool and appending them to dst (pass dst[:0] to reuse a scratch
// slice). The caller sets per-flit routing (VC, NextOut) at injection time.
func (pl *Pool) SplitInto(dst []*Flit, p *Packet) []*Flit {
	if p.Size <= 0 {
		panic("flit: packet size must be positive")
	}
	for i := 0; i < p.Size; i++ {
		k := Body
		switch {
		case p.Size == 1:
			k = HeadTail
		case i == 0:
			k = Header
		case i == p.Size-1:
			k = Tail
		}
		f := pl.newFlit()
		f.Packet, f.Kind, f.Seq = p, k, i
		dst = append(dst, f)
	}
	return dst
}

// FreeFlits reports the number of flits currently parked in the pool
// (diagnostics and tests).
func (pl *Pool) FreeFlits() int { return len(pl.flits) }

// FreePackets reports the number of packets currently parked in the pool
// (diagnostics and tests).
func (pl *Pool) FreePackets() int { return len(pl.packets) }
