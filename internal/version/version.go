// Package version renders a build identifier for the repo's binaries from
// the information the Go linker embeds, so a deployed nocsim/sweep/nocd can
// always say what it was built from.
package version

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String returns a one-line identifier for the named command:
// module version (when built as a versioned dependency), VCS revision and
// dirty marker (when built from a checkout), and the Go toolchain.
func String(cmd string) string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return cmd + " (no build info)"
	}
	var b strings.Builder
	b.WriteString(cmd)
	if v := info.Main.Version; v != "" && v != "(devel)" {
		fmt.Fprintf(&b, " %s", v)
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " %s%s", rev, modified)
	}
	fmt.Fprintf(&b, " (%s)", info.GoVersion)
	return b.String()
}
