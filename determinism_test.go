// Golden determinism tests over the public API: the simulator must produce
// bit-identical results run-to-run, and the work-proportional kernel must be
// indistinguishable from the naive tick-every-router reference loop.
package pseudocircuit_test

import (
	"fmt"
	"reflect"
	"testing"

	"pseudocircuit/noc"
)

// TestGoldenDeterminism runs every scheme twice on Mesh(4,4) with
// uniform-random traffic and asserts identical full result structs. Any
// hidden dependence on heap layout, pool state or iteration order shows up
// as a diff here.
func TestGoldenDeterminism(t *testing.T) {
	for _, s := range noc.Schemes {
		s := s
		t.Run(fmt.Sprint(s), func(t *testing.T) {
			t.Parallel()
			run := func() noc.Result {
				e := noc.Experiment{
					Topology: noc.Mesh(4, 4),
					Scheme:   s,
					Routing:  noc.XY,
					Policy:   noc.StaticVA,
					Warmup:   500,
					Measure:  3000,
				}
				return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%v: same experiment diverged:\nfirst:  %+v\nsecond: %+v", s, a, b)
			}
		})
	}
}

// TestNaiveKernelEquivalence checks the NaiveKernel reference loop against
// the default active-set kernel through the public API, including the EVC
// comparison router and the closed-loop CMP substrate, whose workloads have
// idle phases that exercise router deactivation.
func TestNaiveKernelEquivalence(t *testing.T) {
	base := noc.Experiment{
		Topology: noc.Mesh(4, 4),
		Scheme:   noc.PseudoSB,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Warmup:   500,
		Measure:  3000,
	}

	t.Run("synthetic", func(t *testing.T) {
		t.Parallel()
		run := func(naive bool) noc.Result {
			e := base
			e.NaiveKernel = naive
			return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
		}
		if a, b := run(true), run(false); !reflect.DeepEqual(a, b) {
			t.Errorf("naive and active-set kernels diverge:\nnaive:  %+v\nactive: %+v", a, b)
		}
	})

	t.Run("evc", func(t *testing.T) {
		t.Parallel()
		run := func(naive bool) noc.Result {
			e := base
			e.Scheme = noc.Baseline
			e.UseEVC = true
			e.NaiveKernel = naive
			return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
		}
		if a, b := run(true), run(false); !reflect.DeepEqual(a, b) {
			t.Errorf("EVC: naive and active-set kernels diverge:\nnaive:  %+v\nactive: %+v", a, b)
		}
	})

	t.Run("cmp", func(t *testing.T) {
		t.Parallel()
		run := func(naive bool) noc.Result {
			e := base
			e.Topology = noc.CMesh(4, 4, 4)
			e.Routing = noc.O1TURN
			e.Policy = noc.DynamicVA
			e.NaiveKernel = naive
			r, err := e.RunCMP("fma3d")
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		if a, b := run(true), run(false); !reflect.DeepEqual(a, b) {
			t.Errorf("CMP: naive and active-set kernels diverge:\nnaive:  %+v\nactive: %+v", a, b)
		}
	})
}

// TestPoolReuseDeterminism runs the same experiment twice through one shared
// pool (the parallel-sweep worker pattern) and once with a private pool; all
// three must agree — recycled objects must carry no state between runs.
func TestPoolReuseDeterminism(t *testing.T) {
	run := func(pool *noc.Pool) noc.Result {
		e := noc.Experiment{
			Topology: noc.Mesh(4, 4),
			Scheme:   noc.PseudoSB,
			Routing:  noc.XY,
			Policy:   noc.StaticVA,
			Pool:     pool,
			Warmup:   500,
			Measure:  3000,
		}
		return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
	}
	pool := noc.NewPool()
	first := run(pool)
	second := run(pool) // free lists warm from the first run
	private := run(nil)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("shared pool: warm rerun diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if !reflect.DeepEqual(first, private) {
		t.Errorf("shared vs private pool diverged:\nshared:  %+v\nprivate: %+v", first, private)
	}
}
