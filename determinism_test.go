// Golden determinism tests over the public API: the simulator must produce
// bit-identical results run-to-run, and the work-proportional kernel must be
// indistinguishable from the naive tick-every-router reference loop.
package pseudocircuit_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"pseudocircuit/internal/cmp"
	"pseudocircuit/internal/core"
	"pseudocircuit/internal/network"
	"pseudocircuit/internal/sim"
	"pseudocircuit/internal/topology"
	"pseudocircuit/internal/trace"
	"pseudocircuit/noc"
)

// TestGoldenDeterminism runs every scheme twice on Mesh(4,4) with
// uniform-random traffic and asserts identical full result structs. Any
// hidden dependence on heap layout, pool state or iteration order shows up
// as a diff here.
func TestGoldenDeterminism(t *testing.T) {
	for _, s := range noc.Schemes {
		s := s
		t.Run(fmt.Sprint(s), func(t *testing.T) {
			t.Parallel()
			run := func() noc.Result {
				e := noc.Experiment{
					Topology: noc.Mesh(4, 4),
					Scheme:   s,
					Routing:  noc.XY,
					Policy:   noc.StaticVA,
					Warmup:   500,
					Measure:  3000,
				}
				return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%v: same experiment diverged:\nfirst:  %+v\nsecond: %+v", s, a, b)
			}
		})
	}
}

// kernelPoint selects a cycle kernel through the public API: the naive
// reference loop, the default active-set kernel, or the sharded parallel
// kernel at a given worker count.
type kernelPoint struct {
	name    string
	naive   bool
	workers int
}

// kernelTriangle is checked in every equivalence test below: the naive
// reference, the sequential active-set kernel, and the parallel kernel at
// the worker counts the acceptance harness requires.
var kernelTriangle = []kernelPoint{
	{"naive", true, 0},
	{"active", false, 0},
	{"par1", false, 1},
	{"par2", false, 2},
	{"par4", false, 4},
	{"par8", false, 8},
}

// TestNaiveKernelEquivalence checks the NaiveKernel reference loop against
// the default active-set kernel and the parallel kernel through the public
// API, including the EVC comparison router and the closed-loop CMP
// substrate, whose workloads have idle phases that exercise router
// deactivation.
func TestNaiveKernelEquivalence(t *testing.T) {
	base := noc.Experiment{
		Topology: noc.Mesh(4, 4),
		Scheme:   noc.PseudoSB,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Warmup:   500,
		Measure:  3000,
	}

	triangle := func(t *testing.T, run func(k kernelPoint) noc.Result) {
		t.Helper()
		ref := run(kernelTriangle[0])
		for _, k := range kernelTriangle[1:] {
			if got := run(k); !reflect.DeepEqual(ref, got) {
				t.Errorf("%s and %s kernels diverge:\n%s: %+v\n%s: %+v",
					kernelTriangle[0].name, k.name, kernelTriangle[0].name, ref, k.name, got)
			}
		}
	}

	t.Run("synthetic", func(t *testing.T) {
		t.Parallel()
		triangle(t, func(k kernelPoint) noc.Result {
			e := base
			e.NaiveKernel = k.naive
			e.Workers = k.workers
			return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
		})
	})

	t.Run("evc", func(t *testing.T) {
		t.Parallel()
		triangle(t, func(k kernelPoint) noc.Result {
			e := base
			e.Scheme = noc.Baseline
			e.UseEVC = true
			e.NaiveKernel = k.naive
			e.Workers = k.workers
			return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
		})
	})

	t.Run("cmp", func(t *testing.T) {
		t.Parallel()
		triangle(t, func(k kernelPoint) noc.Result {
			e := base
			e.Topology = noc.CMesh(4, 4, 4)
			e.Routing = noc.O1TURN
			e.Policy = noc.DynamicVA
			e.NaiveKernel = k.naive
			e.Workers = k.workers
			r, err := e.RunCMP("fma3d")
			if err != nil {
				t.Fatal(err)
			}
			return r
		})
	})
}

// TestTraceReplayKernelEquivalence closes the workload matrix: a packet
// trace extracted from the CMP substrate is replayed open-loop (the paper's
// methodology) through every kernel, driving the network's Drain path
// rather than the fixed-cycle Run path. All kernels must drain the trace in
// the same number of cycles with bit-identical statistics and energy.
func TestTraceReplayKernelEquivalence(t *testing.T) {
	topo := topology.NewCMesh(4, 4, 4)
	rec := network.New(network.DefaultConfig(topo))
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf, topo.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := cmp.ProfileByName("fft")
	if !ok {
		t.Fatal("unknown benchmark fft")
	}
	recorder := &trace.Recorder{Inner: cmp.New(topo, cmp.PaperTableI(), prof, sim.NewRNG(1)), W: tw}
	rec.Run(recorder, 8000)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("extracted an empty trace")
	}

	run := func(k kernelPoint) *network.Network {
		cfg := network.DefaultConfig(topology.NewCMesh(4, 4, 4))
		cfg.Opts = core.DefaultOptions(core.PseudoSB)
		cfg.Opts.Workers = k.workers
		cfg.Naive = k.naive
		n := network.New(cfg)
		if !n.Drain(trace.NewPlayer(recs), 50*len(recs)+100000) {
			t.Fatalf("%s: replay did not drain", k.name)
		}
		return n
	}
	ref := run(kernelTriangle[0])
	for _, k := range kernelTriangle[1:] {
		got := run(k)
		if ref.Now() != got.Now() {
			t.Errorf("%s drained at cycle %d, %s at %d", kernelTriangle[0].name, ref.Now(), k.name, got.Now())
		}
		if !reflect.DeepEqual(ref.Stats, got.Stats) {
			t.Errorf("trace replay stats diverge (%s vs %s):\nref: %+v\ngot: %+v", kernelTriangle[0].name, k.name, ref.Stats, got.Stats)
		}
		if !reflect.DeepEqual(ref.Energy, got.Energy) {
			t.Errorf("trace replay energy diverges (%s vs %s):\nref: %+v\ngot: %+v", kernelTriangle[0].name, k.name, ref.Energy, got.Energy)
		}
	}
}

// TestPoolReuseDeterminism runs the same experiment twice through one shared
// pool (the parallel-sweep worker pattern) and once with a private pool; all
// three must agree — recycled objects must carry no state between runs.
func TestPoolReuseDeterminism(t *testing.T) {
	run := func(pool *noc.Pool) noc.Result {
		e := noc.Experiment{
			Topology: noc.Mesh(4, 4),
			Scheme:   noc.PseudoSB,
			Routing:  noc.XY,
			Policy:   noc.StaticVA,
			Pool:     pool,
			Warmup:   500,
			Measure:  3000,
		}
		return e.RunSynthetic(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
	}
	pool := noc.NewPool()
	first := run(pool)
	second := run(pool) // free lists warm from the first run
	private := run(nil)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("shared pool: warm rerun diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if !reflect.DeepEqual(first, private) {
		t.Errorf("shared vs private pool diverged:\nshared:  %+v\nprivate: %+v", first, private)
	}
}
