package nocdclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pseudocircuit/noc"
)

// fastRetry keeps test backoffs in the microsecond range.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}

func testRequest() Request {
	return Request{
		Spec:     noc.Spec{Topology: "mesh4x4", Scheme: "pseudo"},
		Workload: noc.WorkloadSpec{Rate: 0.05},
	}
}

func serveJob(w http.ResponseWriter, state string) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(Job{ID: "j1", State: state})
}

// TestSubmitRetries503 exercises the saturated-daemon path: the first two
// submissions bounce with 503 and the third succeeds. The client must retry
// through the 503s and deliver the final job.
func TestSubmitRetries503(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		serveJob(w, "done")
	}))
	defer srv.Close()

	j, err := New(srv.URL).WithRetry(fastRetry).Submit(context.Background(), testRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.State != "done" {
		t.Fatalf("job state = %q, want done", j.State)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestSubmitRetriesTransportError drops the TCP connection mid-request for
// the first two attempts; the resulting transport errors must be retried.
func TestSubmitRetriesTransportError(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("response writer cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close() // abrupt close: the client sees EOF / connection reset
			return
		}
		serveJob(w, "queued")
	}))
	defer srv.Close()

	j, err := New(srv.URL).WithRetry(fastRetry).Submit(context.Background(), testRequest())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.State != "queued" {
		t.Fatalf("job state = %q, want queued", j.State)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestSubmitDoesNotRetry400 asserts a validation failure is terminal: the
// request is broken, so retrying it would just repeat the 400.
func TestSubmitDoesNotRetry400(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad request: unknown scheme"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	_, err := New(srv.URL).WithRetry(fastRetry).Submit(context.Background(), testRequest())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry on 400)", got)
	}
}

// TestRetryExhaustion asserts a persistent outage surfaces the last error
// after exactly MaxAttempts tries.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	_, err := New(srv.URL).WithRetry(fastRetry).Submit(context.Background(), testRequest())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if got := calls.Load(); got != int32(fastRetry.MaxAttempts) {
		t.Fatalf("server saw %d requests, want %d", got, fastRetry.MaxAttempts)
	}
}

// TestRetryBoundedByContext asserts an expired context cuts the retry loop
// short: with a generous backoff and a tiny deadline, the client must give
// up early instead of sleeping through all attempts.
func TestRetryBoundedByContext(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	slow := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Second, MaxDelay: time.Second}
	start := time.Now()
	_, err := New(srv.URL).WithRetry(slow).Submit(ctx, testRequest())
	if err == nil {
		t.Fatal("Submit succeeded against an always-503 server")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("retry loop ran %v, want prompt exit on context expiry", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 before the deadline", got)
	}
}

// TestWaitRetries503 asserts the long-poll loop rides through transient
// 503s: two flaky polls, then a running snapshot, then the terminal one.
func TestWaitRetries503(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1, 2:
			http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
		case 3:
			serveJob(w, "running")
		default:
			serveJob(w, "done")
		}
	}))
	defer srv.Close()

	j, err := New(srv.URL).WithRetry(fastRetry).Wait(context.Background(), "j1")
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.State != "done" {
		t.Fatalf("job state = %q, want done", j.State)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d requests, want 4", got)
	}
}

// TestRetryDisabled asserts MaxAttempts 1 turns retrying off entirely.
func TestRetryDisabled(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	_, err := New(srv.URL).WithRetry(RetryPolicy{MaxAttempts: 1}).Submit(context.Background(), testRequest())
	if err == nil {
		t.Fatal("Submit succeeded against an always-503 server")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 with retries disabled", got)
	}
}

// TestRetryDelayBounds pins the jitter window: every sampled delay must lie
// in [½d, 1½d) of the capped exponential step.
func TestRetryDelayBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}.withDefaults()
	for retry := 0; retry < 12; retry++ {
		d := p.BaseDelay << uint(retry)
		if d <= 0 || d > p.MaxDelay {
			d = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			got := p.delay(retry)
			if got < d/2 || got >= d/2+d {
				t.Fatalf("delay(%d) = %v outside [%v, %v)", retry, got, d/2, d/2+d)
			}
		}
	}
}

// TestRetryStats: the cumulative counters track attempts, retries and
// backoff across operations, and a clean run records zero retries.
func TestRetryStats(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		serveJob(w, "done")
	}))
	defer srv.Close()

	c := New(srv.URL).WithRetry(fastRetry)
	if s := c.RetryStats(); s != (RetryStats{}) {
		t.Fatalf("fresh client stats = %+v, want zero", s)
	}
	if _, err := c.Submit(context.Background(), testRequest()); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s := c.RetryStats()
	if s.Attempts != 3 || s.Retries != 2 {
		t.Fatalf("after 503,503,200: %+v, want 3 attempts / 2 retries", s)
	}
	if s.Backoff <= 0 {
		t.Fatalf("backoff = %v, want > 0 after 2 sleeps", s.Backoff)
	}

	// A clean second submission adds one attempt and no retries.
	if _, err := c.Submit(context.Background(), testRequest()); err != nil {
		t.Fatal(err)
	}
	s2 := c.RetryStats()
	if s2.Attempts != 4 || s2.Retries != 2 || s2.Backoff != s.Backoff {
		t.Fatalf("after clean submit: %+v (was %+v)", s2, s)
	}
}

// TestJobTimingFields: the client decodes the daemon's timing fields.
func TestJobTimingFields(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"j1","state":"running","queueWaitMs":1.5,"runMs":250.25,` +
			`"cyclesPerSec":120000,"etaSeconds":4.5}`))
	}))
	defer srv.Close()

	j, err := New(srv.URL).Job(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	if j.QueueWaitMS != 1.5 || j.RunMS != 250.25 || j.CyclesPerSec != 120000 || j.ETASeconds != 4.5 {
		t.Fatalf("timing fields: %+v", j)
	}
}
