// Package nocdclient is a small Go client for the nocd simulation daemon.
// It speaks the daemon's JSON wire protocol and depends only on the public
// noc package, so external programs can submit experiments, follow their
// progress and fetch cached results:
//
//	c := nocdclient.New("http://localhost:8080")
//	job, err := c.SubmitWait(ctx, nocdclient.Request{
//		Spec:     noc.Spec{Topology: "mesh8x8", Scheme: "pseudo+s+b", VA: "static"},
//		Workload: noc.WorkloadSpec{Pattern: "uniform", Rate: 0.1},
//	})
//	fmt.Println(job.Result.AvgLatency, job.CacheHit)
package nocdclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"pseudocircuit/noc"
)

// Request mirrors the daemon's submission body: an experiment spec with the
// workload nested under "workload".
type Request struct {
	noc.Spec
	Workload noc.WorkloadSpec `json:"workload"`
}

// Job mirrors the daemon's job snapshot. State is one of "queued",
// "running", "done", "failed", "canceled".
type Job struct {
	ID          string `json:"id"`
	Key         string `json:"key"`
	State       string `json:"state"`
	CacheHit    bool   `json:"cacheHit"`
	Dedup       bool   `json:"dedup"`
	CyclesDone  int    `json:"cyclesDone"`
	CyclesTotal int    `json:"cyclesTotal"`
	// QueueWaitMS and RunMS are the daemon-side wall times the job spent
	// waiting for a worker and simulating; both zero for cache hits.
	QueueWaitMS float64 `json:"queueWaitMs"`
	RunMS       float64 `json:"runMs"`
	// CyclesPerSec is the simulation rate; ETASeconds estimates the time
	// remaining and is present only while the job is running.
	CyclesPerSec float64     `json:"cyclesPerSec,omitempty"`
	ETASeconds   float64     `json:"etaSeconds,omitempty"`
	Request      Request     `json:"request"`
	Result       *noc.Result `json:"result,omitempty"`
	Error        string      `json:"error,omitempty"`
}

// Terminal reports whether the job has finished (successfully or not).
func (j Job) Terminal() bool {
	return j.State == "done" || j.State == "failed" || j.State == "canceled"
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("nocd: %d: %s", e.Status, e.Message)
}

// RetryPolicy configures the client's transient-failure retries. Every
// daemon operation the client issues is idempotent (submission is
// content-addressed: re-submitting joins the cached or in-flight job), so
// transport errors and retryable status codes (429, 502, 503, 504 — the
// daemon answers 503 when a ?wait queue is saturated) are retried with
// jittered exponential backoff until MaxAttempts or the context ends,
// whichever comes first.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values below 2 disable retrying. Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 2s.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	return p
}

// delay returns the jittered backoff before retry number retry (0-based):
// BaseDelay·2^retry capped at MaxDelay, then uniformly jittered in
// [½d, 1½d) so a fleet of clients hammered by the same outage does not
// retry in lockstep.
func (p RetryPolicy) delay(retry int) time.Duration {
	d := p.BaseDelay << uint(retry)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Client talks to one nocd daemon.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy

	attempts     atomic.Uint64 // HTTP attempts issued, including retries
	retries      atomic.Uint64 // attempts beyond the first per operation
	backoffNanos atomic.Uint64 // total time slept between attempts
}

// RetryStats is a snapshot of the client's cumulative retry activity.
type RetryStats struct {
	// Attempts counts every HTTP attempt issued, including first tries.
	Attempts uint64
	// Retries counts attempts beyond the first per operation.
	Retries uint64
	// Backoff is the total time spent sleeping between attempts.
	Backoff time.Duration
}

// RetryStats returns the client's cumulative retry counters. Safe for
// concurrent use; counters only grow over the client's lifetime.
func (c *Client) RetryStats() RetryStats {
	return RetryStats{
		Attempts: c.attempts.Load(),
		Retries:  c.retries.Load(),
		Backoff:  time.Duration(c.backoffNanos.Load()),
	}
}

// New returns a client for the daemon at base (e.g. "http://localhost:8080").
// The zero-timeout default http.Client is used; replace it with WithHTTP for
// custom transports. Transient failures are retried with the default
// RetryPolicy; tune or disable with WithRetry.
func New(base string) *Client {
	return &Client{base: base, http: http.DefaultClient, retry: RetryPolicy{}.withDefaults()}
}

// WithHTTP sets the underlying HTTP client and returns c.
func (c *Client) WithHTTP(h *http.Client) *Client {
	c.http = h
	return c
}

// WithRetry sets the retry policy (zero fields select defaults) and returns
// c. RetryPolicy{MaxAttempts: 1} disables retrying.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p.withDefaults()
	if p.MaxAttempts == 1 {
		c.retry.MaxAttempts = 1
	}
	return c
}

// retryable reports whether err is worth retrying: transport-level failures
// (connection refused/reset, unexpected EOF) and the retryable status codes.
// Context cancellation and deadline expiry are never retried — the caller
// gave up, not the daemon.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	var urlErr *url.Error
	return errors.As(err, &urlErr)
}

// doRetry runs mk to build a fresh request per attempt (request bodies are
// single-use) and executes it under the retry policy, sleeping the jittered
// backoff between attempts unless ctx ends first.
func (c *Client) doRetry(ctx context.Context, mk func() (*http.Request, error), out any) error {
	for attempt := 0; ; attempt++ {
		req, err := mk()
		if err != nil {
			return err
		}
		if attempt > 0 {
			c.retries.Add(1)
		}
		err = c.do(req, out)
		if err == nil || attempt+1 >= c.retry.MaxAttempts || !retryable(err) {
			return err
		}
		wait := c.retry.delay(attempt)
		slept := time.Now()
		select {
		case <-time.After(wait):
			c.backoffNanos.Add(uint64(wait))
		case <-ctx.Done():
			c.backoffNanos.Add(uint64(time.Since(slept)))
			return err
		}
	}
}

// Submit enqueues a job (or hits the cache / joins an identical in-flight
// job) and returns immediately with its snapshot.
func (c *Client) Submit(ctx context.Context, r Request) (Job, error) {
	return c.submit(ctx, r, false)
}

// SubmitWait submits and blocks until the job is terminal.
func (c *Client) SubmitWait(ctx context.Context, r Request) (Job, error) {
	j, err := c.submit(ctx, r, true)
	if err != nil || j.Terminal() {
		return j, err
	}
	return c.Wait(ctx, j.ID)
}

func (c *Client) submit(ctx context.Context, r Request, wait bool) (Job, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return Job{}, err
	}
	u := c.base + "/jobs"
	if wait {
		u += "?wait=1"
	}
	// Submission is idempotent — the daemon content-addresses requests, so a
	// retried POST joins the cached result or the in-flight duplicate — which
	// is what makes retrying it safe.
	var j Job
	return j, c.doRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, &j)
}

// Job fetches the current snapshot.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	return c.get(ctx, "/jobs/"+url.PathEscape(id))
}

// Wait long-polls until the job is terminal or ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (Job, error) {
	for {
		j, err := c.get(ctx, "/jobs/"+url.PathEscape(id)+"?wait=1")
		if err != nil || j.Terminal() {
			return j, err
		}
		if err := ctx.Err(); err != nil {
			return j, err
		}
	}
}

// Result fetches the finished job's result.
func (c *Client) Result(ctx context.Context, id string) (noc.Result, error) {
	var res noc.Result
	return res, c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet,
			c.base+"/jobs/"+url.PathEscape(id)+"/result", nil)
	}, &res)
}

// Cancel requests cancellation and returns the (possibly still running)
// snapshot; poll Wait for the terminal state.
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/jobs/"+url.PathEscape(id)+"/cancel", nil)
	if err != nil {
		return Job{}, err
	}
	var j Job
	return j, c.do(req, &j)
}

// Health pings /healthz.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	c.attempts.Add(1)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Message: "health check failed"}
	}
	return nil
}

func (c *Client) get(ctx context.Context, path string) (Job, error) {
	var j Job
	return j, c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	}, &j)
}

// do executes the request and decodes a 2xx body into out, or a non-2xx
// {"error": ...} body into an APIError.
func (c *Client) do(req *http.Request, out any) error {
	c.attempts.Add(1)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(body)
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	return json.Unmarshal(body, out)
}
