package nocdclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"pseudocircuit/noc"
)

// SweepRequest mirrors the daemon's POST /sweeps body: one spec template
// plus named parameter axes; the daemon expands their cartesian product.
// Axis values must be JSON strings or numbers (the axis's natural type).
type SweepRequest struct {
	Template Request          `json:"template"`
	Axes     map[string][]any `json:"axes,omitempty"`
}

// SweepStatus mirrors the daemon's sweep snapshot.
type SweepStatus struct {
	ID        string  `json:"id"`
	State     string  `json:"state"` // running|done|canceled
	Points    int     `json:"points"`
	Completed int     `json:"completed"`
	Done      int     `json:"done"`
	Failed    int     `json:"failed"`
	Canceled  int     `json:"canceled"`
	CacheHits int     `json:"cacheHits"`
	StoreHits int     `json:"storeHits"`
	Remote    int     `json:"remote"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// Terminal reports whether the sweep has finished.
func (s SweepStatus) Terminal() bool { return s.State != "running" }

// SweepPoint is one completed grid point from the result stream.
type SweepPoint struct {
	Index    int         `json:"index"`
	Key      string      `json:"key"`
	Spec     Request     `json:"spec"`
	State    string      `json:"state"` // done|failed|canceled
	CacheHit bool        `json:"cacheHit"`
	StoreHit bool        `json:"storeHit"`
	Source   string      `json:"source"` // local|remote|fallback
	Result   *noc.Result `json:"result,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// ErrTruncatedStream reports a sweep result stream that stopped before its
// "end" line — the connection was cut and the stream is incomplete. The
// sweep itself keeps running daemon-side; re-submitting the identical sweep
// replays all completed points from the cache.
var ErrTruncatedStream = errors.New("nocdclient: sweep stream truncated before its end line")

// maxStreamLine bounds one NDJSON line; results are a few hundred bytes.
const maxStreamLine = 1 << 20

// SweepStream iterates a sweep's NDJSON result stream. Points arrive in
// completion order as the daemon finishes them. Close the stream when
// abandoning it early; the sweep itself is cancelled only via CancelSweep.
type SweepStream struct {
	sweep SweepStatus
	body  io.ReadCloser
	sc    *bufio.Scanner
	final *SweepStatus
	err   error
}

// sweepLine mirrors the daemon's stream framing.
type sweepLine struct {
	Type  string       `json:"type"`
	Sweep *SweepStatus `json:"sweep"`
	Point *SweepPoint  `json:"point"`
}

// SubmitSweep submits a sweep and returns its live result stream. The
// returned stream has already consumed the acceptance line, so Sweep() is
// immediately valid. ctx governs the whole stream, not just the submission:
// cancelling it fails the next Next call and releases the connection (the
// daemon-side sweep keeps running).
//
// Submission is intentionally not retried: sweeps are not content-addressed
// and a blind retry would start a second one. The grid's points are cached
// by spec, so re-submitting after a failure is still cheap — completed
// points replay from the cache — but it is the caller's decision.
func (c *Client) SubmitSweep(ctx context.Context, r SweepRequest) (*SweepStream, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/sweeps?watch=1", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.attempts.Add(1)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, maxStreamLine))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return nil, &APIError{Status: resp.StatusCode, Message: e.Error}
		}
		return nil, &APIError{Status: resp.StatusCode, Message: string(msg)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxStreamLine)
	st := &SweepStream{body: resp.Body, sc: sc}
	line, err := st.readLine()
	if err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("nocdclient: reading sweep acceptance: %w", err)
	}
	if line.Type != "sweep" || line.Sweep == nil {
		resp.Body.Close()
		return nil, fmt.Errorf("nocdclient: stream opened with %q line, want sweep", line.Type)
	}
	st.sweep = *line.Sweep
	return st, nil
}

// Sweep returns the accepted sweep's initial status (ID, point count).
func (s *SweepStream) Sweep() SweepStatus { return s.sweep }

// Next returns the next completed point. io.EOF signals a complete stream —
// every point delivered and the terminal status available via Final. Any
// other error means the stream is broken mid-flight: a cut connection
// surfaces ErrTruncatedStream (or the context's error when the caller
// cancelled), a malformed line a decode error. Errors are sticky.
func (s *SweepStream) Next() (SweepPoint, error) {
	if s.err != nil {
		return SweepPoint{}, s.err
	}
	line, err := s.readLine()
	if err != nil {
		s.err = err
		return SweepPoint{}, err
	}
	switch line.Type {
	case "point":
		if line.Point == nil {
			s.err = errors.New("nocdclient: point line without a point")
			return SweepPoint{}, s.err
		}
		return *line.Point, nil
	case "end":
		if line.Sweep == nil {
			s.err = errors.New("nocdclient: end line without a status")
			return SweepPoint{}, s.err
		}
		s.final = line.Sweep
		s.err = io.EOF
		return SweepPoint{}, io.EOF
	default:
		s.err = fmt.Errorf("nocdclient: unexpected %q line mid-stream", line.Type)
		return SweepPoint{}, s.err
	}
}

// readLine scans and decodes one NDJSON line, mapping stream exhaustion
// (scanner EOF or a transport error) onto the truncation contract.
func (s *SweepStream) readLine() (sweepLine, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return sweepLine{}, fmt.Errorf("%w: %w", ErrTruncatedStream, err)
		}
		return sweepLine{}, ErrTruncatedStream
	}
	var line sweepLine
	if err := json.Unmarshal(s.sc.Bytes(), &line); err != nil {
		return sweepLine{}, fmt.Errorf("nocdclient: malformed stream line: %w", err)
	}
	return line, nil
}

// Final returns the terminal sweep status; valid once Next returned io.EOF.
func (s *SweepStream) Final() (SweepStatus, bool) {
	if s.final == nil {
		return SweepStatus{}, false
	}
	return *s.final, true
}

// Close releases the stream's connection. Safe to call at any point and
// more than once; it never cancels the daemon-side sweep.
func (s *SweepStream) Close() error { return s.body.Close() }

// Sweep fetches a sweep's status snapshot.
func (c *Client) Sweep(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	return st, c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet,
			c.base+"/sweeps/"+url.PathEscape(id), nil)
	}, &st)
}

// CancelSweep requests cancellation of a running sweep. Cancellation is
// idempotent, so it retries like the read-side calls.
func (c *Client) CancelSweep(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	return st, c.doRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodPost,
			c.base+"/sweeps/"+url.PathEscape(id)+"/cancel", nil)
	}, &st)
}
