package nocdclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sweepScript serves POST /sweeps?watch=1 with a canned NDJSON body,
// optionally cutting the connection partway through.
func sweepScript(t *testing.T, lines []string, cutAfter int) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/sweeps" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher := w.(http.Flusher)
		for i, line := range lines {
			if cutAfter >= 0 && i == cutAfter {
				// Panic with ErrAbortHandler resets the connection without
				// a graceful close — the sharpest form of disconnect.
				panic(http.ErrAbortHandler)
			}
			io.WriteString(w, line+"\n")
			flusher.Flush()
		}
	}))
}

func sweepLines() []string {
	return []string{
		`{"type":"sweep","sweep":{"id":"s1","state":"running","points":3}}`,
		`{"type":"point","point":{"index":0,"key":"k0","state":"done","source":"local"}}`,
		`{"type":"point","point":{"index":1,"key":"k1","state":"done","source":"remote"}}`,
		`{"type":"point","point":{"index":2,"key":"k2","state":"failed","error":"boom"}}`,
		`{"type":"end","sweep":{"id":"s1","state":"done","points":3,"completed":3,"done":2,"failed":1}}`,
	}
}

// TestSubmitSweepStream: a complete stream yields every point in order,
// then io.EOF with the terminal status.
func TestSubmitSweepStream(t *testing.T) {
	srv := sweepScript(t, sweepLines(), -1)
	defer srv.Close()
	st, err := New(srv.URL).SubmitSweep(context.Background(), SweepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Sweep(); got.ID != "s1" || got.Points != 3 || got.Terminal() {
		t.Fatalf("acceptance: %+v", got)
	}
	if _, ok := st.Final(); ok {
		t.Fatal("Final valid before the stream ended")
	}
	var pts []SweepPoint
	for {
		p, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p)
	}
	if len(pts) != 3 || pts[0].Key != "k0" || pts[1].Source != "remote" ||
		pts[2].State != "failed" || pts[2].Error != "boom" {
		t.Fatalf("points: %+v", pts)
	}
	fin, ok := st.Final()
	if !ok || fin.State != "done" || fin.Done != 2 || fin.Failed != 1 {
		t.Fatalf("final: ok %v %+v", ok, fin)
	}
	// EOF is sticky, not an error loop.
	if _, err := st.Next(); err != io.EOF {
		t.Fatalf("after end: %v", err)
	}
}

// TestSweepStreamDisconnect: a connection cut mid-stream surfaces
// ErrTruncatedStream after the delivered points, never a silent EOF.
func TestSweepStreamDisconnect(t *testing.T) {
	srv := sweepScript(t, sweepLines(), 2) // sweep + 1 point, then reset
	defer srv.Close()
	st, err := New(srv.URL).SubmitSweep(context.Background(), SweepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if p, err := st.Next(); err != nil || p.Index != 0 {
		t.Fatalf("first point: %+v %v", p, err)
	}
	_, err = st.Next()
	if err == nil || err == io.EOF || !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("disconnect surfaced as %v, want ErrTruncatedStream", err)
	}
	if _, err2 := st.Next(); !errors.Is(err2, ErrTruncatedStream) {
		t.Fatalf("truncation not sticky: %v", err2)
	}
	if _, ok := st.Final(); ok {
		t.Fatal("Final valid on a truncated stream")
	}
}

// TestSweepStreamCleanCutIsTruncation: even a graceful server close without
// an end line is truncation — the end line is the only success signal.
func TestSweepStreamCleanCutIsTruncation(t *testing.T) {
	srv := sweepScript(t, sweepLines()[:2], -1) // sweep + 1 point, clean EOF
	defer srv.Close()
	st, err := New(srv.URL).SubmitSweep(context.Background(), SweepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("clean cut surfaced as %v, want ErrTruncatedStream", err)
	}
}

// TestSweepStreamMalformed: garbage lines and protocol violations are
// sticky decode errors, not panics or silent skips.
func TestSweepStreamMalformed(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
		want  string
	}{
		{"garbage json", []string{sweepLines()[0], `{not json`}, "malformed"},
		{"point without payload", []string{sweepLines()[0], `{"type":"point"}`}, "point line"},
		{"end without status", []string{sweepLines()[0], `{"type":"end"}`}, "end line"},
		{"unknown type", []string{sweepLines()[0], `{"type":"surprise"}`}, "unexpected"},
		{"second sweep line", []string{sweepLines()[0], sweepLines()[0]}, "unexpected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := sweepScript(t, tc.lines, -1)
			defer srv.Close()
			st, err := New(srv.URL).SubmitSweep(context.Background(), SweepRequest{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			_, err = st.Next()
			if err == nil || err == io.EOF || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
			if _, err2 := st.Next(); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("error not sticky: %v then %v", err, err2)
			}
		})
	}
}

// TestSweepStreamBadFirstLine: a stream that does not open with the sweep
// acceptance line fails SubmitSweep itself.
func TestSweepStreamBadFirstLine(t *testing.T) {
	srv := sweepScript(t, sweepLines()[1:], -1)
	defer srv.Close()
	if _, err := New(srv.URL).SubmitSweep(context.Background(), SweepRequest{}); err == nil ||
		!strings.Contains(err.Error(), "want sweep") {
		t.Fatalf("err = %v", err)
	}
}

// TestSweepStreamContextCancel: cancelling the caller's context breaks a
// stalled stream promptly with the context's error in the chain.
func TestSweepStreamContextCancel(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, sweepLines()[0]+"\n")
		w.(http.Flusher).Flush()
		<-stall
	}))
	defer srv.Close()
	defer close(stall)
	ctx, cancel := context.WithCancel(context.Background())
	st, err := New(srv.URL).SubmitSweep(ctx, SweepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	done := make(chan error, 1)
	go func() {
		_, err := st.Next()
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil || err == io.EOF {
			t.Fatalf("cancelled stream returned %v", err)
		}
		if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("cancellation not surfaced: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Next did not return after context cancellation")
	}
}

// TestSubmitSweepAPIError: a non-200 submission decodes the daemon's error
// body into an APIError.
func TestSubmitSweepAPIError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "grid too large"})
	}))
	defer srv.Close()
	_, err := New(srv.URL).SubmitSweep(context.Background(), SweepRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 || !strings.Contains(apiErr.Message, "grid too large") {
		t.Fatalf("err = %v", err)
	}
}

// TestSweepStatusAndCancel: the status and cancel helpers hit the right
// endpoints and decode the sweep snapshot.
func TestSweepStatusAndCancel(t *testing.T) {
	var cancelled bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch fmt.Sprintf("%s %s", r.Method, r.URL.Path) {
		case "GET /sweeps/s7":
			json.NewEncoder(w).Encode(SweepStatus{ID: "s7", State: "running", Points: 4})
		case "POST /sweeps/s7/cancel":
			cancelled = true
			json.NewEncoder(w).Encode(SweepStatus{ID: "s7", State: "canceled", Points: 4})
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c := New(srv.URL)
	st, err := c.Sweep(context.Background(), "s7")
	if err != nil || st.ID != "s7" || st.Terminal() {
		t.Fatalf("status: %+v %v", st, err)
	}
	st, err = c.CancelSweep(context.Background(), "s7")
	if err != nil || !cancelled || st.State != "canceled" {
		t.Fatalf("cancel: %+v %v (hit %v)", st, err, cancelled)
	}
}
