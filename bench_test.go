// Benchmarks regenerating every table and figure of the paper's evaluation,
// one testing.B target per artifact, plus simulator micro-benchmarks and the
// DESIGN.md ablation benches. Each iteration runs a reduced-size version of
// the experiment (cmd/sweep runs the full-size versions); the headline
// quantity of each figure is attached via b.ReportMetric so
// `go test -bench=. -benchmem` prints the reproduced series alongside the
// timings.
package pseudocircuit_test

import (
	"runtime"
	"testing"

	"pseudocircuit/internal/experiments"
	"pseudocircuit/noc"
)

// benchOptions keeps per-iteration cost manageable while preserving every
// experiment's shape.
func benchOptions() experiments.Options {
	return experiments.Options{
		Warmup:     300,
		Measure:    2500,
		Benchmarks: []string{"fma3d", "specjbb", "fft"},
	}
}

func BenchmarkTable01CMPConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableI()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable02EnergyModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableII()
		if len(t.Rows) != 3 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkFig01Locality(b *testing.B) {
	var r experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig1(benchOptions())
	}
	b.ReportMetric(100*r.AvgE2E, "e2e-locality-%")
	b.ReportMetric(100*r.AvgXbar, "xbar-locality-%")
}

func BenchmarkFig06Pipeline(b *testing.B) {
	var r experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6(experiments.Options{Warmup: 200, Measure: 1000})
	}
	b.ReportMetric(r.PerHop[0], "baseline-cycles/hop")
	b.ReportMetric(r.PerHop[1], "pseudo-cycles/hop")
	b.ReportMetric(r.PerHop[2], "bypass-cycles/hop")
}

func BenchmarkFig08Overall(b *testing.B) {
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8(benchOptions())
	}
	b.ReportMetric(100*r.AvgReduction[3], "psb-latency-reduction-%")
	b.ReportMetric(100*r.AvgReuse[3], "psb-reusability-%")
}

func BenchmarkFig09RoutingVA(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fma3d"}
	var r experiments.GridResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9And10(o)
	}
	red, _ := r.AvgOverBenchmarks()
	b.ReportMetric(100*red[3][0], "psb-staticXY-reduction-%")
	b.ReportMetric(100*red[3][3], "psb-dynamicXY-reduction-%")
}

func BenchmarkFig10Reusability(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fma3d"}
	var r experiments.GridResult
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9And10(o)
	}
	_, reuse := r.AvgOverBenchmarks()
	b.ReportMetric(100*reuse[3][0], "psb-staticXY-reuse-%")
	b.ReportMetric(100*reuse[3][3], "psb-dynamicXY-reuse-%")
}

func BenchmarkFig11Energy(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fma3d", "specjbb"}
	var r experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11(o)
	}
	b.ReportMetric(100*(1-r.Avg[0][4]), "psb-energy-saving-XY-%")
}

func BenchmarkFig12Synthetic(b *testing.B) {
	o := experiments.Options{Warmup: 300, Measure: 2000}
	var r experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12(o)
	}
	b.ReportMetric(100*r.LowLoadImprovement[0][4], "UR-lowload-gain-%")
	b.ReportMetric(100*r.LowLoadImprovement[1][4], "BC-lowload-gain-%")
	b.ReportMetric(100*r.LowLoadImprovement[2][4], "BP-lowload-gain-%")
}

func BenchmarkFig13Topologies(b *testing.B) {
	o := experiments.Options{Warmup: 300, Measure: 2500}
	var r experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13(o)
	}
	b.ReportMetric(r.Normalized[0][4], "mesh-psb-normalized")
	b.ReportMetric(r.Normalized[3][4], "fbfly-psb-normalized")
}

func BenchmarkFig14EVC(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fma3d"}
	var r experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14(o)
	}
	b.ReportMetric(r.Avg[0][1], "mesh-evc-normalized")
	b.ReportMetric(r.Avg[1][1], "cmesh-evc-normalized")
	b.ReportMetric(r.Avg[1][2], "cmesh-psb-normalized")
}

// Ablation benches (DESIGN.md §7): each design choice as published vs
// flipped, on the CMP platform.
func BenchmarkAblations(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fma3d"}
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.Ablations(o)
	}
	for i, name := range r.Names {
		_ = name
		b.ReportMetric(r.Flipped[i]-r.Paper[i], "ablation"+string(rune('A'+i))+"-lat-delta")
	}
}

func BenchmarkExtSystemImpact(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fma3d"}
	var r experiments.SystemImpactResult
	for i := 0; i < b.N; i++ {
		r = experiments.SystemImpact(o)
	}
	b.ReportMetric(100*(1-r.PSBMissLat[0]/r.BaseMissLat[0]), "miss-latency-gain-%")
}

func BenchmarkExtReuseVsLoad(b *testing.B) {
	var r experiments.ReuseVsLoadResult
	for i := 0; i < b.N; i++ {
		r = experiments.ReuseVsLoad(experiments.Options{Warmup: 300, Measure: 2000})
	}
	b.ReportMetric(100*r.Gain[0], "lowload-gain-%")
	b.ReportMetric(100*r.Gain[len(r.Gain)-1], "highload-gain-%")
}

func BenchmarkExtSpecDepth(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"fma3d"}
	var r experiments.SpecDepthResult
	for i := 0; i < b.N; i++ {
		r = experiments.SpecDepth(o)
	}
	b.ReportMetric(r.Latency[0]-r.Latency[1], "depth2-latency-delta")
}

// Simulator micro-benchmarks: raw stepping rate of the cycle kernel.
func BenchmarkSimulatorMeshUniform(b *testing.B) {
	exp := noc.Experiment{
		Topology: noc.Mesh(8, 8),
		Scheme:   noc.PseudoSB,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Warmup:   100,
		Measure:  1,
	}
	n := exp.Build()
	w := exp.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
	n.Run(w, 2000) // reach the zero-alloc steady state before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(w)
	}
	b.ReportMetric(float64(n.Stats.FlitsDelivered)/float64(b.N), "flits/cycle")
}

// BenchmarkSimulatorNaiveKernel is BenchmarkSimulatorMeshUniform with the
// active-set scheduler disabled; the ratio of the two is the kernel's
// speedup at this load.
func BenchmarkSimulatorNaiveKernel(b *testing.B) {
	exp := noc.Experiment{
		Topology:    noc.Mesh(8, 8),
		Scheme:      noc.PseudoSB,
		Routing:     noc.XY,
		Policy:      noc.StaticVA,
		NaiveKernel: true,
		Warmup:      100,
		Measure:     1,
	}
	n := exp.Build()
	w := exp.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
	n.Run(w, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(w)
	}
}

// BenchmarkFig12Sequential / BenchmarkFig12Parallel measure the sharded
// parallel kernel against the sequential one at a Fig. 12-style operating
// point (8×8 mesh, Pseudo+S+B, loaded uniform-random traffic). Parallel
// drives Run so the worker goroutines are live (one start/stop per
// iteration batch, not per cycle); the ratio of the two ns/cycle figures is
// the parallel speedup at GOMAXPROCS workers.
func BenchmarkFig12Sequential(b *testing.B) { benchFig12Kernel(b, 0) }

func BenchmarkFig12Parallel(b *testing.B) { benchFig12Kernel(b, runtime.GOMAXPROCS(0)) }

func benchFig12Kernel(b *testing.B, workers int) {
	exp := noc.Experiment{
		Topology: noc.Mesh(8, 8),
		Scheme:   noc.PseudoSB,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
		Workers:  workers,
		Warmup:   100,
		Measure:  1,
	}
	n := exp.Build()
	w := exp.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.18})
	n.Run(w, 2000) // reach the zero-alloc steady state before measuring
	b.ReportAllocs()
	b.ResetTimer()
	n.Run(w, b.N)
	b.ReportMetric(float64(n.Stats.FlitsDelivered)/float64(b.N), "flits/cycle")
}

func BenchmarkSimulatorCMP(b *testing.B) {
	exp := noc.Experiment{
		Topology: noc.CMesh(4, 4, 4),
		Scheme:   noc.PseudoSB,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
	}
	n := exp.Build()
	w, err := exp.CMPWorkload("fma3d")
	if err != nil {
		b.Fatal(err)
	}
	n.Run(w, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(w)
	}
}

func BenchmarkSchemeOverheadBaseline(b *testing.B) { benchScheme(b, noc.Baseline) }
func BenchmarkSchemeOverheadPseudoSB(b *testing.B) { benchScheme(b, noc.PseudoSB) }

func benchScheme(b *testing.B, s noc.Scheme) {
	exp := noc.Experiment{
		Topology: noc.Mesh(8, 8),
		Scheme:   s,
		Routing:  noc.XY,
		Policy:   noc.StaticVA,
	}
	n := exp.Build()
	w := exp.SyntheticWorkload(noc.Synthetic{Pattern: noc.UniformRandom, Rate: 0.10})
	n.Run(w, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(w)
	}
}
